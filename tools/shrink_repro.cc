/**
 * @file
 * Record / replay / shrink / export driver for failure reproductions.
 *
 * Subcommands:
 *
 *   record  --out t.trace [--cache C] [--seed N] [--fault F]
 *           [--trigger-pct P] [--episodes N] [--actions N]
 *           [--atomic-locs N] [--coloc-density D] [--cus N] [--events]
 *       Run the configured GPU tester once, recording the episode
 *       schedule (and, with --events, the binary event trace) to a
 *       self-contained trace file.
 *
 *   replay  --in t.trace
 *       Re-execute the recorded schedule on a fresh system and verify
 *       the outcome matches the recording bit for bit (pass/fail,
 *       failure class, report text, final tick). Exit 0 on an exact
 *       reproduction.
 *
 *   shrink  --in t.trace [--out-trace min.trace] [--out-json r.json]
 *           [--max-probes N]
 *       ddmin-minimize a failing trace's episode schedule and write the
 *       minimized trace plus the JSON bug report.
 *
 *   export  --in t.trace --out t.json
 *       Render the recorded binary event trace as Chrome-trace JSON
 *       (chrome://tracing, Perfetto, speedscope).
 *
 *   fuzz    --out-dir DIR [--seeds N] [--trigger-pct P]
 *           [--strategy random|guided] [generator knobs as for record]
 *       The nightly CI job: sweep every FaultKind over a multi-seed
 *       campaign, assert each injected bug is detected, shrink each
 *       episode-detectable failure, and leave one trace + JSON repro
 *       per fault in DIR. With --strategy guided the seeds for each
 *       fault come from a coverage-guided adaptive campaign
 *       (src/guidance/) instead of a linear seed sweep, and each
 *       written trace embeds the scheduler's decision log in its
 *       header. DropGpuProbe is exercised through the directed
 *       protocol scenario. Exit 0 only if every fault was caught and
 *       every shrink preserved the failure class.
 *
 *   scoped  --out-dir DIR [--protocol viper|lrcc] [--seeds N]
 *           [generator knobs as for record]
 *       The nightly scoped-synchronization arm. Two legs on the
 *       selected protocol, no protocol fault armed:
 *        - positive control: every seed generated under the scoped
 *          discipline (ScopeMode::Scoped, random CTA/GPU scope per
 *          episode) must pass — a correct protocol must never fail a
 *          scoped-DRF-clean schedule;
 *        - racy leg: seeds generated with the scope discipline
 *          deliberately skipped (ScopeMode::Racy) until at least one
 *          run fails with FailureClass::ScopeViolation; the failing
 *          schedule is shrunk and written as DIR/<protocol>-racy
 *          trace + minimized trace + JSON repro.
 *       Exit 0 only if the control leg stayed green and the racy leg
 *       found and shrank a scope violation.
 *
 * record and fuzz also accept --protocol (L1 protocol variant) and
 * record accepts --scope-mode none|scoped|racy; both are stamped into
 * the DRFTRC01 v3 header so replay and shrink reproduce them exactly.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign_json.hh"
#include "guidance/adaptive_campaign.hh"
#include "mem/scope.hh"
#include "proto/fault.hh"
#include "proto/protocol_kind.hh"
#include "tester/configs.hh"
#include "tester/scenarios.hh"
#include "tester/tester_failure.hh"
#include "predict/predict.hh"
#include "trace/chrome_trace.hh"
#include "trace/repro.hh"
#include "trace/shrink.hh"
#include "trace/trace_file.hh"

using namespace drf;

namespace
{

struct Args
{
    std::string in;
    std::string out;
    std::string outTrace;
    std::string outJson;
    std::string outDir;
    std::string cache = "small";
    std::string fault = "None";
    std::string strategy = "random";
    std::string protocol = "viper";
    std::string scopeMode = "none";
    std::uint64_t seed = 1;
    unsigned triggerPct = 100;
    unsigned episodes = 10;
    unsigned actions = 30;
    unsigned atomicLocs = 10;
    double colocDensity = 0.0; ///< 0 = keep the fixed tool range
    unsigned cus = 4;
    unsigned seeds = 8;
    std::size_t maxProbes = 2000;
    bool events = false;
    unsigned predictProbes = 8;      ///< delay-ladder depth (predict)
    unsigned expectConfirmedMin = 0; ///< gate: min confirmed races
};

std::optional<std::string>
argValue(int argc, char **argv, int &i, const char *flag)
{
    if (std::strcmp(argv[i], flag) != 0)
        return std::nullopt;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    return std::string(argv[++i]);
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 2; i < argc; ++i) {
        if (auto v = argValue(argc, argv, i, "--in"))
            a.in = *v;
        else if (auto v = argValue(argc, argv, i, "--out"))
            a.out = *v;
        else if (auto v = argValue(argc, argv, i, "--out-trace"))
            a.outTrace = *v;
        else if (auto v = argValue(argc, argv, i, "--out-json"))
            a.outJson = *v;
        else if (auto v = argValue(argc, argv, i, "--out-dir"))
            a.outDir = *v;
        else if (auto v = argValue(argc, argv, i, "--cache"))
            a.cache = *v;
        else if (auto v = argValue(argc, argv, i, "--fault"))
            a.fault = *v;
        else if (auto v = argValue(argc, argv, i, "--seed"))
            a.seed = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = argValue(argc, argv, i, "--trigger-pct"))
            a.triggerPct = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--episodes"))
            a.episodes = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--actions"))
            a.actions = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--atomic-locs"))
            a.atomicLocs = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--coloc-density"))
            a.colocDensity = std::strtod(v->c_str(), nullptr);
        else if (auto v = argValue(argc, argv, i, "--strategy"))
            a.strategy = *v;
        else if (auto v = argValue(argc, argv, i, "--protocol"))
            a.protocol = *v;
        else if (auto v = argValue(argc, argv, i, "--scope-mode"))
            a.scopeMode = *v;
        else if (auto v = argValue(argc, argv, i, "--cus"))
            a.cus = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--seeds"))
            a.seeds = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--max-probes"))
            a.maxProbes = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = argValue(argc, argv, i, "--predict-probes"))
            a.predictProbes =
                unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v =
                     argValue(argc, argv, i, "--expect-confirmed-min"))
            a.expectConfirmedMin =
                unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (std::strcmp(argv[i], "--events") == 0)
            a.events = true;
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    return a;
}

CacheSizeClass
parseCache(const std::string &name)
{
    if (name == "small")
        return CacheSizeClass::Small;
    if (name == "large")
        return CacheSizeClass::Large;
    if (name == "mixed")
        return CacheSizeClass::Mixed;
    std::fprintf(stderr, "unknown cache class: %s\n", name.c_str());
    std::exit(2);
}

FaultKind
parseFault(const std::string &name)
{
    if (std::optional<FaultKind> kind = parseFaultKind(name))
        return *kind;
    std::fprintf(stderr, "unknown fault kind: %s\n", name.c_str());
    std::exit(2);
}

ProtocolKind
parseProtocolArg(const std::string &name)
{
    if (std::optional<ProtocolKind> kind = parseProtocolKind(name))
        return *kind;
    std::fprintf(stderr, "unknown protocol: %s\n", name.c_str());
    std::exit(2);
}

ScopeMode
parseScopeModeArg(const std::string &name)
{
    if (std::optional<ScopeMode> mode = parseScopeMode(name))
        return *mode;
    std::fprintf(stderr, "unknown scope mode: %s\n", name.c_str());
    std::exit(2);
}

/**
 * The tester preset every tool run uses: the golden test shape by
 * default, with the generator knobs (--actions, --episodes,
 * --atomic-locs, --coloc-density) overridable from the command line.
 */
GpuTesterConfig
toolTesterConfig(const Args &a, std::uint64_t seed)
{
    GpuTesterConfig cfg = makeGpuTesterConfig(a.actions, a.episodes,
                                              a.atomicLocs, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.wfsPerCu = 2;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes =
        a.colocDensity > 0.0
            ? addrRangeForDensity(cfg.variables.numSyncVars +
                                      cfg.variables.numNormalVars,
                                  a.colocDensity,
                                  cfg.variables.lineBytes,
                                  cfg.variables.varBytes)
            : 1 << 14;
    return cfg;
}

ReproTrace
loadOrDie(const std::string &path)
{
    ReproTrace trace;
    if (path.empty()) {
        std::fprintf(stderr, "--in is required\n");
        std::exit(2);
    }
    std::uint32_t found = 0;
    switch (loadTraceFileStatus(path, trace, &found)) {
      case TraceLoadStatus::Ok:
        return trace;
      case TraceLoadStatus::Unreadable:
        std::fprintf(stderr, "failed to open trace: %s\n", path.c_str());
        break;
      case TraceLoadStatus::BadMagic:
        std::fprintf(stderr, "not a DRFTRC01 trace: %s\n", path.c_str());
        break;
      case TraceLoadStatus::FutureVersion:
        std::fprintf(stderr,
                     "trace %s has DRFTRC01 format version %u, newer "
                     "than this build supports (max %u) — rerecord it "
                     "or upgrade this tool\n",
                     path.c_str(), found, traceFormatVersion());
        break;
      case TraceLoadStatus::Corrupt:
        std::fprintf(stderr,
                     "failed to load trace (corrupt or truncated): %s\n",
                     path.c_str());
        break;
    }
    std::exit(1);
}

bool
writeText(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content << "\n";
    if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

int
cmdRecord(const Args &a)
{
    if (a.out.empty()) {
        std::fprintf(stderr, "record: --out is required\n");
        return 2;
    }
    ApuSystemConfig sys = makeGpuSystemConfig(parseCache(a.cache), a.cus);
    sys.fault = parseFault(a.fault);
    sys.faultTriggerPct = a.triggerPct;
    sys.l1.protocol = parseProtocolArg(a.protocol);

    GpuTesterConfig tester = toolTesterConfig(a, a.seed);
    tester.scopeMode = parseScopeModeArg(a.scopeMode);

    RecordOptions opts;
    opts.captureEvents = a.events;
    ReproTrace trace = recordGpuRun(sys, tester, opts);
    trace.presetName = a.cache + "/seed" + std::to_string(a.seed) + "/" +
                       a.fault;

    std::printf("run %s: %zu episodes, %llu ticks, %s\n",
                trace.result.passed ? "PASSED" : "FAILED",
                trace.schedule.size(),
                (unsigned long long)trace.result.ticks,
                failureClassName(trace.result.failureClass));
    if (!saveTraceFile(a.out, trace)) {
        std::fprintf(stderr, "failed to write %s\n", a.out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", a.out.c_str());
    return 0;
}

int
cmdReplay(const Args &a)
{
    ReproTrace trace = loadOrDie(a.in);
    TesterResult replayed = replayGpuRun(trace);

    bool identical = replayed.passed == trace.result.passed &&
                     replayed.failureClass == trace.result.failureClass &&
                     replayed.report == trace.result.report &&
                     replayed.ticks == trace.result.ticks;
    std::printf("recorded: %s (%s) at tick %llu\n",
                trace.result.passed ? "PASSED" : "FAILED",
                failureClassName(trace.result.failureClass),
                (unsigned long long)trace.result.ticks);
    std::printf("replayed: %s (%s) at tick %llu\n",
                replayed.passed ? "PASSED" : "FAILED",
                failureClassName(replayed.failureClass),
                (unsigned long long)replayed.ticks);
    std::printf("replay is %s\n",
                identical ? "bit-identical to the recording"
                          : "DIFFERENT from the recording");
    return identical ? 0 : 1;
}

int
cmdShrink(const Args &a)
{
    ReproTrace trace = loadOrDie(a.in);
    if (trace.result.passed) {
        std::fprintf(stderr, "trace recorded a passing run; nothing to "
                             "shrink\n");
        return 1;
    }

    ShrinkOptions opts;
    opts.maxProbes = a.maxProbes;
    opts.progress = [](std::size_t probes, std::size_t best) {
        if (probes % 50 == 0)
            std::printf("  ... %zu probes, best %zu episodes\n", probes,
                        best);
    };
    ShrinkStats stats;
    EpisodeSchedule shrunk = shrinkRepro(trace, opts, &stats);

    std::printf("shrink: %zu -> %zu episodes (%zu probes, %zu "
                "improvements, %.2f s%s)\n",
                stats.originalEpisodes, stats.shrunkEpisodes,
                stats.probes, stats.improvements, stats.seconds,
                stats.probeBudgetExhausted ? ", probe budget exhausted"
                                           : "");

    TesterResult replayed = replayGpuRun(trace, shrunk);
    if (replayed.passed ||
        replayed.failureClass != trace.result.failureClass) {
        std::fprintf(stderr, "minimized schedule does not reproduce the "
                             "failure class\n");
        return 1;
    }

    int rc = 0;
    if (!a.outTrace.empty()) {
        ReproTrace minimized = trace;
        minimized.schedule = shrunk;
        minimized.result = replayed;
        minimized.events.clear();
        if (saveTraceFile(a.outTrace, minimized))
            std::printf("wrote %s\n", a.outTrace.c_str());
        else
            rc = 1;
    }
    if (!a.outJson.empty() &&
        !writeText(a.outJson, reproToJson(trace, shrunk, replayed)))
        rc = 1;
    return rc;
}

int
cmdExport(const Args &a)
{
    ReproTrace trace = loadOrDie(a.in);
    if (a.out.empty()) {
        std::fprintf(stderr, "export: --out is required\n");
        return 2;
    }
    if (trace.events.empty()) {
        std::fprintf(stderr, "trace has no event records (re-record "
                             "with --events)\n");
        return 1;
    }
    return writeText(a.out, chromeTraceJson(trace.events)) ? 0 : 1;
}

/** One fuzz sweep entry: find a seed that exposes the fault. */
struct FuzzOutcome
{
    FaultKind fault = FaultKind::None;
    bool detected = false;
    bool shrunk = false;
    std::uint64_t seed = 0;
    std::size_t originalEpisodes = 0;
    std::size_t shrunkEpisodes = 0;
    FailureClass failureClass = FailureClass::None;
};

/** Shrink a failing fuzz trace and write the per-fault artifacts. */
void
shrinkAndSave(const Args &a, ReproTrace &trace, FuzzOutcome &out)
{
    out.detected = true;
    out.failureClass = trace.result.failureClass;
    out.originalEpisodes = trace.schedule.size();

    ShrinkOptions opts;
    opts.maxProbes = a.maxProbes;
    ShrinkStats stats;
    EpisodeSchedule shrunk = shrinkRepro(trace, opts, &stats);
    TesterResult replayed = replayGpuRun(trace, shrunk);
    out.shrunk = !replayed.passed &&
                 replayed.failureClass == trace.result.failureClass;
    out.shrunkEpisodes = shrunk.size();

    std::string base = a.outDir + "/" + faultKindName(out.fault);
    ReproTrace minimized = trace;
    minimized.schedule = shrunk;
    minimized.result = replayed;
    if (saveTraceFile(base + ".trace", trace))
        std::printf("wrote %s.trace\n", base.c_str());
    if (saveTraceFile(base + ".min.trace", minimized))
        std::printf("wrote %s.min.trace\n", base.c_str());
    writeText(base + ".repro.json", reproToJson(trace, shrunk, replayed));
}

int
cmdFuzz(const Args &a)
{
    if (a.outDir.empty()) {
        std::fprintf(stderr, "fuzz: --out-dir is required\n");
        return 2;
    }
    std::optional<Strategy> strategy = parseStrategy(a.strategy);
    if (!strategy || *strategy == Strategy::Sweep) {
        std::fprintf(stderr, "fuzz: --strategy must be random or "
                             "guided\n");
        return 2;
    }

    struct Entry
    {
        FaultKind fault;
        CacheSizeClass cache;
    };
    // DropAcquireInvalidate needs the large caches: small L1s evict
    // fast enough that natural replacement masks a swallowed
    // flash-invalidate.
    const std::vector<Entry> entries = {
        {FaultKind::LostWriteThrough, CacheSizeClass::Small},
        {FaultKind::NonAtomicRmw, CacheSizeClass::Small},
        {FaultKind::DropAcquireInvalidate, CacheSizeClass::Large},
        {FaultKind::DropWriteAck, CacheSizeClass::Small},
    };

    std::vector<FuzzOutcome> outcomes;
    for (const Entry &entry : entries) {
        FuzzOutcome out;
        out.fault = entry.fault;

        if (*strategy == Strategy::Guided) {
            // Coverage-guided seed search: the scheduler explores a
            // small arm neighborhood of the tool shape, the armed fault
            // campaign-wide, until a shard fails or the budget is out.
            ConfigGenome base;
            base.cacheClass = entry.cache;
            base.protocol = parseProtocolArg(a.protocol);
            base.actionsPerEpisode = a.actions;
            base.episodesPerWf = a.episodes;
            base.atomicLocs = a.atomicLocs;
            base.colocDensity =
                colocDensityOf(toolTesterConfig(a, 1).variables);
            base.numCus = a.cus;

            ConfigGenome more_episodes = base;
            more_episodes.episodesPerWf = base.episodesPerWf * 2;
            ConfigGenome more_actions = base;
            more_actions.actionsPerEpisode = base.actionsPerEpisode * 2;

            SourceConfig scfg;
            scfg.arms = {base, more_episodes, more_actions};
            scfg.scale.lanes = 8;
            scfg.scale.wfsPerCu = 2;
            scfg.scale.numNormalVars = 512;
            scfg.scale.fault = entry.fault;
            scfg.scale.faultTriggerPct = a.triggerPct;
            scfg.masterSeed = 1;
            scfg.batchSize = 2;
            scfg.maxShards = a.seeds;
            GuidedSource source(scfg);

            AdaptiveCampaignResult res = runAdaptiveCampaign(source);
            if (res.firstFailure && res.failurePreset) {
                out.seed = res.firstFailure->seed;
                // Re-record the failing shard's exact preset so the
                // trace is self-contained, and stamp the scheduler's
                // decision log into the v2 header.
                ReproTrace trace = recordGpuRun(*res.failurePreset);
                trace.guidance = guidanceDecisionsJson(res.decisions);
                if (!trace.result.passed)
                    shrinkAndSave(a, trace, out);
            }
        } else {
            for (std::uint64_t seed = 1;
                 seed <= a.seeds && !out.detected; ++seed) {
                ApuSystemConfig sys =
                    makeGpuSystemConfig(entry.cache, a.cus);
                sys.fault = entry.fault;
                sys.faultTriggerPct = a.triggerPct;
                sys.l1.protocol = parseProtocolArg(a.protocol);
                ReproTrace trace =
                    recordGpuRun(sys, toolTesterConfig(a, seed));
                if (trace.result.passed)
                    continue;
                out.seed = seed;
                trace.presetName =
                    std::string(faultKindName(entry.fault)) + "/seed" +
                    std::to_string(seed);
                shrinkAndSave(a, trace, out);
            }
        }
        outcomes.push_back(out);
    }

    // DropGpuProbe: the directed CPU+GPU scenario, with a control arm.
    {
        FuzzOutcome out;
        out.fault = FaultKind::DropGpuProbe;
        ProbeScenarioResult bugged =
            runDropGpuProbeScenario(FaultKind::DropGpuProbe);
        ProbeScenarioResult clean =
            runDropGpuProbeScenario(FaultKind::None);
        out.detected = bugged.completed && bugged.staleObserved &&
                       clean.completed && !clean.staleObserved;
        out.shrunk = out.detected; // the scenario is already minimal
        out.failureClass = FailureClass::ValueMismatch;

        JsonWriter w;
        w.beginObject();
        w.key("fault").value(faultKindName(FaultKind::DropGpuProbe));
        w.key("scenario").value("directed cpu-store/gpu-reload");
        w.key("stale_observed").value(bugged.staleObserved);
        w.key("control_clean").value(!clean.staleObserved);
        w.key("cpu_store_value").value(bugged.cpuStoreValue);
        w.key("gpu_reload_value").value(bugged.gpuReloadValue);
        w.endObject();
        writeText(a.outDir + "/DropGpuProbe.repro.json", w.str());
        outcomes.push_back(out);
    }

    std::printf("\n%-24s %-10s %-8s %-16s %s\n", "fault", "detected",
                "shrunk", "failure_class", "episodes");
    bool all_ok = true;
    for (const FuzzOutcome &out : outcomes) {
        bool ok = out.detected && out.shrunk;
        all_ok = all_ok && ok;
        std::printf("%-24s %-10s %-8s %-16s %zu -> %zu%s\n",
                    faultKindName(out.fault),
                    out.detected ? "yes" : "NO",
                    out.shrunk ? "yes" : "NO",
                    failureClassName(out.failureClass),
                    out.originalEpisodes, out.shrunkEpisodes,
                    ok ? "" : "   <-- PROBLEM");
    }
    std::printf("\nfuzz sweep (%s): %s\n", strategyName(*strategy),
                all_ok ? "every fault detected and shrunk"
                       : "SOME FAULTS ESCAPED");
    return all_ok ? 0 : 1;
}

/**
 * The nightly scoped-synchronization arm: the scoped discipline must
 * pass, breaking it must be caught as a ScopeViolation, and the racy
 * repro must survive shrinking (see the file header).
 */
int
cmdScoped(const Args &a)
{
    if (a.outDir.empty()) {
        std::fprintf(stderr, "scoped: --out-dir is required\n");
        return 2;
    }
    ProtocolKind protocol = parseProtocolArg(a.protocol);

    auto scopedSystem = [&] {
        // Large caches for the same reason DropAcquireInvalidate needs
        // them: the racy leg's failure mode is a stale line surviving a
        // skipped invalidate/write-back, and small L1s evict fast
        // enough that natural replacement masks it.
        ApuSystemConfig sys =
            makeGpuSystemConfig(CacheSizeClass::Large, a.cus);
        sys.l1.protocol = protocol;
        return sys;
    };

    // Leg 1 — positive control: scoped-DRF-clean schedules (random
    // CTA/GPU scope per episode, generator rules 3/4 enforced) must
    // pass on a correct protocol, every seed.
    bool control_green = true;
    for (std::uint64_t seed = 1; seed <= a.seeds; ++seed) {
        GpuTesterConfig tester = toolTesterConfig(a, seed);
        tester.scopeMode = ScopeMode::Scoped;
        ReproTrace trace = recordGpuRun(scopedSystem(), tester);
        if (!trace.result.passed) {
            control_green = false;
            std::string base = a.outDir + "/" +
                               std::string(protocolKindName(protocol)) +
                               "-scoped-FALSEPOSITIVE";
            if (saveTraceFile(base + ".trace", trace))
                std::printf("wrote %s.trace\n", base.c_str());
            std::fprintf(stderr,
                         "scoped control seed %llu FAILED (%s): %s\n",
                         (unsigned long long)seed,
                         failureClassName(trace.result.failureClass),
                         trace.result.report.c_str());
        }
    }

    // Leg 2 — racy: skip the generation discipline, keep the scoped
    // packets. A correct protocol must now be caught exhibiting the
    // weaker CTA-scope semantics across CTAs: a ScopeViolation.
    FuzzOutcome racy;
    racy.fault = FaultKind::None;
    for (std::uint64_t seed = 1; seed <= a.seeds && !racy.detected;
         ++seed) {
        GpuTesterConfig tester = toolTesterConfig(a, seed);
        tester.scopeMode = ScopeMode::Racy;
        ReproTrace trace = recordGpuRun(scopedSystem(), tester);
        if (trace.result.passed ||
            trace.result.failureClass != FailureClass::ScopeViolation)
            continue;
        racy.seed = seed;
        trace.presetName = std::string(protocolKindName(protocol)) +
                           "-racy/seed" + std::to_string(seed);
        racy.detected = true;
        racy.failureClass = trace.result.failureClass;
        racy.originalEpisodes = trace.schedule.size();

        ShrinkOptions opts;
        opts.maxProbes = a.maxProbes;
        ShrinkStats stats;
        EpisodeSchedule shrunk = shrinkRepro(trace, opts, &stats);
        TesterResult replayed = replayGpuRun(trace, shrunk);
        racy.shrunk = !replayed.passed &&
                      replayed.failureClass ==
                          trace.result.failureClass;
        racy.shrunkEpisodes = shrunk.size();

        std::string base = a.outDir + "/" +
                           std::string(protocolKindName(protocol)) +
                           "-racy";
        ReproTrace minimized = trace;
        minimized.schedule = shrunk;
        minimized.result = replayed;
        if (saveTraceFile(base + ".trace", trace))
            std::printf("wrote %s.trace\n", base.c_str());
        if (saveTraceFile(base + ".min.trace", minimized))
            std::printf("wrote %s.min.trace\n", base.c_str());
        writeText(base + ".repro.json",
                  reproToJson(trace, shrunk, replayed));
    }

    std::printf("\nscoped arm (%s):\n", protocolKindName(protocol));
    std::printf("  control (scoped discipline): %s\n",
                control_green ? "all seeds passed"
                              : "FALSE POSITIVE (see artifacts)");
    if (racy.detected) {
        std::printf("  racy leg: ScopeViolation at seed %llu, "
                    "%zu -> %zu episodes (%s)\n",
                    (unsigned long long)racy.seed,
                    racy.originalEpisodes, racy.shrunkEpisodes,
                    racy.shrunk ? "shrunk" : "SHRINK FAILED");
    } else {
        std::printf("  racy leg: NO ScopeViolation in %u seeds\n",
                    a.seeds);
    }

    bool ok = control_green && racy.detected && racy.shrunk;
    std::printf("scoped arm: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

int
cmdPredict(const Args &a)
{
    ReproTrace trace;
    if (!a.in.empty()) {
        trace = loadOrDie(a.in);
        if (trace.events.empty()) {
            std::fprintf(stderr,
                         "note: trace has no event stream; sync order "
                         "falls back to schedule order\n");
        }
    } else {
        // No input trace: record one that *passes* — the predictive
        // pass's whole point is finding the races a lucky schedule
        // hid — scanning seeds until the run comes back green.
        ScopeMode mode = parseScopeModeArg(a.scopeMode);
        ApuSystemConfig sys =
            makeGpuSystemConfig(CacheSizeClass::Large, a.cus);
        sys.l1.protocol = parseProtocolArg(a.protocol);
        RecordOptions rec;
        rec.captureEvents = true;
        bool found = false;
        for (std::uint64_t seed = a.seed; seed < a.seed + a.seeds;
             ++seed) {
            GpuTesterConfig tester = toolTesterConfig(a, seed);
            tester.scopeMode = mode;
            trace = recordGpuRun(sys, tester, rec);
            trace.presetName = std::string("predict/") +
                               scopeModeName(mode) + "/seed" +
                               std::to_string(seed);
            if (trace.result.passed) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "predict: no passing recording in %u seeds "
                         "(every run already failed; use replay/shrink "
                         "on those instead)\n",
                         a.seeds);
            return 1;
        }
        std::printf("recorded passing trace %s (%zu episodes, %zu "
                    "events)\n",
                    trace.presetName.c_str(), trace.schedule.size(),
                    trace.events.size());
    }

    PredictOptions opts;
    opts.maxProbes = a.predictProbes;
    PredictReport report = predictRaces(trace, opts);

    std::printf("predict: order source %s, %zu events analyzed, %zu "
                "pairs checked\n",
                hbOrderSourceName(report.orderSource),
                report.eventsAnalyzed, report.pairsChecked);
    for (const PredictedRace &r : report.races) {
        std::printf("  %s: ep %llu wf %u %s var %llu <-> ep %llu wf %u "
                    "%s var %llu",
                    r.confirmed ? "CONFIRMED" : "demoted",
                    (unsigned long long)r.first.episodeId,
                    r.first.wavefront,
                    r.first.isWrite ? "write" : "read",
                    (unsigned long long)r.first.var,
                    (unsigned long long)r.second.episodeId,
                    r.second.wavefront,
                    r.second.isWrite ? "write" : "read",
                    (unsigned long long)r.second.var);
        if (r.confirmed) {
            std::printf(" [%s, delay %llu]",
                        failureClassName(r.witnessClass),
                        (unsigned long long)r.witnessDelay);
        }
        std::printf("\n    sync: %s\n", r.syncPath.c_str());
    }
    std::printf("predict: %zu candidates, %zu confirmed, %zu demoted "
                "(%zu witness replays)\n",
                report.candidates, report.confirmedCount(),
                report.demotedCount(), report.replays);

    if (!a.outJson.empty() &&
        !writeText(a.outJson, predictReportJson(trace, report))) {
        return 1;
    }

    // Witness artifact: the first confirmed race's pair-prefix
    // schedule, stamped with the failing replay's outcome. The
    // perturbation itself is in the JSON report (delay_ticks); the
    // trace documents the failing schedule and its Table V report.
    if (!a.outTrace.empty()) {
        for (const PredictedRace &r : report.races) {
            if (!r.confirmed)
                continue;
            ReproTrace witness = trace;
            witness.presetName = trace.presetName + "/witness";
            witness.schedule = witnessSchedule(trace, r);
            SchedulePerturbation perturb;
            if (r.witnessDelay > 0)
                perturb.add(r.first.episodeId, r.witnessDelay);
            witness.events.clear();
            witness.result = replayGpuRun(trace, witness.schedule, true,
                                          nullptr, &perturb);
            if (saveTraceFile(a.outTrace, witness))
                std::printf("wrote %s\n", a.outTrace.c_str());
            break;
        }
    }

    if (report.confirmedCount() < a.expectConfirmedMin) {
        std::fprintf(stderr,
                     "predict: expected >= %u confirmed predicted "
                     "races, got %zu\n",
                     a.expectConfirmedMin, report.confirmedCount());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: shrink_repro "
                     "{record|replay|shrink|export|fuzz|scoped|predict} "
                     "[options]\n");
        return 2;
    }
    Args a = parseArgs(argc, argv);
    std::string cmd = argv[1];
    if (cmd == "record")
        return cmdRecord(a);
    if (cmd == "replay")
        return cmdReplay(a);
    if (cmd == "shrink")
        return cmdShrink(a);
    if (cmd == "export")
        return cmdExport(a);
    if (cmd == "fuzz")
        return cmdFuzz(a);
    if (cmd == "scoped")
        return cmdScoped(a);
    if (cmd == "predict")
        return cmdPredict(a);
    std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
    return 2;
}
