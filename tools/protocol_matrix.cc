/**
 * @file
 * Protocol/scope matrix driver for CI.
 *
 * Runs one short coverage-guided campaign per {protocol} x {scope mode}
 * cell — the same guided scheduler the real campaigns use, with the
 * cell's protocol and scope pinned into every arm — and compares each
 * cell's deterministic fingerprint (union-coverage digest, active-cell
 * counts, shard/episode totals) against the committed goldens in
 * MATRIX_goldens.json. The campaign aggregates and the rendered
 * transition-coverage grids are written per cell so a red CI run ships
 * the evidence as artifacts.
 *
 *   protocol_matrix [--cell viper-none] [--out-dir DIR]
 *                   [--goldens FILE] [--update-goldens]
 *                   [--max-shards N] [--jobs N] [--list]
 *
 * With no --cell, all four cells run: {viper,lrcc} x {none,scoped}
 * (racy is the nightly fuzz arm, not a CI cell — it fails by design).
 * --update-goldens rewrites the goldens file from this run; commit the
 * result when a change to the protocol tables or the generator is
 * intentional.
 *
 * Exit codes: 0 all cells match (or goldens updated), 1 divergence or
 * campaign failure, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_json.hh"
#include "campaign/json_value.hh"
#include "guidance/adaptive_campaign.hh"
#include "mem/scope.hh"
#include "proto/protocol_kind.hh"

using namespace drf;

namespace
{

struct Cell
{
    ProtocolKind protocol = ProtocolKind::Viper;
    ScopeMode scopeMode = ScopeMode::None;

    std::string
    key() const
    {
        return std::string(protocolKindName(protocol)) + "-" +
               scopeModeName(scopeMode);
    }
};

/** The CI matrix: every protocol crossed with the two passing modes. */
std::vector<Cell>
allCells()
{
    std::vector<Cell> cells;
    for (ProtocolKind p : {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
        for (ScopeMode m : {ScopeMode::None, ScopeMode::Scoped})
            cells.push_back({p, m});
    }
    return cells;
}

std::optional<Cell>
parseCell(const std::string &key)
{
    std::size_t dash = key.find('-');
    if (dash == std::string::npos)
        return std::nullopt;
    std::optional<ProtocolKind> p =
        parseProtocolKind(key.substr(0, dash));
    std::optional<ScopeMode> m = parseScopeMode(key.substr(dash + 1));
    if (!p || !m)
        return std::nullopt;
    return Cell{*p, *m};
}

struct Args
{
    std::vector<std::string> cells;
    std::string outDir = "matrix-artifacts";
    std::string goldens = "MATRIX_goldens.json";
    bool updateGoldens = false;
    bool list = false;
    std::size_t maxShards = 10;
    unsigned jobs = 0;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--cell")
            a.cells.push_back(need(i));
        else if (flag == "--out-dir")
            a.outDir = need(i);
        else if (flag == "--goldens")
            a.goldens = need(i);
        else if (flag == "--update-goldens")
            a.updateGoldens = true;
        else if (flag == "--list")
            a.list = true;
        else if (flag == "--max-shards")
            a.maxShards = std::strtoull(need(i), nullptr, 10);
        else if (flag == "--jobs")
            a.jobs = unsigned(std::strtoul(need(i), nullptr, 10));
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    return a;
}

/** The deterministic fingerprint one cell is pinned by. */
struct CellResult
{
    std::string digest; ///< "0x..." union active-set digest
    std::uint64_t l1Active = 0;
    std::uint64_t l2Active = 0;
    std::uint64_t shardsRun = 0;
    std::uint64_t totalEpisodes = 0;
    bool passed = false;
};

/**
 * One short guided campaign with the cell pinned into every arm. The
 * arm set mirrors the fuzz tool's neighborhood (base shape, more
 * episodes, more actions) so the bandit has something to choose
 * between; mutations inherit the pinned protocol/scope because the
 * default GenomeBounds never mutates those genes.
 */
CellResult
runCell(const Cell &cell, const Args &a)
{
    ConfigGenome base;
    base.cacheClass = CacheSizeClass::Small;
    base.actionsPerEpisode = 30;
    base.episodesPerWf = 6;
    base.atomicLocs = 10;
    base.colocDensity = 2.0;
    base.numCus = 4;
    base.protocol = cell.protocol;
    base.scopeMode = cell.scopeMode;

    ConfigGenome more_episodes = base;
    more_episodes.episodesPerWf = base.episodesPerWf * 2;
    ConfigGenome more_actions = base;
    more_actions.actionsPerEpisode = base.actionsPerEpisode * 2;

    SourceConfig scfg;
    scfg.arms = {base, more_episodes, more_actions};
    scfg.scale.lanes = 8;
    scfg.scale.wfsPerCu = 2;
    scfg.scale.numNormalVars = 512;
    scfg.masterSeed = 1;
    scfg.batchSize = 2;
    scfg.maxShards = a.maxShards;
    GuidedSource source(scfg);

    AdaptiveCampaignConfig ccfg;
    ccfg.jobs = a.jobs;
    AdaptiveCampaignResult res = runAdaptiveCampaign(source, ccfg);

    CellResult out;
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(res.unionDigest));
    out.digest = digest;
    out.l1Active =
        res.l1Union ? res.l1Union->activeCount("gpu_tester") : 0;
    out.l2Active =
        res.l2Union ? res.l2Union->activeCount("gpu_tester") : 0;
    out.shardsRun = res.shardsRun;
    out.totalEpisodes = res.totalEpisodes;
    out.passed = res.passed;

    // Artifacts: the deterministic campaign summary and the rendered
    // transition-coverage grids.
    std::string stem = a.outDir + "/" + cell.key();
    {
        std::ofstream f(stem + ".campaign.json");
        f << adaptiveAggregatesJson(res, "gpu_tester") << "\n";
    }
    {
        std::ofstream f(stem + ".coverage.txt");
        if (res.l1Union) {
            res.l1Union->renderClassMap(f, "gpu_tester");
            f << "\n";
            res.l1Union->renderHeatMap(f);
            f << "\n";
        }
        if (res.l2Union) {
            res.l2Union->renderClassMap(f, "gpu_tester");
            f << "\n";
            res.l2Union->renderHeatMap(f);
        }
    }

    if (!res.passed && res.firstFailure) {
        std::fprintf(stderr, "%s: campaign FAILED (%s, seed %llu): %s\n",
                     cell.key().c_str(),
                     failureClassName(res.firstFailureClass),
                     (unsigned long long)res.firstFailure->seed,
                     res.firstFailure->report.c_str());
    }
    return out;
}

bool
loadGoldens(const std::string &path,
            std::map<std::string, CellResult> &goldens)
{
    std::ifstream in(path);
    if (!in.is_open())
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();

    JsonValue root;
    if (!parseJson(ss.str(), root) ||
        root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *cells = root.find("cells");
    if (!cells || cells->type != JsonValue::Type::Object)
        return false;
    for (const auto &[key, value] : cells->object) {
        const JsonValue *digest = value.find("union_digest");
        const JsonValue *l1 = value.find("l1_union_active");
        const JsonValue *l2 = value.find("l2_union_active");
        const JsonValue *shards = value.find("shards_run");
        const JsonValue *episodes = value.find("total_episodes");
        if (!digest || !l1 || !l2 || !shards || !episodes)
            return false;
        CellResult r;
        r.digest = digest->string;
        r.l1Active = l1->asU64();
        r.l2Active = l2->asU64();
        r.shardsRun = shards->asU64();
        r.totalEpisodes = episodes->asU64();
        r.passed = true;
        goldens[key] = r;
    }
    return true;
}

std::string
goldensJson(const std::map<std::string, CellResult> &cells)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(1);
    w.key("cells").beginObject();
    for (const auto &[key, r] : cells) {
        w.key(key).beginObject();
        w.key("union_digest").value(r.digest);
        w.key("l1_union_active").value(r.l1Active);
        w.key("l2_union_active").value(r.l2Active);
        w.key("shards_run").value(r.shardsRun);
        w.key("total_episodes").value(r.totalEpisodes);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);

    if (a.list) {
        for (const Cell &cell : allCells())
            std::printf("%s\n", cell.key().c_str());
        return 0;
    }

    std::vector<Cell> cells;
    if (a.cells.empty()) {
        cells = allCells();
    } else {
        for (const std::string &key : a.cells) {
            std::optional<Cell> cell = parseCell(key);
            if (!cell) {
                std::fprintf(stderr,
                             "unknown cell: %s (want "
                             "<viper|lrcc>-<none|scoped|racy>)\n",
                             key.c_str());
                return 2;
            }
            cells.push_back(*cell);
        }
    }

    std::map<std::string, CellResult> goldens;
    bool have_goldens = loadGoldens(a.goldens, goldens);
    if (!have_goldens && !a.updateGoldens) {
        std::fprintf(stderr,
                     "cannot read goldens %s (run with "
                     "--update-goldens to create it)\n",
                     a.goldens.c_str());
        return 2;
    }

    bool ok = true;
    std::map<std::string, CellResult> results = goldens;
    std::printf("%-14s %-20s %10s %10s %8s %10s\n", "cell",
                "union_digest", "l1_active", "l2_active", "shards",
                "episodes");
    for (const Cell &cell : cells) {
        CellResult r = runCell(cell, a);
        results[cell.key()] = r;
        std::printf("%-14s %-20s %10llu %10llu %8llu %10llu%s\n",
                    cell.key().c_str(), r.digest.c_str(),
                    (unsigned long long)r.l1Active,
                    (unsigned long long)r.l2Active,
                    (unsigned long long)r.shardsRun,
                    (unsigned long long)r.totalEpisodes,
                    r.passed ? "" : "   <-- CAMPAIGN FAILED");
        if (!r.passed) {
            ok = false;
            continue;
        }
        if (a.updateGoldens)
            continue;
        auto it = goldens.find(cell.key());
        if (it == goldens.end()) {
            std::fprintf(stderr,
                         "%s: no committed golden (regenerate with "
                         "--update-goldens and commit %s)\n",
                         cell.key().c_str(), a.goldens.c_str());
            ok = false;
        } else if (it->second.digest != r.digest ||
                   it->second.l1Active != r.l1Active ||
                   it->second.l2Active != r.l2Active ||
                   it->second.shardsRun != r.shardsRun ||
                   it->second.totalEpisodes != r.totalEpisodes) {
            std::fprintf(stderr,
                         "%s: DIGEST DIVERGENCE vs %s (golden %s, got "
                         "%s); if the change is intentional, "
                         "regenerate with --update-goldens and commit\n",
                         cell.key().c_str(), a.goldens.c_str(),
                         it->second.digest.c_str(), r.digest.c_str());
            ok = false;
        }
    }

    if (a.updateGoldens && ok) {
        std::ofstream out(a.goldens);
        out << goldensJson(results) << "\n";
        if (!out) {
            std::fprintf(stderr, "failed to write %s\n",
                         a.goldens.c_str());
            return 1;
        }
        std::printf("wrote %s\n", a.goldens.c_str());
    }

    std::printf("protocol matrix: %s\n",
                ok ? (a.updateGoldens ? "goldens updated"
                                      : "all cells match goldens")
                   : "FAILED");
    return ok ? 0 : 1;
}
