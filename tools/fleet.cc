/**
 * @file
 * Fleet CLI: run one adaptive campaign across worker processes.
 *
 * Subcommands:
 *
 *   fleet run          one-shot localhost fleet — binds a socket,
 *                      forks N workers, runs the campaign, reaps them.
 *                      `--workers 0` is the degenerate fleet (no
 *                      sockets, every shard runs in the coordinator,
 *                      in index order): the golden run the distributed
 *                      aggregates must match bit-for-bit.
 *
 *   fleet coordinator  long-lived coordinator for a multi-host fleet.
 *                      Prints "listening on <port>" so scripts can
 *                      start workers against it.
 *
 *   fleet worker       one worker process; point it at a coordinator
 *                      with --host/--port.
 *
 * Verification flags (CI smoke + tests): --aggregates-out writes the
 * deterministic aggregate subset (adaptiveAggregatesJson) for byte
 * comparison across runs; --expect-complete and --expect-releases-min
 * turn invariants into exit codes.
 *
 * Chaos flags: --chaos PROFILE [--chaos-seed N] injects the named
 * deterministic fault profile (chaos/chaos.hh) — wire faults into the
 * workers' outbound frames, disk faults under the coordinator's
 * journal. --verify-quorum N duplicate-leases every Nth shard for
 * cross-worker result comparison; --corrupt-result N [--corrupt-silent]
 * makes worker 0 lie about every Nth-indexed shard so the detection
 * machinery has something to catch. --triage-out FILE dumps the
 * integrity counters (what was injected vs what was caught) as JSON —
 * kept apart from --aggregates-out, which must stay byte-identical to
 * a clean run under any chaos profile.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "fleet/fleet.hh"
#include "fleet/worker.hh"
#include "guidance/adaptive_campaign.hh"
#include "guidance/sources.hh"

using namespace drf;
using namespace drf::fleet;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: fleet run         [--workers N] [--die-on-result N] "
        "[common]\n"
        "       fleet coordinator [--bind ADDR] [--port P] "
        "[--workers N] [common]\n"
        "       fleet worker      --port P [--host ADDR] [--name S] "
        "[--die-on-result N]\n"
        "common: [--strategy sweep|random|guided] [--seed N] "
        "[--batch N] [--max-shards N]\n"
        "        [--saturation PCT] [--journal PATH] [--resume] "
        "[--rounds N]\n"
        "        [--fork-isolation] [--timeout SEC] "
        "[--aggregates-out FILE]\n"
        "        [--expect-complete] [--expect-releases-min N]\n"
        "        [--chaos PROFILE] [--chaos-seed N] "
        "[--verify-quorum N]\n"
        "        [--corrupt-result N] [--corrupt-silent] "
        "[--triage-out FILE]\n"
        "        [--lease-timeout SEC] [--steal-min-age SEC] "
        "[--heartbeat-timeout SEC]\n"
        "        [--retry-backoff MS]\n");
}

struct Options
{
    // Source.
    std::string strategy = "sweep";
    std::uint64_t masterSeed = 1;
    std::size_t batchSize = 4;
    std::size_t maxShards = 16;
    double saturationPct = 0.0;

    // Fleet.
    std::string bind = "127.0.0.1";
    std::string host = "127.0.0.1";
    unsigned short port = 0;
    unsigned workers = 0;
    unsigned dieOnResult = 0;
    std::string name;

    // Campaign plumbing.
    std::string journal;
    bool resume = false;
    std::size_t rounds = 0;
    bool forkIsolation = false;
    double timeoutSeconds = 0.0;

    // Verification.
    std::string aggregatesOut;
    bool expectComplete = false;
    std::uint64_t expectReleasesMin = 0;

    // Resilience knobs (defaults live in CoordinatorConfig).
    double leaseTimeoutSeconds = -1.0;
    double stealMinAgeSeconds = -1.0;
    double heartbeatTimeoutSeconds = -1.0;
    int retryBackoffMs = -1;

    // Chaos / integrity.
    std::string chaosProfile;
    std::uint64_t chaosSeed = 0;
    unsigned verifyQuorum = 0;
    unsigned corruptEveryN = 0;
    bool corruptSilently = false;
    std::string triageOut;
};

bool
parseOptions(int argc, char **argv, int first, Options &opt)
{
    for (int i = first; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fleet: %s needs a value\n",
                              flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--strategy") {
            const char *v = next();
            if (!v)
                return false;
            opt.strategy = v;
        } else if (flag == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.masterSeed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--batch") {
            const char *v = next();
            if (!v)
                return false;
            opt.batchSize = std::strtoull(v, nullptr, 10);
        } else if (flag == "--max-shards") {
            const char *v = next();
            if (!v)
                return false;
            opt.maxShards = std::strtoull(v, nullptr, 10);
        } else if (flag == "--saturation") {
            const char *v = next();
            if (!v)
                return false;
            opt.saturationPct = std::strtod(v, nullptr);
        } else if (flag == "--bind") {
            const char *v = next();
            if (!v)
                return false;
            opt.bind = v;
        } else if (flag == "--host") {
            const char *v = next();
            if (!v)
                return false;
            opt.host = v;
        } else if (flag == "--port") {
            const char *v = next();
            if (!v)
                return false;
            opt.port = static_cast<unsigned short>(
                std::strtoul(v, nullptr, 10));
        } else if (flag == "--workers") {
            const char *v = next();
            if (!v)
                return false;
            opt.workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--die-on-result") {
            const char *v = next();
            if (!v)
                return false;
            opt.dieOnResult =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--name") {
            const char *v = next();
            if (!v)
                return false;
            opt.name = v;
        } else if (flag == "--journal") {
            const char *v = next();
            if (!v)
                return false;
            opt.journal = v;
        } else if (flag == "--resume") {
            opt.resume = true;
        } else if (flag == "--rounds") {
            const char *v = next();
            if (!v)
                return false;
            opt.rounds = std::strtoull(v, nullptr, 10);
        } else if (flag == "--fork-isolation") {
            opt.forkIsolation = true;
        } else if (flag == "--timeout") {
            const char *v = next();
            if (!v)
                return false;
            opt.timeoutSeconds = std::strtod(v, nullptr);
        } else if (flag == "--aggregates-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.aggregatesOut = v;
        } else if (flag == "--expect-complete") {
            opt.expectComplete = true;
        } else if (flag == "--expect-releases-min") {
            const char *v = next();
            if (!v)
                return false;
            opt.expectReleasesMin = std::strtoull(v, nullptr, 10);
        } else if (flag == "--lease-timeout") {
            const char *v = next();
            if (!v)
                return false;
            opt.leaseTimeoutSeconds = std::strtod(v, nullptr);
        } else if (flag == "--steal-min-age") {
            const char *v = next();
            if (!v)
                return false;
            opt.stealMinAgeSeconds = std::strtod(v, nullptr);
        } else if (flag == "--heartbeat-timeout") {
            const char *v = next();
            if (!v)
                return false;
            opt.heartbeatTimeoutSeconds = std::strtod(v, nullptr);
        } else if (flag == "--retry-backoff") {
            const char *v = next();
            if (!v)
                return false;
            opt.retryBackoffMs =
                static_cast<int>(std::strtol(v, nullptr, 10));
        } else if (flag == "--chaos") {
            const char *v = next();
            if (!v)
                return false;
            opt.chaosProfile = v;
        } else if (flag == "--chaos-seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.chaosSeed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--verify-quorum") {
            const char *v = next();
            if (!v)
                return false;
            opt.verifyQuorum =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--corrupt-result") {
            const char *v = next();
            if (!v)
                return false;
            opt.corruptEveryN =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--corrupt-silent") {
            opt.corruptSilently = true;
        } else if (flag == "--triage-out") {
            const char *v = next();
            if (!v)
                return false;
            opt.triageOut = v;
        } else {
            std::fprintf(stderr, "fleet: unknown flag %s\n",
                          flag.c_str());
            return false;
        }
    }
    return true;
}

std::unique_ptr<ShardSource>
makeSource(const Options &opt)
{
    SourceConfig cfg;
    cfg.masterSeed = opt.masterSeed;
    cfg.batchSize = opt.batchSize;
    cfg.maxShards = opt.maxShards;
    if (opt.strategy == "sweep")
        return std::make_unique<SweepSource>(cfg);
    if (opt.strategy == "random")
        return std::make_unique<RandomSource>(cfg);
    if (opt.strategy == "guided") {
        GuidedOptions gopts;
        gopts.episodeBudget = 0; // maxShards bounds the campaign
        return std::make_unique<GuidedSource>(cfg, gopts);
    }
    std::fprintf(stderr, "fleet: unknown strategy '%s'\n",
                  opt.strategy.c_str());
    return nullptr;
}

/** Resolve --chaos; prints the known names on a miss. */
bool
resolveChaos(const Options &opt, chaos::ChaosProfile &profile)
{
    if (opt.chaosProfile.empty())
        return true;
    if (chaos::profileByName(opt.chaosProfile, profile))
        return true;
    std::fprintf(stderr, "fleet: unknown chaos profile '%s'; known:",
                  opt.chaosProfile.c_str());
    for (const std::string &name : chaos::profileNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return false;
}

CoordinatorConfig
makeCoordinatorConfig(const Options &opt,
                      const chaos::ChaosProfile &profile)
{
    CoordinatorConfig cfg;
    cfg.campaign.jobs = 1;
    cfg.campaign.saturationPct = opt.saturationPct;
    cfg.forkIsolation = opt.forkIsolation;
    cfg.shardTimeoutSeconds = opt.timeoutSeconds;
    cfg.bindAddress = opt.bind;
    cfg.port = opt.port;
    cfg.expectedWorkers = opt.workers;
    cfg.journalPath = opt.journal;
    cfg.resume = opt.resume;
    cfg.maxRounds = opt.rounds;
    if (opt.leaseTimeoutSeconds >= 0.0)
        cfg.leaseTimeoutSeconds = opt.leaseTimeoutSeconds;
    if (opt.stealMinAgeSeconds >= 0.0)
        cfg.stealMinAgeSeconds = opt.stealMinAgeSeconds;
    if (opt.heartbeatTimeoutSeconds >= 0.0)
        cfg.heartbeatTimeoutSeconds = opt.heartbeatTimeoutSeconds;
    if (opt.retryBackoffMs >= 0)
        cfg.retryBackoffMs = static_cast<unsigned>(opt.retryBackoffMs);
    cfg.verifyQuorum = opt.verifyQuorum;
    cfg.diskChaos = profile.disk;
    cfg.chaosSeed = opt.chaosSeed;
    return cfg;
}

int
report(const FleetResult &result, const Options &opt)
{
    std::printf(
        "fleet: %zu shards in %zu rounds, %s, wall %.3f s\n"
        "fleet: workers %u, leases %llu, re-leases %llu, duplicate "
        "results %llu, local runs %llu, resumed %zu%s\n",
        result.adaptive.shardsRun, result.adaptive.rounds,
        result.adaptive.passed ? "passed" : "FAILED",
        result.adaptive.wallSeconds, result.workersSeen,
        (unsigned long long)result.leasesIssued,
        (unsigned long long)result.releases,
        (unsigned long long)result.duplicateResults,
        (unsigned long long)result.localRuns, result.shardsResumed,
        result.halted ? " (halted)" : "");
    std::printf("fleet: union digest %016llx\n",
                (unsigned long long)result.adaptive.unionDigest);

    if (!opt.aggregatesOut.empty()) {
        std::ofstream out(opt.aggregatesOut,
                          std::ios::binary | std::ios::trunc);
        out << adaptiveAggregatesJson(result.adaptive, "gpu_tester")
            << "\n";
        if (!out) {
            std::fprintf(stderr, "fleet: cannot write %s\n",
                          opt.aggregatesOut.c_str());
            return 1;
        }
        std::printf("fleet: aggregates -> %s\n",
                    opt.aggregatesOut.c_str());
    }

    if (result.frameCorruptions + result.digestMismatches +
            result.quorumDivergences + result.resumeCrcSkipped +
            result.resumeParseSkipped >
        0)
        std::printf("fleet: integrity: frame-crc %llu, digest %llu, "
                    "divergence %llu, journal-skip %llu\n",
                    (unsigned long long)result.frameCorruptions,
                    (unsigned long long)result.digestMismatches,
                    (unsigned long long)result.quorumDivergences,
                    (unsigned long long)(result.resumeCrcSkipped +
                                         result.resumeParseSkipped));
    if (result.journalStatus.degraded)
        std::fprintf(stderr,
                      "fleet: WARNING: journal degraded (%s, errno "
                      "%d) — campaign completed but is not resumable "
                      "past the failure point\n",
                      result.journalStatus.lastOp.c_str(),
                      result.journalStatus.lastErrno);

    if (!opt.triageOut.empty()) {
        std::ofstream out(opt.triageOut,
                          std::ios::binary | std::ios::trunc);
        out << fleetTriageJson(result) << "\n";
        if (!out) {
            std::fprintf(stderr, "fleet: cannot write %s\n",
                          opt.triageOut.c_str());
            return 1;
        }
        std::printf("fleet: triage -> %s\n", opt.triageOut.c_str());
    }

    if (opt.expectComplete &&
        (result.halted || !result.adaptive.passed)) {
        std::fprintf(stderr,
                      "fleet: --expect-complete violated (halted=%d "
                      "passed=%d)\n",
                      int(result.halted), int(result.adaptive.passed));
        return 1;
    }
    if (result.releases < opt.expectReleasesMin) {
        std::fprintf(stderr,
                      "fleet: --expect-releases-min %llu violated "
                      "(saw %llu)\n",
                      (unsigned long long)opt.expectReleasesMin,
                      (unsigned long long)result.releases);
        return 1;
    }
    return 0;
}

int
cmdRun(const Options &opt)
{
    std::unique_ptr<ShardSource> source = makeSource(opt);
    if (!source)
        return 2;
    chaos::ChaosProfile profile;
    if (!resolveChaos(opt, profile))
        return 2;
    LocalFleetConfig cfg;
    cfg.coordinator = makeCoordinatorConfig(opt, profile);
    cfg.workers = opt.workers;
    cfg.dieOnResult = opt.dieOnResult;
    cfg.wireChaos = profile.wire;
    cfg.corruptEveryN = opt.corruptEveryN;
    cfg.corruptSilently = opt.corruptSilently;
    bool listen_ok = false;
    FleetResult result = runLocalFleet(*source, cfg, &listen_ok);
    if (opt.workers > 0 && !listen_ok)
        std::fprintf(stderr,
                      "fleet: socket bind failed; campaign completed "
                      "locally\n");
    return report(result, opt);
}

int
cmdCoordinator(const Options &opt)
{
    std::unique_ptr<ShardSource> source = makeSource(opt);
    if (!source)
        return 2;
    chaos::ChaosProfile profile;
    if (!resolveChaos(opt, profile))
        return 2;
    FleetCoordinator coordinator(*source,
                                 makeCoordinatorConfig(opt, profile));
    if (!coordinator.listen()) {
        std::fprintf(stderr, "fleet: cannot bind %s:%u\n",
                      opt.bind.c_str(), unsigned(opt.port));
        return 2;
    }
    if (opt.workers > 0) {
        std::printf("fleet: listening on %u\n",
                    unsigned(coordinator.boundPort()));
        std::fflush(stdout);
    }
    FleetResult result = coordinator.run();
    return report(result, opt);
}

int
cmdWorker(const Options &opt)
{
    if (opt.port == 0) {
        std::fprintf(stderr, "fleet worker: --port is required\n");
        return 2;
    }
    chaos::ChaosProfile profile;
    if (!resolveChaos(opt, profile))
        return 2;
    WorkerConfig cfg;
    cfg.host = opt.host;
    cfg.port = opt.port;
    cfg.name = opt.name;
    cfg.dieOnResult = opt.dieOnResult;
    cfg.wireChaos = profile.wire;
    // Standalone workers derive their fault stream from their display
    // name, so two workers started with the same --chaos-seed still
    // see different (but each reproducible) fault schedules.
    cfg.chaosSeed = chaos::deriveSeed(
        opt.chaosSeed,
        "wire:" + (opt.name.empty() ? std::string("worker")
                                    : opt.name));
    cfg.corruptEveryN = opt.corruptEveryN;
    cfg.corruptSilently = opt.corruptSilently;
    return runWorker(cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    Options opt;
    if (!parseOptions(argc, argv, 2, opt)) {
        usage();
        return 2;
    }
    if (cmd == "run")
        return cmdRun(opt);
    if (cmd == "coordinator")
        return cmdCoordinator(opt);
    if (cmd == "worker")
        return cmdWorker(opt);
    usage();
    return 2;
}
