/**
 * @file
 * Predicted-vs-manifested sweep, and the explore-strategy driver.
 *
 * Default mode sweeps seeds of one configuration, recording a trace per
 * seed and running the predictive race pass (src/predict/) on it. The
 * output table answers the EXPERIMENTS.md question: of the races a
 * schedule *could* hit, how many did the recorded run manifest on its
 * own, and how many did only the predictive pass surface (passing run,
 * confirmed prediction)?
 *
 * --explore instead drives the bounded stateless model checker
 * (ExploreSource) as an adaptive campaign over one recorded base run:
 * schedule perturbations only, fixed interleaving budget, deterministic
 * at any worker count. --expect-failure-class gates CI on the explorer
 * finding the reference failure within budget.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "guidance/adaptive_campaign.hh"
#include "predict/explore.hh"
#include "predict/predict.hh"
#include "tester/configs.hh"
#include "trace/repro.hh"

using namespace drf;

namespace
{

struct Args
{
    std::string protocol = "viper";
    std::string scopeMode = "racy";
    std::string outJson;
    std::string outAggregates;
    std::string expectFailureClass;
    std::uint64_t seed = 1;
    unsigned seeds = 8;
    unsigned cus = 2;
    unsigned episodes = 10;
    unsigned actions = 30;
    unsigned atomicLocs = 10;
    unsigned jobs = 0;
    unsigned predictProbes = 8;
    std::size_t budget = 64;
    std::size_t flips = 8;
    bool explore = false;
};

std::optional<std::string>
argValue(int argc, char **argv, int &i, const char *flag)
{
    if (std::strcmp(argv[i], flag) != 0)
        return std::nullopt;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    return std::string(argv[++i]);
}

Args
parseArgs(int argc, char **argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        if (auto v = argValue(argc, argv, i, "--protocol"))
            a.protocol = *v;
        else if (auto v = argValue(argc, argv, i, "--scope-mode"))
            a.scopeMode = *v;
        else if (auto v = argValue(argc, argv, i, "--out-json"))
            a.outJson = *v;
        else if (auto v = argValue(argc, argv, i, "--out-aggregates"))
            a.outAggregates = *v;
        else if (auto v =
                     argValue(argc, argv, i, "--expect-failure-class"))
            a.expectFailureClass = *v;
        else if (auto v = argValue(argc, argv, i, "--seed"))
            a.seed = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = argValue(argc, argv, i, "--seeds"))
            a.seeds = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--cus"))
            a.cus = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--episodes"))
            a.episodes = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--actions"))
            a.actions = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--atomic-locs"))
            a.atomicLocs =
                unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--jobs"))
            a.jobs = unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--predict-probes"))
            a.predictProbes =
                unsigned(std::strtoul(v->c_str(), nullptr, 10));
        else if (auto v = argValue(argc, argv, i, "--budget"))
            a.budget = std::strtoull(v->c_str(), nullptr, 10);
        else if (auto v = argValue(argc, argv, i, "--flips"))
            a.flips = std::strtoull(v->c_str(), nullptr, 10);
        else if (std::strcmp(argv[i], "--explore") == 0)
            a.explore = true;
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    return a;
}

GpuTestPreset
toolPreset(const Args &a, std::uint64_t seed)
{
    ProtocolKind protocol = ProtocolKind::Viper;
    if (auto p = parseProtocolKind(a.protocol))
        protocol = *p;
    else {
        std::fprintf(stderr, "unknown protocol: %s\n",
                     a.protocol.c_str());
        std::exit(2);
    }
    ScopeMode mode = ScopeMode::Racy;
    if (auto m = parseScopeMode(a.scopeMode))
        mode = *m;
    else {
        std::fprintf(stderr, "unknown scope mode: %s\n",
                     a.scopeMode.c_str());
        std::exit(2);
    }

    GpuTestPreset preset;
    preset.cacheClass = CacheSizeClass::Large;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Large, a.cus);
    preset.system.l1.protocol = protocol;
    preset.tester = makeGpuTesterConfig(a.actions, a.episodes,
                                        a.atomicLocs, seed);
    preset.tester.lanes = 8;
    preset.tester.episodeGen.lanes = 8;
    preset.tester.wfsPerCu = 2;
    preset.tester.variables.numNormalVars = 512;
    preset.tester.variables.addrRangeBytes = 1 << 14;
    preset.tester.scopeMode = mode;
    preset.name = a.protocol + "-" + a.scopeMode + "/seed" +
                  std::to_string(seed);
    return preset;
}

bool
writeText(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content << "\n";
    if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
}

int
runExplore(const Args &a)
{
    // Explore perturbs the schedule of a *passing* run — if the base
    // already fails, the bug is manifest and replay/shrink is the right
    // tool — so scan seeds until a recording comes back green.
    std::uint64_t base_seed = a.seed;
    bool found = false;
    for (; base_seed < a.seed + a.seeds; ++base_seed) {
        ReproTrace probe = recordGpuRun(toolPreset(a, base_seed));
        if (probe.result.passed) {
            found = true;
            break;
        }
        std::printf("explore: seed %llu fails at record time (%s), "
                    "skipping\n",
                    (unsigned long long)base_seed,
                    failureClassName(probe.result.failureClass));
    }
    if (!found) {
        std::fprintf(stderr,
                     "explore: no passing base recording in %u seeds\n",
                     a.seeds);
        return 1;
    }

    ExploreOptions opts;
    opts.budget = a.budget;
    opts.maxFlipsPerTrace = a.flips;
    opts.predict.maxProbes = a.predictProbes;
    ExploreSource source(toolPreset(a, base_seed), opts);
    std::printf("explore: base run %s (%zu episodes, %s)\n",
                source.baseTrace().presetName.c_str(),
                source.baseTrace().schedule.size(),
                source.baseTrace().result.passed
                    ? "passed"
                    : failureClassName(
                          source.baseTrace().result.failureClass));

    AdaptiveCampaignConfig cfg;
    cfg.jobs = a.jobs;
    // Run the whole budget even past the first failure: the aggregate
    // (and the determinism contract the tests byte-compare) then covers
    // the full exploration, not a completion-order-dependent prefix.
    cfg.stopOnFailure = false;
    AdaptiveCampaignResult result = runAdaptiveCampaign(source, cfg);

    std::printf("explore: %zu interleavings run, first failure: %s\n",
                result.shardsRun,
                result.firstFailure
                    ? failureClassName(result.firstFailureClass)
                    : "none");
    for (const auto &[cls, count] : source.failuresByClass()) {
        std::printf("  %s: %zu interleaving%s\n", failureClassName(cls),
                    count, count == 1 ? "" : "s");
    }
    if (result.predictTriage) {
        std::printf("predicted races: %zu candidates, %zu confirmed, "
                    "%zu demoted\n",
                    result.predictTriage->candidates,
                    result.predictTriage->confirmed,
                    result.predictTriage->demoted);
    }

    if (!a.outJson.empty() &&
        !writeText(a.outJson,
                   adaptiveCampaignToJson(result, "gpu_tester"))) {
        return 1;
    }
    if (!a.outAggregates.empty() &&
        !writeText(a.outAggregates,
                   adaptiveAggregatesJson(result, "gpu_tester"))) {
        return 1;
    }

    if (!a.expectFailureClass.empty()) {
        bool hit = false;
        for (const auto &[cls, count] : source.failuresByClass())
            hit = hit || a.expectFailureClass == failureClassName(cls);
        if (!hit) {
            std::fprintf(stderr,
                         "explore: expected some interleaving to fail "
                         "with %s within budget %zu, none did\n",
                         a.expectFailureClass.c_str(), a.budget);
            return 1;
        }
    }
    return 0;
}

int
runSweep(const Args &a)
{
    std::printf("%6s  %-16s  %10s  %9s  %7s  %7s\n", "seed",
                "manifested", "candidates", "confirmed", "demoted",
                "replays");
    std::size_t manifested = 0, predicted_only = 0, clean = 0;
    RecordOptions rec;
    rec.captureEvents = true;
    for (std::uint64_t seed = a.seed; seed < a.seed + a.seeds; ++seed) {
        ReproTrace trace = recordGpuRun(toolPreset(a, seed), rec);
        PredictOptions opts;
        opts.maxProbes = a.predictProbes;
        PredictReport report = predictRaces(trace, opts);

        const bool failed = !trace.result.passed;
        if (failed)
            ++manifested;
        else if (report.confirmedCount() > 0)
            ++predicted_only;
        else
            ++clean;
        std::printf("%6llu  %-16s  %10zu  %9zu  %7zu  %7zu\n",
                    (unsigned long long)seed,
                    failed
                        ? failureClassName(trace.result.failureClass)
                        : "passed",
                    report.candidates, report.confirmedCount(),
                    report.demotedCount(), report.replays);
    }
    std::printf("\n%u seeds: %zu manifested at record time, %zu "
                "predicted-only (passing run, confirmed race), %zu "
                "clean\n",
                a.seeds, manifested, predicted_only, clean);

    if (!a.outJson.empty()) {
        std::ostringstream os;
        os << "{\"seeds\": " << a.seeds
           << ", \"manifested\": " << manifested
           << ", \"predicted_only\": " << predicted_only
           << ", \"clean\": " << clean << "}";
        if (!writeText(a.outJson, os.str()))
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);
    return a.explore ? runExplore(a) : runSweep(a);
}
