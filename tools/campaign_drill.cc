/**
 * @file
 * CI resilience drill for the campaign supervisor.
 *
 * Runs a small multi-seed GPU campaign under runSupervisedCampaign with
 * host faults deliberately armed on designated shard indices — a crash
 * (SIGSEGV), a hang (infinite sleep), a transient failure that succeeds
 * on retry — then asserts the supervisor's triage against expectations
 * passed on the command line. A second invocation with --resume (and no
 * faults armed) replays the journal, re-runs only the shards that ended
 * at host level, and must complete the campaign.
 *
 *   campaign_drill --seeds 6 --jobs 2 --fork --shard-timeout 5
 *                  --crash 1 --hang 3 --transient 4
 *                  --journal drill.jsonl --repro-dir drill-repros
 *                  --expect-crashes 1 --expect-timeouts 1
 *                  --expect-retries-min 1
 *   campaign_drill --seeds 6 --jobs 2 --shard-timeout 5
 *                  --journal drill.jsonl --resume --expect-complete
 *
 * Exit codes: 0 expectations met, 1 triage mismatch or campaign
 * problem, 2 usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/campaign_json.hh"
#include "campaign/host_fault.hh"
#include "campaign/supervisor.hh"
#include "tester/configs.hh"

using namespace drf;

namespace
{

struct Args
{
    std::size_t seeds = 6;
    unsigned jobs = 2;
    bool fork = false;
    double shardTimeout = 0.0;
    std::uint64_t eventBudget = 0;
    long crash = -1;
    long hang = -1;
    long transient = -1;
    unsigned transientAttempts = 1;
    unsigned maxRetries = 2;
    std::string journal;
    std::string reproDir;
    std::string outJson;
    bool resume = false;

    long expectCrashes = -1;
    long expectTimeouts = -1;
    long expectRetriesMin = -1;
    bool expectComplete = false;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--seeds")
            a.seeds = std::strtoull(need(i), nullptr, 10);
        else if (flag == "--jobs")
            a.jobs = unsigned(std::strtoul(need(i), nullptr, 10));
        else if (flag == "--fork")
            a.fork = true;
        else if (flag == "--shard-timeout")
            a.shardTimeout = std::strtod(need(i), nullptr);
        else if (flag == "--event-budget")
            a.eventBudget = std::strtoull(need(i), nullptr, 10);
        else if (flag == "--crash")
            a.crash = std::strtol(need(i), nullptr, 10);
        else if (flag == "--hang")
            a.hang = std::strtol(need(i), nullptr, 10);
        else if (flag == "--transient")
            a.transient = std::strtol(need(i), nullptr, 10);
        else if (flag == "--transient-attempts")
            a.transientAttempts =
                unsigned(std::strtoul(need(i), nullptr, 10));
        else if (flag == "--max-retries")
            a.maxRetries = unsigned(std::strtoul(need(i), nullptr, 10));
        else if (flag == "--journal")
            a.journal = need(i);
        else if (flag == "--repro-dir")
            a.reproDir = need(i);
        else if (flag == "--out")
            a.outJson = need(i);
        else if (flag == "--resume")
            a.resume = true;
        else if (flag == "--expect-crashes")
            a.expectCrashes = std::strtol(need(i), nullptr, 10);
        else if (flag == "--expect-timeouts")
            a.expectTimeouts = std::strtol(need(i), nullptr, 10);
        else if (flag == "--expect-retries-min")
            a.expectRetriesMin = std::strtol(need(i), nullptr, 10);
        else if (flag == "--expect-complete")
            a.expectComplete = true;
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    return a;
}

/** Small, fast preset: the drill tests the supervisor, not the sim. */
GpuTestPreset
drillPreset()
{
    GpuTestPreset preset;
    preset.name = "drill";
    preset.cacheClass = CacheSizeClass::Small;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    preset.tester = makeGpuTesterConfig(10, 2, 4, 1);
    return preset;
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parseArgs(argc, argv);

    std::vector<ShardSpec> shards =
        gpuSeedSweep(drillPreset(), 1, a.seeds);

    HostFaultInjector faults;
    if (a.crash >= 0)
        faults.arm(std::size_t(a.crash), HostFaultKind::Crash);
    if (a.hang >= 0)
        faults.arm(std::size_t(a.hang), HostFaultKind::Hang);
    if (a.transient >= 0)
        faults.arm(std::size_t(a.transient), HostFaultKind::Transient,
                   a.transientAttempts);
    faults.armShards(shards);

    if ((a.hang >= 0 || a.crash >= 0) && !a.fork &&
        a.shardTimeout <= 0.0) {
        std::fprintf(stderr,
                     "refusing to arm crash/hang faults without --fork "
                     "or --shard-timeout\n");
        return 2;
    }

    SupervisorConfig cfg;
    cfg.campaign.jobs = a.jobs;
    cfg.campaign.stopOnFailure = false;
    cfg.forkIsolation = a.fork;
    cfg.shardTimeoutSeconds = a.shardTimeout;
    cfg.shardEventBudget = a.eventBudget;
    cfg.maxRetries = a.maxRetries;
    cfg.journalPath = a.journal;
    cfg.resume = a.resume;
    cfg.reproDir = a.reproDir;
    cfg.handleSignals = true;

    CampaignResult res = runSupervisedCampaign(std::move(shards), cfg);

    std::printf("campaign: %zu planned, %zu run (%zu resumed, %zu "
                "skipped)\n",
                res.shardsPlanned, res.shardsRun, res.shardsResumed,
                res.shardsSkipped);
    std::printf("triage: %zu crashes, %zu timeouts, %zu exhausted, "
                "%llu retries%s\n",
                res.hostCrashes, res.hostTimeouts, res.resourceExhausted,
                (unsigned long long)res.retriesPerformed,
                res.interrupted ? ", INTERRUPTED" : "");
    if (res.firstFailure) {
        std::printf("first failure: %s (seed %llu, %s)\n",
                    res.firstFailure->name.c_str(),
                    (unsigned long long)res.firstFailure->seed,
                    failureClassName(res.firstFailure->failureClass));
    }

    if (!a.outJson.empty()) {
        std::ofstream out(a.outJson);
        out << campaignToJson(res, "gpu_tester") << "\n";
        if (out)
            std::printf("wrote %s\n", a.outJson.c_str());
    }

    bool ok = true;
    auto check = [&](const char *what, bool cond) {
        if (!cond) {
            std::fprintf(stderr, "EXPECTATION FAILED: %s\n", what);
            ok = false;
        }
    };
    if (a.expectCrashes >= 0)
        check("host crash count",
              res.hostCrashes == std::size_t(a.expectCrashes));
    if (a.expectTimeouts >= 0)
        check("host timeout count",
              res.hostTimeouts == std::size_t(a.expectTimeouts));
    if (a.expectRetriesMin >= 0)
        check("retry count minimum",
              res.retriesPerformed >=
                  std::uint64_t(a.expectRetriesMin));
    if (a.expectComplete) {
        check("campaign completed all shards",
              res.shardsRun == res.shardsPlanned);
        check("campaign passed", res.passed);
        check("no shards exhausted retries", res.resourceExhausted == 0);
    }
    // A transiently failing shard must end up succeeding (never counted
    // as ResourceExhausted) as long as retries cover its fail budget.
    if (a.transient >= 0 && a.transientAttempts <= a.maxRetries)
        check("transient shard recovered", res.resourceExhausted == 0);

    std::printf("drill: %s\n", ok ? "expectations met" : "FAILED");
    return ok ? 0 : 1;
}
