#!/usr/bin/env python3
"""Tests for the bench regression gate's baseline handling.

unittest-based (the CI image carries no pytest), but pytest-compatible:
`python3 -m unittest` or `pytest` both discover it. Only the pure
helpers and the setup-error paths are exercised — nothing here runs a
bench binary.
"""

import importlib.util
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS_DIR = Path(__file__).resolve().parent
SCRIPT = TOOLS_DIR / "check_bench_regression.py"

_spec = importlib.util.spec_from_file_location(
    "check_bench_regression", SCRIPT
)
cbr = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbr)


class LoadBaselineTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.baseline_dir = Path(self._tmp.name)
        self.regen = cbr.regen_commands(Path("build"))

    def tearDown(self):
        self._tmp.cleanup()

    def test_valid_baseline_loads(self):
        doc = {"protocol": "viper", "messages_per_sec": 123.0}
        (self.baseline_dir / "BENCH_msg_path.json").write_text(
            json.dumps(doc)
        )
        loaded = cbr.load_baseline(
            self.baseline_dir, "BENCH_msg_path.json", self.regen
        )
        self.assertEqual(doc, loaded)

    def test_absent_file_raises_advice_not_traceback(self):
        with self.assertRaises(cbr.MissingBaselineFile) as ctx:
            cbr.load_baseline(
                self.baseline_dir, "BENCH_fleet.json", self.regen
            )
        advice = ctx.exception.advice()
        self.assertIn("BENCH_fleet.json", advice)
        self.assertIn("does not exist", advice)
        self.assertIn("fleet_scaling", advice)
        self.assertIn("--out BENCH_fleet.json", advice)

    def test_corrupt_json_raises_advice(self):
        (self.baseline_dir / "BENCH_hotpath.json").write_text(
            "{not json"
        )
        with self.assertRaises(cbr.MissingBaselineFile) as ctx:
            cbr.load_baseline(
                self.baseline_dir, "BENCH_hotpath.json", self.regen
            )
        advice = ctx.exception.advice()
        self.assertIn("not valid JSON", advice)
        self.assertIn("hotpath", advice)

    def test_every_known_baseline_has_a_regen_command(self):
        for name in (
            "BENCH_campaign.json",
            "BENCH_msg_path.json",
            "BENCH_guidance.json",
            "BENCH_hotpath.json",
            "BENCH_fleet.json",
            "BENCH_predict.json",
        ):
            self.assertIn(name, self.regen)
            self.assertIn(f"--out {name}", self.regen[name])


class MissingBaselineKeyTest(unittest.TestCase):
    def test_nested_lookup_succeeds(self):
        doc = {"stages": {"explore": {"events_per_sec": 5.0}}}
        self.assertEqual(
            5.0,
            cbr.baseline_key(
                doc, "B.json", "stages.explore.events_per_sec", "cmd"
            ),
        )

    def test_missing_key_carries_regeneration_advice(self):
        with self.assertRaises(cbr.MissingBaselineKey) as ctx:
            cbr.baseline_key({}, "B.json", "protocol", "regen --now")
        advice = ctx.exception.advice()
        self.assertIn("'protocol'", advice)
        self.assertIn("regen --now", advice)


class MainSetupErrorTest(unittest.TestCase):
    """End to end: absent baselines exit 2 with advice, no traceback."""

    def test_absent_baseline_prints_advice(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp = Path(tmp)
            bench_dir = tmp / "build" / "bench"
            bench_dir.mkdir(parents=True)
            for binary in (
                "campaign_scaling",
                "msg_path",
                "guidance_convergence",
                "hotpath",
                "fleet_scaling",
                "predict_throughput",
            ):
                (bench_dir / binary).touch()
            proc = subprocess.run(
                [
                    sys.executable,
                    str(SCRIPT),
                    "--build-dir",
                    str(tmp / "build"),
                    "--baseline-dir",
                    str(tmp),
                ],
                capture_output=True,
                text=True,
            )
        self.assertEqual(2, proc.returncode)
        self.assertIn("BENCH_campaign.json", proc.stderr)
        self.assertIn("does not exist", proc.stderr)
        self.assertIn("commit the result", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)


if __name__ == "__main__":
    unittest.main()
