#!/usr/bin/env python3
"""Bench regression gate.

Runs the throughput bench binaries several times (median-of-N) and the
guidance-convergence bench once (it is internally median-of-3 master
seeds), compares the headline metrics against the committed baselines
(BENCH_campaign.json / BENCH_msg_path.json / BENCH_guidance.json), and
fails when any metric regresses by more than the tolerance.

Compared metrics:
  campaign_scaling:     event_queue.current_events_per_sec,
                        scaling[jobs=1].events_per_sec,
                        best multi-job speedup_vs_serial -- gated only
                        when both baseline and candidate mark the point
                        scaling_valid (hardware_concurrency >= 2*jobs);
                        on cramped hosts the speedup check is skipped
                        while the events/s checks still gate
  fleet_scaling:        scaling[workers=0].events_per_sec (always), and
                        best multi-worker speedup_vs_serial under the
                        same scaling_valid rule as campaign_scaling
                        (the bench itself exits nonzero if any fleet
                        size diverges from the serial union digest)
  msg_path:             messages_per_sec
  hotpath:              stages.{episode_generation,controller_dispatch,
                        ref_check}.events_per_sec
  predict_throughput:   stages.{hb_build,explore}.events_per_sec
                        (happens-before reconstruction and bounded
                        schedule exploration; see src/predict/)
  guidance_convergence: median_reduction_pct (episode savings of the
                        guided scheduler vs the random baseline; the
                        binary itself also exits nonzero if coverage
                        targets are missed or determinism breaks)

Baselines are additionally keyed by the L1 protocol they measured
(the 'protocol' key every emitter stamps): a candidate run over a
different protocol variant is refused rather than compared, and a
baseline predating the key gets regenerate-and-commit advice.

Shared-runner CI boxes are noisy and differ from the machine that
produced the baseline (the baseline records its cpu_model / git_sha /
build_type for exactly this reason), so the default tolerance is a
deliberately generous 25%; the gate exists to catch order-of-magnitude
mistakes (an accidental O(n^2), a debug build, a disabled fast path),
not 5% noise.

Usage:
  check_bench_regression.py --build-dir build [--runs 3]
      [--tolerance 0.25] [--baseline-dir .]

Exit status: 0 = no regression, 1 = regression, 2 = usage/setup error.
"""

import argparse
import json
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path


def run_bench(cmd, out_path):
    """Run one bench invocation writing JSON to out_path."""
    proc = subprocess.run(
        [str(c) for c in cmd], capture_output=True, text=True
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise RuntimeError(f"bench failed: {' '.join(map(str, cmd))}")
    with open(out_path) as f:
        return json.load(f)


def median_metric(samples, extract):
    return statistics.median(extract(s) for s in samples)


class MissingBaselineKey(Exception):
    """A baseline JSON lacks a key this gate needs."""

    def __init__(self, baseline_name, key, regenerate_cmd):
        self.baseline_name = baseline_name
        self.key = key
        self.regenerate_cmd = regenerate_cmd
        super().__init__(key)

    def advice(self):
        return (
            f"baseline {self.baseline_name} has no '{self.key}' key.\n"
            f"The committed baseline predates this metric. Regenerate "
            f"it on a quiet machine and commit the result:\n"
            f"    {self.regenerate_cmd}"
        )


class MissingBaselineFile(Exception):
    """A committed baseline JSON is absent (or unreadable as JSON)."""

    def __init__(self, baseline_name, path, regenerate_cmd, why):
        self.baseline_name = baseline_name
        self.path = path
        self.regenerate_cmd = regenerate_cmd
        self.why = why
        super().__init__(baseline_name)

    def advice(self):
        return (
            f"baseline {self.baseline_name} {self.why} "
            f"(looked at {self.path}).\n"
            f"Generate it on a quiet machine and commit the result:\n"
            f"    {self.regenerate_cmd}"
        )


def regen_commands(build_dir):
    """Per-baseline regenerate-and-commit command lines."""
    return {
        "BENCH_campaign.json": f"{build_dir}/bench/campaign_scaling"
        " --out BENCH_campaign.json",
        "BENCH_msg_path.json": f"{build_dir}/bench/msg_path"
        " --out BENCH_msg_path.json",
        "BENCH_guidance.json": f"{build_dir}/bench/"
        "guidance_convergence --out BENCH_guidance.json",
        "BENCH_hotpath.json": f"{build_dir}/bench/hotpath"
        " --out BENCH_hotpath.json",
        "BENCH_fleet.json": f"{build_dir}/bench/fleet_scaling"
        " --out BENCH_fleet.json",
        "BENCH_predict.json": f"{build_dir}/bench/"
        "predict_throughput --out BENCH_predict.json",
    }


def load_baseline(baseline_dir, name, regen_cmds):
    """Parse one committed baseline, or raise MissingBaselineFile with
    regeneration advice instead of surfacing a bare traceback."""
    path = Path(baseline_dir) / name
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise MissingBaselineFile(
            name, path, regen_cmds[name], "does not exist"
        ) from None
    except json.JSONDecodeError as err:
        raise MissingBaselineFile(
            name, path, regen_cmds[name], f"is not valid JSON ({err})"
        ) from None


def baseline_key(doc, baseline_name, key, regenerate_cmd):
    """doc[key], or a MissingBaselineKey with regeneration advice."""
    node = doc
    for part in key.split("."):
        if not isinstance(node, dict) or part not in node:
            raise MissingBaselineKey(baseline_name, key, regenerate_cmd)
        node = node[part]
    return node


def serial_events_per_sec(doc, axis="jobs", serial_value=1):
    for point in doc["scaling"]:
        if point[axis] == serial_value:
            return point["events_per_sec"]
    raise KeyError(f"no {axis}={serial_value} scaling point")


def best_valid_speedup(doc, axis="jobs"):
    """Best multi-worker speedup among points the bench marked valid.

    Returns None when no multi-worker point is scaling_valid
    (oversubscribed host, or a baseline predating the field): the caller
    must then skip the speedup gate rather than compare meaningless
    numbers.
    """
    best = None
    for point in doc["scaling"]:
        if point[axis] <= (1 if axis == "jobs" else 0):
            continue
        if not point.get("scaling_valid", False):
            continue
        speedup = point["speedup_vs_serial"]
        if best is None or speedup > best:
            best = speedup
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", type=Path, default=Path("build"))
    ap.add_argument("--baseline-dir", type=Path, default=Path("."))
    ap.add_argument("--runs", type=int, default=3)
    ap.add_argument("--tolerance", type=float, default=0.25)
    ap.add_argument(
        "--seeds",
        type=int,
        default=8,
        help="campaign seeds per run (smaller than the committed "
        "baseline's 32: the metric is a rate, not a total)",
    )
    args = ap.parse_args()

    campaign_bin = args.build_dir / "bench" / "campaign_scaling"
    msg_bin = args.build_dir / "bench" / "msg_path"
    guidance_bin = args.build_dir / "bench" / "guidance_convergence"
    hotpath_bin = args.build_dir / "bench" / "hotpath"
    fleet_bin = args.build_dir / "bench" / "fleet_scaling"
    predict_bin = args.build_dir / "bench" / "predict_throughput"
    for binary in (
        campaign_bin,
        msg_bin,
        guidance_bin,
        hotpath_bin,
        fleet_bin,
        predict_bin,
    ):
        if not binary.exists():
            print(f"missing bench binary: {binary}", file=sys.stderr)
            return 2

    regen_cmds = regen_commands(args.build_dir)
    try:
        baseline_campaign = load_baseline(
            args.baseline_dir, "BENCH_campaign.json", regen_cmds
        )
        baseline_msg = load_baseline(
            args.baseline_dir, "BENCH_msg_path.json", regen_cmds
        )
        baseline_guidance = load_baseline(
            args.baseline_dir, "BENCH_guidance.json", regen_cmds
        )
        baseline_hotpath = load_baseline(
            args.baseline_dir, "BENCH_hotpath.json", regen_cmds
        )
        baseline_fleet = load_baseline(
            args.baseline_dir, "BENCH_fleet.json", regen_cmds
        )
        baseline_predict = load_baseline(
            args.baseline_dir, "BENCH_predict.json", regen_cmds
        )
    except MissingBaselineFile as err:
        print(err.advice(), file=sys.stderr)
        return 2
    except OSError as err:
        print(f"cannot read baseline: {err}", file=sys.stderr)
        return 2

    # Baselines are keyed by the L1 protocol they measured: a VIPER
    # baseline must never gate an LRCC run (the table shapes differ, so
    # the rates are not comparable). Every emitter stamps 'protocol'
    # into its JSON; a baseline predating the field gets the standard
    # regenerate-and-commit advice.
    baseline_protocols = {}
    try:
        for name, doc in (
            ("BENCH_campaign.json", baseline_campaign),
            ("BENCH_msg_path.json", baseline_msg),
            ("BENCH_guidance.json", baseline_guidance),
            ("BENCH_hotpath.json", baseline_hotpath),
            ("BENCH_fleet.json", baseline_fleet),
            ("BENCH_predict.json", baseline_predict),
        ):
            baseline_protocols[name] = baseline_key(
                doc, name, "protocol", regen_cmds[name]
            )
            print(
                f"baseline {name}: "
                f"cpu_model={doc.get('cpu_model', '?')!r} "
                f"git_sha={doc.get('git_sha', '?')} "
                f"build_type={doc.get('build_type', '?')} "
                f"protocol={baseline_protocols[name]}"
            )
    except MissingBaselineKey as err:
        print(err.advice(), file=sys.stderr)
        return 2

    def check_protocol(name, doc):
        """Fail fast when a candidate ran a different protocol than
        the baseline it would be compared against."""
        measured = doc.get("protocol", "viper")
        if measured != baseline_protocols[name]:
            print(
                f"{name} is keyed by protocol "
                f"'{baseline_protocols[name]}' but the candidate "
                f"measured '{measured}'; rerun without a --protocol "
                f"override or regenerate the baseline:\n"
                f"    {regen_cmds[name]}",
                file=sys.stderr,
            )
            raise SystemExit(2)

    campaign_samples = []
    msg_samples = []
    hotpath_samples = []
    predict_samples = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for i in range(args.runs):
            print(f"run {i + 1}/{args.runs} ...", flush=True)
            campaign_samples.append(
                run_bench(
                    [
                        campaign_bin,
                        "--seeds",
                        args.seeds,
                        "--out",
                        tmp / "campaign.json",
                    ],
                    tmp / "campaign.json",
                )
            )
            msg_samples.append(
                run_bench(
                    [msg_bin, "--out", tmp / "msg.json"],
                    tmp / "msg.json",
                )
            )
            hotpath_samples.append(
                run_bench(
                    [hotpath_bin, "--out", tmp / "hotpath.json"],
                    tmp / "hotpath.json",
                )
            )
            predict_samples.append(
                run_bench(
                    [predict_bin, "--out", tmp / "predict.json"],
                    tmp / "predict.json",
                )
            )
            check_protocol("BENCH_campaign.json", campaign_samples[-1])
            check_protocol("BENCH_msg_path.json", msg_samples[-1])
            check_protocol("BENCH_hotpath.json", hotpath_samples[-1])
            check_protocol("BENCH_predict.json", predict_samples[-1])
        # Once, not per-run: the convergence bench medians over three
        # master seeds internally, and its own exit status already
        # enforces coverage targets and deterministic replay.
        print("guidance convergence ...", flush=True)
        guidance_doc = run_bench(
            [guidance_bin, "--out", tmp / "guidance.json"],
            tmp / "guidance.json",
        )
        check_protocol("BENCH_guidance.json", guidance_doc)
        # Also once: each fleet point forks real worker processes, and
        # the bench aborts itself if any fleet size diverges from the
        # serial union digest, so one run already carries the
        # correctness signal.
        print("fleet scaling ...", flush=True)
        fleet_doc = run_bench(
            [
                fleet_bin,
                "--shards",
                8,
                "--workers-list",
                "0,2",
                "--out",
                tmp / "fleet.json",
            ],
            tmp / "fleet.json",
        )
        check_protocol("BENCH_fleet.json", fleet_doc)

    base_speedup = best_valid_speedup(baseline_campaign)
    speedup_samples = [best_valid_speedup(s) for s in campaign_samples]
    cand_speedup = (
        statistics.median(s for s in speedup_samples if s is not None)
        if any(s is not None for s in speedup_samples)
        else None
    )
    if base_speedup is None or cand_speedup is None:
        side = "baseline" if base_speedup is None else "candidate"
        print(
            "campaign.best_valid_speedup: skipped "
            f"({side} has no scaling_valid multi-job point; "
            "events/s checks below still gate)"
        )

    fleet_regen = (
        f"{args.build_dir}/bench/fleet_scaling --out BENCH_fleet.json"
    )
    try:
        checks = [
            (
                "event_queue.current_events_per_sec",
                baseline_key(
                    baseline_campaign,
                    "BENCH_campaign.json",
                    "event_queue.current_events_per_sec",
                    f"{args.build_dir}/bench/campaign_scaling "
                    "--out BENCH_campaign.json",
                ),
                median_metric(
                    campaign_samples,
                    lambda d: d["event_queue"]["current_events_per_sec"],
                ),
            ),
            (
                "campaign.serial_events_per_sec",
                serial_events_per_sec(baseline_campaign),
                median_metric(campaign_samples, serial_events_per_sec),
            ),
            (
                "msg_path.messages_per_sec",
                baseline_key(
                    baseline_msg,
                    "BENCH_msg_path.json",
                    "messages_per_sec",
                    f"{args.build_dir}/bench/msg_path "
                    "--out BENCH_msg_path.json",
                ),
                median_metric(
                    msg_samples, lambda d: d["messages_per_sec"]
                ),
            ),
            (
                "guidance.median_reduction_pct",
                baseline_key(
                    baseline_guidance,
                    "BENCH_guidance.json",
                    "median_reduction_pct",
                    f"{args.build_dir}/bench/guidance_convergence "
                    "--out BENCH_guidance.json",
                ),
                guidance_doc["median_reduction_pct"],
            ),
            (
                "fleet.serial_events_per_sec",
                serial_events_per_sec(
                    {
                        "scaling": baseline_key(
                            baseline_fleet,
                            "BENCH_fleet.json",
                            "scaling",
                            fleet_regen,
                        )
                    },
                    axis="workers",
                    serial_value=0,
                ),
                serial_events_per_sec(
                    fleet_doc, axis="workers", serial_value=0
                ),
            ),
        ]
        for stage in (
            "episode_generation",
            "controller_dispatch",
            "ref_check",
        ):
            checks.append(
                (
                    f"hotpath.{stage}.events_per_sec",
                    baseline_key(
                        baseline_hotpath,
                        "BENCH_hotpath.json",
                        f"stages.{stage}.events_per_sec",
                        f"{args.build_dir}/bench/hotpath "
                        "--out BENCH_hotpath.json",
                    ),
                    median_metric(
                        hotpath_samples,
                        lambda d, s=stage: d["stages"][s][
                            "events_per_sec"
                        ],
                    ),
                )
            )
        for stage in ("hb_build", "explore"):
            checks.append(
                (
                    f"predict.{stage}.events_per_sec",
                    baseline_key(
                        baseline_predict,
                        "BENCH_predict.json",
                        f"stages.{stage}.events_per_sec",
                        regen_cmds["BENCH_predict.json"],
                    ),
                    median_metric(
                        predict_samples,
                        lambda d, s=stage: d["stages"][s][
                            "events_per_sec"
                        ],
                    ),
                )
            )
    except MissingBaselineKey as err:
        print(err.advice(), file=sys.stderr)
        return 2
    if base_speedup is not None and cand_speedup is not None:
        checks.append(
            (
                "campaign.best_valid_speedup",
                base_speedup,
                cand_speedup,
            )
        )

    # Fleet speedup: gated only when both sides could measure it — the
    # hardware check (scaling_valid) travels inside each point.
    fleet_base_speedup = best_valid_speedup(
        baseline_fleet, axis="workers"
    )
    fleet_cand_speedup = best_valid_speedup(fleet_doc, axis="workers")
    if fleet_base_speedup is None or fleet_cand_speedup is None:
        side = (
            "baseline" if fleet_base_speedup is None else "candidate"
        )
        print(
            "fleet.best_valid_speedup: skipped "
            f"({side} has no scaling_valid multi-worker point; "
            "fleet events/s check still gates)"
        )
    else:
        checks.append(
            (
                "fleet.best_valid_speedup",
                fleet_base_speedup,
                fleet_cand_speedup,
            )
        )

    failed = False
    print(f"\n{'metric':44} {'baseline':>14} {'median':>14} {'ratio':>7}")
    for name, base, measured in checks:
        if base <= 0:
            print(f"{name:44} baseline is {base}; skipping")
            continue
        ratio = measured / base
        ok = ratio >= 1.0 - args.tolerance
        failed = failed or not ok
        print(
            f"{name:44} {base:14.0f} {measured:14.0f} {ratio:6.2f}x"
            f"{'' if ok else '   <-- REGRESSION'}"
        )

    if failed:
        print(
            f"\nFAIL: a metric regressed more than "
            f"{args.tolerance:.0%} vs the committed baseline"
        )
        return 1
    print(f"\nOK: all metrics within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
