/**
 * @file
 * Chaos drill: prove that the fleet stack *detects* injected faults
 * instead of absorbing them into the campaign's answer.
 *
 * For each scenario the drill runs a localhost fleet campaign under a
 * named deterministic chaos profile (chaos/chaos.hh) and asserts two
 * things, which together are the whole point of the chaos layer:
 *
 *   1. Integrity of the answer — the deterministic aggregate subset
 *      (adaptiveAggregatesJson) is byte-identical to a clean serial
 *      golden computed once at startup. Chaos may cost wall clock,
 *      re-leases, and reconnects; it may never change the result.
 *
 *   2. Evidence of detection — on at least one of three trial chaos
 *      seeds, the scenario's expected detection counters fire
 *      (frame CRC kills, lease re-issues, journal write failures,
 *      quorum divergences, ...). A chaos run with no evidence on any
 *      seed means the faults were silently absorbed, which is exactly
 *      the failure mode this layer exists to rule out — the drill
 *      fails.
 *
 * Disk scenarios get a third leg: the journal the chaotic run left
 * behind (possibly with genuine torn bytes from short writes) is fed
 * to a --resume campaign, which must self-heal — skip the damaged
 * records, re-run what they covered, and again match the golden.
 *
 * Scenarios are the named chaos profiles plus "quorum" (no transport
 * faults; worker 0 silently lies about every result and --verify-quorum
 * catches it by cross-worker comparison).
 *
 * Usage:
 *   chaos_drill [--scenario NAME[,NAME...]] [--list]
 *               [--seed N] [--chaos-seed N] [--max-shards N]
 *               [--batch N] [--workers N] [--workdir DIR]
 *
 * Exit 0: every scenario held both invariants. Exit 1: a violation
 * (diagnostics on stderr). Exit 2: usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "chaos/chaos.hh"
#include "fleet/fleet.hh"
#include "guidance/adaptive_campaign.hh"
#include "guidance/sources.hh"

using namespace drf;
using namespace drf::fleet;

namespace
{

struct DrillOptions
{
    std::uint64_t masterSeed = 1;
    std::uint64_t chaosSeed = 42;
    std::size_t maxShards = 8;
    std::size_t batchSize = 4;
    unsigned workers = 2;
    std::string workDir;
    std::vector<std::string> scenarios; // empty = all
    bool list = false;
};

/** What counts as "the stack noticed" for one scenario. */
enum class Evidence
{
    None,   ///< clean-run sanity: every detector must stay at zero
    Wire,   ///< CRC kills, re-leases, or worker reconnects
    Disk,   ///< journal write/fsync failures, retries, or degradation
    Any,    ///< wire or disk
    Quorum, ///< cross-worker divergence caught and locally repaired
};

struct Scenario
{
    std::string name;    ///< drill name (and profile name, usually)
    std::string profile; ///< chaos profile to resolve
    Evidence evidence;
    bool journal = false; ///< run with a journal + resume leg
    unsigned verifyQuorum = 0;
    unsigned corruptEveryN = 0;
};

std::vector<Scenario>
allScenarios()
{
    std::vector<Scenario> all;
    all.push_back({"none", "none", Evidence::None});
    all.push_back({"wire-flip", "wire-flip", Evidence::Wire});
    all.push_back({"wire-drop", "wire-drop", Evidence::Wire});
    all.push_back({"wire-torn", "wire-torn", Evidence::Wire});
    all.push_back({"wire-storm", "wire-storm", Evidence::Wire});
    all.push_back(
        {"disk-torn", "disk-torn", Evidence::Disk, /*journal=*/true});
    all.push_back({"disk-enospc", "disk-enospc", Evidence::Disk,
                   /*journal=*/true});
    all.push_back({"disk-fsync", "disk-fsync", Evidence::Disk,
                   /*journal=*/true});
    all.push_back({"full", "full", Evidence::Any, /*journal=*/true});
    all.push_back({"quorum", "none", Evidence::Quorum,
                   /*journal=*/false, /*verifyQuorum=*/1,
                   /*corruptEveryN=*/1});
    return all;
}

bool
wireEvidence(const FleetResult &r, unsigned workers)
{
    return r.frameCorruptions > 0 || r.digestMismatches > 0 ||
           r.releases > 0 || r.duplicateResults > 0 ||
           r.workersSeen > workers;
}

bool
diskEvidence(const FleetResult &r)
{
    const JournalStatus &js = r.journalStatus;
    return js.failedWrites > 0 || js.fsyncFailures > 0 ||
           js.retries > 0 || js.degraded;
}

bool
hasEvidence(Evidence kind, const FleetResult &r, unsigned workers)
{
    switch (kind) {
    case Evidence::None:
        return r.frameCorruptions == 0 && r.digestMismatches == 0 &&
               r.quorumDivergences == 0 && !r.journalStatus.degraded;
    case Evidence::Wire:
        return wireEvidence(r, workers);
    case Evidence::Disk:
        return diskEvidence(r);
    case Evidence::Any:
        return wireEvidence(r, workers) || diskEvidence(r);
    case Evidence::Quorum:
        return r.quorumDivergences > 0 && r.localRuns > 0;
    }
    return false;
}

std::unique_ptr<ShardSource>
makeSource(const DrillOptions &opt)
{
    SourceConfig cfg;
    cfg.masterSeed = opt.masterSeed;
    cfg.batchSize = opt.batchSize;
    cfg.maxShards = opt.maxShards;
    return std::make_unique<SweepSource>(cfg);
}

/** One fleet campaign; chaos profile + knobs per the scenario. */
FleetResult
runDrill(const DrillOptions &opt, const Scenario &sc,
         const chaos::ChaosProfile &profile, std::uint64_t chaosSeed,
         unsigned workers, const std::string &journalPath,
         bool resume)
{
    std::unique_ptr<ShardSource> source = makeSource(opt);
    LocalFleetConfig cfg;
    cfg.coordinator.campaign.jobs = 1;
    cfg.coordinator.expectedWorkers = workers;
    // Chaos costs sessions; keep recovery fast and the reconnect
    // budget generous so detection, not patience, is what's tested.
    cfg.coordinator.leaseTimeoutSeconds = 1.5;
    cfg.coordinator.stealMinAgeSeconds = 0.5;
    cfg.coordinator.journalPath = journalPath;
    cfg.coordinator.resume = resume;
    cfg.coordinator.verifyQuorum = sc.verifyQuorum;
    cfg.coordinator.diskChaos = resume ? chaos::DiskRates{}
                                       : profile.disk;
    cfg.coordinator.chaosSeed = chaosSeed;
    cfg.workers = workers;
    cfg.wireChaos = resume ? chaos::WireRates{} : profile.wire;
    cfg.corruptEveryN = resume ? 0 : sc.corruptEveryN;
    cfg.corruptSilently = true;
    cfg.maxReconnects = 20;
    return runLocalFleet(*source, cfg);
}

bool
parseOptions(int argc, char **argv, DrillOptions &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "chaos_drill: %s needs a value\n",
                              flag.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (flag == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.masterSeed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--chaos-seed") {
            const char *v = next();
            if (!v)
                return false;
            opt.chaosSeed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--max-shards") {
            const char *v = next();
            if (!v)
                return false;
            opt.maxShards = std::strtoull(v, nullptr, 10);
        } else if (flag == "--batch") {
            const char *v = next();
            if (!v)
                return false;
            opt.batchSize = std::strtoull(v, nullptr, 10);
        } else if (flag == "--workers") {
            const char *v = next();
            if (!v)
                return false;
            opt.workers =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (flag == "--workdir") {
            const char *v = next();
            if (!v)
                return false;
            opt.workDir = v;
        } else if (flag == "--scenario") {
            const char *v = next();
            if (!v)
                return false;
            std::string list = v;
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    opt.scenarios.push_back(
                        list.substr(pos, comma - pos));
                pos = comma + 1;
            }
        } else if (flag == "--list") {
            opt.list = true;
        } else {
            std::fprintf(stderr, "chaos_drill: unknown flag %s\n",
                          flag.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    DrillOptions opt;
    if (!parseOptions(argc, argv, opt))
        return 2;

    std::vector<Scenario> catalogue = allScenarios();
    if (opt.list) {
        for (const Scenario &sc : catalogue)
            std::printf("%s\n", sc.name.c_str());
        return 0;
    }

    std::vector<Scenario> selected;
    if (opt.scenarios.empty()) {
        selected = catalogue;
    } else {
        for (const std::string &want : opt.scenarios) {
            bool found = false;
            for (const Scenario &sc : catalogue) {
                if (sc.name == want) {
                    selected.push_back(sc);
                    found = true;
                    break;
                }
            }
            if (!found) {
                std::fprintf(stderr,
                              "chaos_drill: unknown scenario '%s' "
                              "(--list shows them)\n",
                              want.c_str());
                return 2;
            }
        }
    }

    if (opt.workDir.empty())
        opt.workDir =
            "/tmp/chaos_drill." + std::to_string(::getpid());
    ::mkdir(opt.workDir.c_str(), 0755);

    // The clean serial golden every chaotic run must reproduce
    // byte-for-byte: the degenerate fleet (no sockets, no workers,
    // index order) over the same source.
    chaos::ChaosProfile quiet; // all-zero rates
    Scenario golden_sc{"golden", "none", Evidence::None};
    FleetResult golden = runDrill(opt, golden_sc, quiet, 0,
                                  /*workers=*/0, "", false);
    std::string golden_json =
        adaptiveAggregatesJson(golden.adaptive, "gpu_tester");
    std::printf("chaos_drill: golden %zu shards, union %016llx\n",
                golden.adaptive.shardsRun,
                (unsigned long long)golden.adaptive.unionDigest);

    int failures = 0;
    for (const Scenario &sc : selected) {
        chaos::ChaosProfile profile;
        if (!chaos::profileByName(sc.profile, profile)) {
            std::fprintf(stderr,
                          "chaos_drill: profile '%s' missing\n",
                          sc.profile.c_str());
            return 2;
        }

        bool evidence = false;
        bool broken = false;
        std::string journal;
        for (unsigned trial = 0; trial < 3 && !broken; ++trial) {
            std::uint64_t seed = opt.chaosSeed + trial;
            if (sc.journal)
                journal = opt.workDir + "/" + sc.name + "-" +
                          std::to_string(seed) + ".jsonl";
            FleetResult r = runDrill(opt, sc, profile, seed,
                                     opt.workers, journal, false);
            std::string agg =
                adaptiveAggregatesJson(r.adaptive, "gpu_tester");
            if (r.halted || !r.adaptive.passed) {
                std::fprintf(stderr,
                              "chaos_drill: %s seed %llu did not "
                              "complete (halted=%d passed=%d)\n",
                              sc.name.c_str(),
                              (unsigned long long)seed,
                              int(r.halted),
                              int(r.adaptive.passed));
                broken = true;
                break;
            }
            if (agg != golden_json) {
                std::fprintf(stderr,
                              "chaos_drill: %s seed %llu CHANGED THE "
                              "AGGREGATES — corruption absorbed\n",
                              sc.name.c_str(),
                              (unsigned long long)seed);
                broken = true;
                break;
            }
            std::printf(
                "chaos_drill: %s seed %llu ok (crc %llu, digest "
                "%llu, releases %llu, divergence %llu, journal "
                "fail %llu%s)\n",
                sc.name.c_str(), (unsigned long long)seed,
                (unsigned long long)r.frameCorruptions,
                (unsigned long long)r.digestMismatches,
                (unsigned long long)r.releases,
                (unsigned long long)r.quorumDivergences,
                (unsigned long long)(r.journalStatus.failedWrites +
                                     r.journalStatus.fsyncFailures),
                r.journalStatus.degraded ? ", degraded" : "");
            if (hasEvidence(sc.evidence, r, opt.workers)) {
                evidence = true;
                // Self-heal leg: resume over the journal this chaotic
                // run left behind (torn bytes and all) and match the
                // golden again.
                if (sc.journal) {
                    FleetResult heal =
                        runDrill(opt, sc, profile, seed, opt.workers,
                                 journal, /*resume=*/true);
                    std::string heal_agg = adaptiveAggregatesJson(
                        heal.adaptive, "gpu_tester");
                    if (heal.halted || !heal.adaptive.passed ||
                        heal_agg != golden_json) {
                        std::fprintf(
                            stderr,
                            "chaos_drill: %s resume leg failed "
                            "(halted=%d passed=%d identical=%d)\n",
                            sc.name.c_str(), int(heal.halted),
                            int(heal.adaptive.passed),
                            int(heal_agg == golden_json));
                        broken = true;
                        break;
                    }
                    std::printf(
                        "chaos_drill: %s resume self-heal ok "
                        "(resumed %zu, crc-skip %llu, torn-skip "
                        "%llu)\n",
                        sc.name.c_str(), heal.shardsResumed,
                        (unsigned long long)heal.resumeCrcSkipped,
                        (unsigned long long)heal.resumeParseSkipped);
                }
                break;
            }
        }
        if (!broken && !evidence) {
            std::fprintf(stderr,
                          "chaos_drill: %s produced NO detection "
                          "evidence on any trial seed — faults "
                          "silently absorbed or never injected\n",
                          sc.name.c_str());
            broken = true;
        }
        if (broken)
            ++failures;
        else
            std::printf("chaos_drill: %s PASS\n", sc.name.c_str());
    }

    if (failures) {
        std::fprintf(stderr, "chaos_drill: %d scenario(s) FAILED\n",
                      failures);
        return 1;
    }
    std::printf("chaos_drill: all %zu scenario(s) passed\n",
                selected.size());
    return 0;
}
