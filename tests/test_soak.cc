/**
 * @file
 * Soak and contrast tests.
 *
 * 1. Randomized configuration soak: the GPU tester must pass on the
 *    correct protocol for arbitrary combinations of system size, cache
 *    class, wavefront shape, and variable density.
 * 2. The inadequacy of application-based testing (Section I): an
 *    application run on a *buggy* protocol completes without noticing —
 *    the synthetic apps perform no value checking, just like running a
 *    real workload and hoping the failure is visible in its output —
 *    while the tester detects the same bug immediately.
 * 3. Degenerate tester configurations remain well-defined.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "apps/app_runner.hh"
#include "apps/app_suite.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

struct SoakParams
{
    std::uint64_t seed;
    unsigned numCus;
    unsigned numL2s;
    CacheSizeClass cacheClass;
    unsigned lanes;
    unsigned wfsPerCu;
    std::uint32_t normalVars;
    std::uint64_t addrRange;
};

} // namespace

class GpuTesterSoak : public ::testing::TestWithParam<SoakParams>
{
};

TEST_P(GpuTesterSoak, PassesOnCorrectProtocol)
{
    const SoakParams &p = GetParam();
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(p.cacheClass, p.numCus);
    sys_cfg.numGpuL2s = p.numL2s;
    ApuSystem sys(sys_cfg);

    GpuTesterConfig cfg = makeGpuTesterConfig(
        /*actions=*/40, /*episodes=*/6, /*atomic_locs=*/10, p.seed);
    cfg.lanes = p.lanes;
    cfg.episodeGen.lanes = p.lanes;
    cfg.wfsPerCu = p.wfsPerCu;
    cfg.variables.numNormalVars = p.normalVars;
    cfg.variables.addrRangeBytes = p.addrRange;

    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_EQ(r.episodes,
              std::uint64_t(p.numCus) * p.wfsPerCu * 6);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GpuTesterSoak,
    ::testing::Values(
        SoakParams{1, 1, 1, CacheSizeClass::Small, 4, 1, 128, 1 << 12},
        SoakParams{2, 2, 1, CacheSizeClass::Small, 8, 2, 512, 1 << 14},
        SoakParams{3, 4, 2, CacheSizeClass::Small, 8, 2, 512, 1 << 14},
        SoakParams{4, 8, 1, CacheSizeClass::Large, 16, 1, 2048, 1 << 18},
        SoakParams{5, 8, 4, CacheSizeClass::Mixed, 8, 2, 1024, 1 << 15},
        SoakParams{6, 3, 3, CacheSizeClass::Small, 4, 3, 256, 1 << 13},
        SoakParams{7, 6, 2, CacheSizeClass::Mixed, 8, 1, 512, 1 << 13},
        SoakParams{8, 8, 2, CacheSizeClass::Large, 8, 2, 4096, 1 << 20}));

TEST(AppVsTester, ApplicationsRunObliviouslyOverABug)
{
    // The same LostWriteThrough bug: an application completes happily
    // (silently computing garbage), while the tester fails loudly.
    ApuSystemConfig app_cfg;
    app_cfg.numCus = 2;
    app_cfg.numCpuCaches = 1;
    app_cfg.fault = FaultKind::LostWriteThrough;
    app_cfg.faultTriggerPct = 100;
    ApuSystem app_sys(app_cfg);

    AppProfile profile = appByName("Histogram");
    profile.wfsPerCu = 1;
    profile.memInstrsPerWf = 60;
    AppTrace trace = generateAppTrace(profile, 2, 0x10'0000, 64);
    AppRunner runner(app_sys, std::move(trace));
    AppResult app_result = runner.run();
    EXPECT_TRUE(app_result.completed)
        << "the app finishes as if nothing were wrong";
    ASSERT_NE(app_sys.fault(), nullptr);
    EXPECT_GT(app_sys.fault()->firings(), 0u)
        << "the bug must actually have corrupted data during the run";

    // Tester on the identical system configuration.
    ApuSystemConfig tester_cfg = app_cfg;
    ApuSystem tester_sys(tester_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(50, 30, 10, /*seed=*/4);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14;
    GpuTester tester(tester_sys, cfg);
    TesterResult tester_result = tester.run();
    EXPECT_FALSE(tester_result.passed)
        << "the tester must catch what the application ignored";
}

TEST(TesterEdgeCases, ZeroActionEpisodesAreJustSynchronization)
{
    // Episodes degenerate to acquire+release pairs; atomic-uniqueness
    // checking still runs.
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small,
                                                  2);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(/*actions=*/1,
                                              /*episodes=*/8,
                                              /*atomic_locs=*/2,
                                              /*seed=*/5);
    cfg.lanes = 4;
    cfg.episodeGen.lanes = 4;
    cfg.episodeGen.actionsPerEpisode = 0;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_EQ(r.loadsChecked, 0u);
    EXPECT_GT(r.atomicsChecked, 0u);
}

TEST(TesterEdgeCases, SingleSyncVariableSerializesHeavily)
{
    // One atomic location shared by every wavefront: maximal atomic
    // contention, still race-free and checkable.
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small,
                                                  4);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(20, 10, /*atomic_locs=*/1,
                                              /*seed=*/6);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.variables.numNormalVars = 256;
    cfg.variables.addrRangeBytes = 1 << 13;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    // Every acquire+release lands on the same variable.
    EXPECT_EQ(tester.refMemory().atomicCount(0), r.atomicsChecked);
}

TEST(TesterEdgeCases, AllStoresEpisodes)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small,
                                                  2);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(30, 6, 10, /*seed=*/7);
    cfg.lanes = 4;
    cfg.episodeGen.lanes = 4;
    cfg.episodeGen.storePct = 100;
    cfg.variables.numNormalVars = 2048;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_EQ(r.loadsChecked, 0u);
    EXPECT_GT(r.storesRetired, 0u);
}

TEST(TesterEdgeCases, AllLoadsEpisodes)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small,
                                                  2);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(30, 6, 10, /*seed=*/8);
    cfg.lanes = 4;
    cfg.episodeGen.lanes = 4;
    cfg.episodeGen.storePct = 0;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_EQ(r.storesRetired, 0u);
    // All loads must have seen the initial zeroes.
    EXPECT_GT(r.loadsChecked, 0u);
}

TEST(TesterEdgeCases, WatchdogThresholdConfigurable)
{
    // A tiny threshold plus an armed ack-dropping bug: the watchdog
    // fires at roughly threshold + check interval, not at the default
    // one million cycles.
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small,
                                                  2);
    sys_cfg.fault = FaultKind::DropWriteAck;
    sys_cfg.faultTriggerPct = 100;
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(20, 10, 10, /*seed=*/9);
    cfg.lanes = 4;
    cfg.episodeGen.lanes = 4;
    cfg.deadlockThreshold = 5'000;
    cfg.checkInterval = 1'000;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.report.find("deadlock"), std::string::npos);
    EXPECT_LT(r.ticks, 50'000u);
}
