/**
 * @file
 * Unit tests for the trace logger and the stats package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_queue.hh"
#include "sim/logger.hh"
#include "sim/stats.hh"

using namespace drf;

namespace
{

class LoggerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Logger::get().disableAll();
        Logger::get().clearHistory();
        Logger::get().setHistoryDepth(256);
    }

    void TearDown() override { SetUp(); }
};

} // namespace

TEST_F(LoggerTest, FlagsToggle)
{
    Logger &log = Logger::get();
    EXPECT_FALSE(log.enabled("Tester"));
    log.enable("Tester");
    EXPECT_TRUE(log.enabled("Tester"));
    log.disable("Tester");
    EXPECT_FALSE(log.enabled("Tester"));
}

TEST_F(LoggerTest, AllFlagEnablesEverything)
{
    Logger &log = Logger::get();
    log.enable("all");
    EXPECT_TRUE(log.enabled("anything"));
    log.disable("all");
    EXPECT_FALSE(log.enabled("anything"));
}

TEST_F(LoggerTest, HistoryRetainedEvenWhenDisabled)
{
    Logger &log = Logger::get();
    log.record(42, "Flag", "unit", "hello");
    auto hist = log.history();
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_NE(hist[0].find("42"), std::string::npos);
    EXPECT_NE(hist[0].find("hello"), std::string::npos);
    EXPECT_NE(hist[0].find("unit"), std::string::npos);
}

TEST_F(LoggerTest, HistoryRingBounded)
{
    Logger &log = Logger::get();
    log.setHistoryDepth(4);
    for (int i = 0; i < 10; ++i)
        log.record(i, "F", "u", "msg" + std::to_string(i));
    auto hist = log.history();
    ASSERT_EQ(hist.size(), 4u);
    EXPECT_NE(hist[0].find("msg6"), std::string::npos);
    EXPECT_NE(hist[3].find("msg9"), std::string::npos);
}

TEST_F(LoggerTest, DlogMacroFormats)
{
    EventQueue eq;
    eq.schedule(5, [&eq] {
        DLOG(eq, "Flag", "comp", "value=" << 17);
    });
    eq.run();
    auto hist = Logger::get().history();
    ASSERT_FALSE(hist.empty());
    EXPECT_NE(hist.back().find("value=17"), std::string::npos);
    EXPECT_NE(hist.back().find("5:"), std::string::npos);
}

TEST(Counter, IncrementAndReset)
{
    Counter c("x");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d("lat");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 4.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d("lat");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

TEST(StatGroup, CreateFetchAndDump)
{
    StatGroup group("comp");
    group.counter("hits").inc(3);
    group.counter("misses").inc();
    EXPECT_EQ(group.value("hits"), 3u);
    EXPECT_EQ(group.value("nonexistent"), 0u);

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("comp.hits 3"), std::string::npos);
    EXPECT_NE(out.find("comp.misses 1"), std::string::npos);
}

TEST(StatGroup, ResetZeroesAll)
{
    StatGroup group("comp");
    group.counter("a").inc(7);
    group.reset();
    EXPECT_EQ(group.value("a"), 0u);
}
