/**
 * @file
 * Unit tests for the tester's reference memory and atomic-history
 * checks.
 */

#include <gtest/gtest.h>

#include "proto/fault.hh"
#include "tester/ref_memory.hh"

using namespace drf;

namespace
{

struct Fixture
{
    Fixture() : rng(3)
    {
        VariableMapConfig cfg;
        cfg.numSyncVars = 4;
        cfg.numNormalVars = 32;
        cfg.addrRangeBytes = 1 << 12;
        vmap = std::make_unique<VariableMap>(cfg, rng);
        ref = std::make_unique<RefMemory>(*vmap);
    }

    AccessRecord
    record(std::uint32_t thread, std::uint64_t episode,
           std::uint64_t value, Tick cycle = 100)
    {
        AccessRecord r;
        r.threadId = thread;
        r.threadGroupId = thread / 16;
        r.episodeId = episode;
        r.addr = 0x40;
        r.cycle = cycle;
        r.value = value;
        return r;
    }

    Random rng;
    std::unique_ptr<VariableMap> vmap;
    std::unique_ptr<RefMemory> ref;
};

} // namespace

TEST(RefMemory, InitialValuesZero)
{
    Fixture fx;
    for (VarId v = 0; v < fx.vmap->numVars(); ++v)
        EXPECT_EQ(fx.ref->value(v), 0u);
}

TEST(RefMemory, WriteBecomesVisible)
{
    Fixture fx;
    VarId var = fx.vmap->normalVar(0);
    fx.ref->applyWrite(var, fx.record(1, 10, 1234));
    EXPECT_EQ(fx.ref->value(var), 1234u);
    EXPECT_EQ(fx.ref->writesRetired(), 1u);
}

TEST(RefMemory, LastWriterTracked)
{
    Fixture fx;
    VarId var = fx.vmap->normalVar(1);
    EXPECT_FALSE(fx.ref->lastWriter(var).has_value());
    fx.ref->applyWrite(var, fx.record(7, 42, 99, 555));
    ASSERT_TRUE(fx.ref->lastWriter(var).has_value());
    EXPECT_EQ(fx.ref->lastWriter(var)->threadId, 7u);
    EXPECT_EQ(fx.ref->lastWriter(var)->episodeId, 42u);
    EXPECT_EQ(fx.ref->lastWriter(var)->cycle, 555u);
}

TEST(RefMemory, SecondWriteOverrides)
{
    Fixture fx;
    VarId var = fx.vmap->normalVar(2);
    fx.ref->applyWrite(var, fx.record(1, 1, 10));
    fx.ref->applyWrite(var, fx.record(2, 2, 20));
    EXPECT_EQ(fx.ref->value(var), 20u);
    EXPECT_EQ(fx.ref->lastWriter(var)->threadId, 2u);
}

TEST(RefMemory, LastReaderTracked)
{
    Fixture fx;
    VarId var = fx.vmap->normalVar(3);
    EXPECT_FALSE(fx.ref->lastReader(var).has_value());
    fx.ref->noteRead(var, fx.record(9, 5, 0));
    ASSERT_TRUE(fx.ref->lastReader(var).has_value());
    EXPECT_EQ(fx.ref->lastReader(var)->threadId, 9u);
    EXPECT_EQ(fx.ref->readsChecked(), 1u);
}

TEST(RefMemory, AtomicUniqueReturnsAccepted)
{
    Fixture fx;
    VarId sync = fx.vmap->syncVar(0);
    for (std::uint64_t v = 0; v < 50; ++v)
        EXPECT_FALSE(fx.ref->noteAtomicReturn(sync,
                                              fx.record(1, v, v))
                         .has_value());
    EXPECT_EQ(fx.ref->atomicCount(sync), 50u);
}

TEST(RefMemory, AtomicDuplicateDetected)
{
    Fixture fx;
    VarId sync = fx.vmap->syncVar(1);
    EXPECT_FALSE(fx.ref->noteAtomicReturn(sync, fx.record(1, 1, 7))
                     .has_value());
    auto violation = fx.ref->noteAtomicReturn(sync, fx.record(2, 2, 7));
    ASSERT_TRUE(violation.has_value());
    EXPECT_EQ(violation->first.threadId, 1u);
    EXPECT_EQ(violation->second.threadId, 2u);
    EXPECT_EQ(violation->first.value, 7u);
}

TEST(RefMemory, AtomicHistoriesPerVariable)
{
    Fixture fx;
    // The same return value on different sync variables is legal.
    EXPECT_FALSE(fx.ref->noteAtomicReturn(fx.vmap->syncVar(0),
                                          fx.record(1, 1, 5))
                     .has_value());
    EXPECT_FALSE(fx.ref->noteAtomicReturn(fx.vmap->syncVar(1),
                                          fx.record(1, 2, 5))
                     .has_value());
}

TEST(AccessRecord, DescribeContainsFields)
{
    AccessRecord r;
    r.threadId = 35;
    r.threadGroupId = 4;
    r.episodeId = 727;
    r.addr = 0x52860;
    r.cycle = 16905;
    r.value = 16;
    std::string s = r.describe();
    EXPECT_NE(s.find("thread=35"), std::string::npos);
    EXPECT_NE(s.find("group=4"), std::string::npos);
    EXPECT_NE(s.find("episode=727"), std::string::npos);
    EXPECT_NE(s.find("52860"), std::string::npos);
    EXPECT_NE(s.find("cycle=16905"), std::string::npos);
    EXPECT_NE(s.find("value=16"), std::string::npos);
}

TEST(FaultInjector, OnlyArmedKindFires)
{
    FaultInjector fault(FaultKind::LostWriteThrough, 100, 1);
    EXPECT_TRUE(fault.fire(FaultKind::LostWriteThrough));
    EXPECT_FALSE(fault.fire(FaultKind::NonAtomicRmw));
    EXPECT_EQ(fault.firings(), 1u);
}

TEST(FaultInjector, ZeroPctNeverFires)
{
    FaultInjector fault(FaultKind::NonAtomicRmw, 0, 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fault.fire(FaultKind::NonAtomicRmw));
    EXPECT_EQ(fault.firings(), 0u);
}

TEST(FaultInjector, ProbabilityRoughlyHonored)
{
    FaultInjector fault(FaultKind::DropWriteAck, 30, 7);
    int fired = 0;
    for (int i = 0; i < 10'000; ++i)
        fired += fault.fire(FaultKind::DropWriteAck) ? 1 : 0;
    EXPECT_GT(fired, 2500);
    EXPECT_LT(fired, 3500);
    EXPECT_EQ(fault.firings(), static_cast<std::uint64_t>(fired));
}

TEST(FaultInjector, NamesStable)
{
    EXPECT_STREQ(faultKindName(FaultKind::None), "None");
    EXPECT_STREQ(faultKindName(FaultKind::LostWriteThrough),
                 "LostWriteThrough");
    EXPECT_STREQ(faultKindName(FaultKind::NonAtomicRmw), "NonAtomicRmw");
    EXPECT_STREQ(faultKindName(FaultKind::DropAcquireInvalidate),
                 "DropAcquireInvalidate");
    EXPECT_STREQ(faultKindName(FaultKind::DropGpuProbe), "DropGpuProbe");
    EXPECT_STREQ(faultKindName(FaultKind::DropWriteAck), "DropWriteAck");
}
