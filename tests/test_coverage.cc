/**
 * @file
 * Unit tests for the transition-coverage instrumentation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "coverage/coverage.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"

using namespace drf;

namespace
{

TransitionSpec
makeSpec()
{
    TransitionSpec spec("Toy", {"I", "V"}, {"Load", "Store", "Probe"});
    spec.define(0, 0); // Load x I
    spec.define(0, 1); // Load x V
    spec.define(1, 1); // Store x V
    spec.define(2, 1); // Probe x V
    spec.markImpossible("solo", 2, 1); // Probe unreachable when alone
    return spec;
}

} // namespace

TEST(TransitionSpec, Counts)
{
    TransitionSpec spec = makeSpec();
    EXPECT_EQ(spec.numStates(), 2u);
    EXPECT_EQ(spec.numEvents(), 3u);
    EXPECT_EQ(spec.numCells(), 6u);
    EXPECT_EQ(spec.definedCount(), 4u);
    EXPECT_EQ(spec.impossibleCount("solo"), 1u);
    EXPECT_EQ(spec.impossibleCount("other"), 0u);
    EXPECT_EQ(spec.reachableCount("solo"), 3u);
    EXPECT_EQ(spec.reachableCount(""), 4u);
}

TEST(TransitionSpec, DefinedLookup)
{
    TransitionSpec spec = makeSpec();
    EXPECT_TRUE(spec.defined(0, 0));
    EXPECT_FALSE(spec.defined(1, 0)); // Store x I undefined
    EXPECT_FALSE(spec.defined(2, 0));
}

TEST(TransitionSpec, NameLookups)
{
    TransitionSpec spec = makeSpec();
    EXPECT_EQ(spec.stateIndex("V"), 1u);
    EXPECT_EQ(spec.eventIndex("Probe"), 2u);
}

TEST(CoverageGrid, HitCountsAndTotal)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    grid.hit(0, 0);
    grid.hit(1, 1);
    EXPECT_EQ(grid.count(0, 0), 2u);
    EXPECT_EQ(grid.count(1, 1), 1u);
    EXPECT_EQ(grid.count(0, 1), 0u);
    EXPECT_EQ(grid.totalHits(), 3u);
}

TEST(CoverageGrid, Classification)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    EXPECT_EQ(grid.classify(0, 0), CellClass::Active);
    EXPECT_EQ(grid.classify(0, 1), CellClass::Inact);
    EXPECT_EQ(grid.classify(1, 0), CellClass::Undef);
    EXPECT_EQ(grid.classify(2, 1, "solo"), CellClass::Impsb);
    EXPECT_EQ(grid.classify(2, 1, ""), CellClass::Inact);
}

TEST(CoverageGrid, CoveragePct)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    grid.hit(0, 1);
    grid.hit(1, 1);
    // 3 of 4 defined; with "solo" the probe cell is excluded: 3/3.
    EXPECT_DOUBLE_EQ(grid.coveragePct(""), 75.0);
    EXPECT_DOUBLE_EQ(grid.coveragePct("solo"), 100.0);
}

TEST(CoverageGrid, ImpossibleCellHitStillCounts)
{
    // If traffic does reach a cell marked impossible for another test
    // type, classification without that test type shows it active.
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(2, 1);
    EXPECT_EQ(grid.classify(2, 1, ""), CellClass::Active);
    EXPECT_EQ(grid.classify(2, 1, "solo"), CellClass::Impsb);
}

TEST(CoverageGrid, MergeUnions)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid a(spec), b(spec);
    a.hit(0, 0);
    b.hit(1, 1);
    b.hit(0, 0);
    a.merge(b);
    EXPECT_EQ(a.count(0, 0), 2u);
    EXPECT_EQ(a.count(1, 1), 1u);
    EXPECT_EQ(a.activeCount(""), 2u);
    EXPECT_EQ(a.totalHits(), 3u);
}

TEST(CoverageGrid, NewlyCoveredCountsOnlyFreshCells)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid base(spec), incoming(spec);
    base.hit(0, 0);
    incoming.hit(0, 0); // already covered
    incoming.hit(1, 1); // fresh
    incoming.hit(2, 1); // fresh
    EXPECT_EQ(base.newlyCovered(incoming), 2u);
    // Symmetric view: base adds nothing new beyond what incoming has.
    EXPECT_EQ(incoming.newlyCovered(base), 0u);
    // Against an empty grid everything in incoming is new.
    CoverageGrid empty(spec);
    EXPECT_EQ(empty.newlyCovered(incoming), 3u);
    EXPECT_EQ(incoming.newlyCovered(empty), 0u);
}

TEST(CoverageGrid, DiffKeepsOnlyExclusiveCells)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid a(spec), b(spec);
    a.hit(0, 0);
    a.hit(0, 0);
    a.hit(1, 1);
    b.hit(1, 1);
    CoverageGrid d = a.diff(b);
    EXPECT_EQ(d.count(0, 0), 1u); // exclusive to a, recorded as 1 hit
    EXPECT_EQ(d.count(1, 1), 0u); // shared, dropped
    EXPECT_EQ(d.activeCount(""), 1u);
}

TEST(CoverageGrid, ActiveDigestIgnoresHitMagnitudes)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid a(spec), b(spec);
    a.hit(0, 0);
    b.hit(0, 0);
    b.hit(0, 0);
    b.hit(0, 0);
    EXPECT_EQ(a.activeDigest(), b.activeDigest());

    b.hit(1, 1);
    EXPECT_NE(a.activeDigest(), b.activeDigest());

    CoverageGrid empty(spec);
    EXPECT_NE(empty.activeDigest(), a.activeDigest());
}

TEST(CoverageAccumulator, AddReturnsNewlyCoveredCells)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid first(spec), second(spec);
    first.hit(0, 0);
    first.hit(0, 1);
    second.hit(0, 1); // already in the union
    second.hit(1, 1); // fresh

    CoverageAccumulator acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.add(first), 2u); // adopts the spec, all cells fresh
    EXPECT_EQ(acc.add(second), 1u);
    EXPECT_EQ(acc.add(second), 0u); // nothing new the second time
    EXPECT_EQ(acc.activeCount(""), 3u);
}

TEST(CoverageGrid, Reset)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    grid.reset();
    EXPECT_EQ(grid.totalHits(), 0u);
    EXPECT_EQ(grid.activeCount(""), 0u);
}

TEST(CoverageGrid, RenderHeatMapShowsUndef)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    std::ostringstream os;
    grid.renderHeatMap(os);
    std::string out = os.str();
    EXPECT_NE(out.find("Toy"), std::string::npos);
    EXPECT_NE(out.find('U'), std::string::npos);
    EXPECT_NE(out.find("Load"), std::string::npos);
}

TEST(CoverageGrid, RenderClassMapLettersPresent)
{
    TransitionSpec spec = makeSpec();
    CoverageGrid grid(spec);
    grid.hit(0, 0);
    std::ostringstream os;
    grid.renderClassMap(os, "solo");
    std::string out = os.str();
    EXPECT_NE(out.find('A'), std::string::npos); // active
    EXPECT_NE(out.find('X'), std::string::npos); // impossible
    EXPECT_NE(out.find('U'), std::string::npos); // undefined
}

TEST(CellClassNames, Stable)
{
    EXPECT_STREQ(cellClassName(CellClass::Undef), "Undef");
    EXPECT_STREQ(cellClassName(CellClass::Inact), "Inact");
    EXPECT_STREQ(cellClassName(CellClass::Active), "Active");
    EXPECT_STREQ(cellClassName(CellClass::Impsb), "Impsb");
}

TEST(ControllerSpecs, PaperDimensions)
{
    // The reconstructed VIPER tables keep the paper's state and event
    // sets: Table I (7 L1 events x 3 states) and Table II (9 L2 events x
    // 4 states).
    const auto &l1 = GpuL1Cache::spec();
    EXPECT_EQ(l1.numEvents(), 7u);
    EXPECT_EQ(l1.numStates(), 3u);
    EXPECT_EQ(l1.definedCount(), 17u);

    const auto &l2 = GpuL2Cache::spec();
    EXPECT_EQ(l2.numEvents(), 9u);
    EXPECT_EQ(l2.numStates(), 4u);
    // The PrbInv cells exist but are unreachable for the (single-GPU)
    // GPU tester; in a multi-GPU system they all become reachable.
    EXPECT_EQ(l2.impossibleCount("gpu_tester"), 4u);
    EXPECT_EQ(l2.reachableCount("gpu_tester"),
              l2.definedCount() - 4u);
    EXPECT_EQ(l2.impossibleCount("gpu_tester_multi"), 0u);
}
