/**
 * @file
 * Directed tests for the VIPER GPU L1 ("TCP") controller, driven
 * through a real 1-CU system (L1 -> L2 -> directory -> DRAM).
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/apu_system.hh"

using namespace drf;

namespace
{

class L1Harness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ApuSystemConfig cfg;
        cfg.numCus = 1;
        cfg.l1.sizeBytes = 256; // 2 sets x 2 ways
        cfg.l1.assoc = 2;
        cfg.l2.sizeBytes = 4096;
        cfg.l2.assoc = 4;
        sys = std::make_unique<ApuSystem>(cfg);
        sys->l1(0).bindCoreResponse([this](Packet pkt) {
            responses.push_back(std::move(pkt));
        });
    }

    Packet
    load(Addr addr, bool acquire = false)
    {
        Packet pkt;
        pkt.type = MsgType::LoadReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.acquire = acquire;
        pkt.id = nextId++;
        return pkt;
    }

    Packet
    store(Addr addr, std::uint32_t value, bool release = false)
    {
        Packet pkt;
        pkt.type = MsgType::StoreReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.release = release;
        pkt.setValueLE(value, 4);
        pkt.id = nextId++;
        return pkt;
    }

    Packet
    atomic(Addr addr, std::uint64_t operand, bool acquire = false,
           bool release = false)
    {
        Packet pkt;
        pkt.type = MsgType::AtomicReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.atomicOperand = operand;
        pkt.acquire = acquire;
        pkt.release = release;
        pkt.id = nextId++;
        return pkt;
    }

    std::uint32_t
    value32(const Packet &pkt)
    {
        return static_cast<std::uint32_t>(pkt.valueLE());
    }

    /** Issue one request and run to quiescence. */
    void
    go(Packet pkt)
    {
        sys->l1(0).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    std::uint64_t
    l1Count(GpuL1Cache::Event ev, GpuL1Cache::State st)
    {
        return sys->l1(0).coverage().count(ev, st);
    }

    std::unique_ptr<ApuSystem> sys;
    std::vector<Packet> responses;
    PacketId nextId = 1;
};

} // namespace

TEST_F(L1Harness, ColdLoadReturnsZeroAndFills)
{
    go(load(0x100));
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].type, MsgType::LoadResp);
    EXPECT_EQ(value32(responses[0]), 0u);
    EXPECT_EQ(l1Count(GpuL1Cache::EvLoad, GpuL1Cache::StI), 1u);
    EXPECT_EQ(l1Count(GpuL1Cache::EvTccAck, GpuL1Cache::StA), 1u);
    EXPECT_EQ(sys->l1(0).stats().value("load_misses"), 1u);
}

TEST_F(L1Harness, SecondLoadHitsInL1)
{
    go(load(0x100));
    go(load(0x104));
    EXPECT_EQ(sys->l1(0).stats().value("load_hits"), 1u);
    EXPECT_EQ(l1Count(GpuL1Cache::EvLoad, GpuL1Cache::StV), 1u);
}

TEST_F(L1Harness, StoreWritesThroughAndLoadsBack)
{
    go(store(0x200, 0xDEADBEEF));
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].type, MsgType::StoreAck);
    EXPECT_EQ(sys->l1(0).outstandingWriteThroughs(), 0u);

    go(load(0x200));
    EXPECT_EQ(value32(responses[1]), 0xDEADBEEFu);
}

TEST_F(L1Harness, StoreMissDoesNotAllocate)
{
    go(store(0x200, 1));
    // The line must not be in the L1 (no write-allocate): next load
    // misses.
    go(load(0x200));
    EXPECT_EQ(sys->l1(0).stats().value("load_misses"), 1u);
    EXPECT_EQ(sys->l1(0).stats().value("load_hits"), 0u);
    EXPECT_EQ(l1Count(GpuL1Cache::EvStoreThrough, GpuL1Cache::StI), 1u);
}

TEST_F(L1Harness, StoreHitUpdatesCachedLine)
{
    go(load(0x300));                  // fill V
    go(store(0x300, 0xABCD1234));     // hit: update + write-through
    EXPECT_EQ(l1Count(GpuL1Cache::EvStoreThrough, GpuL1Cache::StV), 1u);
    go(load(0x300));                  // must hit and see new data
    EXPECT_EQ(sys->l1(0).stats().value("load_hits"), 1u);
    EXPECT_EQ(value32(responses.back()), 0xABCD1234u);
}

TEST_F(L1Harness, PartialStoreMergesBytes)
{
    go(store(0x400, 0x11111111));
    Packet p = store(0x402, 0);
    p.size = 1;
    p.setValueLE(0xFF, 1);
    go(std::move(p));
    go(load(0x400));
    EXPECT_EQ(value32(responses.back()), 0x11FF1111u);
}

TEST_F(L1Harness, AtomicReturnsOldValueAndApplies)
{
    go(atomic(0x500, 5));
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].type, MsgType::AtomicResp);
    EXPECT_EQ(responses[0].atomicResult, 0u);

    go(atomic(0x500, 3));
    EXPECT_EQ(responses[1].atomicResult, 5u);

    go(load(0x500));
    EXPECT_EQ(value32(responses[2]), 8u);
}

TEST_F(L1Harness, AtomicInvalidatesCachedCopy)
{
    go(load(0x600));  // V
    go(atomic(0x600, 1));
    EXPECT_EQ(l1Count(GpuL1Cache::EvAtomic, GpuL1Cache::StV), 1u);
    // The line was invalidated: a load misses and sees the new value.
    go(load(0x600));
    EXPECT_EQ(sys->l1(0).stats().value("load_misses"), 2u);
    EXPECT_EQ(value32(responses.back()), 1u);
}

TEST_F(L1Harness, AcquireFlashInvalidates)
{
    go(load(0x100));
    go(load(0x200));
    EXPECT_EQ(sys->l1(0).array().validCount(), 2u);
    go(load(0x300, /*acquire=*/true));
    // Only the newly fetched line remains.
    EXPECT_EQ(sys->l1(0).array().validCount(), 1u);
    EXPECT_EQ(l1Count(GpuL1Cache::EvEvict, GpuL1Cache::StV), 2u);
    EXPECT_EQ(sys->l1(0).stats().value("flash_invalidates"), 1u);
}

TEST_F(L1Harness, AcquireOnColdCacheIsDefinedNoop)
{
    go(load(0x100, /*acquire=*/true));
    EXPECT_EQ(l1Count(GpuL1Cache::EvEvict, GpuL1Cache::StI), 1u);
}

TEST_F(L1Harness, ReplacementEvictsLruLine)
{
    // 2 sets x 2 ways, 64 B lines: three lines mapping to set 0.
    go(load(0x000));
    go(load(0x080));
    go(load(0x100)); // set 0 full -> replacement
    EXPECT_EQ(l1Count(GpuL1Cache::EvRepl, GpuL1Cache::StV), 1u);
    EXPECT_EQ(sys->l1(0).stats().value("replacements"), 1u);
    // 0x000 was LRU: loading it again misses.
    go(load(0x000));
    EXPECT_EQ(sys->l1(0).stats().value("load_misses"), 4u);
}

TEST_F(L1Harness, ReleaseWaitsForWriteThroughs)
{
    // Issue a store and, in the same cycle, a release atomic: the
    // atomic must not reach the L2 before the write-through acked.
    Packet st = store(0x700, 42);
    Packet rel = atomic(0x710, 1, false, /*release=*/true);
    sys->l1(0).coreRequest(std::move(st));
    sys->l1(0).coreRequest(std::move(rel));
    EXPECT_EQ(sys->l1(0).outstandingWriteThroughs(), 1u);
    sys->eventq().run();
    ASSERT_EQ(responses.size(), 2u);
    // StoreAck must have arrived before AtomicResp.
    EXPECT_EQ(responses[0].type, MsgType::StoreAck);
    EXPECT_EQ(responses[1].type, MsgType::AtomicResp);
}

TEST_F(L1Harness, ConcurrentLoadsToSameLineStall)
{
    Packet a = load(0x100);
    Packet b = load(0x104);
    sys->l1(0).coreRequest(std::move(a));
    sys->l1(0).coreRequest(std::move(b));
    sys->eventq().run();
    EXPECT_EQ(responses.size(), 2u);
    // The second load stalled against the MSHR at least once.
    EXPECT_GE(l1Count(GpuL1Cache::EvLoad, GpuL1Cache::StA), 1u);
    EXPECT_GE(sys->l1(0).stats().value("recycles"), 1u);
}

TEST_F(L1Harness, StoreHitsPendingAtomicStalls)
{
    // The corner case the paper names: a store arriving while an atomic
    // on the same line is outstanding.
    Packet at = atomic(0x100, 1);
    Packet st = store(0x104, 7);
    sys->l1(0).coreRequest(std::move(at));
    sys->l1(0).coreRequest(std::move(st));
    sys->eventq().run();
    EXPECT_GE(l1Count(GpuL1Cache::EvStoreThrough, GpuL1Cache::StA), 1u);
    // Both completed eventually.
    EXPECT_EQ(responses.size(), 2u);
}

TEST_F(L1Harness, WriteThroughAckedInStateI)
{
    go(store(0x100, 1));
    EXPECT_EQ(l1Count(GpuL1Cache::EvTccAckWB, GpuL1Cache::StI), 1u);
}

TEST_F(L1Harness, WriteThroughAckedInStateV)
{
    go(load(0x100));
    go(store(0x100, 1));
    EXPECT_EQ(l1Count(GpuL1Cache::EvTccAckWB, GpuL1Cache::StV), 1u);
}
