/**
 * @file
 * Predictive race analysis + explore strategy tests (src/predict/).
 *
 * Three layers. (1) The happens-before model is checked against
 * hand-built micro traces with synthetic sync markers, one case per row
 * of the scope-semantics truth table (gpu/cta release-acquire pairings,
 * same- vs cross-CU, timing-only orderings, transitive publication).
 * (2) The predictive pass is property-tested on real recorded runs:
 * unscoped traces must yield zero candidates (every conflicting pair is
 * ordered by the conservative device-wide sync), and on racy traces
 * every CONFIRMED finding's witness must actually fail when replayed
 * while every DEMOTED finding's witness prefix must still pass — the
 * pass never flags a replay-proven-ordered pair as confirmed. (3) The
 * explore strategy must be deterministic at any worker count and must
 * reach the reference ScopeViolation within its interleaving budget.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "guidance/adaptive_campaign.hh"
#include "predict/explore.hh"
#include "predict/hb.hh"
#include "predict/predict.hh"
#include "tester/configs.hh"
#include "trace/repro.hh"

using namespace drf;

namespace
{

// ----- micro-trace scaffolding (HB model only) -----------------------

/** One synthetic episode: wavefront, scope, and sync-completion ticks. */
struct MicroEp
{
    std::uint32_t wf;
    Scope scope;
    Tick acq;
    Tick rel;
};

/**
 * A schedule of @p eps with synthetic v4 sync markers, wfsPerCu=2 (wf
 * 0/1 on cu 0, wf 2/3 on cu 1). Events are emitted in tick order, which
 * is the order the model consumes them in.
 */
ReproTrace
microTrace(const std::vector<MicroEp> &eps)
{
    ReproTrace t;
    t.tester.wfsPerCu = 2;
    for (std::size_t i = 0; i < eps.size(); ++i) {
        Episode e;
        e.id = 100 + i;
        e.wavefrontId = eps[i].wf;
        e.syncVar = 1;
        e.scope = eps[i].scope;
        t.schedule.episodes.push_back(e);
    }
    for (std::size_t i = 0; i < eps.size(); ++i) {
        for (bool acquire : {true, false}) {
            TraceEvent ev;
            ev.tick = acquire ? eps[i].acq : eps[i].rel;
            ev.a = 100 + i;
            ev.b = 1;
            ev.src = int(eps[i].wf / 2);
            ev.kind = acquire ? TraceEventKind::SyncAcquire
                              : TraceEventKind::SyncRelease;
            ev.u8 = static_cast<std::uint8_t>(eps[i].scope);
            ev.u32 = eps[i].wf;
            t.events.push_back(ev);
        }
    }
    std::stable_sort(t.events.begin(), t.events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tick < b.tick;
                     });
    return t;
}

// ----- real-run scaffolding (predict + explore) ----------------------

/** The predict_sweep tool's configuration shape, sized for tests. */
GpuTestPreset
racyPreset(std::uint64_t seed, ScopeMode mode, unsigned episodes,
           unsigned actions)
{
    GpuTestPreset preset;
    preset.cacheClass = CacheSizeClass::Large;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Large, 2);
    preset.system.l1.protocol = ProtocolKind::Viper;
    preset.tester = makeGpuTesterConfig(actions, episodes, 10, seed);
    preset.tester.lanes = 8;
    preset.tester.episodeGen.lanes = 8;
    preset.tester.wfsPerCu = 2;
    preset.tester.variables.numNormalVars = 512;
    preset.tester.variables.addrRangeBytes = 1 << 14;
    preset.tester.scopeMode = mode;
    preset.name = "predict-test/seed" + std::to_string(seed);
    return preset;
}

/**
 * Record runs of @p mode from @p seed upward until one passes (racy
 * configs frequently manifest at record time; predict needs a passing
 * trace to reason from). Fails the test if none of 32 seeds pass.
 */
ReproTrace
recordPassing(std::uint64_t seed, ScopeMode mode, unsigned episodes,
              unsigned actions, std::uint64_t *found_seed = nullptr)
{
    RecordOptions rec;
    rec.captureEvents = true;
    for (std::uint64_t s = seed; s < seed + 32; ++s) {
        ReproTrace t =
            recordGpuRun(racyPreset(s, mode, episodes, actions), rec);
        if (t.result.passed) {
            if (found_seed != nullptr)
                *found_seed = s;
            return t;
        }
    }
    ADD_FAILURE() << "no passing recording in 32 seeds";
    return ReproTrace{};
}

} // namespace

// ---------------------------------------------------------------------
// HB model: micro-trace truth table
// ---------------------------------------------------------------------

TEST(HbModel, GpuReleaseAcquireOrdersAcrossCus)
{
    // wf0/cu0 releases gpu-scoped before wf2/cu1's gpu-scoped acquire:
    // drain + flash invalidate = a real sync path.
    ReproTrace t = microTrace({{0, Scope::Gpu, 10, 20},
                               {2, Scope::Gpu, 30, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_EQ(hb.orderSource(), HbOrderSource::SyncEvents);
    EXPECT_TRUE(hb.orderedBefore(0, 1));
    EXPECT_FALSE(hb.orderedBefore(1, 0));
    EXPECT_TRUE(hb.ordered(0, 1));
    EXPECT_TRUE(hb.sync(0).observed);
    EXPECT_EQ(hb.cuOf(0), 0u);
    EXPECT_EQ(hb.cuOf(1), 1u);
}

TEST(HbModel, CtaReleaseDoesNotReachRemoteCu)
{
    // wf0's cta-scoped release never drains past its own L1, so wf2's
    // gpu-scoped acquire on the other CU learns nothing.
    ReproTrace t = microTrace({{0, Scope::Cta, 10, 20},
                               {2, Scope::Gpu, 30, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_FALSE(hb.orderedBefore(0, 1));
    EXPECT_FALSE(hb.ordered(0, 1));
    EXPECT_NE(hb.explainUnordered(0, 1, t).find("skipped the drain"),
              std::string::npos);
}

TEST(HbModel, CtaAcquireDoesNotSeeRemoteDrain)
{
    // wf0's gpu-scoped release drains, but wf2's cta-scoped acquire
    // skips the flash invalidate: stale L1 data stays legal.
    ReproTrace t = microTrace({{0, Scope::Gpu, 10, 20},
                               {2, Scope::Cta, 30, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_FALSE(hb.orderedBefore(0, 1));
    EXPECT_NE(hb.explainUnordered(0, 1, t).find("flash invalidate"),
              std::string::npos);
}

TEST(HbModel, CtaPairOrdersWithinCu)
{
    // Same CU (wf0 and wf1 share cu0): the shared L1 is the cta sharing
    // domain, so cta release -> cta acquire is a sync path.
    ReproTrace t = microTrace({{0, Scope::Cta, 10, 20},
                               {1, Scope::Cta, 30, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_TRUE(hb.orderedBefore(0, 1));
    EXPECT_FALSE(hb.orderedBefore(1, 0));
}

TEST(HbModel, AcquireBeforeReleaseIsTimingNotSync)
{
    // wf2's acquire completed before wf0's release: the observed order
    // was timing luck, no happens-before edge exists either way.
    ReproTrace t = microTrace({{0, Scope::Gpu, 25, 30},
                               {2, Scope::Gpu, 5, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_FALSE(hb.orderedBefore(0, 1));
    EXPECT_FALSE(hb.orderedBefore(1, 0));
    EXPECT_NE(hb.explainUnordered(0, 1, t).find("timing"),
              std::string::npos);
}

TEST(HbModel, ProgramOrderAlwaysOrdersSameWavefront)
{
    // Two unsynchronized episodes of one wavefront: program order wins
    // regardless of scopes or ticks.
    ReproTrace t = microTrace({{0, Scope::Cta, 10, 20},
                               {0, Scope::Cta, 30, 40}});
    HbModel hb = HbModel::build(t);
    EXPECT_TRUE(hb.orderedBefore(0, 1));
    EXPECT_FALSE(hb.orderedBefore(1, 0));
    EXPECT_EQ(hb.programIndex(0), 0u);
    EXPECT_EQ(hb.programIndex(1), 1u);
}

TEST(HbModel, GpuReleaseDrainsCtaPendingWrites)
{
    // wf0 releases cta-scoped; wf1 (same CU) later releases gpu-scoped,
    // draining the whole CU — wf0's epoch included. wf2's gpu acquire
    // on the remote CU therefore inherits wf0 transitively.
    ReproTrace t = microTrace({{0, Scope::Cta, 10, 20},
                               {1, Scope::Gpu, 30, 40},
                               {2, Scope::Gpu, 50, 60}});
    HbModel hb = HbModel::build(t);
    EXPECT_TRUE(hb.orderedBefore(0, 2));
    EXPECT_TRUE(hb.orderedBefore(1, 2));
    // ...but without the intermediate drain the same pair is unordered.
    ReproTrace bare = microTrace({{0, Scope::Cta, 10, 20},
                                  {2, Scope::Gpu, 50, 60}});
    EXPECT_FALSE(HbModel::build(bare).orderedBefore(0, 1));
}

TEST(HbModel, OrderSourceFallbacks)
{
    ReproTrace t = microTrace({{0, Scope::Gpu, 10, 20},
                               {2, Scope::Gpu, 30, 40}});
    EXPECT_EQ(HbModel::build(t).orderSource(),
              HbOrderSource::SyncEvents);

    // Pre-v4 stream: only episode begin/end markers. Scopes come from
    // the schedule, order from the markers — same verdicts.
    ReproTrace markers = t;
    for (TraceEvent &ev : markers.events) {
        ev.kind = ev.kind == TraceEventKind::SyncAcquire
                      ? TraceEventKind::EpisodeIssue
                      : TraceEventKind::EpisodeRetire;
    }
    HbModel hb = HbModel::build(markers);
    EXPECT_EQ(hb.orderSource(), HbOrderSource::EpisodeMarkers);
    EXPECT_TRUE(hb.orderedBefore(0, 1));

    // No events at all: schedule order approximation.
    ReproTrace none = t;
    none.events.clear();
    HbModel sched = HbModel::build(none);
    EXPECT_EQ(sched.orderSource(), HbOrderSource::ScheduleOrder);
    EXPECT_TRUE(sched.orderedBefore(0, 1));

    EXPECT_STREQ(hbOrderSourceName(HbOrderSource::SyncEvents),
                 "sync_events");
    EXPECT_STREQ(hbOrderSourceName(HbOrderSource::EpisodeMarkers),
                 "episode_markers");
    EXPECT_STREQ(hbOrderSourceName(HbOrderSource::ScheduleOrder),
                 "schedule_order");
}

// ---------------------------------------------------------------------
// Predictive pass: properties on real recorded runs
// ---------------------------------------------------------------------

TEST(Predict, UnscopedTraceYieldsNoCandidates)
{
    // Unscoped episodes carry device-wide sync, so every conflicting
    // pair is release/acquire-ordered: the pass must stay silent.
    ReproTrace trace = recordPassing(1, ScopeMode::None, 4, 8);
    ASSERT_TRUE(trace.result.passed);
    PredictReport report = predictRaces(trace);
    EXPECT_EQ(report.orderSource, HbOrderSource::SyncEvents);
    EXPECT_GT(report.pairsChecked, 0u);
    EXPECT_EQ(report.candidates, 0u);
    EXPECT_TRUE(report.races.empty());
    EXPECT_EQ(report.replays, 0u);
}

TEST(Predict, RacyTraceConfirmsRacesWithReplayableWitnesses)
{
    // A PASSING racy-scope run: the recorded schedule got lucky, the
    // predictive pass must find where.
    ReproTrace trace = recordPassing(1, ScopeMode::Racy, 4, 8);
    ASSERT_TRUE(trace.result.passed);

    PredictReport report = predictRaces(trace);
    EXPECT_GT(report.candidates, 0u);
    EXPECT_GE(report.confirmedCount(), 1u);
    EXPECT_EQ(report.confirmedCount() + report.demotedCount(),
              report.races.size());

    // Soundness: every verdict is replay-backed. A confirmed race's
    // witness perturbation must reproduce its failure; a demoted race's
    // witness prefix must still pass — i.e. the pass never *confirms* a
    // pair that replay proves ordered.
    for (const PredictedRace &race : report.races) {
        ASSERT_TRUE(race.verified);
        EXPECT_NE(race.first.wavefront, race.second.wavefront);
        EXPECT_EQ(race.first.var, race.second.var);
        EXPECT_TRUE(race.first.isWrite || race.second.isWrite);
        EXPECT_FALSE(race.syncPath.empty());

        EpisodeSchedule witness = witnessSchedule(trace, race);
        ASSERT_GT(witness.size(), 0u);
        SchedulePerturbation perturb;
        if (race.witnessDelay != 0)
            perturb.add(race.first.episodeId, race.witnessDelay);
        TesterResult replay = replayGpuRun(trace, witness, true,
                                           nullptr, &perturb);
        if (race.confirmed) {
            EXPECT_FALSE(replay.passed);
            EXPECT_EQ(replay.failureClass, race.witnessClass);
            EXPECT_FALSE(race.witnessReport.empty());
        } else {
            EXPECT_TRUE(replay.passed)
                << "demoted pair's witness failed: " << race.syncPath;
            EXPECT_EQ(race.witnessClass, FailureClass::None);
        }
    }
}

TEST(Predict, ReportJsonCarriesVerdicts)
{
    ReproTrace trace = recordPassing(1, ScopeMode::Racy, 4, 8);
    PredictReport report = predictRaces(trace);
    std::string json = predictReportJson(trace, report);
    for (const char *key :
         {"\"order_source\":\"sync_events\"", "\"pairs_checked\":",
          "\"candidates\":", "\"confirmed\":", "\"demoted\":",
          "\"races\":[", "\"sync_path\":", "\"witness\":"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key;
    }
}

// ---------------------------------------------------------------------
// Explore strategy: determinism and reachability
// ---------------------------------------------------------------------

TEST(Explore, DeterministicAcrossWorkerCountsAndFindsScopeViolation)
{
    // Same seed-scan as tools/predict_sweep --explore: perturb a
    // passing racy base run.
    std::uint64_t base_seed = 0;
    recordPassing(1, ScopeMode::Racy, 6, 8, &base_seed);

    ExploreOptions opts;
    opts.budget = 64;
    opts.maxFlipsPerTrace = 12;

    AdaptiveCampaignResult results[2];
    std::string aggregates[2];
    const unsigned jobs[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
        ExploreSource source(
            racyPreset(base_seed, ScopeMode::Racy, 6, 8), opts);
        ASSERT_TRUE(source.baseTrace().result.passed);

        AdaptiveCampaignConfig cfg;
        cfg.jobs = jobs[i];
        // Spend the whole budget: the aggregate then covers the same
        // exploration at any worker count (and the failure-class set
        // below is the full schedule-reachable one).
        cfg.stopOnFailure = false;
        results[i] = runAdaptiveCampaign(source, cfg);
        aggregates[i] = adaptiveAggregatesJson(results[i], "gpu_tester");

        EXPECT_GT(source.issued(), 0u);
        if (i == 0) {
            // The acceptance bar: some explored interleaving of this
            // passing run manifests the reference scoped-sync bug.
            EXPECT_TRUE(source.failuresByClass().count(
                FailureClass::ScopeViolation))
                << "no ScopeViolation within budget " << opts.budget;
        }
        ASSERT_TRUE(results[i].predictTriage.has_value());
        EXPECT_GT(results[i].predictTriage->interleavings, 0u);
    }

    EXPECT_EQ(aggregates[0], aggregates[1])
        << "explore aggregates differ between jobs=1 and jobs=4";
    EXPECT_EQ(results[0].shardsRun, results[1].shardsRun);

    // The explore campaign JSON carries the populated triage block.
    std::string json = adaptiveCampaignToJson(results[0], "gpu_tester");
    EXPECT_NE(json.find("\"strategy\":\"explore\""), std::string::npos);
    EXPECT_NE(json.find("\"predicted_races\":{\"candidates\":"),
              std::string::npos);
}
