/**
 * @file
 * Tests for the system builder and the heterogeneous (GPU tester + CPU
 * tester) union-coverage flow of Section IV.C.
 */

#include <gtest/gtest.h>

#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

TEST(ApuSystem, BuildsGpuOnly)
{
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 8);
    ApuSystem sys(cfg);
    EXPECT_EQ(sys.numCus(), 8u);
    EXPECT_EQ(sys.numCpuCaches(), 0u);
    EXPECT_TRUE(sys.hasGpu());
    EXPECT_EQ(sys.fault(), nullptr);
}

TEST(ApuSystem, BuildsCpuOnly)
{
    ApuSystemConfig cfg;
    cfg.numCus = 0;
    cfg.numCpuCaches = 4;
    ApuSystem sys(cfg);
    EXPECT_FALSE(sys.hasGpu());
    EXPECT_EQ(sys.numCpuCaches(), 4u);
}

TEST(ApuSystem, BuildsFullApu)
{
    ApuSystemConfig cfg;
    cfg.numCus = 4;
    cfg.numCpuCaches = 2;
    ApuSystem sys(cfg);
    EXPECT_TRUE(sys.hasGpu());
    EXPECT_EQ(sys.numCpuCaches(), 2u);
}

TEST(ApuSystem, FaultInjectorArmedWhenConfigured)
{
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 1);
    cfg.fault = FaultKind::LostWriteThrough;
    ApuSystem sys(cfg);
    ASSERT_NE(sys.fault(), nullptr);
    EXPECT_EQ(sys.fault()->kind(), FaultKind::LostWriteThrough);
}

TEST(ApuSystem, CacheGeometryFollowsConfig)
{
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    ApuSystem sys(cfg);
    EXPECT_EQ(sys.l1(0).array().capacity(), 256u);
    EXPECT_EQ(sys.l2().array().capacity(), 1024u);

    ApuSystemConfig large = makeGpuSystemConfig(CacheSizeClass::Large, 2);
    ApuSystem sys2(large);
    EXPECT_EQ(sys2.l1(0).array().capacity(), 256u * 1024u);
    EXPECT_EQ(sys2.l2().array().capacity(), 1024u * 1024u);
}

TEST(ApuSystem, L1CoverageUnionMergesAllCus)
{
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    ApuSystem sys(cfg);
    sys.l1(0).coverage().hit(GpuL1Cache::EvLoad, GpuL1Cache::StI);
    sys.l1(1).coverage().hit(GpuL1Cache::EvLoad, GpuL1Cache::StV);
    CoverageGrid grid = sys.l1CoverageUnion();
    EXPECT_EQ(grid.count(GpuL1Cache::EvLoad, GpuL1Cache::StI), 1u);
    EXPECT_EQ(grid.count(GpuL1Cache::EvLoad, GpuL1Cache::StV), 1u);
}

TEST(HeteroUnion, TestersComplementEachOtherOnDirectory)
{
    // Run the GPU tester on a GPU system and the CPU tester on a CPU
    // system (serially, as in the paper), then union the directory
    // coverage: the union must strictly dominate each individual run.
    ApuSystemConfig gpu_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 4);
    ApuSystem gpu_sys(gpu_cfg);
    GpuTesterConfig gt_cfg =
        makeGpuTesterConfig(30, 6, 10, /*seed=*/2);
    gt_cfg.lanes = 8;
    gt_cfg.episodeGen.lanes = 8;
    GpuTester gpu_tester(gpu_sys, gt_cfg);
    TesterResult gr = gpu_tester.run();
    ASSERT_TRUE(gr.passed) << gr.report;

    ApuSystemConfig cpu_cfg;
    cpu_cfg.numCus = 0;
    cpu_cfg.numCpuCaches = 4;
    cpu_cfg.cpu.sizeBytes = 512;
    cpu_cfg.cpu.assoc = 2;
    ApuSystem cpu_sys(cpu_cfg);
    CpuTesterConfig ct_cfg;
    ct_cfg.targetLoads = 4000;
    ct_cfg.addrRangeBytes = 512;
    ct_cfg.seed = 3;
    CpuTester cpu_tester(cpu_sys, ct_cfg);
    TesterResult cr = cpu_tester.run();
    ASSERT_TRUE(cr.passed) << cr.report;

    CoverageGrid uni(Directory::spec());
    uni.merge(gpu_sys.directory().coverage());
    uni.merge(cpu_sys.directory().coverage());

    std::size_t gpu_active =
        gpu_sys.directory().coverage().activeCount("");
    std::size_t cpu_active =
        cpu_sys.directory().coverage().activeCount("");
    std::size_t union_active = uni.activeCount("");

    EXPECT_GT(union_active, gpu_active);
    EXPECT_GT(union_active, cpu_active);
    // The two testers stress disjoint requestor classes.
    EXPECT_GT(gpu_sys.directory().coverage().count(
                  Directory::EvGpuFetch, Directory::StU),
              0u);
    EXPECT_GT(cpu_sys.directory().coverage().count(
                  Directory::EvCpuGets, Directory::StU),
              0u);
    // Neither generates DMA traffic (Section IV.C: apps-only).
    for (auto st : {Directory::StU, Directory::StCS, Directory::StCM,
                    Directory::StB}) {
        EXPECT_EQ(uni.count(Directory::EvDmaRead, st), 0u);
        EXPECT_EQ(uni.count(Directory::EvDmaWrite, st), 0u);
    }
}

TEST(HeteroUnion, ConcurrentTestersOnOneSystemPass)
{
    // Both testers share one APU and run concurrently over disjoint
    // address ranges — the integrated CPU-GPU protocol check.
    ApuSystemConfig cfg = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    cfg.numCpuCaches = 2;
    cfg.cpu.sizeBytes = 512;
    cfg.cpu.assoc = 2;
    ApuSystem sys(cfg);

    GpuTesterConfig gt_cfg = makeGpuTesterConfig(20, 4, 10, 5);
    gt_cfg.lanes = 4;
    gt_cfg.episodeGen.lanes = 4;
    gt_cfg.variables.numNormalVars = 512;
    gt_cfg.variables.addrRangeBytes = 1 << 14; // GPU: [0, 16K)

    CpuTesterConfig ct_cfg;
    ct_cfg.targetLoads = 1500;
    ct_cfg.addrBase = 1 << 20; // CPU: [1M, 1M+512)
    ct_cfg.addrRangeBytes = 512;
    ct_cfg.seed = 6;

    GpuTester gpu_tester(sys, gt_cfg);
    CpuTester cpu_tester(sys, ct_cfg);

    // Both testers share one event queue and one directory. They run
    // back to back ("even when the GPU and CPU testers are run in
    // serial", Section VII) — the directory keeps its state across the
    // two runs, so the second run executes against a directory already
    // populated by the first.
    TesterResult cr = cpu_tester.run();
    ASSERT_TRUE(cr.passed) << cr.report;
    TesterResult gr = gpu_tester.run();
    ASSERT_TRUE(gr.passed) << gr.report;

    // The shared directory saw both requestor classes.
    const auto &dir = sys.directory().coverage();
    EXPECT_GT(dir.count(Directory::EvGpuFetch, Directory::StU), 0u);
    EXPECT_GT(dir.count(Directory::EvCpuGets, Directory::StU), 0u);
}
