/**
 * @file
 * Fleet tests: wire framing, protocol payload round trips (including
 * bit-exact double transport), StreamingShardMerge arrival-order
 * invariance, and end-to-end coordinator/worker campaigns — the
 * distributed aggregates must be byte-identical to the workers=0
 * degenerate fleet, with workers killed mid-campaign, with proactive
 * steals, and across a halt + resume.
 *
 * The end-to-end suite forks real worker processes (through
 * runLocalFleet, which forks before the coordinator spawns any
 * thread), so it exercises the actual sockets, the actual SIGKILL
 * recovery path, and the actual journal file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define DRF_TEST_HAVE_SOCKETPAIR 1
#else
#define DRF_TEST_HAVE_SOCKETPAIR 0
#endif

#include "campaign/journal.hh"
#include "campaign/merge_stream.hh"
#include "fleet/fleet.hh"
#include "fleet/protocol.hh"
#include "fleet/wire.hh"
#include "guidance/adaptive_campaign.hh"
#include "guidance/genome.hh"
#include "guidance/sources.hh"
#include "proto/gpu_l1.hh"

using namespace drf;
using namespace drf::fleet;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "drf_fleet_" + name;
}

/** Two tiny arms so fleet campaigns finish in seconds, not minutes. */
SourceConfig
tinySourceConfig(std::uint64_t master_seed, std::size_t max_shards,
                 std::size_t batch)
{
    ConfigGenome a;
    a.cacheClass = CacheSizeClass::Small;
    a.actionsPerEpisode = 20;
    a.episodesPerWf = 3;
    a.atomicLocs = 10;
    a.colocDensity = 0.37; // deliberately not exactly representable
    a.numCus = 2;
    ConfigGenome b = a;
    b.actionsPerEpisode = 30;
    b.colocDensity = 2.0;

    SourceConfig cfg;
    cfg.arms = {a, b};
    cfg.scale.lanes = 4;
    cfg.scale.wfsPerCu = 2;
    cfg.scale.numNormalVars = 256;
    cfg.masterSeed = master_seed;
    cfg.batchSize = batch;
    cfg.maxShards = max_shards;
    return cfg;
}

/** Synthetic outcome for merge tests; no simulator involved. */
ShardOutcome
syntheticOutcome(std::size_t index, std::uint64_t events,
                 bool passed = true, bool with_grid = false)
{
    ShardOutcome out;
    out.name = "synthetic-" + std::to_string(index);
    out.seed = 1000 + index;
    out.index = index;
    out.result.passed = passed;
    out.result.ticks = 10 * (index + 1);
    out.result.events = events;
    out.result.episodes = 2;
    if (!passed) {
        out.result.report = "synthetic failure";
        out.result.failureClass = FailureClass::ValueMismatch;
    }
    if (with_grid) {
        out.l1 = std::make_unique<CoverageGrid>(GpuL1Cache::spec());
        // A per-index cell pattern so unions depend on every shard.
        out.l1->hit(index % out.l1->spec().numEvents(),
                    index % out.l1->spec().numStates());
        out.l1->hit(0, 0);
    }
    return out;
}

/** Fields of a CampaignResult that must be arrival-order invariant. */
void
expectEquivalent(const CampaignResult &a, const CampaignResult &b)
{
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.shardsRun, b.shardsRun);
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
    EXPECT_EQ(a.totalEpisodes, b.totalEpisodes);
    ASSERT_EQ(a.firstFailure.has_value(), b.firstFailure.has_value());
    if (a.firstFailure) {
        EXPECT_EQ(a.firstFailure->index, b.firstFailure->index);
        EXPECT_EQ(a.firstFailure->name, b.firstFailure->name);
    }
    ASSERT_EQ(a.l1Union.has_value(), b.l1Union.has_value());
    if (a.l1Union) {
        EXPECT_EQ(a.l1Union->activeDigest(), b.l1Union->activeDigest());
        EXPECT_EQ(a.l1Union->totalHits(), b.l1Union->totalHits());
    }
    ASSERT_EQ(a.saturationCurve.size(), b.saturationCurve.size());
    for (std::size_t i = 0; i < a.saturationCurve.size(); ++i) {
        EXPECT_EQ(a.saturationCurve[i].shardName,
                  b.saturationCurve[i].shardName)
            << "curve position " << i;
        EXPECT_EQ(a.saturationCurve[i].cumulativeEvents,
                  b.saturationCurve[i].cumulativeEvents);
    }
}

} // namespace

// ---------------------------------------------------------------------
// Wire framing.
// ---------------------------------------------------------------------

#if DRF_TEST_HAVE_SOCKETPAIR

TEST(FleetWire, FrameRoundTrip)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));

    std::string binary("\x00\x01\xff{\"k\":1}\n", 10);
    ASSERT_TRUE(sendFrame(fds[0], fleet::MsgType::Hello, "hello"));
    ASSERT_TRUE(sendFrame(fds[0], fleet::MsgType::Result, binary));
    ASSERT_TRUE(sendFrame(fds[0], fleet::MsgType::Steal, ""));

    Frame f;
    ASSERT_TRUE(recvFrame(fds[1], f));
    EXPECT_EQ(fleet::MsgType::Hello, f.type);
    EXPECT_EQ("hello", f.payload);
    ASSERT_TRUE(recvFrame(fds[1], f));
    EXPECT_EQ(fleet::MsgType::Result, f.type);
    EXPECT_EQ(binary, f.payload);
    ASSERT_TRUE(recvFrame(fds[1], f));
    EXPECT_EQ(fleet::MsgType::Steal, f.type);
    EXPECT_TRUE(f.payload.empty());

    ::close(fds[0]);
    EXPECT_FALSE(recvFrame(fds[1], f)) << "EOF must fail cleanly";
    ::close(fds[1]);
}

TEST(FleetWire, RejectsOversizedLength)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    // Hand-crafted v2 header claiming a 4 GiB payload (CRC field is
    // never reached: the length check rejects first).
    unsigned char head[fleet::kFrameHeaderSize] = {
        0xff, 0xff, 0xff, 0xff,
        static_cast<unsigned char>(fleet::MsgType::Hello),
        0, 0, 0, 0};
    ASSERT_EQ(ssize_t(sizeof(head)),
              ::write(fds[0], head, sizeof(head)));
    Frame f;
    EXPECT_EQ(fleet::WireStatus::Oversized,
              fleet::recvFrameEx(fds[1], f));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(FleetWire, TornHeaderFailsCleanly)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    unsigned char partial[3] = {5, 0, 0};
    ASSERT_EQ(ssize_t(sizeof(partial)),
              ::write(fds[0], partial, sizeof(partial)));
    ::close(fds[0]); // EOF mid-header
    Frame f;
    EXPECT_FALSE(recvFrame(fds[1], f));
    ::close(fds[1]);
}

#endif // DRF_TEST_HAVE_SOCKETPAIR

// ---------------------------------------------------------------------
// Protocol payloads.
// ---------------------------------------------------------------------

TEST(FleetProtocol, HelloWelcomeHeartbeatRoundTrip)
{
    HelloMsg hello;
    hello.worker = "host-7:1234";
    hello.pid = 1234;
    hello.slots = 3;
    HelloMsg hello2;
    ASSERT_TRUE(parseHello(serializeHello(hello), hello2));
    EXPECT_EQ(hello.worker, hello2.worker);
    EXPECT_EQ(hello.pid, hello2.pid);
    EXPECT_EQ(hello.slots, hello2.slots);

    WelcomeMsg welcome;
    welcome.forkIsolation = true;
    welcome.shardTimeoutSeconds = 0.1; // not exactly representable
    welcome.shardEventBudget = 123456789;
    welcome.maxRetries = 5;
    welcome.retryBackoffMs = 7;
    welcome.queueDepth = 4;
    welcome.heartbeatMs = 250;
    WelcomeMsg welcome2;
    ASSERT_TRUE(parseWelcome(serializeWelcome(welcome), welcome2));
    EXPECT_EQ(welcome.forkIsolation, welcome2.forkIsolation);
    EXPECT_EQ(welcome.shardTimeoutSeconds, welcome2.shardTimeoutSeconds)
        << "doubles must survive the wire bit-exactly";
    EXPECT_EQ(welcome.shardEventBudget, welcome2.shardEventBudget);
    EXPECT_EQ(welcome.queueDepth, welcome2.queueDepth);
    EXPECT_EQ(welcome.heartbeatMs, welcome2.heartbeatMs);

    HeartbeatMsg hb;
    hb.inflight = 2;
    hb.completed = 40;
    HeartbeatMsg hb2;
    ASSERT_TRUE(parseHeartbeat(serializeHeartbeat(hb), hb2));
    EXPECT_EQ(hb.inflight, hb2.inflight);
    EXPECT_EQ(hb.completed, hb2.completed);
}

TEST(FleetProtocol, LeaseRoundTripIsBitExact)
{
    ShardLease lease;
    lease.index = 41;
    lease.seed = 0xdeadbeefcafe;
    lease.genome.cacheClass = CacheSizeClass::Mixed;
    lease.genome.actionsPerEpisode = 123;
    lease.genome.episodesPerWf = 7;
    lease.genome.atomicLocs = 55;
    lease.genome.colocDensity = 1.0 / 3.0; // worst case for %.6g
    lease.genome.numCus = 6;
    lease.scale.lanes = 8;
    lease.scale.wfsPerCu = 3;
    lease.scale.numNormalVars = 1024;
    lease.scale.fault = FaultKind::None;
    lease.scale.faultTriggerPct = 100;
    lease.name = genomeName(lease.genome);

    ShardLease lease2;
    ASSERT_TRUE(parseLease(serializeLease(lease), lease2));
    EXPECT_EQ(lease.index, lease2.index);
    EXPECT_EQ(lease.name, lease2.name);
    EXPECT_EQ(lease.seed, lease2.seed);
    EXPECT_TRUE(lease.genome == lease2.genome)
        << "genome (incl. coloc_density double) must round-trip "
           "bit-exactly";
    EXPECT_EQ(lease.scale.lanes, lease2.scale.lanes);
    EXPECT_EQ(lease.scale.wfsPerCu, lease2.scale.wfsPerCu);
    EXPECT_EQ(lease.scale.numNormalVars, lease2.scale.numNormalVars);
    EXPECT_EQ(lease.scale.fault, lease2.scale.fault);
}

TEST(FleetProtocol, SourceLeaseReconstructsTheIssuedShard)
{
    SourceConfig cfg = tinySourceConfig(3, 4, 4);
    SweepSource source(cfg);
    std::vector<ShardSpec> batch = source.nextBatch();
    ASSERT_FALSE(batch.empty());
    for (const ShardSpec &spec : batch) {
        std::optional<ShardLease> lease = source.leaseForSeed(spec.seed);
        ASSERT_TRUE(lease.has_value());
        EXPECT_EQ(spec.name, lease->name);
        EXPECT_EQ(spec.seed, lease->seed);
        // The wire-rebuilt spec must be the shard the source issued.
        ShardLease parsed;
        ASSERT_TRUE(parseLease(serializeLease(*lease), parsed));
        ShardSpec rebuilt = leaseToSpec(parsed);
        EXPECT_EQ(spec.name, rebuilt.name);
        EXPECT_EQ(spec.seed, rebuilt.seed);
    }
}

TEST(FleetProtocol, ParseRejectsMalformedPayloads)
{
    HelloMsg hello;
    EXPECT_FALSE(parseHello("not json", hello));
    EXPECT_FALSE(parseHello("{}", hello));
    WelcomeMsg welcome;
    EXPECT_FALSE(parseWelcome("{\"v\":1}", welcome));
    ShardLease lease;
    EXPECT_FALSE(parseLease("{}", lease));
    EXPECT_FALSE(parseLease(
        "{\"v\":1,\"index\":0,\"name\":\"x\",\"seed\":1,"
        "\"genome\":{\"cache_class\":\"bogus\",\"actions_per_episode\":1,"
        "\"episodes_per_wf\":1,\"atomic_locs\":1,\"coloc_density\":1,"
        "\"num_cus\":1},\"scale\":{\"lanes\":1,\"wfs_per_cu\":1,"
        "\"num_normal_vars\":1,\"fault\":\"none\","
        "\"fault_trigger_pct\":100}}",
        lease))
        << "unknown cache class must be rejected, not defaulted";
}

// ---------------------------------------------------------------------
// StreamingShardMerge: arrival order must not matter.
// ---------------------------------------------------------------------

TEST(StreamingMerge, ShuffledArrivalMatchesSortedMerge)
{
    constexpr std::size_t kShards = 9;
    constexpr double kWall = 3.5;
    CampaignConfig cfg;
    cfg.stopOnFailure = false;

    // Reference: plain ShardMerge fed in index order.
    ShardMerge reference(cfg, kShards);
    for (std::size_t i = 0; i < kShards; ++i)
        reference.add(syntheticOutcome(i, 100 + i, /*passed=*/i != 4,
                                       /*with_grid=*/true),
                      kWall);
    CampaignResult want = reference.take(kWall);

    // Candidate: shuffled arrival + duplicate deliveries.
    std::vector<std::size_t> order(kShards);
    for (std::size_t i = 0; i < kShards; ++i)
        order[i] = i;
    std::mt19937 rng(12345);
    std::shuffle(order.begin(), order.end(), rng);

    StreamingShardMerge streaming(cfg, kShards);
    for (std::size_t index : order) {
        EXPECT_TRUE(streaming.offer(
            syntheticOutcome(index, 100 + index, index != 4, true)));
        // A stolen lease's second result: byte-identical duplicate.
        if (index % 3 == 0) {
            EXPECT_FALSE(streaming.offer(
                syntheticOutcome(index, 100 + index, index != 4, true)));
        }
    }
    EXPECT_EQ(kShards, streaming.drainSorted(kWall));
    CampaignResult got = streaming.take(kWall);

    expectEquivalent(want, got);
}

TEST(StreamingMerge, BufferedDuplicateLastRecordWins)
{
    CampaignConfig cfg;
    cfg.stopOnFailure = false;
    StreamingShardMerge streaming(cfg, 1);
    EXPECT_TRUE(streaming.offer(syntheticOutcome(0, 10)));
    // Journal-replay semantics: a later record for the same index
    // (e.g. a re-run after a host-level outcome) supersedes.
    EXPECT_FALSE(streaming.offer(syntheticOutcome(0, 99)));
    EXPECT_EQ(1u, streaming.drainSorted(0.0));
    CampaignResult res = streaming.take(0.0);
    EXPECT_EQ(99u, res.totalEvents);
    EXPECT_EQ(1u, res.shardsRun);
}

TEST(StreamingMerge, DrainedDuplicateIsDropped)
{
    CampaignConfig cfg;
    cfg.stopOnFailure = false;
    StreamingShardMerge streaming(cfg, 1);
    EXPECT_TRUE(streaming.offer(syntheticOutcome(0, 10)));
    EXPECT_EQ(1u, streaming.drainSorted(0.0));
    // The straggler's copy lands after the drain: dropped, not merged.
    EXPECT_FALSE(streaming.offer(syntheticOutcome(0, 99)));
    EXPECT_EQ(0u, streaming.pending());
    EXPECT_EQ(0u, streaming.drainSorted(0.0));
    CampaignResult res = streaming.take(0.0);
    EXPECT_EQ(10u, res.totalEvents);
    EXPECT_EQ(1u, res.shardsRun);
}

TEST(StreamingMerge, JournalReplayWithTornTailMatchesSortedMerge)
{
    constexpr std::size_t kShards = 5;
    constexpr double kWall = 1.0;
    CampaignConfig cfg;
    cfg.stopOnFailure = false;

    ShardMerge reference(cfg, kShards);
    for (std::size_t i = 0; i < kShards; ++i)
        reference.add(syntheticOutcome(i, 50 + i, true, true), kWall);
    CampaignResult want = reference.take(kWall);

    // A journal written out of order, with a duplicate and a torn tail.
    std::string path = tempPath("torn_tail.jsonl");
    {
        std::ofstream out(path, std::ios::trunc);
        std::vector<std::size_t> order{3, 0, 4, 1, 0, 2};
        for (std::size_t index : order)
            out << shardOutcomeToJson(
                       syntheticOutcome(index, 50 + index, true, true))
                << "\n";
        std::string torn =
            shardOutcomeToJson(syntheticOutcome(0, 999, true, true));
        out << torn.substr(0, torn.size() / 2); // crash mid-append
    }

    std::vector<ShardOutcome> records;
    ASSERT_TRUE(loadJournal(path, records));
    StreamingShardMerge streaming(cfg, kShards);
    for (ShardOutcome &rec : records)
        streaming.offer(std::move(rec), /*resumed=*/true);
    EXPECT_EQ(kShards, streaming.drainSorted(kWall));
    CampaignResult got = streaming.take(kWall);

    expectEquivalent(want, got);
    EXPECT_EQ(kShards, got.shardsResumed);
    std::remove(path.c_str());
}

TEST(StreamingMerge, MultiRecordPartialTailSkipsOnlyTheGarbage)
{
    // A crash can leave more than one damaged line: a torn record,
    // then bytes of a *second* record appended by a dying writer that
    // never reached its newline. Loading must skip exactly the
    // damage and keep every whole record before and between.
    std::string path = tempPath("multi_torn.jsonl");
    std::string rec0 =
        shardOutcomeToJson(syntheticOutcome(0, 50, true, true));
    std::string rec1 =
        shardOutcomeToJson(syntheticOutcome(1, 51, true, true));
    std::string rec2 =
        shardOutcomeToJson(syntheticOutcome(2, 52, true, true));
    {
        std::ofstream out(path, std::ios::trunc);
        out << rec0 << "\n";
        // Torn mid-record, no newline...
        out << rec1.substr(0, rec1.size() / 3);
        // ...with a second partial record fused onto the same line.
        out << rec2.substr(rec2.size() / 2) << "\n";
        out << rec2 << "\n"; // an intact copy after the damage
    }
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    ASSERT_EQ(2u, records.size());
    EXPECT_EQ(0u, records[0].index);
    EXPECT_EQ(2u, records[1].index);
    EXPECT_EQ(1u, stats.parseSkipped)
        << "the fused partial lines are one unparseable line";
    std::remove(path.c_str());
}

TEST(StreamingMerge, EmbeddedNewlinePayloadStaysOneJournalLine)
{
    // Shard names / reports may contain newlines; the JSON escaper
    // must keep each record a single JSONL line or a resume would
    // shear every following record.
    std::string path = tempPath("newline_payload.jsonl");
    ShardOutcome noisy = syntheticOutcome(0, 50, false, true);
    noisy.name = "line1\nline2";
    noisy.result.report = "assert failed:\n\texpected 1\n\tgot 2\n";
    std::string line = shardOutcomeToJson(noisy);
    EXPECT_EQ(std::string::npos, line.find('\n'))
        << "embedded newlines must be escaped, not emitted";
    {
        std::ofstream out(path, std::ios::trunc);
        out << sealJournalRecord(line) << "\n";
        out << shardOutcomeToJson(syntheticOutcome(1, 51, true, true))
            << "\n";
    }
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    ASSERT_EQ(2u, records.size());
    EXPECT_EQ("line1\nline2", records[0].name);
    EXPECT_EQ("assert failed:\n\texpected 1\n\tgot 2\n",
              records[0].result.report);
    EXPECT_EQ(0u, stats.crcSkipped + stats.parseSkipped);
    std::remove(path.c_str());
}

TEST(StreamingMerge, SealedAndBareRecordsCoexistOnResume)
{
    // Journals written before the CRC envelope (or by a writer with
    // crcRecords off) must stay loadable next to sealed records.
    std::string path = tempPath("mixed_seal.jsonl");
    {
        std::ofstream out(path, std::ios::trunc);
        out << shardOutcomeToJson(syntheticOutcome(0, 50, true, true))
            << "\n";
        out << sealJournalRecord(shardOutcomeToJson(
                   syntheticOutcome(1, 51, true, true)))
            << "\n";
    }
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    ASSERT_EQ(2u, records.size());
    EXPECT_EQ(0u, records[0].index);
    EXPECT_EQ(1u, records[1].index);
    EXPECT_EQ(0u, stats.crcSkipped + stats.parseSkipped);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// End to end: distributed == local, byte for byte.
// ---------------------------------------------------------------------

#if DRF_TEST_HAVE_SOCKETPAIR

namespace
{

struct FleetRun
{
    std::string aggregates;
    FleetResult result;
};

/** Run one fleet campaign over the tiny source. */
FleetRun
runFleet(const std::string &strategy, std::uint64_t master_seed,
         unsigned workers, unsigned die_on_result = 0,
         const std::string &journal = "", bool resume = false,
         std::size_t max_rounds = 0)
{
    SourceConfig src_cfg = tinySourceConfig(master_seed, 6, 3);
    std::unique_ptr<ShardSource> source;
    if (strategy == "guided")
        source = std::make_unique<GuidedSource>(src_cfg);
    else
        source = std::make_unique<SweepSource>(src_cfg);

    LocalFleetConfig cfg;
    cfg.workers = workers;
    cfg.dieOnResult = die_on_result;
    cfg.coordinator.campaign.jobs = 1;
    cfg.coordinator.journalPath = journal;
    cfg.coordinator.resume = resume;
    cfg.coordinator.maxRounds = max_rounds;
    cfg.coordinator.workerWaitSeconds = 20.0;

    FleetRun run;
    run.result = runLocalFleet(*source, cfg);
    run.aggregates =
        adaptiveAggregatesJson(run.result.adaptive, "gpu_tester");
    return run;
}

} // namespace

TEST(Fleet, TwoWorkerSweepMatchesDegenerateFleetByteForByte)
{
    FleetRun golden = runFleet("sweep", 21, /*workers=*/0);
    ASSERT_TRUE(golden.result.adaptive.passed);
    EXPECT_EQ(6u, golden.result.adaptive.shardsRun);
    EXPECT_EQ(6u, golden.result.localRuns);

    FleetRun fleet = runFleet("sweep", 21, /*workers=*/2);
    ASSERT_TRUE(fleet.result.adaptive.passed);
    EXPECT_EQ(2u, fleet.result.workersSeen);
    EXPECT_EQ(0u, fleet.result.localRuns)
        << "with live workers every shard should go over the wire";
    EXPECT_EQ(golden.aggregates, fleet.aggregates);
}

TEST(Fleet, TwoWorkerGuidedMatchesDegenerateFleetByteForByte)
{
    FleetRun golden = runFleet("guided", 33, /*workers=*/0);
    ASSERT_TRUE(golden.result.adaptive.passed);
    ASSERT_FALSE(golden.result.adaptive.decisions.empty());

    FleetRun fleet = runFleet("guided", 33, /*workers=*/2);
    ASSERT_TRUE(fleet.result.adaptive.passed);
    EXPECT_EQ(golden.aggregates, fleet.aggregates)
        << "guided decisions must be a pure function of the master "
           "seed at any worker count";
}

TEST(Fleet, KilledWorkerIsReLeasedAndAggregatesStillMatch)
{
    FleetRun golden = runFleet("sweep", 21, /*workers=*/0);

    // Worker 0 SIGKILLs itself instead of sending its first result, so
    // at least one lease must be recovered for the campaign to finish.
    FleetRun fleet =
        runFleet("sweep", 21, /*workers=*/2, /*die_on_result=*/1);
    ASSERT_TRUE(fleet.result.adaptive.passed);
    EXPECT_EQ(6u, fleet.result.adaptive.shardsRun);
    EXPECT_GE(fleet.result.releases, 1u);
    EXPECT_EQ(golden.aggregates, fleet.aggregates);
}

TEST(Fleet, CoordinatorFallsBackLocallyWhenNoWorkerArrives)
{
    SourceConfig src_cfg = tinySourceConfig(21, 6, 3);
    SweepSource source(src_cfg);
    CoordinatorConfig cfg;
    cfg.campaign.jobs = 1;
    cfg.expectedWorkers = 1; // nobody will connect
    cfg.workerWaitSeconds = 0.2;
    FleetCoordinator coordinator(source, cfg);
    ASSERT_TRUE(coordinator.listen());
    FleetResult result = coordinator.run();
    EXPECT_TRUE(result.adaptive.passed);
    EXPECT_EQ(6u, result.adaptive.shardsRun);
    EXPECT_EQ(6u, result.localRuns);

    FleetRun golden = runFleet("sweep", 21, /*workers=*/0);
    EXPECT_EQ(golden.aggregates,
              adaptiveAggregatesJson(result.adaptive, "gpu_tester"));
}

TEST(Fleet, HaltedFleetResumesBitIdentically)
{
    std::string journal = tempPath("resume.jsonl");
    std::remove(journal.c_str());

    FleetRun golden = runFleet("guided", 33, /*workers=*/0);

    // Phase 1: stop after one round, journaling.
    FleetRun halted = runFleet("guided", 33, /*workers=*/0, 0, journal,
                               /*resume=*/false, /*max_rounds=*/1);
    EXPECT_TRUE(halted.result.halted);
    EXPECT_EQ(3u, halted.result.adaptive.shardsRun);

    // Phase 2: resume the same campaign — this time over two workers,
    // so adoption and distribution compose.
    FleetRun resumed = runFleet("guided", 33, /*workers=*/2, 0, journal,
                                /*resume=*/true);
    EXPECT_FALSE(resumed.result.halted);
    EXPECT_EQ(3u, resumed.result.shardsResumed);
    EXPECT_EQ(6u, resumed.result.adaptive.shardsRun);
    EXPECT_EQ(golden.aggregates, resumed.aggregates)
        << "resume + fleet must reproduce the uninterrupted campaign "
           "byte for byte";
    std::remove(journal.c_str());
}

#endif // DRF_TEST_HAVE_SOCKETPAIR
