/**
 * @file
 * Chaos layer tests: the deterministic fault primitives (RNG, CRC,
 * profiles, wire/disk planners), the wire v2 CRC detection path, the
 * journal integrity envelope and its retry/degrade ladder, and the
 * end-to-end invariant the whole layer exists for — a fleet campaign
 * under injected corruption detects every fault and still produces
 * aggregates byte-identical to a clean serial golden.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define DRF_TEST_HAVE_SOCKETPAIR 1
#else
#define DRF_TEST_HAVE_SOCKETPAIR 0
#endif

#include "campaign/journal.hh"
#include "chaos/chaos.hh"
#include "chaos/disk_chaos.hh"
#include "chaos/wire_chaos.hh"
#include "fleet/fleet.hh"
#include "fleet/wire.hh"
#include "guidance/adaptive_campaign.hh"
#include "guidance/genome.hh"
#include "guidance/sources.hh"

using namespace drf;
using namespace drf::fleet;

namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "drf_chaos_" + name;
}

} // namespace

// ---------------------------------------------------------------------
// Primitives: hashing, RNG, profiles.
// ---------------------------------------------------------------------

TEST(ChaosPrimitives, Crc32cMatchesKnownVector)
{
    // The canonical CRC32C check value (RFC 3720 appendix).
    EXPECT_EQ(0xE3069283u, chaos::crc32c("123456789"));
    EXPECT_EQ(0u, chaos::crc32c(""));
}

TEST(ChaosPrimitives, Crc32cChainsIncrementally)
{
    std::string data = "the quick brown fox";
    std::uint32_t whole = chaos::crc32c(data);
    std::uint32_t part = chaos::crc32c(data.substr(0, 7));
    part = chaos::crc32c(data.data() + 7, data.size() - 7, part);
    EXPECT_EQ(whole, part);
}

TEST(ChaosPrimitives, Fnv1a64IsStable)
{
    // FNV-1a offset basis: hashing nothing returns the basis.
    EXPECT_EQ(1469598103934665603ull, chaos::fnv1a64(""));
    EXPECT_NE(chaos::fnv1a64("a"), chaos::fnv1a64("b"));
    EXPECT_EQ(chaos::fnv1a64("payload"), chaos::fnv1a64("payload"));
}

TEST(ChaosPrimitives, RngIsDeterministicPerSeed)
{
    chaos::ChaosRng a(7), b(7), c(8);
    bool diverged = false;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "different seeds must differ";
    EXPECT_EQ(0u, a.below(0));
    for (int i = 0; i < 64; ++i)
        EXPECT_LT(a.below(10), 10u);
}

TEST(ChaosPrimitives, ChancePctHonorsExtremes)
{
    chaos::ChaosRng rng(3);
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(rng.chancePct(0.0));
        EXPECT_TRUE(rng.chancePct(100.0));
    }
}

TEST(ChaosPrimitives, DeriveSeedSeparatesStreams)
{
    std::uint64_t w0 = chaos::deriveSeed(42, "wire:worker-0");
    std::uint64_t w1 = chaos::deriveSeed(42, "wire:worker-1");
    std::uint64_t disk = chaos::deriveSeed(42, "disk:journal");
    EXPECT_NE(w0, w1);
    EXPECT_NE(w0, disk);
    EXPECT_EQ(w0, chaos::deriveSeed(42, "wire:worker-0"))
        << "same master + stream must reproduce";
    EXPECT_NE(w0, chaos::deriveSeed(43, "wire:worker-0"));
}

TEST(ChaosPrimitives, EveryNamedProfileResolves)
{
    std::vector<std::string> names = chaos::profileNames();
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names) {
        chaos::ChaosProfile profile;
        EXPECT_TRUE(chaos::profileByName(name, profile)) << name;
        EXPECT_EQ(name, profile.name);
    }
    chaos::ChaosProfile none;
    ASSERT_TRUE(chaos::profileByName("none", none));
    EXPECT_FALSE(none.any());
    chaos::ChaosProfile unknown;
    EXPECT_FALSE(chaos::profileByName("wire-gremlins", unknown));
}

// ---------------------------------------------------------------------
// Fault planners.
// ---------------------------------------------------------------------

TEST(WireChaos, SameSeedSameRatesSamePlan)
{
    chaos::WireRates rates;
    rates.flipPct = 30;
    rates.dropPct = 10;
    rates.truncPct = 10;
    rates.dupPct = 10;
    chaos::WireChaos a(99, rates), b(99, rates);
    for (int i = 0; i < 200; ++i) {
        chaos::FramePlan pa = a.planFrame(64, 4);
        chaos::FramePlan pb = b.planFrame(64, 4);
        EXPECT_EQ(pa.drop, pb.drop);
        EXPECT_EQ(pa.copies, pb.copies);
        EXPECT_EQ(pa.flipOffset, pb.flipOffset);
        EXPECT_EQ(pa.flipMask, pb.flipMask);
        EXPECT_EQ(pa.truncateTo, pb.truncateTo);
    }
    EXPECT_GT(a.stats().totalInjected(), 0u);
}

TEST(WireChaos, ZeroRatesNeverInject)
{
    chaos::WireChaos wc(1, chaos::WireRates{});
    for (int i = 0; i < 100; ++i) {
        chaos::FramePlan plan = wc.planFrame(32, 4);
        EXPECT_FALSE(plan.drop);
        EXPECT_EQ(1u, plan.copies);
        EXPECT_EQ(-1, plan.flipOffset);
        EXPECT_EQ(SIZE_MAX, plan.truncateTo);
        EXPECT_EQ(0, plan.delayMs);
    }
    EXPECT_EQ(0u, wc.stats().totalInjected());
}

TEST(WireChaos, FlipsNeverTouchTheLengthPrefix)
{
    chaos::WireRates rates;
    rates.flipPct = 100;
    chaos::WireChaos wc(5, rates);
    for (int i = 0; i < 200; ++i) {
        chaos::FramePlan plan = wc.planFrame(40, 4);
        ASSERT_GE(plan.flipOffset, 4);
        ASSERT_LT(plan.flipOffset, 40);
        EXPECT_NE(0, plan.flipMask) << "a zero mask flips nothing";
    }
}

TEST(DiskChaos, EnospcBudgetCapsAcceptedBytes)
{
    chaos::DiskRates rates;
    rates.enospcAfterBytes = 100;
    chaos::DiskChaos dc(1, rates);
    std::size_t accepted = 0;
    bool hit_enospc = false;
    for (int i = 0; i < 10 && !hit_enospc; ++i) {
        chaos::DiskWriteFate fate = dc.writeFate(40);
        accepted += fate.allow;
        if (fate.err != 0) {
            EXPECT_EQ(ENOSPC, fate.err);
            hit_enospc = true;
        }
    }
    EXPECT_TRUE(hit_enospc);
    EXPECT_LE(accepted, 100u);
}

TEST(DiskChaos, ShortWritesReturnPrefixAndErrno)
{
    chaos::DiskRates rates;
    rates.shortWritePct = 100;
    chaos::DiskChaos dc(9, rates);
    chaos::DiskWriteFate fate = dc.writeFate(64);
    EXPECT_LT(fate.allow, 64u);
    EXPECT_NE(0, fate.err);
}

TEST(DiskChaos, FsyncFaultIsDeterministic)
{
    chaos::DiskRates rates;
    rates.fsyncFailPct = 50;
    chaos::DiskChaos a(17, rates), b(17, rates);
    bool saw_fail = false, saw_ok = false;
    for (int i = 0; i < 64; ++i) {
        int fa = a.syncFate();
        EXPECT_EQ(fa, b.syncFate());
        (fa != 0 ? saw_fail : saw_ok) = true;
    }
    EXPECT_TRUE(saw_fail);
    EXPECT_TRUE(saw_ok);
}

// ---------------------------------------------------------------------
// Wire v2: CRC detection over a real socket.
// ---------------------------------------------------------------------

#if DRF_TEST_HAVE_SOCKETPAIR

TEST(WireV2, FlippedPayloadByteIsDetectedAsCorrupt)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::string wire =
        encodeFrame(fleet::MsgType::Result, "{\"k\":42}");
    wire[kFrameHeaderSize + 3] ^= 0x10; // payload byte
    ASSERT_TRUE(sendRawFrame(fds[0], wire));
    Frame f;
    EXPECT_EQ(WireStatus::Corrupt, recvFrameEx(fds[1], f));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(WireV2, FlippedTypeByteIsDetectedAsCorrupt)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::string wire = encodeFrame(fleet::MsgType::Result, "payload");
    wire[4] ^= 0x01; // the type byte is covered by the frame CRC
    ASSERT_TRUE(sendRawFrame(fds[0], wire));
    Frame f;
    EXPECT_EQ(WireStatus::Corrupt, recvFrameEx(fds[1], f));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(WireV2, FlippedCrcFieldIsDetectedAsCorrupt)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::string wire = encodeFrame(fleet::MsgType::Heartbeat, "");
    wire[5] ^= 0x80; // CRC field itself
    ASSERT_TRUE(sendRawFrame(fds[0], wire));
    Frame f;
    EXPECT_EQ(WireStatus::Corrupt, recvFrameEx(fds[1], f));
    ::close(fds[0]);
    ::close(fds[1]);
}

TEST(WireV2, TruncatedFrameFailsAsEofNotGarbage)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::string wire = encodeFrame(fleet::MsgType::Result, "0123456789");
    ASSERT_TRUE(sendRawFrame(fds[0],
                             wire.substr(0, wire.size() - 4)));
    ::close(fds[0]); // the truncating peer dies
    Frame f;
    EXPECT_EQ(WireStatus::Eof, recvFrameEx(fds[1], f));
    ::close(fds[1]);
}

TEST(WireV2, CleanFramesStillRoundTrip)
{
    int fds[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
    std::string binary("\x00\x01\xff{\"k\":1}\n", 10);
    ASSERT_TRUE(sendFrame(fds[0], fleet::MsgType::Result, binary));
    Frame f;
    EXPECT_EQ(WireStatus::Ok, recvFrameEx(fds[1], f));
    EXPECT_EQ(fleet::MsgType::Result, f.type);
    EXPECT_EQ(binary, f.payload);
    ::close(fds[0]);
    ::close(fds[1]);
}

#endif // DRF_TEST_HAVE_SOCKETPAIR

// ---------------------------------------------------------------------
// Journal integrity envelope + failure ladder.
// ---------------------------------------------------------------------

TEST(JournalSealing, RoundTripAndDamageDetection)
{
    std::string line = "{\"kind\":\"shard\",\"index\":3}";
    std::string sealed = sealJournalRecord(line);
    std::string inner;
    EXPECT_EQ(JournalSeal::Ok, unsealJournalRecord(sealed, inner));
    EXPECT_EQ(line, inner);

    // One flipped character inside the payload.
    std::string damaged = sealed;
    damaged[sealed.size() / 2] ^= 0x04;
    EXPECT_EQ(JournalSeal::Bad, unsealJournalRecord(damaged, inner));

    // Legacy bare lines pass through untouched.
    EXPECT_EQ(JournalSeal::Bare, unsealJournalRecord(line, inner));
    EXPECT_EQ(line, inner);
}

TEST(JournalSealing, LoadJournalCountsEachSkipCategory)
{
    std::string path = tempPath("skips.jsonl");
    {
        std::ofstream out(path, std::ios::trunc);
        ShardOutcome first;
        first.name = "g";
        first.seed = 1;
        first.index = 0;
        first.result.passed = true;
        out << sealJournalRecord(shardOutcomeToJson(first)) << "\n";
        // Sealed record with a corrupted byte: crcSkipped.
        ShardOutcome second;
        second.name = "g";
        second.seed = 1;
        second.index = 1;
        second.result.passed = true;
        std::string sealed =
            sealJournalRecord(shardOutcomeToJson(second));
        sealed[sealed.size() - 4] ^= 0x02;
        out << sealed << "\n";
        // Torn tail: parseSkipped.
        out << "{\"kind\":\"shard\",\"ind";
    }
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    EXPECT_EQ(1u, records.size());
    EXPECT_EQ(1u, stats.crcSkipped);
    EXPECT_EQ(1u, stats.parseSkipped);
    std::remove(path.c_str());
}

TEST(JournalFaults, TransientWriteFailureRetriesAndRecovers)
{
    std::string path = tempPath("retry.jsonl");
    std::remove(path.c_str());
    unsigned attempts = 0;
    CampaignJournal::Policy policy;
    policy.retryBackoffMs = 1;
    policy.writeFault = [&](std::size_t) {
        JournalWriteFate fate;
        if (attempts++ == 0) {
            fate.allow = 0;
            fate.err = EIO; // first attempt fails, retries succeed
        }
        return fate;
    };
    {
        CampaignJournal journal(path, policy);
        ASSERT_TRUE(journal.ok());
        journal.append("{\"kind\":\"shard\",\"index\":0}");
        journal.flush(true);
        JournalStatus status = journal.status();
        EXPECT_FALSE(status.degraded);
        EXPECT_EQ(1u, status.failedWrites);
        EXPECT_GE(status.retries, 1u);
        EXPECT_EQ(EIO, status.lastErrno);
        EXPECT_TRUE(journal.ok());
    }
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    EXPECT_EQ(0u, stats.crcSkipped) << "recovered write must be whole";
    std::remove(path.c_str());
}

TEST(JournalFaults, PersistentFailureDegradesInsteadOfThrowing)
{
    std::string path = tempPath("degrade.jsonl");
    std::remove(path.c_str());
    CampaignJournal::Policy policy;
    policy.retryBackoffMs = 1;
    policy.writeFault = [](std::size_t) {
        return JournalWriteFate{0, ENOSPC}; // disk is full forever
    };
    CampaignJournal journal(path, policy);
    ASSERT_TRUE(journal.ok());
    journal.append("{\"kind\":\"shard\",\"index\":0}");
    journal.flush(true);
    JournalStatus status = journal.status();
    EXPECT_TRUE(status.degraded);
    EXPECT_EQ(ENOSPC, status.lastErrno);
    EXPECT_STREQ("write", status.lastOp.c_str());
    EXPECT_FALSE(journal.ok())
        << "degraded journal must tell callers to stop appending";
    // Appending after degradation is a harmless no-op, not a crash.
    journal.append("{\"kind\":\"shard\",\"index\":1}");
    journal.flush(true);
    std::remove(path.c_str());
}

TEST(JournalFaults, ShortWritesLeaveGenuinelyTornBytesOnDisk)
{
    std::string path = tempPath("torn.jsonl");
    std::remove(path.c_str());
    CampaignJournal::Policy policy;
    policy.retryBackoffMs = 1;
    policy.maxWriteRetries = 0; // first failure degrades
    bool fired = false;
    policy.writeFault = [&](std::size_t len) {
        JournalWriteFate fate;
        if (!fired && len > 10) {
            fired = true;
            fate.allow = len / 2; // half the buffer really lands
            fate.err = EIO;
        }
        return fate;
    };
    {
        CampaignJournal journal(path, policy);
        ASSERT_TRUE(journal.ok());
        journal.append("{\"kind\":\"shard\",\"index\":0,\"x\":1}");
        journal.flush(true);
        EXPECT_TRUE(journal.status().degraded);
    }
    // The torn prefix is on disk; resume-side loading must reject it
    // as damaged rather than half-parse it.
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    ASSERT_FALSE(contents.empty());
    EXPECT_EQ(std::string::npos, contents.find('\n'))
        << "the record must be torn mid-line";
    std::vector<ShardOutcome> records;
    JournalLoadStats stats;
    ASSERT_TRUE(loadJournal(path, records, &stats));
    EXPECT_EQ(0u, records.size());
    EXPECT_EQ(1u, stats.crcSkipped + stats.parseSkipped);
    std::remove(path.c_str());
}

TEST(JournalFaults, FsyncFailureIsCountedAndSurvivable)
{
    std::string path = tempPath("fsync.jsonl");
    std::remove(path.c_str());
    unsigned calls = 0;
    CampaignJournal::Policy policy;
    policy.retryBackoffMs = 1;
    policy.syncFault = [&]() { return calls++ == 0 ? EIO : 0; };
    CampaignJournal journal(path, policy);
    ASSERT_TRUE(journal.ok());
    journal.append("{\"kind\":\"shard\",\"index\":0}");
    journal.flush(true);
    JournalStatus status = journal.status();
    EXPECT_EQ(1u, status.fsyncFailures);
    EXPECT_FALSE(status.degraded) << "one transient fsync failure "
                                     "must not end journaling";
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// End to end: chaos in, clean aggregates out.
// ---------------------------------------------------------------------

#if DRF_TEST_HAVE_SOCKETPAIR

namespace
{

/** Two tiny arms so chaotic fleet campaigns finish in seconds. */
SourceConfig
tinyChaosSource(std::uint64_t master_seed)
{
    ConfigGenome a;
    a.cacheClass = CacheSizeClass::Small;
    a.actionsPerEpisode = 20;
    a.episodesPerWf = 3;
    a.atomicLocs = 10;
    a.colocDensity = 0.5;
    a.numCus = 2;
    ConfigGenome b = a;
    b.actionsPerEpisode = 30;

    SourceConfig cfg;
    cfg.arms = {a, b};
    cfg.scale.lanes = 4;
    cfg.scale.wfsPerCu = 2;
    cfg.scale.numNormalVars = 256;
    cfg.masterSeed = master_seed;
    cfg.batchSize = 3;
    cfg.maxShards = 6;
    return cfg;
}

struct ChaosRun
{
    std::string aggregates;
    FleetResult result;
};

ChaosRun
runChaosFleet(std::uint64_t master_seed, const LocalFleetConfig &base)
{
    SourceConfig src_cfg = tinyChaosSource(master_seed);
    SweepSource source(src_cfg);
    LocalFleetConfig cfg = base;
    cfg.coordinator.campaign.jobs = 1;
    cfg.coordinator.workerWaitSeconds = 20.0;
    ChaosRun run;
    run.result = runLocalFleet(source, cfg);
    run.aggregates =
        adaptiveAggregatesJson(run.result.adaptive, "gpu_tester");
    return run;
}

} // namespace

TEST(ChaosFleet, WireFlipsAreDetectedAndAggregatesMatchGolden)
{
    LocalFleetConfig golden_cfg;
    golden_cfg.workers = 0;
    ChaosRun golden = runChaosFleet(21, golden_cfg);
    ASSERT_TRUE(golden.result.adaptive.passed);

    LocalFleetConfig cfg;
    cfg.workers = 2;
    cfg.wireChaos.flipPct = 12;
    cfg.coordinator.chaosSeed = 42;
    cfg.coordinator.leaseTimeoutSeconds = 1.0;
    cfg.coordinator.stealMinAgeSeconds = 0.3;
    cfg.maxReconnects = 20;

    // Rates are probabilistic per frame; try a few seeds until a flip
    // actually fires (deterministically: the same seed always injects
    // the same faults).
    bool saw_detection = false;
    for (std::uint64_t seed = 42; seed < 46 && !saw_detection;
         ++seed) {
        cfg.coordinator.chaosSeed = seed;
        ChaosRun chaotic = runChaosFleet(21, cfg);
        ASSERT_TRUE(chaotic.result.adaptive.passed);
        ASSERT_EQ(golden.aggregates, chaotic.aggregates)
            << "chaos seed " << seed << " changed the aggregates";
        saw_detection = chaotic.result.frameCorruptions > 0;
    }
    EXPECT_TRUE(saw_detection)
        << "no chaos seed produced a detected flip";
}

TEST(ChaosFleet, SilentResultLiesAreCaughtByQuorum)
{
    LocalFleetConfig golden_cfg;
    golden_cfg.workers = 0;
    ChaosRun golden = runChaosFleet(33, golden_cfg);
    ASSERT_TRUE(golden.result.adaptive.passed);

    LocalFleetConfig cfg;
    cfg.workers = 2;
    cfg.corruptEveryN = 2;    // worker 0 lies about every 2nd result
    cfg.corruptSilently = true; // ...and re-stamps a valid digest
    cfg.coordinator.verifyQuorum = 1;

    ChaosRun chaotic = runChaosFleet(33, cfg);
    ASSERT_TRUE(chaotic.result.adaptive.passed);
    EXPECT_GT(chaotic.result.quorumLeases, 0u);
    EXPECT_GT(chaotic.result.quorumDivergences, 0u)
        << "a silently lying worker must be caught by cross-check";
    EXPECT_GT(chaotic.result.localRuns, 0u)
        << "every diverged shard needs an authoritative local re-run";
    EXPECT_EQ(golden.aggregates, chaotic.aggregates);
}

TEST(ChaosFleet, DigestMismatchIsCaughtWithoutQuorum)
{
    LocalFleetConfig golden_cfg;
    golden_cfg.workers = 0;
    ChaosRun golden = runChaosFleet(21, golden_cfg);

    LocalFleetConfig cfg;
    cfg.workers = 2;
    cfg.corruptEveryN = 2; // non-silent: digest covers the true line
    cfg.corruptSilently = false;
    cfg.coordinator.leaseTimeoutSeconds = 1.0;
    cfg.coordinator.stealMinAgeSeconds = 0.3;
    cfg.maxReconnects = 20;

    ChaosRun chaotic = runChaosFleet(21, cfg);
    ASSERT_TRUE(chaotic.result.adaptive.passed);
    EXPECT_GT(chaotic.result.digestMismatches, 0u)
        << "corrupted payloads with stale digests must be detected";
    EXPECT_EQ(golden.aggregates, chaotic.aggregates);
}

TEST(ChaosFleet, DiskChaosDegradesJournalButNotTheCampaign)
{
    std::string journal = tempPath("disk_chaos.jsonl");
    std::remove(journal.c_str());

    LocalFleetConfig golden_cfg;
    golden_cfg.workers = 0;
    ChaosRun golden = runChaosFleet(21, golden_cfg);

    // Degenerate fleet + heavy disk faults: journaling will suffer,
    // the campaign must not.
    LocalFleetConfig cfg;
    cfg.workers = 0;
    cfg.coordinator.journalPath = journal;
    cfg.coordinator.diskChaos.shortWritePct = 35;
    cfg.coordinator.diskChaos.fsyncFailPct = 25;
    cfg.coordinator.chaosSeed = 7;

    ChaosRun chaotic = runChaosFleet(21, cfg);
    ASSERT_TRUE(chaotic.result.adaptive.passed);
    EXPECT_EQ(golden.aggregates, chaotic.aggregates);
    const JournalStatus &status = chaotic.result.journalStatus;
    EXPECT_GT(status.failedWrites + status.fsyncFailures +
                  status.retries,
              0u)
        << "these rates are high enough that some fault must fire";

    // Self-heal leg: resume over whatever the chaotic run persisted
    // (possibly with genuinely torn records) and match the golden.
    LocalFleetConfig heal_cfg;
    heal_cfg.workers = 0;
    heal_cfg.coordinator.journalPath = journal;
    heal_cfg.coordinator.resume = true;
    ChaosRun healed = runChaosFleet(21, heal_cfg);
    ASSERT_TRUE(healed.result.adaptive.passed);
    EXPECT_EQ(golden.aggregates, healed.aggregates)
        << "resume over a damaged journal must self-heal";
    std::remove(journal.c_str());
}

#endif // DRF_TEST_HAVE_SOCKETPAIR
