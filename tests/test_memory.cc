/**
 * @file
 * Unit tests for the DRAM model.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"
#include "sim/event_queue.hh"

using namespace drf;

namespace
{

class MemHarness : public ::testing::Test
{
  protected:
    MemHarness() : mem("mem", eq, 64, 10)
    {
        mem.bindResponse([this](Packet pkt) {
            responses.push_back({eq.curTick(), std::move(pkt)});
        });
    }


    /** recvMsg takes a mutable reference; materialize the temporary. */
    void
    deliver(Packet pkt)
    {
        mem.recvMsg(pkt);
    }

    Packet
    readReq(Addr line)
    {
        Packet pkt;
        pkt.type = MsgType::MemRead;
        pkt.addr = line;
        return pkt;
    }

    Packet
    writeReq(Addr line, std::uint8_t fill, int only_byte = -1)
    {
        Packet pkt;
        pkt.type = MsgType::MemWrite;
        pkt.addr = line;
        pkt.fillData(fill, 64);
        pkt.mask = only_byte >= 0 ? maskBit(only_byte) : fullLineMask;
        return pkt;
    }

    EventQueue eq;
    SimpleMemory mem;
    std::vector<std::pair<Tick, Packet>> responses;
};

} // namespace

TEST_F(MemHarness, UninitializedReadsZero)
{
    deliver(readReq(0x1000));
    eq.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].second.type, MsgType::MemData);
    for (auto byte : responses[0].second.data)
        EXPECT_EQ(byte, 0);
}

TEST_F(MemHarness, WriteThenReadBack)
{
    deliver(writeReq(0x1000, 0x5A));
    eq.run();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].second.type, MsgType::MemWBAck);

    deliver(readReq(0x1000));
    eq.run();
    ASSERT_EQ(responses.size(), 2u);
    for (auto byte : responses[1].second.data)
        EXPECT_EQ(byte, 0x5A);
}

TEST_F(MemHarness, MaskedWriteTouchesOnlyEnabledBytes)
{
    deliver(writeReq(0x40, 0xFF, /*only_byte=*/7));
    eq.run();
    deliver(readReq(0x40));
    eq.run();
    const auto &data = responses[1].second.data;
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(data[i], i == 7 ? 0xFF : 0x00) << "byte " << i;
}

TEST_F(MemHarness, LatencyApplied)
{
    deliver(readReq(0));
    eq.run();
    EXPECT_EQ(responses[0].first, 10u);
}

TEST_F(MemHarness, DistinctLinesIndependent)
{
    deliver(writeReq(0x0, 0x11));
    deliver(writeReq(0x40, 0x22));
    eq.run();
    deliver(readReq(0x0));
    deliver(readReq(0x40));
    eq.run();
    EXPECT_EQ(responses[2].second.data[0], 0x11);
    EXPECT_EQ(responses[3].second.data[0], 0x22);
}

TEST_F(MemHarness, PeekAndPoke)
{
    mem.pokeBytes(0x43, {1, 2, 3});
    auto line = mem.peekLine(0x40);
    EXPECT_EQ(line[3], 1);
    EXPECT_EQ(line[4], 2);
    EXPECT_EQ(line[5], 3);
}

TEST_F(MemHarness, PokeSpansLines)
{
    mem.pokeBytes(0x7E, {0xAA, 0xBB, 0xCC, 0xDD});
    EXPECT_EQ(mem.peekLine(0x40)[62], 0xAA);
    EXPECT_EQ(mem.peekLine(0x40)[63], 0xBB);
    EXPECT_EQ(mem.peekLine(0x80)[0], 0xCC);
    EXPECT_EQ(mem.peekLine(0x80)[1], 0xDD);
}

TEST_F(MemHarness, PeekUntouchedLineIsZero)
{
    auto line = mem.peekLine(0xdead00);
    for (auto byte : line)
        EXPECT_EQ(byte, 0);
}

TEST_F(MemHarness, StatsCountAccesses)
{
    deliver(readReq(0));
    deliver(writeReq(0x40, 1));
    deliver(writeReq(0x80, 2));
    eq.run();
    EXPECT_EQ(mem.stats().value("reads"), 1u);
    EXPECT_EQ(mem.stats().value("writes"), 2u);
}
