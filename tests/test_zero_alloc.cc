/**
 * @file
 * Death-to-allocation test for the message path.
 *
 * The flat POD Packet plus the event-queue block pool are supposed to
 * make the steady-state message loop allocation-free: after warmup,
 * routing a packet through the crossbar, scheduling its delivery, and
 * handing it to the receiver must not touch the heap. This binary
 * replaces global operator new with a counting hook (which is why it is
 * a standalone executable rather than part of drf_tests) and fails if a
 * steady-state ping-pong of many thousands of messages allocates even
 * once.
 *
 * A second phase applies the same check to the tester's episode loop
 * (DESIGN.md section 10): once the Episode's CSR planes and the
 * generator's conflict tables have reached their high-water capacity,
 * generateInto + retire must not allocate either.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "mem/network.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "tester/episode.hh"
#include "tester/variable_map.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace drf;

/**
 * Bounces every received packet back to the peer endpoint until the
 * configured number of messages has been observed.
 */
class PingPong : public MsgReceiver
{
  public:
    PingPong(Crossbar &xbar, int self, int peer)
        : _xbar(xbar), _self(self), _peer(peer)
    {
    }

    void
    recvMsg(Packet &pkt) override
    {
        ++received;
        if (received < limit)
            _xbar.route(_self, _peer, std::move(pkt));
    }

    std::uint64_t received = 0;
    std::uint64_t limit = 0;

  private:
    Crossbar &_xbar;
    int _self;
    int _peer;
};

/** Route `messages` ping-pong hops and run the queue to quiescence. */
void
runLoop(EventQueue &eq, Crossbar &xbar, PingPong &a, std::uint64_t messages)
{
    a.received = 0;
    a.limit = messages;

    Packet pkt;
    pkt.type = MsgType::WrThrough;
    pkt.addr = 0x1000;
    pkt.size = 4;
    pkt.setValueLE(0xDEADBEEF, 4);
    pkt.mask = fullLineMask;
    pkt.id = 1;
    xbar.route(2, 1, std::move(pkt));
    eq.run();
}

/**
 * Phase 2: episode generation. @return 0 on success, 1 on failure,
 * printing its own diagnostics either way.
 */
int
runEpisodePhase()
{
    Random rng(7);
    VariableMapConfig vcfg;
    vcfg.numNormalVars = 512;
    vcfg.addrRangeBytes = 1 << 14;
    VariableMap vmap(vcfg, rng);

    EpisodeGenConfig gcfg;
    gcfg.actionsPerEpisode = 30;
    gcfg.lanes = 8;
    EpisodeGenerator gen(vmap, gcfg, rng);
    Episode episode;

    // Warmup: the per-episode read/write lists grow to the largest
    // episode seen, so run enough episodes to hit the size
    // distribution's tail before arming the counter.
    const std::uint64_t warmup = 2000, measured = 2000;
    for (std::uint64_t i = 0; i < warmup; ++i) {
        gen.generateInto(episode, 0);
        gen.retire(episode);
    }

    g_allocs.store(0);
    g_counting.store(true);
    for (std::uint64_t i = 0; i < measured; ++i) {
        gen.generateInto(episode, 0);
        gen.retire(episode);
    }
    g_counting.store(false);

    const std::uint64_t allocs = g_allocs.load();
    std::printf("steady-state episodes: %llu, heap allocations: %llu\n",
                (unsigned long long)measured, (unsigned long long)allocs);
    if (allocs != 0) {
        std::fprintf(stderr, "FAIL: the steady-state episode loop "
                             "allocated %llu time(s)\n",
                     (unsigned long long)allocs);
        return 1;
    }
    std::printf("PASS: zero allocations in the steady-state episode "
                "loop\n");
    return 0;
}

} // namespace

int
main()
{
    EventQueue eq;
    Crossbar xbar("xbar", eq, /*latency=*/2);
    PingPong a(xbar, 1, 2);
    PingPong b(xbar, 2, 1);
    b.limit = ~std::uint64_t{0}; // b always echoes; a terminates the loop
    xbar.attach(1, a);
    xbar.attach(2, b);

    // Warmup: create both channels, grow the event-queue arrays, and
    // fill the block pool's free list.
    runLoop(eq, xbar, a, 10000);
    if (a.received != 10000) {
        std::fprintf(stderr, "warmup delivered %llu messages, wanted "
                             "10000\n",
                     (unsigned long long)a.received);
        return 1;
    }

    // Steady state: every hop must come out of recycled storage.
    g_allocs.store(0);
    g_counting.store(true);
    runLoop(eq, xbar, a, 50000);
    g_counting.store(false);

    const std::uint64_t allocs = g_allocs.load();
    std::printf("steady-state messages: %llu, heap allocations: %llu\n",
                (unsigned long long)a.received,
                (unsigned long long)allocs);
    if (a.received != 50000) {
        std::fprintf(stderr, "FAIL: delivered %llu messages, wanted "
                             "50000\n",
                     (unsigned long long)a.received);
        return 1;
    }
    if (allocs != 0) {
        std::fprintf(stderr, "FAIL: the steady-state message loop "
                             "allocated %llu time(s)\n",
                     (unsigned long long)allocs);
        return 1;
    }
    std::printf("PASS: zero allocations in the steady-state message "
                "loop\n");
    return runEpisodePhase();
}
