/**
 * @file
 * Directed tests for the APU system directory: state tracking across
 * CPU / GPU / DMA requestors, probe collection, and atomicity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/dma.hh"
#include "system/apu_system.hh"

using namespace drf;

namespace
{

class DirHarness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ApuSystemConfig cfg;
        cfg.numCus = 1;
        cfg.numCpuCaches = 2;
        cfg.cpu.sizeBytes = 256; // tiny: replacement writebacks happen
        cfg.cpu.assoc = 2;
        sys = std::make_unique<ApuSystem>(cfg);
        sys->l1(0).bindCoreResponse([this](Packet pkt) {
            gpuResponses.push_back(std::move(pkt));
        });
        for (unsigned i = 0; i < 2; ++i) {
            sys->cpuCache(i).bindCoreResponse([this, i](Packet pkt) {
                cpuResponses[i].push_back(std::move(pkt));
            });
        }
        DmaConfig dma_cfg;
        dma = std::make_unique<DmaEngine>("dma", sys->eventq(), dma_cfg,
                                          sys->xbar(),
                                          ApuSystem::dmaEndpoint,
                                          ApuSystem::dirEndpoint);
    }

    void
    gpuOp(MsgType type, Addr addr, std::uint32_t value = 0)
    {
        Packet pkt;
        pkt.type = type;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.id = nextId++;
        if (type == MsgType::StoreReq)
            pkt.setValueLE(value, 4);
        if (type == MsgType::AtomicReq)
            pkt.atomicOperand = value;
        sys->l1(0).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    void
    cpuOp(unsigned cache, MsgType type, Addr addr, std::uint8_t value = 0)
    {
        Packet pkt;
        pkt.type = type;
        pkt.addr = addr;
        pkt.size = 1;
        pkt.id = nextId++;
        if (type == MsgType::StoreReq)
            pkt.setValueLE(value, 1);
        sys->cpuCache(cache).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    std::uint64_t
    count(Directory::Event ev, Directory::State st)
    {
        return sys->directory().coverage().count(ev, st);
    }

    std::unique_ptr<ApuSystem> sys;
    std::unique_ptr<DmaEngine> dma;
    std::vector<Packet> gpuResponses;
    std::vector<Packet> cpuResponses[2];
    PacketId nextId = 1;
};

} // namespace

TEST_F(DirHarness, GpuFetchFromUnowned)
{
    gpuOp(MsgType::LoadReq, 0x1000);
    EXPECT_EQ(count(Directory::EvGpuFetch, Directory::StU), 1u);
    EXPECT_EQ(count(Directory::EvMemData, Directory::StB), 1u);
}

TEST_F(DirHarness, GpuWriteFromUnowned)
{
    gpuOp(MsgType::StoreReq, 0x1040, 7);
    EXPECT_EQ(count(Directory::EvGpuWrMem, Directory::StU), 1u);
    EXPECT_EQ(count(Directory::EvMemWBAck, Directory::StB), 1u);
}

TEST_F(DirHarness, CpuGetsMovesToCpuShared)
{
    cpuOp(0, MsgType::LoadReq, 0x2000);
    EXPECT_EQ(count(Directory::EvCpuGets, Directory::StU), 1u);
    // A second sharer hits CS at the directory.
    cpuOp(1, MsgType::LoadReq, 0x2000);
    EXPECT_EQ(count(Directory::EvCpuGets, Directory::StCS), 1u);
}

TEST_F(DirHarness, CpuGetxMovesToCpuModified)
{
    cpuOp(0, MsgType::StoreReq, 0x3000, 1);
    EXPECT_EQ(count(Directory::EvCpuGetx, Directory::StU), 1u);
    // GPU fetch of a CPU-dirty line pulls data via downgrade.
    gpuOp(MsgType::LoadReq, 0x3000);
    EXPECT_EQ(count(Directory::EvGpuFetch, Directory::StCM), 1u);
    EXPECT_EQ(gpuResponses.back().data[0], 1);
}

TEST_F(DirHarness, GpuWriteInvalidatesCpuSharers)
{
    cpuOp(0, MsgType::LoadReq, 0x4000);
    cpuOp(1, MsgType::LoadReq, 0x4000);
    gpuOp(MsgType::StoreReq, 0x4000, 0xFF);
    EXPECT_EQ(count(Directory::EvGpuWrMem, Directory::StCS), 1u);
    EXPECT_GE(count(Directory::EvCpuInvAck, Directory::StB), 2u);
    // CPU reloads must observe the GPU's bytes.
    cpuOp(0, MsgType::LoadReq, 0x4000);
    EXPECT_EQ(cpuResponses[0].back().data[0], 0xFF);
}

TEST_F(DirHarness, GpuWriteMergesOverCpuDirtyData)
{
    cpuOp(0, MsgType::StoreReq, 0x5001, 0x22); // CPU dirty byte 1
    gpuOp(MsgType::StoreReq, 0x5004, 0x44);    // GPU writes bytes 4..7
    EXPECT_EQ(count(Directory::EvGpuWrMem, Directory::StCM), 1u);
    // Memory holds the merge of both.
    auto line = sys->memory().peekLine(0x5000);
    EXPECT_EQ(line[1], 0x22);
    EXPECT_EQ(line[4], 0x44);
}

TEST_F(DirHarness, GpuAtomicOnCpuDirtyLine)
{
    cpuOp(0, MsgType::StoreReq, 0x6000, 5); // CM with value 5 at byte 0
    gpuOp(MsgType::AtomicReq, 0x6000, 10);
    EXPECT_EQ(count(Directory::EvGpuAtomic, Directory::StCM), 1u);
    // Old value observed by the atomic must include the CPU's byte.
    EXPECT_EQ(gpuResponses.back().atomicResult, 5u);
    gpuOp(MsgType::LoadReq, 0x6000);
    EXPECT_EQ(gpuResponses.back().data[0], 15);
}

TEST_F(DirHarness, CpuPutxWritesBack)
{
    // Fill set 0 of cache 0 with dirty lines to force a writeback.
    cpuOp(0, MsgType::StoreReq, 0x000, 0x11);
    cpuOp(0, MsgType::StoreReq, 0x080, 0x22);
    cpuOp(0, MsgType::StoreReq, 0x100, 0x33);
    cpuOp(0, MsgType::StoreReq, 0x180, 0x44);
    cpuOp(0, MsgType::StoreReq, 0x200, 0x55);
    cpuOp(0, MsgType::StoreReq, 0x280, 0x66);
    cpuOp(0, MsgType::StoreReq, 0x300, 0x77);
    cpuOp(0, MsgType::StoreReq, 0x380, 0x88);
    cpuOp(0, MsgType::StoreReq, 0x400, 0x99);
    EXPECT_GE(count(Directory::EvCpuPutx, Directory::StCM), 1u);
}

TEST_F(DirHarness, DmaReadFromUnowned)
{
    bool done = false;
    dma->readRange(0x7000, 2, [&] { done = true; });
    sys->eventq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(count(Directory::EvDmaRead, Directory::StU), 2u);
}

TEST_F(DirHarness, DmaWriteThenGpuRead)
{
    bool done = false;
    dma->writeRange(0x8000, 1, 0x5C, [&] { done = true; });
    sys->eventq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(count(Directory::EvDmaWrite, Directory::StU), 1u);
    gpuOp(MsgType::LoadReq, 0x8000);
    EXPECT_EQ(gpuResponses.back().data[0], 0x5C);
}

TEST_F(DirHarness, DmaReadPullsCpuDirtyData)
{
    cpuOp(0, MsgType::StoreReq, 0x9000, 0xEE);
    bool done = false;
    dma->readRange(0x9000, 1, [&] { done = true; });
    sys->eventq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(count(Directory::EvDmaRead, Directory::StCM), 1u);
    // The downgrade flushed the data to memory.
    EXPECT_EQ(sys->memory().peekLine(0x9000)[0], 0xEE);
}

TEST_F(DirHarness, DmaWriteInvalidatesCpuOwner)
{
    cpuOp(0, MsgType::StoreReq, 0xA000, 0x01);
    bool done = false;
    dma->writeRange(0xA000, 1, 0xFD, [&] { done = true; });
    sys->eventq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(count(Directory::EvDmaWrite, Directory::StCM), 1u);
    cpuOp(0, MsgType::LoadReq, 0xA000);
    EXPECT_EQ(cpuResponses[0].back().data[0], 0xFD);
}

TEST_F(DirHarness, GpuProbeAckCounted)
{
    gpuOp(MsgType::LoadReq, 0xB000);          // gpuMayHave set
    cpuOp(0, MsgType::StoreReq, 0xB000, 1);   // Getx probes GPU L2
    EXPECT_EQ(count(Directory::EvGpuInvAck, Directory::StB), 1u);
}

TEST_F(DirHarness, MemoryStateConsistentAcrossRequestors)
{
    // CPU writes, GPU atomics, DMA writes — final memory value must
    // reflect the full sequence.
    cpuOp(0, MsgType::StoreReq, 0xC000, 10);
    gpuOp(MsgType::AtomicReq, 0xC000, 5);  // 10 -> 15
    EXPECT_EQ(gpuResponses.back().atomicResult, 10u);
    bool done = false;
    dma->readRange(0xC000, 1, [&] { done = true; });
    sys->eventq().run();
    EXPECT_EQ(sys->memory().peekLine(0xC000)[0], 15);
    EXPECT_TRUE(done);
}
