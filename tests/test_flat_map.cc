/**
 * @file
 * Property tests for the data-oriented core's flat containers
 * (DESIGN.md section 10): FlatMap against std::map and SmallIntSet
 * against std::set, under long randomized operation sequences.
 *
 * The protocol controllers replaced their node-based tables with these
 * structures wholesale; a divergence here would surface as a protocol
 * heisenbug, so the model-based check is deliberately exhaustive about
 * the mixed insert/erase/lookup interleavings backward-shift deletion
 * has to survive.
 */

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/flat_map.hh"
#include "sim/small_set.hh"

using drf::FlatMap;
using drf::SmallIntSet;

namespace
{

TEST(FlatMap, RandomOpsMatchStdMap)
{
    std::mt19937_64 rng(12345);
    FlatMap<std::uint64_t> flat;
    std::map<std::uint64_t, std::uint64_t> model;

    // Small key space forces collisions, reuse after erase, and long
    // probe runs; large operation count crosses several rehashes.
    const std::uint64_t key_space = 257;
    for (int op = 0; op < 200000; ++op) {
        std::uint64_t key = rng() % key_space;
        switch (rng() % 4) {
          case 0: { // operator[] (value-initializes on miss)
            std::uint64_t v = rng();
            flat[key] = v;
            model[key] = v;
            break;
          }
          case 1: { // emplace (no overwrite of an existing entry)
            std::uint64_t v = rng();
            auto [stored, inserted] = flat.emplace(key, v);
            auto [it, model_inserted] = model.emplace(key, v);
            ASSERT_EQ(inserted, model_inserted);
            ASSERT_EQ(stored, it->second);
            break;
          }
          case 2: { // erase
            ASSERT_EQ(flat.erase(key), model.erase(key) != 0);
            break;
          }
          case 3: { // lookup
            const std::uint64_t *found = flat.find(key);
            auto it = model.find(key);
            ASSERT_EQ(found != nullptr, it != model.end());
            if (found != nullptr) {
                ASSERT_EQ(*found, it->second);
            }
            ASSERT_EQ(flat.contains(key), model.count(key) != 0);
            break;
          }
        }
        ASSERT_EQ(flat.size(), model.size());
    }

    // Full-content comparison at the end: forEach must visit exactly
    // the model's entries, each once.
    std::map<std::uint64_t, std::uint64_t> seen;
    flat.forEach([&seen](std::uint64_t k, const std::uint64_t &v) {
        ASSERT_TRUE(seen.emplace(k, v).second);
    });
    EXPECT_EQ(seen, model);
}

TEST(FlatMap, OperatorBracketValueInitializes)
{
    FlatMap<std::uint64_t> flat;
    EXPECT_EQ(flat[42], 0u); // fresh entries read as zero
    flat[42] = 7;
    EXPECT_EQ(flat[42], 7u);
}

TEST(FlatMap, ReserveAvoidsRehashAndKeepsContents)
{
    FlatMap<int> flat;
    flat.reserve(1000);
    const std::size_t cap = flat.capacity();
    for (int i = 0; i < 1000; ++i)
        flat[static_cast<std::uint64_t>(i) * 0x1000] = i;
    EXPECT_EQ(flat.capacity(), cap);
    for (int i = 0; i < 1000; ++i) {
        const int *v = flat.find(static_cast<std::uint64_t>(i) * 0x1000);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, i);
    }
}

TEST(FlatMap, EraseDuringLongProbeRuns)
{
    // Backward-shift deletion stress: keys engineered onto one home
    // slot region, erased front-to-back and back-to-front.
    FlatMap<int> flat(16);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; keys.size() < 8; ++k) {
        flat[k] = static_cast<int>(k);
        keys.push_back(k);
    }
    // Erase evens, then verify odds survive with their values.
    for (std::size_t i = 0; i < keys.size(); i += 2)
        ASSERT_TRUE(flat.erase(keys[i]));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const int *v = flat.find(keys[i]);
        if (i % 2 == 0) {
            EXPECT_EQ(v, nullptr);
        } else {
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, static_cast<int>(keys[i]));
        }
    }
}

TEST(SmallIntSet, RandomOpsMatchStdSet)
{
    std::mt19937_64 rng(987);
    SmallIntSet small;
    std::set<int> model;

    for (int op = 0; op < 50000; ++op) {
        int v = static_cast<int>(rng() % 64);
        switch (rng() % 3) {
          case 0:
            small.insert(v);
            model.insert(v);
            break;
          case 1:
            ASSERT_EQ(small.erase(v), model.erase(v));
            break;
          case 2:
            ASSERT_EQ(small.count(v), model.count(v));
            break;
        }
        ASSERT_EQ(small.size(), model.size());
        ASSERT_EQ(small.empty(), model.empty());
    }

    // Iteration order is the probe fan-out order the directory relies
    // on: ascending, exactly like std::set<int>.
    std::vector<int> got(small.begin(), small.end());
    std::vector<int> want(model.begin(), model.end());
    EXPECT_EQ(got, want);
}

TEST(SmallIntSet, InsertIsIdempotentAndSorted)
{
    SmallIntSet s;
    for (int v : {5, 1, 3, 5, 1, 4, 2, 3})
        s.insert(v);
    std::vector<int> got(s.begin(), s.end());
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(3), 0u);
}

} // namespace
