/**
 * @file
 * Integration tests for the Ruby-style CPU random tester.
 */

#include <gtest/gtest.h>

#include "tester/configs.hh"
#include "tester/cpu_tester.hh"

using namespace drf;

namespace
{

TesterResult
runCpu(unsigned caches, std::uint64_t cache_bytes, std::uint64_t loads,
       std::uint64_t seed, std::uint64_t range = 1024)
{
    ApuSystemConfig sys_cfg;
    sys_cfg.numCus = 0;
    sys_cfg.numCpuCaches = caches;
    sys_cfg.cpu.sizeBytes = cache_bytes;
    sys_cfg.cpu.assoc = 2;
    ApuSystem sys(sys_cfg);

    CpuTesterConfig cfg;
    cfg.targetLoads = loads;
    cfg.addrRangeBytes = range;
    cfg.seed = seed;
    CpuTester tester(sys, cfg);
    return tester.run();
}

} // namespace

class CpuTesterSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CpuTesterSeeds, PassesSmallCaches)
{
    TesterResult r = runCpu(2, 512, 2000, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_GE(r.loadsChecked, 2000u);
    EXPECT_GT(r.storesRetired, 0u);
}

TEST_P(CpuTesterSeeds, PassesLargeCaches)
{
    TesterResult r = runCpu(2, 256 * 1024, 2000, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
}

TEST_P(CpuTesterSeeds, PassesManyCaches)
{
    TesterResult r = runCpu(4, 512, 2000, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuTesterSeeds,
                         ::testing::Values(3, 17, 404));

TEST(CpuTester, TinyRangeMaximizesContention)
{
    // 64 bytes = a single cache line shared by all cores: pure false
    // sharing; values must still be SC per location.
    TesterResult r = runCpu(4, 512, 3000, 5, /*range=*/64);
    EXPECT_TRUE(r.passed) << r.report;
}

TEST(CpuTester, DeterministicUnderSeed)
{
    TesterResult a = runCpu(2, 512, 1000, 9);
    TesterResult b = runCpu(2, 512, 1000, 9);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.storesRetired, b.storesRetired);
}

TEST(CpuTester, CoversDirectoryCpuTransitions)
{
    ApuSystemConfig sys_cfg;
    sys_cfg.numCus = 0;
    sys_cfg.numCpuCaches = 4;
    sys_cfg.cpu.sizeBytes = 512;
    sys_cfg.cpu.assoc = 2;
    ApuSystem sys(sys_cfg);

    CpuTesterConfig cfg;
    cfg.targetLoads = 5000;
    // More lines than the caches hold: replacements force Putx traffic.
    cfg.addrRangeBytes = 4096;
    cfg.seed = 21;
    CpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    ASSERT_TRUE(r.passed) << r.report;

    const auto &dir = sys.directory().coverage();
    EXPECT_GT(dir.count(Directory::EvCpuGets, Directory::StU), 0u);
    EXPECT_GT(dir.count(Directory::EvCpuGetx, Directory::StCS), 0u);
    EXPECT_GT(dir.count(Directory::EvCpuGetx, Directory::StCM), 0u);
    EXPECT_GT(dir.count(Directory::EvCpuPutx, Directory::StCM), 0u);
    EXPECT_GT(dir.count(Directory::EvCpuInvAck, Directory::StB), 0u);
    // No GPU traffic at all.
    EXPECT_EQ(dir.count(Directory::EvGpuFetch, Directory::StU), 0u);
    // A healthy fraction of the CPU-reachable directory space.
    EXPECT_GT(dir.coveragePct("cpu_tester"), 60.0);
}

TEST(CpuTester, SweepPresetsAreWellFormed)
{
    auto presets = makeCpuTestSweep();
    EXPECT_EQ(presets.size(), 18u);
    for (const auto &p : presets) {
        EXPECT_EQ(p.system.numCus, 0u);
        EXPECT_GE(p.system.numCpuCaches, 1u);
        EXPECT_GT(p.tester.targetLoads, 0u);
    }
}

TEST(GpuSweepPresets, TwentyFourTests)
{
    auto presets = makeGpuTestSweep();
    ASSERT_EQ(presets.size(), 24u);
    EXPECT_EQ(presets.front().name, "Test 0");
    EXPECT_EQ(presets.back().name, "Test 23");
    // All permutation axes appear.
    bool small = false, large = false, mixed = false;
    bool a100 = false, a200 = false, e10 = false, e100 = false;
    bool s10 = false, s100 = false;
    for (const auto &p : presets) {
        small |= p.cacheClass == CacheSizeClass::Small;
        large |= p.cacheClass == CacheSizeClass::Large;
        mixed |= p.cacheClass == CacheSizeClass::Mixed;
        a100 |= p.tester.episodeGen.actionsPerEpisode == 100;
        a200 |= p.tester.episodeGen.actionsPerEpisode == 200;
        e10 |= p.tester.episodesPerWf == 10;
        e100 |= p.tester.episodesPerWf == 100;
        s10 |= p.tester.variables.numSyncVars == 10;
        s100 |= p.tester.variables.numSyncVars == 100;
    }
    EXPECT_TRUE(small && large && mixed);
    EXPECT_TRUE(a100 && a200 && e10 && e100);
    EXPECT_TRUE(s10 && s100);
}
