/**
 * @file
 * Golden determinism oracles for the message path.
 *
 * The flat-Packet refactor (inline payload array + byte-enable bitmask +
 * dense crossbar routing) must not change simulation behaviour at all:
 * event firing order, every checker verdict, every coverage count and
 * every failure report must stay bit-identical to the legacy
 * vector-payload path. These tests pin FNV-1a digests of complete runs
 * — tester statistics, full coverage grids, and fault-injected failure
 * reports — captured from the pre-change tree for a fixed set of seeds.
 *
 * If a digest here changes, the message layer changed observable
 * behaviour and the refactor is wrong (or the golden must be
 * re-captured with an explicit justification in the commit message).
 *
 * Run with DRF_PRINT_GOLDENS=1 to print the digests computed by the
 * current binary (used to capture or re-capture the constants below).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "coverage/coverage.hh"
#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

/** FNV-1a 64-bit running hash. */
class Digest
{
  public:
    Digest &
    bytes(const void *p, std::size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            _h ^= c[i];
            _h *= 1099511628211ull;
        }
        return *this;
    }

    Digest &
    u64(std::uint64_t v)
    {
        // Hash a fixed-width little-endian encoding so the digest does
        // not depend on host struct layout.
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(buf, sizeof(buf));
    }

    Digest &
    str(const std::string &s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 14695981039346656037ull;
};

/** Everything deterministic in a TesterResult (hostSeconds excluded). */
void
digestResult(Digest &d, const TesterResult &r)
{
    d.u64(r.passed ? 1 : 0);
    d.str(r.report);
    d.u64(r.ticks);
    d.u64(r.events);
    d.u64(r.episodes);
    d.u64(r.loadsChecked);
    d.u64(r.storesRetired);
    d.u64(r.atomicsChecked);
}

/** Every cell count of a coverage grid, plus the total. */
void
digestGrid(Digest &d, const CoverageGrid &grid)
{
    const TransitionSpec &spec = grid.spec();
    for (std::size_t ev = 0; ev < spec.numEvents(); ++ev) {
        for (std::size_t st = 0; st < spec.numStates(); ++st)
            d.u64(grid.count(ev, st));
    }
    d.u64(grid.totalHits());
}

/** Compare against a pinned golden, printing on request or mismatch. */
void
checkGolden(const char *name, std::uint64_t actual,
            std::uint64_t expected)
{
    if (std::getenv("DRF_PRINT_GOLDENS")) {
        std::printf("GOLDEN %s = 0x%016llxull\n", name,
                    static_cast<unsigned long long>(actual));
    }
    EXPECT_EQ(actual, expected)
        << name << ": message path changed observable behaviour; "
        << "actual digest 0x" << std::hex << actual;
}

GpuTesterConfig
goldenGpuConfig(std::uint64_t seed)
{
    GpuTesterConfig cfg = makeGpuTesterConfig(/*actions_per_episode=*/30,
                                              /*episodes_per_wf=*/6,
                                              /*atomic_locs=*/10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.wfsPerCu = 2;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14;
    return cfg;
}

/** One GPU tester run digested end to end: result + all grids. */
std::uint64_t
gpuRunDigest(CacheSizeClass cache_class, std::uint64_t seed,
             FaultKind fault = FaultKind::None)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(cache_class, 4);
    sys_cfg.fault = fault;
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, goldenGpuConfig(seed));
    TesterResult r = tester.run();

    Digest d;
    digestResult(d, r);
    digestGrid(d, sys.l1CoverageUnion());
    digestGrid(d, sys.l2CoverageUnion());
    digestGrid(d, sys.directory().coverage());
    return d.value();
}

/** One CPU tester run digested end to end. */
std::uint64_t
cpuRunDigest(std::uint64_t seed)
{
    ApuSystemConfig sys_cfg;
    sys_cfg.numCus = 0;
    sys_cfg.numCpuCaches = 4;
    sys_cfg.cpu.sizeBytes = 512;
    sys_cfg.cpu.assoc = 2;
    ApuSystem sys(sys_cfg);

    CpuTesterConfig cfg;
    cfg.targetLoads = 2000;
    cfg.addrRangeBytes = 1024;
    cfg.seed = seed;
    CpuTester tester(sys, cfg);
    TesterResult r = tester.run();

    Digest d;
    digestResult(d, r);
    for (unsigned i = 0; i < sys.numCpuCaches(); ++i)
        digestGrid(d, sys.cpuCache(i).coverage());
    digestGrid(d, sys.directory().coverage());
    return d.value();
}

} // namespace

// Captured from the pre-change (vector-payload Packet) tree. The whole
// point of these constants is that the flat-Packet message layer
// reproduces them bit for bit.
TEST(MsgGoldens, GpuSmallSeed9)
{
    checkGolden("GpuSmallSeed9",
                gpuRunDigest(CacheSizeClass::Small, 9),
                0x4f5e0ae3b9b25846ull);
}

TEST(MsgGoldens, GpuSmallSeed23)
{
    checkGolden("GpuSmallSeed23",
                gpuRunDigest(CacheSizeClass::Small, 23),
                0xdbb6a1ffb42b0a02ull);
}

TEST(MsgGoldens, GpuMixedSeed77)
{
    checkGolden("GpuMixedSeed77",
                gpuRunDigest(CacheSizeClass::Mixed, 77),
                0xab2339cdb860f944ull);
}

TEST(MsgGoldens, GpuLargeSeed5)
{
    checkGolden("GpuLargeSeed5",
                gpuRunDigest(CacheSizeClass::Large, 5),
                0xdd59604a70e5f302ull);
}

// Fault-injected run: the Table V failure report (last writer / last
// reader / transaction history) must stay byte-identical too.
TEST(MsgGoldens, GpuLostWriteThroughSeed11)
{
    checkGolden("GpuLostWriteThroughSeed11",
                gpuRunDigest(CacheSizeClass::Small, 11,
                             FaultKind::LostWriteThrough),
                0x2316e963be7b95acull);
}

TEST(MsgGoldens, GpuNonAtomicRmwSeed42)
{
    checkGolden("GpuNonAtomicRmwSeed42",
                gpuRunDigest(CacheSizeClass::Small, 42,
                             FaultKind::NonAtomicRmw),
                0x507879d1f72fc83bull);
}

TEST(MsgGoldens, CpuSeed5)
{
    checkGolden("CpuSeed5", cpuRunDigest(5), 0x6ce9577431b4375full);
}

TEST(MsgGoldens, CpuSeed31)
{
    checkGolden("CpuSeed31", cpuRunDigest(31), 0x28199df9e88e6babull);
}
