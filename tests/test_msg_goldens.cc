/**
 * @file
 * Golden determinism oracles for the message path.
 *
 * The flat-Packet refactor (inline payload array + byte-enable bitmask +
 * dense crossbar routing) must not change simulation behaviour at all:
 * event firing order, every checker verdict, every coverage count and
 * every failure report must stay bit-identical to the legacy
 * vector-payload path. These tests pin FNV-1a digests of complete runs
 * — tester statistics, full coverage grids, and fault-injected failure
 * reports — captured from the pre-change tree for a fixed set of seeds.
 *
 * If a digest here changes, the message layer changed observable
 * behaviour and the refactor is wrong (or the golden must be
 * re-captured with an explicit justification in the commit message).
 *
 * Run with DRF_PRINT_GOLDENS=1 to print the digests computed by the
 * current binary (used to capture or re-capture the constants below).
 *
 * The digest machinery and the pinned constants live in
 * golden_digest.hh, shared with test_trace.cc so record/replay is
 * checked against the very same oracles.
 */

#include <gtest/gtest.h>

#include "golden_digest.hh"

using namespace drf;
using namespace drf::testing;

// Captured from the pre-change (vector-payload Packet) tree. The whole
// point of these constants is that the flat-Packet message layer
// reproduces them bit for bit.
TEST(MsgGoldens, GpuSmallSeed9)
{
    checkGolden("GpuSmallSeed9",
                gpuRunDigest(CacheSizeClass::Small, 9),
                kGoldenGpuSmallSeed9);
}

TEST(MsgGoldens, GpuSmallSeed23)
{
    checkGolden("GpuSmallSeed23",
                gpuRunDigest(CacheSizeClass::Small, 23),
                kGoldenGpuSmallSeed23);
}

TEST(MsgGoldens, GpuMixedSeed77)
{
    checkGolden("GpuMixedSeed77",
                gpuRunDigest(CacheSizeClass::Mixed, 77),
                kGoldenGpuMixedSeed77);
}

TEST(MsgGoldens, GpuLargeSeed5)
{
    checkGolden("GpuLargeSeed5",
                gpuRunDigest(CacheSizeClass::Large, 5),
                kGoldenGpuLargeSeed5);
}

// Fault-injected run: the Table V failure report (last writer / last
// reader / transaction history) must stay byte-identical too.
TEST(MsgGoldens, GpuLostWriteThroughSeed11)
{
    checkGolden("GpuLostWriteThroughSeed11",
                gpuRunDigest(CacheSizeClass::Small, 11,
                             FaultKind::LostWriteThrough),
                kGoldenGpuLostWriteThroughSeed11);
}

TEST(MsgGoldens, GpuNonAtomicRmwSeed42)
{
    checkGolden("GpuNonAtomicRmwSeed42",
                gpuRunDigest(CacheSizeClass::Small, 42,
                             FaultKind::NonAtomicRmw),
                kGoldenGpuNonAtomicRmwSeed42);
}

TEST(MsgGoldens, CpuSeed5)
{
    checkGolden("CpuSeed5", cpuRunDigest(5), kGoldenCpuSeed5);
}

TEST(MsgGoldens, CpuSeed31)
{
    checkGolden("CpuSeed31", cpuRunDigest(31), kGoldenCpuSeed31);
}
