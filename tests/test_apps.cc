/**
 * @file
 * Tests for the application-based testing baseline: trace generation,
 * the locality profiler, the detailed core model, and full app runs.
 */

#include <gtest/gtest.h>

#include "apps/app_runner.hh"
#include "apps/app_suite.hh"
#include "apps/locality.hh"
#include "system/apu_system.hh"

using namespace drf;

namespace
{

AppProfile
tinyProfile(const char *name = "tiny")
{
    AppProfile p;
    p.name = name;
    p.suite = "test";
    p.kernels = 2;
    p.wfsPerCu = 1;
    p.lanes = 4;
    p.memInstrsPerWf = 20;
    p.aluPerMem = 2;
    p.atomicFrac = 0.1;
    p.workingSetBytes = 8 * 1024;
    p.seed = 7;
    return p;
}

} // namespace

TEST(AppSuite, TwentySixNamedApps)
{
    auto suite = makeAppSuite();
    EXPECT_EQ(suite.size(), 26u);
    std::set<std::string> names;
    for (const auto &p : suite) {
        EXPECT_TRUE(names.insert(p.name).second) << "duplicate name";
        double sum = p.streamingFrac + p.intraWfFrac + p.interWfFrac +
                     p.mixedFrac;
        EXPECT_NEAR(sum, 1.0, 0.01) << p.name;
    }
    // The paper's named applications exist.
    EXPECT_TRUE(names.count("HACC"));
    EXPECT_TRUE(names.count("Square"));
    EXPECT_TRUE(names.count("FFT"));
    EXPECT_TRUE(names.count("Interac"));
    EXPECT_TRUE(names.count("CM"));
}

TEST(AppSuite, AtomicHeavyAppsExist)
{
    // Interac, CM and HeteroSync stress atomics (Section IV.B).
    EXPECT_GT(appByName("Interac").atomicFrac, 0.1);
    EXPECT_GT(appByName("CM").atomicFrac, 0.1);
    EXPECT_GT(appByName("HS-FA").atomicFrac, 0.1);
    EXPECT_DOUBLE_EQ(appByName("Square").atomicFrac, 0.0);
}

TEST(AppTrace, ShapeMatchesProfile)
{
    AppProfile p = tinyProfile();
    AppTrace trace = generateAppTrace(p, /*num_cus=*/2, 0x100000, 64);
    EXPECT_EQ(trace.kernels.size(), 2u);
    EXPECT_EQ(trace.kernels[0].size(), 2u); // 2 CUs x 1 WF
    EXPECT_EQ(trace.hostPhases.size(), 3u);

    // Each WF: acquire + mem/alu instrs + release.
    const WfTrace &wf = trace.kernels[0][0];
    EXPECT_EQ(wf.front().kind, GpuInstr::Kind::Atomic);
    EXPECT_TRUE(wf.front().acquire);
    EXPECT_EQ(wf.back().kind, GpuInstr::Kind::Atomic);
    EXPECT_TRUE(wf.back().release);
}

TEST(AppTrace, AluDensityRespected)
{
    AppProfile p = tinyProfile();
    p.atomicFrac = 0.0;
    AppTrace trace = generateAppTrace(p, 1, 0x100000, 64);
    unsigned alu = 0, mem = 0;
    for (const auto &instr : trace.kernels[0][0]) {
        if (instr.kind == GpuInstr::Kind::Alu)
            ++alu;
        else
            ++mem;
    }
    EXPECT_EQ(mem, p.memInstrsPerWf);
    EXPECT_EQ(alu, p.memInstrsPerWf * p.aluPerMem);
}

TEST(AppTrace, DeterministicUnderSeed)
{
    AppProfile p = tinyProfile();
    AppTrace a = generateAppTrace(p, 2, 0x100000, 64);
    AppTrace b = generateAppTrace(p, 2, 0x100000, 64);
    ASSERT_EQ(a.kernels[0][0].size(), b.kernels[0][0].size());
    for (std::size_t i = 0; i < a.kernels[0][0].size(); ++i) {
        EXPECT_EQ(a.kernels[0][0][i].laneAddrs,
                  b.kernels[0][0][i].laneAddrs);
    }
}

TEST(AppTrace, HostPhasesTouchSharedRegion)
{
    AppProfile p = tinyProfile();
    AppTrace trace = generateAppTrace(p, 1, 0x100000, 64);
    EXPECT_FALSE(trace.hostPhases.front().cpuOps.empty());
    EXPECT_FALSE(trace.hostPhases.front().dmaOps.empty());
    EXPECT_FALSE(trace.hostPhases.back().cpuOps.empty());
    // Re-init phase exists between the two kernels.
    EXPECT_FALSE(trace.hostPhases[1].cpuOps.empty());
}

TEST(Locality, PureStreamingProfile)
{
    AppProfile p = tinyProfile();
    p.streamingFrac = 1.0;
    p.intraWfFrac = p.interWfFrac = p.mixedFrac = 0.0;
    p.atomicFrac = 0.0;
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    LocalityBreakdown b = profileLocality(trace, 64);
    EXPECT_GT(b.total(), 0u);
    EXPECT_EQ(b.frac(b.streaming), 1.0);
}

TEST(Locality, PureIntraWfProfile)
{
    AppProfile p = tinyProfile();
    p.intraWfFrac = 1.0;
    p.streamingFrac = p.interWfFrac = p.mixedFrac = 0.0;
    p.atomicFrac = 0.0;
    p.memInstrsPerWf = 100; // enough to guarantee reuse
    p.workingSetBytes = 2 * 1024;
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    LocalityBreakdown b = profileLocality(trace, 64);
    EXPECT_GT(b.frac(b.intraWf), 0.8);
    EXPECT_EQ(b.interWf, 0u);
    EXPECT_EQ(b.mixedWf, 0u);
}

TEST(Locality, InterWfDominatedProfile)
{
    AppProfile p = tinyProfile();
    p.interWfFrac = 1.0;
    p.streamingFrac = p.intraWfFrac = p.mixedFrac = 0.0;
    p.atomicFrac = 0.0;
    p.wfsPerCu = 2;
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    LocalityBreakdown b = profileLocality(trace, 64);
    EXPECT_GT(b.frac(b.interWf) + b.frac(b.mixedWf), 0.5);
    EXPECT_GT(b.interWf, 0u);
}

TEST(Locality, MixedProfileProducesMixedLines)
{
    AppProfile p = tinyProfile();
    p.mixedFrac = 1.0;
    p.streamingFrac = p.intraWfFrac = p.interWfFrac = 0.0;
    p.atomicFrac = 0.0;
    p.memInstrsPerWf = 200;
    p.workingSetBytes = 2 * 1024;
    p.wfsPerCu = 2;
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    LocalityBreakdown b = profileLocality(trace, 64);
    EXPECT_GT(b.frac(b.mixedWf), 0.5);
}

TEST(Locality, HandCraftedClassification)
{
    // Build a trace by hand covering all four classes.
    AppTrace trace;
    trace.kernels.resize(1);
    trace.kernels[0].resize(2);

    auto touch = [](WfTrace &wf, Addr addr) {
        GpuInstr instr;
        instr.kind = GpuInstr::Kind::Load;
        instr.laneAddrs = {addr};
        wf.push_back(instr);
    };
    // Line 0x0000: touched once by WF0 -> streaming.
    touch(trace.kernels[0][0], 0x0000);
    // Line 0x1000: touched twice by WF0 -> intra-WF.
    touch(trace.kernels[0][0], 0x1000);
    touch(trace.kernels[0][0], 0x1004);
    // Line 0x2000: touched once each by WF0 and WF1 -> inter-WF.
    touch(trace.kernels[0][0], 0x2000);
    touch(trace.kernels[0][1], 0x2000);
    // Line 0x3000: twice by WF0, once by WF1 -> mixed.
    touch(trace.kernels[0][0], 0x3000);
    touch(trace.kernels[0][0], 0x3008);
    touch(trace.kernels[0][1], 0x3000);

    LocalityBreakdown b = profileLocality(trace, 64);
    // Access-weighted: each class counts its line's touches.
    EXPECT_EQ(b.streaming, 1u);
    EXPECT_EQ(b.intraWf, 2u);
    EXPECT_EQ(b.interWf, 2u);
    EXPECT_EQ(b.mixedWf, 3u);
}

TEST(Locality, CoalescedLanesCountOnce)
{
    AppTrace trace;
    trace.kernels.resize(1);
    trace.kernels[0].resize(1);
    GpuInstr instr;
    instr.kind = GpuInstr::Kind::Load;
    // 16 lanes hitting one line: a single touch -> streaming.
    for (unsigned lane = 0; lane < 16; ++lane)
        instr.laneAddrs.push_back(lane * 4);
    trace.kernels[0][0].push_back(instr);
    LocalityBreakdown b = profileLocality(trace, 64);
    EXPECT_EQ(b.streaming, 1u);
    EXPECT_EQ(b.total(), 1u);
}

TEST(AppRunner, TinyAppCompletes)
{
    ApuSystemConfig cfg;
    cfg.numCus = 2;
    cfg.numCpuCaches = 1;
    ApuSystem sys(cfg);

    AppProfile p = tinyProfile();
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    AppRunner runner(sys, std::move(trace));
    AppResult r = runner.run();
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ticks, 0u);
}

TEST(AppRunner, CoversPrbInvAtGpuL2)
{
    // Host re-init between kernels must probe the GPU L2.
    ApuSystemConfig cfg;
    cfg.numCus = 2;
    cfg.numCpuCaches = 1;
    ApuSystem sys(cfg);

    AppProfile p = tinyProfile();
    p.intraWfFrac = 0.0;
    p.mixedFrac = 0.6; // shared-region reuse: L2 caches it
    p.streamingFrac = 0.2;
    p.interWfFrac = 0.2;
    p.memInstrsPerWf = 60;
    AppTrace trace = generateAppTrace(p, 2, 0x100000, 64);
    AppRunner runner(sys, std::move(trace));
    AppResult r = runner.run();
    ASSERT_TRUE(r.completed);

    std::uint64_t prb = 0;
    for (auto st : {GpuL2Cache::StI, GpuL2Cache::StV, GpuL2Cache::StIV})
        prb += sys.l2().coverage().count(GpuL2Cache::EvPrbInv, st);
    EXPECT_GT(prb, 0u);
}

TEST(AppRunner, CoversDmaDirectoryTransitions)
{
    ApuSystemConfig cfg;
    cfg.numCus = 1;
    cfg.numCpuCaches = 1;
    ApuSystem sys(cfg);

    AppTrace trace = generateAppTrace(tinyProfile(), 1, 0x100000, 64);
    AppRunner runner(sys, std::move(trace));
    AppResult r = runner.run();
    ASSERT_TRUE(r.completed);

    std::uint64_t dma = 0;
    for (auto st : {Directory::StU, Directory::StCS, Directory::StCM,
                    Directory::StB}) {
        dma += sys.directory().coverage().count(Directory::EvDmaRead, st);
        dma += sys.directory().coverage().count(Directory::EvDmaWrite,
                                                st);
    }
    EXPECT_GT(dma, 0u);
}

TEST(AppRunner, DeterministicUnderSeed)
{
    auto run_once = [] {
        ApuSystemConfig cfg;
        cfg.numCus = 1;
        cfg.numCpuCaches = 1;
        ApuSystem sys(cfg);
        AppTrace trace =
            generateAppTrace(tinyProfile(), 1, 0x100000, 64);
        AppRunner runner(sys, std::move(trace));
        return runner.run();
    };
    AppResult a = run_once();
    AppResult b = run_once();
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.instructions, b.instructions);
}

TEST(DmaEngine, RangesCompleteInOrderOfQueueing)
{
    ApuSystemConfig cfg;
    cfg.numCus = 0;
    cfg.numCpuCaches = 1;
    ApuSystem sys(cfg);
    DmaConfig dma_cfg;
    DmaEngine dma("dma", sys.eventq(), dma_cfg, sys.xbar(),
                  ApuSystem::dmaEndpoint, ApuSystem::dirEndpoint);
    std::vector<int> order;
    dma.writeRange(0x1000, 8, 0x11, [&] { order.push_back(1); });
    dma.readRange(0x1000, 8, [&] { order.push_back(2); });
    sys.eventq().run();
    EXPECT_TRUE(dma.idle());
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    // The written fill pattern is in memory.
    EXPECT_EQ(sys.memory().peekLine(0x1000)[0], 0x11);
    EXPECT_EQ(sys.memory().peekLine(0x11C0)[63], 0x11);
}
