/**
 * @file
 * Fault-injection coverage: every FaultKind is detected by the testing
 * methodology and classified as the expected failure class.
 *
 * Four of the five faults fall to the random GPU tester directly; the
 * kinds and seeds here are chosen so each fault manifests within the
 * golden preset's episode budget. DropGpuProbe is the exception — it
 * needs interleaved CPU and GPU traffic on one line, which the random
 * GPU tester never generates — so it is exercised by the directed
 * protocol scenario (src/tester/scenarios.hh), with FaultKind::None as
 * the control arm.
 */

#include <gtest/gtest.h>

#include "golden_digest.hh"
#include "guidance/adaptive_campaign.hh"
#include "proto/fault.hh"
#include "tester/scenarios.hh"
#include "tester/tester_failure.hh"

using namespace drf;
using namespace drf::testing;

namespace
{

/** Run the golden GPU preset with @p fault armed, return the result. */
TesterResult
runWithFault(FaultKind fault, std::uint64_t seed,
             CacheSizeClass cache_class = CacheSizeClass::Small)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(cache_class, 4);
    sys_cfg.fault = fault;
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, goldenGpuConfig(seed));
    return tester.run();
}

/**
 * Run a guided adaptive campaign with @p fault armed campaign-wide and
 * return its first failure's class (None if no shard failed).
 */
FailureClass
guidedCampaignFailureClass(FaultKind fault, CacheSizeClass cache_class)
{
    ConfigGenome base;
    base.cacheClass = cache_class;
    base.actionsPerEpisode = 30;
    base.episodesPerWf = 6;
    base.atomicLocs = 10;
    base.colocDensity = 2.0;
    base.numCus = 4;
    ConfigGenome alt = base;
    alt.episodesPerWf = 12;

    SourceConfig cfg;
    cfg.arms = {base, alt};
    cfg.scale.lanes = 8;
    cfg.scale.wfsPerCu = 2;
    cfg.scale.numNormalVars = 512;
    cfg.scale.fault = fault;
    cfg.masterSeed = 1;
    cfg.batchSize = 2;
    cfg.maxShards = 16;
    GuidedSource source(cfg);

    AdaptiveCampaignResult res = runAdaptiveCampaign(source);
    if (res.passed)
        return FailureClass::None;
    // The failing shard's full preset must be recoverable by seed so
    // the fuzz tool can re-record it as a trace.
    EXPECT_TRUE(res.failurePreset.has_value());
    if (res.failurePreset) {
        EXPECT_EQ(res.failurePreset->tester.seed,
                  res.firstFailure->seed);
        EXPECT_EQ(res.failurePreset->system.fault, fault);
    }
    return res.firstFailureClass;
}

} // namespace

TEST(Fault, ParseFaultKindRoundTripsEveryKind)
{
    for (std::uint32_t i = 0; i < faultKindCount; ++i) {
        FaultKind kind = static_cast<FaultKind>(i);
        std::optional<FaultKind> parsed =
            parseFaultKind(faultKindName(kind));
        ASSERT_TRUE(parsed.has_value()) << faultKindName(kind);
        EXPECT_EQ(*parsed, kind);
    }
}

TEST(Fault, ParseFaultKindRejectsUnknownNames)
{
    EXPECT_FALSE(parseFaultKind("").has_value());
    EXPECT_FALSE(parseFaultKind("LostWritethrough").has_value());
    EXPECT_FALSE(parseFaultKind("lostwritethrough").has_value());
    EXPECT_FALSE(parseFaultKind("None ").has_value());
    EXPECT_FALSE(parseFaultKind("7").has_value());
}

TEST(Fault, InjectorClampsTriggerPctTo100)
{
    // Random::pct treats any percentage > 100 as always-fire, so an
    // unclamped typo (1000) would silently behave like 100. The clamp
    // pins that: the injector never reports an out-of-range rate.
    FaultInjector typo(FaultKind::LostWriteThrough, 1000, 1);
    EXPECT_EQ(typo.triggerPct(), 100u);

    FaultInjector normal(FaultKind::LostWriteThrough, 35, 1);
    EXPECT_EQ(normal.triggerPct(), 35u);

    FaultInjector zero(FaultKind::LostWriteThrough, 0, 1);
    EXPECT_EQ(zero.triggerPct(), 0u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(zero.fire(FaultKind::LostWriteThrough));
    EXPECT_EQ(zero.firings(), 0u);
}

TEST(Fault, NoFaultPasses)
{
    TesterResult r = runWithFault(FaultKind::None, 9);
    EXPECT_TRUE(r.passed);
    EXPECT_EQ(r.failureClass, FailureClass::None);
}

// A silently dropped write-through surfaces as a stale load: the
// checker's value mismatch, with the Table V last-writer dump.
TEST(Fault, LostWriteThroughIsValueMismatch)
{
    TesterResult r = runWithFault(FaultKind::LostWriteThrough, 11);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.failureClass, FailureClass::ValueMismatch);
    EXPECT_NE(r.report.find("Last Writer"), std::string::npos);
}

// A non-atomic read-modify-write loses an update on the sync variable:
// two episodes observe the same atomic return value.
TEST(Fault, NonAtomicRmwIsAtomicViolation)
{
    TesterResult r = runWithFault(FaultKind::NonAtomicRmw, 42);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.failureClass, FailureClass::AtomicViolation);
}

// A swallowed acquire flash-invalidate leaves stale lines in the L1.
// Needs the large cache class: small L1s evict lines fast enough that
// natural replacement masks the missing invalidate.
TEST(Fault, DropAcquireInvalidateIsValueMismatch)
{
    TesterResult r = runWithFault(FaultKind::DropAcquireInvalidate, 5,
                                  CacheSizeClass::Large);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.failureClass, FailureClass::ValueMismatch);
}

// A dropped write acknowledgement strands the L1's outstanding
// write-through count, so a release can never drain: the watchdog
// reports the stuck request.
TEST(Fault, DropWriteAckIsDeadlock)
{
    TesterResult r = runWithFault(FaultKind::DropWriteAck, 7);
    EXPECT_FALSE(r.passed);
    EXPECT_EQ(r.failureClass, FailureClass::Deadlock);
}

// A guided campaign must not trade away fault-finding power for
// coverage efficiency: with each random-tester-detectable fault armed
// campaign-wide, the coverage-guided scheduler still surfaces the
// failure with the expected class, and remembers the failing shard's
// full preset for trace re-recording.
TEST(Fault, GuidedCampaignDetectsLostWriteThrough)
{
    EXPECT_EQ(guidedCampaignFailureClass(FaultKind::LostWriteThrough,
                                         CacheSizeClass::Small),
              FailureClass::ValueMismatch);
}

TEST(Fault, GuidedCampaignDetectsNonAtomicRmw)
{
    EXPECT_EQ(guidedCampaignFailureClass(FaultKind::NonAtomicRmw,
                                         CacheSizeClass::Small),
              FailureClass::AtomicViolation);
}

TEST(Fault, GuidedCampaignDetectsDropAcquireInvalidate)
{
    EXPECT_EQ(
        guidedCampaignFailureClass(FaultKind::DropAcquireInvalidate,
                                   CacheSizeClass::Large),
        FailureClass::ValueMismatch);
}

TEST(Fault, GuidedCampaignDetectsDropWriteAck)
{
    EXPECT_EQ(guidedCampaignFailureClass(FaultKind::DropWriteAck,
                                         CacheSizeClass::Small),
              FailureClass::Deadlock);
}

// The directed scenario: GPU caches a line, the CPU takes exclusive
// ownership (the probe toward the GPU L2 is dropped), and the GPU's
// post-acquire reload observes the stale L2 copy.
TEST(Fault, DropGpuProbeScenarioObservesStaleData)
{
    ProbeScenarioResult bugged =
        runDropGpuProbeScenario(FaultKind::DropGpuProbe);
    ASSERT_TRUE(bugged.completed);
    EXPECT_TRUE(bugged.staleObserved)
        << "reload returned 0x" << std::hex << bugged.gpuReloadValue;
}

// Control arm: with a correct protocol the same sequence invalidates
// the L2 copy and the reload returns the CPU's value.
TEST(Fault, DropGpuProbeScenarioControlArmIsClean)
{
    ProbeScenarioResult clean =
        runDropGpuProbeScenario(FaultKind::None);
    ASSERT_TRUE(clean.completed);
    EXPECT_FALSE(clean.staleObserved);
    EXPECT_EQ(clean.gpuReloadValue, clean.cpuStoreValue);
}
