/**
 * @file
 * Tests for the table-driven protocol family and scoped
 * synchronization: the completeness property (every spec-defined
 * (State, Event) cell of every migrated controller has a table row),
 * the missing-row ProtocolError path, the LRCC variant's determinism,
 * scope-mode semantics (Scoped always passes, Racy raises
 * ScopeViolation), DRFTRC01 v3 protocol/scope round-trips, the
 * protocol/scope genome axes, and the widened search space's coverage
 * over the saturated unscoped-VIPER baseline.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "golden_digest.hh"
#include "guidance/adaptive_campaign.hh"
#include "proto/cpu_cache.hh"
#include "proto/directory.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"
#include "proto/transition_table.hh"
#include "trace/repro.hh"
#include "trace/trace_file.hh"

using namespace drf;
using drf::testing::Digest;
using drf::testing::digestGrid;
using drf::testing::digestResult;
using drf::testing::goldenGpuConfig;
using drf::testing::gpuDigestOf;

namespace
{

/** Every spec-defined cell of @p table must have a declared row. */
template <typename C>
void
expectTableComplete(const TransitionTable<C> &table)
{
    const TransitionSpec &spec = table.spec();
    for (std::size_t ev = 0; ev < spec.numEvents(); ++ev) {
        for (std::size_t st = 0; st < spec.numStates(); ++st) {
            if (spec.defined(ev, st)) {
                EXPECT_TRUE(table.handled(ev, st))
                    << spec.name() << " misses row ("
                    << spec.events()[ev] << ", " << spec.states()[st]
                    << ")";
            } else {
                EXPECT_FALSE(table.handled(ev, st))
                    << spec.name() << " declares a row the spec does "
                    << "not define: (" << spec.events()[ev] << ", "
                    << spec.states()[st] << ")";
            }
        }
    }
}

} // namespace

TEST(TransitionTableFamily, EveryControllerTableMatchesItsSpec)
{
    expectTableComplete(GpuL1Cache::tableFor(ProtocolKind::Viper));
    expectTableComplete(GpuL1Cache::tableFor(ProtocolKind::Lrcc));
    expectTableComplete(GpuL2Cache::table());
    expectTableComplete(CpuCache::table());
    expectTableComplete(Directory::table());
}

TEST(TransitionTableFamily, ProtocolVariantsShareEventsNotShape)
{
    const TransitionSpec &viper = GpuL1Cache::spec();
    const TransitionSpec &lrcc = GpuL1Cache::lrccSpec();
    EXPECT_EQ(viper.name(), "GPU-L1");
    EXPECT_EQ(lrcc.name(), "GPU-L1-LRCC");
    // The ownership variant widens the state space (O, M) and adds the
    // write-back event; its reachable set strictly contains work the
    // VIPER table can never express.
    EXPECT_GT(lrcc.numStates(), viper.numStates());
    EXPECT_GT(lrcc.numEvents(), viper.numEvents());
    EXPECT_GT(lrcc.reachableCount(""), viper.reachableCount(""));
}

namespace
{

/** Minimal controller for exercising TransitionTable in isolation. */
struct ToyController
{
    enum Event { EvPing = 0, EvPong = 1 };
    enum State { StIdle = 0, StBusy = 1 };
    struct TransCtx
    {
        int pings = 0;
    };

    const std::string &name() const { return _name; }
    Tick curTick() const { return 42; }

    void
    transition(Event ev, State st)
    {
        observed.emplace_back(ev, st);
    }

    void actPing(TransCtx &ctx) { ++ctx.pings; }

    std::string _name = "toy";
    std::vector<std::pair<int, int>> observed;
};

const TransitionSpec &
toySpec()
{
    static TransitionSpec spec("TOY", {"Idle", "Busy"},
                               {"Ping", "Pong"});
    static bool defined = [] {
        spec.define(ToyController::EvPing, ToyController::StIdle);
        spec.define(ToyController::EvPong, ToyController::StBusy);
        return true;
    }();
    (void)defined;
    return spec;
}

} // namespace

TEST(TransitionTableFamily, FireRunsActionsAndRecordsTransition)
{
    TransitionTable<ToyController> table(toySpec());
    table.on(ToyController::EvPing, ToyController::StIdle,
             {&ToyController::actPing}, ToyController::StBusy);

    ToyController toy;
    ToyController::TransCtx ctx;
    table.fire(toy, ToyController::EvPing, ToyController::StIdle, ctx);
    EXPECT_EQ(ctx.pings, 1);
    ASSERT_EQ(toy.observed.size(), 1u);
    EXPECT_EQ(toy.observed[0].first, ToyController::EvPing);
    EXPECT_EQ(toy.observed[0].second, ToyController::StIdle);
    EXPECT_EQ(table.nextState(ToyController::EvPing,
                              ToyController::StIdle),
              ToyController::StBusy);
}

TEST(TransitionTableFamily, MissingRowThrowsProtocolErrorNamingTheRow)
{
    // Spec defines (Pong, Busy) but the table declares no row for it:
    // dispatch must fail loudly, naming spec, event, and state.
    TransitionTable<ToyController> table(toySpec());
    table.on(ToyController::EvPing, ToyController::StIdle,
             {&ToyController::actPing});

    ToyController toy;
    ToyController::TransCtx ctx;
    try {
        table.fireWith(toy, ToyController::EvPong, ToyController::StBusy,
                       ctx, [] { return std::string("pkt#7"); });
        FAIL() << "missing row did not throw";
    } catch (const ProtocolError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("Pong"), std::string::npos) << what;
        EXPECT_NE(what.find("Busy"), std::string::npos) << what;
        EXPECT_NE(what.find("TOY"), std::string::npos) << what;
        EXPECT_NE(what.find("pkt#7"), std::string::npos) << what;
        EXPECT_EQ(err.who(), "toy");
    }
    // The failed dispatch must not have recorded a transition.
    EXPECT_TRUE(toy.observed.empty());
}

namespace
{

std::uint64_t
protocolRunDigest(ProtocolKind protocol, std::uint64_t seed,
                  ScopeMode mode = ScopeMode::None)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 4);
    sys_cfg.l1.protocol = protocol;
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = goldenGpuConfig(seed);
    cfg.scopeMode = mode;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << protocolKindName(protocol) << "/"
                          << scopeModeName(mode) << " seed " << seed
                          << ": " << r.report;
    return gpuDigestOf(sys, r);
}

} // namespace

TEST(LrccProtocol, SameSeedSameDigestDifferentProtocolDifferentDigest)
{
    std::uint64_t lrcc_a = protocolRunDigest(ProtocolKind::Lrcc, 9);
    std::uint64_t lrcc_b = protocolRunDigest(ProtocolKind::Lrcc, 9);
    std::uint64_t viper = protocolRunDigest(ProtocolKind::Viper, 9);
    EXPECT_EQ(lrcc_a, lrcc_b);
    EXPECT_NE(lrcc_a, viper);
}

TEST(LrccProtocol, ReachesOwnershipStates)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 4);
    sys_cfg.l1.protocol = ProtocolKind::Lrcc;
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, goldenGpuConfig(5));
    TesterResult r = tester.run();
    ASSERT_TRUE(r.passed) << r.report;

    const CoverageGrid grid = sys.l1CoverageUnion();
    ASSERT_EQ(grid.spec().name(), "GPU-L1-LRCC");
    // The write-back demotion (M -> O) and dirty-hit rows are the
    // protocol's ownership core; a run that never exercises them is not
    // testing LRCC at all.
    EXPECT_GT(grid.count(GpuL1Cache::EvWB, GpuL1Cache::StM), 0u);
    EXPECT_GT(grid.count(GpuL1Cache::EvStoreThrough, GpuL1Cache::StM),
              0u);
    EXPECT_GT(grid.activeCount("gpu_tester"), 0u);
}

TEST(ScopedSynchronization, ScopedModePassesUnderBothProtocols)
{
    for (ProtocolKind protocol :
         {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
        for (std::uint64_t seed : {1ull, 2ull, 3ull})
            protocolRunDigest(protocol, seed, ScopeMode::Scoped);
    }
}

TEST(ScopedSynchronization, RacyModeRaisesScopeViolation)
{
    // Racy mode keeps the CTA/GPU scope draws but drops the generation
    // discipline: a correct protocol then exhibits its weak CTA-scope
    // semantics across CTAs, which the checker must classify as
    // ScopeViolation (not ValueMismatch). Large caches, as with fault
    // injection: small L1s evict stale lines fast enough to mask them.
    for (ProtocolKind protocol :
         {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
        bool found = false;
        for (std::uint64_t seed = 1; seed <= 20 && !found; ++seed) {
            ApuSystemConfig sys_cfg =
                makeGpuSystemConfig(CacheSizeClass::Large, 4);
            sys_cfg.l1.protocol = protocol;
            ApuSystem sys(sys_cfg);
            GpuTesterConfig cfg = goldenGpuConfig(seed);
            cfg.scopeMode = ScopeMode::Racy;
            GpuTester tester(sys, cfg);
            TesterResult r = tester.run();
            if (!r.passed) {
                EXPECT_EQ(r.failureClass, FailureClass::ScopeViolation)
                    << protocolKindName(protocol) << " seed " << seed
                    << " failed as "
                    << failureClassName(r.failureClass) << ": "
                    << r.report;
                found = true;
            }
        }
        EXPECT_TRUE(found)
            << protocolKindName(protocol)
            << ": no racy seed in 1..20 produced a scope violation";
    }
}

TEST(ScopedSynchronization, FailureClassRoundTripsByName)
{
    EXPECT_EQ(parseFailureClass(
                  failureClassName(FailureClass::ScopeViolation)),
              FailureClass::ScopeViolation);
}

TEST(TraceRoundTrip, ProtocolAndScopeSurviveSaveLoad)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 4);
    sys_cfg.l1.protocol = ProtocolKind::Lrcc;
    GpuTesterConfig tester_cfg = goldenGpuConfig(13);
    tester_cfg.scopeMode = ScopeMode::Scoped;
    tester_cfg.episodeGen.ctaScopePct = 37;
    ReproTrace trace = recordGpuRun(sys_cfg, tester_cfg);
    ASSERT_TRUE(trace.result.passed) << trace.result.report;

    std::stringstream ss;
    ASSERT_TRUE(saveTrace(ss, trace));
    ReproTrace loaded;
    ASSERT_TRUE(loadTrace(ss, loaded));

    EXPECT_EQ(loaded.system.l1.protocol, ProtocolKind::Lrcc);
    EXPECT_EQ(loaded.tester.scopeMode, ScopeMode::Scoped);
    EXPECT_EQ(loaded.tester.episodeGen.ctaScopePct, 37u);

    // Per-episode scope bytes: same sequence, and scoped generation
    // must actually have drawn both scopes somewhere in the schedule.
    ASSERT_EQ(loaded.schedule.size(), trace.schedule.size());
    bool saw_cta = false, saw_gpu = false;
    for (std::size_t i = 0; i < trace.schedule.size(); ++i) {
        EXPECT_EQ(loaded.schedule.episodes[i].scope,
                  trace.schedule.episodes[i].scope);
        saw_cta |= trace.schedule.episodes[i].scope == Scope::Cta;
        saw_gpu |= trace.schedule.episodes[i].scope == Scope::Gpu;
    }
    EXPECT_TRUE(saw_cta);
    EXPECT_TRUE(saw_gpu);

    // And the loaded trace replays to the recorded outcome.
    TesterResult replayed = replayGpuRun(loaded);
    Digest recorded_d, replayed_d;
    digestResult(recorded_d, trace.result);
    digestResult(replayed_d, replayed);
    EXPECT_EQ(replayed_d.value(), recorded_d.value());
}

TEST(ProtocolGenome, NameAndPresetThreadProtocolAndScope)
{
    ConfigGenome g;
    g.cacheClass = CacheSizeClass::Small;
    g.actionsPerEpisode = 30;
    g.episodesPerWf = 6;
    g.atomicLocs = 10;
    g.colocDensity = 2.0;
    g.numCus = 4;

    // Default genes stay out of the name (existing shard/journal names
    // must not change).
    EXPECT_EQ(genomeName(g), "small/a30/e6/s10/d2/cu4");

    g.protocol = ProtocolKind::Lrcc;
    g.scopeMode = ScopeMode::Scoped;
    EXPECT_EQ(genomeName(g), "small/a30/e6/s10/d2/cu4/p-lrcc/sc-scoped");

    GenomeScale scale;
    scale.lanes = 8;
    scale.wfsPerCu = 2;
    scale.numNormalVars = 512;
    GpuTestPreset preset = genomeToPreset(g, scale, 77);
    EXPECT_EQ(preset.system.l1.protocol, ProtocolKind::Lrcc);
    EXPECT_EQ(preset.tester.scopeMode, ScopeMode::Scoped);
    EXPECT_EQ(genomeFromPreset(preset), g);
}

TEST(ProtocolGenome, DefaultBoundsNeverMutateProtocolOrScope)
{
    // The widened axes are opt-in: under default bounds the mutation
    // sequence must be the same function of the master seed it was
    // before the axes existed, so existing campaigns stay reproducible.
    ConfigGenome g;
    g.protocol = ProtocolKind::Lrcc;
    g.scopeMode = ScopeMode::Scoped;
    Random rng(1234);
    for (int i = 0; i < 200; ++i) {
        g = mutateGenome(g, rng);
        EXPECT_EQ(g.protocol, ProtocolKind::Lrcc);
        EXPECT_EQ(g.scopeMode, ScopeMode::Scoped);
    }
}

TEST(ProtocolGenome, ArmedBoundsEventuallyFlipBothAxes)
{
    GenomeBounds bounds;
    bounds.searchProtocols = true;
    bounds.searchScopes = true;

    ConfigGenome g;
    Random rng(99);
    bool saw_lrcc = false, saw_scoped = false, saw_racy = false;
    for (int i = 0; i < 500; ++i) {
        g = mutateGenome(g, rng, bounds);
        saw_lrcc |= g.protocol == ProtocolKind::Lrcc;
        saw_scoped |= g.scopeMode == ScopeMode::Scoped;
        // Racy is excluded from the search space by design.
        saw_racy |= g.scopeMode == ScopeMode::Racy;
    }
    EXPECT_TRUE(saw_lrcc);
    EXPECT_TRUE(saw_scoped);
    EXPECT_FALSE(saw_racy);
}

TEST(ProtocolGenome, WidenedSpaceExceedsSaturatedViperBaseline)
{
    // A tiny guided campaign per protocol; small enough to saturate the
    // VIPER space. The widened space's union — accumulated across both
    // specs — must strictly exceed the saturated unscoped-VIPER
    // baseline, because the LRCC grid holds cells the VIPER table
    // cannot express.
    auto campaign = [](ProtocolKind protocol, ScopeMode mode) {
        ConfigGenome g;
        g.cacheClass = CacheSizeClass::Small;
        g.actionsPerEpisode = 20;
        g.episodesPerWf = 4;
        g.atomicLocs = 6;
        g.colocDensity = 2.0;
        g.numCus = 2;
        g.protocol = protocol;
        g.scopeMode = mode;
        SourceConfig cfg;
        cfg.arms = {g};
        cfg.scale.lanes = 4;
        cfg.scale.wfsPerCu = 1;
        cfg.scale.numNormalVars = 128;
        cfg.masterSeed = 1;
        cfg.batchSize = 2;
        cfg.maxShards = 4;
        GuidedSource source(cfg);
        AdaptiveCampaignResult res = runAdaptiveCampaign(source);
        EXPECT_TRUE(res.passed);
        return res;
    };

    AdaptiveCampaignResult baseline =
        campaign(ProtocolKind::Viper, ScopeMode::None);
    AdaptiveCampaignResult widened =
        campaign(ProtocolKind::Lrcc, ScopeMode::Scoped);
    ASSERT_TRUE(baseline.l1Union.has_value());
    ASSERT_TRUE(widened.l1Union.has_value());

    CoverageAccumulator unions;
    unions.add(*baseline.l1Union);
    unions.add(*widened.l1Union);
    // Two distinct specs in the union: the widened space added a grid.
    ASSERT_EQ(unions.grids().size(), 2u);
    std::size_t baseline_active =
        baseline.l1Union->activeCount("gpu_tester");
    EXPECT_GT(unions.activeCount("gpu_tester"), baseline_active);
}
