/**
 * @file
 * Tests for the multi-seed campaign runner: aggregate determinism
 * across thread counts, early stop on failure and on coverage
 * saturation, shard isolation, and the JSON summary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "campaign/campaign.hh"
#include "campaign/campaign_json.hh"
#include "tester/configs.hh"
#include "tester/tester_failure.hh"

using namespace drf;

namespace
{

/** A deliberately small, fast GPU preset for campaign shards. */
GpuTestPreset
tinyPreset(std::uint64_t seed, FaultKind fault = FaultKind::None)
{
    GpuTestPreset preset;
    preset.name = "tiny";
    preset.cacheClass = CacheSizeClass::Small;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    preset.system.fault = fault;
    preset.tester = makeGpuTesterConfig(/*actions_per_episode=*/20,
                                        /*episodes_per_wf=*/3,
                                        /*atomic_locs=*/10, seed);
    preset.tester.lanes = 4;
    preset.tester.episodeGen.lanes = 4;
    preset.tester.variables.numNormalVars = 256;
    preset.tester.variables.addrRangeBytes = 1 << 13;
    return preset;
}

/** A synthetic shard that doesn't need a simulator. */
ShardSpec
syntheticShard(const std::string &name, std::uint64_t seed,
               std::uint64_t events, bool pass)
{
    ShardSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.run = [name, seed, events, pass]() {
        ShardOutcome out;
        out.name = name;
        out.result.passed = pass;
        out.result.ticks = 100;
        out.result.events = events;
        out.result.episodes = 2;
        if (!pass)
            out.result.report = "synthetic failure seed " +
                                std::to_string(seed);
        return out;
    };
    return spec;
}

} // namespace

TEST(Campaign, EmptyCampaignPasses)
{
    CampaignResult res = runCampaign({}, {});
    EXPECT_TRUE(res.passed);
    EXPECT_EQ(res.shardsPlanned, 0u);
    EXPECT_EQ(res.shardsRun, 0u);
}

TEST(Campaign, AggregatesAreThreadCountInvariant)
{
    // The same 6-seed campaign must produce identical sums and union
    // coverage whether it runs serially or on 4 workers.
    auto run_with_jobs = [](unsigned jobs) {
        CampaignConfig cfg;
        cfg.jobs = jobs;
        return runCampaign(gpuSeedSweep(tinyPreset(1), 1, 6), cfg);
    };
    CampaignResult serial = run_with_jobs(1);
    CampaignResult parallel = run_with_jobs(4);

    EXPECT_TRUE(serial.passed);
    EXPECT_TRUE(parallel.passed);
    EXPECT_EQ(serial.shardsRun, 6u);
    EXPECT_EQ(parallel.shardsRun, 6u);
    EXPECT_EQ(serial.totalTicks, parallel.totalTicks);
    EXPECT_EQ(serial.totalEvents, parallel.totalEvents);
    EXPECT_EQ(serial.totalEpisodes, parallel.totalEpisodes);
    EXPECT_EQ(serial.totalLoadsChecked, parallel.totalLoadsChecked);
    EXPECT_EQ(serial.totalStoresRetired, parallel.totalStoresRetired);
    EXPECT_EQ(serial.totalAtomicsChecked, parallel.totalAtomicsChecked);

    ASSERT_TRUE(serial.l1Union && parallel.l1Union);
    ASSERT_TRUE(serial.l2Union && parallel.l2Union);
    EXPECT_DOUBLE_EQ(serial.l1Union->coveragePct("gpu_tester"),
                     parallel.l1Union->coveragePct("gpu_tester"));
    EXPECT_DOUBLE_EQ(serial.l2Union->coveragePct("gpu_tester"),
                     parallel.l2Union->coveragePct("gpu_tester"));
    EXPECT_GT(serial.l1Union->coveragePct("gpu_tester"), 0.0);
}

TEST(Campaign, KeepOutcomesReturnsShardsInIndexOrder)
{
    CampaignConfig cfg;
    cfg.jobs = 3;
    cfg.keepOutcomes = true;
    CampaignResult res =
        runCampaign(gpuSeedSweep(tinyPreset(1), 10, 5), cfg);
    ASSERT_EQ(res.outcomes.size(), 5u);
    for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
        EXPECT_EQ(res.outcomes[i].index, i);
        EXPECT_EQ(res.outcomes[i].seed, 10u + i);
        EXPECT_EQ(res.outcomes[i].name,
                  "tiny/seed" + std::to_string(10 + i));
        EXPECT_TRUE(res.outcomes[i].result.passed);
    }
}

TEST(Campaign, FirstFailurePreservedWithSeed)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("good-a", 1, 10, true));
    shards.push_back(syntheticShard("bad", 77, 10, false));
    shards.push_back(syntheticShard("good-b", 3, 10, true));

    CampaignConfig cfg;
    cfg.jobs = 1;
    CampaignResult res = runCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "bad");
    EXPECT_EQ(res.firstFailure->seed, 77u);
    EXPECT_EQ(res.firstFailure->index, 1u);
    EXPECT_NE(res.firstFailure->report.find("seed 77"),
              std::string::npos);
    // Serial + stopOnFailure: the shard after the failure is skipped.
    EXPECT_EQ(res.shardsRun, 2u);
    EXPECT_EQ(res.shardsSkipped, 1u);
}

TEST(Campaign, StopOnFailureDisabledRunsEverything)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("bad-1", 7, 10, false));
    shards.push_back(syntheticShard("bad-2", 8, 10, false));
    shards.push_back(syntheticShard("good", 9, 10, true));

    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.stopOnFailure = false;
    CampaignResult res = runCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 3u);
    EXPECT_EQ(res.shardsSkipped, 0u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->index, 0u);
    EXPECT_EQ(res.firstFailure->seed, 7u);
}

TEST(Campaign, ThrowingShardBecomesStructuredFailureNotCrash)
{
    // A shard that lets an exception escape must not take down the
    // process (or sibling shards) — it becomes a failed outcome.
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("ok", 1, 10, true));
    ShardSpec thrower;
    thrower.name = "thrower";
    thrower.seed = 13;
    thrower.run = []() -> ShardOutcome {
        throw TesterFailure("deliberate test explosion");
    };
    shards.push_back(std::move(thrower));

    CampaignConfig cfg;
    cfg.jobs = 2;
    cfg.stopOnFailure = false;
    CampaignResult res = runCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 2u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "thrower");
    EXPECT_EQ(res.firstFailure->seed, 13u);
    EXPECT_NE(res.firstFailure->report.find("deliberate"),
              std::string::npos);
}

TEST(Campaign, InjectedFaultIsCaughtAndReported)
{
    // End-to-end shard isolation: a campaign over a faulty system
    // fails with a real tester report instead of aborting.
    std::vector<ShardSpec> shards;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        GpuTestPreset preset =
            tinyPreset(seed, FaultKind::LostWriteThrough);
        preset.name = "faulty/seed" + std::to_string(seed);
        shards.push_back(gpuShard(preset));
    }
    CampaignConfig cfg;
    cfg.jobs = 2;
    CampaignResult res = runCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_FALSE(res.firstFailure->report.empty());
    EXPECT_GE(res.firstFailure->seed, 1u);
    EXPECT_LE(res.firstFailure->seed, 3u);
}

TEST(Campaign, SaturationEarlyStopSkipsRemainingShards)
{
    // Synthetic shards carry no coverage grids, so use real ones but
    // with a threshold so low the very first shard satisfies it.
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.saturationPct = 0.0001;
    CampaignResult res =
        runCampaign(gpuSeedSweep(tinyPreset(1), 1, 8), cfg);
    EXPECT_TRUE(res.passed);
    ASSERT_TRUE(res.shardsToSaturation.has_value());
    EXPECT_EQ(*res.shardsToSaturation, 1u);
    EXPECT_EQ(res.shardsRun, 1u);
    EXPECT_EQ(res.shardsSkipped, 7u);
    EXPECT_EQ(res.shardsRun + res.shardsSkipped, res.shardsPlanned);
}

TEST(Campaign, SaturationCurveIsMonotonic)
{
    CampaignConfig cfg;
    cfg.jobs = 2;
    CampaignResult res =
        runCampaign(gpuSeedSweep(tinyPreset(1), 1, 4), cfg);
    ASSERT_EQ(res.saturationCurve.size(), 4u);
    for (std::size_t i = 1; i < res.saturationCurve.size(); ++i) {
        const CoveragePoint &prev = res.saturationCurve[i - 1];
        const CoveragePoint &cur = res.saturationCurve[i];
        EXPECT_EQ(cur.shardsCompleted, prev.shardsCompleted + 1);
        EXPECT_GE(cur.l1Pct, prev.l1Pct);
        EXPECT_GE(cur.l2Pct, prev.l2Pct);
        EXPECT_GE(cur.cumulativeEvents, prev.cumulativeEvents);
    }
}

TEST(Campaign, JsonSummaryContainsKeyFields)
{
    CampaignConfig cfg;
    cfg.jobs = 2;
    CampaignResult res =
        runCampaign(gpuSeedSweep(tinyPreset(1), 1, 3), cfg);
    std::string json = campaignToJson(res, "gpu_tester");

    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    for (const char *key :
         {"\"passed\":true", "\"shards_planned\":3", "\"shards_run\":3",
          "\"shards_resumed\":0", "\"host_crashes\":0",
          "\"host_timeouts\":0", "\"resource_exhausted\":0",
          "\"retries\":0", "\"interrupted\":false",
          "\"total_events\":", "\"events_per_sec\":",
          "\"l1_union_pct\":", "\"saturation_curve\":[",
          "\"shard_name\":", "\"shard_seed\":", "\"shard_episodes\":",
          "\"shard_actions\":", "\"cumulative_episodes\":",
          "\"cumulative_actions\":", "\"new_cells\":",
          "\"first_failure\":null"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in " << json;
    }
}

TEST(Campaign, JsonFirstFailureCarriesFailureClass)
{
    std::vector<ShardSpec> shards;
    ShardSpec bad = syntheticShard("bad", 5, 10, false);
    bad.run = [inner = bad.run]() {
        ShardOutcome out = inner();
        out.result.failureClass = FailureClass::ValueMismatch;
        return out;
    };
    shards.push_back(std::move(bad));

    CampaignConfig cfg;
    cfg.jobs = 1;
    CampaignResult res = runCampaign(std::move(shards), cfg);
    std::string json = campaignToJson(res, "gpu_tester");
    EXPECT_NE(json.find("\"failure_class\":\"ValueMismatch\""),
              std::string::npos)
        << json;
}

TEST(Campaign, CurveEpisodeAndActionCountsAreConsistent)
{
    CampaignConfig cfg;
    cfg.jobs = 1;
    CampaignResult res =
        runCampaign(gpuSeedSweep(tinyPreset(1), 1, 4), cfg);
    ASSERT_EQ(res.saturationCurve.size(), 4u);

    std::uint64_t episodes = 0;
    std::uint64_t actions = 0;
    for (const CoveragePoint &p : res.saturationCurve) {
        EXPECT_GT(p.shardEpisodes, 0u);
        EXPECT_GT(p.shardActions, 0u);
        EXPECT_FALSE(p.shardName.empty());
        episodes += p.shardEpisodes;
        actions += p.shardActions;
        EXPECT_EQ(p.cumulativeEpisodes, episodes);
        EXPECT_EQ(p.cumulativeActions, actions);
    }
    EXPECT_EQ(episodes, res.totalEpisodes);
    EXPECT_EQ(actions, res.totalLoadsChecked + res.totalStoresRetired +
                           res.totalAtomicsChecked);

    // The first shard's cells are all new; the union never shrinks, so
    // new_cells sums to the final union active count.
    std::size_t new_cells = 0;
    for (const CoveragePoint &p : res.saturationCurve)
        new_cells += p.newCells;
    ASSERT_TRUE(res.l1Union && res.l2Union && res.dirUnion);
    EXPECT_EQ(new_cells, res.l1Union->activeCount("") +
                             res.l2Union->activeCount("") +
                             res.dirUnion->activeCount(""));
}

TEST(Campaign, JsonEscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\"\\u0001\"");
}
