/**
 * @file
 * Tests for the resilient campaign supervisor: exception barrier,
 * transient retry, hang reaping, event budgets, journal round trips,
 * checkpoint/resume bit-identity, graceful SIGTERM shutdown, and repro
 * capture. Fork-isolation coverage (real SIGSEGV, SIGKILL reaping)
 * lives in the ForkIsolation suite so sanitizer CI jobs can filter it
 * separately from the in-process Supervisor suite.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/host_fault.hh"
#include "campaign/journal.hh"
#include "campaign/supervisor.hh"
#include "tester/configs.hh"
#include "tester/tester_failure.hh"
#include "trace/repro.hh"
#include "trace/trace_file.hh"

using namespace drf;

namespace
{

/** A deliberately small, fast GPU preset for supervised shards. */
GpuTestPreset
tinyPreset(std::uint64_t seed, FaultKind fault = FaultKind::None)
{
    GpuTestPreset preset;
    preset.name = "tiny";
    preset.cacheClass = CacheSizeClass::Small;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Small, 2);
    preset.system.fault = fault;
    preset.tester = makeGpuTesterConfig(/*actions_per_episode=*/20,
                                        /*episodes_per_wf=*/3,
                                        /*atomic_locs=*/10, seed);
    preset.tester.lanes = 4;
    preset.tester.episodeGen.lanes = 4;
    preset.tester.variables.numNormalVars = 256;
    preset.tester.variables.addrRangeBytes = 1 << 13;
    return preset;
}

/** A synthetic passing shard that doesn't need a simulator. */
ShardSpec
syntheticShard(const std::string &name, std::uint64_t seed)
{
    ShardSpec spec;
    spec.name = name;
    spec.seed = seed;
    spec.run = [name]() {
        ShardOutcome out;
        out.name = name;
        out.result.passed = true;
        out.result.ticks = 100;
        out.result.events = 10;
        out.result.episodes = 2;
        return out;
    };
    return spec;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "drf_supervisor_" + name;
}

SupervisorConfig
baseConfig(unsigned jobs = 1)
{
    SupervisorConfig cfg;
    cfg.campaign.jobs = jobs;
    cfg.campaign.stopOnFailure = false;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Watchdog boundary semantics (satellite regression): outstanding for
// exactly `threshold` ticks is legal; one tick longer trips it.
// ---------------------------------------------------------------------

TEST(WatchdogBoundary, ExactThresholdTicksIsStillLegal)
{
    constexpr std::uint64_t issued = 1000;
    constexpr std::uint64_t threshold = 50000;
    EXPECT_FALSE(watchdogExpired(issued, issued, threshold));
    EXPECT_FALSE(watchdogExpired(issued + threshold, issued, threshold));
}

TEST(WatchdogBoundary, OneTickPastThresholdTrips)
{
    constexpr std::uint64_t issued = 1000;
    constexpr std::uint64_t threshold = 50000;
    EXPECT_TRUE(
        watchdogExpired(issued + threshold + 1, issued, threshold));
}

// ---------------------------------------------------------------------
// In-process supervision.
// ---------------------------------------------------------------------

TEST(Supervisor, PlainCampaignMatchesRunCampaign)
{
    std::vector<ShardSpec> shards = gpuSeedSweep(tinyPreset(1), 1, 4);
    CampaignResult plain = runCampaign(
        gpuSeedSweep(tinyPreset(1), 1, 4), baseConfig(2).campaign);
    CampaignResult supervised =
        runSupervisedCampaign(std::move(shards), baseConfig(2));

    EXPECT_TRUE(supervised.passed);
    EXPECT_EQ(supervised.shardsRun, 4u);
    EXPECT_EQ(supervised.totalTicks, plain.totalTicks);
    EXPECT_EQ(supervised.totalEvents, plain.totalEvents);
    EXPECT_EQ(supervised.totalEpisodes, plain.totalEpisodes);
    ASSERT_TRUE(supervised.l1Union && plain.l1Union);
    EXPECT_EQ(supervised.l1Union->activeDigest(),
              plain.l1Union->activeDigest());
}

TEST(Supervisor, UncaughtThrowBecomesHostCrashAndCampaignContinues)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("ok-a", 1));
    ShardSpec thrower = syntheticShard("thrower", 13);
    thrower.run = []() -> ShardOutcome {
        throw std::runtime_error("deliberate explosion");
    };
    shards.push_back(std::move(thrower));
    shards.push_back(syntheticShard("ok-b", 3));

    CampaignResult res =
        runSupervisedCampaign(std::move(shards), baseConfig(1));
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 3u);
    EXPECT_EQ(res.hostCrashes, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "thrower");
    EXPECT_EQ(res.firstFailure->seed, 13u);
    EXPECT_EQ(res.firstFailure->failureClass, FailureClass::HostCrash);
    EXPECT_NE(res.firstFailure->report.find("deliberate"),
              std::string::npos);
}

TEST(Supervisor, TransientShardSucceedsAfterRetries)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("flaky", 7));
    HostFaultInjector faults;
    faults.arm(0, HostFaultKind::Transient, /*fail_attempts=*/2);
    faults.armShards(shards);

    SupervisorConfig cfg = baseConfig(1);
    cfg.maxRetries = 2;
    cfg.retryBackoffMs = 1;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_TRUE(res.passed);
    EXPECT_EQ(res.shardsRun, 1u);
    EXPECT_EQ(res.resourceExhausted, 0u);
    EXPECT_EQ(res.retriesPerformed, 2u);
}

TEST(Supervisor, TransientShardExhaustsRetries)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("doomed", 7));
    HostFaultInjector faults;
    faults.arm(0, HostFaultKind::Transient, /*fail_attempts=*/10);
    faults.armShards(shards);

    SupervisorConfig cfg = baseConfig(1);
    cfg.maxRetries = 1;
    cfg.retryBackoffMs = 1;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.resourceExhausted, 1u);
    EXPECT_EQ(res.retriesPerformed, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->failureClass,
              FailureClass::ResourceExhausted);
}

TEST(Supervisor, HangingShardIsReapedAsHostTimeout)
{
    // The hang must be stoppable so the abandoned worker thread exits
    // once the test completes instead of leaking a sleeper forever.
    auto release = std::make_shared<std::atomic<bool>>(false);
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("ok", 1));
    ShardSpec hung = syntheticShard("hung", 99);
    hung.run = [release]() {
        while (!release->load())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return ShardOutcome{};
    };
    shards.push_back(std::move(hung));

    SupervisorConfig cfg = baseConfig(1);
    cfg.shardTimeoutSeconds = 0.3;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    release->store(true);

    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 2u);
    EXPECT_EQ(res.hostTimeouts, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "hung");
    EXPECT_EQ(res.firstFailure->seed, 99u);
    EXPECT_EQ(res.firstFailure->failureClass,
              FailureClass::HostTimeout);
}

TEST(Supervisor, EventBudgetExhaustionIsHostTimeout)
{
    // A budget far below what the tiny preset needs: the shard
    // self-reports HostTimeout deterministically, no wall clock
    // involved.
    std::vector<ShardSpec> shards;
    shards.push_back(gpuShard(tinyPreset(1)));

    SupervisorConfig cfg = baseConfig(1);
    cfg.shardEventBudget = 50;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.hostTimeouts, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->failureClass,
              FailureClass::HostTimeout);
    EXPECT_NE(res.firstFailure->report.find("event budget"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Journal serialization.
// ---------------------------------------------------------------------

TEST(Supervisor, JournalLineRoundTripsARealShardOutcome)
{
    ShardSpec spec = gpuShard(tinyPreset(5));
    ShardOutcome out = spec.run();
    out.index = 3;
    out.seed = spec.seed;
    out.attempts = 2;

    ShardOutcome parsed;
    ASSERT_TRUE(parseShardOutcome(shardOutcomeToJson(out), parsed));
    EXPECT_EQ(parsed.index, out.index);
    EXPECT_EQ(parsed.name, out.name);
    EXPECT_EQ(parsed.seed, out.seed);
    EXPECT_EQ(parsed.attempts, out.attempts);
    EXPECT_EQ(parsed.result.passed, out.result.passed);
    EXPECT_EQ(parsed.result.failureClass, out.result.failureClass);
    EXPECT_EQ(parsed.result.ticks, out.result.ticks);
    EXPECT_EQ(parsed.result.events, out.result.events);
    EXPECT_EQ(parsed.result.episodes, out.result.episodes);
    EXPECT_EQ(parsed.result.loadsChecked, out.result.loadsChecked);
    EXPECT_EQ(parsed.result.storesRetired, out.result.storesRetired);
    EXPECT_EQ(parsed.result.atomicsChecked, out.result.atomicsChecked);

    ASSERT_TRUE(parsed.l1 && parsed.l2 && parsed.dir);
    // Exact counts, not just the active set: resumed aggregates must be
    // bit-identical, so every cell's hit count has to survive the trip.
    EXPECT_EQ(parsed.l1->totalHits(), out.l1->totalHits());
    EXPECT_EQ(parsed.l2->totalHits(), out.l2->totalHits());
    EXPECT_EQ(parsed.dir->totalHits(), out.dir->totalHits());
    EXPECT_EQ(parsed.l1->activeDigest(), out.l1->activeDigest());
    EXPECT_EQ(parsed.l2->activeDigest(), out.l2->activeDigest());
    EXPECT_EQ(parsed.dir->activeDigest(), out.dir->activeDigest());
}

TEST(Supervisor, JournalParserRejectsGarbage)
{
    ShardOutcome out;
    EXPECT_FALSE(parseShardOutcome("", out));
    EXPECT_FALSE(parseShardOutcome("not json", out));
    EXPECT_FALSE(parseShardOutcome("{\"kind\":\"header\"}", out));
    EXPECT_FALSE(parseShardOutcome(
        "{\"kind\":\"shard\",\"index\":0}", out)); // missing fields
    // A valid line with an unknown failure class must not arm a bogus
    // enum value.
    ShardOutcome good;
    good.name = "x";
    std::string line = shardOutcomeToJson(good);
    std::size_t pos = line.find("\"None\"");
    ASSERT_NE(pos, std::string::npos);
    line.replace(pos, 6, "\"Nope\"");
    EXPECT_FALSE(parseShardOutcome(line, out));
}

TEST(Supervisor, JournalLoadTakesLastRecordAndToleratesTruncation)
{
    std::string path = tempPath("journal_tolerance.jsonl");
    std::remove(path.c_str());

    ShardOutcome first;
    first.name = "shard";
    first.seed = 9;
    first.index = 0;
    first.result.passed = false;
    first.result.failureClass = FailureClass::ResourceExhausted;
    ShardOutcome second = ShardOutcome{};
    second.name = "shard";
    second.seed = 9;
    second.index = 0;
    second.result.passed = true;

    {
        std::ofstream out(path);
        out << "{\"v\":1,\"kind\":\"header\",\"shards_planned\":1}\n";
        out << shardOutcomeToJson(first) << "\n";
        out << shardOutcomeToJson(second) << "\n";
        // A write interrupted by SIGKILL: half a record, no newline.
        out << shardOutcomeToJson(first).substr(0, 40);
    }

    std::vector<ShardOutcome> records;
    ASSERT_TRUE(loadJournal(path, records));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_TRUE(records[0].result.passed); // the last full record wins
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------

namespace
{

/** Field-by-field aggregate comparison, excluding wall-clock and
 *  completion-order artifacts. */
void
expectAggregatesIdentical(const CampaignResult &a,
                          const CampaignResult &b)
{
    EXPECT_EQ(a.totalTicks, b.totalTicks);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
    EXPECT_EQ(a.totalEpisodes, b.totalEpisodes);
    EXPECT_EQ(a.totalLoadsChecked, b.totalLoadsChecked);
    EXPECT_EQ(a.totalStoresRetired, b.totalStoresRetired);
    EXPECT_EQ(a.totalAtomicsChecked, b.totalAtomicsChecked);
    ASSERT_EQ(a.l1Union.has_value(), b.l1Union.has_value());
    ASSERT_EQ(a.l2Union.has_value(), b.l2Union.has_value());
    ASSERT_EQ(a.dirUnion.has_value(), b.dirUnion.has_value());
    if (a.l1Union) {
        EXPECT_EQ(a.l1Union->activeDigest(), b.l1Union->activeDigest());
        EXPECT_EQ(a.l1Union->totalHits(), b.l1Union->totalHits());
    }
    if (a.l2Union) {
        EXPECT_EQ(a.l2Union->activeDigest(), b.l2Union->activeDigest());
        EXPECT_EQ(a.l2Union->totalHits(), b.l2Union->totalHits());
    }
    if (a.dirUnion) {
        EXPECT_EQ(a.dirUnion->activeDigest(),
                  b.dirUnion->activeDigest());
        EXPECT_EQ(a.dirUnion->totalHits(), b.dirUnion->totalHits());
    }
}

void
resumeBitIdentityAtJobs(unsigned jobs)
{
    const std::size_t seeds = 5;
    std::string path = tempPath("resume_j" + std::to_string(jobs) +
                                ".jsonl");
    std::remove(path.c_str());

    // Uninterrupted baseline: no journal involved.
    CampaignResult baseline = runSupervisedCampaign(
        gpuSeedSweep(tinyPreset(1), 1, seeds), baseConfig(jobs));
    ASSERT_TRUE(baseline.passed);

    // Run 1: shard 2 never gets past its injected transient failures,
    // so it ends at host level (ResourceExhausted) — journaled, but
    // eligible for re-execution on resume.
    std::vector<ShardSpec> faulted =
        gpuSeedSweep(tinyPreset(1), 1, seeds);
    HostFaultInjector faults;
    faults.arm(2, HostFaultKind::Transient, /*fail_attempts=*/100);
    faults.armShards(faulted);
    SupervisorConfig cfg1 = baseConfig(jobs);
    cfg1.journalPath = path;
    cfg1.maxRetries = 1;
    cfg1.retryBackoffMs = 1;
    CampaignResult interrupted =
        runSupervisedCampaign(std::move(faulted), cfg1);
    EXPECT_FALSE(interrupted.passed);
    EXPECT_EQ(interrupted.resourceExhausted, 1u);

    // Run 2: resume with healthy shards. Completed shards come from the
    // journal; the host-failed shard re-runs.
    SupervisorConfig cfg2 = baseConfig(jobs);
    cfg2.journalPath = path;
    cfg2.resume = true;
    CampaignResult resumed = runSupervisedCampaign(
        gpuSeedSweep(tinyPreset(1), 1, seeds), cfg2);

    EXPECT_TRUE(resumed.passed);
    EXPECT_EQ(resumed.shardsRun, seeds);
    EXPECT_EQ(resumed.shardsResumed, seeds - 1);
    expectAggregatesIdentical(resumed, baseline);
    std::remove(path.c_str());
}

} // namespace

TEST(Supervisor, ResumeReproducesAggregatesBitIdenticallySerial)
{
    resumeBitIdentityAtJobs(1);
}

TEST(Supervisor, ResumeReproducesAggregatesBitIdenticallyParallel)
{
    resumeBitIdentityAtJobs(4);
}

TEST(Supervisor, SigtermMidCampaignJournalsAndResumes)
{
    const std::size_t total = 5;
    std::string path = tempPath("sigterm.jsonl");
    std::remove(path.c_str());

    std::vector<ShardSpec> shards;
    for (std::size_t i = 0; i < total; ++i)
        shards.push_back(
            syntheticShard("s" + std::to_string(i), 100 + i));
    // Shard 1 delivers SIGTERM mid-campaign, then lingers long enough
    // for the watchdog (20 ms poll) to cancel the queued shards.
    ShardSpec &sig = shards[1];
    sig.run = [inner = sig.run]() {
        std::raise(SIGTERM);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        return inner();
    };

    SupervisorConfig cfg1 = baseConfig(1);
    cfg1.journalPath = path;
    cfg1.handleSignals = true;
    CampaignResult hit = runSupervisedCampaign(std::move(shards), cfg1);
    EXPECT_TRUE(hit.interrupted);
    EXPECT_GE(hit.shardsSkipped, 1u);
    EXPECT_EQ(hit.shardsRun + hit.shardsSkipped, total);

    // Resume completes the skipped shards without re-running the
    // journaled ones.
    std::vector<ShardSpec> again;
    for (std::size_t i = 0; i < total; ++i)
        again.push_back(
            syntheticShard("s" + std::to_string(i), 100 + i));
    SupervisorConfig cfg2 = baseConfig(1);
    cfg2.journalPath = path;
    cfg2.resume = true;
    CampaignResult resumed =
        runSupervisedCampaign(std::move(again), cfg2);
    EXPECT_TRUE(resumed.passed);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.shardsRun, total);
    EXPECT_EQ(resumed.shardsResumed, hit.shardsRun);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Repro capture.
// ---------------------------------------------------------------------

TEST(Supervisor, ProtocolFailureGetsReproTraceRecorded)
{
    std::string dir = tempPath("repros_proto");
    std::vector<ShardSpec> shards;
    GpuTestPreset preset = tinyPreset(11, FaultKind::LostWriteThrough);
    preset.name = "faulty/seed11";
    shards.push_back(gpuShard(preset));

    SupervisorConfig cfg = baseConfig(1);
    cfg.reproDir = dir;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    ASSERT_FALSE(res.passed);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_FALSE(
        isHostFailureClass(res.firstFailure->failureClass));

    ReproTrace trace;
    ASSERT_TRUE(loadTraceFile(dir + "/faulty_seed11.trace", trace));
    EXPECT_FALSE(trace.result.passed);
    EXPECT_EQ(trace.result.failureClass,
              res.firstFailure->failureClass);
    EXPECT_EQ(trace.tester.seed, 11u);
    std::remove((dir + "/faulty_seed11.trace").c_str());
}

TEST(Supervisor, InProcessHostFailureGetsStubNotRerun)
{
    std::string dir = tempPath("repros_host");
    std::vector<ShardSpec> shards;
    shards.push_back(gpuShard(tinyPreset(3)));
    // Crash wrapper keeps the preset provenance but dies in-process, so
    // re-recording is unsafe — the supervisor must write the stub.
    ShardSpec &spec = shards[0];
    spec.run = []() -> ShardOutcome {
        throw std::runtime_error("host-side explosion");
    };

    SupervisorConfig cfg = baseConfig(1);
    cfg.reproDir = dir;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    ASSERT_FALSE(res.passed);
    EXPECT_EQ(res.hostCrashes, 1u);

    std::string stub_path = dir + "/tiny.hostfail.json";
    std::ifstream stub(stub_path);
    ASSERT_TRUE(stub.is_open()) << stub_path;
    std::string content((std::istreambuf_iterator<char>(stub)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"HostCrash\""), std::string::npos);
    EXPECT_NE(content.find("\"seed\":3"), std::string::npos);
    std::remove(stub_path.c_str());
}

// ---------------------------------------------------------------------
// Fork isolation (POSIX). Kept out of the Supervisor suite: sanitizer
// CI filters run these separately (fork + TSan don't mix).
// ---------------------------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)

TEST(ForkIsolation, CrashingShardBecomesHostCrash)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("ok-a", 1));
    shards.push_back(syntheticShard("boom", 66));
    shards.push_back(syntheticShard("ok-b", 3));
    HostFaultInjector faults;
    faults.arm(1, HostFaultKind::Crash);
    faults.armShards(shards);

    SupervisorConfig cfg = baseConfig(2);
    cfg.forkIsolation = true;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 3u);
    EXPECT_EQ(res.hostCrashes, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "boom");
    EXPECT_EQ(res.firstFailure->seed, 66u);
    EXPECT_EQ(res.firstFailure->failureClass, FailureClass::HostCrash);
}

TEST(ForkIsolation, HangingChildIsKilledAndTriagedAsTimeout)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("stuck", 44));
    shards.push_back(syntheticShard("ok", 2));
    HostFaultInjector faults;
    faults.arm(0, HostFaultKind::Hang);
    faults.armShards(shards);

    SupervisorConfig cfg = baseConfig(2);
    cfg.forkIsolation = true;
    cfg.shardTimeoutSeconds = 0.5;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_FALSE(res.passed);
    EXPECT_EQ(res.shardsRun, 2u);
    EXPECT_EQ(res.hostTimeouts, 1u);
    ASSERT_TRUE(res.firstFailure.has_value());
    EXPECT_EQ(res.firstFailure->name, "stuck");
    EXPECT_EQ(res.firstFailure->failureClass,
              FailureClass::HostTimeout);
}

TEST(ForkIsolation, OutcomeSurvivesThePipeBitIdentically)
{
    // One real shard, run in-process and forked: the pipe serialization
    // must not lose or distort anything the merge consumes.
    CampaignResult direct = runSupervisedCampaign(
        gpuSeedSweep(tinyPreset(2), 7, 2), baseConfig(1));
    SupervisorConfig forked_cfg = baseConfig(1);
    forked_cfg.forkIsolation = true;
    CampaignResult forked = runSupervisedCampaign(
        gpuSeedSweep(tinyPreset(2), 7, 2), forked_cfg);

    ASSERT_TRUE(direct.passed);
    ASSERT_TRUE(forked.passed);
    EXPECT_EQ(forked.shardsRun, direct.shardsRun);
    EXPECT_EQ(forked.totalTicks, direct.totalTicks);
    EXPECT_EQ(forked.totalEvents, direct.totalEvents);
    EXPECT_EQ(forked.totalEpisodes, direct.totalEpisodes);
    EXPECT_EQ(forked.totalLoadsChecked, direct.totalLoadsChecked);
    ASSERT_TRUE(forked.l1Union && direct.l1Union);
    EXPECT_EQ(forked.l1Union->activeDigest(),
              direct.l1Union->activeDigest());
    EXPECT_EQ(forked.l1Union->totalHits(), direct.l1Union->totalHits());
}

TEST(ForkIsolation, TransientRetryWorksAcrossForks)
{
    std::vector<ShardSpec> shards;
    shards.push_back(syntheticShard("flaky", 5));
    HostFaultInjector faults;
    faults.arm(0, HostFaultKind::Transient, /*fail_attempts=*/1);
    faults.armShards(shards);

    SupervisorConfig cfg = baseConfig(1);
    cfg.forkIsolation = true;
    cfg.maxRetries = 2;
    cfg.retryBackoffMs = 1;
    CampaignResult res =
        runSupervisedCampaign(std::move(shards), cfg);
    EXPECT_TRUE(res.passed);
    EXPECT_EQ(res.retriesPerformed, 1u);
    EXPECT_EQ(res.resourceExhausted, 0u);
}

#endif // defined(__unix__) || defined(__APPLE__)
