/**
 * @file
 * Property tests for episode generation: the DRF-by-construction rules
 * of Section III.A must hold for every seed and configuration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tester/episode.hh"

using namespace drf;

namespace
{

struct GenFixture
{
    GenFixture(std::uint64_t seed, unsigned actions = 40,
               unsigned lanes = 8, std::uint32_t normal_vars = 256,
               std::uint64_t range = 1 << 13)
        : rng(seed)
    {
        VariableMapConfig vcfg;
        vcfg.numSyncVars = 8;
        vcfg.numNormalVars = normal_vars;
        vcfg.addrRangeBytes = range;
        vmap = std::make_unique<VariableMap>(vcfg, rng);

        EpisodeGenConfig gcfg;
        gcfg.actionsPerEpisode = actions;
        gcfg.lanes = lanes;
        gen = std::make_unique<EpisodeGenerator>(*vmap, gcfg, rng);
    }

    Random rng;
    std::unique_ptr<VariableMap> vmap;
    std::unique_ptr<EpisodeGenerator> gen;
};

/** Visit every active lane op of @p e. */
template <typename Fn>
void
forEachOp(const Episode &e, Fn fn)
{
    for (std::uint32_t a = 0; a < e.numActions(); ++a) {
        for (std::uint32_t lane = 0; lane < e.laneCount(a); ++lane) {
            if (e.laneActive(a, lane))
                fn(a, lane);
        }
    }
}

} // namespace

class EpisodeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EpisodeProperty, SyncVarIsSynchronization)
{
    GenFixture fx(GetParam());
    for (int i = 0; i < 10; ++i) {
        Episode e = fx.gen->generate(0);
        EXPECT_TRUE(fx.vmap->isSync(e.syncVar));
        fx.gen->retire(e);
    }
}

TEST_P(EpisodeProperty, OpsTargetOnlyNormalVars)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);
    forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
        EXPECT_FALSE(fx.vmap->isSync(e.laneVar(a, lane)));
    });
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, AtMostOneWriterPerVarInEpisode)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);
    std::map<VarId, unsigned> store_count;
    forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
        if (e.laneIsStore(a, lane))
            ++store_count[e.laneVar(a, lane)];
    });
    for (const auto &[var, count] : store_count)
        EXPECT_EQ(count, 1u) << "var " << var << " stored twice";
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, ReadsOfWrittenVarOnlyByWriterLaneAfterWrite)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);

    // Track per-variable first-store position.
    std::map<VarId, std::pair<std::uint32_t, std::uint32_t>> store_at;
    forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
        if (e.laneIsStore(a, lane))
            store_at[e.laneVar(a, lane)] = {a, lane};
    });
    forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
        if (e.laneIsStore(a, lane))
            return;
        auto it = store_at.find(e.laneVar(a, lane));
        if (it == store_at.end())
            return;
        // A load of a written var must come from the writer lane and
        // after the store (cross-lane RAW would be a race).
        EXPECT_EQ(it->second.second, lane);
        EXPECT_GT(a, it->second.first);
    });
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, NoConflictsBetweenActiveEpisodes)
{
    GenFixture fx(GetParam());
    std::vector<Episode> active;
    for (int i = 0; i < 8; ++i)
        active.push_back(fx.gen->generate(i));

    // Paper rules: no two active episodes may touch a variable one of
    // them writes.
    for (std::size_t i = 0; i < active.size(); ++i) {
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (i == j)
                continue;
            for (const Episode::WriteEntry &w : active[i].writes) {
                EXPECT_FALSE(active[j].writesVar(w.var))
                    << "write-write conflict on var " << w.var;
                EXPECT_FALSE(active[j].readsVar(w.var))
                    << "write-read conflict on var " << w.var;
            }
        }
    }
    for (auto &e : active)
        fx.gen->retire(e);
}

TEST_P(EpisodeProperty, RetireAllowsReuse)
{
    // A tiny variable pool: without retirement, conflicts would starve
    // generation; with retirement, every episode gets work.
    GenFixture fx(GetParam(), 30, 4, /*normal_vars=*/16, 1 << 10);
    for (int round = 0; round < 20; ++round) {
        Episode e = fx.gen->generate(0);
        std::uint64_t ops = e.reads.size() + e.writes.size();
        EXPECT_GT(ops, 0u) << "episode starved at round " << round;
        fx.gen->retire(e);
    }
    EXPECT_EQ(fx.gen->active(), 0u);
}

TEST_P(EpisodeProperty, StoreValuesGloballyUnique)
{
    GenFixture fx(GetParam());
    std::set<std::uint32_t> values;
    for (int i = 0; i < 6; ++i) {
        Episode e = fx.gen->generate(i);
        forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
            if (e.laneIsStore(a, lane)) {
                EXPECT_TRUE(values.insert(e.laneValue(a, lane)).second);
            }
        });
        fx.gen->retire(e);
    }
}

TEST_P(EpisodeProperty, ActiveCountsConsistent)
{
    GenFixture fx(GetParam());
    Episode a = fx.gen->generate(0);
    Episode b = fx.gen->generate(1);
    EXPECT_EQ(fx.gen->active(), 2u);
    for (const Episode::WriteEntry &w : a.writes)
        EXPECT_GE(fx.gen->activeWriters(w.var), 1u);
    for (VarId var : a.reads)
        EXPECT_GE(fx.gen->activeReaders(var), 1u);
    fx.gen->retire(a);
    fx.gen->retire(b);
    EXPECT_EQ(fx.gen->active(), 0u);
    for (const Episode::WriteEntry &w : a.writes)
        EXPECT_EQ(fx.gen->activeWriters(w.var), 0u);
}

TEST_P(EpisodeProperty, EpisodeIdsIncrease)
{
    GenFixture fx(GetParam());
    Episode a = fx.gen->generate(0);
    Episode b = fx.gen->generate(0);
    EXPECT_LT(a.id, b.id);
    fx.gen->retire(a);
    fx.gen->retire(b);
}

TEST_P(EpisodeProperty, WriteLinksMatchWriteEntries)
{
    // Every active op's laneWriteIdx either links the op's variable to
    // its (unique) write entry, or is kNoWrite for a load of a variable
    // the episode never stores.
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);
    forEachOp(e, [&](std::uint32_t a, std::uint32_t lane) {
        const VarId var = e.laneVar(a, lane);
        const std::uint32_t wi = e.laneWriteIdx(a, lane);
        if (e.laneIsStore(a, lane)) {
            ASSERT_LT(wi, e.writes.size());
            EXPECT_EQ(e.writes[wi].var, var);
            EXPECT_EQ(e.writes[wi].info.lane, lane);
            EXPECT_EQ(e.writes[wi].info.value, e.laneValue(a, lane));
        } else if (wi != Episode::kNoWrite) {
            ASSERT_LT(wi, e.writes.size());
            EXPECT_EQ(e.writes[wi].var, var);
        } else {
            EXPECT_FALSE(e.writesVar(var));
        }
    });
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, GenerateIntoReusesStorageBitIdentically)
{
    // generateInto into a reused episode must produce the same stream as
    // fresh generate() calls from an identically seeded generator.
    GenFixture fresh(GetParam());
    GenFixture reused(GetParam());
    Episode scratch;
    for (int i = 0; i < 10; ++i) {
        Episode a = fresh.gen->generate(i % 3);
        reused.gen->generateInto(scratch, i % 3);
        EXPECT_EQ(a.id, scratch.id);
        EXPECT_EQ(a.syncVar, scratch.syncVar);
        ASSERT_EQ(a.numActions(), scratch.numActions());
        forEachOp(a, [&](std::uint32_t act, std::uint32_t lane) {
            ASSERT_TRUE(scratch.laneActive(act, lane));
            EXPECT_EQ(a.laneIsStore(act, lane),
                      scratch.laneIsStore(act, lane));
            EXPECT_EQ(a.laneVar(act, lane), scratch.laneVar(act, lane));
            EXPECT_EQ(a.laneValue(act, lane),
                      scratch.laneValue(act, lane));
        });
        EXPECT_EQ(a.writes.size(), scratch.writes.size());
        EXPECT_EQ(a.reads, scratch.reads);
        fresh.gen->retire(a);
        reused.gen->retire(scratch);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpisodeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));
