/**
 * @file
 * Property tests for episode generation: the DRF-by-construction rules
 * of Section III.A must hold for every seed and configuration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tester/episode.hh"

using namespace drf;

namespace
{

struct GenFixture
{
    GenFixture(std::uint64_t seed, unsigned actions = 40,
               unsigned lanes = 8, std::uint32_t normal_vars = 256,
               std::uint64_t range = 1 << 13)
        : rng(seed)
    {
        VariableMapConfig vcfg;
        vcfg.numSyncVars = 8;
        vcfg.numNormalVars = normal_vars;
        vcfg.addrRangeBytes = range;
        vmap = std::make_unique<VariableMap>(vcfg, rng);

        EpisodeGenConfig gcfg;
        gcfg.actionsPerEpisode = actions;
        gcfg.lanes = lanes;
        gen = std::make_unique<EpisodeGenerator>(*vmap, gcfg, rng);
    }

    Random rng;
    std::unique_ptr<VariableMap> vmap;
    std::unique_ptr<EpisodeGenerator> gen;
};

} // namespace

class EpisodeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EpisodeProperty, SyncVarIsSynchronization)
{
    GenFixture fx(GetParam());
    for (int i = 0; i < 10; ++i) {
        Episode e = fx.gen->generate(0);
        EXPECT_TRUE(fx.vmap->isSync(e.syncVar));
        fx.gen->retire(e);
    }
}

TEST_P(EpisodeProperty, OpsTargetOnlyNormalVars)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);
    for (const auto &action : e.actions) {
        for (const auto &op : action.lanes) {
            if (op) {
                EXPECT_FALSE(fx.vmap->isSync(op->var));
            }
        }
    }
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, AtMostOneWriterPerVarInEpisode)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);
    std::map<VarId, unsigned> store_count;
    for (const auto &action : e.actions) {
        for (const auto &op : action.lanes) {
            if (op && op->kind == LaneOp::Kind::Store)
                ++store_count[op->var];
        }
    }
    for (const auto &[var, count] : store_count)
        EXPECT_EQ(count, 1u) << "var " << var << " stored twice";
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, ReadsOfWrittenVarOnlyByWriterLaneAfterWrite)
{
    GenFixture fx(GetParam());
    Episode e = fx.gen->generate(0);

    // Track per-variable first-store position.
    std::map<VarId, std::pair<std::size_t, unsigned>> store_at;
    for (std::size_t i = 0; i < e.actions.size(); ++i) {
        for (unsigned lane = 0; lane < e.actions[i].lanes.size(); ++lane) {
            const auto &op = e.actions[i].lanes[lane];
            if (op && op->kind == LaneOp::Kind::Store)
                store_at[op->var] = {i, lane};
        }
    }
    for (std::size_t i = 0; i < e.actions.size(); ++i) {
        for (unsigned lane = 0; lane < e.actions[i].lanes.size(); ++lane) {
            const auto &op = e.actions[i].lanes[lane];
            if (!op || op->kind != LaneOp::Kind::Load)
                continue;
            auto it = store_at.find(op->var);
            if (it == store_at.end())
                continue;
            // A load of a written var must come from the writer lane and
            // after the store (cross-lane RAW would be a race).
            EXPECT_EQ(it->second.second, lane);
            EXPECT_GT(i, it->second.first);
        }
    }
    fx.gen->retire(e);
}

TEST_P(EpisodeProperty, NoConflictsBetweenActiveEpisodes)
{
    GenFixture fx(GetParam());
    std::vector<Episode> active;
    for (int i = 0; i < 8; ++i)
        active.push_back(fx.gen->generate(i));

    // Paper rules: no two active episodes may touch a variable one of
    // them writes.
    for (std::size_t i = 0; i < active.size(); ++i) {
        for (std::size_t j = 0; j < active.size(); ++j) {
            if (i == j)
                continue;
            for (const auto &[var, info] : active[i].writes) {
                EXPECT_EQ(active[j].writes.count(var), 0u)
                    << "write-write conflict on var " << var;
                EXPECT_EQ(active[j].reads.count(var), 0u)
                    << "write-read conflict on var " << var;
            }
        }
    }
    for (auto &e : active)
        fx.gen->retire(e);
}

TEST_P(EpisodeProperty, RetireAllowsReuse)
{
    // A tiny variable pool: without retirement, conflicts would starve
    // generation; with retirement, every episode gets work.
    GenFixture fx(GetParam(), 30, 4, /*normal_vars=*/16, 1 << 10);
    for (int round = 0; round < 20; ++round) {
        Episode e = fx.gen->generate(0);
        std::uint64_t ops = e.reads.size() + e.writes.size();
        EXPECT_GT(ops, 0u) << "episode starved at round " << round;
        fx.gen->retire(e);
    }
    EXPECT_EQ(fx.gen->active(), 0u);
}

TEST_P(EpisodeProperty, StoreValuesGloballyUnique)
{
    GenFixture fx(GetParam());
    std::set<std::uint32_t> values;
    for (int i = 0; i < 6; ++i) {
        Episode e = fx.gen->generate(i);
        for (const auto &action : e.actions) {
            for (const auto &op : action.lanes) {
                if (op && op->kind == LaneOp::Kind::Store) {
                    EXPECT_TRUE(values.insert(op->storeValue).second);
                }
            }
        }
        fx.gen->retire(e);
    }
}

TEST_P(EpisodeProperty, ActiveCountsConsistent)
{
    GenFixture fx(GetParam());
    Episode a = fx.gen->generate(0);
    Episode b = fx.gen->generate(1);
    EXPECT_EQ(fx.gen->active(), 2u);
    for (const auto &[var, info] : a.writes)
        EXPECT_GE(fx.gen->activeWriters(var), 1u);
    for (VarId var : a.reads)
        EXPECT_GE(fx.gen->activeReaders(var), 1u);
    fx.gen->retire(a);
    fx.gen->retire(b);
    EXPECT_EQ(fx.gen->active(), 0u);
    for (const auto &[var, info] : a.writes)
        EXPECT_EQ(fx.gen->activeWriters(var), 0u);
}

TEST_P(EpisodeProperty, EpisodeIdsIncrease)
{
    GenFixture fx(GetParam());
    Episode a = fx.gen->generate(0);
    Episode b = fx.gen->generate(0);
    EXPECT_LT(a.id, b.id);
    fx.gen->retire(a);
    fx.gen->retire(b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpisodeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));
