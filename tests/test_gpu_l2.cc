/**
 * @file
 * Directed tests for the VIPER GPU L2 ("TCC") controller: hit/miss
 * flows, write-through merging, atomic serialization, replacement, and
 * the probe-invalidations only CPU traffic can trigger.
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/apu_system.hh"

using namespace drf;

namespace
{

class L2Harness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ApuSystemConfig cfg;
        cfg.numCus = 2;
        cfg.numCpuCaches = 1;
        cfg.l1.sizeBytes = 256;
        cfg.l1.assoc = 2;
        cfg.l2.sizeBytes = 512; // 2 sets x 4 ways: replacement pressure
        cfg.l2.assoc = 4;
        sys = std::make_unique<ApuSystem>(cfg);
        for (unsigned cu = 0; cu < 2; ++cu) {
            sys->l1(cu).bindCoreResponse([this, cu](Packet pkt) {
                gpuResponses[cu].push_back(std::move(pkt));
            });
        }
        sys->cpuCache(0).bindCoreResponse([this](Packet pkt) {
            cpuResponses.push_back(std::move(pkt));
        });
    }

    void
    gpuLoad(unsigned cu, Addr addr)
    {
        Packet pkt;
        pkt.type = MsgType::LoadReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.id = nextId++;
        sys->l1(cu).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    void
    gpuStore(unsigned cu, Addr addr, std::uint32_t value)
    {
        Packet pkt;
        pkt.type = MsgType::StoreReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.setValueLE(value, 4);
        pkt.id = nextId++;
        sys->l1(cu).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    void
    gpuAtomic(unsigned cu, Addr addr, std::uint64_t operand)
    {
        Packet pkt;
        pkt.type = MsgType::AtomicReq;
        pkt.addr = addr;
        pkt.size = 4;
        pkt.atomicOperand = operand;
        pkt.id = nextId++;
        sys->l1(cu).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    void
    cpuStore(Addr addr, std::uint8_t value)
    {
        Packet pkt;
        pkt.type = MsgType::StoreReq;
        pkt.addr = addr;
        pkt.size = 1;
        pkt.setValueLE(value, 1);
        pkt.id = nextId++;
        sys->cpuCache(0).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    std::uint64_t
    l2Count(GpuL2Cache::Event ev, GpuL2Cache::State st)
    {
        return sys->l2().coverage().count(ev, st);
    }

    std::uint32_t
    value32(const Packet &pkt)
    {
        return static_cast<std::uint32_t>(pkt.valueLE());
    }

    std::unique_ptr<ApuSystem> sys;
    std::vector<Packet> gpuResponses[2];
    std::vector<Packet> cpuResponses;
    PacketId nextId = 1;
};

} // namespace

TEST_F(L2Harness, MissFetchesFromDirectory)
{
    gpuLoad(0, 0x1000);
    EXPECT_EQ(l2Count(GpuL2Cache::EvRdBlk, GpuL2Cache::StI), 1u);
    EXPECT_EQ(l2Count(GpuL2Cache::EvData, GpuL2Cache::StIV), 1u);
    EXPECT_EQ(sys->l2().stats().value("read_misses"), 1u);
    EXPECT_EQ(sys->memory().stats().value("reads"), 1u);
}

TEST_F(L2Harness, SecondCuHitsInL2)
{
    gpuLoad(0, 0x1000);
    gpuLoad(1, 0x1000); // different L1, same L2 line
    EXPECT_EQ(l2Count(GpuL2Cache::EvRdBlk, GpuL2Cache::StV), 1u);
    EXPECT_EQ(sys->l2().stats().value("read_hits"), 1u);
    EXPECT_EQ(sys->memory().stats().value("reads"), 1u); // no refetch
}

TEST_F(L2Harness, WriteThroughReachesMemory)
{
    gpuStore(0, 0x2000, 0xCAFEBABE);
    EXPECT_EQ(l2Count(GpuL2Cache::EvWrVicBlk, GpuL2Cache::StI), 1u);
    EXPECT_EQ(sys->memory().stats().value("writes"), 1u);
    auto line = sys->memory().peekLine(0x2000);
    EXPECT_EQ(line[0], 0xBE);
    EXPECT_EQ(line[3], 0xCA);
}

TEST_F(L2Harness, WriteThroughMergesIntoCachedLine)
{
    gpuLoad(0, 0x2000);                // L2 now V
    gpuStore(1, 0x2004, 0x12345678);   // other CU writes same line
    EXPECT_EQ(l2Count(GpuL2Cache::EvWrVicBlk, GpuL2Cache::StV), 1u);
    // CU0 invalidates (fresh episode semantics) and re-reads via L2 hit.
    Packet pkt;
    pkt.type = MsgType::LoadReq;
    pkt.addr = 0x2004;
    pkt.size = 4;
    pkt.acquire = true; // flush the stale L1 copy
    pkt.id = nextId++;
    sys->l1(0).coreRequest(std::move(pkt));
    sys->eventq().run();
    EXPECT_EQ(value32(gpuResponses[0].back()), 0x12345678u);
}

TEST_F(L2Harness, CrossCuStoreThenLoadWithAcquire)
{
    gpuStore(0, 0x3000, 777);
    gpuLoad(1, 0x3000);
    EXPECT_EQ(value32(gpuResponses[1].back()), 777u);
}

TEST_F(L2Harness, AtomicsPerformedBelowL2)
{
    gpuAtomic(0, 0x4000, 10);
    EXPECT_EQ(gpuResponses[0].back().atomicResult, 0u);
    EXPECT_EQ(l2Count(GpuL2Cache::EvAtomic, GpuL2Cache::StI), 1u);
    EXPECT_EQ(l2Count(GpuL2Cache::EvAtomicD, GpuL2Cache::StA), 1u);

    gpuAtomic(1, 0x4000, 1);
    EXPECT_EQ(gpuResponses[1].back().atomicResult, 10u);
}

TEST_F(L2Harness, AtomicCachesResultLine)
{
    gpuAtomic(0, 0x4000, 42);
    // The AtomicD data payload was cached: a read hits in L2.
    gpuLoad(1, 0x4000);
    EXPECT_EQ(sys->l2().stats().value("read_hits"), 1u);
    EXPECT_EQ(value32(gpuResponses[1].back()), 42u);
}

TEST_F(L2Harness, ConcurrentAtomicsSerializeWithUniqueReturns)
{
    // Two atomics from different CUs in flight at once.
    Packet a;
    a.type = MsgType::AtomicReq;
    a.addr = 0x5000;
    a.size = 4;
    a.atomicOperand = 1;
    a.id = nextId++;
    Packet b = a;
    b.id = nextId++;
    sys->l1(0).coreRequest(std::move(a));
    sys->l1(1).coreRequest(std::move(b));
    sys->eventq().run();
    std::uint64_t r0 = gpuResponses[0].back().atomicResult;
    std::uint64_t r1 = gpuResponses[1].back().atomicResult;
    EXPECT_NE(r0, r1);
    EXPECT_EQ(std::min(r0, r1), 0u);
    EXPECT_EQ(std::max(r0, r1), 1u);
}

TEST_F(L2Harness, ReplacementUnderPressure)
{
    // 512 B, 4-way, 64 B lines => 2 sets. Load 6 lines of one set.
    for (int i = 0; i < 6; ++i)
        gpuLoad(0, static_cast<Addr>(i) * 128); // stride 2 lines: set 0
    EXPECT_GE(l2Count(GpuL2Cache::EvL2Repl, GpuL2Cache::StV), 1u);
    EXPECT_GE(sys->l2().stats().value("replacements"), 1u);
}

TEST_F(L2Harness, CpuExclusiveStoreProbesGpuL2)
{
    gpuLoad(0, 0x6000);          // GPU L2 caches the line (gpuMayHave)
    cpuStore(0x6000, 0x99);      // CPU Getx -> directory probes GPU L2
    EXPECT_EQ(l2Count(GpuL2Cache::EvPrbInv, GpuL2Cache::StV), 1u);
    EXPECT_EQ(sys->l2().stats().value("probes"), 1u);
    // The GPU L2 copy is gone: the next GPU read must miss and see the
    // CPU's value after the CPU writes back (force via second read).
    EXPECT_EQ(sys->l2().array().findEntry(0x6000), nullptr);
}

TEST_F(L2Harness, StalePrbInvAckedInI)
{
    gpuLoad(0, 0x7000);
    // Evict the line from L2 via pressure in its set.
    for (int i = 1; i < 6; ++i)
        gpuLoad(0, 0x7000 + static_cast<Addr>(i) * 128);
    // The directory still believes the GPU may have 0x7000.
    cpuStore(0x7000, 0x11);
    EXPECT_EQ(l2Count(GpuL2Cache::EvPrbInv, GpuL2Cache::StI), 1u);
}

TEST_F(L2Harness, GpuReadAfterCpuWriteSeesCpuData)
{
    cpuStore(0x8000, 0x77);  // CPU owns the line dirty (CM)
    gpuLoad(0, 0x8000);      // directory must pull data from the CPU
    EXPECT_EQ(gpuResponses[0].back().data[0], 0x77);
}

TEST_F(L2Harness, WBAckStatesObserved)
{
    gpuStore(0, 0x9000, 5); // line I at L2 throughout
    EXPECT_EQ(l2Count(GpuL2Cache::EvWBAck, GpuL2Cache::StI), 1u);

    gpuLoad(0, 0xA000);
    gpuStore(0, 0xA000, 6); // line V at L2 when the WBAck returns
    EXPECT_EQ(l2Count(GpuL2Cache::EvWBAck, GpuL2Cache::StV), 1u);
}
