/**
 * @file
 * Trace record/replay/shrink subsystem tests.
 *
 * The oracles are the same pinned golden digests as test_msg_goldens
 * (golden_digest.hh): recording must not perturb a run, and a replay
 * from the recorded episode schedule must reproduce the original —
 * result, report and every coverage count — bit for bit. On top of
 * that: recorder stream sanity, the binary trace-file round trip, the
 * ddmin shrinker (both the ≤10% size target and failure-class
 * preservation), the JSON bug report, and the Chrome-trace exporter.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>

#include "golden_digest.hh"
#include "trace/chrome_trace.hh"
#include "trace/repro.hh"
#include "trace/shrink.hh"
#include "trace/trace_file.hh"

using namespace drf;
using namespace drf::testing;

namespace
{

/** Record one golden-config run, capturing digest + schedule + events. */
struct RecordedRun
{
    ReproTrace trace;
    std::uint64_t digest = 0;
};

RecordedRun
recordGolden(CacheSizeClass cache_class, std::uint64_t seed,
             FaultKind fault = FaultKind::None,
             bool capture_events = true, unsigned trigger_pct = 100,
             unsigned episodes_per_wf = 0)
{
    RecordedRun run;
    run.trace.system = makeGpuSystemConfig(cache_class, 4);
    run.trace.system.fault = fault;
    run.trace.system.faultTriggerPct = trigger_pct;
    run.trace.tester = goldenGpuConfig(seed);
    if (episodes_per_wf != 0)
        run.trace.tester.episodesPerWf = episodes_per_wf;

    ApuSystem sys(run.trace.system);
    TraceRecorder events;
    if (capture_events)
        sys.attachTrace(events);

    GpuTesterConfig run_cfg = run.trace.tester;
    run_cfg.record = &run.trace.schedule;
    GpuTester tester(sys, run_cfg);
    run.trace.result = tester.run();
    run.trace.events = events.events();
    run.digest = gpuDigestOf(sys, run.trace.result);
    return run;
}

/** Replay a schedule and digest the replay run end to end. */
std::uint64_t
replayDigest(const ReproTrace &trace, const EpisodeSchedule &schedule)
{
    ApuSystem sys(trace.system);
    GpuTesterConfig run_cfg = trace.tester;
    run_cfg.record = nullptr;
    run_cfg.replay = &schedule;
    GpuTester tester(sys, run_cfg);
    TesterResult r = tester.run();
    return gpuDigestOf(sys, r);
}

} // namespace

// Recording (episode schedule + full event trace) must not change the
// run at all: the digest must still equal the pinned golden.
TEST(Trace, RecordingDoesNotPerturbPassingRun)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 9);
    checkGolden("Trace.RecordSmallSeed9", run.digest,
                kGoldenGpuSmallSeed9);
    EXPECT_TRUE(run.trace.result.passed);
    EXPECT_FALSE(run.trace.schedule.empty());
    EXPECT_FALSE(run.trace.events.empty());
}

TEST(Trace, RecordingDoesNotPerturbFailingRun)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 11,
                                   FaultKind::LostWriteThrough);
    checkGolden("Trace.RecordLostWriteThroughSeed11", run.digest,
                kGoldenGpuLostWriteThroughSeed11);
    EXPECT_FALSE(run.trace.result.passed);
    EXPECT_EQ(run.trace.result.failureClass,
              FailureClass::ValueMismatch);
}

// Replaying the complete recorded schedule reproduces the original run
// bit-identically, checked against the same pinned goldens.
TEST(Trace, ReplayReproducesPassingRun)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 23,
                                   FaultKind::None,
                                   /*capture_events=*/false);
    checkGolden("Trace.RecordSmallSeed23", run.digest,
                kGoldenGpuSmallSeed23);
    checkGolden("Trace.ReplaySmallSeed23",
                replayDigest(run.trace, run.trace.schedule),
                kGoldenGpuSmallSeed23);
}

TEST(Trace, ReplayReproducesFailingRun)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 11,
                                   FaultKind::LostWriteThrough,
                                   /*capture_events=*/false);
    checkGolden("Trace.ReplayLostWriteThroughSeed11",
                replayDigest(run.trace, run.trace.schedule),
                kGoldenGpuLostWriteThroughSeed11);

    // The high-level helper agrees on the replayed outcome.
    TesterResult replayed = replayGpuRun(run.trace);
    EXPECT_EQ(replayed.passed, run.trace.result.passed);
    EXPECT_EQ(replayed.failureClass, run.trace.result.failureClass);
    EXPECT_EQ(replayed.report, run.trace.result.report);
    EXPECT_EQ(replayed.ticks, run.trace.result.ticks);
}

// The recorder captures every stream (episodes, messages, transitions)
// in non-decreasing tick order.
TEST(Trace, RecorderCapturesAllStreams)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 9);
    const std::vector<TraceEvent> &events = run.trace.events;
    ASSERT_FALSE(events.empty());

    std::size_t counts[traceEventKindCount] = {};
    Tick prev = 0;
    for (const TraceEvent &ev : events) {
        ASSERT_LT(static_cast<std::size_t>(ev.kind), std::size(counts));
        ++counts[static_cast<std::size_t>(ev.kind)];
        EXPECT_GE(ev.tick, prev) << "trace not in execution order";
        prev = ev.tick;
    }
    EXPECT_GT(counts[size_t(TraceEventKind::EpisodeIssue)], 0u);
    EXPECT_GT(counts[size_t(TraceEventKind::EpisodeRetire)], 0u);
    EXPECT_GT(counts[size_t(TraceEventKind::MsgSend)], 0u);
    EXPECT_GT(counts[size_t(TraceEventKind::MsgDeliver)], 0u);
    EXPECT_GT(counts[size_t(TraceEventKind::Transition)], 0u);

    // Every issued episode retires in a passing run.
    EXPECT_EQ(counts[size_t(TraceEventKind::EpisodeIssue)],
              counts[size_t(TraceEventKind::EpisodeRetire)]);
    EXPECT_EQ(counts[size_t(TraceEventKind::EpisodeIssue)],
              run.trace.schedule.size());

    // v4: every episode also completes one acquire and one release.
    EXPECT_EQ(counts[size_t(TraceEventKind::SyncAcquire)],
              run.trace.schedule.size());
    EXPECT_EQ(counts[size_t(TraceEventKind::SyncRelease)],
              run.trace.schedule.size());
}

// The binary trace file round-trips losslessly, and the loaded trace
// replays to the recorded outcome.
TEST(Trace, TraceFileRoundTrip)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 11,
                                   FaultKind::LostWriteThrough);
    run.trace.presetName = "golden_small_seed11";

    std::stringstream buf;
    ASSERT_TRUE(saveTrace(buf, run.trace));

    ReproTrace loaded;
    ASSERT_TRUE(loadTrace(buf, loaded));

    EXPECT_EQ(loaded.presetName, run.trace.presetName);
    EXPECT_EQ(loaded.system.fault, run.trace.system.fault);
    EXPECT_EQ(loaded.system.numCus, run.trace.system.numCus);
    EXPECT_EQ(loaded.tester.seed, run.trace.tester.seed);
    EXPECT_EQ(loaded.result.report, run.trace.result.report);
    EXPECT_EQ(loaded.result.failureClass,
              run.trace.result.failureClass);
    ASSERT_EQ(loaded.schedule.size(), run.trace.schedule.size());
    for (std::size_t i = 0; i < loaded.schedule.size(); ++i) {
        const Episode &a = loaded.schedule.episodes[i];
        const Episode &b = run.trace.schedule.episodes[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.wavefrontId, b.wavefrontId);
        EXPECT_EQ(a.syncVar, b.syncVar);
        EXPECT_EQ(a.numActions(), b.numActions());
        EXPECT_EQ(a.writes.size(), b.writes.size());
        EXPECT_EQ(a.reads.size(), b.reads.size());
    }
    ASSERT_EQ(loaded.events.size(), run.trace.events.size());

    checkGolden("Trace.RoundTripReplay",
                replayDigest(loaded, loaded.schedule),
                kGoldenGpuLostWriteThroughSeed11);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream buf("not a trace file at all");
    ReproTrace loaded;
    EXPECT_FALSE(loadTrace(buf, loaded));
}

// The ddmin shrinker: the minimized schedule still fails with the same
// failure class, passes with the fault disarmed (so the failure really
// is the injected bug), and is at most 10% of the original episodes —
// the acceptance bar for the repro workflow.
TEST(Trace, ShrinkerMinimizesLostWriteThrough)
{
    // A low trigger rate is the realistic bug-hunting regime: the run
    // survives long enough to issue a large schedule before the fault
    // bites, which is exactly the haystack the shrinker exists for.
    RecordedRun run = recordGolden(CacheSizeClass::Small, 42,
                                   FaultKind::LostWriteThrough,
                                   /*capture_events=*/false,
                                   /*trigger_pct=*/20,
                                   /*episodes_per_wf=*/12);
    ASSERT_FALSE(run.trace.result.passed);
    const std::size_t original = run.trace.schedule.size();
    ASSERT_GT(original, 0u);

    ShrinkStats stats;
    EpisodeSchedule shrunk = shrinkRepro(run.trace, {}, &stats);

    EXPECT_EQ(stats.originalEpisodes, original);
    EXPECT_EQ(stats.shrunkEpisodes, shrunk.size());
    EXPECT_GT(stats.probes, 0u);
    EXPECT_LE(shrunk.size(), (original + 9) / 10)
        << "shrinker left " << shrunk.size() << " of " << original
        << " episodes";

    TesterResult armed = replayGpuRun(run.trace, shrunk);
    EXPECT_FALSE(armed.passed);
    EXPECT_EQ(armed.failureClass, run.trace.result.failureClass);

    TesterResult disarmed =
        replayGpuRun(run.trace, shrunk, /*arm_fault=*/false);
    EXPECT_TRUE(disarmed.passed)
        << "shrunk repro fails even without the fault: "
        << disarmed.report;

    // The JSON bug report carries the minimized schedule and the
    // Table V-style dump.
    std::string json = reproToJson(run.trace, shrunk, armed);
    EXPECT_NE(json.find("\"fault\":\"LostWriteThrough\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failure_class\":\"ValueMismatch\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schedule\""), std::string::npos);
    EXPECT_NE(json.find("\"report\""), std::string::npos);
}

TEST(Trace, ShrinkerAlsoMinimizesAtomicViolation)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 42,
                                   FaultKind::NonAtomicRmw,
                                   /*capture_events=*/false);
    ASSERT_FALSE(run.trace.result.passed);
    ASSERT_EQ(run.trace.result.failureClass,
              FailureClass::AtomicViolation);

    EpisodeSchedule shrunk = shrinkRepro(run.trace);
    EXPECT_LE(shrunk.size(), (run.trace.schedule.size() + 9) / 10);

    TesterResult armed = replayGpuRun(run.trace, shrunk);
    EXPECT_FALSE(armed.passed);
    EXPECT_EQ(armed.failureClass, FailureClass::AtomicViolation);
}

// Chrome-trace export: structurally a Trace Event Format JSON with
// episode slices and message/transition instants.
TEST(Trace, ChromeTraceExport)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 9);
    std::string json =
        chromeTraceJson(run.trace.events);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("gpu.l1[0]"), std::string::npos);
}

namespace
{

std::size_t
countSyncEvents(const std::vector<TraceEvent> &events)
{
    std::size_t n = 0;
    for (const TraceEvent &ev : events) {
        if (ev.kind == TraceEventKind::SyncAcquire ||
            ev.kind == TraceEventKind::SyncRelease) {
            ++n;
        }
    }
    return n;
}

} // namespace

// Load compatibility across the whole DRFTRC01 version history: a
// trace saved at any version v1..current loads back with the
// version-appropriate subset (guidance from v2, scope config from v3,
// sync markers from v4) and still replays to the recorded outcome.
TEST(Trace, VersionedSaveLoadCompat)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 11,
                                   FaultKind::LostWriteThrough);
    run.trace.presetName = "compat";
    run.trace.guidance = "[{\"round\":0}]";
    const std::size_t sync_events = countSyncEvents(run.trace.events);
    ASSERT_GT(sync_events, 0u);

    for (std::uint32_t v = 1; v <= traceFormatVersion(); ++v) {
        std::stringstream buf;
        ASSERT_TRUE(saveTrace(buf, run.trace, v)) << "version " << v;

        ReproTrace loaded;
        std::uint32_t found = 0;
        ASSERT_EQ(loadTraceStatus(buf, loaded, &found),
                  TraceLoadStatus::Ok)
            << "version " << v;
        EXPECT_EQ(found, v);

        ASSERT_EQ(loaded.schedule.size(), run.trace.schedule.size());
        EXPECT_EQ(loaded.guidance,
                  v >= 2 ? run.trace.guidance : std::string());
        const std::size_t loaded_sync = countSyncEvents(loaded.events);
        EXPECT_EQ(loaded_sync, v >= 4 ? sync_events : 0u)
            << "version " << v;
        // Non-sync streams survive every version.
        EXPECT_EQ(loaded.events.size() - loaded_sync,
                  run.trace.events.size() - sync_events);

        TesterResult replayed = replayGpuRun(loaded);
        EXPECT_EQ(replayed.failureClass, run.trace.result.failureClass)
            << "version " << v;
    }
}

// A file whose header claims a version newer than this build must be
// rejected with the *distinct* FutureVersion status (reported with the
// found version), not the generic corrupt/garbage failure.
TEST(Trace, FutureVersionRejectedDistinctly)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 7);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(buf, run.trace));

    // The version field is the 8 bytes after the 8-byte magic.
    std::string bytes = buf.str();
    ASSERT_GT(bytes.size(), 16u);
    const std::uint32_t future = traceFormatVersion() + 37;
    for (int i = 0; i < 8; ++i)
        bytes[8 + i] = static_cast<char>((std::uint64_t(future) >>
                                          (8 * i)) & 0xff);

    std::stringstream patched(bytes);
    ReproTrace loaded;
    std::uint32_t found = 0;
    EXPECT_EQ(loadTraceStatus(patched, loaded, &found),
              TraceLoadStatus::FutureVersion);
    EXPECT_EQ(found, future);
    EXPECT_STREQ(traceLoadStatusName(TraceLoadStatus::FutureVersion),
                 "FutureVersion");

    // The legacy bool API must still fail (it just can't say why).
    std::stringstream again(bytes);
    EXPECT_FALSE(loadTrace(again, loaded));
}

// The status API separates "not a trace" from "truncated trace".
TEST(Trace, LoadStatusDistinguishesFailureModes)
{
    ReproTrace loaded;

    std::stringstream garbage("definitely not a trace");
    EXPECT_EQ(loadTraceStatus(garbage, loaded),
              TraceLoadStatus::BadMagic);

    RecordedRun run = recordGolden(CacheSizeClass::Small, 7);
    std::stringstream buf;
    ASSERT_TRUE(saveTrace(buf, run.trace));
    std::string bytes = buf.str();
    std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
    EXPECT_EQ(loadTraceStatus(truncated, loaded),
              TraceLoadStatus::Corrupt);
}

// A perturbed replay is still deterministic: the same perturbation
// twice gives bit-identical outcomes, and an empty perturbation is
// byte-for-byte the unperturbed replay.
TEST(Trace, PerturbedReplayDeterministic)
{
    RecordedRun run = recordGolden(CacheSizeClass::Small, 9);
    ASSERT_TRUE(run.trace.result.passed);

    SchedulePerturbation none;
    TesterResult base =
        replayGpuRun(run.trace, run.trace.schedule, true, nullptr,
                     &none);
    EXPECT_EQ(base.ticks, run.trace.result.ticks);

    SchedulePerturbation delay;
    delay.add(run.trace.schedule.episodes.front().id, 500);
    TesterResult p1 = replayGpuRun(run.trace, run.trace.schedule, true,
                                   nullptr, &delay);
    TesterResult p2 = replayGpuRun(run.trace, run.trace.schedule, true,
                                   nullptr, &delay);
    EXPECT_EQ(p1.ticks, p2.ticks);
    EXPECT_EQ(p1.failureClass, p2.failureClass);
    EXPECT_EQ(p1.report, p2.report);
    // The delay really steered the run into a different interleaving.
    EXPECT_NE(p1.ticks, base.ticks);
}
