/**
 * @file
 * Unit tests for the deterministic event queue, including the inline
 * (small-buffer) event representation, the same-tick FIFO fast path,
 * and the capture-block recycling pool.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_event.hh"

using namespace drf;

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
    EXPECT_TRUE(eq.run());
}

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] {
            ++fired;
            eq.scheduleAfter(5, [&] { ++fired; });
        });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 11u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventAtExactLimitRuns)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(50, [&] { fired = true; });
    EXPECT_TRUE(eq.run(50));
    EXPECT_TRUE(fired);
}

TEST(EventQueue, RunEventsBounded)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, [&] { ++fired; });
    EXPECT_EQ(eq.runEvents(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.runEvents(100), 2u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.runEvents(1);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, EventsExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(7, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 107u);
}

TEST(EventQueue, ScheduleNowRunsThisTickInOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        eq.scheduleNow([&] { order.push_back(1); });
        eq.scheduleNow([&] { order.push_back(2); });
    });
    eq.schedule(11, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 11u);
}

TEST(EventQueue, SameTickMixesHeapAndFifoBySeq)
{
    // Events pre-scheduled for tick T (heap path) must still fire
    // before events scheduled *at* tick T (FIFO path), because their
    // sequence numbers are older.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.scheduleNow([&] { order.push_back(3); }); // seq after 1, 2
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, RunLimitBoundaryThenScheduleAtLimit)
{
    // After run(limit) stops, curTick == limit; scheduling at exactly
    // that tick must be legal and execute on the next run.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(1); });
    EXPECT_FALSE(eq.run(60));
    EXPECT_EQ(eq.curTick(), 60u);
    eq.schedule(60, [&] { order.push_back(0); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, ResetAfterPartialDrainAllowsReuse)
{
    EventQueue eq;
    int stale = 0;
    for (int i = 0; i < 8; ++i)
        eq.schedule(i + 1, [&] { ++stale; });
    // Mix in large captures so the reset also exercises block release.
    std::array<char, 128> big{};
    eq.schedule(9, [big, &stale] { stale += big[0] + 1; });
    EXPECT_EQ(eq.runEvents(3), 3u);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);

    int fresh = 0;
    eq.schedule(2, [&] { ++fresh; });
    eq.scheduleNow([&] { ++fresh; });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(stale, 3);
    EXPECT_EQ(fresh, 2);
    EXPECT_EQ(eq.curTick(), 2u);
}

TEST(EventQueue, LargeCapturesExecuteCorrectly)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    EXPECT_TRUE(eq.run());
    std::uint64_t expect = 0;
    for (std::uint64_t v : payload)
        expect += v;
    EXPECT_EQ(sum, expect);
}

TEST(EventQueue, PendingCapturesDestroyedOnResetAndDestruction)
{
    auto token = std::make_shared<int>(42);
    {
        EventQueue eq;
        eq.schedule(10, [token] { (void)*token; });
        std::array<char, 100> pad{};
        eq.schedule(20, [token, pad] { (void)pad; });
        EXPECT_EQ(token.use_count(), 3);
        eq.reset();
        EXPECT_EQ(token.use_count(), 1);

        eq.schedule(5, [token] { (void)*token; });
        EXPECT_EQ(token.use_count(), 2);
        // Queue destruction must release the capture too.
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineEvent, SmallCapturesStayInline)
{
    EventBlockPool pool;
    int hits = 0;
    InlineEvent small([&hits] { ++hits; }, pool);
    EXPECT_TRUE(small.storedInline());
    small();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(pool.cachedBlocks(), 0u);
}

TEST(InlineEvent, LargeCapturesSpillToPoolAndRecycle)
{
    EventBlockPool pool;
    std::array<char, 64> big{};
    {
        InlineEvent ev([big] { (void)big; }, pool);
        EXPECT_FALSE(ev.storedInline());
        ev();
        EXPECT_EQ(pool.cachedBlocks(), 0u);
    }
    // Destruction parks the block; the next large event reuses it.
    EXPECT_EQ(pool.cachedBlocks(), 1u);
    {
        InlineEvent ev([big] { (void)big; }, pool);
        EXPECT_EQ(pool.cachedBlocks(), 0u);
    }
    EXPECT_EQ(pool.cachedBlocks(), 1u);
}

TEST(InlineEvent, MoveTransfersOwnership)
{
    EventBlockPool pool;
    auto token = std::make_shared<int>(7);
    InlineEvent a([token] { (void)*token; }, pool);
    EXPECT_EQ(token.use_count(), 2);
    InlineEvent b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(token.use_count(), 2);
    b = InlineEvent();
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, InterleavedSchedulingStaysDeterministic)
{
    // Two runs with identical scheduling produce identical sequences.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 20; ++i) {
            eq.schedule((i * 7) % 5, [&order, i, &eq] {
                order.push_back(i);
                if (i % 3 == 0)
                    eq.scheduleAfter(2, [&order, i] {
                        order.push_back(100 + i);
                    });
            });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}
