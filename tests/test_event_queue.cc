/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace drf;

TEST(EventQueue, StartsAtTickZeroEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
    EXPECT_TRUE(eq.run());
}

TEST(EventQueue, ExecutesInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] {
            ++fired;
            eq.scheduleAfter(5, [&] { ++fired; });
        });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 11u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventAtExactLimitRuns)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(50, [&] { fired = true; });
    EXPECT_TRUE(eq.run(50));
    EXPECT_TRUE(fired);
}

TEST(EventQueue, RunEventsBounded)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i + 1, [&] { ++fired; });
    EXPECT_EQ(eq.runEvents(3), 3u);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.runEvents(100), 2u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.runEvents(1);
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
}

TEST(EventQueue, EventsExecutedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 7u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&] {
        eq.scheduleAfter(7, [&] { seen = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(seen, 107u);
}

TEST(EventQueue, InterleavedSchedulingStaysDeterministic)
{
    // Two runs with identical scheduling produce identical sequences.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 20; ++i) {
            eq.schedule((i * 7) % 5, [&order, i, &eq] {
                order.push_back(i);
                if (i % 3 == 0)
                    eq.scheduleAfter(2, [&order, i] {
                        order.push_back(100 + i);
                    });
            });
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}
