/**
 * @file
 * Integration tests for the DRF GPU tester: it must pass on a correct
 * protocol under many seeds and configurations, detect every injected
 * bug class, and be fully deterministic under a seed.
 */

#include <gtest/gtest.h>

#include "sim/logger.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

GpuTesterConfig
smallTesterConfig(std::uint64_t seed, unsigned episodes = 6,
                  unsigned actions = 30)
{
    GpuTesterConfig cfg = makeGpuTesterConfig(actions, episodes,
                                              /*atomic_locs=*/10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.wfsPerCu = 2;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14; // dense: false sharing
    return cfg;
}

TesterResult
runOnce(CacheSizeClass cache_class, std::uint64_t seed,
        FaultKind fault = FaultKind::None, unsigned trigger_pct = 100,
        unsigned episodes = 6)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(cache_class, 4);
    sys_cfg.fault = fault;
    sys_cfg.faultTriggerPct = trigger_pct;
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, smallTesterConfig(seed, episodes));
    return tester.run();
}

} // namespace

class GpuTesterSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GpuTesterSeeds, PassesOnCorrectProtocolSmallCaches)
{
    TesterResult r = runOnce(CacheSizeClass::Small, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_GT(r.loadsChecked, 0u);
    EXPECT_GT(r.atomicsChecked, 0u);
}

TEST_P(GpuTesterSeeds, PassesOnCorrectProtocolLargeCaches)
{
    TesterResult r = runOnce(CacheSizeClass::Large, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
}

TEST_P(GpuTesterSeeds, PassesOnCorrectProtocolMixedCaches)
{
    TesterResult r = runOnce(CacheSizeClass::Mixed, GetParam());
    EXPECT_TRUE(r.passed) << r.report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuTesterSeeds,
                         ::testing::Values(1, 7, 23, 99, 1234));

TEST(GpuTester, RetiresExpectedEpisodeCount)
{
    TesterResult r = runOnce(CacheSizeClass::Small, 5);
    ASSERT_TRUE(r.passed) << r.report;
    // 4 CUs x 2 WFs x 6 episodes.
    EXPECT_EQ(r.episodes, 4u * 2u * 6u);
}

TEST(GpuTester, DeterministicUnderSeed)
{
    TesterResult a = runOnce(CacheSizeClass::Small, 77);
    TesterResult b = runOnce(CacheSizeClass::Small, 77);
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.loadsChecked, b.loadsChecked);
}

TEST(GpuTester, DifferentSeedsExploreDifferently)
{
    TesterResult a = runOnce(CacheSizeClass::Small, 1);
    TesterResult b = runOnce(CacheSizeClass::Small, 2);
    EXPECT_NE(a.loadsChecked, b.loadsChecked);
}

class GpuTesterBugs : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GpuTesterBugs, DetectsLostWriteThrough)
{
    TesterResult r = runOnce(CacheSizeClass::Small, GetParam(),
                             FaultKind::LostWriteThrough, 100,
                             /*episodes=*/20);
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.report.find("inconsistency"), std::string::npos)
        << r.report;
    EXPECT_NE(r.report.find("Last Writer"), std::string::npos);
    EXPECT_NE(r.report.find("Last Reader"), std::string::npos);
}

TEST_P(GpuTesterBugs, DetectsNonAtomicRmw)
{
    TesterResult r = runOnce(CacheSizeClass::Small, GetParam(),
                             FaultKind::NonAtomicRmw, 100,
                             /*episodes=*/20);
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.report.find("atomic"), std::string::npos) << r.report;
}

TEST_P(GpuTesterBugs, DetectsDroppedAcquireInvalidate)
{
    TesterResult r = runOnce(CacheSizeClass::Large, GetParam(),
                             FaultKind::DropAcquireInvalidate, 100,
                             /*episodes=*/25);
    // Stale data must eventually surface as a value mismatch. Large
    // caches keep stale lines alive, making detection reliable.
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.report.find("mismatch"), std::string::npos) << r.report;
}

TEST_P(GpuTesterBugs, DetectsDroppedAckAsDeadlock)
{
    TesterResult r = runOnce(CacheSizeClass::Small, GetParam(),
                             FaultKind::DropWriteAck, 100,
                             /*episodes=*/10);
    ASSERT_FALSE(r.passed);
    EXPECT_NE(r.report.find("deadlock"), std::string::npos) << r.report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuTesterBugs,
                         ::testing::Values(11, 42, 314));

TEST(GpuTester, RareBugStillCaughtWithLowTriggerRate)
{
    // A bug firing on only 10% of eligible events is still found given
    // enough episodes.
    TesterResult r = runOnce(CacheSizeClass::Small, 5,
                             FaultKind::LostWriteThrough, 10,
                             /*episodes=*/40);
    EXPECT_FALSE(r.passed);
}

TEST(GpuTester, CoverageAccumulates)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 4);
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, smallTesterConfig(3));
    TesterResult r = tester.run();
    ASSERT_TRUE(r.passed) << r.report;

    CoverageGrid l1 = sys.l1CoverageUnion();
    EXPECT_GT(l1.coveragePct("gpu_tester"), 60.0);
    EXPECT_GT(sys.l2().coverage().coveragePct("gpu_tester"), 50.0);
    // The directory sees only GPU traffic.
    EXPECT_EQ(sys.directory()
                  .coverage()
                  .count(Directory::EvCpuGets, Directory::StU),
              0u);
}

TEST(GpuTester, FailureReportIncludesHistory)
{
    Logger::get().setHistoryDepth(64);
    TesterResult r = runOnce(CacheSizeClass::Small, 8,
                             FaultKind::LostWriteThrough, 100,
                             /*episodes=*/20);
    ASSERT_FALSE(r.passed);
    // Table V fields present in the report.
    EXPECT_NE(r.report.find("thread="), std::string::npos);
    EXPECT_NE(r.report.find("episode="), std::string::npos);
    EXPECT_NE(r.report.find("cycle="), std::string::npos);
    EXPECT_NE(r.report.find("value="), std::string::npos);
}

TEST(GpuTester, SingleCuSingleWfWorks)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, 1);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = smallTesterConfig(9);
    cfg.wfsPerCu = 1;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_EQ(r.episodes, 6u);
}

TEST(GpuTester, ManyAtomicLocationsWork)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Mixed, 4);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = smallTesterConfig(10);
    cfg.variables.numSyncVars = 100;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
}
