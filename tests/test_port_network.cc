/**
 * @file
 * Unit tests for ports and the crossbar: latency, FIFO ordering, and
 * routing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/network.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"

using namespace drf;

namespace
{

/** Receiver that records (tick, packet) pairs. */
class Recorder : public MsgReceiver
{
  public:
    explicit Recorder(EventQueue &eq) : _eq(eq) {}

    void
    recvMsg(Packet &pkt) override
    {
        arrivals.emplace_back(_eq.curTick(), std::move(pkt));
    }

    std::vector<std::pair<Tick, Packet>> arrivals;

  private:
    EventQueue &_eq;
};

Packet
makePkt(MsgType type, Addr addr, PacketId id = 0)
{
    Packet pkt;
    pkt.type = type;
    pkt.addr = addr;
    pkt.id = id;
    return pkt;
}

} // namespace

TEST(MsgPort, DeliversAfterLatency)
{
    EventQueue eq;
    Recorder rx(eq);
    MsgPort port("p", eq, 5);
    port.bind(rx);
    port.send(makePkt(MsgType::RdBlk, 0x40));
    eq.run();
    ASSERT_EQ(rx.arrivals.size(), 1u);
    EXPECT_EQ(rx.arrivals[0].first, 5u);
    EXPECT_EQ(rx.arrivals[0].second.type, MsgType::RdBlk);
}

TEST(MsgPort, ExtraDelayAdds)
{
    EventQueue eq;
    Recorder rx(eq);
    MsgPort port("p", eq, 5);
    port.bind(rx);
    port.send(makePkt(MsgType::RdBlk, 0x40), 7);
    eq.run();
    EXPECT_EQ(rx.arrivals[0].first, 12u);
}

TEST(MsgPort, PreservesFifoEvenWithShrinkingDelays)
{
    EventQueue eq;
    Recorder rx(eq);
    MsgPort port("p", eq, 1);
    port.bind(rx);
    // First message has a big extra delay, second none: the second must
    // not overtake the first.
    port.send(makePkt(MsgType::RdBlk, 0x40, 1), 50);
    port.send(makePkt(MsgType::RdBlk, 0x80, 2), 0);
    eq.run();
    ASSERT_EQ(rx.arrivals.size(), 2u);
    EXPECT_EQ(rx.arrivals[0].second.id, 1u);
    EXPECT_EQ(rx.arrivals[1].second.id, 2u);
    EXPECT_GT(rx.arrivals[1].first, rx.arrivals[0].first);
}

TEST(MsgPort, CountsSends)
{
    EventQueue eq;
    Recorder rx(eq);
    MsgPort port("p", eq, 1);
    port.bind(rx);
    for (int i = 0; i < 4; ++i)
        port.send(makePkt(MsgType::RdBlk, 0));
    EXPECT_EQ(port.sentCount(), 4u);
}

TEST(Crossbar, RoutesByEndpoint)
{
    EventQueue eq;
    Crossbar xbar("xbar", eq, 3);
    Recorder a(eq), b(eq);
    xbar.attach(1, a);
    xbar.attach(2, b);
    xbar.route(1, 2, makePkt(MsgType::RdBlk, 0x40));
    xbar.route(2, 1, makePkt(MsgType::TccAck, 0x40));
    eq.run();
    ASSERT_EQ(a.arrivals.size(), 1u);
    ASSERT_EQ(b.arrivals.size(), 1u);
    EXPECT_EQ(a.arrivals[0].second.type, MsgType::TccAck);
    EXPECT_EQ(b.arrivals[0].second.type, MsgType::RdBlk);
}

TEST(Crossbar, StampsSourceEndpoint)
{
    EventQueue eq;
    Crossbar xbar("xbar", eq, 1);
    Recorder a(eq), b(eq);
    xbar.attach(10, a);
    xbar.attach(20, b);
    xbar.route(10, 20, makePkt(MsgType::RdBlk, 0));
    eq.run();
    EXPECT_EQ(b.arrivals[0].second.srcEndpoint, 10);
}

TEST(Crossbar, PerPairFifoOrdering)
{
    EventQueue eq;
    Crossbar xbar("xbar", eq, 2);
    Recorder dst(eq);
    Recorder src(eq);
    xbar.attach(1, src);
    xbar.attach(2, dst);
    for (PacketId i = 0; i < 16; ++i)
        xbar.route(1, 2, makePkt(MsgType::RdBlk, 0, i), (16 - i) % 4);
    eq.run();
    ASSERT_EQ(dst.arrivals.size(), 16u);
    for (PacketId i = 0; i < 16; ++i)
        EXPECT_EQ(dst.arrivals[i].second.id, i);
}

TEST(Crossbar, CountsRoutedMessages)
{
    EventQueue eq;
    Crossbar xbar("xbar", eq, 1);
    Recorder a(eq), b(eq);
    xbar.attach(1, a);
    xbar.attach(2, b);
    for (int i = 0; i < 5; ++i)
        xbar.route(1, 2, makePkt(MsgType::RdBlk, 0));
    EXPECT_EQ(xbar.routedCount(), 5u);
}

TEST(MsgTypeNames, AllDistinctAndNonNull)
{
    EXPECT_STREQ(msgTypeName(MsgType::RdBlk), "RdBlk");
    EXPECT_STREQ(msgTypeName(MsgType::WrThrough), "WrThrough");
    EXPECT_STREQ(msgTypeName(MsgType::PrbInv), "PrbInv");
    EXPECT_STREQ(msgTypeName(MsgType::MemWBAck), "MemWBAck");
}

TEST(Packet, DescribeMentionsTypeAndFlags)
{
    Packet pkt = makePkt(MsgType::AtomicReq, 0x1234, 77);
    pkt.acquire = true;
    std::string s = pkt.describe();
    EXPECT_NE(s.find("AtomicReq"), std::string::npos);
    EXPECT_NE(s.find("1234"), std::string::npos);
    EXPECT_NE(s.find("acq"), std::string::npos);
}
