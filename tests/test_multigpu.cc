/**
 * @file
 * Multi-GPU system tests (Section III.B: "the user can configure a
 * multi-GPU system with a varying number of caches... as long as the
 * system under test has a DRF memory model, the tester will work
 * seamlessly").
 *
 * With more than one GPU L2 slice, the directory probe-invalidates
 * remote L2s on GPU writes and atomics, so the L2 PrbInv transitions —
 * Impsb in the single-GPU configuration — become reachable by the GPU
 * tester alone, and the tester's value checks verify the cross-L2
 * invalidation protocol end to end.
 */

#include <gtest/gtest.h>

#include "tester/configs.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

ApuSystemConfig
multiGpuSystem(unsigned num_cus, unsigned num_l2s,
               CacheSizeClass cache_class = CacheSizeClass::Small)
{
    ApuSystemConfig cfg = makeGpuSystemConfig(cache_class, num_cus);
    cfg.numGpuL2s = num_l2s;
    return cfg;
}

GpuTesterConfig
multiTesterConfig(std::uint64_t seed, unsigned episodes = 10)
{
    GpuTesterConfig cfg = makeGpuTesterConfig(
        /*actions=*/50, episodes, /*atomic_locs=*/10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14; // dense: cross-L2 sharing
    return cfg;
}

} // namespace

TEST(MultiGpu, SystemBuilderSplitsCus)
{
    ApuSystem sys(multiGpuSystem(8, 2));
    EXPECT_EQ(sys.numGpuL2s(), 2u);
    EXPECT_EQ(sys.l2ForCu(0), 0u);
    EXPECT_EQ(sys.l2ForCu(3), 0u);
    EXPECT_EQ(sys.l2ForCu(4), 1u);
    EXPECT_EQ(sys.l2ForCu(7), 1u);
}

class MultiGpuSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultiGpuSeeds, TesterPassesOnTwoL2System)
{
    ApuSystem sys(multiGpuSystem(4, 2));
    GpuTester tester(sys, multiTesterConfig(GetParam()));
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
    EXPECT_GT(r.loadsChecked, 0u);
}

TEST_P(MultiGpuSeeds, TesterPassesOnFourL2System)
{
    ApuSystem sys(multiGpuSystem(8, 4));
    GpuTester tester(sys, multiTesterConfig(GetParam() + 100));
    TesterResult r = tester.run();
    EXPECT_TRUE(r.passed) << r.report;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiGpuSeeds,
                         ::testing::Values(2, 47, 1001));

TEST(MultiGpu, CrossL2ProbesHappen)
{
    ApuSystem sys(multiGpuSystem(4, 2));
    GpuTester tester(sys, multiTesterConfig(9, /*episodes=*/20));
    TesterResult r = tester.run();
    ASSERT_TRUE(r.passed) << r.report;

    // The directory must have probed GPU L2s (remote invalidations).
    EXPECT_GT(sys.directory().stats().value("gpu_probes"), 0u);
    EXPECT_GT(sys.directory()
                  .coverage()
                  .count(Directory::EvGpuInvAck, Directory::StB),
              0u);

    // PrbInv transitions at the L2s are now active — the cells that are
    // Impsb for the single-GPU tester.
    CoverageGrid l2 = sys.l2CoverageUnion();
    std::uint64_t prb = 0;
    for (auto st : {GpuL2Cache::StI, GpuL2Cache::StV, GpuL2Cache::StIV,
                    GpuL2Cache::StA}) {
        prb += l2.count(GpuL2Cache::EvPrbInv, st);
    }
    EXPECT_GT(prb, 0u);
}

TEST(MultiGpu, SingleL2NeverSeesProbesFromGpuTraffic)
{
    ApuSystem sys(multiGpuSystem(4, 1));
    GpuTester tester(sys, multiTesterConfig(5, /*episodes=*/10));
    TesterResult r = tester.run();
    ASSERT_TRUE(r.passed) << r.report;
    EXPECT_EQ(sys.directory().stats().value("gpu_probes"), 0u);
    for (auto st : {GpuL2Cache::StI, GpuL2Cache::StV, GpuL2Cache::StIV,
                    GpuL2Cache::StA}) {
        EXPECT_EQ(sys.l2().coverage().count(GpuL2Cache::EvPrbInv, st),
                  0u);
    }
}

TEST(MultiGpu, CrossL2ValuePropagation)
{
    // Directed: CU0 (L2 slice 0) writes, CU3 (slice 1) reads after a
    // fresh acquire. The remote invalidation plus refetch must deliver
    // the new value.
    ApuSystem sys(multiGpuSystem(4, 2));
    std::vector<Packet> responses[4];
    for (unsigned cu = 0; cu < 4; ++cu) {
        sys.l1(cu).bindCoreResponse([&responses, cu](Packet pkt) {
            responses[cu].push_back(std::move(pkt));
        });
    }

    auto run_op = [&](unsigned cu, Packet pkt) {
        sys.l1(cu).coreRequest(std::move(pkt));
        sys.eventq().run();
    };

    // Warm both L2 slices with the line.
    Packet ld;
    ld.type = MsgType::LoadReq;
    ld.addr = 0x4000;
    ld.size = 4;
    ld.id = 1;
    run_op(0, ld);
    ld.id = 2;
    run_op(3, ld);

    // CU0 stores through slice 0; the directory must invalidate the
    // copy in slice 1.
    Packet st;
    st.type = MsgType::StoreReq;
    st.addr = 0x4000;
    st.size = 4;
    st.setValueLE(0xDEADBEEF, 4);
    st.id = 3;
    run_op(0, st);
    EXPECT_GT(sys.directory().stats().value("gpu_probes"), 0u);

    // CU3 acquires (flushes its L1) and reloads: it must see the store.
    Packet ld2;
    ld2.type = MsgType::LoadReq;
    ld2.addr = 0x4000;
    ld2.size = 4;
    ld2.acquire = true;
    ld2.id = 4;
    run_op(3, ld2);
    ASSERT_FALSE(responses[3].empty());
    const Packet &resp = responses[3].back();
    ASSERT_EQ(resp.dataLen, 4u);
    EXPECT_EQ(resp.data[0], 0xEF);
    EXPECT_EQ(resp.data[3], 0xDE);
}

TEST(MultiGpu, AtomicsStayAtomicAcrossL2s)
{
    // Concurrent atomics from CUs behind different L2 slices must still
    // return unique values.
    ApuSystem sys(multiGpuSystem(4, 2));
    std::vector<std::uint64_t> results;
    for (unsigned cu = 0; cu < 4; ++cu) {
        sys.l1(cu).bindCoreResponse([&results](Packet pkt) {
            results.push_back(pkt.atomicResult);
        });
    }
    for (unsigned cu = 0; cu < 4; ++cu) {
        Packet at;
        at.type = MsgType::AtomicReq;
        at.addr = 0x5000;
        at.size = 4;
        at.atomicOperand = 1;
        at.id = 10 + cu;
        sys.l1(cu).coreRequest(std::move(at));
    }
    sys.eventq().run();
    ASSERT_EQ(results.size(), 4u);
    std::sort(results.begin(), results.end());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(MultiGpu, DetectsInjectedBugAcrossL2s)
{
    ApuSystemConfig cfg = multiGpuSystem(4, 2);
    cfg.fault = FaultKind::LostWriteThrough;
    cfg.faultTriggerPct = 100;
    ApuSystem sys(cfg);
    GpuTester tester(sys, multiTesterConfig(13, /*episodes=*/25));
    TesterResult r = tester.run();
    EXPECT_FALSE(r.passed);
}
