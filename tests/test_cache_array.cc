/**
 * @file
 * Unit tests for the set-associative cache array.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace drf;

namespace
{

constexpr unsigned kLine = 64;

} // namespace

TEST(CacheArray, Geometry)
{
    CacheArray array(1024, 2, kLine); // 8 sets x 2 ways
    EXPECT_EQ(array.numSets(), 8u);
    EXPECT_EQ(array.assoc(), 2u);
    EXPECT_EQ(array.lineBytes(), kLine);
    EXPECT_EQ(array.capacity(), 1024u);
    EXPECT_EQ(array.validCount(), 0u);
}

TEST(CacheArray, AllocateAndFind)
{
    CacheArray array(1024, 2, kLine);
    EXPECT_EQ(array.findEntry(0x100), nullptr);
    CacheEntry &e = array.allocate(0x100);
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.lineAddr, 0x100u);
    EXPECT_EQ(e.data.size(), kLineBytes);
    EXPECT_EQ(array.findEntry(0x100), &e);
    EXPECT_EQ(array.validCount(), 1u);
}

TEST(CacheArray, AllocateZeroesDataAndDirty)
{
    CacheArray array(1024, 2, kLine);
    CacheEntry &e = array.allocate(0x40);
    e.data[3] = 0xAB;
    e.dirty |= maskBit(3);
    array.invalidate(e);
    CacheEntry &e2 = array.allocate(0x40);
    EXPECT_EQ(e2.data[3], 0);
    EXPECT_FALSE(maskTest(e2.dirty, 3));
}

TEST(CacheArray, SetConflictsFillWays)
{
    CacheArray array(1024, 2, kLine); // 8 sets
    // Same set: line addresses 8*64 apart.
    Addr a = 0, b = 8 * kLine, c = 16 * kLine;
    EXPECT_TRUE(array.hasFreeWay(a));
    array.allocate(a);
    EXPECT_TRUE(array.hasFreeWay(b));
    array.allocate(b);
    EXPECT_FALSE(array.hasFreeWay(c));
}

TEST(CacheArray, VictimIsLru)
{
    CacheArray array(1024, 2, kLine);
    Addr a = 0, b = 8 * kLine;
    CacheEntry &ea = array.allocate(a);
    CacheEntry &eb = array.allocate(b);
    array.touch(ea); // a is now more recent than b
    EXPECT_EQ(&array.victim(a), &eb);
    array.touch(eb);
    EXPECT_EQ(&array.victim(a), &ea);
}

TEST(CacheArray, InvalidateFreesWay)
{
    CacheArray array(1024, 2, kLine);
    Addr a = 0, b = 8 * kLine;
    array.allocate(a);
    CacheEntry &eb = array.allocate(b);
    EXPECT_FALSE(array.hasFreeWay(a));
    array.invalidate(eb);
    EXPECT_TRUE(array.hasFreeWay(a));
    EXPECT_EQ(array.findEntry(b), nullptr);
}

TEST(CacheArray, InvalidateAll)
{
    CacheArray array(1024, 2, kLine);
    for (int i = 0; i < 8; ++i)
        array.allocate(static_cast<Addr>(i) * kLine);
    EXPECT_EQ(array.validCount(), 8u);
    array.invalidateAll();
    EXPECT_EQ(array.validCount(), 0u);
}

TEST(CacheArray, DifferentSetsDontConflict)
{
    CacheArray array(1024, 2, kLine);
    for (int i = 0; i < 8; ++i) {
        array.allocate(static_cast<Addr>(i) * kLine);
        EXPECT_NE(array.findEntry(static_cast<Addr>(i) * kLine), nullptr);
    }
    EXPECT_EQ(array.validCount(), 8u);
}

TEST(CacheArray, SetEntriesReturnsAllWays)
{
    CacheArray array(1024, 4, kLine);
    auto ways = array.setEntries(0x0);
    EXPECT_EQ(ways.size(), 4u);
}

TEST(CacheArray, TinyCacheOneSet)
{
    CacheArray array(128, 2, kLine); // 1 set x 2 ways
    EXPECT_EQ(array.numSets(), 1u);
    array.allocate(0);
    array.allocate(kLine);
    EXPECT_FALSE(array.hasFreeWay(5 * kLine));
    // Victim must be one of the two allocated lines.
    CacheEntry &v = array.victim(5 * kLine);
    EXPECT_TRUE(v.lineAddr == 0 ||
                v.lineAddr == static_cast<Addr>(kLine));
}

TEST(CacheArray, LineAlignHelpers)
{
    EXPECT_EQ(lineAlign(0x12345, 64), 0x12340u);
    EXPECT_EQ(lineOffset(0x12345, 64), 0x5u);
    EXPECT_EQ(lineAlign(0x40, 64), 0x40u);
    EXPECT_EQ(lineOffset(0x40, 64), 0x0u);
}
