/**
 * @file
 * Tests for the coverage-guided campaign engine: the deterministic
 * UCB1 bandit, genome <-> preset mapping and bounded mutation, the
 * three shard-source strategies, and the adaptive campaign loop's
 * determinism contract (same master seed => identical decision
 * sequence and union digest at any worker count).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "guidance/adaptive_campaign.hh"

using namespace drf;

namespace
{

/** A deliberately tiny genome so guided campaigns run in milliseconds. */
ConfigGenome
tinyGenome(unsigned actions = 10, unsigned episodes_per_wf = 2)
{
    ConfigGenome g;
    g.cacheClass = CacheSizeClass::Small;
    g.actionsPerEpisode = actions;
    g.episodesPerWf = episodes_per_wf;
    g.atomicLocs = 4;
    g.colocDensity = 2.0;
    g.numCus = 2;
    return g;
}

GenomeScale
tinyScale(FaultKind fault = FaultKind::None)
{
    GenomeScale scale;
    scale.lanes = 4;
    scale.wfsPerCu = 1;
    scale.numNormalVars = 128;
    scale.fault = fault;
    return scale;
}

SourceConfig
tinySourceConfig(std::uint64_t master_seed, std::size_t max_shards)
{
    SourceConfig cfg;
    cfg.arms = {tinyGenome(10, 2), tinyGenome(15, 2), tinyGenome(10, 3)};
    cfg.scale = tinyScale();
    cfg.masterSeed = master_seed;
    cfg.batchSize = 2;
    cfg.maxShards = max_shards;
    return cfg;
}

} // namespace

TEST(Strategy, NameParseRoundTrip)
{
    for (Strategy s : {Strategy::Random, Strategy::Sweep,
                       Strategy::Guided, Strategy::Explore}) {
        auto parsed = parseStrategy(strategyName(s));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, s);
    }
    EXPECT_FALSE(parseStrategy("annealed").has_value());
    EXPECT_FALSE(parseStrategy("").has_value());
}

TEST(Ucb1Bandit, PlaysUnplayedArmsFirstInIndexOrder)
{
    Ucb1Bandit bandit;
    for (int i = 0; i < 3; ++i)
        bandit.addArm();
    EXPECT_EQ(bandit.select(), 0u);
    bandit.update(0, 5.0);
    EXPECT_EQ(bandit.select(), 1u);
    bandit.update(1, 1.0);
    EXPECT_EQ(bandit.select(), 2u);
    bandit.update(2, 1.0);
    EXPECT_EQ(bandit.totalPlays(), 3u);
}

TEST(Ucb1Bandit, SyntheticRewardStreamConvergesToBestArm)
{
    // Arm 1 pays 10, the others pay 1: after the initial sweep the
    // bandit must spend most plays on arm 1.
    Ucb1Bandit bandit(/*exploration=*/0.5);
    for (int i = 0; i < 3; ++i)
        bandit.addArm();
    std::vector<std::uint64_t> plays(3, 0);
    for (int round = 0; round < 100; ++round) {
        std::size_t arm = bandit.select();
        ++plays[arm];
        bandit.update(arm, arm == 1 ? 10.0 : 1.0);
    }
    EXPECT_GT(plays[1], plays[0]);
    EXPECT_GT(plays[1], plays[2]);
    EXPECT_GT(plays[1], 50u);
    // UCB1 still explores: no arm starves entirely.
    EXPECT_GE(plays[0], 1u);
    EXPECT_GE(plays[2], 1u);
}

TEST(Ucb1Bandit, DeterministicTieBreakTowardLowestIndex)
{
    Ucb1Bandit bandit;
    bandit.addArm();
    bandit.addArm();
    bandit.update(0, 2.0);
    bandit.update(1, 2.0);
    // Identical means and play counts: the lower index must win.
    EXPECT_EQ(bandit.select(), 0u);
    EXPECT_DOUBLE_EQ(bandit.ucbScore(0), bandit.ucbScore(1));
}

TEST(Ucb1Bandit, MeanTracksRewards)
{
    Ucb1Bandit bandit;
    bandit.addArm();
    EXPECT_DOUBLE_EQ(bandit.mean(0), 0.0);
    bandit.update(0, 4.0);
    bandit.update(0, 8.0);
    EXPECT_DOUBLE_EQ(bandit.mean(0), 6.0);
    EXPECT_EQ(bandit.plays(0), 2u);
}

TEST(Genome, AddrRangeForDensityInvertsApproximately)
{
    // range = vars * line / density, rounded up to whole lines.
    EXPECT_EQ(addrRangeForDensity(512, 2.0, 64, 4), 16384u);
    EXPECT_EQ(addrRangeForDensity(512, 0.5, 64, 4), 65536u);
    // Heavy density is clamped to the 2x slot headroom floor.
    std::uint64_t range = addrRangeForDensity(512, 1000.0, 64, 4);
    EXPECT_GE(range, 2ull * 512 * 4);
    EXPECT_EQ(range % 64, 0u);
}

TEST(Genome, PresetRoundTripPreservesSearchedAxes)
{
    ConfigGenome g = tinyGenome(15, 3);
    GpuTestPreset preset = genomeToPreset(g, tinyScale(), /*seed=*/42);
    EXPECT_EQ(preset.tester.seed, 42u);
    EXPECT_EQ(preset.tester.lanes, 4u);
    EXPECT_EQ(preset.tester.variables.numNormalVars, 128u);
    EXPECT_NE(preset.name.find("seed42"), std::string::npos);

    ConfigGenome back = genomeFromPreset(preset);
    EXPECT_EQ(back.cacheClass, g.cacheClass);
    EXPECT_EQ(back.actionsPerEpisode, g.actionsPerEpisode);
    EXPECT_EQ(back.episodesPerWf, g.episodesPerWf);
    EXPECT_EQ(back.atomicLocs, g.atomicLocs);
    EXPECT_EQ(back.numCus, g.numCus);
    // Density survives up to the line-rounding of the address range.
    EXPECT_NEAR(back.colocDensity, g.colocDensity, 0.1);
}

TEST(Genome, TableIIIArmsMatchTheSweep)
{
    std::vector<ConfigGenome> arms = tableIIIArms();
    ASSERT_EQ(arms.size(), 24u);
    // All 24 are distinct genomes.
    for (std::size_t i = 0; i < arms.size(); ++i) {
        for (std::size_t j = i + 1; j < arms.size(); ++j)
            EXPECT_NE(arms[i], arms[j]) << i << " vs " << j;
    }
}

TEST(Genome, MutationStaysInBoundsAndIsSeedDeterministic)
{
    GenomeBounds bounds;
    ConfigGenome g = tinyGenome();

    Random rng_a(7), rng_b(7);
    ConfigGenome cur_a = g, cur_b = g;
    for (int i = 0; i < 200; ++i) {
        cur_a = mutateGenome(cur_a, rng_a, bounds);
        cur_b = mutateGenome(cur_b, rng_b, bounds);
        EXPECT_EQ(cur_a, cur_b) << "mutation diverged at step " << i;

        EXPECT_GE(cur_a.actionsPerEpisode, bounds.minActions);
        EXPECT_LE(cur_a.actionsPerEpisode, bounds.maxActions);
        EXPECT_GE(cur_a.episodesPerWf, bounds.minEpisodesPerWf);
        EXPECT_LE(cur_a.episodesPerWf, bounds.maxEpisodesPerWf);
        EXPECT_GE(cur_a.atomicLocs, bounds.minAtomicLocs);
        EXPECT_LE(cur_a.atomicLocs, bounds.maxAtomicLocs);
        EXPECT_GE(cur_a.colocDensity, bounds.minColocDensity);
        EXPECT_LE(cur_a.colocDensity, bounds.maxColocDensity);
        EXPECT_GE(cur_a.numCus, bounds.minCus);
        EXPECT_LE(cur_a.numCus, bounds.maxCus);
    }
}

TEST(Genome, MutationChangesExactlyOneGene)
{
    Random rng(3);
    ConfigGenome g = tinyGenome();
    for (int i = 0; i < 50; ++i) {
        ConfigGenome m = mutateGenome(g, rng);
        int changed = 0;
        changed += m.cacheClass != g.cacheClass;
        changed += m.actionsPerEpisode != g.actionsPerEpisode;
        changed += m.episodesPerWf != g.episodesPerWf;
        changed += m.atomicLocs != g.atomicLocs;
        changed += m.colocDensity != g.colocDensity;
        changed += m.numCus != g.numCus;
        EXPECT_EQ(changed, 1);
    }
}

TEST(Sources, SweepIssuesArmsInOrderUpToMaxShards)
{
    SourceConfig cfg = tinySourceConfig(1, 7);
    SweepSource source(cfg);
    EXPECT_EQ(source.strategy(), Strategy::Sweep);

    std::vector<std::string> names;
    for (;;) {
        std::vector<ShardSpec> batch = source.nextBatch();
        if (batch.empty())
            break;
        for (ShardSpec &s : batch)
            names.push_back(s.name);
    }
    ASSERT_EQ(names.size(), 7u);
    // Arms cycle in order; every shard has a distinct seed suffix.
    EXPECT_NE(names[0].find("a10/e2"), std::string::npos);
    EXPECT_NE(names[1].find("a15/e2"), std::string::npos);
    EXPECT_NE(names[2].find("a10/e3"), std::string::npos);
    EXPECT_NE(names[3].find("a10/e2"), std::string::npos);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Sources, RandomScheduleIsSeedDeterministic)
{
    auto schedule = [](std::uint64_t master_seed) {
        RandomSource source(tinySourceConfig(master_seed, 10));
        std::vector<std::string> names;
        for (;;) {
            std::vector<ShardSpec> batch = source.nextBatch();
            if (batch.empty())
                break;
            for (ShardSpec &s : batch)
                names.push_back(s.name);
        }
        return names;
    };
    EXPECT_EQ(schedule(5), schedule(5));
    EXPECT_NE(schedule(5), schedule(6));
}

TEST(Sources, PresetForSeedRecoversIssuedShard)
{
    SourceConfig cfg = tinySourceConfig(100, 4);
    SweepSource source(cfg);
    std::vector<ShardSpec> batch = source.nextBatch();
    ASSERT_FALSE(batch.empty());

    auto preset = source.presetForSeed(batch[0].seed);
    ASSERT_TRUE(preset.has_value());
    EXPECT_EQ(preset->name, batch[0].name);
    EXPECT_EQ(preset->tester.seed, batch[0].seed);
    EXPECT_FALSE(source.presetForSeed(999999).has_value());
}

TEST(Guided, DeterministicAcrossWorkerCounts)
{
    // The acceptance criterion: a guided campaign re-run with the same
    // master seed reproduces the identical shard schedule (decision
    // log) and union-coverage digest, serial or parallel.
    auto run = [](unsigned jobs) {
        GuidedSource source(tinySourceConfig(11, 12));
        AdaptiveCampaignConfig cfg;
        cfg.jobs = jobs;
        return runAdaptiveCampaign(source, cfg);
    };
    AdaptiveCampaignResult serial = run(1);
    AdaptiveCampaignResult parallel = run(4);

    EXPECT_TRUE(serial.passed);
    EXPECT_TRUE(parallel.passed);
    EXPECT_EQ(serial.shardsRun, 12u);
    EXPECT_EQ(parallel.shardsRun, 12u);
    EXPECT_NE(serial.unionDigest, 0u);
    EXPECT_EQ(serial.unionDigest, parallel.unionDigest);
    EXPECT_EQ(serial.totalEpisodes, parallel.totalEpisodes);

    ASSERT_EQ(serial.decisions.size(), parallel.decisions.size());
    for (std::size_t i = 0; i < serial.decisions.size(); ++i) {
        const GuidanceDecision &a = serial.decisions[i];
        const GuidanceDecision &b = parallel.decisions[i];
        EXPECT_EQ(a.arm, b.arm) << "round " << i;
        EXPECT_EQ(a.probe, b.probe) << "round " << i;
        EXPECT_EQ(a.mutant, b.mutant) << "round " << i;
        EXPECT_EQ(a.seeds, b.seeds) << "round " << i;
        EXPECT_TRUE(a.genome == b.genome) << "round " << i;
        EXPECT_EQ(a.episodes, b.episodes) << "round " << i;
        EXPECT_EQ(a.newCells, b.newCells) << "round " << i;
        EXPECT_DOUBLE_EQ(a.rewardPerKiloEpisode, b.rewardPerKiloEpisode)
            << "round " << i;
    }
}

TEST(Guided, DifferentMasterSeedsDiverge)
{
    auto episodes_sequence = [](std::uint64_t master_seed) {
        GuidedSource source(tinySourceConfig(master_seed, 12));
        AdaptiveCampaignResult res = runAdaptiveCampaign(source);
        std::vector<std::uint64_t> seeds;
        for (const GuidanceDecision &d : res.decisions)
            for (std::uint64_t s : d.seeds)
                seeds.push_back(s);
        return seeds;
    };
    // Different master seeds issue different shard seeds by design
    // (the seed counter starts at the master seed).
    EXPECT_NE(episodes_sequence(1), episodes_sequence(2));
}

TEST(Guided, ProbesEveryArmBeforeExploiting)
{
    GuidedSource source(tinySourceConfig(1, 12));
    AdaptiveCampaignResult res = runAdaptiveCampaign(source);
    ASSERT_GE(res.decisions.size(), 3u);
    std::set<std::size_t> probed;
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(res.decisions[i].probe);
        probed.insert(res.decisions[i].arm);
    }
    EXPECT_EQ(probed.size(), 3u); // all three arms scored first
    for (std::size_t i = 3; i < res.decisions.size(); ++i) {
        if (!res.decisions[i].mutant) {
            EXPECT_FALSE(res.decisions[i].probe) << "round " << i;
        }
    }
}

TEST(Guided, StopsAtCoverageTarget)
{
    // First learn the achievable coverage, then re-run demanding only
    // a fraction of it: the source must stop before its shard cap.
    GuidedSource full(tinySourceConfig(1, 12));
    AdaptiveCampaignResult full_res = runAdaptiveCampaign(full);
    ASSERT_TRUE(full_res.l1Union && full_res.l2Union);

    GuidedOptions opts;
    opts.targetL1Active = full_res.l1Union->activeCount("") / 2;
    opts.targetL2Active = full_res.l2Union->activeCount("") / 2;
    GuidedSource early(tinySourceConfig(1, 100), opts);
    AdaptiveCampaignResult early_res = runAdaptiveCampaign(early);
    EXPECT_LT(early_res.shardsRun, 100u);
    ASSERT_TRUE(early_res.l1Union && early_res.l2Union);
    EXPECT_GE(early_res.l1Union->activeCount(""), opts.targetL1Active);
    EXPECT_GE(early_res.l2Union->activeCount(""), opts.targetL2Active);
}

TEST(Guided, EpisodeBudgetBoundsTheCampaign)
{
    GuidedOptions opts;
    opts.episodeBudget = 20;
    GuidedSource source(tinySourceConfig(1, 1000), opts);
    AdaptiveCampaignResult res = runAdaptiveCampaign(source);
    // Stops at the first between-rounds check past the budget: total
    // episodes can overshoot by at most one round (one batch).
    EXPECT_LT(res.shardsRun, 1000u);
    EXPECT_GE(res.totalEpisodes, 20u);
}

TEST(Guided, DecisionsJsonIsWellFormedArray)
{
    GuidedSource source(tinySourceConfig(1, 6));
    AdaptiveCampaignResult res = runAdaptiveCampaign(source);
    std::string json = guidanceDecisionsJson(res.decisions);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    for (const char *key : {"\"round\":", "\"arm\":", "\"probe\":",
                            "\"genome\":", "\"seeds\":[",
                            "\"reward_per_kiloepisode\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }

    std::string campaign_json = adaptiveCampaignToJson(res, "gpu_tester");
    for (const char *key :
         {"\"strategy\":\"guided\"", "\"union_digest\":\"0x",
          "\"guidance\":[", "\"curve\":[", "\"total_episodes\":"}) {
        EXPECT_NE(campaign_json.find(key), std::string::npos)
            << "missing " << key;
    }
}

// Non-predict strategies still carry the predicted_races triage block —
// always present, all zero, null pair — so downstream consumers can key
// on it unconditionally.
TEST(Guided, CampaignJsonHasZeroPredictedRacesBlock)
{
    GuidedSource source(tinySourceConfig(1, 6));
    AdaptiveCampaignResult res = runAdaptiveCampaign(source);
    EXPECT_FALSE(res.predictTriage.has_value());

    const std::string zero_block =
        "\"predicted_races\":{\"candidates\":0,\"confirmed\":0,"
        "\"demoted\":0,\"interleavings\":0,\"first_pair\":null}";
    for (const std::string &json :
         {adaptiveCampaignToJson(res, "gpu_tester"),
          adaptiveAggregatesJson(res, "gpu_tester")}) {
        EXPECT_NE(json.find(zero_block), std::string::npos)
            << "missing zero triage block in: " << json.substr(0, 400);
    }
}
