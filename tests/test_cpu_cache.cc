/**
 * @file
 * Directed tests for the CPU core-pair cache (MSI) and its interaction
 * with the directory: hits, misses, upgrades, writebacks, and
 * cross-cache probe traffic.
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/apu_system.hh"

using namespace drf;

namespace
{

class CpuHarness : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ApuSystemConfig cfg;
        cfg.numCus = 0;
        cfg.numCpuCaches = 2;
        cfg.cpu.sizeBytes = 256; // 2 sets x 2 ways: pressure
        cfg.cpu.assoc = 2;
        sys = std::make_unique<ApuSystem>(cfg);
        for (unsigned i = 0; i < 2; ++i) {
            sys->cpuCache(i).bindCoreResponse([this, i](Packet pkt) {
                responses[i].push_back(std::move(pkt));
            });
        }
    }

    void
    load(unsigned cache, Addr addr)
    {
        Packet pkt;
        pkt.type = MsgType::LoadReq;
        pkt.addr = addr;
        pkt.size = 1;
        pkt.id = nextId++;
        sys->cpuCache(cache).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    void
    store(unsigned cache, Addr addr, std::uint8_t value)
    {
        Packet pkt;
        pkt.type = MsgType::StoreReq;
        pkt.addr = addr;
        pkt.size = 1;
        pkt.setValueLE(value, 1);
        pkt.id = nextId++;
        sys->cpuCache(cache).coreRequest(std::move(pkt));
        sys->eventq().run();
    }

    std::uint64_t
    count(unsigned cache, CpuCache::Event ev, CpuCache::State st)
    {
        return sys->cpuCache(cache).coverage().count(ev, st);
    }

    std::unique_ptr<ApuSystem> sys;
    std::vector<Packet> responses[2];
    PacketId nextId = 1;
};

} // namespace

TEST_F(CpuHarness, ColdLoadMissesAndFills)
{
    load(0, 0x100);
    EXPECT_EQ(responses[0].back().data[0], 0);
    EXPECT_EQ(count(0, CpuCache::EvLoad, CpuCache::StI), 1u);
    EXPECT_EQ(count(0, CpuCache::EvData, CpuCache::StIS), 1u);
    load(0, 0x101);
    EXPECT_EQ(sys->cpuCache(0).stats().value("load_hits"), 1u);
}

TEST_F(CpuHarness, StoreMissGetsExclusive)
{
    store(0, 0x200, 0x42);
    EXPECT_EQ(count(0, CpuCache::EvStore, CpuCache::StI), 1u);
    EXPECT_EQ(count(0, CpuCache::EvData, CpuCache::StIM), 1u);
    load(0, 0x200);
    EXPECT_EQ(responses[0].back().data[0], 0x42);
    EXPECT_EQ(sys->cpuCache(0).stats().value("load_hits"), 1u);
}

TEST_F(CpuHarness, StoreHitInM)
{
    store(0, 0x200, 1);
    store(0, 0x201, 2);
    EXPECT_EQ(count(0, CpuCache::EvStore, CpuCache::StM), 1u);
    EXPECT_EQ(sys->cpuCache(0).stats().value("store_hits"), 1u);
}

TEST_F(CpuHarness, UpgradeFromSharedToModified)
{
    load(0, 0x300);            // S
    store(0, 0x300, 9);        // upgrade SM -> M
    EXPECT_EQ(count(0, CpuCache::EvStore, CpuCache::StS), 1u);
    EXPECT_EQ(count(0, CpuCache::EvData, CpuCache::StSM), 1u);
    EXPECT_EQ(sys->cpuCache(0).stats().value("upgrades"), 1u);
}

TEST_F(CpuHarness, CrossCacheSharingReadsSameData)
{
    store(0, 0x400, 0x55);
    load(1, 0x400); // directory pulls the dirty data via downgrade probe
    EXPECT_EQ(responses[1].back().data[0], 0x55);
    EXPECT_EQ(count(0, CpuCache::EvPrbDowngrade, CpuCache::StM), 1u);
}

TEST_F(CpuHarness, WriteInvalidatesOtherSharer)
{
    load(0, 0x500);
    load(1, 0x500);
    store(0, 0x500, 0xAA); // invalidates cache 1's S copy
    EXPECT_EQ(count(1, CpuCache::EvPrbInv, CpuCache::StS), 1u);
    load(1, 0x500); // must miss and fetch the new data
    EXPECT_EQ(responses[1].back().data[0], 0xAA);
}

TEST_F(CpuHarness, OwnershipMigratesBetweenCaches)
{
    store(0, 0x600, 1);
    store(1, 0x600, 2); // cache 0's M copy is invalidated with data fwd
    EXPECT_EQ(count(0, CpuCache::EvPrbInv, CpuCache::StM), 1u);
    load(0, 0x600);
    EXPECT_EQ(responses[0].back().data[0], 2);
}

TEST_F(CpuHarness, DirtyReplacementWritesBack)
{
    // 2 sets x 2 ways: lines 0x000, 0x080, 0x100 all map to set 0.
    store(0, 0x000, 0x11);
    store(0, 0x080, 0x22);
    store(0, 0x100, 0x33); // victimizes dirty 0x000
    EXPECT_GE(count(0, CpuCache::EvRepl, CpuCache::StM), 1u);
    EXPECT_GE(count(0, CpuCache::EvWBAck, CpuCache::StMI), 1u);
    // The written-back data survives in memory: reload it.
    load(0, 0x000);
    EXPECT_EQ(responses[0].back().data[0], 0x11);
}

TEST_F(CpuHarness, CleanReplacementIsSilent)
{
    load(0, 0x000);
    load(0, 0x080);
    load(0, 0x100);
    EXPECT_GE(count(0, CpuCache::EvRepl, CpuCache::StS), 1u);
    EXPECT_EQ(sys->cpuCache(0).stats().value("dirty_replacements"), 0u);
}

TEST_F(CpuHarness, StaleSharerProbeAckedInI)
{
    load(0, 0x000);
    load(0, 0x080);
    load(0, 0x100); // silently drops one clean line; dir list stale
    // Another cache takes the dropped line exclusive: the stale probe
    // finds nothing.
    store(1, 0x000, 1);
    store(1, 0x080, 1);
    store(1, 0x100, 1);
    EXPECT_GE(count(0, CpuCache::EvPrbInv, CpuCache::StI), 1u);
}

TEST_F(CpuHarness, ValuesStaySequentiallyConsistentPerLocation)
{
    // Ping-pong writes between two caches with reads in between.
    for (int round = 0; round < 10; ++round) {
        std::uint8_t v = static_cast<std::uint8_t>(round);
        store(round % 2, 0x700, v);
        load((round + 1) % 2, 0x700);
        EXPECT_EQ(responses[(round + 1) % 2].back().data[0], v);
    }
}

TEST_F(CpuHarness, FalseSharingBytesIndependent)
{
    store(0, 0x800, 0xAA);
    store(1, 0x801, 0xBB); // same line, different byte
    load(0, 0x800);
    load(0, 0x801);
    auto &r = responses[0];
    EXPECT_EQ(r[r.size() - 2].data[0], 0xAA);
    EXPECT_EQ(r[r.size() - 1].data[0], 0xBB);
}
