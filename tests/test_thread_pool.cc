/**
 * @file
 * Unit tests for the campaign work-stealing thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "campaign/thread_pool.hh"

using namespace drf;

TEST(ThreadPool, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool;
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    constexpr int kJobs = 200;
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::mutex mutex;
    std::set<int> seen;
    for (int i = 0; i < kJobs; ++i) {
        pool.submit([i, &mutex, &seen] {
            std::lock_guard<std::mutex> lock(mutex);
            EXPECT_TRUE(seen.insert(i).second) << "job ran twice: " << i;
        });
    }
    pool.waitIdle();
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kJobs));
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.waitIdle();
    pool.waitIdle();
}

TEST(ThreadPool, JobsCanSubmitJobs)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            pool.submit([&pool, &count] {
                ++count;
                pool.submit([&count] { ++count; });
            });
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 30);
}

TEST(ThreadPool, WorkDistributesAcrossWorkers)
{
    // With more jobs than workers and a round-robin submit, at least
    // two distinct threads must participate (work stealing guarantees
    // no single worker hoards everything while others idle).
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&mutex, &ids, &count] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                ids.insert(std::this_thread::get_id());
            }
            // Busy-spin briefly so jobs overlap on multi-core hosts.
            std::atomic<int> spin{0};
            while (spin.fetch_add(1, std::memory_order_relaxed) < 1000) {
            }
            ++count;
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 64);
    EXPECT_GE(ids.size(), 1u);
    if (std::thread::hardware_concurrency() > 1) {
        EXPECT_GE(ids.size(), 2u);
    }
}

TEST(ThreadPool, SubmitFromManyThreads)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&pool, &count] {
            for (int i = 0; i < 50; ++i)
                pool.submit([&count] { ++count; });
        });
    }
    for (std::thread &t : producers)
        t.join();
    pool.waitIdle();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DestructorDrainsOutstandingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        // No waitIdle: the destructor must finish the backlog.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossWaves)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), (wave + 1) * 20);
    }
}
