/**
 * @file
 * Unit tests for the random variable-to-address mapping (Fig. 2).
 */

#include <gtest/gtest.h>

#include <set>

#include "tester/variable_map.hh"

using namespace drf;

namespace
{

VariableMap
makeMap(std::uint32_t sync, std::uint32_t normal, std::uint64_t range,
        std::uint64_t seed = 1)
{
    VariableMapConfig cfg;
    cfg.numSyncVars = sync;
    cfg.numNormalVars = normal;
    cfg.addrRangeBytes = range;
    Random rng(seed);
    return VariableMap(cfg, rng);
}

} // namespace

TEST(VariableMap, Counts)
{
    VariableMap vmap = makeMap(10, 100, 1 << 16);
    EXPECT_EQ(vmap.numSyncVars(), 10u);
    EXPECT_EQ(vmap.numNormalVars(), 100u);
    EXPECT_EQ(vmap.numVars(), 110u);
}

TEST(VariableMap, SyncNormalSplit)
{
    VariableMap vmap = makeMap(10, 100, 1 << 16);
    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_TRUE(vmap.isSync(vmap.syncVar(i)));
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_FALSE(vmap.isSync(vmap.normalVar(i)));
}

TEST(VariableMap, AddressesDistinctAlignedInRange)
{
    VariableMap vmap = makeMap(16, 512, 1 << 16);
    std::set<Addr> seen;
    for (VarId v = 0; v < vmap.numVars(); ++v) {
        Addr addr = vmap.addrOf(v);
        EXPECT_LT(addr, (1u << 16));
        EXPECT_EQ(addr % vmap.varBytes(), 0u);
        EXPECT_TRUE(seen.insert(addr).second) << "duplicate address";
    }
}

TEST(VariableMap, DeterministicUnderSeed)
{
    VariableMap a = makeMap(8, 64, 1 << 14, 99);
    VariableMap b = makeMap(8, 64, 1 << 14, 99);
    for (VarId v = 0; v < a.numVars(); ++v)
        EXPECT_EQ(a.addrOf(v), b.addrOf(v));
}

TEST(VariableMap, DifferentSeedsProduceDifferentMaps)
{
    VariableMap a = makeMap(8, 64, 1 << 14, 1);
    VariableMap b = makeMap(8, 64, 1 << 14, 2);
    bool any_diff = false;
    for (VarId v = 0; v < a.numVars() && !any_diff; ++v)
        any_diff = a.addrOf(v) != b.addrOf(v);
    EXPECT_TRUE(any_diff);
}

TEST(VariableMap, VarsInLineFindsCoLocated)
{
    VariableMap vmap = makeMap(8, 256, 1 << 12); // dense => sharing
    for (VarId v = 0; v < vmap.numVars(); ++v) {
        auto in_line = vmap.varsInLine(vmap.lineOf(v));
        EXPECT_NE(std::find(in_line.begin(), in_line.end(), v),
                  in_line.end());
    }
}

TEST(VariableMap, DenseMappingCreatesFalseSharing)
{
    // 264 variables over 4 KB = 64 lines: sharing is guaranteed.
    VariableMap vmap = makeMap(8, 256, 1 << 12);
    EXPECT_GT(vmap.falseSharingFraction(), 0.9);
}

TEST(VariableMap, SparseMappingSharesLess)
{
    VariableMap sparse = makeMap(2, 30, 1 << 20);
    VariableMap dense = makeMap(2, 30, 1 << 9);
    EXPECT_LE(sparse.falseSharingFraction(),
              dense.falseSharingFraction());
}

TEST(VariableMap, LineOfConsistentWithAddr)
{
    VariableMap vmap = makeMap(4, 32, 1 << 12);
    for (VarId v = 0; v < vmap.numVars(); ++v)
        EXPECT_EQ(vmap.lineOf(v), lineAlign(vmap.addrOf(v), 64));
}

TEST(VariableMap, ExactCapacityFits)
{
    // Range exactly equal to vars * varBytes must still terminate.
    VariableMap vmap = makeMap(2, 14, 64);
    std::set<Addr> seen;
    for (VarId v = 0; v < vmap.numVars(); ++v)
        EXPECT_TRUE(seen.insert(vmap.addrOf(v)).second);
    EXPECT_EQ(seen.size(), 16u);
}
