/**
 * @file
 * Shared golden-digest machinery for determinism tests.
 *
 * test_msg_goldens pins FNV-1a digests of complete runs; the trace
 * record/replay tests reuse the same digesting so "recording does not
 * perturb the run" and "replay is bit-identical" are checked against
 * the very same pinned constants rather than a parallel oracle.
 */

#ifndef DRF_TESTS_GOLDEN_DIGEST_HH
#define DRF_TESTS_GOLDEN_DIGEST_HH

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "coverage/coverage.hh"
#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

namespace drf::testing
{

/** FNV-1a 64-bit running hash. */
class Digest
{
  public:
    Digest &
    bytes(const void *p, std::size_t n)
    {
        const unsigned char *c = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            _h ^= c[i];
            _h *= 1099511628211ull;
        }
        return *this;
    }

    Digest &
    u64(std::uint64_t v)
    {
        // Hash a fixed-width little-endian encoding so the digest does
        // not depend on host struct layout.
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(buf, sizeof(buf));
    }

    Digest &
    str(const std::string &s)
    {
        u64(s.size());
        return bytes(s.data(), s.size());
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 14695981039346656037ull;
};

/** Everything deterministic in a TesterResult (hostSeconds excluded). */
inline void
digestResult(Digest &d, const TesterResult &r)
{
    d.u64(r.passed ? 1 : 0);
    d.str(r.report);
    d.u64(r.ticks);
    d.u64(r.events);
    d.u64(r.episodes);
    d.u64(r.loadsChecked);
    d.u64(r.storesRetired);
    d.u64(r.atomicsChecked);
}

/** Every cell count of a coverage grid, plus the total. */
inline void
digestGrid(Digest &d, const CoverageGrid &grid)
{
    const TransitionSpec &spec = grid.spec();
    for (std::size_t ev = 0; ev < spec.numEvents(); ++ev) {
        for (std::size_t st = 0; st < spec.numStates(); ++st)
            d.u64(grid.count(ev, st));
    }
    d.u64(grid.totalHits());
}

/** Compare against a pinned golden, printing on request or mismatch. */
inline void
checkGolden(const char *name, std::uint64_t actual,
            std::uint64_t expected)
{
    if (std::getenv("DRF_PRINT_GOLDENS")) {
        std::printf("GOLDEN %s = 0x%016llxull\n", name,
                    static_cast<unsigned long long>(actual));
    }
    EXPECT_EQ(actual, expected)
        << name << ": run changed observable behaviour; "
        << "actual digest 0x" << std::hex << actual;
}

/** The GPU tester preset every golden run uses. */
inline GpuTesterConfig
goldenGpuConfig(std::uint64_t seed)
{
    GpuTesterConfig cfg = makeGpuTesterConfig(/*actions_per_episode=*/30,
                                              /*episodes_per_wf=*/6,
                                              /*atomic_locs=*/10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.wfsPerCu = 2;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14;
    return cfg;
}

/** Digest one finished GPU run: result + all coverage grids. */
inline std::uint64_t
gpuDigestOf(ApuSystem &sys, const TesterResult &r)
{
    Digest d;
    digestResult(d, r);
    digestGrid(d, sys.l1CoverageUnion());
    digestGrid(d, sys.l2CoverageUnion());
    digestGrid(d, sys.directory().coverage());
    return d.value();
}

/** One GPU tester run digested end to end: result + all grids. */
inline std::uint64_t
gpuRunDigest(CacheSizeClass cache_class, std::uint64_t seed,
             FaultKind fault = FaultKind::None)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(cache_class, 4);
    sys_cfg.fault = fault;
    ApuSystem sys(sys_cfg);
    GpuTester tester(sys, goldenGpuConfig(seed));
    TesterResult r = tester.run();
    return gpuDigestOf(sys, r);
}

/** One CPU tester run digested end to end. */
inline std::uint64_t
cpuRunDigest(std::uint64_t seed)
{
    ApuSystemConfig sys_cfg;
    sys_cfg.numCus = 0;
    sys_cfg.numCpuCaches = 4;
    sys_cfg.cpu.sizeBytes = 512;
    sys_cfg.cpu.assoc = 2;
    ApuSystem sys(sys_cfg);

    CpuTesterConfig cfg;
    cfg.targetLoads = 2000;
    cfg.addrRangeBytes = 1024;
    cfg.seed = seed;
    CpuTester tester(sys, cfg);
    TesterResult r = tester.run();

    Digest d;
    digestResult(d, r);
    for (unsigned i = 0; i < sys.numCpuCaches(); ++i)
        digestGrid(d, sys.cpuCache(i).coverage());
    digestGrid(d, sys.directory().coverage());
    return d.value();
}

/**
 * The pinned golden digests, captured from the pre-flat-Packet tree.
 * Shared so the trace tests can assert record/replay reproduce exactly
 * these values.
 */
inline constexpr std::uint64_t kGoldenGpuSmallSeed9 =
    0x4f5e0ae3b9b25846ull;
inline constexpr std::uint64_t kGoldenGpuSmallSeed23 =
    0xdbb6a1ffb42b0a02ull;
inline constexpr std::uint64_t kGoldenGpuMixedSeed77 =
    0xab2339cdb860f944ull;
inline constexpr std::uint64_t kGoldenGpuLargeSeed5 =
    0xdd59604a70e5f302ull;
inline constexpr std::uint64_t kGoldenGpuLostWriteThroughSeed11 =
    0x2316e963be7b95acull;
inline constexpr std::uint64_t kGoldenGpuNonAtomicRmwSeed42 =
    0x507879d1f72fc83bull;
inline constexpr std::uint64_t kGoldenCpuSeed5 = 0x6ce9577431b4375full;
inline constexpr std::uint64_t kGoldenCpuSeed31 = 0x28199df9e88e6babull;

} // namespace drf::testing

#endif // DRF_TESTS_GOLDEN_DIGEST_HH
