/**
 * @file
 * Unit tests for the deterministic random source.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"

using namespace drf;

TEST(Random, SameSeedSameSequence)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.range(0, 1'000'000), b.range(0, 1'000'000));
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 32 && !any_diff; ++i)
        any_diff = a.below(1u << 30) != b.below(1u << 30);
    EXPECT_TRUE(any_diff);
}

TEST(Random, RangeInclusiveBounds)
{
    Random rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all of 3,4,5 appear
}

TEST(Random, RangeDegenerate)
{
    Random rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.range(42, 42), 42u);
}

TEST(Random, BelowBounds)
{
    Random rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, PctExtremes)
{
    Random rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.pct(0));
        EXPECT_TRUE(rng.pct(100));
    }
}

TEST(Random, PctRoughlyCalibrated)
{
    Random rng(13);
    int hits = 0;
    for (int i = 0; i < 10'000; ++i)
        hits += rng.pct(25) ? 1 : 0;
    EXPECT_GT(hits, 2000);
    EXPECT_LT(hits, 3000);
}

TEST(Random, RealInUnitInterval)
{
    Random rng(17);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChoicePicksFromVector)
{
    Random rng(19);
    std::vector<int> v{10, 20, 30};
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.choice(v));
    EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Random, ShuffleIsPermutation)
{
    Random rng(21);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Random, ForkIndependent)
{
    Random a(23);
    Random child = a.fork();
    // The fork must not replay the parent's stream.
    Random b(23);
    b.fork();
    // Parent streams stay in lockstep after forking at the same point.
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.below(1u << 20), b.below(1u << 20));
    (void)child;
}
