/**
 * @file
 * Determinism regression for the event-queue overhaul.
 *
 * Two independent guarantees are pinned here:
 *
 *  1. The new EventQueue (inline events, 4-ary heap, same-tick FIFO)
 *     fires events in exactly the same order as the original
 *     std::function + std::push_heap implementation
 *     (sim/legacy_event_queue.hh) for arbitrary schedules, including
 *     events that schedule further events.
 *
 *  2. Full tester runs remain bit-for-bit reproducible: the golden
 *     TesterResult statistics below were captured from the seed
 *     implementation before the queue rewrite and must never drift.
 *     A change here means the simulator is no longer deterministic
 *     per (configuration, seed) — which breaks campaign sharding and
 *     failure reproduction, not just these numbers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "sim/random.hh"
#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

/**
 * Drive a queue through a pseudorandom schedule where every event
 * records its identity and may schedule children, and return the
 * firing order. The schedule depends only on @p seed.
 */
template <typename Queue>
std::vector<std::uint64_t>
traceSchedule(std::uint64_t seed)
{
    Queue eq;
    std::vector<std::uint64_t> order;
    std::uint64_t next_id = 0;
    Random rng(seed);

    // Self-scheduling event chain: each firing may spawn 0-2 children
    // at delays 0-7 (delay 0 exercises the same-tick FIFO path).
    std::function<void(std::uint64_t)> fire =
        [&](std::uint64_t id) {
            order.push_back(id);
            std::uint64_t children = rng.below(3);
            for (std::uint64_t c = 0; c < children; ++c) {
                std::uint64_t child = next_id++;
                eq.scheduleAfter(rng.below(8),
                                 [&fire, child] { fire(child); });
            }
        };

    for (int i = 0; i < 200; ++i) {
        std::uint64_t id = next_id++;
        eq.schedule(rng.below(64), [&fire, id] { fire(id); });
    }
    eq.run(100000);
    return order;
}

} // namespace

TEST(QueueDeterminism, MatchesLegacyQueueFiringOrder)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 999ull}) {
        auto legacy = traceSchedule<LegacyEventQueue>(seed);
        auto current = traceSchedule<EventQueue>(seed);
        EXPECT_FALSE(current.empty());
        EXPECT_EQ(current, legacy) << "diverged for seed " << seed;
    }
}

namespace
{

TesterResult
runGoldenGpu(std::uint64_t seed)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(CacheSizeClass::Small, 4);
    ApuSystem sys(sys_cfg);
    GpuTesterConfig cfg = makeGpuTesterConfig(50, 5, 10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.variables.numNormalVars = 1024;
    cfg.variables.addrRangeBytes = 1 << 16;
    GpuTester tester(sys, cfg);
    return tester.run();
}

TesterResult
runGoldenCpu(std::uint64_t seed)
{
    ApuSystemConfig sys_cfg;
    sys_cfg.numCus = 0;
    sys_cfg.numGpuL2s = 1;
    sys_cfg.numCpuCaches = 2;
    ApuSystem sys(sys_cfg);
    CpuTesterConfig cfg;
    cfg.targetLoads = 2000;
    cfg.seed = seed;
    CpuTester tester(sys, cfg);
    return tester.run();
}

struct GpuGolden
{
    std::uint64_t seed;
    std::uint64_t events;
    std::uint64_t loads;
    std::uint64_t stores;
};

struct CpuGolden
{
    std::uint64_t seed;
    std::uint64_t events;
    std::uint64_t loads;
    std::uint64_t stores;
};

} // namespace

TEST(QueueDeterminism, GpuTesterGoldenStatistics)
{
    // Captured from the pre-overhaul std::function queue.
    const GpuGolden golden[] = {
        {1, 56922, 7144, 2419},
        {7, 58097, 7198, 2505},
        {42, 57913, 7287, 2406},
        {1234567, 57865, 7180, 2514},
    };
    for (const GpuGolden &g : golden) {
        TesterResult r = runGoldenGpu(g.seed);
        EXPECT_TRUE(r.passed) << "seed " << g.seed;
        EXPECT_EQ(r.ticks, 50000u) << "seed " << g.seed;
        EXPECT_EQ(r.events, g.events) << "seed " << g.seed;
        EXPECT_EQ(r.episodes, 40u) << "seed " << g.seed;
        EXPECT_EQ(r.loadsChecked, g.loads) << "seed " << g.seed;
        EXPECT_EQ(r.storesRetired, g.stores) << "seed " << g.seed;
        EXPECT_EQ(r.atomicsChecked, 80u) << "seed " << g.seed;
    }
}

TEST(QueueDeterminism, CpuTesterGoldenStatistics)
{
    const CpuGolden golden[] = {
        {3, 15512, 2002, 2067},
        {99, 15140, 2001, 1915},
    };
    for (const CpuGolden &g : golden) {
        TesterResult r = runGoldenCpu(g.seed);
        EXPECT_TRUE(r.passed) << "seed " << g.seed;
        EXPECT_EQ(r.ticks, 50000u) << "seed " << g.seed;
        EXPECT_EQ(r.events, g.events) << "seed " << g.seed;
        EXPECT_EQ(r.loadsChecked, g.loads) << "seed " << g.seed;
        EXPECT_EQ(r.storesRetired, g.stores) << "seed " << g.seed;
    }
}

TEST(QueueDeterminism, SameSeedTwiceIsBitIdentical)
{
    TesterResult a = runGoldenGpu(5);
    TesterResult b = runGoldenGpu(5);
    EXPECT_EQ(a.passed, b.passed);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_EQ(a.loadsChecked, b.loadsChecked);
    EXPECT_EQ(a.storesRetired, b.storesRetired);
    EXPECT_EQ(a.atomicsChecked, b.atomicsChecked);
}
