/**
 * @file
 * Fig. 5: GPU L1 and L2 transition hit-frequency heat maps under the
 * small-cache and large-cache tester configurations (identical test
 * length, episode length, and seed).
 *
 * Expected shape (Section IV.A): the large-cache run hits the cache-hit
 * transitions ([Load,V] in L1, [RdBlk,V] in L2) more often; the
 * small-cache run stresses the replacement transitions ([Repl,V] in L1,
 * [L2_Repl,V] in L2).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

RunOutcome
runClass(CacheSizeClass cache_class)
{
    GpuTestPreset preset;
    preset.name = std::string("fig5-") + cacheSizeClassName(cache_class);
    preset.cacheClass = cache_class;
    preset.system = makeGpuSystemConfig(cache_class);
    preset.tester = makeGpuTesterConfig(/*actions=*/100,
                                        /*episodes=*/20,
                                        /*atomic_locs=*/10,
                                        /*seed=*/1234);
    return runGpuPreset(preset);
}

} // namespace

int
main()
{
    std::printf("Fig. 5 — transition hit frequency, small vs large GPU "
                "caches\n");

    RunOutcome small = runClass(CacheSizeClass::Small);
    RunOutcome large = runClass(CacheSizeClass::Large);

    header("(a) small caches: 256B 2-way L1, 1KB 2-way L2");
    small.l1->renderHeatMap(std::cout);
    std::printf("\n");
    small.l2->renderHeatMap(std::cout);

    header("(b) large caches: 256KB 16-way L1, 1MB 16-way L2");
    large.l1->renderHeatMap(std::cout);
    std::printf("\n");
    large.l2->renderHeatMap(std::cout);

    // The shape checks the paper calls out, as explicit numbers.
    header("shape checks (paper Section IV.A)");
    auto l1_load_v = [](const RunOutcome &o) {
        return o.l1->count(GpuL1Cache::EvLoad, GpuL1Cache::StV);
    };
    auto l1_repl = [](const RunOutcome &o) {
        return o.l1->count(GpuL1Cache::EvRepl, GpuL1Cache::StV);
    };
    auto l2_rd_v = [](const RunOutcome &o) {
        return o.l2->count(GpuL2Cache::EvRdBlk, GpuL2Cache::StV);
    };
    auto l2_repl = [](const RunOutcome &o) {
        return o.l2->count(GpuL2Cache::EvL2Repl, GpuL2Cache::StV);
    };
    std::printf("[Load,V] hits   : small=%llu large=%llu  (large should "
                "win)\n",
                (unsigned long long)l1_load_v(small),
                (unsigned long long)l1_load_v(large));
    std::printf("[RdBlk,V] hits  : small=%llu large=%llu  (large should "
                "win)\n",
                (unsigned long long)l2_rd_v(small),
                (unsigned long long)l2_rd_v(large));
    std::printf("[Repl,V] hits   : small=%llu large=%llu  (small should "
                "win)\n",
                (unsigned long long)l1_repl(small),
                (unsigned long long)l1_repl(large));
    std::printf("[L2_Repl,V] hits: small=%llu large=%llu  (small should "
                "win)\n",
                (unsigned long long)l2_repl(small),
                (unsigned long long)l2_repl(large));
    return 0;
}
