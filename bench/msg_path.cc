/**
 * @file
 * Message-path microbench: sustained messages/sec through the crossbar
 * and the allocations-per-message figure the zero-allocation design
 * targets (0 in steady state).
 *
 * The binary replaces global operator new with a counting hook, runs a
 * cold start (channel creation, queue growth, pool fill) and then a
 * long steady-state ping-pong, and reports both phases' allocation
 * counts plus throughput to stdout and BENCH_msg_path.json.
 *
 * Usage: msg_path [--messages N] [--out FILE]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>

#include "bench_util.hh"
#include "campaign/campaign_json.hh"
#include "mem/network.hh"
#include "sim/event_queue.hh"

namespace
{

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t n)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace drf;
using Clock = std::chrono::steady_clock;

/** Echoes every packet back until the message budget is spent. */
class PingPong : public MsgReceiver
{
  public:
    PingPong(Crossbar &xbar, int self, int peer)
        : _xbar(xbar), _self(self), _peer(peer)
    {
    }

    void
    recvMsg(Packet &pkt) override
    {
        ++received;
        if (received < limit)
            _xbar.route(_self, _peer, std::move(pkt));
    }

    std::uint64_t received = 0;
    std::uint64_t limit = ~std::uint64_t{0};

  private:
    Crossbar &_xbar;
    int _self;
    int _peer;
};

void
runLoop(EventQueue &eq, Crossbar &xbar, PingPong &a, std::uint64_t messages)
{
    a.received = 0;
    a.limit = messages;

    Packet pkt;
    pkt.type = MsgType::WrThrough;
    pkt.addr = 0x1000;
    pkt.size = 4;
    pkt.setValueLE(0xDEADBEEF, 4);
    pkt.mask = fullLineMask;
    pkt.id = 1;
    xbar.route(2, 1, std::move(pkt));
    eq.run();
}

std::uint64_t
parseArg(int argc, char **argv, const std::string &flag,
         std::uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

std::string
parseOut(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            return argv[i + 1];
    }
    return "BENCH_msg_path.json";
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t messages =
        parseArg(argc, argv, "--messages", 2'000'000);

    EventQueue eq;
    Crossbar xbar("xbar", eq, /*latency=*/2);
    PingPong a(xbar, 1, 2);
    PingPong b(xbar, 2, 1);
    xbar.attach(1, a);
    xbar.attach(2, b);

    std::printf("Message-path microbench (sizeof(Packet) = %zu)\n\n",
                sizeof(Packet));

    // Cold start: first messages create channels, grow the queue
    // arrays, and fill the event block pool.
    g_allocs.store(0);
    g_counting.store(true);
    runLoop(eq, xbar, a, 10000);
    g_counting.store(false);
    const std::uint64_t cold_allocs = g_allocs.load();
    const double cold_per_msg =
        static_cast<double>(cold_allocs) / 10000.0;

    // Steady state: timed, with the allocation counter live the whole
    // way through.
    g_allocs.store(0);
    g_counting.store(true);
    Clock::time_point start = Clock::now();
    runLoop(eq, xbar, a, messages);
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    g_counting.store(false);
    const std::uint64_t steady_allocs = g_allocs.load();

    const double msgs_per_sec =
        elapsed > 0.0 ? static_cast<double>(a.received) / elapsed : 0.0;
    const double ns_per_msg =
        a.received > 0 ? elapsed * 1e9 / static_cast<double>(a.received)
                       : 0.0;
    const double steady_per_msg =
        a.received > 0 ? static_cast<double>(steady_allocs) /
                             static_cast<double>(a.received)
                       : 0.0;

    std::printf("cold start (10000 msgs):   %8llu allocations "
                "(%.4f/msg)\n",
                (unsigned long long)cold_allocs, cold_per_msg);
    std::printf("steady state (%llu msgs):\n",
                (unsigned long long)a.received);
    std::printf("  allocations:            %8llu (%.6f/msg)\n",
                (unsigned long long)steady_allocs, steady_per_msg);
    std::printf("  throughput:             %12.0f msgs/s "
                "(%.1f ns/msg)\n",
                msgs_per_sec, ns_per_msg);

    JsonWriter w;
    w.beginObject();
    w.key("bench").value("msg_path");
    drf::bench::jsonProvenance(w);
    w.key("packet_bytes").value(
        static_cast<std::uint64_t>(sizeof(Packet)));
    w.key("cold_messages").value(static_cast<std::uint64_t>(10000));
    w.key("cold_allocations").value(cold_allocs);
    w.key("cold_allocations_per_message").value(cold_per_msg);
    w.key("steady_messages").value(a.received);
    w.key("steady_allocations").value(steady_allocs);
    w.key("steady_allocations_per_message").value(steady_per_msg);
    w.key("messages_per_sec").value(msgs_per_sec);
    w.key("ns_per_message").value(ns_per_msg);
    w.endObject();

    std::ofstream out(parseOut(argc, argv));
    out << w.str() << "\n";
    if (out)
        std::printf("\nwrote %s\n", parseOut(argc, argv).c_str());

    if (steady_allocs != 0) {
        std::fprintf(stderr, "WARNING: steady state expected 0 "
                             "allocations, measured %llu\n",
                     (unsigned long long)steady_allocs);
        return 1;
    }
    return 0;
}
