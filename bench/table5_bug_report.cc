/**
 * @file
 * Table V + Section V case study: arm each injected protocol bug, run
 * the GPU tester against it, and print the autonomous failure reports —
 * the read-write inconsistency report with its last-reader/last-writer
 * records (Table V), the duplicate-atomic report, and the watchdog's
 * deadlock report.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

TesterResult
runWithFault(FaultKind fault, unsigned trigger_pct, std::uint64_t seed,
             CacheSizeClass cache_class = CacheSizeClass::Small)
{
    ApuSystemConfig sys_cfg = makeGpuSystemConfig(cache_class, 4);
    sys_cfg.fault = fault;
    sys_cfg.faultTriggerPct = trigger_pct;
    ApuSystem sys(sys_cfg);

    GpuTesterConfig cfg = makeGpuTesterConfig(/*actions=*/50,
                                              /*episodes=*/40,
                                              /*atomic_locs=*/10, seed);
    cfg.lanes = 8;
    cfg.episodeGen.lanes = 8;
    cfg.variables.numNormalVars = 512;
    cfg.variables.addrRangeBytes = 1 << 14;
    GpuTester tester(sys, cfg);
    return tester.run();
}

void
caseStudy(const char *title, FaultKind fault, unsigned trigger_pct,
          std::uint64_t seed,
          CacheSizeClass cache_class = CacheSizeClass::Small)
{
    std::printf("\n==== case study: %s (bug: %s, trigger %u%%)\n", title,
                faultKindName(fault), trigger_pct);
    TesterResult r = runWithFault(fault, trigger_pct, seed, cache_class);
    if (r.passed) {
        std::printf("NOT DETECTED (tester passed) — increase test "
                    "length\n");
        return;
    }
    std::printf("detected after %llu simulated cycles, %llu loads "
                "checked, %llu atomics checked\n",
                (unsigned long long)r.ticks,
                (unsigned long long)r.loadsChecked,
                (unsigned long long)r.atomicsChecked);
    std::printf("---- tester report "
                "------------------------------------------\n%s\n",
                r.report.c_str());
}

} // namespace

int
main()
{
    std::printf("Table V / Section V — autonomous bug detection case "
                "studies\n");

    caseStudy("read-write inconsistency from racing false-sharing "
              "write-throughs (Table V)",
              FaultKind::LostWriteThrough, 100, 5);

    caseStudy("duplicate atomic return values from a non-atomic "
              "read-modify-write",
              FaultKind::NonAtomicRmw, 100, 6);

    // Large caches keep stale lines alive, making this bug detectable
    // fast (a small cache would evict the stale data by luck).
    caseStudy("stale loads from a dropped acquire invalidation",
              FaultKind::DropAcquireInvalidate, 100, 7,
              CacheSizeClass::Large);

    caseStudy("deadlock from a dropped write-completion ack (forward "
              "progress watchdog)",
              FaultKind::DropWriteAck, 100, 8);

    return 0;
}
