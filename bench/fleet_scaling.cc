/**
 * @file
 * Fleet throughput vs. worker-process count, with a determinism check
 * riding along: every fleet size must reproduce the serial run's union
 * digest, or the numbers describe a different campaign and the bench
 * aborts.
 *
 * Written to BENCH_fleet.json: one point per fleet size — wall
 * seconds, speedup vs the workers=0 degenerate fleet (coordinator
 * executes everything in-process, in index order), events/s, and
 * per-point scaling_valid. As in campaign_scaling, a speedup is only
 * meaningful when the host has slack beyond the worker count
 * (hardware_concurrency >= 2 * workers); the regression gate skips
 * speedup — but keeps gating events/s — when scaling_valid is false,
 * so a single-core CI box doesn't fail the multi-core promise it
 * cannot test.
 *
 * Usage: fleet_scaling [--shards N] [--batch N] [--out FILE]
 *                      [--workers-list 0,2,4]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "fleet/fleet.hh"
#include "guidance/sources.hh"

using namespace drf;
using namespace drf::bench;
using namespace drf::fleet;

namespace
{

std::uint64_t
parseArg(int argc, char **argv, const std::string &flag,
         std::uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

std::string
parseStr(int argc, char **argv, const std::string &flag,
         const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return fallback;
}

std::vector<unsigned>
parseWorkersList(const std::string &text)
{
    std::vector<unsigned> out;
    const char *p = text.c_str();
    while (*p) {
        char *end = nullptr;
        out.push_back(
            static_cast<unsigned>(std::strtoul(p, &end, 10)));
        p = (end && *end == ',') ? end + 1 : (end ? end : p + 1);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t num_shards =
        static_cast<std::size_t>(parseArg(argc, argv, "--shards", 16));
    const std::size_t batch =
        static_cast<std::size_t>(parseArg(argc, argv, "--batch", 4));
    const std::string out_path =
        parseStr(argc, argv, "--out", "BENCH_fleet.json");
    const unsigned hw = std::thread::hardware_concurrency();

    std::vector<unsigned> fleet_sizes = parseWorkersList(
        parseStr(argc, argv, "--workers-list", "0,2,4"));
    if (fleet_sizes.empty() || fleet_sizes.front() != 0)
        fleet_sizes.insert(fleet_sizes.begin(), 0);

    std::printf("Fleet scaling benchmark\n");
    std::printf("hardware_concurrency: %u\n", hw);
    std::printf("campaign: %zu sweep shards, batch %zu\n\n", num_shards,
                batch);

    struct Point
    {
        unsigned workers = 0;
        double wallSeconds = 0.0;
        double speedup = 0.0;
        double eventsPerSec = 0.0;
        std::uint64_t releases = 0;
        std::uint64_t duplicateResults = 0;
        bool scalingValid = false;
    };
    std::vector<Point> points;
    double serial_wall = 0.0;
    std::uint64_t serial_digest = 0;

    for (unsigned workers : fleet_sizes) {
        SourceConfig src_cfg;
        src_cfg.masterSeed = 1;
        src_cfg.batchSize = batch;
        src_cfg.maxShards = num_shards;
        SweepSource source(src_cfg);

        LocalFleetConfig cfg;
        cfg.workers = workers;
        cfg.coordinator.campaign.jobs = 1;
        FleetResult res = runLocalFleet(source, cfg);
        if (!res.adaptive.passed ||
            res.adaptive.shardsRun != num_shards) {
            std::fprintf(stderr,
                          "fleet FAILED at workers=%u: ran %zu of %zu, "
                          "passed=%d\n",
                          workers, res.adaptive.shardsRun, num_shards,
                          int(res.adaptive.passed));
            return 1;
        }
        if (workers == 0) {
            serial_wall = res.adaptive.wallSeconds;
            serial_digest = res.adaptive.unionDigest;
        } else if (res.adaptive.unionDigest != serial_digest) {
            std::fprintf(stderr,
                          "fleet DIVERGED at workers=%u: digest "
                          "%016llx vs serial %016llx\n",
                          workers,
                          (unsigned long long)res.adaptive.unionDigest,
                          (unsigned long long)serial_digest);
            return 1;
        }

        Point p;
        p.workers = workers;
        p.wallSeconds = res.adaptive.wallSeconds;
        p.speedup = p.wallSeconds > 0.0 ? serial_wall / p.wallSeconds
                                        : 0.0;
        p.eventsPerSec =
            p.wallSeconds > 0.0
                ? double(res.adaptive.totalEvents) / p.wallSeconds
                : 0.0;
        p.releases = res.releases;
        p.duplicateResults = res.duplicateResults;
        p.scalingValid =
            workers > 0 && hw != 0 && hw >= 2 * workers;
        points.push_back(p);
        std::printf("  workers=%-3u wall %7.3f s  speedup %5.2fx  "
                    "%10.0f events/s  re-leases %llu%s\n",
                    p.workers, p.wallSeconds, p.speedup, p.eventsPerSec,
                    (unsigned long long)p.releases,
                    p.scalingValid ? "" : "  [scaling n/a]");
    }

    JsonWriter w;
    w.beginObject();
    w.key("bench").value("fleet_scaling");
    w.key("hardware_concurrency").value(hw);
    jsonProvenance(w);
    w.key("num_shards").value(static_cast<std::uint64_t>(num_shards));
    w.key("batch_size").value(static_cast<std::uint64_t>(batch));
    w.key("union_digest_consistent").value(true);

    w.key("scaling").beginArray();
    for (const Point &p : points) {
        w.beginObject();
        w.key("workers").value(p.workers);
        w.key("wall_seconds").value(p.wallSeconds);
        w.key("speedup_vs_serial").value(p.speedup);
        w.key("events_per_sec").value(p.eventsPerSec);
        w.key("releases").value(p.releases);
        w.key("duplicate_results").value(p.duplicateResults);
        w.key("scaling_valid").value(p.scalingValid);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    writeFileReport(out_path, w.str());

    double best = 0.0;
    for (const Point &p : points)
        best = std::max(best, p.speedup);
    std::printf("\nbest speedup: %.2fx (>=0.75x per worker expected "
                "when the host has the cores)\n",
                best);
    return 0;
}
