/**
 * @file
 * google-benchmark microbenchmarks of the framework's hot paths:
 * episode generation, event-queue throughput, cache-array lookups, and
 * a small end-to-end tester run. These quantify why the tester is fast
 * enough to replace application-based regression testing.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"
#include "tester/configs.hh"
#include "tester/episode.hh"
#include "tester/gpu_tester.hh"

using namespace drf;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// Same pattern on the original std::function + binary-heap queue; the
// delta is the win of the inline-event representation.
void
BM_LegacyEventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        LegacyEventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyEventQueueScheduleRun);

// Pure same-tick fast path: everything lands in the FIFO lane.
void
BM_EventQueueScheduleNow(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleNow([&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleNow);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray array(64 * 1024, 8, 64);
    for (int i = 0; i < 512; ++i)
        array.allocate(static_cast<Addr>(i) * 64);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.findEntry(addr));
        addr = (addr + 64) % (512 * 64);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_EpisodeGeneration(benchmark::State &state)
{
    Random rng(1);
    VariableMapConfig vcfg;
    vcfg.numSyncVars = 10;
    vcfg.numNormalVars = 4096;
    vcfg.addrRangeBytes = 1 << 20;
    VariableMap vmap(vcfg, rng);
    EpisodeGenConfig gcfg;
    gcfg.actionsPerEpisode = static_cast<unsigned>(state.range(0));
    gcfg.lanes = 16;
    EpisodeGenerator gen(vmap, gcfg, rng);

    Episode e;
    for (auto _ : state) {
        gen.generateInto(e, 0);
        benchmark::DoNotOptimize(e.numActions());
        gen.retire(e);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_EpisodeGeneration)->Arg(100)->Arg(200);

void
BM_TesterEndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        ApuSystemConfig sys_cfg =
            makeGpuSystemConfig(CacheSizeClass::Small, 2);
        ApuSystem sys(sys_cfg);
        GpuTesterConfig cfg =
            makeGpuTesterConfig(20, 2, 10, /*seed=*/9);
        cfg.lanes = 8;
        cfg.episodeGen.lanes = 8;
        cfg.variables.numNormalVars = 512;
        cfg.variables.addrRangeBytes = 1 << 14;
        GpuTester tester(sys, cfg);
        TesterResult r = tester.run();
        if (!r.passed)
            state.SkipWithError("tester failed");
        benchmark::DoNotOptimize(r.events);
    }
}
BENCHMARK(BM_TesterEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
