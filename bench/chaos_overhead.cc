/**
 * @file
 * Chaos layer overhead: what the integrity machinery costs on the
 * paths it sits on. Not CI-gated — the numbers document that wire v2
 * CRC framing, result digests, and journal record sealing are cheap
 * relative to shard execution, so leaving them always-on is free.
 *
 * Reports, per payload size:
 *   - crc32c + fnv1a64 throughput (GiB/s)
 *   - frame encode (v2 header + CRC) vs a plain memcpy of the payload
 *   - journal record seal + unseal round trips per second
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/journal.hh"
#include "chaos/chaos.hh"
#include "fleet/wire.hh"

using namespace drf;

namespace
{

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string
makePayload(std::size_t size)
{
    std::string payload;
    payload.reserve(size);
    chaos::ChaosRng rng(size); // deterministic, incompressible-ish
    while (payload.size() < size)
        payload.push_back(static_cast<char>(rng.next() & 0xff));
    return payload;
}

/** Run fn() until ~0.2 s elapse; returns (iterations, seconds). */
template <typename Fn>
std::pair<std::uint64_t, double>
timeLoop(Fn &&fn)
{
    std::uint64_t iters = 0;
    Clock::time_point start = Clock::now();
    double elapsed = 0.0;
    do {
        for (int i = 0; i < 32; ++i)
            fn();
        iters += 32;
        elapsed = seconds(start);
    } while (elapsed < 0.2);
    return {iters, elapsed};
}

} // namespace

int
main()
{
    std::printf("# chaos / integrity overhead "
                "(informational, not CI-gated)\n");
    std::printf("%-10s %12s %12s %14s %14s\n", "payload", "crc GiB/s",
                "fnv GiB/s", "encode Mfr/s", "seal kRT/s");

    std::uint32_t sink32 = 0;
    std::uint64_t sink64 = 0;
    std::size_t sink_len = 0;

    for (std::size_t size : {64u, 512u, 4096u, 65536u}) {
        std::string payload = makePayload(size);

        auto [crc_iters, crc_s] = timeLoop(
            [&] { sink32 ^= chaos::crc32c(payload); });
        double crc_gibs = double(size) * double(crc_iters) /
                          crc_s / (1024.0 * 1024.0 * 1024.0);

        auto [fnv_iters, fnv_s] = timeLoop(
            [&] { sink64 ^= chaos::fnv1a64(payload); });
        double fnv_gibs = double(size) * double(fnv_iters) /
                          fnv_s / (1024.0 * 1024.0 * 1024.0);

        auto [enc_iters, enc_s] = timeLoop([&] {
            std::string wire =
                fleet::encodeFrame(fleet::MsgType::Result, payload);
            sink_len += wire.size();
        });
        double enc_mfps = double(enc_iters) / enc_s / 1e6;

        auto [seal_iters, seal_s] = timeLoop([&] {
            std::string sealed = sealJournalRecord(payload);
            std::string inner;
            if (unsealJournalRecord(sealed, inner) !=
                JournalSeal::Ok)
                std::abort();
            sink_len += inner.size();
        });
        double seal_krts = double(seal_iters) / seal_s / 1e3;

        std::printf("%-10zu %12.2f %12.2f %14.2f %14.1f\n", size,
                    crc_gibs, fnv_gibs, enc_mfps, seal_krts);
    }

    // Keep the sinks observable so the loops can't be elided.
    std::fprintf(stderr, "# sink %08x %016llx %zu\n", sink32,
                 (unsigned long long)sink64, sink_len);
    return 0;
}
