/**
 * @file
 * Guided vs. random campaign convergence (the src/guidance/ payoff).
 *
 * For each of three master seeds:
 *
 *  1. random baseline: a blind 32-shard campaign uniformly sampling the
 *     scaled-down Table III arm set, recording its total episodes and
 *     its final union active-cell counts (L1, L2);
 *  2. guided: the coverage-guided scheduler over the same arms, told to
 *     stop as soon as its union reaches the baseline's active counts
 *     (with the baseline's episode total as a hard budget so it can
 *     never "win" by spending more);
 *  3. guided again with the same master seed, asserting the decision
 *     sequence and union digest reproduce bit-identically.
 *
 * The headline metric is the episode reduction: guided is expected to
 * reach the random campaign's union coverage with >= 25% fewer total
 * episodes (median over the three seeds). Results go to
 * BENCH_guidance.json for tools/check_bench_regression.py; the binary
 * exits nonzero if coverage is not reached, determinism is broken, or
 * the median reduction falls below the threshold.
 *
 * Usage: guidance_convergence [--jobs N] [--out FILE]
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "guidance/adaptive_campaign.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

constexpr double kMinMedianReductionPct = 25.0;

/** The scaled-down arm pool: Table III genomes on the bench system. */
std::vector<ConfigGenome>
benchArms()
{
    std::vector<ConfigGenome> arms = tableIIIArms();
    for (ConfigGenome &arm : arms)
        arm.numCus = 4;
    return arms;
}

GenomeScale
benchScale()
{
    GenomeScale scale;
    scale.lanes = 8;
    scale.wfsPerCu = 2;
    scale.numNormalVars = 512;
    return scale;
}

SourceConfig
benchSourceConfig(std::uint64_t master_seed)
{
    SourceConfig cfg;
    cfg.arms = benchArms();
    cfg.scale = benchScale();
    cfg.masterSeed = master_seed;
    cfg.batchSize = 2;
    cfg.maxShards = 32;
    return cfg;
}

struct SeedOutcome
{
    std::uint64_t masterSeed = 0;
    std::uint64_t randomEpisodes = 0;
    std::size_t randomL1Active = 0;
    std::size_t randomL2Active = 0;
    std::uint64_t guidedEpisodes = 0;
    std::size_t guidedShards = 0;
    std::size_t guidedRounds = 0;
    double reductionPct = 0.0;
    bool targetReached = false;
    bool deterministic = false;
};

bool
sameDecisions(const std::vector<GuidanceDecision> &a,
              const std::vector<GuidanceDecision> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].arm != b[i].arm || a[i].probe != b[i].probe ||
            a[i].mutant != b[i].mutant || a[i].seeds != b[i].seeds ||
            a[i].genome != b[i].genome ||
            a[i].episodes != b[i].episodes ||
            a[i].newCells != b[i].newCells) {
            return false;
        }
    }
    return true;
}

AdaptiveCampaignResult
runGuided(std::uint64_t master_seed, std::size_t target_l1,
          std::size_t target_l2, std::uint64_t episode_budget,
          unsigned jobs)
{
    SourceConfig scfg = benchSourceConfig(master_seed);
    // Generous shard headroom: the probe cap keeps shards cheap, and
    // the episode budget (not the shard count) is the real limiter.
    scfg.maxShards = 96;

    GuidedOptions opts;
    opts.targetL1Active = target_l1;
    opts.targetL2Active = target_l2;
    opts.episodeBudget = episode_budget;

    GuidedSource source(scfg, opts);
    AdaptiveCampaignConfig acfg;
    acfg.jobs = jobs;
    return runAdaptiveCampaign(source, acfg);
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = parseJobs(argc, argv);
    std::string out_path = "BENCH_guidance.json";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            out_path = argv[i + 1];
    }

    std::printf("Guided vs. random campaign convergence\n");
    std::printf("arms: 24 scaled Table III genomes; random budget: 32 "
                "shards\n\n");

    const std::vector<std::uint64_t> master_seeds{1, 2, 3};
    std::vector<SeedOutcome> outcomes;

    for (std::uint64_t master_seed : master_seeds) {
        SeedOutcome o;
        o.masterSeed = master_seed;

        // --- random baseline ---------------------------------------
        SourceConfig rcfg = benchSourceConfig(master_seed);
        RandomSource random_source(rcfg);
        AdaptiveCampaignConfig acfg;
        acfg.jobs = jobs;
        AdaptiveCampaignResult random_res =
            runAdaptiveCampaign(random_source, acfg);
        if (!random_res.passed) {
            std::fprintf(stderr, "random baseline FAILED (seed %llu)\n",
                         (unsigned long long)master_seed);
            return 1;
        }
        if (random_res.shardsRun != rcfg.maxShards) {
            std::fprintf(stderr,
                         "random baseline INCOMPLETE (seed %llu): ran "
                         "%zu of %zu shards\n",
                         (unsigned long long)master_seed,
                         random_res.shardsRun, rcfg.maxShards);
            return 1;
        }
        o.randomEpisodes = random_res.totalEpisodes;
        o.randomL1Active =
            random_res.l1Union ? random_res.l1Union->activeCount("") : 0;
        o.randomL2Active =
            random_res.l2Union ? random_res.l2Union->activeCount("") : 0;

        // --- guided to the same coverage ---------------------------
        AdaptiveCampaignResult guided_res =
            runGuided(master_seed, o.randomL1Active, o.randomL2Active,
                      o.randomEpisodes, jobs);
        if (!guided_res.passed) {
            std::fprintf(stderr, "guided campaign FAILED (seed %llu)\n",
                         (unsigned long long)master_seed);
            return 1;
        }
        if (guided_res.shardsRun == 0) {
            std::fprintf(stderr,
                         "guided campaign INCOMPLETE (seed %llu): no "
                         "shards ran\n",
                         (unsigned long long)master_seed);
            return 1;
        }
        o.guidedEpisodes = guided_res.totalEpisodes;
        o.guidedShards = guided_res.shardsRun;
        o.guidedRounds = guided_res.rounds;
        std::size_t g_l1 =
            guided_res.l1Union ? guided_res.l1Union->activeCount("") : 0;
        std::size_t g_l2 =
            guided_res.l2Union ? guided_res.l2Union->activeCount("") : 0;
        o.targetReached =
            g_l1 >= o.randomL1Active && g_l2 >= o.randomL2Active;
        o.reductionPct =
            o.randomEpisodes > 0
                ? (1.0 - static_cast<double>(o.guidedEpisodes) /
                             static_cast<double>(o.randomEpisodes)) *
                      100.0
                : 0.0;

        // --- determinism: re-run, expect identical decisions -------
        AdaptiveCampaignResult rerun =
            runGuided(master_seed, o.randomL1Active, o.randomL2Active,
                      o.randomEpisodes, jobs);
        o.deterministic =
            rerun.unionDigest == guided_res.unionDigest &&
            sameDecisions(rerun.decisions, guided_res.decisions);

        std::printf("seed %llu: random %6llu eps (L1 %zu, L2 %zu) | "
                    "guided %6llu eps in %zu shards | "
                    "reduction %5.1f%% | target %s | replay %s\n",
                    (unsigned long long)master_seed,
                    (unsigned long long)o.randomEpisodes,
                    o.randomL1Active, o.randomL2Active,
                    (unsigned long long)o.guidedEpisodes, o.guidedShards,
                    o.reductionPct, o.targetReached ? "reached" : "MISSED",
                    o.deterministic ? "identical" : "DIVERGED");
        outcomes.push_back(o);
    }

    std::vector<double> reductions;
    bool all_reached = true;
    bool all_deterministic = true;
    for (const SeedOutcome &o : outcomes) {
        reductions.push_back(o.reductionPct);
        all_reached = all_reached && o.targetReached;
        all_deterministic = all_deterministic && o.deterministic;
    }
    std::sort(reductions.begin(), reductions.end());
    double median_reduction = reductions[reductions.size() / 2];
    bool pass = all_reached && all_deterministic &&
                median_reduction >= kMinMedianReductionPct;

    std::printf("\nmedian episode reduction: %.1f%% (threshold "
                ">= %.0f%%)\n",
                median_reduction, kMinMedianReductionPct);
    std::printf("guidance convergence: %s\n", pass ? "PASS" : "FAIL");

    JsonWriter w;
    w.beginObject();
    w.key("bench").value("guidance_convergence");
    jsonProvenance(w);
    w.key("threshold_reduction_pct").value(kMinMedianReductionPct);
    w.key("median_reduction_pct").value(median_reduction);
    w.key("all_targets_reached").value(all_reached);
    w.key("deterministic").value(all_deterministic);
    w.key("pass").value(pass);
    w.key("seeds").beginArray();
    for (const SeedOutcome &o : outcomes) {
        w.beginObject();
        w.key("master_seed").value(o.masterSeed);
        w.key("random_episodes").value(o.randomEpisodes);
        w.key("random_l1_active")
            .value(static_cast<std::uint64_t>(o.randomL1Active));
        w.key("random_l2_active")
            .value(static_cast<std::uint64_t>(o.randomL2Active));
        w.key("guided_episodes").value(o.guidedEpisodes);
        w.key("guided_shards")
            .value(static_cast<std::uint64_t>(o.guidedShards));
        w.key("guided_rounds")
            .value(static_cast<std::uint64_t>(o.guidedRounds));
        w.key("reduction_pct").value(o.reductionPct);
        w.key("target_reached").value(o.targetReached);
        w.key("deterministic").value(o.deterministic);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    writeFileReport(out_path, w.str());
    return pass ? 0 : 1;
}
