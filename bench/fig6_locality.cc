/**
 * @file
 * Fig. 6: per-application data-locality breakdown (Koo et al.
 * taxonomy): streaming / intra-WF / mixed-WF / inter-WF fractions for
 * all 26 applications, showing the suite spans vastly different
 * behaviours.
 */

#include <cstdio>

#include "apps/app_suite.hh"
#include "apps/locality.hh"

using namespace drf;

int
main()
{
    std::printf("Fig. 6 — data locality in selected applications\n\n");
    std::printf("%-12s %-11s %10s %9s %7s %8s\n", "app", "suite",
                "streaming", "intraWF", "mixWF", "interWF");

    double worst_streaming = 1.0, best_streaming = 0.0;
    for (const AppProfile &profile : makeAppSuite()) {
        AppTrace trace = generateAppTrace(profile, /*num_cus=*/8,
                                          0x10'0000, 64);
        LocalityBreakdown b = profileLocality(trace, 64);
        std::printf("%-12s %-11s %9.1f%% %8.1f%% %6.1f%% %7.1f%%\n",
                    profile.name.c_str(), profile.suite.c_str(),
                    100.0 * b.frac(b.streaming),
                    100.0 * b.frac(b.intraWf),
                    100.0 * b.frac(b.mixedWf),
                    100.0 * b.frac(b.interWf));
        worst_streaming = std::min(worst_streaming, b.frac(b.streaming));
        best_streaming = std::max(best_streaming, b.frac(b.streaming));
    }

    std::printf("\nstreaming fraction spans %.1f%% .. %.1f%% across the "
                "suite — the diversity Fig. 6 demonstrates\n",
                100.0 * worst_streaming, 100.0 * best_streaming);
    return 0;
}
