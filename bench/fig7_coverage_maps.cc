/**
 * @file
 * Fig. 7: classification maps (Undef / Inact / Active / Impsb) of the
 * GPU L1 and L2 transitions, comparing the GPU tester's union coverage
 * against the union of all 26 applications.
 *
 * Expected shape: identical Undef cells in both maps; the tester
 * activates more cells; the L2 PrbInv column is Impsb for the tester
 * but reachable (and partly Active) for applications.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

int
main()
{
    std::printf("Fig. 7 — GPU L1/L2 transitions covered by GPU tester "
                "vs applications\n");

    // Tester union over a compact configuration set: all three cache
    // classes x both atomic-location counts, with a dense address range
    // so transient-state collisions (the rare cells) appear quickly.
    CoverageGrid tester_l1(GpuL1Cache::spec());
    CoverageGrid tester_l2(GpuL2Cache::spec());
    unsigned run_idx = 0;
    for (auto cache_class :
         {CacheSizeClass::Small, CacheSizeClass::Large,
          CacheSizeClass::Mixed}) {
        for (unsigned locs : {10u, 100u}) {
            GpuTestPreset preset;
            preset.name = "fig7-" +
                          std::string(cacheSizeClassName(cache_class)) +
                          "-" + std::to_string(locs);
            preset.cacheClass = cache_class;
            preset.system = makeGpuSystemConfig(cache_class);
            preset.tester = makeGpuTesterConfig(
                /*actions=*/200, /*episodes=*/30, locs,
                /*seed=*/42 + run_idx);
            preset.tester.variables.addrRangeBytes = 1 << 16;
            RunOutcome out = runGpuPreset(preset);
            tester_l1.merge(*out.l1);
            tester_l2.merge(*out.l2);
            ++run_idx;
        }
    }

    // Application union over the whole suite.
    CoverageGrid apps_l1(GpuL1Cache::spec());
    CoverageGrid apps_l2(GpuL2Cache::spec());
    for (const AppProfile &profile : makeAppSuite()) {
        RunOutcome out = runApp(profile);
        apps_l1.merge(*out.l1);
        apps_l2.merge(*out.l2);
    }

    header("(a) GPU tester");
    tester_l1.renderClassMap(std::cout, "gpu_tester");
    std::printf("\n");
    tester_l2.renderClassMap(std::cout, "gpu_tester");
    std::printf("\nL1 coverage: %.1f%%   L2 coverage: %.1f%% (of "
                "tester-reachable transitions)\n",
                tester_l1.coveragePct("gpu_tester"),
                tester_l2.coveragePct("gpu_tester"));

    header("(b) all applications");
    apps_l1.renderClassMap(std::cout);
    std::printf("\n");
    apps_l2.renderClassMap(std::cout);
    std::printf("\nL1 coverage: %.1f%%   L2 coverage: %.1f%% (same "
                "denominator as the tester)\n",
                apps_l1.coveragePct("gpu_tester"),
                apps_l2.coveragePct("gpu_tester"));

    header("summary");
    std::printf("L1: tester %.1f%% vs apps %.1f%% (paper: 94%% vs "
                "~88%%)\n",
                tester_l1.coveragePct("gpu_tester"),
                apps_l1.coveragePct("gpu_tester"));
    std::printf("L2: tester %.1f%% vs apps %.1f%% (paper: 100%% vs "
                "75%%)\n",
                tester_l2.coveragePct("gpu_tester"),
                apps_l2.coveragePct("gpu_tester"));
    return 0;
}
