/**
 * @file
 * Fig. 7: classification maps (Undef / Inact / Active / Impsb) of the
 * GPU L1 and L2 transitions, comparing the GPU tester's union coverage
 * against the union of all 26 applications.
 *
 * Expected shape: identical Undef cells in both maps; the tester
 * activates more cells; the L2 PrbInv column is Impsb for the tester
 * but reachable (and partly Active) for applications.
 *
 * Both unions are computed by the campaign runner (--jobs / DRF_JOBS
 * control the worker count); the merged grids are order-independent,
 * so the maps match a serial run exactly.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "campaign/campaign.hh"

using namespace drf;
using namespace drf::bench;

int
main(int argc, char **argv)
{
    std::printf("Fig. 7 — GPU L1/L2 transitions covered by GPU tester "
                "vs applications\n");

    CampaignConfig cfg;
    cfg.jobs = parseJobs(argc, argv);
    cfg.stopOnFailure = false;

    // Tester union over a compact configuration set: all three cache
    // classes x both atomic-location counts, with a dense address range
    // so transient-state collisions (the rare cells) appear quickly.
    std::vector<ShardSpec> tester_shards;
    unsigned run_idx = 0;
    for (auto cache_class :
         {CacheSizeClass::Small, CacheSizeClass::Large,
          CacheSizeClass::Mixed}) {
        for (unsigned locs : {10u, 100u}) {
            GpuTestPreset preset;
            preset.name = "fig7-" +
                          std::string(cacheSizeClassName(cache_class)) +
                          "-" + std::to_string(locs);
            preset.cacheClass = cache_class;
            preset.system = makeGpuSystemConfig(cache_class);
            preset.tester = makeGpuTesterConfig(
                /*actions=*/200, /*episodes=*/30, locs,
                /*seed=*/42 + run_idx);
            preset.tester.variables.addrRangeBytes = 1 << 16;
            tester_shards.push_back(gpuShard(preset));
            ++run_idx;
        }
    }
    CampaignResult tester = runCampaign(std::move(tester_shards), cfg);

    // Application union over the whole suite.
    std::vector<ShardSpec> app_shards;
    for (const AppProfile &profile : makeAppSuite())
        app_shards.push_back(appShard(profile));
    CampaignResult apps = runCampaign(std::move(app_shards), cfg);

    header("(a) GPU tester");
    tester.l1Union->renderClassMap(std::cout, "gpu_tester");
    std::printf("\n");
    tester.l2Union->renderClassMap(std::cout, "gpu_tester");
    std::printf("\nL1 coverage: %.1f%%   L2 coverage: %.1f%% (of "
                "tester-reachable transitions)\n",
                tester.l1Union->coveragePct("gpu_tester"),
                tester.l2Union->coveragePct("gpu_tester"));

    header("(b) all applications");
    apps.l1Union->renderClassMap(std::cout);
    std::printf("\n");
    apps.l2Union->renderClassMap(std::cout);
    std::printf("\nL1 coverage: %.1f%%   L2 coverage: %.1f%% (same "
                "denominator as the tester)\n",
                apps.l1Union->coveragePct("gpu_tester"),
                apps.l2Union->coveragePct("gpu_tester"));

    header("summary");
    std::printf("L1: tester %.1f%% vs apps %.1f%% (paper: 94%% vs "
                "~88%%)\n",
                tester.l1Union->coveragePct("gpu_tester"),
                apps.l1Union->coveragePct("gpu_tester"));
    std::printf("L2: tester %.1f%% vs apps %.1f%% (paper: 100%% vs "
                "75%%)\n",
                tester.l2Union->coveragePct("gpu_tester"),
                apps.l2Union->coveragePct("gpu_tester"));
    return (tester.passed && apps.passed) ? 0 : 1;
}
