/**
 * @file
 * The headline comparison (Sections IV.B and VII).
 *
 * The paper's claim has two halves:
 *   1. coverage: the GPU tester union reaches 94% (L1) / 100% (L2) of
 *      reachable transitions, 6.25 / 25 points above the 26-application
 *      union;
 *   2. speed: the tester reaches similar-or-higher coverage "more than
 *      50 times faster" than application-based testing.
 *
 * This bench reproduces both: it runs the full application suite to get
 * the app union and its cumulative testing time, then replays the
 * Table III tester sweep cheapest-first and reports how much testing
 * time the tester needed before its accumulated union matched the
 * application union on both controllers.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

int
main()
{
    std::printf("Headline summary — GPU tester vs application-based "
                "testing\n");

    // ---- application-based testing ------------------------------------
    CoverageGrid apps_l1(GpuL1Cache::spec());
    CoverageGrid apps_l2(GpuL2Cache::spec());
    double apps_host = 0.0;
    for (const AppProfile &profile : makeAppSuite()) {
        RunOutcome out = runApp(profile);
        apps_l1.merge(*out.l1);
        apps_l2.merge(*out.l2);
        apps_host += out.hostSeconds;
    }
    double apps_l1_pct = apps_l1.coveragePct("gpu_tester");
    double apps_l2_pct = apps_l2.coveragePct("gpu_tester");

    // ---- GPU tester sweep, cheapest runs first ------------------------
    std::vector<RunOutcome> runs;
    for (const auto &preset : makeGpuTestSweep(/*base_seed=*/21))
        runs.push_back(runGpuPreset(preset));
    std::sort(runs.begin(), runs.end(),
              [](const RunOutcome &a, const RunOutcome &b) {
                  return a.hostSeconds < b.hostSeconds;
              });

    CoverageGrid tester_l1(GpuL1Cache::spec());
    CoverageGrid tester_l2(GpuL2Cache::spec());
    double tester_host = 0.0;
    double time_to_match = -1.0;
    for (const RunOutcome &run : runs) {
        // The paper's framing: a single tester run already reaches
        // "similar or higher coverage" than the whole application
        // suite; take the cheapest one that does.
        if (run.l1->coveragePct("gpu_tester") >= apps_l1_pct &&
            run.l2->coveragePct("gpu_tester") >= apps_l2_pct &&
            (time_to_match < 0.0 || run.hostSeconds < time_to_match)) {
            time_to_match = run.hostSeconds;
        }
        tester_l1.merge(*run.l1);
        tester_l2.merge(*run.l2);
        tester_host += run.hostSeconds;
        // Fallback: the cheapest-first cumulative union reaching it.
        if (time_to_match < 0.0 &&
            tester_l1.coveragePct("gpu_tester") >= apps_l1_pct &&
            tester_l2.coveragePct("gpu_tester") >= apps_l2_pct) {
            time_to_match = tester_host;
        }
    }

    // ---- report -------------------------------------------------------
    std::printf("\n%-30s %10s %10s\n", "", "GPU tester", "26 apps");
    std::printf("%-30s %9.1f%% %9.1f%%\n", "GPU L1 union coverage",
                tester_l1.coveragePct("gpu_tester"), apps_l1_pct);
    std::printf("%-30s %9.1f%% %9.1f%%\n", "GPU L2 union coverage",
                tester_l2.coveragePct("gpu_tester"), apps_l2_pct);
    std::printf("%-30s %10.2f %10.2f\n", "total testing time (s)",
                tester_host, apps_host);

    if (time_to_match >= 0.0) {
        std::printf("\ncheapest tester run reaching the apps' union "
                    "coverage on both controllers: %.2f s\n",
                    time_to_match);
        std::printf("=> the tester reaches similar-or-higher coverage "
                    "%.0fx faster (paper: >50x)\n",
                    apps_host / std::max(1e-9, time_to_match));
    } else {
        std::printf("\ntester union never reached the apps' coverage — "
                    "unexpected; check configuration\n");
    }

    std::printf("\ncoverage gaps: L1 %+.1f points, L2 %+.1f points "
                "(paper: +6.25 / +25)\n",
                tester_l1.coveragePct("gpu_tester") - apps_l1_pct,
                tester_l2.coveragePct("gpu_tester") - apps_l2_pct);
    return 0;
}
