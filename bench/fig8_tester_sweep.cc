/**
 * @file
 * Fig. 8: the 24 Table III GPU tester permutations ("Test 0" .. "Test
 * 23"): per-test GPU L1/L2 transition coverage and testing time, plus
 * the UNION row (the union of all coverage and the cumulative time).
 *
 * The sweep runs as a parallel campaign (all presets are independent);
 * pass --jobs N (or set DRF_JOBS) to pick the worker count. Per-test
 * numbers are identical to a serial run — only the wall clock changes.
 */

#include <cstdio>

#include "bench_util.hh"
#include "campaign/campaign.hh"

using namespace drf;
using namespace drf::bench;

int
main(int argc, char **argv)
{
    std::printf("Fig. 8 — GPU tester sweep: coverage and testing time\n");

    std::vector<ShardSpec> shards;
    for (const auto &preset : makeGpuTestSweep(/*base_seed=*/7))
        shards.push_back(gpuShard(preset));

    CampaignConfig cfg;
    cfg.jobs = parseJobs(argc, argv);
    cfg.stopOnFailure = false; // always print the full table
    cfg.keepOutcomes = true;
    CampaignResult res = runCampaign(std::move(shards), cfg);

    std::printf("\n%-12s %8s %8s %13s %9s\n", "test", "L1 cov",
                "L2 cov", "sim ticks", "host (s)");
    for (const ShardOutcome &out : res.outcomes) {
        printCoverageRow(out.name, out.l1->coveragePct("gpu_tester"),
                         out.l2->coveragePct("gpu_tester"),
                         out.result.ticks, out.result.hostSeconds);
        if (!out.result.passed)
            std::fprintf(stderr, "%s FAILED: %s\n", out.name.c_str(),
                         out.result.report.c_str());
    }

    std::printf("%s\n", std::string(56, '-').c_str());
    printCoverageRow("(UNION)",
                     res.l1Union->coveragePct("gpu_tester"),
                     res.l2Union->coveragePct("gpu_tester"),
                     res.totalTicks, res.shardSecondsSum);
    std::printf("\n%u worker(s): %.3f s wall for %.3f s of testing "
                "(%.2fx)\n",
                res.jobs, res.wallSeconds, res.shardSecondsSum,
                res.wallSeconds > 0.0
                    ? res.shardSecondsSum / res.wallSeconds
                    : 0.0);
    std::printf("paper: union reaches 94%% (L1) and 100%% (L2) of "
                "reachable transitions\n");
    return res.passed ? 0 : 1;
}
