/**
 * @file
 * Fig. 8: the 24 Table III GPU tester permutations ("Test 0" .. "Test
 * 23"): per-test GPU L1/L2 transition coverage and testing time, plus
 * the UNION row (the union of all coverage and the cumulative time).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

int
main()
{
    std::printf("Fig. 8 — GPU tester sweep: coverage and testing time\n");
    std::printf("\n%-12s %8s %8s %13s %9s\n", "test", "L1 cov",
                "L2 cov", "sim ticks", "host (s)");

    CoverageGrid l1_union(GpuL1Cache::spec());
    CoverageGrid l2_union(GpuL2Cache::spec());
    double total_host = 0.0;
    Tick total_ticks = 0;

    for (const auto &preset : makeGpuTestSweep(/*base_seed=*/7)) {
        RunOutcome out = runGpuPreset(preset);
        l1_union.merge(*out.l1);
        l2_union.merge(*out.l2);
        total_host += out.hostSeconds;
        total_ticks += out.ticks;
        printCoverageRow(out.name, out.l1->coveragePct("gpu_tester"),
                         out.l2->coveragePct("gpu_tester"), out.ticks,
                         out.hostSeconds);
    }

    std::printf("%s\n", std::string(56, '-').c_str());
    printCoverageRow("(UNION)", l1_union.coveragePct("gpu_tester"),
                     l2_union.coveragePct("gpu_tester"), total_ticks,
                     total_host);
    std::printf("\npaper: union reaches 94%% (L1) and 100%% (L2) of "
                "reachable transitions\n");
    return 0;
}
