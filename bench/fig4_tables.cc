/**
 * @file
 * Fig. 4 + Tables I/II: print the event vocabularies and the
 * reconstructed VIPER transition tables of the GPU L1 and L2 (plus the
 * directory and CPU core-pair grids this repository adds), exactly as
 * implemented by the controllers.
 */

#include <cstdio>
#include <iostream>

#include "proto/cpu_cache.hh"
#include "proto/directory.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"

using namespace drf;

namespace
{

void
printSpec(const TransitionSpec &spec)
{
    std::printf("\n%s: %zu states x %zu events, %zu defined transitions\n",
                spec.name().c_str(), spec.numStates(), spec.numEvents(),
                spec.definedCount());
    std::printf("%-14s |", "event \\ state");
    for (const auto &st : spec.states())
        std::printf(" %-5s |", st.c_str());
    std::printf("\n");
    for (std::size_t e = 0; e < spec.numEvents(); ++e) {
        std::printf("%-14s |", spec.events()[e].c_str());
        for (std::size_t s = 0; s < spec.numStates(); ++s) {
            std::printf("  %s  |",
                        spec.defined(e, s) ? "def" : " U ");
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    std::printf("Fig. 4 / Tables I and II — controller transition "
                "spaces (reconstructed; see DESIGN.md)\n");

    std::printf("\nTABLE I. GPU L1 cache events:\n");
    for (const auto &ev : GpuL1Cache::spec().events())
        std::printf("  %s\n", ev.c_str());

    std::printf("\nTABLE II. GPU L2 cache events:\n");
    for (const auto &ev : GpuL2Cache::spec().events())
        std::printf("  %s\n", ev.c_str());

    printSpec(GpuL1Cache::spec());
    printSpec(GpuL2Cache::spec());
    printSpec(Directory::spec());
    printSpec(CpuCache::spec());

    const auto &l2 = GpuL2Cache::spec();
    std::printf("\nGPU-tester-unreachable (Impsb) GPU L2 cells: %zu "
                "(the PrbInv column)\n",
                l2.impossibleCount("gpu_tester"));
    std::printf("Reachable GPU L2 transitions for the GPU tester: %zu\n",
                l2.reachableCount("gpu_tester"));
    std::printf("Reachable GPU L1 transitions for the GPU tester: %zu\n",
                GpuL1Cache::spec().reachableCount("gpu_tester"));
    return 0;
}
