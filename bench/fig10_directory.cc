/**
 * @file
 * Fig. 10: system-directory transition coverage of (a) all
 * applications, (b) the CPU tester, and (c) the union of the GPU and
 * CPU testers run serially.
 *
 * Expected shape (Section IV.C): the combined testers beat the
 * applications (paper: 56.6% vs 35.2% of all defined transitions), the
 * testers run an order of magnitude faster, and only applications
 * activate the DMA transitions.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

double
pctOfDefined(const CoverageGrid &grid)
{
    return 100.0 * static_cast<double>(grid.activeCount("")) /
           static_cast<double>(grid.spec().definedCount());
}

} // namespace

int
main()
{
    std::printf("Fig. 10 — system directory coverage by test type\n");

    // (a) applications.
    CoverageGrid apps(Directory::spec());
    double apps_host = 0.0;
    for (const AppProfile &profile : makeAppSuite()) {
        RunOutcome out = runApp(profile);
        apps.merge(*out.dir);
        apps_host += out.hostSeconds;
    }

    // (b) the CPU tester sweep.
    CoverageGrid cpu(Directory::spec());
    double cpu_host = 0.0;
    for (const auto &preset : makeCpuTestSweep(/*base_seed=*/3)) {
        RunOutcome out = runCpuPreset(preset);
        cpu.merge(*out.dir);
        cpu_host += out.hostSeconds;
    }

    // (c) union with the GPU tester (run serially, as in the paper).
    // The GPU-side directory transitions saturate within the first few
    // episodes, so one short run per cache class suffices.
    CoverageGrid gpu(Directory::spec());
    double gpu_host = 0.0;
    unsigned gpu_idx = 0;
    for (auto cache_class :
         {CacheSizeClass::Small, CacheSizeClass::Large,
          CacheSizeClass::Mixed}) {
        GpuTestPreset preset;
        preset.name = std::string("fig10-gpu-") +
                      cacheSizeClassName(cache_class);
        preset.cacheClass = cache_class;
        preset.system = makeGpuSystemConfig(cache_class);
        preset.tester = makeGpuTesterConfig(
            /*actions=*/100, /*episodes=*/20, /*atomic_locs=*/100,
            /*seed=*/11 + gpu_idx++);
        // A dense address range maximizes same-line collisions at the
        // directory (busy-state and AtomicND transitions).
        preset.tester.variables.addrRangeBytes = 1 << 16;
        RunOutcome out = runGpuPreset(preset);
        gpu.merge(*out.dir);
        gpu_host += out.hostSeconds;
    }
    CoverageGrid testers(Directory::spec());
    testers.merge(gpu);
    testers.merge(cpu);

    header("(a) applications");
    apps.renderClassMap(std::cout);
    std::printf("coverage: %.1f%% of defined directory transitions, "
                "%.1f s host time\n",
                pctOfDefined(apps), apps_host);

    header("(b) CPU tester");
    cpu.renderClassMap(std::cout, "cpu_tester");
    std::printf("coverage: %.1f%% of defined directory transitions, "
                "%.1f s host time\n",
                pctOfDefined(cpu), cpu_host);

    header("(c) GPU tester + CPU tester (serial union)");
    testers.renderClassMap(std::cout, "tester_union");
    std::printf("coverage: %.1f%% of defined directory transitions, "
                "%.1f s host time\n",
                pctOfDefined(testers), gpu_host + cpu_host);

    header("summary");
    std::printf("testers union %.1f%% vs applications %.1f%% (paper: "
                "56.6%% vs 35.2%%)\n",
                pctOfDefined(testers), pctOfDefined(apps));
    std::printf("tester speedup over applications: %.1fx (paper: "
                "~12.6x)\n",
                apps_host / std::max(1e-9, gpu_host + cpu_host));

    // DMA transitions: apps-only.
    std::uint64_t apps_dma = 0, testers_dma = 0;
    for (auto ev : {Directory::EvDmaRead, Directory::EvDmaWrite}) {
        for (auto st : {Directory::StU, Directory::StCS, Directory::StCM,
                        Directory::StB}) {
            apps_dma += apps.count(ev, st);
            testers_dma += testers.count(ev, st);
        }
    }
    std::printf("DMA transitions hit: apps=%llu, testers=%llu (paper: "
                "DMA is apps-only)\n",
                (unsigned long long)apps_dma,
                (unsigned long long)testers_dma);
    return 0;
}
