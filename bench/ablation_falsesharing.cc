/**
 * @file
 * Ablation (Section V): "The tester can be configured so that false
 * sharing happens more often, which helps expose hidden bugs much
 * faster than simply running real applications, which are often
 * designed to avoid false sharing (e.g., by padding data structures to
 * align to cache block boundaries)."
 *
 * This bench arms the LostWriteThrough bug — which requires two
 * write-throughs racing on ONE cache line — and measures detection
 * latency as the variable mapping goes from padded (one variable per
 * line, no false sharing) to maximally dense, across several seeds.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

struct Outcome
{
    unsigned detected = 0;
    unsigned runs = 0;
    std::vector<double> ticks; ///< detection latency per detecting run
};

Outcome
sweepSeeds(std::uint64_t addr_range, std::uint32_t normal_vars,
           const char *label)
{
    Outcome outcome;
    double sharing = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ApuSystemConfig sys_cfg =
            makeGpuSystemConfig(CacheSizeClass::Small, 4);
        sys_cfg.fault = FaultKind::LostWriteThrough;
        sys_cfg.faultTriggerPct = 100;
        sys_cfg.faultSeed = seed;
        ApuSystem sys(sys_cfg);

        GpuTesterConfig cfg = makeGpuTesterConfig(
            /*actions=*/50, /*episodes=*/60, /*atomic_locs=*/10, seed);
        cfg.lanes = 8;
        cfg.episodeGen.lanes = 8;
        cfg.variables.numNormalVars = normal_vars;
        cfg.variables.addrRangeBytes = addr_range;
        GpuTester tester(sys, cfg);
        TesterResult r = tester.run();

        ++outcome.runs;
        if (!r.passed) {
            ++outcome.detected;
            outcome.ticks.push_back(static_cast<double>(r.ticks));
        }
        sharing = tester.variables().falseSharingFraction();
    }

    double median = 0.0;
    if (!outcome.ticks.empty()) {
        std::sort(outcome.ticks.begin(), outcome.ticks.end());
        median = outcome.ticks[outcome.ticks.size() / 2];
    }
    std::printf("%-24s sharing=%5.1f%%  detected %u/%u  median "
                "detection latency %s\n",
                label, 100.0 * sharing, outcome.detected, outcome.runs,
                outcome.ticks.empty()
                    ? "-" : std::to_string((long long)median).c_str());
    return outcome;
}

} // namespace

int
main()
{
    std::printf("Ablation — false sharing vs bug-detection latency "
                "(bug: LostWriteThrough, 5 seeds each)\n\n");

    // 512 variables in every case; only the packing changes.
    // Padded: one 4-byte variable per 64-byte line (range = 512 lines).
    sweepSeeds(512ull * 16 * 64, 512, "padded (apps-style)");
    // Loose: ~2 variables per line on average.
    sweepSeeds(1 << 14, 512, "loose packing");
    // Dense: ~8 variables per line.
    sweepSeeds(1 << 12, 512, "dense packing");

    std::printf("\nthe bug only fires on same-line write races, so the "
                "padded mapping (what tuned applications look like) "
                "nearly never exposes it — randomizing variables into "
                "shared lines is what makes the tester effective.\n");
    return 0;
}
