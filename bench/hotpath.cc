/**
 * @file
 * Per-stage hot-path microbench for the data-oriented simulation core
 * (DESIGN.md section 10).
 *
 * The campaign bench (campaign_scaling) measures the whole pipeline;
 * when it regresses, this bench tells you *which* stage moved. Three
 * stages are timed in isolation, each reporting events/s:
 *
 *  - episode_generation: EpisodeGenerator::generateInto + retire over a
 *    reused Episode (the CSR planes), counting generated lane ops;
 *  - controller_dispatch: EventQueue schedule+dispatch with the
 *    campaign's latency mix (same-tick FIFO, timing-wheel near-future
 *    port hops, occasional beyond-horizon heap entries);
 *  - ref_check: RefMemory applyWrite / value / noteRead, the
 *    load-checking planes the tester hits once per retired access.
 *
 * Usage: hotpath [--ops N] [--out FILE]   (default 2000000 ops/stage,
 * BENCH_hotpath.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "tester/episode.hh"
#include "tester/ref_memory.hh"
#include "tester/variable_map.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

using Clock = std::chrono::steady_clock;

struct StageResult
{
    std::uint64_t events = 0;
    double seconds = 0.0;

    double
    eventsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
    }
};

/** Generate-and-retire episodes; events = generated lane ops. */
StageResult
benchEpisodeGeneration(std::uint64_t target_ops)
{
    Random rng(1);
    VariableMapConfig vcfg;
    vcfg.numNormalVars = 512;
    vcfg.addrRangeBytes = 1 << 14;
    VariableMap vmap(vcfg, rng);

    EpisodeGenConfig gcfg;
    gcfg.actionsPerEpisode = 30;
    gcfg.lanes = 8;
    EpisodeGenerator gen(vmap, gcfg, rng);

    Episode episode;
    // Warm the episode's CSR planes so the timed loop is steady-state.
    gen.generateInto(episode, 0);
    gen.retire(episode);

    StageResult r;
    Clock::time_point start = Clock::now();
    while (r.events < target_ops) {
        gen.generateInto(episode, 0);
        for (std::uint32_t a = 0; a < episode.numActions(); ++a) {
            for (std::uint32_t l = 0; l < episode.laneCount(a); ++l) {
                if (episode.laneActive(a, l))
                    ++r.events;
            }
        }
        gen.retire(episode);
    }
    r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return r;
}

/** Schedule+dispatch with the campaign's latency mix. */
StageResult
benchControllerDispatch(std::uint64_t target_ops)
{
    EventQueue eq;
    std::uint64_t sink = 0;

    // Latency mix modelled on the campaign profile: most events are
    // small fixed port/recycle/memory latencies (timing wheel), a few
    // are same-tick continuations (FIFO), and watchdog-style checks sit
    // beyond the wheel horizon (heap).
    auto round = [&eq, &sink]() {
        for (int i = 0; i < 990; ++i) {
            Tick delay;
            switch (i & 7) {
              case 0:
                delay = 0; // same-tick continuation
                break;
              case 1:
                delay = 100; // memory latency
                break;
              default:
                delay = 2 + (i & 3); // port hop / recycle
                break;
            }
            eq.scheduleAfter(delay, [&sink] { ++sink; });
        }
        for (int i = 0; i < 10; ++i)
            eq.scheduleAfter(50'000 + i, [&sink] { ++sink; }); // watchdog
        eq.run();
    };

    round(); // warm pools and wheel buckets

    StageResult r;
    const std::uint64_t before = sink;
    Clock::time_point start = Clock::now();
    while (sink - before < target_ops)
        round();
    r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    r.events = sink - before;
    return r;
}

/** Reference-memory write/read checking planes. */
StageResult
benchRefCheck(std::uint64_t target_ops)
{
    Random rng(1);
    VariableMapConfig vcfg;
    vcfg.numNormalVars = 512;
    vcfg.addrRangeBytes = 1 << 14;
    VariableMap vmap(vcfg, rng);
    RefMemory ref(vmap);

    StageResult r;
    std::uint64_t mismatches = 0;
    Clock::time_point start = Clock::now();
    while (r.events < target_ops) {
        VarId var = vmap.normalVar(
            static_cast<std::uint32_t>(r.events % vcfg.numNormalVars));
        AccessRecord rec;
        rec.threadId = static_cast<std::uint32_t>(r.events & 0xff);
        rec.episodeId = r.events;
        rec.addr = vmap.addrOf(var);
        rec.value = r.events;
        if ((r.events & 3) == 0) {
            ref.applyWrite(var, rec);
        } else {
            // The tester's per-load check: expected value + bookkeeping.
            if (ref.value(var) == 0xdeadbeef)
                ++mismatches; // never taken; defeats dead-code removal
            ref.noteRead(var, rec);
        }
        ++r.events;
    }
    r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (mismatches != 0)
        std::fprintf(stderr, "impossible mismatch count %llu\n",
                     (unsigned long long)mismatches);
    return r;
}

std::uint64_t
parseArg(int argc, char **argv, const std::string &flag,
         std::uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

std::string
parseOut(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            return argv[i + 1];
    }
    return "BENCH_hotpath.json";
}

void
emitStage(JsonWriter &w, const char *name, const StageResult &r)
{
    w.key(name).beginObject();
    w.key("events").value(r.events);
    w.key("seconds").value(r.seconds);
    w.key("events_per_sec").value(r.eventsPerSec());
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t ops = parseArg(argc, argv, "--ops", 2'000'000);

    std::printf("Hot-path per-stage microbench (%llu ops/stage)\n\n",
                (unsigned long long)ops);

    StageResult episode_gen = benchEpisodeGeneration(ops);
    StageResult dispatch = benchControllerDispatch(ops);
    StageResult ref_check = benchRefCheck(ops);

    std::printf("  episode generation:  %12.0f lane-ops/s\n",
                episode_gen.eventsPerSec());
    std::printf("  controller dispatch: %12.0f events/s\n",
                dispatch.eventsPerSec());
    std::printf("  reference check:     %12.0f checks/s\n",
                ref_check.eventsPerSec());

    JsonWriter w;
    w.beginObject();
    w.key("bench").value("hotpath");
    jsonProvenance(w);
    w.key("ops_per_stage").value(ops);
    w.key("stages").beginObject();
    emitStage(w, "episode_generation", episode_gen);
    emitStage(w, "controller_dispatch", dispatch);
    emitStage(w, "ref_check", ref_check);
    w.endObject();
    w.endObject();

    writeFileReport(parseOut(argc, argv), w.str());
    std::printf("\nwrote %s\n", parseOut(argc, argv).c_str());
    return 0;
}
