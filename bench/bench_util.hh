/**
 * @file
 * Shared helpers for the per-figure bench binaries: standard ways to
 * run one GPU-tester preset or one application and collect the
 * coverage grids, campaign glue (--jobs parsing, application shards),
 * plus table-printing utilities.
 */

#ifndef DRF_BENCH_BENCH_UTIL_HH
#define DRF_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_runner.hh"
#include "apps/app_suite.hh"
#include "campaign/campaign.hh"
#include "campaign/campaign_json.hh"
#include "proto/protocol_kind.hh"
#include "sim/build_info.hh"
#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/cpu_tester.hh"
#include "tester/gpu_tester.hh"

namespace drf::bench
{

/** Everything one run produces. */
struct RunOutcome
{
    std::string name;
    bool passed = false;
    Tick ticks = 0;
    std::uint64_t events = 0;
    double hostSeconds = 0.0;

    std::unique_ptr<CoverageGrid> l1;  ///< union over CUs (if GPU)
    std::unique_ptr<CoverageGrid> l2;  ///< (if GPU)
    std::unique_ptr<CoverageGrid> dir;
};

/** Run one Table III GPU tester preset. */
inline RunOutcome
runGpuPreset(const GpuTestPreset &preset)
{
    ApuSystem sys(preset.system);
    GpuTester tester(sys, preset.tester);
    TesterResult r = tester.run();

    RunOutcome out;
    out.name = preset.name;
    out.passed = r.passed;
    out.ticks = r.ticks;
    out.events = r.events;
    out.hostSeconds = r.hostSeconds;
    out.l1 = std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
    out.l2 = std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
    out.dir = std::make_unique<CoverageGrid>(sys.directory().coverage());
    if (!r.passed)
        std::fprintf(stderr, "%s FAILED: %s\n", preset.name.c_str(),
                     r.report.c_str());
    return out;
}

/** Run one CPU tester preset. */
inline RunOutcome
runCpuPreset(const CpuTestPreset &preset)
{
    ApuSystem sys(preset.system);
    CpuTester tester(sys, preset.tester);
    TesterResult r = tester.run();

    RunOutcome out;
    out.name = preset.name;
    out.passed = r.passed;
    out.ticks = r.ticks;
    out.events = r.events;
    out.hostSeconds = r.hostSeconds;
    out.dir = std::make_unique<CoverageGrid>(sys.directory().coverage());
    if (!r.passed)
        std::fprintf(stderr, "%s FAILED: %s\n", preset.name.c_str(),
                     r.report.c_str());
    return out;
}

/** The Table III application-testing system: 16 KB L1s, 256 KB L2. */
inline ApuSystemConfig
appSystemConfig(unsigned num_cus = 8)
{
    ApuSystemConfig cfg;
    cfg.numCus = num_cus;
    cfg.numCpuCaches = 1;
    cfg.l1.sizeBytes = 16 * 1024;
    cfg.l1.assoc = 16;
    cfg.l2.sizeBytes = 256 * 1024;
    cfg.l2.assoc = 16;
    return cfg;
}

/** Run one application on a fresh app system. */
inline RunOutcome
runApp(const AppProfile &profile, unsigned num_cus = 8)
{
    ApuSystemConfig sys_cfg = appSystemConfig(num_cus);
    ApuSystem sys(sys_cfg);
    AppTrace trace = generateAppTrace(profile, num_cus, 0x10'0000,
                                      sys_cfg.lineBytes);
    AppRunner runner(sys, std::move(trace));
    AppResult r = runner.run();

    RunOutcome out;
    out.name = profile.name;
    out.passed = r.completed;
    out.ticks = r.ticks;
    out.events = r.events;
    out.hostSeconds = r.hostSeconds;
    out.l1 = std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
    out.l2 = std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
    out.dir = std::make_unique<CoverageGrid>(sys.directory().coverage());
    if (!r.completed)
        std::fprintf(stderr, "%s did not complete\n",
                     profile.name.c_str());
    return out;
}

/**
 * Worker-thread count for a bench binary: `--jobs N` (or `--jobs=N`)
 * on the command line, else the DRF_JOBS environment variable, else 0
 * (which lets the campaign runner use hardware concurrency).
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc)
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
        if (arg.rfind("--jobs=", 0) == 0)
            return static_cast<unsigned>(std::atoi(arg.c_str() + 7));
    }
    if (const char *env = std::getenv("DRF_JOBS"))
        return static_cast<unsigned>(std::atoi(env));
    return 0;
}

/**
 * Campaign shard running one application on a fresh app system.
 * Application traces are generated deterministically from the profile,
 * so these shards parallelize exactly like tester shards. Lives here
 * rather than in src/campaign/ because the campaign library does not
 * depend on the application suite.
 */
inline ShardSpec
appShard(const AppProfile &profile, unsigned num_cus = 8)
{
    ShardSpec spec;
    spec.name = profile.name;
    spec.run = [profile, num_cus]() {
        ApuSystemConfig sys_cfg = appSystemConfig(num_cus);
        ApuSystem sys(sys_cfg);
        AppTrace trace = generateAppTrace(profile, num_cus, 0x10'0000,
                                          sys_cfg.lineBytes);
        AppRunner runner(sys, std::move(trace));
        AppResult r = runner.run();

        ShardOutcome out;
        out.name = profile.name;
        out.result.passed = r.completed;
        out.result.ticks = r.ticks;
        out.result.events = r.events;
        out.result.hostSeconds = r.hostSeconds;
        if (!r.completed)
            out.result.report = profile.name + " did not complete";
        out.l1 = std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
        out.l2 = std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
        out.dir =
            std::make_unique<CoverageGrid>(sys.directory().coverage());
        return out;
    };
    return spec;
}

/** Host CPU model from /proc/cpuinfo, or "unknown" where unavailable. */
inline std::string
hostCpuModel()
{
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        if (line.rfind("model name", 0) != 0)
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            continue;
        std::size_t start = line.find_first_not_of(" \t", colon + 1);
        return start == std::string::npos ? "unknown"
                                          : line.substr(start);
    }
    return "unknown";
}

/**
 * Emit the provenance keys every bench JSON baseline must carry:
 * cpu_model, git_sha, build_type and the L1 protocol the workload ran
 * (benches that expose a --protocol knob pass theirs; the rest measure
 * the VIPER default). Baselines are only comparable between like
 * machines, like builds, and like protocols; the CI regression gate
 * keys its comparisons on these fields. Call inside an open JSON
 * object.
 */
inline void
jsonProvenance(JsonWriter &w, ProtocolKind protocol = ProtocolKind::Viper)
{
    w.key("cpu_model").value(hostCpuModel());
    w.key("git_sha").value(buildGitSha());
    w.key("build_type").value(buildType());
    w.key("protocol").value(protocolKindName(protocol));
}

/** Write @p content to @p path, reporting the outcome on stdout. */
inline void
writeFileReport(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content << "\n";
    if (out)
        std::printf("wrote %s\n", path.c_str());
    else
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
}

/** Print one row of a coverage/time table. */
inline void
printCoverageRow(const std::string &name, double l1_pct, double l2_pct,
                 Tick ticks, double host_s)
{
    std::printf("%-12s  %6.1f%%  %6.1f%%  %12llu  %8.3f\n", name.c_str(),
                l1_pct, l2_pct, (unsigned long long)ticks, host_s);
}

/** Print a section header. */
inline void
header(const std::string &title)
{
    std::printf("\n==== %s\n", title.c_str());
}

} // namespace drf::bench

#endif // DRF_BENCH_BENCH_UTIL_HH
