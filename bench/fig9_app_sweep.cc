/**
 * @file
 * Fig. 9: transition coverage and testing time of every application
 * (reported in run-time order like the paper), plus the UNION row.
 *
 * Expected shape: the atomic-heavy applications (Interac, CM, the
 * HeteroSync family) dominate the union coverage; total time is far
 * larger than the tester sweep's.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

int
main()
{
    std::printf("Fig. 9 — application coverage and testing time\n");

    struct Row
    {
        RunOutcome out;
        double l1_pct;
        double l2_pct;
    };
    std::vector<Row> rows;

    CoverageGrid l1_union(GpuL1Cache::spec());
    CoverageGrid l2_union(GpuL2Cache::spec());
    double total_host = 0.0;
    Tick total_ticks = 0;

    for (const AppProfile &profile : makeAppSuite()) {
        Row row{runApp(profile), 0.0, 0.0};
        row.l1_pct = row.out.l1->coveragePct("gpu_tester");
        row.l2_pct = row.out.l2->coveragePct("gpu_tester");
        l1_union.merge(*row.out.l1);
        l2_union.merge(*row.out.l2);
        total_host += row.out.hostSeconds;
        total_ticks += row.out.ticks;
        rows.push_back(std::move(row));
    }

    // Report in run-time order, like the paper.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.out.ticks < b.out.ticks;
    });

    std::printf("\n%-12s %8s %8s %13s %9s\n", "app", "L1 cov", "L2 cov",
                "sim ticks", "host (s)");
    for (const Row &row : rows) {
        printCoverageRow(row.out.name, row.l1_pct, row.l2_pct,
                         row.out.ticks, row.out.hostSeconds);
    }
    std::printf("%s\n", std::string(56, '-').c_str());
    printCoverageRow("(UNION)", l1_union.coveragePct("gpu_tester"),
                     l2_union.coveragePct("gpu_tester"), total_ticks,
                     total_host);
    std::printf("\npaper: the application union trails the tester by "
                "6.25%% (L1) and 25%% (L2)\n");
    return 0;
}
