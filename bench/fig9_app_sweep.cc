/**
 * @file
 * Fig. 9: transition coverage and testing time of every application
 * (reported in run-time order like the paper), plus the UNION row.
 *
 * Expected shape: the atomic-heavy applications (Interac, CM, the
 * HeteroSync family) dominate the union coverage; total time is far
 * larger than the tester sweep's.
 *
 * Applications shard across the campaign runner exactly like tester
 * presets (each gets a fresh system and a deterministic trace); pass
 * --jobs N or set DRF_JOBS to control the worker count.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"

using namespace drf;
using namespace drf::bench;

int
main(int argc, char **argv)
{
    std::printf("Fig. 9 — application coverage and testing time\n");

    std::vector<ShardSpec> shards;
    for (const AppProfile &profile : makeAppSuite())
        shards.push_back(appShard(profile));

    CampaignConfig cfg;
    cfg.jobs = parseJobs(argc, argv);
    cfg.stopOnFailure = false; // always print the full table
    cfg.keepOutcomes = true;
    CampaignResult res = runCampaign(std::move(shards), cfg);

    // Report in run-time order, like the paper.
    std::vector<const ShardOutcome *> rows;
    for (const ShardOutcome &out : res.outcomes)
        rows.push_back(&out);
    std::sort(rows.begin(), rows.end(),
              [](const ShardOutcome *a, const ShardOutcome *b) {
                  return a->result.ticks < b->result.ticks;
              });

    std::printf("\n%-12s %8s %8s %13s %9s\n", "app", "L1 cov", "L2 cov",
                "sim ticks", "host (s)");
    for (const ShardOutcome *row : rows) {
        printCoverageRow(row->name, row->l1->coveragePct("gpu_tester"),
                         row->l2->coveragePct("gpu_tester"),
                         row->result.ticks, row->result.hostSeconds);
        if (!row->result.passed)
            std::fprintf(stderr, "%s\n", row->result.report.c_str());
    }
    std::printf("%s\n", std::string(56, '-').c_str());
    printCoverageRow("(UNION)",
                     res.l1Union->coveragePct("gpu_tester"),
                     res.l2Union->coveragePct("gpu_tester"),
                     res.totalTicks, res.shardSecondsSum);
    std::printf("\n%u worker(s): %.3f s wall for %.3f s of testing\n",
                res.jobs, res.wallSeconds, res.shardSecondsSum);
    std::printf("paper: the application union trails the tester by "
                "6.25%% (L1) and 25%% (L2)\n");
    return res.passed ? 0 : 1;
}
