/**
 * @file
 * Throughput bench for the predictive race subsystem (src/predict/).
 *
 * Two stages, both over one recorded scoped-clean trace:
 *
 *  - hb_build: offline happens-before reconstruction (HbModel::build),
 *    reporting trace events analyzed per second — the cost of turning a
 *    recorded run into a queryable order relation;
 *  - explore: the bounded stateless model checker (ExploreSource driven
 *    through runAdaptiveCampaign), reporting perturbed-replay
 *    interleavings per second — the end-to-end cost of one schedule
 *    exploration step, replay included.
 *
 * The committed baseline is BENCH_predict.json; the CI gate
 * (tools/check_bench_regression.py) compares both events_per_sec
 * numbers against it.
 *
 * Usage: predict_throughput [--episodes N] [--actions N] [--seed S]
 *        [--budget N] [--repeats N] [--out FILE]
 * (defaults: 10 episodes, 30 actions, seed 1, budget 64, repeats
 * sized so hb_build analyzes >= 2M events, BENCH_predict.json)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "guidance/adaptive_campaign.hh"
#include "predict/explore.hh"
#include "predict/hb.hh"
#include "tester/configs.hh"
#include "trace/repro.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t
parseArg(int argc, char **argv, const char *flag, std::uint64_t dflt)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return dflt;
}

std::string
parseOut(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0)
            return argv[i + 1];
    }
    return "BENCH_predict.json";
}

/** The predict_sweep tool's configuration shape (2 CUs, 8 lanes). */
GpuTestPreset
benchPreset(std::uint64_t seed, unsigned episodes, unsigned actions)
{
    GpuTestPreset preset;
    preset.cacheClass = CacheSizeClass::Large;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Large, 2);
    preset.tester = makeGpuTesterConfig(actions, episodes, 10, seed);
    preset.tester.lanes = 8;
    preset.tester.episodeGen.lanes = 8;
    preset.tester.wfsPerCu = 2;
    preset.tester.variables.numNormalVars = 512;
    preset.tester.variables.addrRangeBytes = 1 << 14;
    // Scoped-clean: records pass, yet the schedule still carries real
    // scope structure for the HB model and frontier to chew on.
    preset.tester.scopeMode = ScopeMode::Scoped;
    preset.name = "predict_bench/seed" + std::to_string(seed);
    return preset;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned episodes =
        unsigned(parseArg(argc, argv, "--episodes", 10));
    const unsigned actions =
        unsigned(parseArg(argc, argv, "--actions", 30));
    const std::uint64_t seed = parseArg(argc, argv, "--seed", 1);
    const std::size_t budget =
        std::size_t(parseArg(argc, argv, "--budget", 64));

    RecordOptions rec;
    rec.captureEvents = true;
    ReproTrace trace =
        recordGpuRun(benchPreset(seed, episodes, actions), rec);
    std::printf("Predict throughput bench: %zu episodes, %zu events "
                "recorded (%s)\n\n",
                trace.schedule.size(), trace.events.size(),
                trace.result.passed
                    ? "passed"
                    : failureClassName(trace.result.failureClass));

    // Stage 1: HB reconstruction. Repeat builds until >= 2M events are
    // analyzed (or --repeats overrides), so the timer sees real work.
    const std::uint64_t per_build = trace.events.size();
    std::uint64_t repeats = parseArg(
        argc, argv, "--repeats",
        per_build == 0 ? 1 : (2'000'000 + per_build - 1) / per_build);
    if (repeats == 0)
        repeats = 1;
    std::uint64_t hb_events = 0;
    std::size_t hb_size = 0;
    Clock::time_point start = Clock::now();
    for (std::uint64_t i = 0; i < repeats; ++i) {
        HbModel hb = HbModel::build(trace);
        hb_events += hb.eventsAnalyzed();
        hb_size = hb.size();
    }
    const double hb_seconds = secondsSince(start);
    const double hb_rate =
        hb_seconds > 0.0 ? double(hb_events) / hb_seconds : 0.0;
    std::printf("  hb_build: %llu events in %.3fs over %llu builds "
                "(%zu episodes each) -> %12.0f events/s\n",
                (unsigned long long)hb_events, hb_seconds,
                (unsigned long long)repeats, hb_size, hb_rate);

    // Stage 2: schedule exploration, replays included. The predictive
    // pass is skipped (runPredict=false): its witness replays are the
    // same machinery the explorer times below. Several base seeds are
    // explored so the timed region is long enough to gate on.
    const std::uint64_t rounds =
        parseArg(argc, argv, "--explore-rounds", 4);
    ExploreOptions opts;
    opts.budget = budget;
    opts.maxFlipsPerTrace = 12;
    opts.runPredict = false;
    std::size_t interleavings = 0;
    start = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        ExploreSource source(
            benchPreset(seed + r, episodes, actions), opts);
        AdaptiveCampaignConfig cfg;
        cfg.jobs = 1;
        cfg.stopOnFailure = false;
        AdaptiveCampaignResult result = runAdaptiveCampaign(source, cfg);
        interleavings += result.shardsRun;
    }
    const double ex_seconds = secondsSince(start);
    const double ex_rate =
        ex_seconds > 0.0 ? double(interleavings) / ex_seconds : 0.0;
    std::printf("  explore:  %zu interleavings over %llu base runs in "
                "%.3fs -> %12.2f interleavings/s\n",
                interleavings, (unsigned long long)rounds, ex_seconds,
                ex_rate);

    JsonWriter w;
    w.beginObject();
    w.key("bench").value("predict_throughput");
    jsonProvenance(w);
    w.key("episodes").value(episodes);
    w.key("actions").value(actions);
    w.key("budget").value(std::uint64_t(budget));
    w.key("trace_events").value(std::uint64_t(trace.events.size()));
    w.key("stages").beginObject();
    w.key("hb_build").beginObject();
    w.key("events").value(hb_events);
    w.key("seconds").value(hb_seconds);
    w.key("events_per_sec").value(hb_rate);
    w.endObject();
    w.key("explore").beginObject();
    w.key("interleavings").value(std::uint64_t(interleavings));
    w.key("seconds").value(ex_seconds);
    w.key("events_per_sec").value(ex_rate);
    w.endObject();
    w.endObject();
    w.endObject();

    writeFileReport(parseOut(argc, argv), w.str());
    return 0;
}
