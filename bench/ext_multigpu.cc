/**
 * @file
 * Extension beyond the paper's evaluation: multi-GPU testing.
 *
 * Section III.B notes the tester "can be extended to evaluate any
 * system configuration; therefore, the user can configure a multi-GPU
 * system with a varying number of caches", and Section IV.B explains
 * the GPU L2's PrbInv transitions are Impsb only because the evaluated
 * system has a single L2. This bench runs the unchanged tester on 1-,
 * 2- and 4-L2 systems: with multiple L2 slices the directory probes
 * remote L2s on GPU writes/atomics, the PrbInv column lights up, and
 * coverage is measured against the full (nothing-impossible) L2 space.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

void
runConfig(unsigned num_cus, unsigned num_l2s)
{
    ApuSystemConfig sys_cfg =
        makeGpuSystemConfig(CacheSizeClass::Small, num_cus);
    sys_cfg.numGpuL2s = num_l2s;
    ApuSystem sys(sys_cfg);

    GpuTesterConfig cfg = makeGpuTesterConfig(
        /*actions=*/100, /*episodes=*/20, /*atomic_locs=*/10,
        /*seed=*/99);
    cfg.variables.addrRangeBytes = 1 << 16;
    GpuTester tester(sys, cfg);
    TesterResult r = tester.run();

    CoverageGrid l2 = sys.l2CoverageUnion();
    std::uint64_t prb = 0;
    for (auto st : {GpuL2Cache::StI, GpuL2Cache::StV, GpuL2Cache::StIV,
                    GpuL2Cache::StA})
        prb += l2.count(GpuL2Cache::EvPrbInv, st);

    std::printf("%2u CUs / %u L2 slice%s: %-6s  L2 coverage (full "
                "space) %5.1f%%  PrbInv hits %-8llu gpu probes %llu\n",
                num_cus, num_l2s, num_l2s > 1 ? "s" : " ",
                r.passed ? "PASS" : "FAIL",
                l2.coveragePct("gpu_tester_multi"),
                (unsigned long long)prb,
                (unsigned long long)sys.directory().stats().value(
                    "gpu_probes"));

    if (num_l2s == 4) {
        std::printf("\nfour-slice L2 union heat map:\n");
        l2.renderHeatMap(std::cout);
    }
}

} // namespace

int
main()
{
    std::printf("Extension — multi-GPU testing (unchanged tester, "
                "bigger system)\n\n");
    runConfig(4, 1);
    runConfig(4, 2);
    runConfig(8, 4);
    std::printf("\nwith >1 L2 slice the PrbInv transitions — Impsb for "
                "the paper's single-L2 system — become reachable and "
                "active under the GPU tester alone.\n");
    return 0;
}
