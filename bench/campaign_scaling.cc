/**
 * @file
 * Campaign throughput vs. worker-thread count, and the event-queue
 * hot-path overhaul measured against the original implementation.
 *
 * Two experiments, both written to BENCH_campaign.json:
 *
 *  1. queue: the schedule+run microbench (the same 1000-event pattern
 *     as micro_throughput's BM_EventQueueScheduleRun) on the legacy
 *     std::function queue and on the current inline-event queue —
 *     events/sec before and after, and the improvement.
 *
 *  2. scaling: a 32-seed campaign of a small GPU preset, run serially
 *     (jobs=1) and at increasing worker counts — wall seconds and
 *     speedup per thread count. Speedup tracks the host's physical
 *     parallelism; hardware_concurrency is recorded alongside so a
 *     single-core CI box reporting ~1x is interpretable.
 *
 * Usage: campaign_scaling [--seeds N] [--out FILE]
 *                         [--actions N] [--episodes-per-wf N]
 *                         [--atomic-locs N] [--coloc-density D]
 *                         [--protocol viper|lrcc]
 *                         [--scope-mode none|scoped]
 *
 * The generator knobs override the scaling preset's episode shape
 * (defaults: 30 actions, 4 episodes/WF, 10 atomic locations, and the
 * fixed 16 KB address range unless a co-location density is given).
 * --protocol selects the L1 coherence protocol variant and --scope-mode
 * the episode synchronization-scope discipline, so the scaling numbers
 * can be read per protocol/scope matrix cell; the emitted JSON records
 * the protocol so the regression gate never compares across variants.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "campaign/campaign.hh"
#include "campaign/campaign_json.hh"
#include "guidance/genome.hh"
#include "mem/scope.hh"
#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"

using namespace drf;
using namespace drf::bench;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One schedule+run round of the micro_throughput queue pattern. */
template <typename Queue>
std::uint64_t
queueRound()
{
    Queue eq;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i)
        eq.schedule(static_cast<Tick>(i % 97), [&sink] { ++sink; });
    eq.run();
    return sink;
}

struct QueueBench
{
    double eventsPerSec = 0.0;
    std::uint64_t events = 0;
};

/** Run rounds for ~0.4 s and report sustained events/sec. */
template <typename Queue>
QueueBench
benchQueue()
{
    // Warm up allocator and caches.
    std::uint64_t sink = 0;
    for (int i = 0; i < 50; ++i)
        sink += queueRound<Queue>();
    if (sink != 50u * 1000u)
        std::fprintf(stderr, "queue warmup miscounted: %llu\n",
                     (unsigned long long)sink);

    QueueBench bench;
    Clock::time_point start = Clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.4) {
        for (int i = 0; i < 100; ++i)
            bench.events += queueRound<Queue>();
        elapsed = secondsSince(start);
    }
    bench.eventsPerSec = static_cast<double>(bench.events) / elapsed;
    return bench;
}

/** Generator knobs overridable from the command line. */
struct GenKnobs
{
    unsigned actions = 30;
    unsigned episodesPerWf = 4;
    unsigned atomicLocs = 10;
    double colocDensity = 0.0; ///< 0 = keep the fixed 16 KB range
    ProtocolKind protocol = ProtocolKind::Viper;
    ScopeMode scopeMode = ScopeMode::None;
};

/** The 32-seed campaign workload: small caches, short episodes. */
GpuTestPreset
scalingPreset(const GenKnobs &knobs)
{
    GpuTestPreset preset;
    preset.name = "scaling";
    preset.cacheClass = CacheSizeClass::Small;
    preset.system = makeGpuSystemConfig(CacheSizeClass::Small, 4);
    preset.system.l1.protocol = knobs.protocol;
    preset.tester = makeGpuTesterConfig(knobs.actions,
                                        knobs.episodesPerWf,
                                        knobs.atomicLocs, /*seed=*/1);
    preset.tester.scopeMode = knobs.scopeMode;
    preset.tester.lanes = 8;
    preset.tester.episodeGen.lanes = 8;
    preset.tester.variables.numNormalVars = 512;
    preset.tester.variables.addrRangeBytes =
        knobs.colocDensity > 0.0
            ? addrRangeForDensity(preset.tester.variables.numSyncVars +
                                      preset.tester.variables.numNormalVars,
                                  knobs.colocDensity,
                                  preset.tester.variables.lineBytes,
                                  preset.tester.variables.varBytes)
            : 1 << 14;
    return preset;
}

std::uint64_t
parseArg(int argc, char **argv, const std::string &flag,
         std::uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

double
parseArgD(int argc, char **argv, const std::string &flag, double fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::strtod(argv[i + 1], nullptr);
    }
    return fallback;
}

std::string
parseOut(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--out")
            return argv[i + 1];
    }
    return "BENCH_campaign.json";
}

std::string
parseArgS(int argc, char **argv, const std::string &flag,
          const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return argv[i + 1];
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t num_seeds =
        static_cast<std::size_t>(parseArg(argc, argv, "--seeds", 32));
    GenKnobs knobs;
    knobs.actions =
        unsigned(parseArg(argc, argv, "--actions", knobs.actions));
    knobs.episodesPerWf = unsigned(
        parseArg(argc, argv, "--episodes-per-wf", knobs.episodesPerWf));
    knobs.atomicLocs = unsigned(
        parseArg(argc, argv, "--atomic-locs", knobs.atomicLocs));
    knobs.colocDensity =
        parseArgD(argc, argv, "--coloc-density", knobs.colocDensity);
    if (std::optional<ProtocolKind> p = parseProtocolKind(
            parseArgS(argc, argv, "--protocol", "viper"))) {
        knobs.protocol = *p;
    } else {
        std::fprintf(stderr, "--protocol must be viper or lrcc\n");
        return 2;
    }
    if (std::optional<ScopeMode> m = parseScopeMode(
            parseArgS(argc, argv, "--scope-mode", "none"))) {
        knobs.scopeMode = *m;
    } else {
        std::fprintf(stderr,
                     "--scope-mode must be none, scoped or racy\n");
        return 2;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const std::string cpu_model = hostCpuModel();

    std::printf("Campaign scaling + event-queue overhaul benchmark\n");
    std::printf("hardware_concurrency: %u\n", hw);
    std::printf("cpu_model: %s\n\n", cpu_model.c_str());

    // --- 1. Event queue before/after -------------------------------
    QueueBench legacy = benchQueue<LegacyEventQueue>();
    QueueBench current = benchQueue<EventQueue>();
    double queue_improvement =
        legacy.eventsPerSec > 0.0
            ? (current.eventsPerSec / legacy.eventsPerSec - 1.0) * 100.0
            : 0.0;

    std::printf("event queue (schedule+run, 1000 events/round):\n");
    std::printf("  legacy (std::function): %12.0f events/s\n",
                legacy.eventsPerSec);
    std::printf("  current (inline event): %12.0f events/s\n",
                current.eventsPerSec);
    std::printf("  improvement:            %+11.1f%%\n\n",
                queue_improvement);

    // --- 2. Campaign scaling ---------------------------------------
    std::vector<unsigned> thread_counts{1, 2, 4};
    if (hw > 4)
        thread_counts.push_back(hw);

    struct ScalePoint
    {
        unsigned jobs = 0;
        double wallSeconds = 0.0;
        double speedup = 0.0;
        double episodesPerSec = 0.0;
        double eventsPerSec = 0.0;
        bool scalingValid = false;
    };
    std::vector<ScalePoint> points;
    std::string campaign_json;
    double serial_wall = 0.0;

    std::printf("campaign: %zu seeds of the small-cache preset\n",
                num_seeds);
    for (unsigned jobs : thread_counts) {
        if (hw != 0 && jobs > hw) {
            std::fprintf(stderr,
                         "WARNING: jobs=%u exceeds "
                         "hardware_concurrency=%u -- threads will be "
                         "oversubscribed and the speedup for this point "
                         "is not meaningful\n",
                         jobs, hw);
        }
        CampaignConfig cfg;
        cfg.jobs = jobs;
        CampaignResult res = runCampaign(
            gpuSeedSweep(scalingPreset(knobs), 1, num_seeds), cfg);
        if (!res.passed) {
            std::fprintf(stderr, "campaign FAILED at jobs=%u: %s\n",
                         jobs,
                         res.firstFailure ? res.firstFailure->report.c_str()
                                          : "?");
            return 1;
        }
        if (res.shardsRun != res.shardsPlanned) {
            std::fprintf(stderr,
                         "campaign INCOMPLETE at jobs=%u: ran %zu of "
                         "%zu shards\n",
                         jobs, res.shardsRun, res.shardsPlanned);
            return 1;
        }
        if (jobs == 1) {
            serial_wall = res.wallSeconds;
            campaign_json = campaignToJson(res, "gpu_tester");
        }

        ScalePoint p;
        p.jobs = res.jobs;
        p.wallSeconds = res.wallSeconds;
        p.speedup =
            res.wallSeconds > 0.0 ? serial_wall / res.wallSeconds : 0.0;
        p.episodesPerSec = res.episodesPerSec;
        p.eventsPerSec = res.eventsPerSec;
        // A speedup number only means something when the host has slack
        // beyond the worker count (SMT siblings and background load eat
        // into anything tighter). Gates must skip speedup -- but keep
        // gating events/s -- when this is false.
        p.scalingValid = hw != 0 && hw >= 2 * jobs;
        points.push_back(p);
        std::printf("  jobs=%-3u wall %7.3f s  speedup %5.2fx  "
                    "%10.0f events/s\n",
                    p.jobs, p.wallSeconds, p.speedup, p.eventsPerSec);
    }

    // --- JSON ------------------------------------------------------
    JsonWriter w;
    w.beginObject();
    w.key("bench").value("campaign_scaling");
    w.key("hardware_concurrency").value(hw);
    jsonProvenance(w, knobs.protocol);
    w.key("scope_mode").value(scopeModeName(knobs.scopeMode));
    w.key("num_seeds").value(static_cast<std::uint64_t>(num_seeds));

    w.key("event_queue").beginObject();
    w.key("pattern").value("schedule+run, 1000 events/round");
    w.key("legacy_events_per_sec").value(legacy.eventsPerSec);
    w.key("current_events_per_sec").value(current.eventsPerSec);
    w.key("improvement_pct").value(queue_improvement);
    w.endObject();

    w.key("scaling").beginArray();
    for (const ScalePoint &p : points) {
        w.beginObject();
        w.key("jobs").value(p.jobs);
        w.key("wall_seconds").value(p.wallSeconds);
        w.key("speedup_vs_serial").value(p.speedup);
        w.key("episodes_per_sec").value(p.episodesPerSec);
        w.key("events_per_sec").value(p.eventsPerSec);
        w.key("scaling_valid").value(p.scalingValid);
        w.endObject();
    }
    w.endArray();

    w.key("serial_campaign").raw(campaign_json);
    w.endObject();

    writeFileReport(parseOut(argc, argv), w.str());

    double best = 0.0;
    for (const ScalePoint &p : points)
        best = std::max(best, p.speedup);
    std::printf("\nbest speedup: %.2fx at %u hardware thread(s) "
                "(>=3x expected on 4+ cores)\n",
                best, hw);
    return 0;
}
