/**
 * @file
 * System builder: wires CUs (GPU L1s), the shared GPU L2, CPU core-pair
 * caches, the APU directory, DRAM and the crossbar into one simulated
 * machine (the right half of the paper's Fig. 1).
 *
 * The same builder produces every Table III configuration: GPU-tester
 * systems (8 CUs, no CPU), CPU-tester systems (2-8 CPU caches, no GPU),
 * and full APU systems for application-based testing (GPU + CPU + DMA).
 */

#ifndef DRF_SYSTEM_APU_SYSTEM_HH
#define DRF_SYSTEM_APU_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/memory.hh"
#include "mem/network.hh"
#include "proto/cpu_cache.hh"
#include "proto/directory.hh"
#include "proto/fault.hh"
#include "proto/gpu_l1.hh"
#include "proto/gpu_l2.hh"
#include "sim/event_queue.hh"

namespace drf
{

/** Whole-system configuration. */
struct ApuSystemConfig
{
    unsigned numCus = 8;        ///< GPU compute units (0 = no GPU)
    unsigned numGpuL2s = 1;     ///< GPU L2 slices (>1 = multi-GPU)
    unsigned numCpuCaches = 0;  ///< CPU core-pair caches (0 = no CPU)
    unsigned lineBytes = 64;

    GpuL1Config l1;
    GpuL2Config l2;
    CpuCacheConfig cpu;
    DirectoryConfig dir;

    Tick xbarLatency = 4;
    Tick memLatency = 50;

    /** Armed protocol bug (None = correct protocol). */
    FaultKind fault = FaultKind::None;
    unsigned faultTriggerPct = 100;
    std::uint64_t faultSeed = 7;
};

/**
 * One simulated APU. Owns every component plus the event queue.
 */
class ApuSystem
{
  public:
    /** Crossbar endpoint numbering. */
    static constexpr int l1Endpoint(unsigned cu) { return int(cu); }
    static constexpr int l2Endpoint(unsigned g = 0)
    {
        return 1000 + int(g);
    }
    static constexpr int dirEndpoint = 2000;
    static constexpr int cpuEndpoint(unsigned i) { return 3000 + int(i); }
    static constexpr int dmaEndpoint = 4000;

    explicit ApuSystem(const ApuSystemConfig &cfg);

    const ApuSystemConfig &config() const { return _cfg; }

    EventQueue &eventq() { return _eq; }
    Crossbar &xbar() { return *_xbar; }
    SimpleMemory &memory() { return *_mem; }
    Directory &directory() { return *_dir; }
    GpuL2Cache &l2(unsigned g = 0) { return *_l2s.at(g); }
    GpuL1Cache &l1(unsigned cu) { return *_l1s.at(cu); }
    CpuCache &cpuCache(unsigned i) { return *_cpus.at(i); }

    unsigned numCus() const { return static_cast<unsigned>(_l1s.size()); }
    unsigned numGpuL2s() const
    {
        return static_cast<unsigned>(_l2s.size());
    }
    unsigned numCpuCaches() const
    {
        return static_cast<unsigned>(_cpus.size());
    }
    bool hasGpu() const { return !_l2s.empty(); }

    /** The L2 slice serving a compute unit (contiguous split). */
    unsigned
    l2ForCu(unsigned cu) const
    {
        return cu * numGpuL2s() / numCus();
    }

    FaultInjector *fault() { return _fault.get(); }

    /**
     * Attach a trace recorder: the crossbar (message sends/deliveries)
     * and all four controller types (transitions) start recording into
     * it. The testers pick it up via trace() for episode markers.
     * Recording never perturbs the simulation schedule.
     */
    void attachTrace(TraceRecorder &trace);

    /** The attached recorder, or nullptr when not tracing. */
    TraceRecorder *trace() const { return _trace; }

    /** Union of GPU L1 coverage over all CUs. */
    CoverageGrid l1CoverageUnion() const;

    /** Union of GPU L2 coverage over all L2 slices. */
    CoverageGrid l2CoverageUnion() const;

  private:
    ApuSystemConfig _cfg;
    EventQueue _eq;
    std::unique_ptr<FaultInjector> _fault;
    std::unique_ptr<Crossbar> _xbar;
    std::unique_ptr<SimpleMemory> _mem;
    std::vector<std::unique_ptr<GpuL2Cache>> _l2s;
    std::unique_ptr<Directory> _dir;
    std::vector<std::unique_ptr<GpuL1Cache>> _l1s;
    std::vector<std::unique_ptr<CpuCache>> _cpus;
    TraceRecorder *_trace = nullptr;
};

} // namespace drf

#endif // DRF_SYSTEM_APU_SYSTEM_HH
