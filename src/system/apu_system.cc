#include "system/apu_system.hh"

#include <cassert>

namespace drf
{

ApuSystem::ApuSystem(const ApuSystemConfig &cfg) : _cfg(cfg)
{
    assert(cfg.l1.lineBytes == cfg.lineBytes &&
           cfg.l2.lineBytes == cfg.lineBytes &&
           cfg.cpu.lineBytes == cfg.lineBytes &&
           cfg.dir.lineBytes == cfg.lineBytes &&
           "inconsistent line size");
    assert((cfg.numCus == 0 || cfg.numGpuL2s >= 1) &&
           cfg.numGpuL2s <= std::max(1u, cfg.numCus) &&
           "need between 1 and numCus L2 slices");

    if (cfg.fault != FaultKind::None) {
        _fault = std::make_unique<FaultInjector>(
            cfg.fault, cfg.faultTriggerPct, cfg.faultSeed);
    }

    _xbar = std::make_unique<Crossbar>("xbar", _eq, cfg.xbarLatency);
    _mem = std::make_unique<SimpleMemory>("mem", _eq, cfg.lineBytes,
                                          cfg.memLatency);

    std::vector<int> l2_endpoints;
    if (cfg.numCus > 0) {
        for (unsigned g = 0; g < cfg.numGpuL2s; ++g) {
            _l2s.push_back(std::make_unique<GpuL2Cache>(
                "gpu.l2[" + std::to_string(g) + "]", _eq, cfg.l2,
                *_xbar, l2Endpoint(g), dirEndpoint, _fault.get()));
            l2_endpoints.push_back(l2Endpoint(g));
        }
    }
    _dir = std::make_unique<Directory>("dir", _eq, cfg.dir, *_xbar,
                                       dirEndpoint, l2_endpoints, *_mem,
                                       _fault.get());

    for (unsigned cu = 0; cu < cfg.numCus; ++cu) {
        unsigned l2_slice = cu * cfg.numGpuL2s / cfg.numCus;
        _l1s.push_back(std::make_unique<GpuL1Cache>(
            "gpu.l1[" + std::to_string(cu) + "]", _eq, cfg.l1, *_xbar,
            l1Endpoint(cu), l2Endpoint(l2_slice), _fault.get()));
    }
    for (unsigned i = 0; i < cfg.numCpuCaches; ++i) {
        _cpus.push_back(std::make_unique<CpuCache>(
            "cpu.corepair[" + std::to_string(i) + "]", _eq, cfg.cpu,
            *_xbar, cpuEndpoint(i), dirEndpoint));
    }
}

void
ApuSystem::attachTrace(TraceRecorder &trace)
{
    _trace = &trace;
    _xbar->setTrace(&trace);
    _dir->setTrace(&trace);
    for (auto &l2 : _l2s)
        l2->setTrace(&trace);
    for (auto &l1 : _l1s)
        l1->setTrace(&trace);
    for (auto &cpu : _cpus)
        cpu->setTrace(&trace);
}

CoverageGrid
ApuSystem::l1CoverageUnion() const
{
    CoverageAccumulator acc;
    // Seed with the configured protocol's spec (even with 0 CUs) so the
    // union is always that spec's grid — front() of the accumulator.
    acc.add(CoverageGrid(GpuL1Cache::specFor(_cfg.l1.protocol)));
    for (const auto &l1 : _l1s)
        acc.add(l1->coverage());
    return acc.grid();
}

CoverageGrid
ApuSystem::l2CoverageUnion() const
{
    CoverageAccumulator acc;
    acc.add(CoverageGrid(GpuL2Cache::spec()));
    for (const auto &l2 : _l2s)
        acc.add(l2->coverage());
    return acc.grid();
}

} // namespace drf
