/**
 * @file
 * The pluggable GPU L1 protocol family.
 *
 * Each kind names a complete transition table for the per-CU L1 (see
 * src/proto/transition_table.hh and DESIGN.md §12). The kind is a
 * searchable knob: ConfigGenome can mutate it, campaign JSON and
 * DRFTRC01 headers record it, and the CI protocol matrix runs every
 * kind × scope-mode cell.
 */

#ifndef DRF_PROTO_PROTOCOL_KIND_HH
#define DRF_PROTO_PROTOCOL_KIND_HH

#include <cstdint>
#include <optional>
#include <string>

namespace drf
{

/** Selectable GPU L1 coherence protocol variants. */
enum class ProtocolKind : std::uint8_t
{
    /**
     * VIPER: write-through no-allocate, release waits for write-through
     * drain, acquire flash-invalidates. The original protocol; the
     * golden campaign digests are pinned against it.
     */
    Viper = 0,

    /**
     * LRCC-style ownership variant: write-back write-allocate with
     * per-line Owned/Modified states. Stores dirty the line locally
     * (Modified); a release writes every Modified line back (demoting
     * it to Owned) before the releasing atomic is issued; an acquire
     * writes back and then flash-invalidates. Expressed purely as a
     * second transition table over the same controller actions.
     */
    Lrcc,
};

inline constexpr std::uint32_t protocolKindCount = 2;

/** Printable protocol name ("viper" / "lrcc"). */
const char *protocolKindName(ProtocolKind kind);

/** Parse a protocol name; nullopt on unknown names. */
std::optional<ProtocolKind> parseProtocolKind(const std::string &name);

} // namespace drf

#endif // DRF_PROTO_PROTOCOL_KIND_HH
