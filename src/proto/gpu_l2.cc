#include "proto/gpu_l2.hh"

#include <algorithm>
#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
GpuL2Cache::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "GPU-L2", {"I", "V", "IV", "A"},
            {"RdBlk", "WrVicBlk", "Atomic", "AtomicD", "AtomicND", "Data",
             "L2_Repl", "PrbInv", "WBAck"});
        spec.define(EvRdBlk, StI);
        spec.define(EvRdBlk, StV);
        spec.define(EvRdBlk, StIV);  // stall
        spec.define(EvRdBlk, StA);   // stall
        spec.define(EvWrVicBlk, StI);
        spec.define(EvWrVicBlk, StV);
        spec.define(EvWrVicBlk, StIV); // stall
        spec.define(EvWrVicBlk, StA);  // stall
        spec.define(EvAtomic, StI);
        spec.define(EvAtomic, StV);
        spec.define(EvAtomic, StIV); // stall
        spec.define(EvAtomic, StA);  // queued behind the pending atomic
        spec.define(EvAtomicD, StA);
        spec.define(EvAtomicND, StA);
        spec.define(EvData, StIV);
        spec.define(EvL2Repl, StV);
        spec.define(EvPrbInv, StI);
        spec.define(EvPrbInv, StV);
        spec.define(EvPrbInv, StIV);
        // A probe can find the line with an atomic outstanding when the
        // atomic was nacked while a remote L2's write transaction holds
        // the directory (multi-GPU systems); the local copy is already
        // gone, so the probe just acks.
        spec.define(EvPrbInv, StA);
        spec.define(EvWBAck, StI);
        spec.define(EvWBAck, StV);
        spec.define(EvWBAck, StIV);
        spec.define(EvWBAck, StA);

        // With only the GPU tester attached there is a single L2 and no
        // CPU, so the directory never probes it (Section IV.B, "Impsb").
        // In a multi-GPU system ("gpu_tester_multi") every PrbInv cell
        // becomes reachable by the GPU tester alone.
        for (auto st : {StI, StV, StIV, StA})
            spec.markImpossible("gpu_tester", EvPrbInv, st);
        return spec;
    }();
    return s;
}

const TransitionTable<GpuL2Cache> &
GpuL2Cache::table()
{
    using T = TransitionTable<GpuL2Cache>;
    using L2 = GpuL2Cache;
    static const T t = [] {
        T t(spec());
        t.on(EvRdBlk, StI, {&L2::actReadMiss}, StIV)
            .on(EvRdBlk, StV, {&L2::actReadHit}, StV)
            .on(EvRdBlk, StIV, {&L2::actRecycle}, StIV)
            .on(EvRdBlk, StA, {&L2::actRecycle}, StA)
            .on(EvWrVicBlk, StI, {&L2::actWriteThrough}, StI)
            .on(EvWrVicBlk, StV, {&L2::actWriteThrough}, StV)
            .on(EvWrVicBlk, StIV, {&L2::actRecycle}, StIV)
            .on(EvWrVicBlk, StA, {&L2::actRecycle}, StA)
            .on(EvAtomic, StI, {&L2::actAtomicStart}, StA)
            .on(EvAtomic, StV,
                {&L2::actAtomicInvalidate, &L2::actAtomicStart}, StA)
            .on(EvAtomic, StIV, {&L2::actRecycle}, StIV)
            .on(EvAtomic, StA, {&L2::actAtomicQueue}, StA)
            .on(EvAtomicD, StA, {&L2::actAtomicDone})
            .on(EvAtomicND, StA, {&L2::actAtomicRetry}, StA)
            .on(EvData, StIV, {&L2::actDataFill}, StV)
            .on(EvL2Repl, StV, {&L2::actReplaceVictim}, StI)
            .on(EvPrbInv, StI, {&L2::actProbeAck}, StI)
            .on(EvPrbInv, StV,
                {&L2::actProbeInvalidate, &L2::actProbeAck}, StI)
            .on(EvPrbInv, StIV, {&L2::actProbeAck}, StIV)
            .on(EvPrbInv, StA, {&L2::actProbeAck}, StA)
            .on(EvWBAck, StI, {&L2::actWriteBackAck}, StI)
            .on(EvWBAck, StV, {&L2::actWriteBackAck}, StV)
            .on(EvWBAck, StIV, {&L2::actWriteBackAck}, StIV)
            .on(EvWBAck, StA, {&L2::actWriteBackAck}, StA)
            .verifyComplete();
        return t;
    }();
    return t;
}

GpuL2Cache::GpuL2Cache(std::string name, EventQueue &eq,
                       const GpuL2Config &cfg, Crossbar &xbar, int endpoint,
                       int dir_ep, FaultInjector *fault)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _dirEndpoint(dir_ep), _fault(fault),
      _array(cfg.sizeBytes, cfg.assoc, cfg.lineBytes), _coverage(spec()),
      _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cReadHits(&_stats.counter("read_hits")),
      _cReadMisses(&_stats.counter("read_misses")),
      _cWriteThroughs(&_stats.counter("write_throughs")),
      _cAtomics(&_stats.counter("atomics")),
      _cAtomicRetries(&_stats.counter("atomic_retries")),
      _cReplacements(&_stats.counter("replacements")),
      _cRefillMerges(&_stats.counter("refill_merges")),
      _cProbes(&_stats.counter("probes"))
{
    _fetchTbes.reserve(128);
    _atomicTbes.reserve(128);
    _pendingWBs.reserve(128);
    _wbLineCount.reserve(128);
    xbar.attach(endpoint, *this);
}

GpuL2Cache::State
GpuL2Cache::lineState(Addr line_addr) const
{
    if (_atomicTbes.contains(line_addr))
        return StA;
    if (_fetchTbes.contains(line_addr))
        return StIV;
    if (_array.findEntry(line_addr) != nullptr)
        return StV;
    return StI;
}

void
GpuL2Cache::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      recvMsg(pkt);
                  });
}

void
GpuL2Cache::respondData(const Packet &req, const CacheEntry &entry)
{
    Packet resp;
    resp.type = MsgType::TccAck;
    resp.addr = req.addr;
    resp.id = req.id;
    resp.requestor = req.requestor;
    resp.setLine(entry.data);
    _xbar.route(_endpoint, req.srcEndpoint, std::move(resp));
}

void
GpuL2Cache::handleRdBlk(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvRdBlk, lineState(ctx.line), ctx);
}

void
GpuL2Cache::actRecycle(TransCtx &ctx)
{
    recycle(*ctx.pkt);
}

void
GpuL2Cache::actReadHit(TransCtx &ctx)
{
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    _cReadHits->inc();
    respondData(*ctx.pkt, *entry);
}

void
GpuL2Cache::actReadMiss(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    _cReadMisses->inc();
    std::uint32_t idx = poolAlloc(_fetchPool, _fetchFree);
    _fetchPool[idx].waiters.push_back(pkt);
    _fetchTbes.emplace(ctx.line, idx);
    Packet req;
    req.type = MsgType::FetchBlk;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(req));
}

void
GpuL2Cache::handleWrThrough(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvWrVicBlk, lineState(ctx.line), ctx);
}

void
GpuL2Cache::actWriteThrough(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Addr line = ctx.line;

    // Case-study bug 1: two false-sharing write-throughs racing at this
    // controller are not serialized; the later one is acked but its bytes
    // never reach the line or memory.
    const std::uint32_t *line_wbs = _wbLineCount.find(line);
    bool racing = line_wbs != nullptr && *line_wbs > 0;
    if (racing && _fault != nullptr &&
        _fault->fire(FaultKind::LostWriteThrough)) {
        _stats.counter("injected_lost_wt").inc();
        Packet ack;
        ack.type = MsgType::TccAckWB;
        ack.addr = pkt.addr;
        ack.id = pkt.id;
        ack.requestor = pkt.requestor;
        _xbar.route(_endpoint, pkt.srcEndpoint, std::move(ack));
        return;
    }

    if (CacheEntry *entry = _array.findEntry(line)) {
        // Merge the masked bytes into the local copy.
        _array.touch(*entry);
        assert(pkt.dataLen == _cfg.lineBytes);
        for (unsigned i = 0; i < _cfg.lineBytes; ++i) {
            if (maskTest(pkt.mask, i)) {
                entry->data[i] = pkt.data[i];
                entry->dirty |= maskBit(i);
            }
        }
    }

    // Forward toward memory (VIPER keeps memory up to date so a release
    // can make data globally visible).
    Packet fwd;
    fwd.type = MsgType::WrMem;
    fwd.addr = line;
    fwd.id = _nextId++;
    fwd.requestor = pkt.requestor;
    fwd.issueTick = curTick();
    fwd.data = pkt.data;
    fwd.dataLen = pkt.dataLen;
    fwd.mask = pkt.mask;
    _pendingWBs.emplace(fwd.id, PendingWB{pkt});
    ++_wbLineCount[line];
    _cWriteThroughs->inc();
    _xbar.route(_endpoint, _dirEndpoint, std::move(fwd));
}

void
GpuL2Cache::issueAtomic(Addr line_addr)
{
    std::uint32_t *idx = _atomicTbes.find(line_addr);
    assert(idx != nullptr && !_atomicPool[*idx].queueEmpty());
    const Packet &head = _atomicPool[*idx].queueFront();

    Packet req;
    req.type = MsgType::DirAtomic;
    req.addr = head.addr;
    req.size = head.size;
    req.atomicOperand = head.atomicOperand;
    req.id = _nextId++;
    req.requestor = head.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(req));
}

void
GpuL2Cache::handleAtomic(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvAtomic, lineState(ctx.line), ctx);
}

void
GpuL2Cache::actAtomicQueue(TransCtx &ctx)
{
    // Serialize behind the atomic already in flight.
    _atomicPool[*_atomicTbes.find(ctx.line)].queue.push_back(
        std::move(*ctx.pkt));
}

void
GpuL2Cache::actAtomicInvalidate(TransCtx &ctx)
{
    // The directory-side atomic makes the local copy stale.
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.invalidate(*entry);
}

void
GpuL2Cache::actAtomicStart(TransCtx &ctx)
{
    std::uint32_t idx = poolAlloc(_atomicPool, _atomicFree);
    _atomicPool[idx].queue.push_back(std::move(*ctx.pkt));
    _atomicTbes.emplace(ctx.line, idx);
    _cAtomics->inc();
    issueAtomic(ctx.line);
}

void
GpuL2Cache::handleAtomicD(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    // With no pending atomic the line is not in A, and only A defines
    // an AtomicD row: the table raises the protocol error.
    table().fireWith(*this, EvAtomicD, lineState(ctx.line), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
GpuL2Cache::actAtomicDone(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Addr line = ctx.line;
    std::uint32_t *idx = _atomicTbes.find(line);

    AtomicTbe &tbe = _atomicPool[*idx];
    Packet head = std::move(tbe.queueFront());
    tbe.popQueueFront();

    Packet resp;
    resp.type = MsgType::TccAck;
    resp.addr = head.addr;
    resp.id = head.id;
    resp.requestor = head.requestor;
    resp.atomicResult = pkt.atomicResult;
    _xbar.route(_endpoint, head.srcEndpoint, std::move(resp));

    if (!tbe.queueEmpty()) {
        issueAtomic(line);
        return;
    }

    _atomicFree.push_back(*idx);
    _atomicTbes.erase(line);
    // Cache the post-atomic line contents delivered with the ack.
    assert(pkt.dataLen == _cfg.lineBytes);
    fillLine(line, pkt.data);
}

void
GpuL2Cache::handleAtomicND(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fireWith(*this, EvAtomicND, lineState(ctx.line), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
GpuL2Cache::actAtomicRetry(TransCtx &ctx)
{
    Addr line = ctx.line;
    _cAtomicRetries->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, line] { issueAtomic(line); });
}

void
GpuL2Cache::actReplaceVictim(TransCtx &ctx)
{
    _cReplacements->inc();
    _array.invalidate(*ctx.entry);
}

CacheEntry &
GpuL2Cache::fillLine(Addr line_addr, const LineData &data)
{
    if (_array.findEntry(line_addr) != nullptr) {
        // Refill raced with a write-through that re-validated the line;
        // keep the merged copy (it is at least as fresh).
        return *_array.findEntry(line_addr);
    }
    if (!_array.hasFreeWay(line_addr)) {
        CacheEntry &victim = _array.victim(line_addr);
        TransCtx ctx;
        ctx.entry = &victim;
        ctx.line = victim.lineAddr;
        table().fire(*this, EvL2Repl, StV, ctx);
    }
    CacheEntry &entry = _array.allocate(line_addr);
    entry.data = data;

    // Merge the refill *under* the dirty bytes of this controller's own
    // in-flight write-throughs. The fetched data can predate a write
    // that is still waiting for its WBAck (the write may be recycled
    // behind a busy directory line, or racing with a remote L2's
    // transaction that probed us mid-flight); under DRF no other agent
    // writes those bytes until our write retires, so our pending bytes
    // are strictly newer. Found by the tester itself as a read-write
    // inconsistency — the exact failure mode of the paper's Section V
    // case study. Matches are applied in ascending id (issue) order, as
    // the old id-sorted pending map iterated. The per-line write-through
    // count gates the scan: almost every fill has no in-flight WB on its
    // line, and the table lookup is what makes that the cheap case.
    if (_wbLineCount.contains(line_addr)) {
        _mergeScratch.clear();
        _pendingWBs.forEach([&](std::uint64_t id, const PendingWB &wb) {
            if (lineAlign(wb.original.addr, _cfg.lineBytes) == line_addr)
                _mergeScratch.emplace_back(id, &wb.original);
        });
        std::sort(_mergeScratch.begin(), _mergeScratch.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[id, original] : _mergeScratch) {
            for (unsigned i = 0; i < _cfg.lineBytes; ++i) {
                if (maskTest(original->mask, i)) {
                    entry.data[i] = original->data[i];
                    entry.dirty |= maskBit(i);
                }
            }
            _cRefillMerges->inc();
        }
    }

    _array.touch(entry);
    return entry;
}

void
GpuL2Cache::handleDirData(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    // With no refill MSHR the line is not in IV, and only IV defines a
    // Data row: the table raises the protocol error.
    table().fireWith(*this, EvData, lineState(ctx.line), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
GpuL2Cache::actDataFill(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Addr line = ctx.line;
    const std::uint32_t idx = *_fetchTbes.find(line);
    _fetchTbes.erase(line);

    CacheEntry &entry = fillLine(line, pkt.data);
    for (const Packet &waiter : _fetchPool[idx].waiters)
        respondData(waiter, entry);
    _fetchPool[idx].waiters.clear();
    _fetchFree.push_back(idx);
}

void
GpuL2Cache::handleDirWBAck(Packet &pkt)
{
    PendingWB *found = _pendingWBs.find(pkt.id);
    if (found == nullptr) {
        // Keyed by packet id, not line state: the table's row lookup
        // cannot detect this, so it stays an explicit guard.
        throw ProtocolError(name(), curTick(),
                            "WBAck with no pending write: " +
                                pkt.describe());
    }
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    ctx.pending = found;
    table().fire(*this, EvWBAck, lineState(ctx.line), ctx);
}

void
GpuL2Cache::actWriteBackAck(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Packet original = static_cast<PendingWB *>(ctx.pending)->original;
    _pendingWBs.erase(pkt.id);

    std::uint32_t *wbs = _wbLineCount.find(
        lineAlign(original.addr, _cfg.lineBytes));
    assert(wbs != nullptr && *wbs > 0);
    if (--*wbs == 0)
        _wbLineCount.erase(lineAlign(original.addr, _cfg.lineBytes));

    if (_fault != nullptr && _fault->fire(FaultKind::DropWriteAck)) {
        // The completion ack never reaches the L1: the system deadlocks
        // on the next release and the watchdog must catch it.
        _stats.counter("injected_dropped_acks").inc();
        return;
    }

    Packet ack;
    ack.type = MsgType::TccAckWB;
    ack.addr = original.addr;
    ack.id = original.id;
    ack.requestor = original.requestor;
    _xbar.route(_endpoint, original.srcEndpoint, std::move(ack));
}

void
GpuL2Cache::handlePrbInv(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvPrbInv, lineState(ctx.line), ctx);
}

void
GpuL2Cache::actProbeInvalidate(TransCtx &ctx)
{
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.invalidate(*entry);
}

void
GpuL2Cache::actProbeAck(TransCtx &ctx)
{
    // In IV the refill completes later with data ordered before any
    // subsequent remote write (DRF programs order such accesses with
    // synchronization anyway); in A the local copy was dropped when the
    // atomic was issued; in I this is a stale probe. Always ack.
    _cProbes->inc();

    Packet ack;
    ack.type = MsgType::InvAck;
    ack.addr = ctx.line;
    ack.id = ctx.pkt->id;
    _xbar.route(_endpoint, _dirEndpoint, std::move(ack));
}

void
GpuL2Cache::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::RdBlk:
        handleRdBlk(pkt);
        break;
      case MsgType::WrThrough:
        handleWrThrough(pkt);
        break;
      case MsgType::GpuAtomic:
        handleAtomic(pkt);
        break;
      case MsgType::AtomicD:
        handleAtomicD(pkt);
        break;
      case MsgType::AtomicND:
        handleAtomicND(pkt);
        break;
      case MsgType::DirData:
        handleDirData(pkt);
        break;
      case MsgType::DirWBAck:
        handleDirWBAck(pkt);
        break;
      case MsgType::PrbInv:
        handlePrbInv(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
