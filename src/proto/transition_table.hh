/**
 * @file
 * Declarative transition tables for protocol controllers.
 *
 * A controller's behavior is a set of rows
 *
 *     (Event, State) -> { NextState, [Action, ...] }
 *
 * exactly like a SLICC specification. Instead of a hand-written switch
 * per handler, each controller builds one immutable TransitionTable at
 * startup (validated against its TransitionSpec) and dispatches every
 * message through TransitionTable::fire:
 *
 *  1. the (event, state) row is looked up; a *missing* row throws
 *     ProtocolError naming the offending row — there is no silent
 *     fallthrough path anywhere in the protocol layer;
 *  2. the activation is reported to the controller's CoverageGrid and
 *     the trace recorder (via the controller's transition() hook), so
 *     transition coverage comes for free with every fired row;
 *  3. the row's actions run in order. Actions are pointers to member
 *     functions of the controller taking the controller's TransCtx, so
 *     binding a row to the wrong controller or signature is a compile
 *     error.
 *
 * NextState is advisory documentation: these controllers derive state
 * from their structures (cache array + TBEs), so actions perform the
 * state change and kDynamic marks rows whose successor depends on data.
 * Protocol variants are pure data — a second protocol for the same
 * controller is just another table over (a superset of) the same
 * actions; see ProtocolKind and DESIGN.md §12.
 */

#ifndef DRF_PROTO_TRANSITION_TABLE_HH
#define DRF_PROTO_TRANSITION_TABLE_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "proto/protocol_error.hh"

namespace drf
{

/**
 * The transition table of one controller type @p C.
 *
 * @tparam C  The controller class. Must expose:
 *            - nested types `Event`, `State` (integer enums indexing
 *              the TransitionSpec) and `TransCtx` (per-dispatch data);
 *            - `void transition(Event, State)` (coverage + trace hook);
 *            - `const std::string &name()` and `Tick curTick()` (for
 *              ProtocolError reports).
 */
template <typename C>
class TransitionTable
{
  public:
    using Ctx = typename C::TransCtx;
    using Action = void (C::*)(Ctx &);

    /** Most actions any single row chains. */
    static constexpr std::size_t kMaxActions = 4;

    /** NextState marker: the successor depends on runtime data. */
    static constexpr int kDynamic = -1;

    explicit TransitionTable(const TransitionSpec &spec)
        : _spec(&spec), _rows(spec.numCells())
    {}

    const TransitionSpec &spec() const { return *_spec; }

    /**
     * Declare the row for (event, state). The cell must be defined in
     * the spec (asserted): the spec is the single source of truth for
     * which transitions exist, the table for what they do.
     */
    TransitionTable &
    on(std::size_t event, std::size_t state,
       std::initializer_list<Action> actions, int next_state = kDynamic)
    {
        assert(_spec->defined(event, state) &&
               "table row for a cell the spec does not define");
        Row &row = _rows[_spec->cell(event, state)];
        assert(!row.present && "duplicate table row");
        assert(actions.size() <= kMaxActions);
        row.present = true;
        row.next = static_cast<std::int16_t>(next_state);
        for (Action a : actions)
            row.actions[row.numActions++] = a;
        return *this;
    }

    /** True if (event, state) has a declared row. */
    bool
    handled(std::size_t event, std::size_t state) const
    {
        return _rows[_spec->cell(event, state)].present;
    }

    /** Advisory successor of a declared row (kDynamic if data-driven). */
    int
    nextState(std::size_t event, std::size_t state) const
    {
        return _rows[_spec->cell(event, state)].next;
    }

    /**
     * Validate completeness: every spec-defined cell has a row. Called
     * once after the static table is built; together with the assert in
     * on() this pins table == spec exactly.
     */
    const TransitionTable &
    verifyComplete() const
    {
        for (std::size_t ev = 0; ev < _spec->numEvents(); ++ev) {
            for (std::size_t st = 0; st < _spec->numStates(); ++st) {
                assert(!_spec->defined(ev, st) || handled(ev, st));
                (void)ev;
                (void)st;
            }
        }
        return *this;
    }

    /**
     * Dispatch one event: record the activation and run the row's
     * actions. An undeclared row raises ProtocolError naming the row.
     */
    void
    fire(C &self, std::size_t event, std::size_t state, Ctx &ctx) const
    {
        fireWith(self, event, state, ctx,
                 [] { return std::string(); });
    }

    /**
     * fire() with lazy error detail: @p detail_fn (typically a
     * Packet::describe closure) is only invoked when the row is
     * missing, so the hot path never pays for string formatting.
     */
    template <typename DetailFn>
    void
    fireWith(C &self, std::size_t event, std::size_t state, Ctx &ctx,
             DetailFn &&detail_fn) const
    {
        const Row &row = _rows[_spec->cell(event, state)];
        if (!row.present)
            throwUnhandled(self, event, state, detail_fn());
        self.transition(static_cast<typename C::Event>(event),
                        static_cast<typename C::State>(state));
        for (std::uint8_t i = 0; i < row.numActions; ++i)
            (self.*row.actions[i])(ctx);
    }

  private:
    struct Row
    {
        std::array<Action, kMaxActions> actions{};
        std::uint8_t numActions = 0;
        std::int16_t next = kDynamic;
        bool present = false;
    };

    [[noreturn]] void
    throwUnhandled(const C &self, std::size_t event, std::size_t state,
                   const std::string &detail) const
    {
        std::string msg = "unhandled transition row (" +
                          _spec->events()[event] + ", " +
                          _spec->states()[state] + ") in " + _spec->name();
        if (!detail.empty())
            msg += ": " + detail;
        throw ProtocolError(self.name(), self.curTick(), msg);
    }

    const TransitionSpec *_spec;
    std::vector<Row> _rows;
};

} // namespace drf

#endif // DRF_PROTO_TRANSITION_TABLE_HH
