#include "proto/protocol_kind.hh"

namespace drf
{

const char *
protocolKindName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Viper: return "viper";
      case ProtocolKind::Lrcc: return "lrcc";
    }
    return "?";
}

std::optional<ProtocolKind>
parseProtocolKind(const std::string &name)
{
    for (ProtocolKind k : {ProtocolKind::Viper, ProtocolKind::Lrcc}) {
        if (name == protocolKindName(k))
            return k;
    }
    return std::nullopt;
}

} // namespace drf
