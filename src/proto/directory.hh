/**
 * @file
 * APU system directory, shared by the CPU core-pair caches, the GPU L2,
 * and a DMA engine (Section IV.C of the paper).
 *
 * The directory is the ordering point below the GPU L2 and the CPU
 * caches. It tracks, per line:
 *
 *  - U  : memory owns the data (GPU L2 may hold clean copies),
 *  - CS : one or more CPU caches hold shared clean copies,
 *  - CM : one CPU cache owns the line dirty,
 *  - B  : a transaction is in flight (transient; new requests stall,
 *         except GPU atomics which receive AtomicND retries).
 *
 * GPU requests are VIPER write-through traffic; GPU atomics are performed
 * here, read-modify-write, while the line is held busy — which is what
 * makes them atomic (and what FaultKind::NonAtomicRmw breaks). A
 * "gpuMayHave" bit per line tracks whether the GPU L2 may cache a copy so
 * CPU/DMA writes can probe-invalidate it (the PrbInv transitions of
 * Table II).
 */

#ifndef DRF_PROTO_DIRECTORY_HH
#define DRF_PROTO_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "mem/memory.hh"
#include "sim/flat_map.hh"
#include "sim/small_set.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "mem/port.hh"
#include "proto/fault.hh"
#include "proto/transition_table.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/** Configuration of the directory. */
struct DirectoryConfig
{
    unsigned lineBytes = 64;
    Tick recycleLatency = 10;
    Tick memPortLatency = 2;
};

/**
 * The shared CPU-GPU system directory (with its DRAM behind it).
 */
class Directory : public SimObject, public MsgReceiver
{
  public:
    /** Coverage row indices. */
    enum Event : std::size_t
    {
        EvGpuFetch = 0,
        EvGpuWrMem,
        EvGpuAtomic,
        EvCpuGets,
        EvCpuGetx,
        EvCpuPutx,
        EvDmaRead,
        EvDmaWrite,
        EvMemData,
        EvMemWBAck,
        EvCpuInvAck,
        EvGpuInvAck,
    };

    /** Coverage column indices. */
    enum State : std::size_t
    {
        StU = 0,
        StCS,
        StCM,
        StB,
    };

    /**
     * @param name   Instance name.
     * @param eq     Event queue.
     * @param cfg    Configuration.
     * @param xbar   Crossbar shared with L2s / CPU caches / DMA.
     * @param endpoint The directory's endpoint id.
     * @param gpu_l2_eps GPU L2 endpoints (for PrbInv); empty = no GPU.
     *        With more than one L2 (a multi-GPU system, Section III.B)
     *        the directory also probe-invalidates remote GPU L2s on GPU
     *        writes and atomics, which is what makes the L2 PrbInv
     *        transitions reachable by the GPU tester alone.
     * @param mem    DRAM behind the directory.
     * @param fault  Optional fault injector.
     */
    /** Per-dispatch context handed to table actions. */
    struct TransCtx
    {
        Packet *pkt = nullptr; ///< triggering packet
        Addr line = 0;         ///< aligned line address
    };

    Directory(std::string name, EventQueue &eq, const DirectoryConfig &cfg,
              Crossbar &xbar, int endpoint, std::vector<int> gpu_l2_eps,
              SimpleMemory &mem, FaultInjector *fault = nullptr);

    static const TransitionSpec &spec();

    /** The validated static transition table (shared by instances). */
    static const TransitionTable<Directory> &table();

    void recvMsg(Packet &pkt) override;

    CoverageGrid &coverage() { return _coverage; }
    const CoverageGrid &coverage() const { return _coverage; }
    StatGroup &stats() { return _stats; }

    /** Record transition activations into @p trace (nullptr = off). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    friend class TransitionTable<Directory>;

    /** In-flight transaction on one line. */
    struct Txn
    {
        Packet origin;
        int pendingAcks = 0;
        LineData probeData{};
        bool haveProbeData = false;
        /**
         * A prepared response parked until the memory writeback acks.
         * Keeping it here instead of inside onMemWBAck's capture keeps
         * that std::function within its small-buffer optimisation (a
         * Packet capture would heap-allocate on every atomic).
         */
        Packet pendingResp;
        std::function<void()> onAcks;
        std::function<void(const LineData &)> onMemData;
        std::function<void()> onMemWBAck;
    };

    /** Directory record for one line (absent => U, no sharers). */
    struct Line
    {
        State stable = StU;      ///< U / CS / CM
        SmallIntSet sharers;     ///< CPU caches holding the line
        int owner = -1;          ///< CPU owner when CM
        SmallIntSet gpuSharers;  ///< GPU L2s that may hold the line
        Txn *txn = nullptr;      ///< in-flight transaction (pooled)
    };

    Line &line(Addr line_addr);
    State visibleState(const Line &l) const;
    void
    transition(Event ev, State st)
    {
        recordTransition(_trace, curTick(), _endpoint, ev, st);
        _coverage.hit(ev, st);
    }
    void recycle(Packet &pkt);

    /** Start a transaction; the line becomes busy. */
    Txn &startTxn(Addr line_addr, Packet origin);
    /** Complete the transaction on @p line_addr. */
    void finishTxn(Addr line_addr);

    /** Issue probes; txn.onAcks runs once every target acked. */
    void sendCpuProbes(Addr line_addr, const std::vector<int> &targets,
                       MsgType probe_type);

    /**
     * Probe-invalidate every GPU L2 that may hold the line, except
     * @p exclude (the requesting L2, if GPU-initiated). Each probe
     * counts as one pending ack; the probed L2s are dropped from the
     * sharer set.
     *
     * @return number of probes sent.
     */
    unsigned sendGpuProbes(Addr line_addr, int exclude = -1);

    void readMem(Addr line_addr);
    void writeMem(Addr line_addr, const LineData &data, ByteMask mask);

    void handleGpuFetch(Packet &pkt);
    void handleGpuWrMem(Packet &pkt);
    void handleGpuAtomic(Packet &pkt);
    void handleCpuGets(Packet &pkt);
    void handleCpuGetx(Packet &pkt);
    void handleCpuPutx(Packet &pkt);
    void handleDmaRead(Packet &pkt);
    void handleDmaWrite(Packet &pkt);
    void handleMemResp(Packet &pkt);
    void handleInvAck(Packet &pkt, bool from_gpu);

    // Table actions (see the static table builder in directory.cc).
    void actRecycle(TransCtx &ctx);
    void actGpuFetchClean(TransCtx &ctx);
    void actGpuFetchOwned(TransCtx &ctx);
    void actGpuWriteClean(TransCtx &ctx);
    void actGpuWriteShared(TransCtx &ctx);
    void actGpuWriteOwned(TransCtx &ctx);
    void actAtomicNack(TransCtx &ctx);
    void actGpuAtomicClean(TransCtx &ctx);
    void actGpuAtomicShared(TransCtx &ctx);
    void actGpuAtomicOwned(TransCtx &ctx);
    void actCpuGetsClean(TransCtx &ctx);
    void actCpuGetsOwned(TransCtx &ctx);
    void actCpuGetx(TransCtx &ctx);
    void actCpuPutx(TransCtx &ctx);
    void actDmaReadClean(TransCtx &ctx);
    void actDmaReadOwned(TransCtx &ctx);
    void actDmaWriteClean(TransCtx &ctx);
    void actDmaWriteOwned(TransCtx &ctx);
    void actMemData(TransCtx &ctx);
    void actMemWBAck(TransCtx &ctx);
    void actInvAck(TransCtx &ctx);

    // Transaction continuations shared by several actions. These were
    // per-handler lambdas before the table migration; as members the
    // hot-path onAcks/onMemData captures stay at [this, addr] size,
    // inside std::function's small buffer.
    void gpuWriteAndAck(Addr la, const LineData &data, ByteMask mask);
    void atomicRmw(Addr la, LineData buf);
    void grantShared(Addr la, const LineData &data);
    void grantExclusive(Addr la, const LineData &data);
    void dmaReadRespond(Addr la, const LineData &data);
    void dmaWriteAndRespond(Addr la, const LineData &data, ByteMask mask);

    /** Perform the fetch-add on a line buffer; returns the old value. */
    std::uint64_t applyAtomic(LineData &buf, Addr addr, unsigned size,
                              std::uint64_t operand) const;

    DirectoryConfig _cfg;
    Crossbar &_xbar;
    int _endpoint;
    std::vector<int> _gpuL2Endpoints;
    SimpleMemory &_mem;
    MsgPort _memPort;
    FaultInjector *_fault;

    FlatMap<Line> _lines; ///< keyed by line address

    /**
     * Txn recycling pool. Every GPU write-through and atomic starts a
     * transaction, so steady state must not allocate one per message; a
     * recycled Txn keeps its std::function buffers.
     */
    std::vector<std::unique_ptr<Txn>> _txnPool;
    std::vector<Txn *> _txnFree;

    /** Scratch for sendGpuProbes' target list (kept for capacity). */
    std::vector<int> _probeScratch;

    CoverageGrid _coverage;
    StatGroup _stats;
    TraceRecorder *_trace = nullptr;

    // Hot-path counters, resolved once (counter(name) is a string-keyed
    // map lookup).
    Counter *_cRecycles;
    Counter *_cCpuProbes;
    Counter *_cGpuProbes;
    Counter *_cAtomicNacks;
    Counter *_cAtomics;
    Counter *_cStalePutx;
};

} // namespace drf

#endif // DRF_PROTO_DIRECTORY_HH
