/**
 * @file
 * VIPER GPU L1 data cache controller ("TCP").
 *
 * Write-through, no write-allocate, release-consistency semantics:
 *
 *  - Stores are performed immediately using per-byte masks and written
 *    through to the L2; the L1 never holds the only copy of dirty data
 *    and never stalls for exclusive permission.
 *  - An acquire (the atomic that opens a tester episode, or a
 *    load-acquire) flash-invalidates every valid line so later loads
 *    cannot see stale data.
 *  - A release waits for all outstanding write-throughs to complete
 *    before its atomic is issued, making prior stores globally visible.
 *  - Atomics are never performed in the L1; they are forwarded below.
 *
 * States: I (no copy), V (valid clean copy), A (miss/atomic outstanding
 * in an MSHR). Events are exactly Table I of the paper. The reconstructed
 * transition table is documented in DESIGN.md and printed by
 * bench/fig4_tables.
 */

#ifndef DRF_PROTO_GPU_L1_HH
#define DRF_PROTO_GPU_L1_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "sim/flat_map.hh"
#include "mem/cache_array.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "mem/port.hh"
#include "proto/fault.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "trace/recorder.hh"

namespace drf
{

/** Configuration of one GPU L1. */
struct GpuL1Config
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 16;
    unsigned lineBytes = 64;
    Tick hitLatency = 4;       ///< core-visible hit latency
    Tick recycleLatency = 10;  ///< stall retry interval
};

/**
 * One per-CU VIPER L1 cache.
 */
class GpuL1Cache : public SimObject, public MsgReceiver
{
  public:
    /** Coverage row indices (Table I order). */
    enum Event : std::size_t
    {
        EvLoad = 0,
        EvStoreThrough,
        EvAtomic,
        EvTccAck,
        EvTccAckWB,
        EvEvict,
        EvRepl,
    };

    /** Coverage column indices. */
    enum State : std::size_t
    {
        StI = 0,
        StV,
        StA,
    };

    using RespFunc = std::function<void(Packet &&)>;

    /**
     * @param name     Instance name.
     * @param eq       Event queue.
     * @param cfg      Cache geometry and latencies.
     * @param xbar     Crossbar toward the L2.
     * @param endpoint This cache's crossbar endpoint id.
     * @param l2_ep    The L2's endpoint id.
     * @param fault    Optional fault injector (may be nullptr).
     */
    GpuL1Cache(std::string name, EventQueue &eq, const GpuL1Config &cfg,
               Crossbar &xbar, int endpoint, int l2_ep,
               FaultInjector *fault = nullptr);

    /** The shared (event, state) spec for all GPU L1 instances. */
    static const TransitionSpec &spec();

    /** Bind the core-side response path. */
    void bindCoreResponse(RespFunc fn) { _respond = std::move(fn); }

    /**
     * Core-side request entry point. Accepts LoadReq, StoreReq and
     * AtomicReq packets; acquire/release flags carry the synchronization
     * semantics.
     */
    void coreRequest(Packet pkt);

    /** L2-side message delivery (TccAck / TccAckWB). */
    void recvMsg(Packet &pkt) override;

    /** Write-throughs issued but not yet acknowledged. */
    unsigned outstandingWriteThroughs() const { return _outstandingWT; }

    CoverageGrid &coverage() { return _coverage; }
    const CoverageGrid &coverage() const { return _coverage; }
    StatGroup &stats() { return _stats; }
    const CacheArray &array() const { return _array; }

    /** Record transition activations into @p trace (nullptr = off). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    /** MSHR entry for an outstanding load or atomic. */
    struct Tbe
    {
        bool isAtomic = false;
        Packet corePkt;
    };

    /** Line state as seen by the transition table. */
    State lineState(Addr line_addr) const;

    /** Record one transition activation. */
    void transition(Event ev, State st);

    /** Retry a stalled core request later. */
    void recycle(Packet &pkt);

    void handleLoad(Packet &pkt);
    void handleStore(Packet &pkt);
    void handleAtomic(Packet &pkt);
    void handleTccAck(Packet &pkt);
    void handleTccAckWB(Packet &pkt);

    /** Flash-invalidate all valid lines (acquire semantics). */
    void flashInvalidate();

    /** Fill a line after TCC_Ack, replacing a victim if needed. */
    CacheEntry &fillLine(Addr line_addr, const LineData &data);

    /** Drain the release queue if no write-throughs remain. */
    void tryDrainReleaseQueue();

    GpuL1Config _cfg;
    Crossbar &_xbar;
    int _endpoint;
    int _l2Endpoint;
    FaultInjector *_fault;

    CacheArray _array;
    FlatMap<Tbe> _tbes;             ///< keyed by line address
    FlatMap<Packet> _pendingWT;     ///< write-throughs in flight, by id
    std::vector<Packet> _releaseQueue; ///< releases awaiting WT drain
    std::size_t _releaseHead = 0;      ///< consumed prefix of the ring
    unsigned _outstandingWT = 0;
    PacketId _nextId = 1;

    RespFunc _respond;
    CoverageGrid _coverage;
    StatGroup _stats;
    TraceRecorder *_trace = nullptr;

    // Hot-path counters, resolved once: counter(name) is a string-keyed
    // map lookup and these fire per message.
    Counter *_cRecycles;
    Counter *_cLoadHits;
    Counter *_cLoadMisses;
    Counter *_cWriteThroughs;
    Counter *_cAtomics;
    Counter *_cFlashInvalidates;
    Counter *_cReplacements;
};

} // namespace drf

#endif // DRF_PROTO_GPU_L1_HH
