/**
 * @file
 * Table-driven GPU L1 data cache controller ("TCP").
 *
 * One controller, two protocols (ProtocolKind), each expressed purely
 * as a TransitionTable over the shared action set:
 *
 * VIPER — write-through, no write-allocate, release consistency:
 *  - Stores are performed immediately using per-byte masks and written
 *    through to the L2; the L1 never holds the only copy of dirty data
 *    and never stalls for exclusive permission.
 *  - An acquire (the atomic that opens a tester episode, or a
 *    load-acquire) flash-invalidates every valid line so later loads
 *    cannot see stale data.
 *  - A release waits for all outstanding write-throughs to complete
 *    before its atomic is issued, making prior stores globally visible.
 *  - Atomics are never performed in the L1; they are forwarded below.
 *
 * LRCC — write-back, write-allocate ownership variant:
 *  - Stores dirty the line locally (state M) and complete at the L1.
 *  - A release writes every Modified line back (demoting it to Owned)
 *    and waits for the write-backs to drain.
 *  - An acquire writes dirty lines back, then flash-invalidates.
 *  - Atomics first write back a Modified copy, then forward below.
 *
 * Scoped synchronization: a CTA-scope acquire skips the
 * flash-invalidate and a CTA-scope release skips the write-back/drain —
 * the CU-local L1 *is* the CTA's coherence point. Unscoped (Scope::None)
 * packets keep the conservative GPU-wide semantics, bit-identical to
 * the pre-scope implementation.
 *
 * States: I (no copy), V (valid clean copy), A (miss/atomic outstanding
 * in an MSHR), plus O (owned, written back) and M (modified) for LRCC.
 * VIPER events are exactly Table I of the paper. The reconstructed
 * transition tables are documented in DESIGN.md and printed by
 * bench/fig4_tables.
 */

#ifndef DRF_PROTO_GPU_L1_HH
#define DRF_PROTO_GPU_L1_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coverage/coverage.hh"
#include "sim/flat_map.hh"
#include "mem/cache_array.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "mem/port.hh"
#include "proto/fault.hh"
#include "proto/protocol_kind.hh"
#include "proto/transition_table.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "trace/recorder.hh"

namespace drf
{

/** Configuration of one GPU L1. */
struct GpuL1Config
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 16;
    unsigned lineBytes = 64;
    Tick hitLatency = 4;       ///< core-visible hit latency
    Tick recycleLatency = 10;  ///< stall retry interval
    ProtocolKind protocol = ProtocolKind::Viper;
};

/**
 * One per-CU L1 cache running the configured protocol's table.
 */
class GpuL1Cache : public SimObject, public MsgReceiver
{
  public:
    /** Coverage row indices (Table I order; WB is LRCC-only). */
    enum Event : std::size_t
    {
        EvLoad = 0,
        EvStoreThrough,
        EvAtomic,
        EvTccAck,
        EvTccAckWB,
        EvEvict,
        EvRepl,
        EvWB,      ///< LRCC release/acquire write-back of a dirty line
    };

    /** Coverage column indices (O and M are LRCC-only). */
    enum State : std::size_t
    {
        StI = 0,
        StV,
        StA,
        StO,
        StM,
    };

    using RespFunc = std::function<void(Packet &&)>;

    /** Per-dispatch context handed to table actions. */
    struct TransCtx
    {
        Packet *pkt = nullptr;        ///< triggering packet (may be null)
        Addr line = 0;                ///< aligned line address
        CacheEntry *entry = nullptr;  ///< entry for evict/replace rows
        Packet *pending = nullptr;    ///< matched pending write-through
    };

    /**
     * @param name     Instance name.
     * @param eq       Event queue.
     * @param cfg      Cache geometry, latencies and protocol.
     * @param xbar     Crossbar toward the L2.
     * @param endpoint This cache's crossbar endpoint id.
     * @param l2_ep    The L2's endpoint id.
     * @param fault    Optional fault injector (may be nullptr).
     */
    GpuL1Cache(std::string name, EventQueue &eq, const GpuL1Config &cfg,
               Crossbar &xbar, int endpoint, int l2_ep,
               FaultInjector *fault = nullptr);

    /** The shared (event, state) spec for VIPER GPU L1 instances. */
    static const TransitionSpec &spec();

    /** The (event, state) spec of the LRCC ownership variant. */
    static const TransitionSpec &lrccSpec();

    /** The spec for a protocol kind. */
    static const TransitionSpec &specFor(ProtocolKind kind);

    /** The transition table for a protocol kind (validated, static). */
    static const TransitionTable<GpuL1Cache> &tableFor(ProtocolKind kind);

    /** Bind the core-side response path. */
    void bindCoreResponse(RespFunc fn) { _respond = std::move(fn); }

    /**
     * Core-side request entry point. Accepts LoadReq, StoreReq and
     * AtomicReq packets; acquire/release flags carry the synchronization
     * semantics and pkt.scope bounds them.
     */
    void coreRequest(Packet pkt);

    /** L2-side message delivery (TccAck / TccAckWB). */
    void recvMsg(Packet &pkt) override;

    /** Write-throughs/write-backs issued but not yet acknowledged. */
    unsigned outstandingWriteThroughs() const { return _outstandingWT; }

    CoverageGrid &coverage() { return _coverage; }
    const CoverageGrid &coverage() const { return _coverage; }
    StatGroup &stats() { return _stats; }
    const CacheArray &array() const { return _array; }

    /** Record transition activations into @p trace (nullptr = off). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    friend class TransitionTable<GpuL1Cache>;

    /** CacheEntry::state values used by the LRCC tables. */
    enum LineOwnership : int
    {
        kLineClean = 0,  ///< V: valid, matches the L2
        kLineOwned = 1,  ///< O: written back, still readable locally
        kLineDirty = 2,  ///< M: locally modified, not yet written back
    };

    /** MSHR entry for an outstanding load, store-allocate or atomic. */
    struct Tbe
    {
        bool isAtomic = false;
        Packet corePkt;
    };

    /** Line state as seen by the transition table. */
    State lineState(Addr line_addr) const;

    /** Stable state of a resident line (V under VIPER; V/O/M LRCC). */
    State entryState(const CacheEntry &entry) const;

    /** Record one transition activation. */
    void transition(Event ev, State st);

    /** Retry a stalled core request later. */
    void recycle(Packet &pkt);

    void handleLoad(Packet &pkt);
    void handleStore(Packet &pkt);
    void handleAtomic(Packet &pkt);
    void handleTccAck(Packet &pkt);
    void handleTccAckWB(Packet &pkt);

    // Table actions (see the static table builders in gpu_l1.cc).
    void actStall(TransCtx &ctx);
    void actLoadHit(TransCtx &ctx);
    void actLoadMiss(TransCtx &ctx);
    void actStoreLocal(TransCtx &ctx);
    void actStoreThroughIssue(TransCtx &ctx);
    void actStoreLocalLrcc(TransCtx &ctx);
    void actStoreAllocMiss(TransCtx &ctx);
    void actAtomicInvalidate(TransCtx &ctx);
    void actAtomicForward(TransCtx &ctx);
    void actFillOrComplete(TransCtx &ctx);
    void actFillOrCompleteLrcc(TransCtx &ctx);
    void actCompleteWriteThrough(TransCtx &ctx);
    void actInvalidateEntry(TransCtx &ctx);
    void actReplaceVictim(TransCtx &ctx);
    void actWritebackEntry(TransCtx &ctx);
    void actWritebackToOwned(TransCtx &ctx);

    /** Flash-invalidate all valid lines (acquire semantics). */
    void flashInvalidate();

    /** LRCC: write every Modified line back (demoting it to Owned). */
    void writebackAllDirty();

    /** LRCC: issue a masked write-back of a dirty line. */
    void writebackEntry(CacheEntry &entry);

    /** Fill a line after TCC_Ack, replacing a victim if needed. */
    CacheEntry &fillLine(Addr line_addr, const LineData &data);

    /** Drain the release queue if no write-throughs remain. */
    void tryDrainReleaseQueue();

    GpuL1Config _cfg;
    Crossbar &_xbar;
    int _endpoint;
    int _l2Endpoint;
    FaultInjector *_fault;
    const TransitionTable<GpuL1Cache> *_table;

    CacheArray _array;
    FlatMap<Tbe> _tbes;             ///< keyed by line address
    FlatMap<Packet> _pendingWT;     ///< write-throughs in flight, by id
    std::vector<Packet> _releaseQueue; ///< releases awaiting WT drain
    std::size_t _releaseHead = 0;      ///< consumed prefix of the ring
    unsigned _outstandingWT = 0;
    PacketId _nextId = 1;

    RespFunc _respond;
    CoverageGrid _coverage;
    StatGroup _stats;
    TraceRecorder *_trace = nullptr;

    // Hot-path counters, resolved once: counter(name) is a string-keyed
    // map lookup and these fire per message.
    Counter *_cRecycles;
    Counter *_cLoadHits;
    Counter *_cLoadMisses;
    Counter *_cWriteThroughs;
    Counter *_cAtomics;
    Counter *_cFlashInvalidates;
    Counter *_cReplacements;
};

} // namespace drf

#endif // DRF_PROTO_GPU_L1_HH
