#include "proto/cpu_cache.hh"

#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
CpuCache::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "CPU-CorePair", {"I", "S", "M", "IS", "IM", "SM", "MI"},
            {"Load", "Store", "Repl", "Data", "PrbInv", "PrbDowngrade",
             "WBAck"});
        // Core requests: hits, misses, upgrade, and stalls on transients.
        for (auto st : {StI, StS, StM, StIS, StIM, StSM, StMI}) {
            spec.define(EvLoad, st);
            spec.define(EvStore, st);
        }
        // Replacement victimizes stable lines only.
        spec.define(EvRepl, StS);
        spec.define(EvRepl, StM);
        // Grants land in the requesting transients.
        spec.define(EvData, StIS);
        spec.define(EvData, StIM);
        spec.define(EvData, StSM);
        // Probes: stale-sharer probes can find the line in I/IS/IM; a
        // downgrade targets the precise owner (M, or MI when it crosses a
        // writeback).
        for (auto st : {StI, StS, StM, StIS, StIM, StSM, StMI})
            spec.define(EvPrbInv, st);
        spec.define(EvPrbDowngrade, StM);
        spec.define(EvPrbDowngrade, StMI);
        // Writeback completion (possibly a stale ack after a probe).
        spec.define(EvWBAck, StMI);
        return spec;
    }();
    return s;
}

const TransitionTable<CpuCache> &
CpuCache::table()
{
    using T = TransitionTable<CpuCache>;
    using CC = CpuCache;
    static const T t = [] {
        T t(spec());
        t.on(EvLoad, StI, {&CC::actLoadMiss}, StIS)
            .on(EvLoad, StS, {&CC::actLoadHit}, StS)
            .on(EvLoad, StM, {&CC::actLoadHit}, StM)
            .on(EvLoad, StIS, {&CC::actRecycle}, StIS)
            .on(EvLoad, StIM, {&CC::actRecycle}, StIM)
            .on(EvLoad, StSM, {&CC::actRecycle}, StSM)
            .on(EvLoad, StMI, {&CC::actRecycle}, StMI)
            .on(EvStore, StI, {&CC::actStoreMiss}, StIM)
            .on(EvStore, StS, {&CC::actStoreUpgrade}, StSM)
            .on(EvStore, StM, {&CC::actStoreHit}, StM)
            .on(EvStore, StIS, {&CC::actRecycle}, StIS)
            .on(EvStore, StIM, {&CC::actRecycle}, StIM)
            .on(EvStore, StSM, {&CC::actRecycle}, StSM)
            .on(EvStore, StMI, {&CC::actRecycle}, StMI)
            .on(EvRepl, StS, {&CC::actReplaceClean}, StI)
            .on(EvRepl, StM, {&CC::actReplaceDirty}, StMI)
            .on(EvData, StIS, {&CC::actDataFillAlloc}, StS)
            .on(EvData, StIM, {&CC::actDataFillAlloc}, StM)
            .on(EvData, StSM, {&CC::actDataFillUpgrade}, StM)
            .on(EvPrbInv, StI, {&CC::actProbeSend}, StI)
            .on(EvPrbInv, StS,
                {&CC::actProbeSharer, &CC::actProbeSend}, StI)
            .on(EvPrbInv, StM,
                {&CC::actProbeOwner, &CC::actProbeSend}, StI)
            .on(EvPrbInv, StIS, {&CC::actProbeSend}, StIS)
            .on(EvPrbInv, StIM, {&CC::actProbeSend}, StIM)
            .on(EvPrbInv, StSM,
                {&CC::actProbeUpgrade, &CC::actProbeSend}, StIM)
            .on(EvPrbInv, StMI,
                {&CC::actProbeWriteback, &CC::actProbeSend}, StMI)
            .on(EvPrbDowngrade, StM,
                {&CC::actProbeOwner, &CC::actProbeSend}, StS)
            .on(EvPrbDowngrade, StMI,
                {&CC::actProbeWriteback, &CC::actProbeSend}, StMI)
            .on(EvWBAck, StMI, {&CC::actWriteBackAck}, StI)
            .verifyComplete();
        return t;
    }();
    return t;
}

CpuCache::CpuCache(std::string name, EventQueue &eq,
                   const CpuCacheConfig &cfg, Crossbar &xbar, int endpoint,
                   int dir_ep)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _dirEndpoint(dir_ep),
      _array(cfg.sizeBytes, cfg.assoc, cfg.lineBytes), _coverage(spec()),
      _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cLoadHits(&_stats.counter("load_hits")),
      _cLoadMisses(&_stats.counter("load_misses")),
      _cStoreHits(&_stats.counter("store_hits")),
      _cUpgrades(&_stats.counter("upgrades")),
      _cStoreMisses(&_stats.counter("store_misses")),
      _cDirtyReplacements(&_stats.counter("dirty_replacements")),
      _cCleanReplacements(&_stats.counter("clean_replacements")),
      _cFillRetries(&_stats.counter("fill_retries")),
      _cProbes(&_stats.counter("probes"))
{
    _tbes.reserve(64);
    xbar.attach(endpoint, *this);
}

CpuCache::State
CpuCache::lineState(Addr line_addr) const
{
    const Tbe *tbe = _tbes.find(line_addr);
    if (tbe != nullptr)
        return tbe->transient;
    const CacheEntry *entry = _array.findEntry(line_addr);
    if (entry == nullptr)
        return StI;
    return entry->state == LineM ? StM : StS;
}

void
CpuCache::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      coreRequest(std::move(pkt));
                  });
}

void
CpuCache::performLoad(const CacheEntry &entry, const Packet &pkt)
{
    Packet resp = pkt;
    resp.type = MsgType::LoadResp;
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    resp.setData(entry.data.data() + off, pkt.size);
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
CpuCache::performStore(CacheEntry &entry, const Packet &pkt)
{
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    assert(pkt.dataLen == pkt.size);
    for (unsigned i = 0; i < pkt.size; ++i) {
        entry.data[off + i] = pkt.data[i];
        entry.dirty |= maskBit(off + i);
    }
    entry.state = LineM;
    Packet resp = pkt;
    resp.type = MsgType::StoreAck;
    resp.clearData();
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
CpuCache::coreRequest(Packet pkt)
{
    assert(_respond && "core response path not bound");
    switch (pkt.type) {
      case MsgType::LoadReq:
        handleLoad(pkt);
        break;
      case MsgType::StoreReq:
        handleStore(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected core request ") +
                                msgTypeName(pkt.type));
    }
}

void
CpuCache::handleLoad(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvLoad, lineState(ctx.line), ctx);
}

void
CpuCache::handleStore(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvStore, lineState(ctx.line), ctx);
}

void
CpuCache::actRecycle(TransCtx &ctx)
{
    recycle(*ctx.pkt);
}

void
CpuCache::actLoadHit(TransCtx &ctx)
{
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    _cLoadHits->inc();
    performLoad(*entry, *ctx.pkt);
}

void
CpuCache::actLoadMiss(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    _cLoadMisses->inc();
    Tbe tbe;
    tbe.transient = StIS;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));
    Packet req;
    req.type = MsgType::Gets;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(req));
}

void
CpuCache::actStoreHit(TransCtx &ctx)
{
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    _cStoreHits->inc();
    performStore(*entry, *ctx.pkt);
}

void
CpuCache::actStoreUpgrade(TransCtx &ctx)
{
    // Upgrade: keep the S copy, request exclusivity.
    Packet &pkt = *ctx.pkt;
    _cUpgrades->inc();
    Tbe tbe;
    tbe.transient = StSM;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));
    Packet req;
    req.type = MsgType::Getx;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(req));
}

void
CpuCache::actStoreMiss(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    _cStoreMisses->inc();
    Tbe tbe;
    tbe.transient = StIM;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));
    Packet req;
    req.type = MsgType::Getx;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(req));
}

bool
CpuCache::makeRoom(Addr line_addr)
{
    if (_array.findEntry(line_addr) != nullptr ||
        _array.hasFreeWay(line_addr)) {
        return true;
    }
    // Pick the LRU way whose line has no MSHR (an SM upgrade keeps its S
    // copy in the array and must not be victimized underneath it).
    CacheEntry *victim_ptr = nullptr;
    CacheEntry *ways = _array.setWays(line_addr);
    for (unsigned w = 0; w < _array.assoc(); ++w) {
        CacheEntry *way = &ways[w];
        if (!way->valid || _tbes.contains(way->lineAddr))
            continue;
        if (victim_ptr == nullptr || way->lastUsed < victim_ptr->lastUsed)
            victim_ptr = way;
    }
    if (victim_ptr == nullptr)
        return false;
    CacheEntry &victim = *victim_ptr;
    TransCtx ctx;
    ctx.entry = &victim;
    ctx.line = victim.lineAddr;
    table().fire(*this, EvRepl, victim.state == LineM ? StM : StS, ctx);
    return true;
}

void
CpuCache::actReplaceDirty(TransCtx &ctx)
{
    CacheEntry &victim = *ctx.entry;
    _cDirtyReplacements->inc();
    Tbe tbe;
    tbe.transient = StMI;
    tbe.wbData = victim.data;
    Addr victim_line = victim.lineAddr;
    _tbes.emplace(victim_line, std::move(tbe));
    Packet wb;
    wb.type = MsgType::Putx;
    wb.addr = victim_line;
    wb.id = _nextId++;
    wb.setLine(victim.data);
    wb.issueTick = curTick();
    _xbar.route(_endpoint, _dirEndpoint, std::move(wb));
    _array.invalidate(victim);
}

void
CpuCache::actReplaceClean(TransCtx &ctx)
{
    // Clean copies are dropped silently; the directory's sharer list
    // goes stale, which is what makes PrbInv-in-I reachable.
    _cCleanReplacements->inc();
    _array.invalidate(*ctx.entry);
}

void
CpuCache::handleData(Packet &pkt)
{
    Addr line = pkt.addr;
    State st = lineState(line);

    if ((st == StIS || st == StIM) &&
        _array.findEntry(line) == nullptr && !_array.hasFreeWay(line)) {
        // Every way of the set is pinned by an MSHR; retry the fill once
        // one of them resolves. Checked before the transition is
        // recorded, so a retried fill does not double-count coverage.
        bool can_fill = false;
        const CacheEntry *ways = _array.setWays(line);
        for (unsigned w = 0; w < _array.assoc(); ++w) {
            if (ways[w].valid && !_tbes.contains(ways[w].lineAddr)) {
                can_fill = true;
                break;
            }
        }
        if (!can_fill) {
            _cFillRetries->inc();
            scheduleAfter(_cfg.recycleLatency,
                          [this, pkt]() mutable {
                              recvMsg(pkt);
                          });
            return;
        }
    }

    // With no matching request the line is outside IS/IM/SM, where no
    // Data row is defined: the table raises the protocol error.
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = line;
    table().fireWith(*this, EvData, st, ctx,
                     [&pkt] { return pkt.describe(); });
}

void
CpuCache::completeFill(CacheEntry &entry, const Tbe &tbe,
                       const Packet &pkt)
{
    if (tbe.corePkt.type == MsgType::LoadReq) {
        assert(pkt.grant >= 1);
        entry.state = LineS;
        performLoad(entry, tbe.corePkt);
    } else {
        assert(pkt.grant == 2 && "store grant must be exclusive");
        entry.state = LineM;
        performStore(entry, tbe.corePkt);
    }
}

void
CpuCache::actDataFillAlloc(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Addr line = ctx.line;
    Tbe tbe = std::move(*_tbes.find(line));
    _tbes.erase(line);

    [[maybe_unused]] bool ok = makeRoom(line);
    assert(ok && "fill room was verified above");
    CacheEntry &entry = _array.allocate(line);
    entry.data = pkt.data;
    _array.touch(entry);
    completeFill(entry, tbe, pkt);
}

void
CpuCache::actDataFillUpgrade(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Addr line = ctx.line;
    Tbe tbe = std::move(*_tbes.find(line));
    _tbes.erase(line);

    // We kept our S copy; refresh it with the granted data (another
    // core may have modified the line while our upgrade waited).
    CacheEntry *entry = _array.findEntry(line);
    assert(entry != nullptr);
    entry->data = pkt.data;
    _array.touch(*entry);
    completeFill(*entry, tbe, pkt);
}

void
CpuCache::handleProbe(Packet &pkt, bool downgrade)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    ctx.downgrade = downgrade;
    ctx.ack.type = MsgType::CpuInvAck;
    ctx.ack.addr = ctx.line;
    ctx.ack.id = pkt.id;
    table().fire(*this, downgrade ? EvPrbDowngrade : EvPrbInv,
                 lineState(ctx.line), ctx);
}

void
CpuCache::actProbeOwner(TransCtx &ctx)
{
    CacheEntry *entry = _array.findEntry(ctx.line);
    ctx.ack.setLine(entry->data);
    if (ctx.downgrade) {
        entry->state = LineS;
        entry->clearDirty();
    } else {
        _array.invalidate(*entry);
    }
}

void
CpuCache::actProbeSharer(TransCtx &ctx)
{
    assert(!ctx.downgrade && "downgrade probe must target the owner");
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.invalidate(*entry);
}

void
CpuCache::actProbeWriteback(TransCtx &ctx)
{
    // The probe crossed our writeback; hand over the data now. The
    // in-flight Putx will be acknowledged as stale.
    ctx.ack.setLine(_tbes.find(ctx.line)->wbData);
}

void
CpuCache::actProbeUpgrade(TransCtx &ctx)
{
    assert(!ctx.downgrade);
    // Our S copy dies; the pending upgrade becomes a plain store
    // miss (the directory will grant M with fresh data).
    CacheEntry *entry = _array.findEntry(ctx.line);
    if (entry != nullptr)
        _array.invalidate(*entry);
    _tbes.find(ctx.line)->transient = StIM;
}

void
CpuCache::actProbeSend(TransCtx &ctx)
{
    // Stale-sharer probes (I/IS/IM) have nothing to invalidate; in every
    // state the probe is acked.
    _cProbes->inc();
    _xbar.route(_endpoint, _dirEndpoint, std::move(ctx.ack));
}

void
CpuCache::handleWBAck(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    // With no writeback in flight the line is outside MI, where no WBAck
    // row is defined: the table raises the protocol error.
    table().fireWith(*this, EvWBAck, lineState(ctx.line), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
CpuCache::actWriteBackAck(TransCtx &ctx)
{
    _tbes.erase(ctx.line);
}

void
CpuCache::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::CpuData:
        handleData(pkt);
        break;
      case MsgType::CpuPrbInv:
        handleProbe(pkt, false);
        break;
      case MsgType::CpuPrbDowngrade:
        handleProbe(pkt, true);
        break;
      case MsgType::CpuWBAck:
        handleWBAck(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
