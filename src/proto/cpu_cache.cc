#include "proto/cpu_cache.hh"

#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
CpuCache::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "CPU-CorePair", {"I", "S", "M", "IS", "IM", "SM", "MI"},
            {"Load", "Store", "Repl", "Data", "PrbInv", "PrbDowngrade",
             "WBAck"});
        // Core requests: hits, misses, upgrade, and stalls on transients.
        for (auto st : {StI, StS, StM, StIS, StIM, StSM, StMI}) {
            spec.define(EvLoad, st);
            spec.define(EvStore, st);
        }
        // Replacement victimizes stable lines only.
        spec.define(EvRepl, StS);
        spec.define(EvRepl, StM);
        // Grants land in the requesting transients.
        spec.define(EvData, StIS);
        spec.define(EvData, StIM);
        spec.define(EvData, StSM);
        // Probes: stale-sharer probes can find the line in I/IS/IM; a
        // downgrade targets the precise owner (M, or MI when it crosses a
        // writeback).
        for (auto st : {StI, StS, StM, StIS, StIM, StSM, StMI})
            spec.define(EvPrbInv, st);
        spec.define(EvPrbDowngrade, StM);
        spec.define(EvPrbDowngrade, StMI);
        // Writeback completion (possibly a stale ack after a probe).
        spec.define(EvWBAck, StMI);
        return spec;
    }();
    return s;
}

CpuCache::CpuCache(std::string name, EventQueue &eq,
                   const CpuCacheConfig &cfg, Crossbar &xbar, int endpoint,
                   int dir_ep)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _dirEndpoint(dir_ep),
      _array(cfg.sizeBytes, cfg.assoc, cfg.lineBytes), _coverage(spec()),
      _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cLoadHits(&_stats.counter("load_hits")),
      _cLoadMisses(&_stats.counter("load_misses")),
      _cStoreHits(&_stats.counter("store_hits")),
      _cUpgrades(&_stats.counter("upgrades")),
      _cStoreMisses(&_stats.counter("store_misses")),
      _cDirtyReplacements(&_stats.counter("dirty_replacements")),
      _cCleanReplacements(&_stats.counter("clean_replacements")),
      _cFillRetries(&_stats.counter("fill_retries")),
      _cProbes(&_stats.counter("probes"))
{
    _tbes.reserve(64);
    xbar.attach(endpoint, *this);
}

CpuCache::State
CpuCache::lineState(Addr line_addr) const
{
    const Tbe *tbe = _tbes.find(line_addr);
    if (tbe != nullptr)
        return tbe->transient;
    const CacheEntry *entry = _array.findEntry(line_addr);
    if (entry == nullptr)
        return StI;
    return entry->state == LineM ? StM : StS;
}

void
CpuCache::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      coreRequest(std::move(pkt));
                  });
}

void
CpuCache::performLoad(const CacheEntry &entry, const Packet &pkt)
{
    Packet resp = pkt;
    resp.type = MsgType::LoadResp;
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    resp.setData(entry.data.data() + off, pkt.size);
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
CpuCache::performStore(CacheEntry &entry, const Packet &pkt)
{
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    assert(pkt.dataLen == pkt.size);
    for (unsigned i = 0; i < pkt.size; ++i) {
        entry.data[off + i] = pkt.data[i];
        entry.dirty |= maskBit(off + i);
    }
    entry.state = LineM;
    Packet resp = pkt;
    resp.type = MsgType::StoreAck;
    resp.clearData();
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
CpuCache::coreRequest(Packet pkt)
{
    assert(_respond && "core response path not bound");
    switch (pkt.type) {
      case MsgType::LoadReq:
        handleLoad(pkt);
        break;
      case MsgType::StoreReq:
        handleStore(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected core request ") +
                                msgTypeName(pkt.type));
    }
}

void
CpuCache::handleLoad(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    State st = lineState(line);
    transition(EvLoad, st);

    switch (st) {
      case StS:
      case StM: {
        CacheEntry *entry = _array.findEntry(line);
        _array.touch(*entry);
        _cLoadHits->inc();
        performLoad(*entry, pkt);
        return;
      }
      case StI: {
        _cLoadMisses->inc();
        Tbe tbe;
        tbe.transient = StIS;
        tbe.corePkt = pkt;
        _tbes.emplace(line, std::move(tbe));
        Packet req;
        req.type = MsgType::Gets;
        req.addr = line;
        req.id = _nextId++;
        req.requestor = pkt.requestor;
        req.issueTick = curTick();
        _xbar.route(_endpoint, _dirEndpoint, std::move(req));
        return;
      }
      default:
        recycle(pkt);
        return;
    }
}

void
CpuCache::handleStore(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    State st = lineState(line);
    transition(EvStore, st);

    switch (st) {
      case StM: {
        CacheEntry *entry = _array.findEntry(line);
        _array.touch(*entry);
        _cStoreHits->inc();
        performStore(*entry, pkt);
        return;
      }
      case StS: {
        // Upgrade: keep the S copy, request exclusivity.
        _cUpgrades->inc();
        Tbe tbe;
        tbe.transient = StSM;
        tbe.corePkt = pkt;
        _tbes.emplace(line, std::move(tbe));
        Packet req;
        req.type = MsgType::Getx;
        req.addr = line;
        req.id = _nextId++;
        req.requestor = pkt.requestor;
        req.issueTick = curTick();
        _xbar.route(_endpoint, _dirEndpoint, std::move(req));
        return;
      }
      case StI: {
        _cStoreMisses->inc();
        Tbe tbe;
        tbe.transient = StIM;
        tbe.corePkt = pkt;
        _tbes.emplace(line, std::move(tbe));
        Packet req;
        req.type = MsgType::Getx;
        req.addr = line;
        req.id = _nextId++;
        req.requestor = pkt.requestor;
        req.issueTick = curTick();
        _xbar.route(_endpoint, _dirEndpoint, std::move(req));
        return;
      }
      default:
        recycle(pkt);
        return;
    }
}

bool
CpuCache::makeRoom(Addr line_addr)
{
    if (_array.findEntry(line_addr) != nullptr ||
        _array.hasFreeWay(line_addr)) {
        return true;
    }
    // Pick the LRU way whose line has no MSHR (an SM upgrade keeps its S
    // copy in the array and must not be victimized underneath it).
    CacheEntry *victim_ptr = nullptr;
    CacheEntry *ways = _array.setWays(line_addr);
    for (unsigned w = 0; w < _array.assoc(); ++w) {
        CacheEntry *way = &ways[w];
        if (!way->valid || _tbes.contains(way->lineAddr))
            continue;
        if (victim_ptr == nullptr || way->lastUsed < victim_ptr->lastUsed)
            victim_ptr = way;
    }
    if (victim_ptr == nullptr)
        return false;
    CacheEntry &victim = *victim_ptr;
    if (victim.state == LineM) {
        transition(EvRepl, StM);
        _cDirtyReplacements->inc();
        Tbe tbe;
        tbe.transient = StMI;
        tbe.wbData = victim.data;
        Addr victim_line = victim.lineAddr;
        _tbes.emplace(victim_line, std::move(tbe));
        Packet wb;
        wb.type = MsgType::Putx;
        wb.addr = victim_line;
        wb.id = _nextId++;
        wb.setLine(victim.data);
        wb.issueTick = curTick();
        _xbar.route(_endpoint, _dirEndpoint, std::move(wb));
    } else {
        // Clean copies are dropped silently; the directory's sharer list
        // goes stale, which is what makes PrbInv-in-I reachable.
        transition(EvRepl, StS);
        _cCleanReplacements->inc();
    }
    _array.invalidate(victim);
    return true;
}

void
CpuCache::handleData(Packet &pkt)
{
    Addr line = pkt.addr;
    Tbe *found = _tbes.find(line);
    if (found == nullptr ||
        (found->transient != StIS && found->transient != StIM &&
         found->transient != StSM)) {
        throw ProtocolError(name(), curTick(),
                            "CpuData with no matching request: " +
                                pkt.describe());
    }
    State st = found->transient;

    if (st != StSM && _array.findEntry(line) == nullptr &&
        !_array.hasFreeWay(line)) {
        // Every way of the set is pinned by an MSHR; retry the fill once
        // one of them resolves.
        bool can_fill = false;
        const CacheEntry *ways = _array.setWays(line);
        for (unsigned w = 0; w < _array.assoc(); ++w) {
            if (ways[w].valid && !_tbes.contains(ways[w].lineAddr)) {
                can_fill = true;
                break;
            }
        }
        if (!can_fill) {
            _cFillRetries->inc();
            scheduleAfter(_cfg.recycleLatency,
                          [this, pkt]() mutable {
                              recvMsg(pkt);
                          });
            return;
        }
    }

    transition(EvData, st);

    Tbe tbe = std::move(*found);
    _tbes.erase(line);

    CacheEntry *entry = _array.findEntry(line);
    if (st == StSM) {
        // We kept our S copy; refresh it with the granted data (another
        // core may have modified the line while our upgrade waited).
        assert(entry != nullptr);
        entry->data = pkt.data;
    } else {
        [[maybe_unused]] bool ok = makeRoom(line);
        assert(ok && "fill room was verified above");
        entry = &_array.allocate(line);
        entry->data = pkt.data;
    }
    _array.touch(*entry);

    if (tbe.corePkt.type == MsgType::LoadReq) {
        assert(pkt.grant >= 1);
        entry->state = LineS;
        performLoad(*entry, tbe.corePkt);
    } else {
        assert(pkt.grant == 2 && "store grant must be exclusive");
        entry->state = LineM;
        performStore(*entry, tbe.corePkt);
    }
}

void
CpuCache::handleProbe(Packet &pkt, bool downgrade)
{
    Addr line = pkt.addr;
    State st = lineState(line);
    transition(downgrade ? EvPrbDowngrade : EvPrbInv, st);
    _cProbes->inc();

    Packet ack;
    ack.type = MsgType::CpuInvAck;
    ack.addr = line;
    ack.id = pkt.id;

    switch (st) {
      case StM: {
        CacheEntry *entry = _array.findEntry(line);
        ack.setLine(entry->data);
        if (downgrade) {
            entry->state = LineS;
            entry->clearDirty();
        } else {
            _array.invalidate(*entry);
        }
        break;
      }
      case StS: {
        assert(!downgrade && "downgrade probe must target the owner");
        CacheEntry *entry = _array.findEntry(line);
        _array.invalidate(*entry);
        break;
      }
      case StMI: {
        // The probe crossed our writeback; hand over the data now. The
        // in-flight Putx will be acknowledged as stale.
        ack.setLine(_tbes.find(line)->wbData);
        break;
      }
      case StSM: {
        assert(!downgrade);
        // Our S copy dies; the pending upgrade becomes a plain store
        // miss (the directory will grant M with fresh data).
        CacheEntry *entry = _array.findEntry(line);
        if (entry != nullptr)
            _array.invalidate(*entry);
        _tbes.find(line)->transient = StIM;
        break;
      }
      case StI:
      case StIS:
      case StIM:
        // Stale-sharer probe: nothing to invalidate.
        break;
      default:
        break;
    }

    _xbar.route(_endpoint, _dirEndpoint, std::move(ack));
}

void
CpuCache::handleWBAck(Packet &pkt)
{
    Addr line = pkt.addr;
    const Tbe *found = _tbes.find(line);
    if (found == nullptr || found->transient != StMI) {
        throw ProtocolError(name(), curTick(),
                            "CpuWBAck with no writeback in flight: " +
                                pkt.describe());
    }
    transition(EvWBAck, StMI);
    _tbes.erase(line);
}

void
CpuCache::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::CpuData:
        handleData(pkt);
        break;
      case MsgType::CpuPrbInv:
        handleProbe(pkt, false);
        break;
      case MsgType::CpuPrbDowngrade:
        handleProbe(pkt, true);
        break;
      case MsgType::CpuWBAck:
        handleWBAck(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
