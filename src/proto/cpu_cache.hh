/**
 * @file
 * CPU core-pair cache controller (MOESI_AMD_Base-style, reduced to MSI
 * with the standard transient states).
 *
 * One instance serves a pair of CPU cores, like gem5's CorePair. It is a
 * write-back, write-allocate cache kept coherent by the APU directory:
 * Gets fetches a shared copy, Getx an exclusive one, Putx writes dirty
 * data back, and the directory probes (PrbInv / PrbDowngrade) pull data
 * or permissions away. Transients: IS (load miss), IM (store miss), SM
 * (upgrade), MI (writeback in flight).
 *
 * The reduction from MOESI to MSI keeps memory current whenever the
 * directory is in CS, which removes the owned/exclusive bookkeeping
 * without losing any of the probe/writeback races the CPU tester needs
 * to stress (Section IV.C).
 */

#ifndef DRF_PROTO_CPU_CACHE_HH
#define DRF_PROTO_CPU_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "coverage/coverage.hh"
#include "mem/cache_array.hh"
#include "sim/flat_map.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "proto/transition_table.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "trace/recorder.hh"

namespace drf
{

/** Configuration of one CPU core-pair cache. */
struct CpuCacheConfig
{
    std::uint64_t sizeBytes = 256 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
    Tick hitLatency = 2;
    Tick recycleLatency = 10;
};

/**
 * One CPU core-pair cache.
 */
class CpuCache : public SimObject, public MsgReceiver
{
  public:
    /** Coverage row indices. */
    enum Event : std::size_t
    {
        EvLoad = 0,
        EvStore,
        EvRepl,
        EvData,
        EvPrbInv,
        EvPrbDowngrade,
        EvWBAck,
    };

    /** Coverage column indices. */
    enum State : std::size_t
    {
        StI = 0,
        StS,
        StM,
        StIS,
        StIM,
        StSM,
        StMI,
    };

    using RespFunc = std::function<void(Packet &&)>;

    /** Per-dispatch context handed to table actions. */
    struct TransCtx
    {
        Packet *pkt = nullptr;       ///< triggering packet
        Addr line = 0;               ///< aligned line address
        CacheEntry *entry = nullptr; ///< victim entry for Repl rows
        bool downgrade = false;      ///< probe flavor (PrbDowngrade)
        Packet ack{};                ///< probe ack under construction
    };

    CpuCache(std::string name, EventQueue &eq, const CpuCacheConfig &cfg,
             Crossbar &xbar, int endpoint, int dir_ep);

    static const TransitionSpec &spec();

    /** The validated static transition table (shared by instances). */
    static const TransitionTable<CpuCache> &table();

    void bindCoreResponse(RespFunc fn) { _respond = std::move(fn); }

    /** Core-side entry point: LoadReq / StoreReq. */
    void coreRequest(Packet pkt);

    /** Directory-side delivery (CpuData, probes, CpuWBAck). */
    void recvMsg(Packet &pkt) override;

    CoverageGrid &coverage() { return _coverage; }
    const CoverageGrid &coverage() const { return _coverage; }
    StatGroup &stats() { return _stats; }
    const CacheArray &array() const { return _array; }

    /** Record transition activations into @p trace (nullptr = off). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    friend class TransitionTable<CpuCache>;

    /** Entry.state values for stable lines in the array. */
    enum LineStable : int
    {
        LineS = 1,
        LineM = 2,
    };

    /** MSHR for one line in a transient state. */
    struct Tbe
    {
        State transient;   ///< IS, IM, SM or MI
        Packet corePkt;    ///< pending core request (IS/IM/SM)
        LineData wbData{}; ///< dirty line (MI)
    };

    State lineState(Addr line_addr) const;
    void
    transition(Event ev, State st)
    {
        recordTransition(_trace, curTick(), _endpoint, ev, st);
        _coverage.hit(ev, st);
    }
    void recycle(Packet &pkt);

    void handleLoad(Packet &pkt);
    void handleStore(Packet &pkt);
    void handleData(Packet &pkt);
    void handleProbe(Packet &pkt, bool downgrade);
    void handleWBAck(Packet &pkt);

    // Table actions (see the static table builder in cpu_cache.cc).
    void actRecycle(TransCtx &ctx);
    void actLoadHit(TransCtx &ctx);
    void actLoadMiss(TransCtx &ctx);
    void actStoreHit(TransCtx &ctx);
    void actStoreUpgrade(TransCtx &ctx);
    void actStoreMiss(TransCtx &ctx);
    void actReplaceDirty(TransCtx &ctx);
    void actReplaceClean(TransCtx &ctx);
    void actDataFillAlloc(TransCtx &ctx);
    void actDataFillUpgrade(TransCtx &ctx);
    void actProbeOwner(TransCtx &ctx);
    void actProbeSharer(TransCtx &ctx);
    void actProbeWriteback(TransCtx &ctx);
    void actProbeUpgrade(TransCtx &ctx);
    void actProbeSend(TransCtx &ctx);
    void actWriteBackAck(TransCtx &ctx);

    /** Complete a fill: hand the granted line to the waiting core op. */
    void completeFill(CacheEntry &entry, const Tbe &tbe, const Packet &pkt);

    /**
     * Make room for a fill, writing back a dirty victim if needed.
     *
     * @return false if every way is pinned by an MSHR (caller retries).
     */
    bool makeRoom(Addr line_addr);

    /** Apply a store to an entry and answer the core. */
    void performStore(CacheEntry &entry, const Packet &pkt);

    /** Answer a load from an entry. */
    void performLoad(const CacheEntry &entry, const Packet &pkt);

    CpuCacheConfig _cfg;
    Crossbar &_xbar;
    int _endpoint;
    int _dirEndpoint;

    CacheArray _array;
    FlatMap<Tbe> _tbes; ///< keyed by line address
    PacketId _nextId = 1;

    RespFunc _respond;
    CoverageGrid _coverage;
    StatGroup _stats;
    TraceRecorder *_trace = nullptr;

    // Hot-path counters, resolved once (counter(name) is a string-keyed
    // map lookup).
    Counter *_cRecycles;
    Counter *_cLoadHits;
    Counter *_cLoadMisses;
    Counter *_cStoreHits;
    Counter *_cUpgrades;
    Counter *_cStoreMisses;
    Counter *_cDirtyReplacements;
    Counter *_cCleanReplacements;
    Counter *_cFillRetries;
    Counter *_cProbes;
};

} // namespace drf

#endif // DRF_PROTO_CPU_CACHE_HH
