#include "proto/fault.hh"

namespace drf
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "None";
      case FaultKind::LostWriteThrough: return "LostWriteThrough";
      case FaultKind::NonAtomicRmw: return "NonAtomicRmw";
      case FaultKind::DropAcquireInvalidate:
        return "DropAcquireInvalidate";
      case FaultKind::DropGpuProbe: return "DropGpuProbe";
      case FaultKind::DropWriteAck: return "DropWriteAck";
    }
    return "?";
}

std::optional<FaultKind>
parseFaultKind(const std::string &name)
{
    for (std::uint32_t i = 0; i < faultKindCount; ++i) {
        FaultKind kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    return std::nullopt;
}

} // namespace drf
