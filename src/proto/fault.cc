#include "proto/fault.hh"

namespace drf
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "None";
      case FaultKind::LostWriteThrough: return "LostWriteThrough";
      case FaultKind::NonAtomicRmw: return "NonAtomicRmw";
      case FaultKind::DropAcquireInvalidate:
        return "DropAcquireInvalidate";
      case FaultKind::DropGpuProbe: return "DropGpuProbe";
      case FaultKind::DropWriteAck: return "DropWriteAck";
    }
    return "?";
}

} // namespace drf
