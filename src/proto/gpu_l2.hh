/**
 * @file
 * VIPER GPU L2 cache controller ("TCC").
 *
 * Shared by all CUs. Read misses fetch from the APU directory; GPU
 * write-throughs are merged (per-byte masks) and forwarded toward memory;
 * atomics are performed below the L2 at the directory, with AtomicD /
 * AtomicND completion acks. The directory may probe-invalidate the L2
 * when the CPU gains exclusive ownership (PrbInv) — the transitions that
 * are unreachable when only the GPU tester runs.
 *
 * States: I, V, IV (refill outstanding), A (atomic outstanding). Events
 * are exactly Table II of the paper.
 */

#ifndef DRF_PROTO_GPU_L2_HH
#define DRF_PROTO_GPU_L2_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "coverage/coverage.hh"
#include "sim/flat_map.hh"
#include "mem/cache_array.hh"
#include "mem/msg.hh"
#include "mem/network.hh"
#include "proto/fault.hh"
#include "proto/transition_table.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "trace/recorder.hh"

namespace drf
{

/** Configuration of the GPU L2. */
struct GpuL2Config
{
    std::uint64_t sizeBytes = 256 * 1024;
    unsigned assoc = 16;
    unsigned lineBytes = 64;
    Tick recycleLatency = 10;
};

/**
 * The shared GPU L2.
 */
class GpuL2Cache : public SimObject, public MsgReceiver
{
  public:
    /** Coverage row indices (Table II order). */
    enum Event : std::size_t
    {
        EvRdBlk = 0,
        EvWrVicBlk,
        EvAtomic,
        EvAtomicD,
        EvAtomicND,
        EvData,
        EvL2Repl,
        EvPrbInv,
        EvWBAck,
    };

    /** Coverage column indices. */
    enum State : std::size_t
    {
        StI = 0,
        StV,
        StIV,
        StA,
    };

    /**
     * @param name     Instance name.
     * @param eq       Event queue.
     * @param cfg      Cache geometry.
     * @param xbar     Crossbar (toward L1s and the directory).
     * @param endpoint This cache's endpoint id.
     * @param dir_ep   The directory's endpoint id.
     * @param fault    Optional fault injector.
     */
    /** Per-dispatch context handed to table actions. */
    struct TransCtx
    {
        Packet *pkt = nullptr;       ///< triggering packet
        Addr line = 0;               ///< aligned line address
        CacheEntry *entry = nullptr; ///< entry for replace rows
        void *pending = nullptr;     ///< matched PendingWB (WBAck rows)
    };

    GpuL2Cache(std::string name, EventQueue &eq, const GpuL2Config &cfg,
               Crossbar &xbar, int endpoint, int dir_ep,
               FaultInjector *fault = nullptr);

    static const TransitionSpec &spec();

    /** The validated static transition table (shared by instances). */
    static const TransitionTable<GpuL2Cache> &table();

    void recvMsg(Packet &pkt) override;

    CoverageGrid &coverage() { return _coverage; }
    const CoverageGrid &coverage() const { return _coverage; }
    StatGroup &stats() { return _stats; }
    const CacheArray &array() const { return _array; }

    /** Record transition activations into @p trace (nullptr = off). */
    void setTrace(TraceRecorder *trace) { _trace = trace; }

  private:
    friend class TransitionTable<GpuL2Cache>;

    /**
     * Refill MSHR: requesters waiting for one line. Pooled — a recycled
     * entry keeps its waiters capacity, so steady-state misses allocate
     * nothing.
     */
    struct FetchTbe
    {
        std::vector<Packet> waiters; ///< original RdBlk packets
    };

    /** Atomic MSHR: a queue of atomics serialized at this line. Pooled. */
    struct AtomicTbe
    {
        std::vector<Packet> queue; ///< original GpuAtomic packets
        std::size_t head = 0;      ///< consumed prefix of the ring

        bool queueEmpty() const { return head == queue.size(); }
        Packet &queueFront() { return queue[head]; }

        void
        popQueueFront()
        {
            if (++head == queue.size()) {
                queue.clear();
                head = 0;
            }
        }
    };

    /** Pending write-through forwarded toward memory. */
    struct PendingWB
    {
        Packet original; ///< the L1's WrThrough packet
    };

    State lineState(Addr line_addr) const;
    void
    transition(Event ev, State st)
    {
        recordTransition(_trace, curTick(), _endpoint, ev, st);
        _coverage.hit(ev, st);
    }
    void recycle(Packet &pkt);

    void handleRdBlk(Packet &pkt);
    void handleWrThrough(Packet &pkt);
    void handleAtomic(Packet &pkt);
    void handleAtomicD(Packet &pkt);
    void handleAtomicND(Packet &pkt);
    void handleDirData(Packet &pkt);
    void handleDirWBAck(Packet &pkt);
    void handlePrbInv(Packet &pkt);

    // Table actions (see the static table builder in gpu_l2.cc).
    void actRecycle(TransCtx &ctx);
    void actReadHit(TransCtx &ctx);
    void actReadMiss(TransCtx &ctx);
    void actWriteThrough(TransCtx &ctx);
    void actAtomicQueue(TransCtx &ctx);
    void actAtomicInvalidate(TransCtx &ctx);
    void actAtomicStart(TransCtx &ctx);
    void actAtomicDone(TransCtx &ctx);
    void actAtomicRetry(TransCtx &ctx);
    void actDataFill(TransCtx &ctx);
    void actWriteBackAck(TransCtx &ctx);
    void actProbeInvalidate(TransCtx &ctx);
    void actProbeAck(TransCtx &ctx);
    void actReplaceVictim(TransCtx &ctx);

    /** Issue the head of an atomic queue to the directory. */
    void issueAtomic(Addr line_addr);

    /** Fill a line after refill data, replacing a victim if needed. */
    CacheEntry &fillLine(Addr line_addr, const LineData &data);

    /** Reply with a TccAck carrying the line to one RdBlk waiter. */
    void respondData(const Packet &req, const CacheEntry &entry);

    GpuL2Config _cfg;
    Crossbar &_xbar;
    int _endpoint;
    int _dirEndpoint;
    FaultInjector *_fault;

    /** Allocate a pooled TBE; @return its pool index. */
    template <typename T>
    static std::uint32_t
    poolAlloc(std::vector<T> &pool, std::vector<std::uint32_t> &free_list)
    {
        if (!free_list.empty()) {
            std::uint32_t idx = free_list.back();
            free_list.pop_back();
            return idx;
        }
        pool.emplace_back();
        return static_cast<std::uint32_t>(pool.size() - 1);
    }

    CacheArray _array;

    // TBE tables are open-addressed maps from line address to an index
    // into a recycling pool; the pooled entries keep their container
    // capacity across reuse (DESIGN.md §10).
    FlatMap<std::uint32_t> _fetchTbes;
    FlatMap<std::uint32_t> _atomicTbes;
    std::vector<FetchTbe> _fetchPool;
    std::vector<std::uint32_t> _fetchFree;
    std::vector<AtomicTbe> _atomicPool;
    std::vector<std::uint32_t> _atomicFree;

    FlatMap<PendingWB> _pendingWBs; ///< keyed by forwarded WrMem id

    /**
     * Per-line count of in-flight write-throughs: the false-sharing
     * racing check is a table lookup instead of a scan of _pendingWBs.
     */
    FlatMap<std::uint32_t> _wbLineCount;

    /** Scratch for fillLine's id-ordered merge (kept for capacity). */
    std::vector<std::pair<PacketId, const Packet *>> _mergeScratch;

    PacketId _nextId = 1;

    CoverageGrid _coverage;
    StatGroup _stats;
    TraceRecorder *_trace = nullptr;

    // Hot-path counters, resolved once (counter(name) is a string-keyed
    // map lookup).
    Counter *_cRecycles;
    Counter *_cReadHits;
    Counter *_cReadMisses;
    Counter *_cWriteThroughs;
    Counter *_cAtomics;
    Counter *_cAtomicRetries;
    Counter *_cReplacements;
    Counter *_cRefillMerges;
    Counter *_cProbes;
};

} // namespace drf

#endif // DRF_PROTO_GPU_L2_HH
