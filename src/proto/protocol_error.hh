/**
 * @file
 * Protocol fault reporting.
 *
 * An undefined (state, event) firing, a message arriving at a component
 * that cannot handle it, or any other "this must never happen" condition
 * raises a ProtocolError carrying enough context for a designer to start
 * debugging — mirroring Ruby's behaviour of aborting on an invalid
 * transition.
 */

#ifndef DRF_PROTO_PROTOCOL_ERROR_HH
#define DRF_PROTO_PROTOCOL_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace drf
{

/** Fatal protocol-level failure (undefined transition etc.). */
class ProtocolError : public std::runtime_error
{
  public:
    ProtocolError(const std::string &who, Tick when,
                  const std::string &what_happened)
        : std::runtime_error(format(who, when, what_happened)),
          _who(who), _when(when)
    {}

    const std::string &who() const { return _who; }
    Tick when() const { return _when; }

  private:
    static std::string
    format(const std::string &who, Tick when, const std::string &msg)
    {
        std::ostringstream os;
        os << "protocol error at tick " << when << " in " << who << ": "
           << msg;
        return os.str();
    }

    std::string _who;
    Tick _when;
};

} // namespace drf

#endif // DRF_PROTO_PROTOCOL_ERROR_HH
