#include "proto/directory.hh"

#include <algorithm>
#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
Directory::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "Directory", {"U", "CS", "CM", "B"},
            {"GpuFetch", "GpuWrMem", "GpuAtomic", "CpuGets", "CpuGetx",
             "CpuPutx", "DmaRead", "DmaWrite", "MemData", "MemWBAck",
             "CpuInvAck", "GpuInvAck"});
        // Every requestor event is defined in all three stable states and
        // in B (stall / AtomicND retry); completion events only in B.
        for (auto ev : {EvGpuFetch, EvGpuWrMem, EvGpuAtomic, EvCpuGets,
                        EvCpuGetx, EvCpuPutx, EvDmaRead, EvDmaWrite}) {
            for (auto st : {StU, StCS, StCM, StB})
                spec.define(ev, st);
        }
        for (auto ev : {EvMemData, EvMemWBAck, EvCpuInvAck, EvGpuInvAck})
            spec.define(ev, StB);

        // A single-GPU tester system has no CPU caches and no DMA
        // engine: every CPU/DMA-initiated cell, every cell requiring a
        // CPU-owned state, and the GPU-probe ack are unreachable.
        for (auto ev : {EvCpuGets, EvCpuGetx, EvCpuPutx, EvDmaRead,
                        EvDmaWrite}) {
            for (auto st : {StU, StCS, StCM, StB}) {
                spec.markImpossible("gpu_tester", ev, st);
                spec.markImpossible("gpu_tester_multi", ev, st);
            }
        }
        for (auto ev : {EvGpuFetch, EvGpuWrMem, EvGpuAtomic}) {
            for (auto tt : {"gpu_tester", "gpu_tester_multi"}) {
                spec.markImpossible(tt, ev, StCS);
                spec.markImpossible(tt, ev, StCM);
            }
        }
        spec.markImpossible("gpu_tester", EvCpuInvAck, StB);
        spec.markImpossible("gpu_tester", EvGpuInvAck, StB);
        // With several GPU L2s the directory probes remote L2s on GPU
        // writes and atomics, so GpuInvAck becomes reachable.
        spec.markImpossible("gpu_tester_multi", EvCpuInvAck, StB);

        // A CPU-tester-only system has no GPU and no DMA engine.
        for (auto ev : {EvGpuFetch, EvGpuWrMem, EvGpuAtomic, EvDmaRead,
                        EvDmaWrite}) {
            for (auto st : {StU, StCS, StCM, StB})
                spec.markImpossible("cpu_tester", ev, st);
        }
        spec.markImpossible("cpu_tester", EvGpuInvAck, StB);

        // The union run (GPU tester then CPU tester, Section IV.C) still
        // never generates DMA traffic or concurrent CPU+GPU sharing.
        for (auto ev : {EvDmaRead, EvDmaWrite}) {
            for (auto st : {StU, StCS, StCM, StB})
                spec.markImpossible("tester_union", ev, st);
        }
        for (auto ev : {EvGpuFetch, EvGpuWrMem, EvGpuAtomic}) {
            spec.markImpossible("tester_union", ev, StCS);
            spec.markImpossible("tester_union", ev, StCM);
        }
        spec.markImpossible("tester_union", EvGpuInvAck, StB);
        return spec;
    }();
    return s;
}

const TransitionTable<Directory> &
Directory::table()
{
    using T = TransitionTable<Directory>;
    using D = Directory;
    static const T t = [] {
        T t(spec());
        t.on(EvGpuFetch, StU, {&D::actGpuFetchClean}, StB)
            .on(EvGpuFetch, StCS, {&D::actGpuFetchClean}, StB)
            .on(EvGpuFetch, StCM, {&D::actGpuFetchOwned}, StB)
            .on(EvGpuFetch, StB, {&D::actRecycle}, StB)
            .on(EvGpuWrMem, StU, {&D::actGpuWriteClean}, StB)
            .on(EvGpuWrMem, StCS, {&D::actGpuWriteShared}, StB)
            .on(EvGpuWrMem, StCM, {&D::actGpuWriteOwned}, StB)
            .on(EvGpuWrMem, StB, {&D::actRecycle}, StB)
            .on(EvGpuAtomic, StU, {&D::actGpuAtomicClean}, StB)
            .on(EvGpuAtomic, StCS, {&D::actGpuAtomicShared}, StB)
            .on(EvGpuAtomic, StCM, {&D::actGpuAtomicOwned}, StB)
            .on(EvGpuAtomic, StB, {&D::actAtomicNack}, StB)
            .on(EvCpuGets, StU, {&D::actCpuGetsClean}, StB)
            .on(EvCpuGets, StCS, {&D::actCpuGetsClean}, StB)
            .on(EvCpuGets, StCM, {&D::actCpuGetsOwned}, StB)
            .on(EvCpuGets, StB, {&D::actRecycle}, StB)
            // Getx and Putx branch on the owner's identity (an upgrade by
            // the current owner degenerates to U; a Putx that lost to a
            // probe is stale), which a (state, event) row cannot express:
            // one action per stable state keeps that dynamic check.
            .on(EvCpuGetx, StU, {&D::actCpuGetx}, StB)
            .on(EvCpuGetx, StCS, {&D::actCpuGetx}, StB)
            .on(EvCpuGetx, StCM, {&D::actCpuGetx}, StB)
            .on(EvCpuGetx, StB, {&D::actRecycle}, StB)
            .on(EvCpuPutx, StU, {&D::actCpuPutx})
            .on(EvCpuPutx, StCS, {&D::actCpuPutx})
            .on(EvCpuPutx, StCM, {&D::actCpuPutx})
            .on(EvCpuPutx, StB, {&D::actRecycle}, StB)
            .on(EvDmaRead, StU, {&D::actDmaReadClean}, StB)
            .on(EvDmaRead, StCS, {&D::actDmaReadClean}, StB)
            .on(EvDmaRead, StCM, {&D::actDmaReadOwned}, StB)
            .on(EvDmaRead, StB, {&D::actRecycle}, StB)
            .on(EvDmaWrite, StU, {&D::actDmaWriteClean}, StB)
            .on(EvDmaWrite, StCS, {&D::actDmaWriteClean}, StB)
            .on(EvDmaWrite, StCM, {&D::actDmaWriteOwned}, StB)
            .on(EvDmaWrite, StB, {&D::actRecycle}, StB)
            .on(EvMemData, StB, {&D::actMemData})
            .on(EvMemWBAck, StB, {&D::actMemWBAck})
            .on(EvCpuInvAck, StB, {&D::actInvAck}, StB)
            .on(EvGpuInvAck, StB, {&D::actInvAck}, StB)
            .verifyComplete();
        return t;
    }();
    return t;
}

Directory::Directory(std::string name, EventQueue &eq,
                     const DirectoryConfig &cfg, Crossbar &xbar,
                     int endpoint, std::vector<int> gpu_l2_eps,
                     SimpleMemory &mem, FaultInjector *fault)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _gpuL2Endpoints(std::move(gpu_l2_eps)),
      _mem(mem),
      _memPort(SimObject::name() + ".memport", eq, cfg.memPortLatency),
      _fault(fault), _coverage(spec()), _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cCpuProbes(&_stats.counter("cpu_probes")),
      _cGpuProbes(&_stats.counter("gpu_probes")),
      _cAtomicNacks(&_stats.counter("atomic_nacks")),
      _cAtomics(&_stats.counter("atomics")),
      _cStalePutx(&_stats.counter("stale_putx"))
{
    _lines.reserve(256);
    xbar.attach(endpoint, *this);
    _memPort.bind(mem);
    mem.bindResponse([this](Packet &&pkt) { handleMemResp(pkt); });
}

Directory::Line &
Directory::line(Addr line_addr)
{
    return _lines[line_addr];
}

Directory::State
Directory::visibleState(const Line &l) const
{
    return l.txn != nullptr ? StB : l.stable;
}

void
Directory::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      recvMsg(pkt);
                  });
}

Directory::Txn &
Directory::startTxn(Addr line_addr, Packet origin)
{
    Line &l = line(line_addr);
    assert(l.txn == nullptr && "transaction already in flight");
    if (_txnFree.empty()) {
        _txnPool.push_back(std::make_unique<Txn>());
        _txnFree.push_back(_txnPool.back().get());
    }
    Txn *t = _txnFree.back();
    _txnFree.pop_back();
    l.txn = t;
    t->origin = std::move(origin);
    return *t;
}

void
Directory::finishTxn(Addr line_addr)
{
    Line &l = line(line_addr);
    assert(l.txn != nullptr);
    Txn *t = l.txn;
    l.txn = nullptr;
    // Scrub before recycling; the PODs (origin, probeData, pendingResp)
    // are overwritten by the next startTxn, the functions must release
    // their captures now.
    t->pendingAcks = 0;
    t->haveProbeData = false;
    t->onAcks = nullptr;
    t->onMemData = nullptr;
    t->onMemWBAck = nullptr;
    _txnFree.push_back(t);
}

void
Directory::sendCpuProbes(Addr line_addr, const std::vector<int> &targets,
                         MsgType probe_type)
{
    Line &l = line(line_addr);
    assert(l.txn != nullptr);
    for (int target : targets) {
        Packet probe;
        probe.type = probe_type;
        probe.addr = line_addr;
        probe.issueTick = curTick();
        _xbar.route(_endpoint, target, std::move(probe));
        ++l.txn->pendingAcks;
        _cCpuProbes->inc();
    }
}

unsigned
Directory::sendGpuProbes(Addr line_addr, int exclude)
{
    Line &l = line(line_addr);
    assert(l.txn != nullptr);
    _probeScratch.clear();
    for (int target : l.gpuSharers) {
        if (target != exclude)
            _probeScratch.push_back(target);
    }
    for (int target : _probeScratch) {
        Packet probe;
        probe.type = MsgType::PrbInv;
        probe.addr = line_addr;
        probe.issueTick = curTick();
        _xbar.route(_endpoint, target, std::move(probe));
        ++l.txn->pendingAcks;
        _cGpuProbes->inc();
        l.gpuSharers.erase(target);
    }
    return static_cast<unsigned>(_probeScratch.size());
}

void
Directory::readMem(Addr line_addr)
{
    Packet req;
    req.type = MsgType::MemRead;
    req.addr = line_addr;
    req.issueTick = curTick();
    _memPort.send(std::move(req));
}

void
Directory::writeMem(Addr line_addr, const LineData &data, ByteMask mask)
{
    Packet req;
    req.type = MsgType::MemWrite;
    req.addr = line_addr;
    req.data = data;
    req.dataLen = static_cast<std::uint16_t>(_cfg.lineBytes);
    req.mask = mask;
    req.issueTick = curTick();
    _memPort.send(std::move(req));
}

std::uint64_t
Directory::applyAtomic(LineData &buf, Addr addr, unsigned size,
                       std::uint64_t operand) const
{
    Addr off = lineOffset(addr, _cfg.lineBytes);
    assert(off + size <= kLineBytes);
    std::uint64_t old = 0;
    for (unsigned i = 0; i < size; ++i)
        old |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
    std::uint64_t updated = old + operand;
    for (unsigned i = 0; i < size; ++i)
        buf[off + i] = static_cast<std::uint8_t>(updated >> (8 * i));
    return old;
}

void
Directory::handleGpuFetch(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvGpuFetch, visibleState(line(ctx.line)), ctx);
}

void
Directory::actRecycle(TransCtx &ctx)
{
    recycle(*ctx.pkt);
}

void
Directory::actGpuFetchOwned(TransCtx &ctx)
{
    // Pull the dirty data out of the CPU owner first.
    Addr la = ctx.line;
    Txn &t = startTxn(la, *ctx.pkt);
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        writeMem(la, txn.probeData, fullLineMask);
        txn.onMemWBAck = [this, la] {
            Line &l3 = line(la);
            Txn &txn3 = *l3.txn;
            Packet resp;
            resp.type = MsgType::DirData;
            resp.addr = la;
            resp.id = txn3.origin.id;
            resp.setLine(txn3.probeData);
            int dst = txn3.origin.srcEndpoint;
            l3.sharers.insert(l3.owner);
            l3.owner = -1;
            l3.stable = StCS;
            l3.gpuSharers.insert(dst);
            finishTxn(la);
            _xbar.route(_endpoint, dst, std::move(resp));
        };
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbDowngrade);
}

void
Directory::actGpuFetchClean(TransCtx &ctx)
{
    // U or CS: memory is current.
    Addr la = ctx.line;
    Txn &t = startTxn(la, *ctx.pkt);
    t.onMemData = [this, la](const LineData &data) {
        Line &l2 = line(la);
        Packet resp;
        resp.type = MsgType::DirData;
        resp.addr = la;
        resp.id = l2.txn->origin.id;
        resp.setLine(data);
        int dst = l2.txn->origin.srcEndpoint;
        l2.gpuSharers.insert(dst);
        finishTxn(la);
        _xbar.route(_endpoint, dst, std::move(resp));
    };
    readMem(la);
}

void
Directory::handleGpuWrMem(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvGpuWrMem, visibleState(line(ctx.line)), ctx);
}

void
Directory::gpuWriteAndAck(Addr la, const LineData &data, ByteMask mask)
{
    line(la).txn->onMemWBAck = [this, la] {
        Line &l3 = line(la);
        Packet resp;
        resp.type = MsgType::DirWBAck;
        resp.addr = la;
        resp.id = l3.txn->origin.id;
        int dst = l3.txn->origin.srcEndpoint;
        finishTxn(la);
        _xbar.route(_endpoint, dst, std::move(resp));
    };
    writeMem(la, data, mask);
}

void
Directory::actGpuWriteOwned(TransCtx &ctx)
{
    // Invalidate the CPU owner, merge the GPU bytes over its data.
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        LineData buf = txn.probeData;
        for (unsigned i = 0; i < _cfg.lineBytes; ++i) {
            if (maskTest(txn.origin.mask, i))
                buf[i] = txn.origin.data[i];
        }
        l2.owner = -1;
        l2.sharers.clear();
        l2.stable = StU;
        gpuWriteAndAck(la, buf, fullLineMask);
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbInv);
    sendGpuProbes(la, requester);
}

void
Directory::actGpuWriteShared(TransCtx &ctx)
{
    // CPU shared copies would go stale: invalidate them first.
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    std::vector<int> targets(line(la).sharers.begin(),
                             line(la).sharers.end());
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        l2.sharers.clear();
        l2.stable = StU;
        gpuWriteAndAck(la, l2.txn->origin.data, l2.txn->origin.mask);
    };
    sendCpuProbes(la, targets, MsgType::CpuPrbInv);
    sendGpuProbes(la, requester);
}

void
Directory::actGpuWriteClean(TransCtx &ctx)
{
    // U: remote GPU L2s may still hold stale clean copies (multi-GPU
    // systems); invalidate them before the write becomes visible.
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    unsigned probes = sendGpuProbes(la, requester);
    if (probes > 0) {
        t.onAcks = [this, la] {
            Line &l2 = line(la);
            gpuWriteAndAck(la, l2.txn->origin.data, l2.txn->origin.mask);
        };
        return;
    }
    gpuWriteAndAck(la, t.origin.data, t.origin.mask);
}

void
Directory::handleGpuAtomic(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    table().fire(*this, EvGpuAtomic, visibleState(line(ctx.line)), ctx);
}

void
Directory::actAtomicNack(TransCtx &ctx)
{
    // Atomics are not stalled; the L2 gets a retry nack.
    Packet &pkt = *ctx.pkt;
    Packet nack;
    nack.type = MsgType::AtomicND;
    nack.addr = pkt.addr;
    nack.id = pkt.id;
    _cAtomicNacks->inc();
    _xbar.route(_endpoint, pkt.srcEndpoint, std::move(nack));
}

void
Directory::atomicRmw(Addr la, LineData buf)
{
    Line &l2 = line(la);
    Txn &txn = *l2.txn;
    std::uint64_t old = applyAtomic(buf, txn.origin.addr,
                                    txn.origin.size,
                                    txn.origin.atomicOperand);
    _cAtomics->inc();

    Packet resp;
    resp.type = MsgType::AtomicD;
    resp.addr = txn.origin.addr;
    resp.id = txn.origin.id;
    resp.atomicResult = old;
    resp.setLine(buf);
    int dst = txn.origin.srcEndpoint;

    if (_fault != nullptr && _fault->fire(FaultKind::NonAtomicRmw)) {
        // The read-modify-write loses its write: memory keeps the old
        // value, so a racing atomic will observe a duplicate.
        _stats.counter("injected_lost_atomics").inc();
        l2.gpuSharers.insert(dst);
        finishTxn(la);
        _xbar.route(_endpoint, dst, std::move(resp));
        return;
    }

    // Park the response on the Txn rather than in the capture: a
    // Packet-sized capture would push this std::function off its
    // small buffer and heap-allocate on the atomic hot path.
    txn.pendingResp = resp;
    txn.onMemWBAck = [this, la] {
        Line &l3 = line(la);
        Packet done = l3.txn->pendingResp;
        int dst2 = l3.txn->origin.srcEndpoint;
        l3.gpuSharers.insert(dst2); // the L2 caches the result line
        finishTxn(la);
        _xbar.route(_endpoint, dst2, std::move(done));
    };
    writeMem(la, buf, fullLineMask);
}

void
Directory::actGpuAtomicOwned(TransCtx &ctx)
{
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    // The requesting L2 dropped its own copy before forwarding.
    line(la).gpuSharers.erase(requester);
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        l2.owner = -1;
        l2.sharers.clear();
        l2.stable = StU;
        atomicRmw(la, txn.probeData);
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbInv);
    sendGpuProbes(la, requester);
}

void
Directory::actGpuAtomicShared(TransCtx &ctx)
{
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    line(la).gpuSharers.erase(requester);
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    std::vector<int> targets(line(la).sharers.begin(),
                             line(la).sharers.end());
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        l2.sharers.clear();
        l2.stable = StU;
        l2.txn->onMemData = [this, la](const LineData &data) {
            atomicRmw(la, data);
        };
        readMem(la);
    };
    sendCpuProbes(la, targets, MsgType::CpuPrbInv);
    sendGpuProbes(la, requester);
}

void
Directory::actGpuAtomicClean(TransCtx &ctx)
{
    Addr la = ctx.line;
    int requester = ctx.pkt->srcEndpoint;
    line(la).gpuSharers.erase(requester);
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    unsigned probes = sendGpuProbes(la, requester);
    if (probes > 0) {
        t.onAcks = [this, la] {
            line(la).txn->onMemData = [this, la](const LineData &data) {
                atomicRmw(la, data);
            };
            readMem(la);
        };
        return;
    }
    t.onMemData = [this, la](const LineData &data) { atomicRmw(la, data); };
    readMem(la);
}

void
Directory::handleCpuGets(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvCpuGets, visibleState(line(ctx.line)), ctx);
}

void
Directory::grantShared(Addr la, const LineData &data)
{
    Line &l2 = line(la);
    Packet resp;
    resp.type = MsgType::CpuData;
    resp.addr = la;
    resp.id = l2.txn->origin.id;
    resp.grant = 1;
    resp.setLine(data);
    int dst = l2.txn->origin.srcEndpoint;
    l2.sharers.insert(dst);
    l2.stable = StCS;
    finishTxn(la);
    _xbar.route(_endpoint, dst, std::move(resp));
}

void
Directory::actCpuGetsOwned(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        LineData data = txn.probeData;
        l2.sharers.insert(l2.owner);
        l2.owner = -1;
        txn.onMemWBAck = [this, la, data] { grantShared(la, data); };
        writeMem(la, data, fullLineMask);
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbDowngrade);
}

void
Directory::actCpuGetsClean(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    t.onMemData = [this, la](const LineData &data) {
        grantShared(la, data);
    };
    readMem(la);
}

void
Directory::handleCpuGetx(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvCpuGetx, visibleState(line(ctx.line)), ctx);
}

void
Directory::grantExclusive(Addr la, const LineData &data)
{
    Line &l2 = line(la);
    Packet resp;
    resp.type = MsgType::CpuData;
    resp.addr = la;
    resp.id = l2.txn->origin.id;
    resp.grant = 2;
    resp.setLine(data);
    int dst = l2.txn->origin.srcEndpoint;
    l2.sharers.clear();
    l2.owner = dst;
    l2.stable = StCM;
    finishTxn(la);
    _xbar.route(_endpoint, dst, std::move(resp));
}

void
Directory::actCpuGetx(TransCtx &ctx)
{
    Addr la = ctx.line;
    Packet &pkt = *ctx.pkt;
    State st = line(la).stable;
    int requester = pkt.srcEndpoint;
    startTxn(la, std::move(pkt));
    Txn &t = *line(la).txn;
    Line &l = line(la);

    bool drop_gpu_probe =
        !l.gpuSharers.empty() && _fault != nullptr &&
        _fault->fire(FaultKind::DropGpuProbe);
    if (drop_gpu_probe) {
        // The directory forgets the GPU L2s may hold this line.
        _stats.counter("injected_dropped_probes").inc();
        l.gpuSharers.clear();
    }

    if (st == StCM && l.owner != requester) {
        int owner = l.owner;
        t.onAcks = [this, la] {
            Line &l2 = line(la);
            Txn &txn = *l2.txn;
            assert(txn.haveProbeData);
            grantExclusive(la, txn.probeData);
        };
        sendCpuProbes(la, {owner}, MsgType::CpuPrbInv);
        sendGpuProbes(la);
        return;
    }

    // U or CS (or degenerate CM-with-owner==requester, which resolves
    // like U because memory was made current when ownership was granted).
    std::vector<int> targets;
    for (int sharer : l.sharers) {
        if (sharer != requester)
            targets.push_back(sharer);
    }
    t.onAcks = [this, la] {
        line(la).txn->onMemData = [this, la](const LineData &data) {
            grantExclusive(la, data);
        };
        readMem(la);
    };
    sendCpuProbes(la, targets, MsgType::CpuPrbInv);
    sendGpuProbes(la);
    if (line(la).txn->pendingAcks == 0)
        t.onAcks();
}

void
Directory::handleCpuPutx(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvCpuPutx, visibleState(line(ctx.line)), ctx);
}

void
Directory::actCpuPutx(TransCtx &ctx)
{
    Addr la = ctx.line;
    Packet &pkt = *ctx.pkt;
    Line &l = line(la);
    if (l.stable != StCM || l.owner != pkt.srcEndpoint) {
        // Stale writeback: a probe raced past it and took the data. Ack
        // without touching memory or state.
        _cStalePutx->inc();
        Packet ack;
        ack.type = MsgType::CpuWBAck;
        ack.addr = la;
        ack.id = pkt.id;
        _xbar.route(_endpoint, pkt.srcEndpoint, std::move(ack));
        return;
    }

    startTxn(la, std::move(pkt));
    Txn &t = *line(la).txn;
    t.onMemWBAck = [this, la] {
        Line &l2 = line(la);
        Packet ack;
        ack.type = MsgType::CpuWBAck;
        ack.addr = la;
        ack.id = l2.txn->origin.id;
        int dst = l2.txn->origin.srcEndpoint;
        l2.owner = -1;
        l2.stable = StU;
        finishTxn(la);
        _xbar.route(_endpoint, dst, std::move(ack));
    };
    writeMem(la, t.origin.data, fullLineMask);
}

void
Directory::handleDmaRead(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvDmaRead, visibleState(line(ctx.line)), ctx);
}

void
Directory::dmaReadRespond(Addr la, const LineData &data)
{
    Line &l2 = line(la);
    Packet resp;
    resp.type = MsgType::DmaReadResp;
    resp.addr = la;
    resp.id = l2.txn->origin.id;
    resp.setLine(data);
    int dst = l2.txn->origin.srcEndpoint;
    finishTxn(la);
    _xbar.route(_endpoint, dst, std::move(resp));
}

void
Directory::actDmaReadOwned(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        LineData data = txn.probeData;
        l2.sharers.insert(l2.owner);
        l2.owner = -1;
        l2.stable = StCS;
        txn.onMemWBAck = [this, la, data] { dmaReadRespond(la, data); };
        writeMem(la, data, fullLineMask);
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbDowngrade);
}

void
Directory::actDmaReadClean(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    t.onMemData = [this, la](const LineData &data) {
        dmaReadRespond(la, data);
    };
    readMem(la);
}

void
Directory::handleDmaWrite(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fire(*this, EvDmaWrite, visibleState(line(ctx.line)), ctx);
}

void
Directory::dmaWriteAndRespond(Addr la, const LineData &data, ByteMask mask)
{
    line(la).txn->onMemWBAck = [this, la] {
        Line &l3 = line(la);
        Packet resp;
        resp.type = MsgType::DmaWriteResp;
        resp.addr = la;
        resp.id = l3.txn->origin.id;
        int dst = l3.txn->origin.srcEndpoint;
        finishTxn(la);
        _xbar.route(_endpoint, dst, std::move(resp));
    };
    writeMem(la, data, mask);
}

void
Directory::actDmaWriteOwned(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    int owner = line(la).owner;
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        Txn &txn = *l2.txn;
        assert(txn.haveProbeData);
        LineData buf = txn.probeData;
        for (unsigned i = 0; i < _cfg.lineBytes; ++i) {
            if (maskTest(txn.origin.mask, i))
                buf[i] = txn.origin.data[i];
        }
        l2.owner = -1;
        l2.sharers.clear();
        l2.stable = StU;
        dmaWriteAndRespond(la, buf, fullLineMask);
    };
    sendCpuProbes(la, {owner}, MsgType::CpuPrbInv);
    sendGpuProbes(la);
}

void
Directory::actDmaWriteClean(TransCtx &ctx)
{
    Addr la = ctx.line;
    startTxn(la, std::move(*ctx.pkt));
    Txn &t = *line(la).txn;
    std::vector<int> targets(line(la).sharers.begin(),
                             line(la).sharers.end());
    t.onAcks = [this, la] {
        Line &l2 = line(la);
        l2.sharers.clear();
        l2.stable = StU;
        dmaWriteAndRespond(la, l2.txn->origin.data, l2.txn->origin.mask);
    };
    sendCpuProbes(la, targets, MsgType::CpuPrbInv);
    sendGpuProbes(la);
    if (line(la).txn->pendingAcks == 0)
        t.onAcks();
}

void
Directory::handleMemResp(Packet &pkt)
{
    // With no transaction in flight the line is stable, and MemData /
    // MemWBAck rows exist only in B: the table raises the protocol error.
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    if (pkt.type == MsgType::MemData) {
        table().fireWith(*this, EvMemData, visibleState(line(ctx.line)),
                         ctx, [&pkt] { return pkt.describe(); });
    } else if (pkt.type == MsgType::MemWBAck) {
        table().fireWith(*this, EvMemWBAck, visibleState(line(ctx.line)),
                         ctx, [&pkt] { return pkt.describe(); });
    } else {
        throw ProtocolError(name(), curTick(),
                            "unexpected memory response: " +
                                pkt.describe());
    }
}

void
Directory::actMemData(TransCtx &ctx)
{
    Line &l = line(ctx.line);
    assert(l.txn->onMemData && "unexpected MemData");
    auto fn = std::move(l.txn->onMemData);
    l.txn->onMemData = nullptr;
    fn(ctx.pkt->data);
}

void
Directory::actMemWBAck(TransCtx &ctx)
{
    Line &l = line(ctx.line);
    assert(l.txn->onMemWBAck && "unexpected MemWBAck");
    auto fn = std::move(l.txn->onMemWBAck);
    l.txn->onMemWBAck = nullptr;
    fn();
}

void
Directory::handleInvAck(Packet &pkt, bool from_gpu)
{
    // A probe ack with no transaction finds the line stable, where no
    // InvAck row is defined: the table raises the protocol error.
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = pkt.addr;
    table().fireWith(*this, from_gpu ? EvGpuInvAck : EvCpuInvAck,
                     visibleState(line(ctx.line)), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
Directory::actInvAck(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Txn &t = *line(ctx.line).txn;
    if (pkt.hasData()) {
        t.probeData = pkt.data;
        t.haveProbeData = true;
    }
    assert(t.pendingAcks > 0);
    if (--t.pendingAcks == 0) {
        assert(t.onAcks && "acks drained with no continuation");
        auto fn = std::move(t.onAcks);
        t.onAcks = nullptr;
        fn();
    }
}

void
Directory::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::FetchBlk:
        handleGpuFetch(pkt);
        break;
      case MsgType::WrMem:
        handleGpuWrMem(pkt);
        break;
      case MsgType::DirAtomic:
        handleGpuAtomic(pkt);
        break;
      case MsgType::Gets:
        handleCpuGets(pkt);
        break;
      case MsgType::Getx:
        handleCpuGetx(pkt);
        break;
      case MsgType::Putx:
        handleCpuPutx(pkt);
        break;
      case MsgType::DmaRead:
        handleDmaRead(pkt);
        break;
      case MsgType::DmaWrite:
        handleDmaWrite(pkt);
        break;
      case MsgType::InvAck:
        handleInvAck(pkt, true);
        break;
      case MsgType::CpuInvAck:
        handleInvAck(pkt, false);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
