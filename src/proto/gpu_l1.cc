#include "proto/gpu_l1.hh"

#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
GpuL1Cache::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "GPU-L1", {"I", "V", "A"},
            {"Load", "StoreThrough", "Atomic", "TCC_Ack", "TCC_AckWB",
             "Evict", "Repl"});
        // Load: miss fetch / hit / stall on pending MSHR.
        spec.define(EvLoad, StI);
        spec.define(EvLoad, StV);
        spec.define(EvLoad, StA);
        // StoreThrough: write-through from any stable state; stall on A.
        spec.define(EvStoreThrough, StI);
        spec.define(EvStoreThrough, StV);
        spec.define(EvStoreThrough, StA);
        // Atomic: forwarded below the L1; invalidates a valid copy.
        spec.define(EvAtomic, StI);
        spec.define(EvAtomic, StV);
        spec.define(EvAtomic, StA);
        // TCC_Ack only ever matches an MSHR.
        spec.define(EvTccAck, StA);
        // TCC_AckWB can find the line in any state (no-allocate stores).
        spec.define(EvTccAckWB, StI);
        spec.define(EvTccAckWB, StV);
        spec.define(EvTccAckWB, StA);
        // Evict (acquire flash-invalidation) sweeps whatever is present.
        spec.define(EvEvict, StI);
        spec.define(EvEvict, StV);
        spec.define(EvEvict, StA);
        // Repl only ever victimizes a valid clean line.
        spec.define(EvRepl, StV);
        return spec;
    }();
    return s;
}

const TransitionSpec &
GpuL1Cache::lrccSpec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "GPU-L1-LRCC", {"I", "V", "A", "O", "M"},
            {"Load", "Store", "Atomic", "TCC_Ack", "TCC_AckWB", "Evict",
             "Repl", "WB"});
        for (State st : {StI, StV, StA, StO, StM}) {
            spec.define(EvLoad, st);
            spec.define(EvStoreThrough, st);
            spec.define(EvAtomic, st);
            spec.define(EvTccAckWB, st);
            spec.define(EvEvict, st);
        }
        spec.define(EvTccAck, StA);
        // Repl victimizes any stable resident line.
        spec.define(EvRepl, StV);
        spec.define(EvRepl, StO);
        spec.define(EvRepl, StM);
        // WB: release/acquire write-back demotes M to O.
        spec.define(EvWB, StM);
        return spec;
    }();
    return s;
}

const TransitionSpec &
GpuL1Cache::specFor(ProtocolKind kind)
{
    return kind == ProtocolKind::Lrcc ? lrccSpec() : spec();
}

const TransitionTable<GpuL1Cache> &
GpuL1Cache::tableFor(ProtocolKind kind)
{
    using T = TransitionTable<GpuL1Cache>;
    using L1 = GpuL1Cache;
    static const T viper = [] {
        T t(spec());
        t.on(EvLoad, StI, {&L1::actLoadMiss}, StA)
            .on(EvLoad, StV, {&L1::actLoadHit}, StV)
            .on(EvLoad, StA, {&L1::actStall}, StA)
            .on(EvStoreThrough, StI, {&L1::actStoreThroughIssue}, StI)
            .on(EvStoreThrough, StV,
                {&L1::actStoreLocal, &L1::actStoreThroughIssue}, StV)
            .on(EvStoreThrough, StA, {&L1::actStall}, StA)
            .on(EvAtomic, StI, {&L1::actAtomicForward}, StA)
            .on(EvAtomic, StV,
                {&L1::actAtomicInvalidate, &L1::actAtomicForward}, StA)
            .on(EvAtomic, StA, {&L1::actStall}, StA)
            .on(EvTccAck, StA, {&L1::actFillOrComplete})
            .on(EvTccAckWB, StI, {&L1::actCompleteWriteThrough}, StI)
            .on(EvTccAckWB, StV, {&L1::actCompleteWriteThrough}, StV)
            .on(EvTccAckWB, StA, {&L1::actCompleteWriteThrough}, StA)
            .on(EvEvict, StI, {}, StI)
            .on(EvEvict, StV, {&L1::actInvalidateEntry}, StI)
            .on(EvEvict, StA, {}, StA)
            .on(EvRepl, StV, {&L1::actReplaceVictim}, StI)
            .verifyComplete();
        return t;
    }();
    static const T lrcc = [] {
        T t(lrccSpec());
        t.on(EvLoad, StI, {&L1::actLoadMiss}, StA)
            .on(EvLoad, StV, {&L1::actLoadHit}, StV)
            .on(EvLoad, StO, {&L1::actLoadHit}, StO)
            .on(EvLoad, StM, {&L1::actLoadHit}, StM)
            .on(EvLoad, StA, {&L1::actStall}, StA)
            .on(EvStoreThrough, StI, {&L1::actStoreAllocMiss}, StA)
            .on(EvStoreThrough, StV, {&L1::actStoreLocalLrcc}, StM)
            .on(EvStoreThrough, StO, {&L1::actStoreLocalLrcc}, StM)
            .on(EvStoreThrough, StM, {&L1::actStoreLocalLrcc}, StM)
            .on(EvStoreThrough, StA, {&L1::actStall}, StA)
            .on(EvAtomic, StI, {&L1::actAtomicForward}, StA)
            .on(EvAtomic, StV,
                {&L1::actAtomicInvalidate, &L1::actAtomicForward}, StA)
            .on(EvAtomic, StO,
                {&L1::actAtomicInvalidate, &L1::actAtomicForward}, StA)
            .on(EvAtomic, StM,
                {&L1::actWritebackEntry, &L1::actAtomicInvalidate,
                 &L1::actAtomicForward},
                StA)
            .on(EvAtomic, StA, {&L1::actStall}, StA)
            .on(EvTccAck, StA, {&L1::actFillOrCompleteLrcc})
            .on(EvTccAckWB, StI, {&L1::actCompleteWriteThrough}, StI)
            .on(EvTccAckWB, StV, {&L1::actCompleteWriteThrough}, StV)
            .on(EvTccAckWB, StA, {&L1::actCompleteWriteThrough}, StA)
            .on(EvTccAckWB, StO, {&L1::actCompleteWriteThrough}, StO)
            .on(EvTccAckWB, StM, {&L1::actCompleteWriteThrough}, StM)
            .on(EvEvict, StI, {}, StI)
            .on(EvEvict, StV, {&L1::actInvalidateEntry}, StI)
            .on(EvEvict, StO, {&L1::actInvalidateEntry}, StI)
            .on(EvEvict, StM,
                {&L1::actWritebackEntry, &L1::actInvalidateEntry}, StI)
            .on(EvEvict, StA, {}, StA)
            .on(EvRepl, StV, {&L1::actReplaceVictim}, StI)
            .on(EvRepl, StO, {&L1::actReplaceVictim}, StI)
            .on(EvRepl, StM,
                {&L1::actWritebackEntry, &L1::actReplaceVictim}, StI)
            .on(EvWB, StM, {&L1::actWritebackToOwned}, StO)
            .verifyComplete();
        return t;
    }();
    return kind == ProtocolKind::Lrcc ? lrcc : viper;
}

GpuL1Cache::GpuL1Cache(std::string name, EventQueue &eq,
                       const GpuL1Config &cfg, Crossbar &xbar, int endpoint,
                       int l2_ep, FaultInjector *fault)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _l2Endpoint(l2_ep), _fault(fault),
      _table(&tableFor(cfg.protocol)),
      _array(cfg.sizeBytes, cfg.assoc, cfg.lineBytes),
      _coverage(specFor(cfg.protocol)),
      _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cLoadHits(&_stats.counter("load_hits")),
      _cLoadMisses(&_stats.counter("load_misses")),
      _cWriteThroughs(&_stats.counter("write_throughs")),
      _cAtomics(&_stats.counter("atomics")),
      _cFlashInvalidates(&_stats.counter("flash_invalidates")),
      _cReplacements(&_stats.counter("replacements"))
{
    _tbes.reserve(64);
    _pendingWT.reserve(64);
    xbar.attach(endpoint, *this);
}

GpuL1Cache::State
GpuL1Cache::lineState(Addr line_addr) const
{
    if (_tbes.contains(line_addr))
        return StA;
    if (const CacheEntry *entry = _array.findEntry(line_addr))
        return entryState(*entry);
    return StI;
}

GpuL1Cache::State
GpuL1Cache::entryState(const CacheEntry &entry) const
{
    if (_cfg.protocol == ProtocolKind::Viper)
        return StV;
    switch (entry.state) {
      case kLineOwned: return StO;
      case kLineDirty: return StM;
      default: return StV;
    }
}

void
GpuL1Cache::transition(Event ev, State st)
{
    recordTransition(_trace, curTick(), _endpoint, ev, st);
    _coverage.hit(ev, st);
}

void
GpuL1Cache::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      coreRequest(std::move(pkt));
                  });
}

void
GpuL1Cache::coreRequest(Packet pkt)
{
    assert(_respond && "core response path not bound");

    // Release semantics: make prior stores globally visible before the
    // releasing access proceeds. A CTA-scope release stops at the
    // CU-local L1 (the workgroup's coherence point): nothing to drain.
    if (pkt.release && pkt.scope != Scope::Cta) {
        if (_cfg.protocol == ProtocolKind::Lrcc)
            writebackAllDirty();
        if (_outstandingWT > 0) {
            _releaseQueue.push_back(pkt);
            return;
        }
    }

    // Acquire semantics: flash-invalidate before performing the access
    // (LRCC first preserves local dirty data by writing it back). A
    // CTA-scope acquire keeps the CU-local contents — they are at least
    // as fresh as the CTA's own synchronization requires.
    if (pkt.acquire && pkt.scope != Scope::Cta) {
        if (_fault == nullptr ||
            !_fault->fire(FaultKind::DropAcquireInvalidate)) {
            if (_cfg.protocol == ProtocolKind::Lrcc)
                writebackAllDirty();
            flashInvalidate();
        }
    }

    switch (pkt.type) {
      case MsgType::LoadReq:
        handleLoad(pkt);
        break;
      case MsgType::StoreReq:
        handleStore(pkt);
        break;
      case MsgType::AtomicReq:
        handleAtomic(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected core request ") +
                                msgTypeName(pkt.type));
    }
}

void
GpuL1Cache::handleLoad(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    _table->fire(*this, EvLoad, lineState(ctx.line), ctx);
}

void
GpuL1Cache::handleStore(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    _table->fire(*this, EvStoreThrough, lineState(ctx.line), ctx);
}

void
GpuL1Cache::handleAtomic(Packet &pkt)
{
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = lineAlign(pkt.addr, _cfg.lineBytes);
    _table->fire(*this, EvAtomic, lineState(ctx.line), ctx);
}

void
GpuL1Cache::actStall(TransCtx &ctx)
{
    // A miss or atomic is outstanding for this line: stall.
    ctx.pkt->acquire = false; // the flash-invalidate already happened
    recycle(*ctx.pkt);
}

void
GpuL1Cache::actLoadHit(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    _cLoadHits->inc();
    Packet resp = pkt;
    resp.type = MsgType::LoadResp;
    resp.setData(entry->data.data() +
                     lineOffset(pkt.addr, _cfg.lineBytes),
                 pkt.size);
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
GpuL1Cache::actLoadMiss(TransCtx &ctx)
{
    // Miss: allocate an MSHR and fetch from the L2.
    Packet &pkt = *ctx.pkt;
    _cLoadMisses->inc();
    Tbe tbe;
    tbe.isAtomic = false;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));

    Packet req;
    req.type = MsgType::RdBlk;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _l2Endpoint, std::move(req));
}

void
GpuL1Cache::actStoreLocal(TransCtx &ctx)
{
    // Perform the store locally with per-byte dirty bits; the paired
    // actStoreThroughIssue writes it through.
    Packet &pkt = *ctx.pkt;
    assert(pkt.dataLen == pkt.size);
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    for (unsigned i = 0; i < pkt.size; ++i) {
        entry->data[off + i] = pkt.data[i];
        entry->dirty |= maskBit(off + i);
    }
}

void
GpuL1Cache::actStoreThroughIssue(TransCtx &ctx)
{
    // Build the line-granularity write-through message.
    Packet &pkt = *ctx.pkt;
    assert(pkt.dataLen == pkt.size);
    Packet wt;
    wt.type = MsgType::WrThrough;
    wt.addr = ctx.line;
    wt.id = _nextId++;
    wt.requestor = pkt.requestor;
    wt.issueTick = curTick();
    wt.dataLen = static_cast<std::uint16_t>(_cfg.lineBytes);
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    for (unsigned i = 0; i < pkt.size; ++i) {
        wt.data[off + i] = pkt.data[i];
        wt.mask |= maskBit(off + i);
    }

    _pendingWT.emplace(wt.id, pkt);
    ++_outstandingWT;
    _cWriteThroughs->inc();
    _xbar.route(_endpoint, _l2Endpoint, std::move(wt));
}

void
GpuL1Cache::actStoreLocalLrcc(TransCtx &ctx)
{
    // LRCC write-back store: dirty the line locally (M) and complete
    // at the L1; visibility is deferred to the next release/acquire
    // write-back.
    Packet &pkt = *ctx.pkt;
    assert(pkt.dataLen == pkt.size);
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.touch(*entry);
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    for (unsigned i = 0; i < pkt.size; ++i) {
        entry->data[off + i] = pkt.data[i];
        entry->dirty |= maskBit(off + i);
    }
    entry->state = kLineDirty;

    Packet resp = pkt;
    resp.type = MsgType::StoreAck;
    resp.clearData();
    scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
        _respond(std::move(resp));
    });
}

void
GpuL1Cache::actStoreAllocMiss(TransCtx &ctx)
{
    // LRCC write-allocate: fetch the line, then perform the store on
    // fill (actFillOrCompleteLrcc).
    Packet &pkt = *ctx.pkt;
    assert(pkt.dataLen == pkt.size);
    _cLoadMisses->inc();
    Tbe tbe;
    tbe.isAtomic = false;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));

    Packet req;
    req.type = MsgType::RdBlk;
    req.addr = ctx.line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _l2Endpoint, std::move(req));
}

void
GpuL1Cache::actAtomicInvalidate(TransCtx &ctx)
{
    // The atomic is performed below; the local copy becomes stale.
    CacheEntry *entry = _array.findEntry(ctx.line);
    _array.invalidate(*entry);
}

void
GpuL1Cache::actAtomicForward(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Tbe tbe;
    tbe.isAtomic = true;
    tbe.corePkt = pkt;
    _tbes.emplace(ctx.line, std::move(tbe));
    _cAtomics->inc();

    Packet req;
    req.type = MsgType::GpuAtomic;
    req.addr = pkt.addr;
    req.size = pkt.size;
    req.atomicOperand = pkt.atomicOperand;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _l2Endpoint, std::move(req));
}

void
GpuL1Cache::flashInvalidate()
{
    _cFlashInvalidates->inc();
    bool any = false;
    TransCtx ctx;
    for (auto &entry : _array.entries()) {
        if (entry.valid) {
            ctx.entry = &entry;
            ctx.line = entry.lineAddr;
            _table->fire(*this, EvEvict, entryState(entry), ctx);
            any = true;
        }
    }
    _tbes.forEach([&](Addr line, const Tbe &) {
        // In-flight fills are fetched from the L2 at or after the acquire
        // point, so they are left to complete.
        ctx.entry = nullptr;
        ctx.line = line;
        _table->fire(*this, EvEvict, StA, ctx);
        any = true;
    });
    if (!any) {
        // Flash invalidation of a cold cache: a defined no-op.
        ctx.entry = nullptr;
        ctx.line = 0;
        _table->fire(*this, EvEvict, StI, ctx);
    }
}

void
GpuL1Cache::actInvalidateEntry(TransCtx &ctx)
{
    assert(ctx.entry != nullptr);
    _array.invalidate(*ctx.entry);
}

void
GpuL1Cache::actReplaceVictim(TransCtx &ctx)
{
    assert(ctx.entry != nullptr);
    _cReplacements->inc();
    _array.invalidate(*ctx.entry);
}

void
GpuL1Cache::writebackAllDirty()
{
    TransCtx ctx;
    for (auto &entry : _array.entries()) {
        if (entry.valid && entry.state == kLineDirty) {
            ctx.entry = &entry;
            ctx.line = entry.lineAddr;
            _table->fire(*this, EvWB, StM, ctx);
        }
    }
}

void
GpuL1Cache::writebackEntry(CacheEntry &entry)
{
    if (entry.dirty == 0)
        return;
    Packet wt;
    wt.type = MsgType::WrThrough;
    wt.addr = entry.lineAddr;
    wt.id = _nextId++;
    wt.issueTick = curTick();
    wt.dataLen = static_cast<std::uint16_t>(_cfg.lineBytes);
    wt.data = entry.data;
    wt.mask = entry.dirty;

    // Internal write-back: the pending-WT marker keeps its WrThrough
    // type, which actCompleteWriteThrough reads as "no core response".
    Packet marker;
    marker.type = MsgType::WrThrough;
    marker.addr = entry.lineAddr;
    marker.id = wt.id;
    _pendingWT.emplace(wt.id, marker);
    ++_outstandingWT;
    _cWriteThroughs->inc();
    entry.dirty = 0;
    _xbar.route(_endpoint, _l2Endpoint, std::move(wt));
}

void
GpuL1Cache::actWritebackEntry(TransCtx &ctx)
{
    CacheEntry *entry =
        ctx.entry != nullptr ? ctx.entry : _array.findEntry(ctx.line);
    assert(entry != nullptr);
    writebackEntry(*entry);
}

void
GpuL1Cache::actWritebackToOwned(TransCtx &ctx)
{
    assert(ctx.entry != nullptr);
    writebackEntry(*ctx.entry);
    ctx.entry->state = kLineOwned;
}

CacheEntry &
GpuL1Cache::fillLine(Addr line_addr, const LineData &data)
{
    if (!_array.hasFreeWay(line_addr)) {
        CacheEntry &victim = _array.victim(line_addr);
        TransCtx ctx;
        ctx.entry = &victim;
        ctx.line = victim.lineAddr;
        _table->fire(*this, EvRepl, entryState(victim), ctx);
    }
    CacheEntry &entry = _array.allocate(line_addr);
    entry.data = data;
    entry.state = kLineClean;
    return entry;
}

void
GpuL1Cache::handleTccAck(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = line;
    // With no matching MSHR the line is in I or V, neither of which
    // defines a TCC_Ack row: the table raises the protocol error.
    _table->fireWith(*this, EvTccAck, lineState(line), ctx,
                     [&pkt] { return pkt.describe(); });
}

void
GpuL1Cache::actFillOrComplete(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Tbe tbe = std::move(*_tbes.find(ctx.line));
    _tbes.erase(ctx.line);

    Packet resp = tbe.corePkt;
    if (tbe.isAtomic) {
        // Atomics are not cached in the L1.
        resp.type = MsgType::AtomicResp;
        resp.atomicResult = pkt.atomicResult;
    } else {
        assert(pkt.dataLen == _cfg.lineBytes);
        CacheEntry &entry = fillLine(ctx.line, pkt.data);
        _array.touch(entry);
        resp.type = MsgType::LoadResp;
        Addr off = lineOffset(resp.addr, _cfg.lineBytes);
        resp.setData(entry.data.data() + off, resp.size);
    }
    _respond(std::move(resp));
}

void
GpuL1Cache::actFillOrCompleteLrcc(TransCtx &ctx)
{
    Packet &pkt = *ctx.pkt;
    Tbe tbe = std::move(*_tbes.find(ctx.line));
    _tbes.erase(ctx.line);

    Packet resp = tbe.corePkt;
    if (tbe.isAtomic) {
        resp.type = MsgType::AtomicResp;
        resp.atomicResult = pkt.atomicResult;
    } else if (resp.type == MsgType::StoreReq) {
        // Write-allocate completion: fill, perform the store, go M.
        assert(pkt.dataLen == _cfg.lineBytes);
        CacheEntry &entry = fillLine(ctx.line, pkt.data);
        _array.touch(entry);
        Addr off = lineOffset(resp.addr, _cfg.lineBytes);
        for (unsigned i = 0; i < resp.size; ++i) {
            entry.data[off + i] = resp.data[i];
            entry.dirty |= maskBit(off + i);
        }
        entry.state = kLineDirty;
        resp.type = MsgType::StoreAck;
        resp.clearData();
    } else {
        assert(pkt.dataLen == _cfg.lineBytes);
        CacheEntry &entry = fillLine(ctx.line, pkt.data);
        _array.touch(entry);
        resp.type = MsgType::LoadResp;
        Addr off = lineOffset(resp.addr, _cfg.lineBytes);
        resp.setData(entry.data.data() + off, resp.size);
    }
    _respond(std::move(resp));
}

void
GpuL1Cache::handleTccAckWB(Packet &pkt)
{
    Packet *found = _pendingWT.find(pkt.id);
    if (found == nullptr) {
        // Keyed by packet id, not line state, so the table's row lookup
        // cannot catch this: every state defines TCC_AckWB.
        throw ProtocolError(name(), curTick(),
                            "TCC_AckWB with no matching write-through: " +
                                pkt.describe());
    }
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    TransCtx ctx;
    ctx.pkt = &pkt;
    ctx.line = line;
    ctx.pending = found;
    _table->fire(*this, EvTccAckWB, lineState(line), ctx);
}

void
GpuL1Cache::actCompleteWriteThrough(TransCtx &ctx)
{
    Packet resp = *ctx.pending;
    _pendingWT.erase(ctx.pkt->id);
    assert(_outstandingWT > 0);
    --_outstandingWT;

    // Internal LRCC write-backs carry a WrThrough marker: no core
    // response is owed. Core-issued stores respond with a StoreAck.
    if (resp.type != MsgType::WrThrough) {
        resp.type = MsgType::StoreAck;
        resp.clearData();
        _respond(std::move(resp));
    }

    tryDrainReleaseQueue();
}

void
GpuL1Cache::tryDrainReleaseQueue()
{
    while (_outstandingWT == 0 && _releaseHead < _releaseQueue.size()) {
        Packet pkt = _releaseQueue[_releaseHead];
        if (++_releaseHead == _releaseQueue.size()) {
            _releaseQueue.clear();
            _releaseHead = 0;
        }
        pkt.release = false; // the WT drain condition is now satisfied
        coreRequest(std::move(pkt));
        // coreRequest may have created new write-throughs; re-check.
    }
}

void
GpuL1Cache::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::TccAck:
        handleTccAck(pkt);
        break;
      case MsgType::TccAckWB:
        handleTccAckWB(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
