#include "proto/gpu_l1.hh"

#include <cassert>

#include "proto/protocol_error.hh"
#include "sim/logger.hh"

namespace drf
{

const TransitionSpec &
GpuL1Cache::spec()
{
    static TransitionSpec s = [] {
        TransitionSpec spec(
            "GPU-L1", {"I", "V", "A"},
            {"Load", "StoreThrough", "Atomic", "TCC_Ack", "TCC_AckWB",
             "Evict", "Repl"});
        // Load: miss fetch / hit / stall on pending MSHR.
        spec.define(EvLoad, StI);
        spec.define(EvLoad, StV);
        spec.define(EvLoad, StA);
        // StoreThrough: write-through from any stable state; stall on A.
        spec.define(EvStoreThrough, StI);
        spec.define(EvStoreThrough, StV);
        spec.define(EvStoreThrough, StA);
        // Atomic: forwarded below the L1; invalidates a valid copy.
        spec.define(EvAtomic, StI);
        spec.define(EvAtomic, StV);
        spec.define(EvAtomic, StA);
        // TCC_Ack only ever matches an MSHR.
        spec.define(EvTccAck, StA);
        // TCC_AckWB can find the line in any state (no-allocate stores).
        spec.define(EvTccAckWB, StI);
        spec.define(EvTccAckWB, StV);
        spec.define(EvTccAckWB, StA);
        // Evict (acquire flash-invalidation) sweeps whatever is present.
        spec.define(EvEvict, StI);
        spec.define(EvEvict, StV);
        spec.define(EvEvict, StA);
        // Repl only ever victimizes a valid clean line.
        spec.define(EvRepl, StV);
        return spec;
    }();
    return s;
}

GpuL1Cache::GpuL1Cache(std::string name, EventQueue &eq,
                       const GpuL1Config &cfg, Crossbar &xbar, int endpoint,
                       int l2_ep, FaultInjector *fault)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _l2Endpoint(l2_ep), _fault(fault),
      _array(cfg.sizeBytes, cfg.assoc, cfg.lineBytes), _coverage(spec()),
      _stats(SimObject::name()),
      _cRecycles(&_stats.counter("recycles")),
      _cLoadHits(&_stats.counter("load_hits")),
      _cLoadMisses(&_stats.counter("load_misses")),
      _cWriteThroughs(&_stats.counter("write_throughs")),
      _cAtomics(&_stats.counter("atomics")),
      _cFlashInvalidates(&_stats.counter("flash_invalidates")),
      _cReplacements(&_stats.counter("replacements"))
{
    _tbes.reserve(64);
    _pendingWT.reserve(64);
    xbar.attach(endpoint, *this);
}

GpuL1Cache::State
GpuL1Cache::lineState(Addr line_addr) const
{
    if (_tbes.contains(line_addr))
        return StA;
    if (_array.findEntry(line_addr) != nullptr)
        return StV;
    return StI;
}

void
GpuL1Cache::transition(Event ev, State st)
{
    recordTransition(_trace, curTick(), _endpoint, ev, st);
    _coverage.hit(ev, st);
}

void
GpuL1Cache::recycle(Packet &pkt)
{
    _cRecycles->inc();
    scheduleAfter(_cfg.recycleLatency,
                  [this, pkt]() mutable {
                      coreRequest(std::move(pkt));
                  });
}

void
GpuL1Cache::coreRequest(Packet pkt)
{
    assert(_respond && "core response path not bound");

    // Release semantics: hold the request until every outstanding
    // write-through has been acknowledged.
    if (pkt.release && _outstandingWT > 0) {
        _releaseQueue.push_back(pkt);
        return;
    }

    // Acquire semantics: flash-invalidate before performing the access.
    if (pkt.acquire) {
        if (_fault == nullptr ||
            !_fault->fire(FaultKind::DropAcquireInvalidate)) {
            flashInvalidate();
        }
    }

    switch (pkt.type) {
      case MsgType::LoadReq:
        handleLoad(pkt);
        break;
      case MsgType::StoreReq:
        handleStore(pkt);
        break;
      case MsgType::AtomicReq:
        handleAtomic(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected core request ") +
                                msgTypeName(pkt.type));
    }
}

void
GpuL1Cache::handleLoad(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    State st = lineState(line);
    transition(EvLoad, st);

    if (st == StA) {
        // A miss or atomic is outstanding for this line: stall.
        pkt.acquire = false; // the flash-invalidate already happened
        recycle(pkt);
        return;
    }

    if (st == StV) {
        CacheEntry *entry = _array.findEntry(line);
        _array.touch(*entry);
        _cLoadHits->inc();
        Packet resp = pkt;
        resp.type = MsgType::LoadResp;
        resp.setData(entry->data.data() +
                         lineOffset(pkt.addr, _cfg.lineBytes),
                     pkt.size);
        scheduleAfter(_cfg.hitLatency, [this, resp]() mutable {
            _respond(std::move(resp));
        });
        return;
    }

    // Miss: allocate an MSHR and fetch from the L2.
    _cLoadMisses->inc();
    Tbe tbe;
    tbe.isAtomic = false;
    tbe.corePkt = pkt;
    _tbes.emplace(line, std::move(tbe));

    Packet req;
    req.type = MsgType::RdBlk;
    req.addr = line;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _l2Endpoint, std::move(req));
}

void
GpuL1Cache::handleStore(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    State st = lineState(line);
    transition(EvStoreThrough, st);

    if (st == StA) {
        // e.g. a store hitting a pending atomic: a rare corner the paper
        // calls out; the controller stalls it.
        pkt.acquire = false;
        recycle(pkt);
        return;
    }

    assert(pkt.dataLen == pkt.size);

    if (st == StV) {
        // Perform the store locally with per-byte dirty bits, then write
        // it through.
        CacheEntry *entry = _array.findEntry(line);
        _array.touch(*entry);
        Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
        for (unsigned i = 0; i < pkt.size; ++i) {
            entry->data[off + i] = pkt.data[i];
            entry->dirty |= maskBit(off + i);
        }
    }

    // Build the line-granularity write-through message.
    Packet wt;
    wt.type = MsgType::WrThrough;
    wt.addr = line;
    wt.id = _nextId++;
    wt.requestor = pkt.requestor;
    wt.issueTick = curTick();
    wt.dataLen = static_cast<std::uint16_t>(_cfg.lineBytes);
    Addr off = lineOffset(pkt.addr, _cfg.lineBytes);
    for (unsigned i = 0; i < pkt.size; ++i) {
        wt.data[off + i] = pkt.data[i];
        wt.mask |= maskBit(off + i);
    }

    _pendingWT.emplace(wt.id, pkt);
    ++_outstandingWT;
    _cWriteThroughs->inc();
    _xbar.route(_endpoint, _l2Endpoint, std::move(wt));
}

void
GpuL1Cache::handleAtomic(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    State st = lineState(line);
    transition(EvAtomic, st);

    if (st == StA) {
        pkt.acquire = false;
        recycle(pkt);
        return;
    }

    if (st == StV) {
        // The atomic is performed below; the local copy becomes stale.
        CacheEntry *entry = _array.findEntry(line);
        _array.invalidate(*entry);
    }

    Tbe tbe;
    tbe.isAtomic = true;
    tbe.corePkt = pkt;
    _tbes.emplace(line, std::move(tbe));
    _cAtomics->inc();

    Packet req;
    req.type = MsgType::GpuAtomic;
    req.addr = pkt.addr;
    req.size = pkt.size;
    req.atomicOperand = pkt.atomicOperand;
    req.id = _nextId++;
    req.requestor = pkt.requestor;
    req.issueTick = curTick();
    _xbar.route(_endpoint, _l2Endpoint, std::move(req));
}

void
GpuL1Cache::flashInvalidate()
{
    _cFlashInvalidates->inc();
    bool any = false;
    for (auto &entry : _array.entries()) {
        if (entry.valid) {
            transition(EvEvict, StV);
            _array.invalidate(entry);
            any = true;
        }
    }
    _tbes.forEach([&](Addr, const Tbe &) {
        // In-flight fills are fetched from the L2 at or after the acquire
        // point, so they are left to complete.
        transition(EvEvict, StA);
        any = true;
    });
    if (!any) {
        // Flash invalidation of a cold cache: a defined no-op.
        transition(EvEvict, StI);
    }
}

CacheEntry &
GpuL1Cache::fillLine(Addr line_addr, const LineData &data)
{
    if (!_array.hasFreeWay(line_addr)) {
        CacheEntry &victim = _array.victim(line_addr);
        transition(EvRepl, StV);
        _cReplacements->inc();
        _array.invalidate(victim);
    }
    CacheEntry &entry = _array.allocate(line_addr);
    entry.data = data;
    return entry;
}

void
GpuL1Cache::handleTccAck(Packet &pkt)
{
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    Tbe *found = _tbes.find(line);
    if (found == nullptr) {
        throw ProtocolError(name(), curTick(),
                            "TCC_Ack with no matching MSHR: " +
                                pkt.describe());
    }
    transition(EvTccAck, StA);

    Tbe tbe = std::move(*found);
    _tbes.erase(line);

    Packet resp = tbe.corePkt;
    if (tbe.isAtomic) {
        // Atomics are not cached in the L1.
        resp.type = MsgType::AtomicResp;
        resp.atomicResult = pkt.atomicResult;
    } else {
        assert(pkt.dataLen == _cfg.lineBytes);
        CacheEntry &entry = fillLine(line, pkt.data);
        _array.touch(entry);
        resp.type = MsgType::LoadResp;
        Addr off = lineOffset(resp.addr, _cfg.lineBytes);
        resp.setData(entry.data.data() + off, resp.size);
    }
    _respond(std::move(resp));
}

void
GpuL1Cache::handleTccAckWB(Packet &pkt)
{
    Packet *found = _pendingWT.find(pkt.id);
    if (found == nullptr) {
        throw ProtocolError(name(), curTick(),
                            "TCC_AckWB with no matching write-through: " +
                                pkt.describe());
    }
    Addr line = lineAlign(pkt.addr, _cfg.lineBytes);
    transition(EvTccAckWB, lineState(line));

    Packet resp = *found;
    _pendingWT.erase(pkt.id);
    assert(_outstandingWT > 0);
    --_outstandingWT;

    resp.type = MsgType::StoreAck;
    resp.clearData();
    _respond(std::move(resp));

    tryDrainReleaseQueue();
}

void
GpuL1Cache::tryDrainReleaseQueue()
{
    while (_outstandingWT == 0 && _releaseHead < _releaseQueue.size()) {
        Packet pkt = _releaseQueue[_releaseHead];
        if (++_releaseHead == _releaseQueue.size()) {
            _releaseQueue.clear();
            _releaseHead = 0;
        }
        pkt.release = false; // the WT drain condition is now satisfied
        coreRequest(std::move(pkt));
        // coreRequest may have created new write-throughs; re-check.
    }
}

void
GpuL1Cache::recvMsg(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::TccAck:
        handleTccAck(pkt);
        break;
      case MsgType::TccAckWB:
        handleTccAckWB(pkt);
        break;
      default:
        throw ProtocolError(name(), curTick(),
                            std::string("unexpected message ") +
                                msgTypeName(pkt.type));
    }
}

} // namespace drf
