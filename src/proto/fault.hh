/**
 * @file
 * Protocol fault injection for the Section V case study and for
 * validating that the tester actually detects bugs.
 *
 * Each FaultKind models a realistic implementation bug class. Controllers
 * consult the injector at the relevant decision points; with no injector
 * (or kind None) the protocol is correct.
 */

#ifndef DRF_PROTO_FAULT_HH
#define DRF_PROTO_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/random.hh"
#include "sim/types.hh"

namespace drf
{

/** The injectable bug classes. */
enum class FaultKind
{
    None,

    /**
     * Case study bug 1 (Table V): two false-sharing write-throughs racing
     * at the GPU L2 are not serialized correctly — the second write's
     * bytes are dropped instead of merged, so the store never reaches
     * memory. Detected as a read-write value inconsistency.
     */
    LostWriteThrough,

    /**
     * Case study bug 2: the directory's atomic read-modify-write is not
     * atomic — a second racing atomic can observe the same old value.
     * Detected as duplicate atomic return values.
     */
    NonAtomicRmw,

    /**
     * Acquire fails to flash-invalidate the GPU L1, so later loads can
     * return stale data. Detected as a value inconsistency.
     */
    DropAcquireInvalidate,

    /**
     * The directory forgets to probe-invalidate the GPU L2 when the CPU
     * gains exclusive ownership (heterogeneous-protocol bug). Detected by
     * application-style mixed traffic or a combined run.
     */
    DropGpuProbe,

    /**
     * The GPU L2 occasionally drops a write-completion ack, leaving the
     * requesting L1 waiting forever. Detected by the forward-progress
     * watchdog as a deadlock.
     */
    DropWriteAck,
};

/** Number of FaultKind values (for CLI / trace-header range checks). */
inline constexpr std::uint32_t faultKindCount = 6;

/** Printable bug name. */
const char *faultKindName(FaultKind kind);

/**
 * Inverse of faultKindName: parse a bug name from a CLI flag or trace
 * header. Returns nullopt for misspelled/unknown names so callers fail
 * loudly instead of silently arming the wrong (or no) fault.
 */
std::optional<FaultKind> parseFaultKind(const std::string &name);

/**
 * Shared fault-injection policy: which bug is armed and how often it
 * triggers. Deterministic under its seed.
 */
class FaultInjector
{
  public:
    /**
     * @param kind        Armed bug (None disables everything).
     * @param trigger_pct Probability in percent that an armed site
     *                    fires; clamped to [0, 100]. (Random::pct treats
     *                    any value > 100 as always-fire, so an unclamped
     *                    typo like 1000 would silently arm a 100%
     *                    trigger — clamping pins that behavior.)
     * @param seed        RNG seed.
     */
    FaultInjector(FaultKind kind, unsigned trigger_pct, std::uint64_t seed)
        : _kind(kind), _triggerPct(trigger_pct > 100 ? 100 : trigger_pct),
          _rng(seed)
    {}

    /** The armed bug. */
    FaultKind kind() const { return _kind; }

    /** The effective (clamped) trigger probability in percent. */
    unsigned triggerPct() const { return _triggerPct; }

    /**
     * Ask whether the bug @p kind should fire at this site. Only returns
     * true when @p kind is armed and the trigger roll succeeds; counts
     * every actual firing.
     */
    bool
    fire(FaultKind kind)
    {
        if (kind != _kind)
            return false;
        if (!_rng.pct(_triggerPct))
            return false;
        ++_firings;
        return true;
    }

    /** Number of times the armed bug actually fired. */
    std::uint64_t firings() const { return _firings; }

  private:
    FaultKind _kind;
    unsigned _triggerPct;
    Random _rng;
    std::uint64_t _firings = 0;
};

} // namespace drf

#endif // DRF_PROTO_FAULT_HH
