/**
 * @file
 * Executes one synthetic application on a full APU system: host init
 * through the CPU caches, DMA copies, GPU kernels through the detailed
 * core models, host readback — the application-based testing flow of
 * the paper's Fig. 1 (left).
 */

#ifndef DRF_APPS_APP_RUNNER_HH
#define DRF_APPS_APP_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_trace.hh"
#include "apps/dma.hh"
#include "apps/gpu_core.hh"
#include "system/apu_system.hh"

namespace drf
{

/** Outcome of one application run. */
struct AppResult
{
    bool completed = false;
    Tick ticks = 0;
    std::uint64_t events = 0;
    std::uint64_t instructions = 0; ///< dynamic GPU instructions
    double hostSeconds = 0.0;
};

/**
 * Owns the application-side components (core models, DMA engine) and
 * drives an ApuSystem through one application.
 */
class AppRunner
{
  public:
    /**
     * @param sys System under test; must have a GPU and at least one
     *            CPU core-pair cache.
     * @param trace The application to run.
     */
    AppRunner(ApuSystem &sys, AppTrace trace);

    /** Run the whole application. */
    AppResult run();

  private:
    void startPhase(std::size_t phase_idx);
    void hostPartDone();
    void startKernel(std::size_t kernel_idx);
    void issueCpuOp(unsigned slot);
    void onCpuResponse(Packet &pkt);

    ApuSystem &_sys;
    AppTrace _trace;
    std::unique_ptr<DmaEngine> _dma;
    std::vector<std::unique_ptr<GpuCoreModel>> _cores;

    // Host-phase progress.
    std::size_t _phaseIdx = 0;
    std::size_t _nextCpuOp = 0;
    unsigned _cpuInFlight = 0;
    unsigned _hostPartsPending = 0; ///< CPU stream + DMA stream

    bool _done = false;
    std::uint64_t _gpuInstrs = 0;
};

} // namespace drf

#endif // DRF_APPS_APP_RUNNER_HH
