/**
 * @file
 * Synthetic application traces.
 *
 * Stand-in for the paper's 26 real GPU applications (compute apps,
 * HeteroSync, and the MI suites — DNNMark, DeepBench, MIOpen
 * benchmarks), which require a ROCm toolchain and GPU binaries this
 * environment does not have. Each application is characterized by the
 * properties that matter to the experiments: its data-locality mix in
 * the Koo et al. taxonomy (streaming / intra-WF / inter-WF / mixed-WF,
 * Fig. 6), its store and atomic intensity, its working-set size, its
 * kernel count, and whether the host re-initializes data between kernel
 * launches (which is what generates CPU and DMA traffic against lines
 * the GPU cached — the app-only directory and PrbInv transitions).
 */

#ifndef DRF_APPS_APP_TRACE_HH
#define DRF_APPS_APP_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/gpu_core.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace drf
{

/** Workload characterization of one application. */
struct AppProfile
{
    std::string name;
    std::string suite; ///< "compute", "heterosync", "mi"

    unsigned kernels = 2;        ///< kernel launches
    unsigned wfsPerCu = 2;
    unsigned lanes = 16;
    unsigned memInstrsPerWf = 200; ///< memory instructions per WF/kernel
    unsigned aluPerMem = 8;        ///< ALU instructions per memory op

    /** Locality mix over memory accesses; should sum to ~1. */
    double streamingFrac = 0.25;
    double intraWfFrac = 0.25;
    double interWfFrac = 0.25;
    double mixedFrac = 0.25;

    double storeFrac = 0.3;   ///< stores among non-atomic memory ops
    double atomicFrac = 0.0;  ///< atomics among memory ops

    std::uint64_t workingSetBytes = 64 * 1024;
    bool hostReinitBetweenKernels = true;
    bool usesDma = true;

    std::uint64_t seed = 1;
};

/** Host-side activity around one kernel launch. */
struct HostPhase
{
    /** CPU ops: (byte address, is-store). */
    std::vector<std::pair<Addr, bool>> cpuOps;
    /** DMA ops: (line address, is-write). */
    std::vector<std::pair<Addr, bool>> dmaOps;
};

/** A complete runnable application. */
struct AppTrace
{
    AppProfile profile;
    /** kernels x (cus*wfsPerCu) wavefront traces. */
    std::vector<std::vector<WfTrace>> kernels;
    /** kernels+1 host phases (before each kernel, plus a final one). */
    std::vector<HostPhase> hostPhases;
    /** Base of the app's device data region. */
    Addr regionBase = 0;
};

/**
 * Generate the full trace of @p profile for @p num_cus compute units.
 *
 * @param region_base Base address of the app's data region.
 * @param line_bytes  Cache line size (for DMA ops and region layout).
 */
AppTrace generateAppTrace(const AppProfile &profile, unsigned num_cus,
                          Addr region_base, unsigned line_bytes);

} // namespace drf

#endif // DRF_APPS_APP_TRACE_HH
