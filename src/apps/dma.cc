#include "apps/dma.hh"

#include <cassert>

namespace drf
{

DmaEngine::DmaEngine(std::string name, EventQueue &eq,
                     const DmaConfig &cfg, Crossbar &xbar, int endpoint,
                     int dir_ep)
    : SimObject(std::move(name), eq), _cfg(cfg), _xbar(xbar),
      _endpoint(endpoint), _dirEndpoint(dir_ep), _stats(SimObject::name())
{
    xbar.attach(endpoint, *this);
}

void
DmaEngine::readRange(Addr base, unsigned lines, DoneFunc on_done)
{
    assert(lines > 0);
    for (unsigned i = 0; i < lines; ++i) {
        Op op;
        op.isWrite = false;
        op.addr = base + static_cast<Addr>(i) * _cfg.lineBytes;
        if (i == lines - 1)
            op.onDone = std::move(on_done);
        _queue.push_back(std::move(op));
    }
    pump();
}

void
DmaEngine::writeRange(Addr base, unsigned lines, std::uint8_t fill,
                      DoneFunc on_done)
{
    assert(lines > 0);
    for (unsigned i = 0; i < lines; ++i) {
        Op op;
        op.isWrite = true;
        op.addr = base + static_cast<Addr>(i) * _cfg.lineBytes;
        op.fill = fill;
        if (i == lines - 1)
            op.onDone = std::move(on_done);
        _queue.push_back(std::move(op));
    }
    pump();
}

void
DmaEngine::pump()
{
    while (_inFlight < _cfg.maxOutstanding && !_queue.empty()) {
        Op op = std::move(_queue.front());
        _queue.pop_front();

        Packet pkt;
        pkt.addr = lineAlign(op.addr, _cfg.lineBytes);
        pkt.id = _nextId++;
        pkt.issueTick = curTick();
        if (op.isWrite) {
            pkt.type = MsgType::DmaWrite;
            pkt.fillData(op.fill, _cfg.lineBytes);
            pkt.mask = fullLineMask;
            _stats.counter("writes").inc();
        } else {
            pkt.type = MsgType::DmaRead;
            _stats.counter("reads").inc();
        }
        if (op.onDone)
            _completions.emplace(pkt.id, std::move(op.onDone));
        ++_inFlight;
        _xbar.route(_endpoint, _dirEndpoint, std::move(pkt));
    }
}

void
DmaEngine::recvMsg(Packet &pkt)
{
    assert(pkt.type == MsgType::DmaReadResp ||
           pkt.type == MsgType::DmaWriteResp);
    assert(_inFlight > 0);
    --_inFlight;

    auto it = _completions.find(pkt.id);
    if (it != _completions.end()) {
        DoneFunc fn = std::move(it->second);
        _completions.erase(it);
        pump();
        fn();
        return;
    }
    pump();
}

} // namespace drf
