/**
 * @file
 * A "detailed" GPU core model for application-based testing (the left
 * half of the paper's Fig. 1).
 *
 * Where the tester attaches directly to the cache hierarchy, real
 * applications execute through a core pipeline: every instruction — ALU
 * and memory alike — is fetched, decoded and issued, costing simulator
 * events and simulated cycles before a memory request ever reaches the
 * L1. This model reproduces that cost structure (and therefore the
 * paper's >50x tester speed advantage) without modelling an ISA: it
 * executes pre-generated per-wavefront instruction traces.
 */

#ifndef DRF_APPS_GPU_CORE_HH
#define DRF_APPS_GPU_CORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/msg.hh"
#include "proto/gpu_l1.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/** One traced GPU instruction. */
struct GpuInstr
{
    enum class Kind
    {
        Alu,    ///< non-memory work (consumes pipeline only)
        Load,
        Store,
        Atomic, ///< fetch-add on laneAddrs[0]
    };

    Kind kind = Kind::Alu;
    bool acquire = false;
    bool release = false;
    /** Per-lane byte addresses; empty entries (invalidAddr) skip lanes. */
    std::vector<Addr> laneAddrs;
};

/** Instruction stream of one wavefront. */
using WfTrace = std::vector<GpuInstr>;

/** Core pipeline cost parameters. */
struct GpuCoreConfig
{
    unsigned lanes = 16;
    unsigned pipelineStages = 6; ///< cycles from fetch to issue
    Tick stageLatency = 1;
    unsigned accessBytes = 4;
};

/**
 * Executes the wavefront traces assigned to one CU through its L1.
 */
class GpuCoreModel : public SimObject
{
  public:
    using DoneFunc = std::function<void()>;

    /**
     * @param name Instance name.
     * @param eq   Event queue.
     * @param cfg  Pipeline parameters.
     * @param l1   The CU's L1 cache.
     * @param requestor_base Unique id base for this CU's threads.
     */
    GpuCoreModel(std::string name, EventQueue &eq,
                 const GpuCoreConfig &cfg, GpuL1Cache &l1,
                 RequestorId requestor_base);

    /**
     * Run @p traces (one per wavefront) to completion; @p on_done fires
     * when every wavefront finished.
     */
    void launch(std::vector<WfTrace> traces, DoneFunc on_done);

    bool busy() const { return _activeWfs > 0; }

    /** Dynamic instructions executed (ALU + memory). */
    std::uint64_t instructionsExecuted() const { return _instrs; }

    StatGroup &stats() { return _stats; }

  private:
    struct WfState
    {
        WfTrace trace;
        std::size_t pc = 0;
        unsigned pending = 0;
        unsigned id = 0;
    };

    /** Advance one wavefront to its next instruction. */
    void step(unsigned wf_idx);
    void onResponse(Packet &pkt);
    void wfFinished();

    GpuCoreConfig _cfg;
    GpuL1Cache &_l1;
    RequestorId _requestorBase;

    std::vector<WfState> _wfs;
    unsigned _activeWfs = 0;
    DoneFunc _onDone;
    PacketId _nextId = 1;
    std::uint64_t _instrs = 0;
    StatGroup _stats;
};

} // namespace drf

#endif // DRF_APPS_GPU_CORE_HH
