/**
 * @file
 * The 26-application suite used for application-based testing
 * (Table IV of the paper; reconstructed — see DESIGN.md).
 *
 * The paper draws its applications from AMD compute apps, HeteroSync,
 * and the MI suites (DNNMark, DeepBench, MIOpen benchmarks), and names
 * HACC, Square, FFT, Interac and CM explicitly; Fig. 6 and Fig. 9 show
 * that the suite spans vastly different locality mixes and that the
 * atomic-heavy Interac / CM / HeteroSync programs dominate the union
 * coverage. The profiles below reproduce that structure.
 */

#ifndef DRF_APPS_APP_SUITE_HH
#define DRF_APPS_APP_SUITE_HH

#include <vector>

#include "apps/app_trace.hh"

namespace drf
{

/** All 26 application profiles, in the paper's reporting spirit. */
std::vector<AppProfile> makeAppSuite(std::uint64_t base_seed = 1);

/** Look up a profile by name (asserts on unknown names). */
AppProfile appByName(const std::string &name,
                     std::uint64_t base_seed = 1);

} // namespace drf

#endif // DRF_APPS_APP_SUITE_HH
