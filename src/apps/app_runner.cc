#include "apps/app_runner.hh"

#include <cassert>
#include <chrono>

namespace drf
{

AppRunner::AppRunner(ApuSystem &sys, AppTrace trace)
    : _sys(sys), _trace(std::move(trace))
{
    assert(sys.hasGpu() && "applications need a GPU");
    assert(sys.numCpuCaches() > 0 && "applications need a host CPU");

    DmaConfig dma_cfg;
    dma_cfg.lineBytes = sys.config().lineBytes;
    _dma = std::make_unique<DmaEngine>("dma", sys.eventq(), dma_cfg,
                                       sys.xbar(),
                                       ApuSystem::dmaEndpoint,
                                       ApuSystem::dirEndpoint);

    GpuCoreConfig core_cfg;
    core_cfg.lanes = _trace.profile.lanes;
    for (unsigned cu = 0; cu < sys.numCus(); ++cu) {
        _cores.push_back(std::make_unique<GpuCoreModel>(
            "gpu.core[" + std::to_string(cu) + "]", sys.eventq(),
            core_cfg, sys.l1(cu),
            /*requestor_base=*/cu * 100'000));
    }

    sys.cpuCache(0).bindCoreResponse([this](Packet &&pkt) {
        onCpuResponse(pkt);
    });
}

void
AppRunner::issueCpuOp(unsigned slot)
{
    const HostPhase &phase = _trace.hostPhases[_phaseIdx];
    if (_nextCpuOp >= phase.cpuOps.size()) {
        if (_cpuInFlight == 0)
            hostPartDone();
        return;
    }

    auto [addr, is_store] = phase.cpuOps[_nextCpuOp++];
    Packet pkt;
    pkt.addr = addr;
    pkt.size = 1;
    pkt.requestor = slot;
    pkt.id = (_phaseIdx << 32) | _nextCpuOp;
    pkt.issueTick = _sys.eventq().curTick();
    if (is_store) {
        pkt.type = MsgType::StoreReq;
        pkt.setValueLE(static_cast<std::uint8_t>(_nextCpuOp), 1);
    } else {
        pkt.type = MsgType::LoadReq;
    }
    ++_cpuInFlight;
    _sys.cpuCache(0).coreRequest(std::move(pkt));
}

void
AppRunner::onCpuResponse(Packet &pkt)
{
    assert(_cpuInFlight > 0);
    --_cpuInFlight;
    issueCpuOp(static_cast<unsigned>(pkt.requestor));
}

void
AppRunner::hostPartDone()
{
    assert(_hostPartsPending > 0);
    if (--_hostPartsPending > 0)
        return;

    // Host phase finished; run the kernel that follows it, if any.
    if (_phaseIdx < _trace.kernels.size()) {
        startKernel(_phaseIdx);
    } else {
        _done = true;
    }
}

void
AppRunner::startPhase(std::size_t phase_idx)
{
    _phaseIdx = phase_idx;
    const HostPhase &phase = _trace.hostPhases[phase_idx];

    // Two host-part streams run concurrently: the CPU op stream (two
    // logical cores) and the DMA stream.
    _hostPartsPending = 2;
    _nextCpuOp = 0;
    _cpuInFlight = 0;

    if (phase.cpuOps.empty()) {
        hostPartDone();
    } else {
        issueCpuOp(0);
        if (phase.cpuOps.size() > 1)
            issueCpuOp(1);
        if (_cpuInFlight == 0)
            hostPartDone();
    }

    if (phase.dmaOps.empty()) {
        hostPartDone();
    } else {
        // Queue everything; completion fires on the final op.
        for (std::size_t i = 0; i < phase.dmaOps.size(); ++i) {
            auto [line_addr, is_write] = phase.dmaOps[i];
            DmaEngine::DoneFunc done;
            if (i == phase.dmaOps.size() - 1)
                done = [this] { hostPartDone(); };
            if (is_write)
                _dma->writeRange(line_addr, 1, 0xAB, std::move(done));
            else
                _dma->readRange(line_addr, 1, std::move(done));
        }
    }
}

void
AppRunner::startKernel(std::size_t kernel_idx)
{
    const auto &kernel = _trace.kernels[kernel_idx];
    const unsigned wfs_per_cu = _trace.profile.wfsPerCu;
    unsigned pending_cus = static_cast<unsigned>(_cores.size());

    auto cu_done = std::make_shared<unsigned>(pending_cus);
    for (unsigned cu = 0; cu < _cores.size(); ++cu) {
        std::vector<WfTrace> cu_traces;
        for (unsigned w = 0; w < wfs_per_cu; ++w) {
            std::size_t idx = cu * wfs_per_cu + w;
            if (idx < kernel.size())
                cu_traces.push_back(kernel[idx]);
        }
        _cores[cu]->launch(std::move(cu_traces),
                           [this, cu_done, kernel_idx] {
                               if (--*cu_done == 0)
                                   startPhase(kernel_idx + 1);
                           });
    }
}

AppResult
AppRunner::run()
{
    AppResult result;
    auto t0 = std::chrono::steady_clock::now();

    startPhase(0);
    // Generous bound; applications always terminate on a correct
    // protocol.
    _sys.eventq().run(Tick(4) * 1'000'000'000);

    auto t1 = std::chrono::steady_clock::now();
    result.completed = _done;
    result.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    result.ticks = _sys.eventq().curTick();
    result.events = _sys.eventq().eventsExecuted();
    for (const auto &core : _cores)
        result.instructions += core->instructionsExecuted();
    return result;
}

} // namespace drf
