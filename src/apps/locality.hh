/**
 * @file
 * Data-locality characterization after Koo et al., as used for Fig. 6.
 *
 * Cache-line usage between wavefronts is classified as:
 *  - streaming: the line is touched exactly once (one WF, one access),
 *  - intra-WF:  reused, but only ever by one wavefront,
 *  - inter-WF:  reused by several wavefronts, each touching it once,
 *  - mixed-WF:  reused both within and across wavefronts.
 *
 * A coalesced vector access (several lanes of one instruction hitting
 * one line) counts as a single touch, matching how a GPU actually
 * presents it to the cache.
 */

#ifndef DRF_APPS_LOCALITY_HH
#define DRF_APPS_LOCALITY_HH

#include <cstdint>
#include <map>
#include <string>

#include "apps/app_trace.hh"

namespace drf
{

/** Fig. 6 breakdown for one application. */
struct LocalityBreakdown
{
    std::uint64_t streaming = 0;
    std::uint64_t intraWf = 0;
    std::uint64_t interWf = 0;
    std::uint64_t mixedWf = 0;

    std::uint64_t total() const
    {
        return streaming + intraWf + interWf + mixedWf;
    }

    double frac(std::uint64_t part) const
    {
        return total() == 0
            ? 0.0 : static_cast<double>(part) / total();
    }
};

/**
 * Classify every line touched by @p trace's GPU kernels.
 */
LocalityBreakdown profileLocality(const AppTrace &trace,
                                  unsigned line_bytes);

} // namespace drf

#endif // DRF_APPS_LOCALITY_HH
