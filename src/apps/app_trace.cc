#include "apps/app_trace.hh"

#include <algorithm>
#include <cassert>

namespace drf
{

namespace
{

/** Per-app region layout derived from the profile. */
struct Layout
{
    Addr syncBase;     ///< a handful of atomic locations
    Addr controlBase;  ///< host-CPU control block (args, doorbells)
    Addr interBase;    ///< inter-WF rotation data
    std::uint64_t interBytes;
    Addr mixedBase;    ///< mixed-WF uniformly shared data
    std::uint64_t mixedBytes;
    Addr privateBase;  ///< per-WF intra-WF data
    std::uint64_t privateBytesPerWf;
    Addr streamBase;   ///< fresh lines for streaming accesses

    /** Whole host-visible shared region (inter + mixed halves). */
    Addr sharedBase() const { return interBase; }
    std::uint64_t sharedBytes() const { return interBytes + mixedBytes; }
};

Layout
makeLayout(const AppProfile &p, unsigned total_wfs, Addr region_base,
           unsigned line_bytes)
{
    Layout l;
    l.syncBase = region_base;
    // The host's own control block lives on lines the GPU and DMA never
    // touch: real launch queues and kernel-argument blocks are not the
    // GPU's data region. This keeps the host CPU's directory footprint
    // realistic (CPU-only lines).
    l.controlBase = region_base + 2 * line_bytes;
    // The inter-WF rotation and the mixed-WF pool use disjoint halves
    // of the shared region so the two locality classes stay separable.
    l.interBase = region_base + 4 * line_bytes;
    // Large enough that one wavefront's rotation never revisits a line
    // (revisits would turn inter-WF reuse into mixed-WF reuse).
    l.interBytes = std::max<std::uint64_t>(
        p.workingSetBytes / 4,
        static_cast<std::uint64_t>(p.memInstrsPerWf) * p.kernels *
            line_bytes);
    l.mixedBase = l.interBase + l.interBytes;
    l.mixedBytes = std::max<std::uint64_t>(p.workingSetBytes / 4,
                                           2 * line_bytes);
    l.privateBase = l.mixedBase + l.mixedBytes;
    l.privateBytesPerWf =
        std::max<std::uint64_t>(p.workingSetBytes / 2 / total_wfs,
                                2 * line_bytes);
    l.streamBase = l.privateBase +
                   static_cast<std::uint64_t>(total_wfs) *
                       l.privateBytesPerWf;
    return l;
}

} // namespace

AppTrace
generateAppTrace(const AppProfile &profile, unsigned num_cus,
                 Addr region_base, unsigned line_bytes)
{
    Random rng(profile.seed);
    const unsigned total_wfs = num_cus * profile.wfsPerCu;
    const Layout layout =
        makeLayout(profile, total_wfs, region_base, line_bytes);

    AppTrace trace;
    trace.profile = profile;
    trace.regionBase = region_base;

    // Per-WF streaming cursors persist across kernels so streamed lines
    // are globally fresh.
    std::vector<Addr> stream_cursor(total_wfs);
    for (unsigned wf = 0; wf < total_wfs; ++wf) {
        stream_cursor[wf] = layout.streamBase +
                            static_cast<Addr>(wf) * (1 << 20);
    }

    const double frac_sum = profile.streamingFrac + profile.intraWfFrac +
                            profile.interWfFrac + profile.mixedFrac;
    assert(frac_sum > 0.0);

    for (unsigned k = 0; k < profile.kernels; ++k) {
        std::vector<WfTrace> wf_traces(total_wfs);
        for (unsigned wf = 0; wf < total_wfs; ++wf) {
            WfTrace &wft = wf_traces[wf];
            Addr wf_private = layout.privateBase +
                              static_cast<Addr>(wf) *
                                  layout.privateBytesPerWf;

            // HeteroSync-style kernels wrap their work in acquire /
            // release synchronization.
            bool synced = profile.atomicFrac > 0.0;
            if (synced) {
                GpuInstr acq;
                acq.kind = GpuInstr::Kind::Atomic;
                acq.acquire = true;
                acq.laneAddrs.assign(1, layout.syncBase +
                                            4 * rng.below(8));
                wft.push_back(acq);
            }

            for (unsigned m = 0; m < profile.memInstrsPerWf; ++m) {
                // Front-end work between memory instructions.
                for (unsigned a = 0; a < profile.aluPerMem; ++a)
                    wft.push_back(GpuInstr{});

                if (rng.real() < profile.atomicFrac) {
                    GpuInstr instr;
                    instr.kind = GpuInstr::Kind::Atomic;
                    instr.laneAddrs.assign(
                        1, layout.syncBase + 4 * rng.below(8));
                    wft.push_back(std::move(instr));
                    continue;
                }

                GpuInstr instr;
                instr.kind = rng.real() < profile.storeFrac
                                 ? GpuInstr::Kind::Store
                                 : GpuInstr::Kind::Load;
                instr.laneAddrs.assign(profile.lanes, invalidAddr);

                double roll = rng.real() * frac_sum;
                if (roll < profile.streamingFrac) {
                    // Coalesced access to a globally fresh line.
                    Addr base = stream_cursor[wf];
                    stream_cursor[wf] += line_bytes;
                    for (unsigned lane = 0; lane < profile.lanes; ++lane) {
                        instr.laneAddrs[lane] =
                            base + (lane * 4) % line_bytes;
                    }
                } else if (roll <
                           profile.streamingFrac + profile.intraWfFrac) {
                    // Reuse within this WF's private tile.
                    Addr base = wf_private +
                                line_bytes *
                                    rng.below(layout.privateBytesPerWf /
                                              line_bytes);
                    for (unsigned lane = 0; lane < profile.lanes; ++lane) {
                        instr.laneAddrs[lane] =
                            base + (lane * 4) % line_bytes;
                    }
                } else if (roll < profile.streamingFrac +
                                      profile.intraWfFrac +
                                      profile.interWfFrac) {
                    // Rotating slices of the shared region: every WF
                    // touches a given line about once, many WFs touch
                    // it. The per-kernel offset keeps later launches
                    // rotating forward instead of re-touching the same
                    // slice (which would look like intra-WF reuse).
                    std::uint64_t lines =
                        layout.interBytes / line_bytes;
                    std::uint64_t slice =
                        (static_cast<std::uint64_t>(wf) + m +
                         static_cast<std::uint64_t>(k) *
                             profile.memInstrsPerWf) %
                        lines;
                    Addr base = layout.interBase + slice * line_bytes;
                    for (unsigned lane = 0; lane < profile.lanes; ++lane) {
                        instr.laneAddrs[lane] =
                            base + (lane * 4) % line_bytes;
                    }
                } else {
                    // Mixed: uniform over the shared region.
                    Addr base =
                        layout.mixedBase +
                        line_bytes *
                            rng.below(layout.mixedBytes / line_bytes);
                    for (unsigned lane = 0; lane < profile.lanes; ++lane) {
                        instr.laneAddrs[lane] =
                            base + (lane * 4) % line_bytes;
                    }
                }
                wft.push_back(std::move(instr));
            }

            if (synced) {
                GpuInstr rel;
                rel.kind = GpuInstr::Kind::Atomic;
                rel.release = true;
                rel.laneAddrs.assign(1, layout.syncBase +
                                            4 * rng.below(8));
                wft.push_back(rel);
            }
        }
        trace.kernels.push_back(std::move(wf_traces));
    }

    // Host phases. Real GPU applications move their data with DMA bulk
    // transfers; the host CPU itself touches device-visible memory only
    // lightly (doorbells, a few result checks). Phase 0 initializes
    // device data by DMA; between kernels the host re-initializes a
    // slice of the shared region by DMA — writes to lines the GPU
    // cached, which is what drives probe-invalidations into the GPU L2;
    // the final phase reads results back.
    trace.hostPhases.resize(profile.kernels + 1);

    const unsigned init_lines = static_cast<unsigned>(
        std::min<std::uint64_t>(layout.sharedBytes() / line_bytes, 64));

    HostPhase &init = trace.hostPhases.front();
    if (profile.usesDma) {
        for (unsigned i = 0; i < init_lines; ++i) {
            init.dmaOps.emplace_back(
                layout.sharedBase() + static_cast<Addr>(i) * line_bytes,
                true);
        }
    }
    // A few cacheable host accesses to the control block: argument
    // setup and one doorbell.
    for (unsigned i = 0; i < 4; ++i) {
        Addr addr = layout.controlBase + rng.below(2 * line_bytes);
        init.cpuOps.emplace_back(addr, /*is_store=*/i == 0);
    }

    if (profile.hostReinitBetweenKernels) {
        for (unsigned k = 1; k < profile.kernels; ++k) {
            HostPhase &phase = trace.hostPhases[k];
            if (profile.usesDma) {
                for (unsigned i = 0; i < 12; ++i) {
                    Addr lineaddr =
                        layout.sharedBase() +
                        line_bytes *
                            rng.below(layout.sharedBytes() / line_bytes);
                    phase.dmaOps.emplace_back(lineaddr, rng.pct(75));
                }
            }
            // Occasional host peek at the control block between
            // launches.
            Addr addr = layout.controlBase + rng.below(2 * line_bytes);
            phase.cpuOps.emplace_back(addr, rng.pct(25));
        }
    }

    HostPhase &readback = trace.hostPhases.back();
    for (unsigned i = 0; i < 6; ++i) {
        Addr addr = layout.controlBase + rng.below(2 * line_bytes);
        readback.cpuOps.emplace_back(addr, false);
    }
    if (profile.usesDma) {
        for (unsigned i = 0; i < init_lines / 2 + 1; ++i) {
            readback.dmaOps.emplace_back(
                layout.sharedBase() + static_cast<Addr>(i) * line_bytes,
                false);
        }
    }

    return trace;
}

} // namespace drf
