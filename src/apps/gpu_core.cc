#include "apps/gpu_core.hh"

#include <cassert>

namespace drf
{

GpuCoreModel::GpuCoreModel(std::string name, EventQueue &eq,
                           const GpuCoreConfig &cfg, GpuL1Cache &l1,
                           RequestorId requestor_base)
    : SimObject(std::move(name), eq), _cfg(cfg), _l1(l1),
      _requestorBase(requestor_base), _stats(SimObject::name())
{
    _l1.bindCoreResponse([this](Packet &&pkt) {
        onResponse(pkt);
    });
}

void
GpuCoreModel::launch(std::vector<WfTrace> traces, DoneFunc on_done)
{
    assert(_activeWfs == 0 && "core already running a kernel");
    _onDone = std::move(on_done);
    _wfs.clear();
    _wfs.resize(traces.size());
    _activeWfs = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
        _wfs[i].trace = std::move(traces[i]);
        _wfs[i].id = static_cast<unsigned>(i);
        if (!_wfs[i].trace.empty()) {
            ++_activeWfs;
            // Launch skew: wavefronts do not start in the same cycle.
            scheduleAfter(static_cast<Tick>(i) * _cfg.stageLatency,
                          [this, i] { step(static_cast<unsigned>(i)); });
        }
    }
    if (_activeWfs == 0 && _onDone) {
        scheduleAfter(1, [this] {
            DoneFunc fn = std::move(_onDone);
            fn();
        });
    }
}

void
GpuCoreModel::wfFinished()
{
    assert(_activeWfs > 0);
    if (--_activeWfs == 0 && _onDone) {
        DoneFunc fn = std::move(_onDone);
        fn();
    }
}

void
GpuCoreModel::step(unsigned wf_idx)
{
    WfState &wf = _wfs[wf_idx];
    if (wf.pc >= wf.trace.size()) {
        wfFinished();
        return;
    }

    const GpuInstr &instr = wf.trace[wf.pc];
    ++wf.pc;
    ++_instrs;

    // Every instruction pays the front-end pipeline cost; this is the
    // structural reason application-based testing is slow.
    Tick front_end = _cfg.pipelineStages * _cfg.stageLatency;

    if (instr.kind == GpuInstr::Kind::Alu) {
        _stats.counter("alu_instrs").inc();
        scheduleAfter(front_end, [this, wf_idx] { step(wf_idx); });
        return;
    }

    scheduleAfter(front_end, [this, wf_idx, &instr] {
        WfState &wf2 = _wfs[wf_idx];
        wf2.pending = 0;
        for (unsigned lane = 0;
             lane < instr.laneAddrs.size() && lane < _cfg.lanes; ++lane) {
            Addr addr = instr.laneAddrs[lane];
            if (addr == invalidAddr)
                continue;

            Packet pkt;
            pkt.addr = addr;
            pkt.size = _cfg.accessBytes;
            pkt.requestor = _requestorBase + wf2.id * _cfg.lanes + lane;
            pkt.id = _nextId++;
            pkt.issueTick = curTick();
            pkt.acquire = instr.acquire;
            pkt.release = instr.release;

            switch (instr.kind) {
              case GpuInstr::Kind::Load:
                pkt.type = MsgType::LoadReq;
                _stats.counter("loads").inc();
                break;
              case GpuInstr::Kind::Store:
                pkt.type = MsgType::StoreReq;
                pkt.fillData(static_cast<std::uint8_t>(pkt.id),
                             _cfg.accessBytes);
                _stats.counter("stores").inc();
                break;
              case GpuInstr::Kind::Atomic:
                pkt.type = MsgType::AtomicReq;
                pkt.atomicOperand = 1;
                _stats.counter("atomics").inc();
                break;
              case GpuInstr::Kind::Alu:
                assert(false);
                break;
            }
            ++wf2.pending;
            _l1.coreRequest(std::move(pkt));
        }
        if (wf2.pending == 0) {
            // Fully predicated-off vector op.
            step(wf_idx);
        }
    });
}

void
GpuCoreModel::onResponse(Packet &pkt)
{
    unsigned wf_idx = (pkt.requestor - _requestorBase) / _cfg.lanes;
    WfState &wf = _wfs.at(wf_idx);
    assert(wf.pending > 0);
    if (--wf.pending == 0) {
        // Lockstep: the vector op completed; move on.
        step(wf_idx);
    }
}

} // namespace drf
