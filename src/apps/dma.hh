/**
 * @file
 * DMA engine: models host<->device copies going straight to the system
 * directory, the traffic that activates the directory's DMA transitions
 * — which, as the paper notes, neither the GPU nor the CPU tester
 * generates (Section IV.C).
 */

#ifndef DRF_APPS_DMA_HH
#define DRF_APPS_DMA_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "mem/msg.hh"
#include "mem/network.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/** Configuration of the DMA engine. */
struct DmaConfig
{
    unsigned lineBytes = 64;
    unsigned maxOutstanding = 4;
};

/**
 * A simple line-granularity DMA engine attached to the crossbar.
 */
class DmaEngine : public SimObject, public MsgReceiver
{
  public:
    using DoneFunc = std::function<void()>;

    DmaEngine(std::string name, EventQueue &eq, const DmaConfig &cfg,
              Crossbar &xbar, int endpoint, int dir_ep);

    /**
     * Queue a read of @p lines cache lines starting at @p base;
     * @p on_done fires when the last response arrives.
     */
    void readRange(Addr base, unsigned lines, DoneFunc on_done);

    /**
     * Queue a write of @p lines cache lines starting at @p base, filled
     * with @p fill; @p on_done fires when the last ack arrives.
     */
    void writeRange(Addr base, unsigned lines, std::uint8_t fill,
                    DoneFunc on_done);

    void recvMsg(Packet &pkt) override;

    bool idle() const { return _inFlight == 0 && _queue.empty(); }
    StatGroup &stats() { return _stats; }

  private:
    struct Op
    {
        bool isWrite;
        Addr addr;
        std::uint8_t fill;
        DoneFunc onDone; ///< set on the last op of a range only
    };

    void pump();

    DmaConfig _cfg;
    Crossbar &_xbar;
    int _endpoint;
    int _dirEndpoint;

    std::deque<Op> _queue;
    unsigned _inFlight = 0;
    PacketId _nextId = 1;
    std::map<PacketId, DoneFunc> _completions;
    StatGroup _stats;
};

} // namespace drf

#endif // DRF_APPS_DMA_HH
