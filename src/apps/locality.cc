#include "apps/locality.hh"

#include <set>
#include <unordered_map>

namespace drf
{

LocalityBreakdown
profileLocality(const AppTrace &trace, unsigned line_bytes)
{
    struct LineUse
    {
        std::uint64_t touches = 0;
        std::uint32_t maxPerWf = 0;
        std::unordered_map<std::uint32_t, std::uint32_t> perWf;
    };

    std::unordered_map<Addr, LineUse> lines;

    for (const auto &kernel : trace.kernels) {
        for (std::uint32_t wf = 0; wf < kernel.size(); ++wf) {
            // WF identity is stable across kernel launches: wavefront i
            // reuses wavefront i's tiles, so cross-kernel reuse of a
            // private tile is still intra-WF locality.
            std::uint32_t wf_id = wf;
            for (const auto &instr : kernel[wf]) {
                if (instr.kind == GpuInstr::Kind::Alu)
                    continue;
                // Coalesce: distinct lines touched by this instruction.
                std::set<Addr> touched;
                for (Addr addr : instr.laneAddrs) {
                    if (addr != invalidAddr)
                        touched.insert(lineAlign(addr, line_bytes));
                }
                for (Addr line : touched) {
                    LineUse &use = lines[line];
                    ++use.touches;
                    std::uint32_t &cnt = use.perWf[wf_id];
                    ++cnt;
                    if (cnt > use.maxPerWf)
                        use.maxPerWf = cnt;
                }
            }
        }
    }

    // Weight each line class by its touch count so the breakdown
    // reflects where the *accesses* go (a handful of hot shared lines
    // matters more than it would under a per-line count).
    LocalityBreakdown breakdown;
    for (const auto &[line, use] : lines) {
        if (use.touches == 1) {
            breakdown.streaming += use.touches;
        } else if (use.perWf.size() == 1) {
            breakdown.intraWf += use.touches;
        } else if (use.maxPerWf == 1) {
            breakdown.interWf += use.touches;
        } else {
            breakdown.mixedWf += use.touches;
        }
    }
    return breakdown;
}

} // namespace drf
