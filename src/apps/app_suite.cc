#include "apps/app_suite.hh"

#include <cassert>

namespace drf
{

namespace
{

AppProfile
profile(const char *name, const char *suite, double streaming,
        double intra, double inter, double mixed, double store_frac,
        double atomic_frac, unsigned mem_instrs, unsigned alu_per_mem,
        std::uint64_t working_set, unsigned kernels)
{
    AppProfile p;
    p.name = name;
    p.suite = suite;
    p.streamingFrac = streaming;
    p.intraWfFrac = intra;
    p.interWfFrac = inter;
    p.mixedFrac = mixed;
    p.storeFrac = store_frac;
    p.atomicFrac = atomic_frac;
    p.memInstrsPerWf = mem_instrs;
    p.aluPerMem = alu_per_mem;
    p.workingSetBytes = working_set;
    p.kernels = kernels;
    return p;
}

} // namespace

std::vector<AppProfile>
makeAppSuite(std::uint64_t base_seed)
{
    std::vector<AppProfile> suite;

    // ---- AMD compute applications ------------------------------------
    // HACC: N-body; largely streaming particle sweeps with some shared
    // force accumulation.
    suite.push_back(profile("HACC", "compute", 0.60, 0.20, 0.10, 0.10,
                            0.35, 0.00, 220, 12, 128 << 10, 2));
    // Square: the canonical element-wise kernel; almost pure streaming.
    suite.push_back(profile("Square", "compute", 0.90, 0.05, 0.03, 0.02,
                            0.50, 0.00, 160, 4, 64 << 10, 1));
    // FFT: butterfly exchanges — strong inter-WF reuse.
    suite.push_back(profile("FFT", "compute", 0.20, 0.25, 0.40, 0.15,
                            0.45, 0.00, 260, 10, 64 << 10, 3));
    suite.push_back(profile("LUD", "compute", 0.15, 0.35, 0.30, 0.20,
                            0.40, 0.00, 240, 14, 48 << 10, 3));
    suite.push_back(profile("SpMV", "compute", 0.45, 0.15, 0.15, 0.25,
                            0.20, 0.00, 200, 8, 96 << 10, 1));
    suite.push_back(profile("BFS", "compute", 0.30, 0.10, 0.20, 0.40,
                            0.25, 0.01, 180, 8, 96 << 10, 4));
    suite.push_back(profile("Histogram", "compute", 0.35, 0.10, 0.15,
                            0.40, 0.55, 0.02, 180, 6, 32 << 10, 1));
    suite.push_back(profile("Scan", "compute", 0.40, 0.25, 0.25, 0.10,
                            0.50, 0.00, 200, 6, 64 << 10, 2));
    suite.push_back(profile("Reduction", "compute", 0.50, 0.20, 0.22,
                            0.08, 0.35, 0.01, 180, 6, 64 << 10, 2));
    suite.push_back(profile("MatMul", "compute", 0.25, 0.40, 0.25, 0.10,
                            0.30, 0.00, 280, 16, 96 << 10, 1));

    // ---- HeteroSync: fine-grained synchronization microbenchmarks ----
    suite.push_back(profile("HS-Mutex", "heterosync", 0.05, 0.20, 0.30,
                            0.45, 0.45, 0.20, 160, 4, 16 << 10, 2));
    suite.push_back(profile("HS-Barrier", "heterosync", 0.05, 0.25, 0.35,
                            0.35, 0.40, 0.15, 160, 4, 16 << 10, 3));
    suite.push_back(profile("HS-Semaphore", "heterosync", 0.05, 0.20,
                            0.30, 0.45, 0.45, 0.18, 160, 4, 16 << 10, 2));
    suite.push_back(profile("HS-FA", "heterosync", 0.05, 0.15, 0.30,
                            0.50, 0.40, 0.30, 160, 4, 16 << 10, 2));
    suite.push_back(profile("HS-Tree", "heterosync", 0.10, 0.25, 0.35,
                            0.30, 0.40, 0.12, 180, 5, 24 << 10, 3));

    // ---- MI (machine intelligence) suites -----------------------------
    suite.push_back(profile("DNN-Conv", "mi", 0.35, 0.40, 0.15, 0.10,
                            0.30, 0.00, 300, 18, 128 << 10, 2));
    suite.push_back(profile("DNN-Pool", "mi", 0.60, 0.25, 0.10, 0.05,
                            0.35, 0.00, 200, 8, 96 << 10, 1));
    suite.push_back(profile("DNN-FC", "mi", 0.40, 0.30, 0.20, 0.10,
                            0.30, 0.00, 260, 14, 128 << 10, 2));
    suite.push_back(profile("DNN-ReLU", "mi", 0.85, 0.08, 0.04, 0.03,
                            0.50, 0.00, 150, 4, 64 << 10, 1));
    suite.push_back(profile("DNN-BN", "mi", 0.45, 0.20, 0.25, 0.10,
                            0.45, 0.02, 200, 8, 64 << 10, 2));
    suite.push_back(profile("DB-GEMM", "mi", 0.25, 0.45, 0.20, 0.10,
                            0.30, 0.00, 320, 18, 128 << 10, 1));
    suite.push_back(profile("DB-RNN", "mi", 0.30, 0.30, 0.25, 0.15,
                            0.35, 0.01, 260, 12, 96 << 10, 4));
    suite.push_back(profile("MIO-Conv", "mi", 0.35, 0.40, 0.15, 0.10,
                            0.30, 0.00, 300, 16, 128 << 10, 2));
    suite.push_back(profile("MIO-Pool", "mi", 0.55, 0.25, 0.12, 0.08,
                            0.35, 0.00, 200, 8, 96 << 10, 1));
    // Interac and CM: the atomic-heavy MI applications that dominate the
    // union coverage in Fig. 9.
    suite.push_back(profile("Interac", "mi", 0.10, 0.15, 0.30, 0.45,
                            0.45, 0.25, 220, 6, 32 << 10, 3));
    suite.push_back(profile("CM", "mi", 0.10, 0.20, 0.30, 0.40, 0.40,
                            0.22, 220, 6, 32 << 10, 3));

    assert(suite.size() == 26);
    for (std::size_t i = 0; i < suite.size(); ++i)
        suite[i].seed = base_seed + 1000 + i;
    return suite;
}

AppProfile
appByName(const std::string &name, std::uint64_t base_seed)
{
    for (const auto &p : makeAppSuite(base_seed)) {
        if (p.name == name)
            return p;
    }
    assert(false && "unknown application name");
    return AppProfile{};
}

} // namespace drf
