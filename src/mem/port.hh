/**
 * @file
 * Queued, order-preserving message ports.
 *
 * A MsgPort models one direction of a link between two components. Sends
 * are delivered through the event queue after the port's latency; delivery
 * order always matches send order even if callers pass varying extra
 * delays (point-to-point FIFO ordering, which coherence protocols rely
 * on).
 */

#ifndef DRF_MEM_PORT_HH
#define DRF_MEM_PORT_HH

#include <cstdint>
#include <string>

#include "mem/msg.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "trace/recorder.hh"

namespace drf
{

/** Interface implemented by anything that can receive messages. */
class MsgReceiver
{
  public:
    virtual ~MsgReceiver() = default;

    /**
     * Handle one delivered message. The referenced packet is owned by
     * the caller and dies when the call returns; the receiver may
     * mutate it or move from it, but must not retain the reference.
     * (Reference passing keeps the hot delivery path down to a single
     * packet copy; see MsgPort::send.)
     */
    virtual void recvMsg(Packet &pkt) = 0;
};

/**
 * One-directional, latency-modelled, order-preserving port.
 */
class MsgPort
{
  public:
    /**
     * @param name    Port name for tracing.
     * @param eq      Event queue used for delivery.
     * @param latency Fixed delivery latency in ticks (>= 1 keeps
     *                request/response phases distinct).
     */
    MsgPort(std::string name, EventQueue &eq, Tick latency)
        : _name(std::move(name)), _eq(eq), _latency(latency)
    {}

    /** Connect the receiving end. Must be called before any send. */
    void bind(MsgReceiver &receiver) { _receiver = &receiver; }

    /** True once bound to a receiver. */
    bool bound() const { return _receiver != nullptr; }

    /**
     * Send @p pkt; it arrives after the port latency plus @p extra_delay,
     * but never before any previously sent message (FIFO order).
     *
     * The packet is copied exactly once, into the delivery closure; the
     * receiver gets a mutable reference to that copy (see
     * MsgReceiver::recvMsg).
     */
    void send(const Packet &pkt, Tick extra_delay = 0);

    /** Messages sent through this port so far. */
    std::uint64_t sentCount() const { return _sent; }

    /**
     * Record every delivery into @p trace, tagged as @p src -> @p dst
     * (crossbar endpoint ids). nullptr turns recording back off.
     */
    void
    setTrace(TraceRecorder *trace, int src, int dst)
    {
        _trace = trace;
        _traceSrc = src;
        _traceDst = dst;
    }

    const std::string &name() const { return _name; }
    Tick latency() const { return _latency; }

  private:
    std::string _name;
    EventQueue &_eq;
    Tick _latency;
    MsgReceiver *_receiver = nullptr;
    Tick _lastDelivery = 0;
    std::uint64_t _sent = 0;
    TraceRecorder *_trace = nullptr;
    int _traceSrc = -1;
    int _traceDst = -1;
};

} // namespace drf

#endif // DRF_MEM_PORT_HH
