/**
 * @file
 * Coherence message vocabulary of the whole system.
 *
 * One Packet type carries every message class: core-level requests into
 * the GPU L1, VIPER L1<->L2 traffic (Tables I and II of the paper),
 * L2<->directory traffic, CPU core-pair<->directory traffic, DMA, and the
 * directory<->DRAM interface. Using a single flat vocabulary keeps ports
 * and the crossbar generic, exactly like Ruby's MessageBuffer payloads.
 *
 * The Packet is a flat, trivially-copyable value: the payload is an
 * inline LineData array sized by @c dataLen (0 = no payload) and the
 * byte-enable mask is a ByteMask bitmask. Nothing in a Packet touches
 * the heap, so moving one through a port, the crossbar, and into
 * controller TBE state never allocates; a port-delivery closure
 * (receiver pointer + Packet) fits in one recycled event block.
 */

#ifndef DRF_MEM_MSG_HH
#define DRF_MEM_MSG_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <type_traits>

#include "mem/line.hh"
#include "mem/scope.hh"
#include "sim/types.hh"

namespace drf
{

/** Every message type exchanged in the system. */
enum class MsgType
{
    // Core (tester thread / GPU core model) <-> GPU L1
    LoadReq,
    StoreReq,
    AtomicReq,
    LoadResp,
    StoreAck,
    AtomicResp,

    // GPU L1 <-> GPU L2 (VIPER TCP <-> TCC)
    RdBlk,        ///< read miss fetch (L2 event RdBlk)
    WrThrough,    ///< write-through with byte mask (L2 event WrVicBlk)
    GpuAtomic,    ///< atomic forwarded below L1 (L2 event Atomic)
    TccAck,       ///< data / atomic response to L1 (L1 event TCC_Ack)
    TccAckWB,     ///< write-through completion to L1 (L1 event TCC_AckWB)

    // GPU L2 <-> directory
    FetchBlk,     ///< L2 read miss fetch from directory
    WrMem,        ///< L2 write-through toward memory
    DirAtomic,    ///< atomic performed at the directory
    DirData,      ///< refill data to L2 (L2 event Data)
    DirWBAck,     ///< write-through completion to L2 (L2 event WBAck)
    AtomicD,      ///< atomic done, carries old value (L2 event AtomicD)
    AtomicND,     ///< atomic not done, retry (L2 event AtomicND)
    PrbInv,       ///< probe-invalidate a remote L2 (L2 event PrbInv)
    InvAck,       ///< probe completion back to directory

    // CPU core-pair cache <-> directory (MOESI_AMD_Base-like)
    Gets,             ///< read for shared
    Getx,             ///< read for exclusive / upgrade
    Putx,             ///< dirty writeback
    CpuData,          ///< data grant to CPU cache
    CpuWBAck,         ///< writeback ack to CPU cache
    CpuPrbInv,        ///< invalidate probe to CPU cache
    CpuPrbDowngrade,  ///< downgrade-to-shared probe to CPU cache
    CpuInvAck,        ///< probe ack (may carry dirty data)

    // DMA engine <-> directory
    DmaRead,
    DmaWrite,
    DmaReadResp,
    DmaWriteResp,

    // Directory <-> DRAM
    MemRead,
    MemWrite,
    MemData,
    MemWBAck,
};

/** Human-readable message type name (for tracing and error reports). */
const char *msgTypeName(MsgType type);

/**
 * One message. Line-granularity messages carry a full line of inline
 * data plus a byte-enable bitmask (VIPER's per-byte dirty masks);
 * core-level messages carry @c size payload bytes at @c addr.
 *
 * Trivially copyable by design: see the file comment.
 */
struct Packet
{
    MsgType type{MsgType::LoadReq};

    /** Byte address of the access (core level) or line base. */
    Addr addr = 0;

    /** Access size in bytes for core-level requests. */
    unsigned size = 0;

    /** Valid payload bytes in @c data (0 = no payload). */
    std::uint16_t dataLen = 0;

    /** Byte-enable bitmask for line writes (fullLineMask = all bytes). */
    ByteMask mask = 0;

    /** Acquire semantics (load-acquire / atomic-acquire). */
    bool acquire = false;

    /** Release semantics (store-release / atomic-release). */
    bool release = false;

    /**
     * Synchronization scope of the acquire/release (None = unscoped,
     * conservative GPU-wide semantics). Fits the padding hole after the
     * flag pair, so the Packet layout is unchanged.
     */
    Scope scope = Scope::None;

    /** Fetch-add operand for atomics. */
    std::uint64_t atomicOperand = 0;

    /** Old value returned by an atomic. */
    std::uint64_t atomicResult = 0;

    /** Ownership granted with CpuData: 0 = none, 1 = shared, 2 = M. */
    int grant = 0;

    /** Originating requestor (tester thread, CPU core, DMA engine). */
    RequestorId requestor = 0;

    /** Unique transaction id, preserved across the request's lifetime. */
    PacketId id = 0;

    /** Tick at which the original request was issued (watchdog). */
    Tick issueTick = 0;

    /** Crossbar endpoint that sent this message (for responses). */
    int srcEndpoint = -1;

    /** Inline payload; only the first @c dataLen bytes are meaningful. */
    LineData data{};

    /** True if the packet carries a payload. */
    bool hasData() const { return dataLen != 0; }

    /** Drop the payload and mask (acks and other data-free responses). */
    void
    clearData()
    {
        dataLen = 0;
        mask = 0;
    }

    /** Copy @p n bytes from @p src into the payload. */
    void
    setData(const std::uint8_t *src, unsigned n)
    {
        assert(n <= kLineBytes);
        for (unsigned i = 0; i < n; ++i)
            data[i] = src[i];
        dataLen = static_cast<std::uint16_t>(n);
    }

    /** Carry a full line. */
    void
    setLine(const LineData &line)
    {
        data = line;
        dataLen = static_cast<std::uint16_t>(kLineBytes);
    }

    /** Fill the first @p n payload bytes with @p byte. */
    void
    fillData(std::uint8_t byte, unsigned n)
    {
        assert(n <= kLineBytes);
        for (unsigned i = 0; i < n; ++i)
            data[i] = byte;
        dataLen = static_cast<std::uint16_t>(n);
    }

    /** Little-endian encode @p value into an @p n byte payload. */
    void
    setValueLE(std::uint64_t value, unsigned n)
    {
        assert(n <= 8 && n <= kLineBytes);
        for (unsigned i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>(value >> (8 * i));
        dataLen = static_cast<std::uint16_t>(n);
    }

    /** Little-endian decode of the payload (@c dataLen bytes). */
    std::uint64_t
    valueLE() const
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < dataLen && i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
        return v;
    }

    /**
     * Short one-line description. Built on demand only — every call
     * site is a failure or trace path, so the hot loop never pays for
     * string formatting.
     */
    std::string describe() const;
};

static_assert(std::is_trivially_copyable_v<Packet>,
              "Packet must stay a flat POD: the zero-allocation message "
              "path depends on it");

} // namespace drf

#endif // DRF_MEM_MSG_HH
