/**
 * @file
 * Coherence message vocabulary of the whole system.
 *
 * One Packet type carries every message class: core-level requests into
 * the GPU L1, VIPER L1<->L2 traffic (Tables I and II of the paper),
 * L2<->directory traffic, CPU core-pair<->directory traffic, DMA, and the
 * directory<->DRAM interface. Using a single flat vocabulary keeps ports
 * and the crossbar generic, exactly like Ruby's MessageBuffer payloads.
 */

#ifndef DRF_MEM_MSG_HH
#define DRF_MEM_MSG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace drf
{

/** Every message type exchanged in the system. */
enum class MsgType
{
    // Core (tester thread / GPU core model) <-> GPU L1
    LoadReq,
    StoreReq,
    AtomicReq,
    LoadResp,
    StoreAck,
    AtomicResp,

    // GPU L1 <-> GPU L2 (VIPER TCP <-> TCC)
    RdBlk,        ///< read miss fetch (L2 event RdBlk)
    WrThrough,    ///< write-through with byte mask (L2 event WrVicBlk)
    GpuAtomic,    ///< atomic forwarded below L1 (L2 event Atomic)
    TccAck,       ///< data / atomic response to L1 (L1 event TCC_Ack)
    TccAckWB,     ///< write-through completion to L1 (L1 event TCC_AckWB)

    // GPU L2 <-> directory
    FetchBlk,     ///< L2 read miss fetch from directory
    WrMem,        ///< L2 write-through toward memory
    DirAtomic,    ///< atomic performed at the directory
    DirData,      ///< refill data to L2 (L2 event Data)
    DirWBAck,     ///< write-through completion to L2 (L2 event WBAck)
    AtomicD,      ///< atomic done, carries old value (L2 event AtomicD)
    AtomicND,     ///< atomic not done, retry (L2 event AtomicND)
    PrbInv,       ///< probe-invalidate a remote L2 (L2 event PrbInv)
    InvAck,       ///< probe completion back to directory

    // CPU core-pair cache <-> directory (MOESI_AMD_Base-like)
    Gets,             ///< read for shared
    Getx,             ///< read for exclusive / upgrade
    Putx,             ///< dirty writeback
    CpuData,          ///< data grant to CPU cache
    CpuWBAck,         ///< writeback ack to CPU cache
    CpuPrbInv,        ///< invalidate probe to CPU cache
    CpuPrbDowngrade,  ///< downgrade-to-shared probe to CPU cache
    CpuInvAck,        ///< probe ack (may carry dirty data)

    // DMA engine <-> directory
    DmaRead,
    DmaWrite,
    DmaReadResp,
    DmaWriteResp,

    // Directory <-> DRAM
    MemRead,
    MemWrite,
    MemData,
    MemWBAck,
};

/** Human-readable message type name (for tracing and error reports). */
const char *msgTypeName(MsgType type);

/**
 * One message. Line-granularity messages carry a full line of data plus a
 * byte-enable mask (VIPER's per-byte dirty masks); core-level messages
 * carry @c size bytes at @c addr.
 */
struct Packet
{
    MsgType type{MsgType::LoadReq};

    /** Byte address of the access (core level) or line base. */
    Addr addr = 0;

    /** Access size in bytes for core-level requests. */
    unsigned size = 0;

    /** Line-sized payload for line messages; access-sized otherwise. */
    std::vector<std::uint8_t> data;

    /** Byte-enable mask, parallel to a full line (empty => all bytes). */
    std::vector<std::uint8_t> mask;

    /** Acquire semantics (load-acquire / atomic-acquire). */
    bool acquire = false;

    /** Release semantics (store-release / atomic-release). */
    bool release = false;

    /** Fetch-add operand for atomics. */
    std::uint64_t atomicOperand = 0;

    /** Old value returned by an atomic. */
    std::uint64_t atomicResult = 0;

    /** Ownership granted with CpuData: 0 = none, 1 = shared, 2 = M. */
    int grant = 0;

    /** Originating requestor (tester thread, CPU core, DMA engine). */
    RequestorId requestor = 0;

    /** Unique transaction id, preserved across the request's lifetime. */
    PacketId id = 0;

    /** Tick at which the original request was issued (watchdog). */
    Tick issueTick = 0;

    /** Crossbar endpoint that sent this message (for responses). */
    int srcEndpoint = -1;

    /** Short one-line description for traces. */
    std::string describe() const;
};

} // namespace drf

#endif // DRF_MEM_MSG_HH
