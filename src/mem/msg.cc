#include "mem/msg.hh"

#include <sstream>

namespace drf
{

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::LoadReq: return "LoadReq";
      case MsgType::StoreReq: return "StoreReq";
      case MsgType::AtomicReq: return "AtomicReq";
      case MsgType::LoadResp: return "LoadResp";
      case MsgType::StoreAck: return "StoreAck";
      case MsgType::AtomicResp: return "AtomicResp";
      case MsgType::RdBlk: return "RdBlk";
      case MsgType::WrThrough: return "WrThrough";
      case MsgType::GpuAtomic: return "GpuAtomic";
      case MsgType::TccAck: return "TccAck";
      case MsgType::TccAckWB: return "TccAckWB";
      case MsgType::FetchBlk: return "FetchBlk";
      case MsgType::WrMem: return "WrMem";
      case MsgType::DirAtomic: return "DirAtomic";
      case MsgType::DirData: return "DirData";
      case MsgType::DirWBAck: return "DirWBAck";
      case MsgType::AtomicD: return "AtomicD";
      case MsgType::AtomicND: return "AtomicND";
      case MsgType::PrbInv: return "PrbInv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::Gets: return "Gets";
      case MsgType::Getx: return "Getx";
      case MsgType::Putx: return "Putx";
      case MsgType::CpuData: return "CpuData";
      case MsgType::CpuWBAck: return "CpuWBAck";
      case MsgType::CpuPrbInv: return "CpuPrbInv";
      case MsgType::CpuPrbDowngrade: return "CpuPrbDowngrade";
      case MsgType::CpuInvAck: return "CpuInvAck";
      case MsgType::DmaRead: return "DmaRead";
      case MsgType::DmaWrite: return "DmaWrite";
      case MsgType::DmaReadResp: return "DmaReadResp";
      case MsgType::DmaWriteResp: return "DmaWriteResp";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::MemData: return "MemData";
      case MsgType::MemWBAck: return "MemWBAck";
    }
    return "Unknown";
}

std::string
Packet::describe() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " addr=0x" << std::hex << addr << std::dec
       << " id=" << id << " req=" << requestor;
    if (acquire)
        os << " acq";
    if (release)
        os << " rel";
    return os.str();
}

} // namespace drf
