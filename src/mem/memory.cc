#include "mem/memory.hh"

#include <cassert>

#include "sim/logger.hh"

namespace drf
{

SimpleMemory::SimpleMemory(std::string name, EventQueue &eq,
                           unsigned line_bytes, Tick latency)
    : SimObject(std::move(name), eq), _lineBytes(line_bytes),
      _latency(latency), _stats(SimObject::name())
{
}

LineData &
SimpleMemory::line(Addr line_addr)
{
    // operator[] value-initializes (zeroes) a fresh line.
    return _store[line_addr];
}

void
SimpleMemory::recvMsg(Packet pkt)
{
    assert(_respond && "memory response callback not bound");
    assert(lineAlign(pkt.addr, _lineBytes) == pkt.addr &&
           "memory accessed at non-line granularity");

    if (pkt.type == MsgType::MemRead) {
        _stats.counter("reads").inc();
        Packet resp = pkt;
        resp.type = MsgType::MemData;
        resp.setLine(line(pkt.addr));
        scheduleAfter(_latency, [this, resp]() mutable {
            _respond(std::move(resp));
        });
    } else if (pkt.type == MsgType::MemWrite) {
        _stats.counter("writes").inc();
        LineData &stored = line(pkt.addr);
        assert(pkt.dataLen == _lineBytes);
        for (unsigned i = 0; i < _lineBytes; ++i) {
            if (maskTest(pkt.mask, i))
                stored[i] = pkt.data[i];
        }
        Packet resp = pkt;
        resp.type = MsgType::MemWBAck;
        resp.clearData();
        scheduleAfter(_latency, [this, resp]() mutable {
            _respond(std::move(resp));
        });
    } else {
        assert(false && "unexpected message type at memory");
    }
}

LineData
SimpleMemory::peekLine(Addr line_addr) const
{
    auto it = _store.find(line_addr);
    if (it == _store.end())
        return LineData{};
    return it->second;
}

void
SimpleMemory::pokeBytes(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        Addr byte_addr = addr + i;
        Addr base = lineAlign(byte_addr, _lineBytes);
        line(base)[lineOffset(byte_addr, _lineBytes)] = bytes[i];
    }
}

} // namespace drf
