#include "mem/memory.hh"

#include <cassert>

#include "sim/logger.hh"

namespace drf
{

SimpleMemory::SimpleMemory(std::string name, EventQueue &eq,
                           unsigned line_bytes, Tick latency)
    : SimObject(std::move(name), eq), _lineBytes(line_bytes),
      _latency(latency), _stats(SimObject::name()),
      _cReads(&_stats.counter("reads")),
      _cWrites(&_stats.counter("writes"))
{
    _store.reserve(1024);
}

LineData &
SimpleMemory::line(Addr line_addr)
{
    // operator[] value-initializes (zeroes) a fresh line.
    return _store[line_addr];
}

void
SimpleMemory::recvMsg(Packet &pkt)
{
    assert(_respond && "memory response callback not bound");
    assert(lineAlign(pkt.addr, _lineBytes) == pkt.addr &&
           "memory accessed at non-line granularity");

    // The request packet is turned into the response in place; the only
    // copy is the one into the response closure.
    if (pkt.type == MsgType::MemRead) {
        _cReads->inc();
        pkt.type = MsgType::MemData;
        pkt.setLine(line(pkt.addr));
    } else if (pkt.type == MsgType::MemWrite) {
        _cWrites->inc();
        LineData &stored = line(pkt.addr);
        assert(pkt.dataLen == _lineBytes);
        for (unsigned i = 0; i < _lineBytes; ++i) {
            if (maskTest(pkt.mask, i))
                stored[i] = pkt.data[i];
        }
        pkt.type = MsgType::MemWBAck;
        pkt.clearData();
    } else {
        assert(false && "unexpected message type at memory");
        return;
    }
    scheduleAfter(_latency, [this, resp = pkt]() mutable {
        _respond(std::move(resp));
    });
}

LineData
SimpleMemory::peekLine(Addr line_addr) const
{
    const LineData *stored = _store.find(line_addr);
    if (stored == nullptr)
        return LineData{};
    return *stored;
}

void
SimpleMemory::pokeBytes(Addr addr, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        Addr byte_addr = addr + i;
        Addr base = lineAlign(byte_addr, _lineBytes);
        line(base)[lineOffset(byte_addr, _lineBytes)] = bytes[i];
    }
}

} // namespace drf
