#include "mem/scope.hh"

namespace drf
{

const char *
scopeName(Scope s)
{
    switch (s) {
      case Scope::None: return "none";
      case Scope::Cta: return "cta";
      case Scope::Gpu: return "gpu";
    }
    return "?";
}

std::optional<Scope>
parseScope(const std::string &name)
{
    for (Scope s : {Scope::None, Scope::Cta, Scope::Gpu}) {
        if (name == scopeName(s))
            return s;
    }
    return std::nullopt;
}

const char *
scopeModeName(ScopeMode m)
{
    switch (m) {
      case ScopeMode::None: return "none";
      case ScopeMode::Scoped: return "scoped";
      case ScopeMode::Racy: return "racy";
    }
    return "?";
}

std::optional<ScopeMode>
parseScopeMode(const std::string &name)
{
    for (ScopeMode m :
         {ScopeMode::None, ScopeMode::Scoped, ScopeMode::Racy}) {
        if (name == scopeModeName(m))
            return m;
    }
    return std::nullopt;
}

} // namespace drf
