/**
 * @file
 * Set-associative cache data array with LRU replacement and per-byte
 * dirty masks (VIPER performs stores immediately using per-byte masks).
 *
 * The array is protocol-agnostic: controllers store their coherence state
 * in each entry's integer @c state field and interpret it themselves.
 */

#ifndef DRF_MEM_CACHE_ARRAY_HH
#define DRF_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/line.hh"
#include "sim/types.hh"

namespace drf
{

/** One cache line: tag, controller-defined state, data, dirty mask. */
struct CacheEntry
{
    bool valid = false;
    Addr lineAddr = invalidAddr;
    int state = 0;
    LineData data{};
    ByteMask dirty = 0;         ///< per-byte dirty bitmask
    std::uint64_t lastUsed = 0; ///< LRU timestamp

    /** Mark every byte clean. */
    void clearDirty() { dirty = 0; }
};

/**
 * Parametric set-associative array.
 */
class CacheArray
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc      Associativity (ways per set).
     * @param line_bytes Line size (power of two).
     */
    CacheArray(std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes);

    unsigned lineBytes() const { return _lineBytes; }
    unsigned assoc() const { return _assoc; }
    std::uint64_t numSets() const { return _numSets; }
    std::uint64_t capacity() const
    {
        return _numSets * _assoc * _lineBytes;
    }

    /** Find the entry holding @p line_addr, or nullptr on a miss. */
    CacheEntry *findEntry(Addr line_addr);
    const CacheEntry *findEntry(Addr line_addr) const;

    /** True if the set for @p line_addr has an invalid (free) way. */
    bool hasFreeWay(Addr line_addr) const;

    /**
     * Allocate an entry for @p line_addr in a free way.
     *
     * @pre hasFreeWay(line_addr) and no existing entry for the line.
     * @return the freshly initialized entry (valid, zeroed data/dirty).
     */
    CacheEntry &allocate(Addr line_addr);

    /**
     * The least-recently-used valid entry in @p line_addr's set — the
     * replacement victim when the set is full.
     *
     * @pre the set has at least one valid entry.
     */
    CacheEntry &victim(Addr line_addr);

    /** Invalidate one entry. */
    void invalidate(CacheEntry &entry);

    /** Invalidate every valid line (VIPER acquire flash-invalidation). */
    void invalidateAll();

    /** Record a use of @p entry for LRU bookkeeping. */
    void touch(CacheEntry &entry) { entry.lastUsed = ++_useClock; }

    /** Number of currently valid entries. */
    std::uint64_t validCount() const;

    /** All entries (tests and flush walks). */
    std::vector<CacheEntry> &entries() { return _entries; }
    const std::vector<CacheEntry> &entries() const { return _entries; }

    /**
     * Pointers to every way of @p line_addr's set, for controllers that
     * need custom victim policies (e.g. skipping lines with MSHRs).
     */
    std::vector<CacheEntry *> setEntries(Addr line_addr);

    /**
     * First way of @p line_addr's set. The set's @c assoc() ways are
     * contiguous, so hot paths can walk them without the vector that
     * setEntries() builds.
     */
    CacheEntry *setWays(Addr line_addr) { return setBase(line_addr); }
    const CacheEntry *setWays(Addr line_addr) const
    {
        return setBase(line_addr);
    }

  private:
    std::uint64_t setIndex(Addr line_addr) const;
    CacheEntry *setBase(Addr line_addr);
    const CacheEntry *setBase(Addr line_addr) const;

    unsigned _assoc;
    unsigned _lineBytes;
    std::uint64_t _numSets;
    std::uint64_t _useClock = 0;
    std::vector<CacheEntry> _entries;
};

} // namespace drf

#endif // DRF_MEM_CACHE_ARRAY_HH
