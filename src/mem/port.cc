#include "mem/port.hh"

#include <cassert>

namespace drf
{

void
MsgPort::send(Packet pkt, Tick extra_delay)
{
    assert(_receiver != nullptr && "send through unbound port");
    Tick when = _eq.curTick() + _latency + extra_delay;
    if (when <= _lastDelivery)
        when = _lastDelivery + 1;
    _lastDelivery = when;
    ++_sent;
    MsgReceiver *receiver = _receiver;
    _eq.schedule(when, [receiver, pkt = std::move(pkt)]() mutable {
        receiver->recvMsg(std::move(pkt));
    });
}

} // namespace drf
