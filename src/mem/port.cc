#include "mem/port.hh"

#include <cassert>

namespace drf
{

void
MsgPort::send(const Packet &pkt, Tick extra_delay)
{
    assert(_receiver != nullptr && "send through unbound port");
    Tick when = _eq.curTick() + _latency + extra_delay;
    if (when <= _lastDelivery)
        when = _lastDelivery + 1;
    _lastDelivery = when;
    ++_sent;
    MsgReceiver *receiver = _receiver;
    if (_trace == nullptr) {
        // The closure's capture is the packet's only copy; delivery
        // hands the receiver a reference to it (see recvMsg contract).
        _eq.schedule(when, [receiver, pkt = pkt]() mutable {
            receiver->recvMsg(pkt);
        });
        return;
    }
    // Tracing variant: the delivery closure additionally records a
    // MsgDeliver event at its (known-now) delivery tick. Still well
    // under the event pool's block size, so pooling is unaffected.
    TraceRecorder *trace = _trace;
    int src = _traceSrc;
    int dst = _traceDst;
    _eq.schedule(when, [receiver, trace, src, dst, when, pkt = pkt]() mutable {
        TraceEvent ev;
        ev.tick = when;
        ev.a = pkt.addr;
        ev.b = pkt.id;
        ev.src = src;
        ev.dst = dst;
        ev.kind = TraceEventKind::MsgDeliver;
        ev.u8 = static_cast<std::uint8_t>(pkt.type);
        ev.u32 = pkt.requestor;
        trace->record(ev);
        receiver->recvMsg(pkt);
    });
}

} // namespace drf
