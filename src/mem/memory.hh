/**
 * @file
 * Fixed-latency DRAM model with a sparse backing store.
 *
 * Services line-granularity MemRead / MemWrite (with byte masks) from the
 * directory and responds with MemData / MemWBAck. Uninitialized memory
 * reads as zero.
 */

#ifndef DRF_MEM_MEMORY_HH
#define DRF_MEM_MEMORY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "mem/port.hh"
#include "sim/flat_map.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/**
 * Main memory. The response path is a bound callback rather than a port
 * because exactly one component (the directory) ever talks to DRAM.
 */
class SimpleMemory : public SimObject, public MsgReceiver
{
  public:
    using RespFunc = std::function<void(Packet &&)>;

    /**
     * @param name       Instance name.
     * @param eq         Event queue.
     * @param line_bytes Line size.
     * @param latency    Access latency in ticks.
     */
    SimpleMemory(std::string name, EventQueue &eq, unsigned line_bytes,
                 Tick latency);

    /** Bind the response callback (the directory's receive path). */
    void bindResponse(RespFunc fn) { _respond = std::move(fn); }

    /** Handle MemRead / MemWrite. */
    void recvMsg(Packet &pkt) override;

    /**
     * Debug/bootstrap access: read a full line without timing.
     */
    LineData peekLine(Addr line_addr) const;

    /**
     * Debug/bootstrap access: write bytes without timing (used to
     * initialize workload data).
     */
    void pokeBytes(Addr addr, const std::vector<std::uint8_t> &bytes);

    const StatGroup &stats() const { return _stats; }

  private:
    LineData &line(Addr line_addr);

    unsigned _lineBytes;
    Tick _latency;
    RespFunc _respond;
    FlatMap<LineData> _store; ///< keyed by line address, zero-filled
    StatGroup _stats;

    // Hot-path counters, resolved once.
    Counter *_cReads;
    Counter *_cWrites;
};

} // namespace drf

#endif // DRF_MEM_MEMORY_HH
