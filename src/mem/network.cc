#include "mem/network.hh"

#include <cassert>
#include <memory>

namespace drf
{

Crossbar::Crossbar(std::string name, EventQueue &eq, Tick hop_latency)
    : SimObject(std::move(name), eq), _hopLatency(hop_latency),
      _stats(SimObject::name())
{
}

int
Crossbar::attach(int id, MsgReceiver &receiver)
{
    assert(_endpoints.find(id) == _endpoints.end() &&
           "endpoint id already attached");
    _endpoints[id] = &receiver;
    return id;
}

MsgPort &
Crossbar::channel(int src, int dst)
{
    auto key = std::make_pair(src, dst);
    auto it = _channels.find(key);
    if (it == _channels.end()) {
        auto endpoint_it = _endpoints.find(dst);
        assert(endpoint_it != _endpoints.end() && "unknown destination");
        auto port = std::make_unique<MsgPort>(
            name() + ".ch" + std::to_string(src) + "->" +
                std::to_string(dst),
            eventq(), _hopLatency);
        port->bind(*endpoint_it->second);
        it = _channels.emplace(key, std::move(port)).first;
    }
    return *it->second;
}

void
Crossbar::route(int src, int dst, Packet pkt, Tick extra_delay)
{
    pkt.srcEndpoint = src;
    ++_routed;
    _stats.counter("msgs").inc();
    channel(src, dst).send(std::move(pkt), extra_delay);
}

} // namespace drf
