#include "mem/network.hh"

#include <cassert>
#include <memory>

namespace drf
{

Crossbar::Crossbar(std::string name, EventQueue &eq, Tick hop_latency)
    : SimObject(std::move(name), eq), _hopLatency(hop_latency),
      _stats(SimObject::name()), _msgs(&_stats.counter("msgs"))
{
}

int
Crossbar::attach(int id, MsgReceiver &receiver)
{
    assert(id >= 0 && "endpoint ids must be non-negative");
    assert(indexOf(id) < 0 && "endpoint id already attached");
    if (static_cast<std::size_t>(id) >= _indexOf.size())
        _indexOf.resize(id + 1, -1);
    int idx = static_cast<int>(_receivers.size());
    _indexOf[id] = idx;
    _receivers.push_back(&receiver);
    _idOf.push_back(id);
    for (auto &row : _channels)
        row.resize(_receivers.size());
    _channels.emplace_back(_receivers.size());
    return id;
}

MsgPort &
Crossbar::channel(int src, int dst, int src_idx, int dst_idx)
{
    std::unique_ptr<MsgPort> &slot = _channels[src_idx][dst_idx];
    if (!slot) {
        slot = std::make_unique<MsgPort>(
            name() + ".ch" + std::to_string(src) + "->" +
                std::to_string(dst),
            eventq(), _hopLatency);
        slot->bind(*_receivers[dst_idx]);
        slot->setTrace(_trace, src, dst);
    }
    return *slot;
}

void
Crossbar::setTrace(TraceRecorder *trace)
{
    _trace = trace;
    for (std::size_t src_idx = 0; src_idx < _channels.size(); ++src_idx) {
        auto &row = _channels[src_idx];
        for (std::size_t dst_idx = 0; dst_idx < row.size(); ++dst_idx) {
            if (row[dst_idx]) {
                row[dst_idx]->setTrace(trace, _idOf[src_idx],
                                       _idOf[dst_idx]);
            }
        }
    }
}

void
Crossbar::route(int src, int dst, Packet &&pkt, Tick extra_delay)
{
    int src_idx = indexOf(src);
    int dst_idx = indexOf(dst);
    assert(src_idx >= 0 && "unknown source");
    assert(dst_idx >= 0 && "unknown destination");
    pkt.srcEndpoint = src;
    ++_routed;
    _msgs->inc();
    if (_trace != nullptr) {
        TraceEvent ev;
        ev.tick = eventq().curTick();
        ev.a = pkt.addr;
        ev.b = pkt.id;
        ev.src = src;
        ev.dst = dst;
        ev.kind = TraceEventKind::MsgSend;
        ev.u8 = static_cast<std::uint8_t>(pkt.type);
        ev.u32 = pkt.requestor;
        _trace->record(ev);
    }
    channel(src, dst, src_idx, dst_idx).send(pkt, extra_delay);
}

} // namespace drf
