/**
 * @file
 * Synchronization scopes for scoped weak-memory testing.
 *
 * GPU memory models scope acquire/release operations to a thread
 * hierarchy level: a CTA-scope release only promises visibility to the
 * releasing workgroup (whose coherence point is the CU-local L1), while
 * a GPU-scope release makes prior stores visible device-wide (the L1
 * must drain write-throughs / write back ownership before the release
 * completes). `None` means "unscoped" and carries the conservative
 * device-wide semantics — it is the value every pre-scope packet and
 * episode carries, so default-configured runs are bit-identical to the
 * unscoped implementation.
 */

#ifndef DRF_MEM_SCOPE_HH
#define DRF_MEM_SCOPE_HH

#include <cstdint>
#include <optional>
#include <string>

namespace drf
{

/** Synchronization scope of an acquire/release operation. */
enum class Scope : std::uint8_t
{
    None = 0,  ///< unscoped: conservative GPU-wide semantics
    Cta,       ///< workgroup scope: the CU-local L1 is the sync point
    Gpu,       ///< device scope: visible to every CU
};

inline constexpr std::uint32_t scopeCount = 3;

/** Printable scope name ("none" / "cta" / "gpu"). */
const char *scopeName(Scope s);

/** Parse a scope name; nullopt on unknown names. */
std::optional<Scope> parseScope(const std::string &name);

/**
 * How the tester assigns scopes to episodes.
 *
 *  - None:   no scope draws at all; every episode is unscoped. This is
 *            the default and reproduces pre-scope behavior exactly
 *            (zero extra RNG draws, so golden digests are preserved).
 *  - Scoped: each episode draws CTA or GPU scope, and generation obeys
 *            the scoped-DRF discipline: a CTA-scoped episode only
 *            touches variables whose visibility is already established
 *            for its CU, so a correct protocol must still pass.
 *  - Racy:   each episode draws a scope but the discipline is off —
 *            CTA-scoped synchronization is deliberately insufficient
 *            for the sharing that occurs. A correct scoped protocol
 *            *should* fail these runs with ScopeViolation; this is the
 *            negative arm (the scope analog of fault injection).
 */
enum class ScopeMode : std::uint8_t
{
    None = 0,
    Scoped,
    Racy,
};

inline constexpr std::uint32_t scopeModeCount = 3;

/** Printable mode name ("none" / "scoped" / "racy"). */
const char *scopeModeName(ScopeMode m);

/** Parse a scope-mode name; nullopt on unknown names. */
std::optional<ScopeMode> parseScopeMode(const std::string &name);

} // namespace drf

#endif // DRF_MEM_SCOPE_HH
