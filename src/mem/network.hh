/**
 * @file
 * A simple crossbar interconnect.
 *
 * Endpoints register with an integer id; messages are routed by
 * destination id with a per-(src,dst) FIFO guarantee and a fixed per-hop
 * latency. This stands in for Ruby's network: rich enough to interleave
 * traffic from many L1s, the CPU complex, and DMA in front of the shared
 * controllers, simple enough to be obviously correct.
 */

#ifndef DRF_MEM_NETWORK_HH
#define DRF_MEM_NETWORK_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/msg.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/**
 * Crossbar with per-pair ordered virtual channels.
 */
class Crossbar : public SimObject
{
  public:
    /**
     * @param name        Instance name.
     * @param eq          Event queue.
     * @param hop_latency Delivery latency for every message.
     */
    Crossbar(std::string name, EventQueue &eq, Tick hop_latency);

    /**
     * Register @p receiver as endpoint @p id.
     *
     * @return id, for caller convenience.
     */
    int attach(int id, MsgReceiver &receiver);

    /**
     * Route @p pkt from endpoint @p src to endpoint @p dst. The packet's
     * srcEndpoint field is stamped with @p src so the receiver can reply.
     */
    void route(int src, int dst, Packet pkt, Tick extra_delay = 0);

    /** Total messages routed. */
    std::uint64_t routedCount() const { return _routed; }

    /** Per-link statistics. */
    const StatGroup &stats() const { return _stats; }

  private:
    /** Lazily created ordered channel for a (src,dst) pair. */
    MsgPort &channel(int src, int dst);

    Tick _hopLatency;
    std::map<int, MsgReceiver *> _endpoints;
    std::map<std::pair<int, int>, std::unique_ptr<MsgPort>> _channels;
    std::uint64_t _routed = 0;
    StatGroup _stats;
};

} // namespace drf

#endif // DRF_MEM_NETWORK_HH
