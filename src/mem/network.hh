/**
 * @file
 * A simple crossbar interconnect.
 *
 * Endpoints register with an integer id; messages are routed by
 * destination id with a per-(src,dst) FIFO guarantee and a fixed per-hop
 * latency. This stands in for Ruby's network: rich enough to interleave
 * traffic from many L1s, the CPU complex, and DMA in front of the shared
 * controllers, simple enough to be obviously correct.
 *
 * Routing is a dense table lookup: endpoint ids map to compact indices
 * once at attach time, and the per-(src,dst) ordered channels live in a
 * flat 2-D array. The hot route() path is two vector indexes and a port
 * send — no tree walks, no string lookups, no allocation.
 */

#ifndef DRF_MEM_NETWORK_HH
#define DRF_MEM_NETWORK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/msg.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace drf
{

/**
 * Crossbar with per-pair ordered virtual channels.
 */
class Crossbar : public SimObject
{
  public:
    /**
     * @param name        Instance name.
     * @param eq          Event queue.
     * @param hop_latency Delivery latency for every message.
     */
    Crossbar(std::string name, EventQueue &eq, Tick hop_latency);

    /**
     * Register @p receiver as endpoint @p id.
     *
     * @return id, for caller convenience.
     */
    int attach(int id, MsgReceiver &receiver);

    /**
     * Route @p pkt from endpoint @p src to endpoint @p dst. The packet's
     * srcEndpoint field is stamped with @p src so the receiver can reply.
     * Takes the packet by rvalue reference: the source-endpoint stamp
     * lands on the caller's (moved-from) object and the only copy made
     * on the whole route is the delivery closure's (MsgPort::send).
     */
    void route(int src, int dst, Packet &&pkt, Tick extra_delay = 0);

    /** Total messages routed. */
    std::uint64_t routedCount() const { return _routed; }

    /**
     * Record every routed message (MsgSend) and delivery (MsgDeliver,
     * via the per-pair channels) into @p trace. Propagates to already
     * existing channels and to any created later; nullptr turns
     * recording back off.
     */
    void setTrace(TraceRecorder *trace);

    /** Per-link statistics. */
    const StatGroup &stats() const { return _stats; }

  private:
    /** Lazily created ordered channel for a (src,dst) index pair. */
    MsgPort &channel(int src, int dst, int src_idx, int dst_idx);

    /** Dense index for endpoint @p id, or -1 if never attached. */
    int
    indexOf(int id) const
    {
        return (id >= 0 && static_cast<std::size_t>(id) < _indexOf.size())
                   ? _indexOf[id]
                   : -1;
    }

    Tick _hopLatency;
    /** Endpoint id -> dense index (-1 = absent); ids are small ints. */
    std::vector<int> _indexOf;
    /** Dense index -> receiver. */
    std::vector<MsgReceiver *> _receivers;
    /** Dense index -> endpoint id (reverse of _indexOf). */
    std::vector<int> _idOf;
    TraceRecorder *_trace = nullptr;
    /** [srcIdx][dstIdx] -> ordered channel (lazily created). */
    std::vector<std::vector<std::unique_ptr<MsgPort>>> _channels;
    std::uint64_t _routed = 0;
    StatGroup _stats;
    Counter *_msgs; ///< cached "msgs" counter; route() skips the map
};

} // namespace drf

#endif // DRF_MEM_NETWORK_HH
