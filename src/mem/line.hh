/**
 * @file
 * Fixed-size cache-line payload types shared by the message layer and
 * the cache data arrays.
 *
 * The whole system models 64-byte lines, so payloads are inline
 * std::arrays (no heap, trivially copyable) and byte-enable masks are a
 * single uint64_t with one bit per byte of the line. This is what makes
 * a Packet a flat POD that a port delivery can carry in a recycled
 * event block without ever touching the allocator.
 */

#ifndef DRF_MEM_LINE_HH
#define DRF_MEM_LINE_HH

#include <array>
#include <cstdint>

namespace drf
{

/** Modelled line size. Configs may use smaller lines, never larger. */
constexpr unsigned kLineBytes = 64;

/** One full line of data, inline. */
using LineData = std::array<std::uint8_t, kLineBytes>;

/** Byte-enable bitmask: bit i enables byte i of the line. */
using ByteMask = std::uint64_t;

/** Every byte of the line enabled. */
constexpr ByteMask fullLineMask = ~ByteMask{0};

/** The mask bit for one byte offset. */
constexpr ByteMask
maskBit(unsigned byte)
{
    return ByteMask{1} << byte;
}

/** True if @p byte is enabled in @p mask. */
constexpr bool
maskTest(ByteMask mask, unsigned byte)
{
    return (mask >> byte) & 1;
}

} // namespace drf

#endif // DRF_MEM_LINE_HH
