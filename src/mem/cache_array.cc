#include "mem/cache_array.hh"

#include <cassert>

namespace drf
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheArray::CacheArray(std::uint64_t size_bytes, unsigned assoc,
                       unsigned line_bytes)
    : _assoc(assoc), _lineBytes(line_bytes)
{
    assert(isPow2(line_bytes));
    assert(line_bytes <= kLineBytes);
    assert(assoc > 0);
    assert(size_bytes >= static_cast<std::uint64_t>(assoc) * line_bytes);
    _numSets = size_bytes / (static_cast<std::uint64_t>(assoc) *
                             line_bytes);
    assert(isPow2(_numSets));
    _entries.resize(_numSets * _assoc);
}

std::uint64_t
CacheArray::setIndex(Addr line_addr) const
{
    return (line_addr / _lineBytes) & (_numSets - 1);
}

CacheEntry *
CacheArray::setBase(Addr line_addr)
{
    return &_entries[setIndex(line_addr) * _assoc];
}

const CacheEntry *
CacheArray::setBase(Addr line_addr) const
{
    return &_entries[setIndex(line_addr) * _assoc];
}

CacheEntry *
CacheArray::findEntry(Addr line_addr)
{
    CacheEntry *base = setBase(line_addr);
    for (unsigned way = 0; way < _assoc; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr)
            return &base[way];
    }
    return nullptr;
}

const CacheEntry *
CacheArray::findEntry(Addr line_addr) const
{
    const CacheEntry *base = setBase(line_addr);
    for (unsigned way = 0; way < _assoc; ++way) {
        if (base[way].valid && base[way].lineAddr == line_addr)
            return &base[way];
    }
    return nullptr;
}

bool
CacheArray::hasFreeWay(Addr line_addr) const
{
    const CacheEntry *base = setBase(line_addr);
    for (unsigned way = 0; way < _assoc; ++way) {
        if (!base[way].valid)
            return true;
    }
    return false;
}

CacheEntry &
CacheArray::allocate(Addr line_addr)
{
    assert(findEntry(line_addr) == nullptr);
    CacheEntry *base = setBase(line_addr);
    for (unsigned way = 0; way < _assoc; ++way) {
        CacheEntry &entry = base[way];
        if (!entry.valid) {
            entry.valid = true;
            entry.lineAddr = line_addr;
            entry.state = 0;
            entry.data.fill(0);
            entry.dirty = 0;
            touch(entry);
            return entry;
        }
    }
    assert(false && "allocate called with no free way");
    return base[0];
}

CacheEntry &
CacheArray::victim(Addr line_addr)
{
    CacheEntry *base = setBase(line_addr);
    CacheEntry *lru = nullptr;
    for (unsigned way = 0; way < _assoc; ++way) {
        CacheEntry &entry = base[way];
        if (!entry.valid)
            continue;
        if (lru == nullptr || entry.lastUsed < lru->lastUsed)
            lru = &entry;
    }
    assert(lru != nullptr && "victim requested from an empty set");
    return *lru;
}

void
CacheArray::invalidate(CacheEntry &entry)
{
    entry.valid = false;
    entry.lineAddr = invalidAddr;
    entry.state = 0;
    entry.clearDirty();
}

void
CacheArray::invalidateAll()
{
    for (auto &entry : _entries) {
        if (entry.valid)
            invalidate(entry);
    }
}

std::vector<CacheEntry *>
CacheArray::setEntries(Addr line_addr)
{
    std::vector<CacheEntry *> ways;
    CacheEntry *base = setBase(line_addr);
    ways.reserve(_assoc);
    for (unsigned way = 0; way < _assoc; ++way)
        ways.push_back(&base[way]);
    return ways;
}

std::uint64_t
CacheArray::validCount() const
{
    std::uint64_t count = 0;
    for (const auto &entry : _entries)
        count += entry.valid ? 1 : 0;
    return count;
}

} // namespace drf
