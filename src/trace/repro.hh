/**
 * @file
 * Self-contained failure reproductions: record, replay, report.
 *
 * A ReproTrace bundles everything needed to re-execute one GPU tester
 * run on a fresh process: the full system configuration (including the
 * armed fault), the tester configuration, the recorded episode
 * schedule, the original outcome, and (optionally) the binary event
 * trace. Because the simulation is deterministic, replaying the
 * complete schedule reproduces the original run bit-identically —
 * same digests, same failure report — and replaying a subsequence is
 * deterministic too, which is the search space the shrinker
 * (src/trace/shrink.hh) minimizes over.
 */

#ifndef DRF_TRACE_REPRO_HH
#define DRF_TRACE_REPRO_HH

#include <string>

#include "system/apu_system.hh"
#include "tester/configs.hh"
#include "tester/gpu_tester.hh"
#include "trace/recorder.hh"
#include "trace/schedule.hh"

namespace drf
{

/** One recorded GPU tester run, self-contained and re-executable. */
struct ReproTrace
{
    std::string presetName;    ///< human-readable origin (may be empty)
    ApuSystemConfig system;    ///< includes the armed FaultKind
    GpuTesterConfig tester;    ///< record/replay pointers not serialized
    EpisodeSchedule schedule;  ///< every episode, generation order
    TesterResult result;       ///< outcome of the recorded run
    std::vector<TraceEvent> events; ///< optional binary event trace

    /**
     * Guided-campaign provenance: the scheduler's decision log as a
     * JSON array (see src/guidance/), recorded so a trace produced by
     * a guided fuzz run documents exactly how its configuration was
     * chosen. Empty for unguided runs and for v1 trace files.
     */
    std::string guidance;
};

/** Options for recordGpuRun. */
struct RecordOptions
{
    /** Also capture the binary event trace (messages, transitions). */
    bool captureEvents = false;
    /** Event cap when capturing (see TraceRecorder). */
    std::size_t maxEvents = TraceRecorder::defaultMaxEvents;
};

/**
 * Execute the configured run on a fresh system, recording its episode
 * schedule (and, on request, its event trace) into the returned
 * ReproTrace. Recording does not perturb the run.
 */
ReproTrace recordGpuRun(const ApuSystemConfig &sys_cfg,
                        const GpuTesterConfig &tester_cfg,
                        const RecordOptions &opts = {});

/** recordGpuRun for a Table III preset (keeps the preset's name). */
ReproTrace recordGpuRun(const GpuTestPreset &preset,
                        const RecordOptions &opts = {});

/**
 * Re-execute @p schedule under the trace's configurations on a fresh
 * system. With the trace's own (complete) schedule the result is
 * bit-identical to the recorded one; any subsequence replays
 * deterministically.
 *
 * @param arm_fault Replay with the recorded fault armed (true) or with
 *                  a correct protocol (false; used by the shrinker to
 *                  reject subsequences that fail for unrelated
 *                  reasons).
 * @param events    Optional recorder for the replay's event trace.
 * @param perturb   Optional deterministic schedule perturbation
 *                  (per-episode issue delays; see
 *                  trace/schedule.hh) steering the replay into a
 *                  different legal interleaving of the same schedule.
 */
TesterResult replayGpuRun(const ReproTrace &trace,
                          const EpisodeSchedule &schedule,
                          bool arm_fault = true,
                          TraceRecorder *events = nullptr,
                          const SchedulePerturbation *perturb = nullptr);

/** Replay the trace's own full schedule. */
TesterResult replayGpuRun(const ReproTrace &trace);

/**
 * JSON bug report for a (typically shrunk) repro: configuration, fault,
 * failure class, episode-level schedule summary, and the full Table
 * V-style report text (last reader / last writer / recent history).
 *
 * @param shrunk  The minimized schedule to report (may be the full
 *                schedule).
 * @param result  Outcome of replaying @p shrunk.
 */
std::string reproToJson(const ReproTrace &trace,
                        const EpisodeSchedule &shrunk,
                        const TesterResult &result);

} // namespace drf

#endif // DRF_TRACE_REPRO_HH
