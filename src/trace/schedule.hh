/**
 * @file
 * Recorded episode schedules — the replayable core of a trace.
 *
 * The GPU tester is deterministic given its configuration, its seed,
 * and the exact episode stream it issues. Recording that stream (every
 * generated episode, in generation order) therefore captures the whole
 * run: feeding the same schedule back through a fresh system re-executes
 * it bit-identically, and feeding back a *subsequence* is how the
 * delta-debugging shrinker (src/trace/shrink.hh) searches for a minimal
 * failing repro.
 *
 * Episodes are stored exactly as generated (before any completedAt
 * mutation); the derived writes/reads indexes can be rebuilt from the
 * action list alone, which is what the trace file loader does.
 */

#ifndef DRF_TRACE_SCHEDULE_HH
#define DRF_TRACE_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "tester/episode.hh"

namespace drf
{

/** A recorded episode stream, in generation order. */
struct EpisodeSchedule
{
    std::vector<Episode> episodes;

    std::size_t size() const { return episodes.size(); }
    bool empty() const { return episodes.empty(); }

    /** Episodes belonging to wavefront @p wf, in schedule order. */
    std::vector<const Episode *>
    forWavefront(std::uint32_t wf) const
    {
        std::vector<const Episode *> out;
        for (const Episode &e : episodes) {
            if (e.wavefrontId == wf)
                out.push_back(&e);
        }
        return out;
    }

    /** The subsequence selected by @p keep (indexes into episodes). */
    EpisodeSchedule
    subset(const std::vector<std::size_t> &keep) const
    {
        EpisodeSchedule out;
        out.episodes.reserve(keep.size());
        for (std::size_t idx : keep)
            out.episodes.push_back(episodes.at(idx));
        return out;
    }
};

/**
 * Rebuild an episode's derived writes/reads indexes from its op planes
 * (used after deserialization; the generator enforces one writer per
 * variable, so the reconstruction is exact).
 */
inline void
rebuildEpisodeIndexes(Episode &episode)
{
    episode.rebuildIndexes();
}

} // namespace drf

#endif // DRF_TRACE_SCHEDULE_HH
