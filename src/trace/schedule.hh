/**
 * @file
 * Recorded episode schedules — the replayable core of a trace.
 *
 * The GPU tester is deterministic given its configuration, its seed,
 * and the exact episode stream it issues. Recording that stream (every
 * generated episode, in generation order) therefore captures the whole
 * run: feeding the same schedule back through a fresh system re-executes
 * it bit-identically, and feeding back a *subsequence* is how the
 * delta-debugging shrinker (src/trace/shrink.hh) searches for a minimal
 * failing repro.
 *
 * Episodes are stored exactly as generated (before any completedAt
 * mutation); the derived writes/reads indexes can be rebuilt from the
 * action list alone, which is what the trace file loader does.
 */

#ifndef DRF_TRACE_SCHEDULE_HH
#define DRF_TRACE_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "tester/episode.hh"

namespace drf
{

/** A recorded episode stream, in generation order. */
struct EpisodeSchedule
{
    std::vector<Episode> episodes;

    std::size_t size() const { return episodes.size(); }
    bool empty() const { return episodes.empty(); }

    /** Episodes belonging to wavefront @p wf, in schedule order. */
    std::vector<const Episode *>
    forWavefront(std::uint32_t wf) const
    {
        std::vector<const Episode *> out;
        for (const Episode &e : episodes) {
            if (e.wavefrontId == wf)
                out.push_back(&e);
        }
        return out;
    }

    /** The subsequence selected by @p keep (indexes into episodes). */
    EpisodeSchedule
    subset(const std::vector<std::size_t> &keep) const
    {
        EpisodeSchedule out;
        out.episodes.reserve(keep.size());
        for (std::size_t idx : keep)
            out.episodes.push_back(episodes.at(idx));
        return out;
    }
};

/**
 * A deterministic schedule perturbation: per-episode issue delays,
 * applied by the tester when the episode would start (the recorded
 * commit points). Delaying an episode's acquire shifts every one of its
 * memory operations — and its wavefront's subsequent episodes — later
 * relative to the other wavefronts, which is how the offline analyses
 * (src/predict/) steer the deterministic replayer into *other* legal
 * interleavings of the same recorded schedule: witness verification
 * replays a predicted race with the rescuing episodes pushed aside, and
 * the bounded DPOR explorer enumerates commit-point reorderings by
 * composing flips. A perturbation changes timing only; the per-wavefront
 * program order (and thus the schedule's legality) is untouched.
 */
struct SchedulePerturbation
{
    struct Delay
    {
        std::uint64_t episodeId = 0;
        Tick ticks = 0;
    };

    std::vector<Delay> delays;

    bool empty() const { return delays.empty(); }

    /** Add @p ticks of issue delay for @p episode_id (accumulates). */
    void
    add(std::uint64_t episode_id, Tick ticks)
    {
        for (Delay &d : delays) {
            if (d.episodeId == episode_id) {
                d.ticks += ticks;
                return;
            }
        }
        delays.push_back({episode_id, ticks});
    }

    /** Issue delay for @p episode_id (0 when unperturbed). */
    Tick
    delayFor(std::uint64_t episode_id) const
    {
        for (const Delay &d : delays) {
            if (d.episodeId == episode_id)
                return d.ticks;
        }
        return 0;
    }
};

/**
 * Rebuild an episode's derived writes/reads indexes from its op planes
 * (used after deserialization; the generator enforces one writer per
 * variable, so the reconstruction is exact).
 */
inline void
rebuildEpisodeIndexes(Episode &episode)
{
    episode.rebuildIndexes();
}

} // namespace drf

#endif // DRF_TRACE_SCHEDULE_HH
