/**
 * @file
 * Chrome-trace ("Trace Event Format") export of a binary event trace.
 *
 * The emitted JSON loads directly in chrome://tracing, Perfetto
 * (ui.perfetto.dev) or speedscope: episodes appear as duration slices
 * on one track per wavefront; message sends/deliveries and controller
 * transitions appear as instant events on one track per crossbar
 * endpoint. Ticks are reported as microseconds (1 tick = 1 us) since
 * the viewers insist on a time unit.
 */

#ifndef DRF_TRACE_CHROME_TRACE_HH
#define DRF_TRACE_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "trace/recorder.hh"

namespace drf
{

/** Render @p events as a Chrome trace JSON document. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

} // namespace drf

#endif // DRF_TRACE_CHROME_TRACE_HH
