/**
 * @file
 * Binary serialization of ReproTrace ("DRFTRC01").
 *
 * The format is field-wise little-endian — every integer is written
 * byte by byte, never memcpy'd from a struct — so a trace recorded on
 * one host loads identically on any other regardless of struct layout
 * or endianness. Derived episode indexes (writes/reads) are rebuilt on
 * load rather than stored.
 *
 * Layout: 8-byte magic, u32 version, then the system config, tester
 * config, recorded result, episode schedule, and event stream, each as
 * a fixed field sequence (see trace_file.cc). Loaders reject bad
 * magic/version/truncation by returning false.
 */

#ifndef DRF_TRACE_TRACE_FILE_HH
#define DRF_TRACE_TRACE_FILE_HH

#include <iosfwd>
#include <string>

#include "trace/repro.hh"

namespace drf
{

/** Serialize @p trace to @p os. @return false on stream failure. */
bool saveTrace(std::ostream &os, const ReproTrace &trace);

/** Serialize @p trace to @p path. @return false on any failure. */
bool saveTraceFile(const std::string &path, const ReproTrace &trace);

/**
 * Deserialize a trace from @p is into @p trace.
 * @return false on bad magic, unknown version or truncation.
 */
bool loadTrace(std::istream &is, ReproTrace &trace);

/** Deserialize a trace from @p path. @return false on any failure. */
bool loadTraceFile(const std::string &path, ReproTrace &trace);

} // namespace drf

#endif // DRF_TRACE_TRACE_FILE_HH
