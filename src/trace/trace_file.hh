/**
 * @file
 * Binary serialization of ReproTrace ("DRFTRC01").
 *
 * The format is field-wise little-endian — every integer is written
 * byte by byte, never memcpy'd from a struct — so a trace recorded on
 * one host loads identically on any other regardless of struct layout
 * or endianness. Derived episode indexes (writes/reads) are rebuilt on
 * load rather than stored.
 *
 * Layout: 8-byte magic, u32 version, then the system config, tester
 * config, recorded result, episode schedule, and event stream, each as
 * a fixed field sequence (see trace_file.cc). Loaders reject bad
 * magic/version/truncation by returning false.
 */

#ifndef DRF_TRACE_TRACE_FILE_HH
#define DRF_TRACE_TRACE_FILE_HH

#include <iosfwd>
#include <string>

#include "trace/repro.hh"

namespace drf
{

/** The current (newest) DRFTRC01 format version this build writes. */
std::uint32_t traceFormatVersion();

/** Serialize @p trace to @p os. @return false on stream failure. */
bool saveTrace(std::ostream &os, const ReproTrace &trace);

/**
 * Serialize @p trace to @p os in an older format @p version (clamped to
 * [1, traceFormatVersion()]). Fields the requested version cannot
 * represent are dropped: guidance (v1), protocol/scope headers and
 * per-episode scopes (v2 and below), sync event records (v3 and below).
 * Exists for cross-version compatibility testing; production writers
 * always use the current version.
 */
bool saveTrace(std::ostream &os, const ReproTrace &trace,
               std::uint32_t version);

/** Serialize @p trace to @p path. @return false on any failure. */
bool saveTraceFile(const std::string &path, const ReproTrace &trace);

/** Why a trace failed to load (or Ok). */
enum class TraceLoadStatus
{
    Ok,            ///< trace loaded completely
    Unreadable,    ///< the file could not be opened
    BadMagic,      ///< not a DRFTRC01 stream at all
    FutureVersion, ///< well-formed header, but a version newer than this
                   ///< build writes — upgrade, don't re-record
    Corrupt,       ///< truncation or out-of-range field
};

/** Human-readable status name. */
const char *traceLoadStatusName(TraceLoadStatus status);

/**
 * Deserialize a trace from @p is into @p trace, reporting *why* a load
 * failed. On FutureVersion, @p found_version (when non-null) receives
 * the version the stream declared, so tools can tell the user exactly
 * which newer format they hit.
 */
TraceLoadStatus loadTraceStatus(std::istream &is, ReproTrace &trace,
                                std::uint32_t *found_version = nullptr);

/** loadTraceStatus from a file path. */
TraceLoadStatus loadTraceFileStatus(const std::string &path,
                                    ReproTrace &trace,
                                    std::uint32_t *found_version = nullptr);

/**
 * Deserialize a trace from @p is into @p trace.
 * @return false on bad magic, unknown version or truncation.
 */
bool loadTrace(std::istream &is, ReproTrace &trace);

/** Deserialize a trace from @p path. @return false on any failure. */
bool loadTraceFile(const std::string &path, ReproTrace &trace);

} // namespace drf

#endif // DRF_TRACE_TRACE_FILE_HH
