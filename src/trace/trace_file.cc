#include "trace/trace_file.hh"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

namespace drf
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::EpisodeIssue: return "EpisodeIssue";
      case TraceEventKind::EpisodeRetire: return "EpisodeRetire";
      case TraceEventKind::MsgSend: return "MsgSend";
      case TraceEventKind::MsgDeliver: return "MsgDeliver";
      case TraceEventKind::Transition: return "Transition";
      case TraceEventKind::SyncAcquire: return "SyncAcquire";
      case TraceEventKind::SyncRelease: return "SyncRelease";
    }
    return "?";
}

namespace
{

constexpr char kMagic[8] = {'D', 'R', 'F', 'T', 'R', 'C', '0', '1'};
// v1: original layout. v2: + guidance JSON string after the preset
// name. v3: + L1 protocol kind at the end of the system config, scope
// mode + CTA-scope percentage at the end of the tester config, and a
// per-episode scope byte in the schedule. v4: + SyncAcquire/SyncRelease
// records (scope in u8) in the event stream — the raw material of the
// offline happens-before reconstruction (src/predict/). The loader
// accepts all four; older files load with the unscoped VIPER defaults
// and no sync markers.
constexpr std::uint32_t kVersion = 4;
constexpr std::uint32_t kMinVersion = 1;

void
putU64(std::ostream &os, std::uint64_t v)
{
    char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<char>(v >> (8 * i));
    os.write(buf, 8);
}

void putU32(std::ostream &os, std::uint32_t v) { putU64(os, v); }
void putI32(std::ostream &os, std::int32_t v)
{
    putU64(os, static_cast<std::uint32_t>(v));
}
void putU8(std::ostream &os, std::uint8_t v) { putU64(os, v); }

void
putStr(std::ostream &os, const std::string &s)
{
    putU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
getU64(std::istream &is, std::uint64_t &v)
{
    char buf[8];
    if (!is.read(buf, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
             << (8 * i);
    }
    return true;
}

template <typename T>
bool
getInt(std::istream &is, T &out)
{
    std::uint64_t v;
    if (!getU64(is, v))
        return false;
    out = static_cast<T>(v);
    return true;
}

bool
getStr(std::istream &is, std::string &s)
{
    std::uint64_t n;
    if (!getU64(is, n))
        return false;
    // 1 GB sanity cap: a corrupt length must not trigger a huge alloc.
    if (n > (1ull << 30))
        return false;
    s.resize(n);
    return n == 0 ||
           static_cast<bool>(is.read(s.data(),
                                     static_cast<std::streamsize>(n)));
}

void
putSystemConfig(std::ostream &os, const ApuSystemConfig &c,
                std::uint32_t version)
{
    putU32(os, c.numCus);
    putU32(os, c.numGpuL2s);
    putU32(os, c.numCpuCaches);
    putU32(os, c.lineBytes);
    putU64(os, c.l1.sizeBytes);
    putU32(os, c.l1.assoc);
    putU32(os, c.l1.lineBytes);
    putU64(os, c.l1.hitLatency);
    putU64(os, c.l1.recycleLatency);
    putU64(os, c.l2.sizeBytes);
    putU32(os, c.l2.assoc);
    putU32(os, c.l2.lineBytes);
    putU64(os, c.l2.recycleLatency);
    putU64(os, c.cpu.sizeBytes);
    putU32(os, c.cpu.assoc);
    putU32(os, c.cpu.lineBytes);
    putU64(os, c.cpu.hitLatency);
    putU64(os, c.cpu.recycleLatency);
    putU32(os, c.dir.lineBytes);
    putU64(os, c.dir.recycleLatency);
    putU64(os, c.dir.memPortLatency);
    putU64(os, c.xbarLatency);
    putU64(os, c.memLatency);
    putU32(os, static_cast<std::uint32_t>(c.fault));
    putU32(os, c.faultTriggerPct);
    putU64(os, c.faultSeed);
    if (version >= 3)
        putU32(os, static_cast<std::uint32_t>(c.l1.protocol));
}

bool
getSystemConfig(std::istream &is, ApuSystemConfig &c,
                std::uint32_t version)
{
    std::uint32_t fault = 0;
    bool ok = getInt(is, c.numCus) && getInt(is, c.numGpuL2s) &&
              getInt(is, c.numCpuCaches) && getInt(is, c.lineBytes) &&
              getInt(is, c.l1.sizeBytes) && getInt(is, c.l1.assoc) &&
              getInt(is, c.l1.lineBytes) && getInt(is, c.l1.hitLatency) &&
              getInt(is, c.l1.recycleLatency) &&
              getInt(is, c.l2.sizeBytes) && getInt(is, c.l2.assoc) &&
              getInt(is, c.l2.lineBytes) &&
              getInt(is, c.l2.recycleLatency) &&
              getInt(is, c.cpu.sizeBytes) && getInt(is, c.cpu.assoc) &&
              getInt(is, c.cpu.lineBytes) &&
              getInt(is, c.cpu.hitLatency) &&
              getInt(is, c.cpu.recycleLatency) &&
              getInt(is, c.dir.lineBytes) &&
              getInt(is, c.dir.recycleLatency) &&
              getInt(is, c.dir.memPortLatency) &&
              getInt(is, c.xbarLatency) && getInt(is, c.memLatency) &&
              getInt(is, fault) && getInt(is, c.faultTriggerPct) &&
              getInt(is, c.faultSeed);
    // Validate before casting: a corrupted or hand-edited header must
    // not silently arm an out-of-range fault (the injector would treat
    // the rogue value as "no site matches" and the replay would pass
    // vacuously).
    if (!ok || fault >= faultKindCount)
        return false;
    c.fault = static_cast<FaultKind>(fault);
    if (version >= 3) {
        std::uint32_t protocol = 0;
        if (!getInt(is, protocol) || protocol >= protocolKindCount)
            return false;
        c.l1.protocol = static_cast<ProtocolKind>(protocol);
    }
    return true;
}

void
putTesterConfig(std::ostream &os, const GpuTesterConfig &c,
                std::uint32_t version)
{
    putU32(os, c.wfsPerCu);
    putU32(os, c.lanes);
    putU32(os, c.episodesPerWf);
    putU32(os, c.episodeGen.actionsPerEpisode);
    putU32(os, c.episodeGen.lanes);
    putU32(os, c.episodeGen.storePct);
    putU32(os, c.episodeGen.laneActivePct);
    putU32(os, c.episodeGen.pickAttempts);
    putU32(os, c.variables.numSyncVars);
    putU32(os, c.variables.numNormalVars);
    putU64(os, c.variables.addrRangeBytes);
    putU32(os, c.variables.lineBytes);
    putU32(os, c.variables.varBytes);
    putU64(os, c.seed);
    putU64(os, c.deadlockThreshold);
    putU64(os, c.checkInterval);
    putU64(os, c.runLimit);
    if (version >= 3) {
        putU32(os, static_cast<std::uint32_t>(c.scopeMode));
        putU32(os, c.episodeGen.ctaScopePct);
    }
}

bool
getTesterConfig(std::istream &is, GpuTesterConfig &c,
                std::uint32_t version)
{
    bool ok = getInt(is, c.wfsPerCu) && getInt(is, c.lanes) &&
              getInt(is, c.episodesPerWf) &&
              getInt(is, c.episodeGen.actionsPerEpisode) &&
              getInt(is, c.episodeGen.lanes) &&
              getInt(is, c.episodeGen.storePct) &&
              getInt(is, c.episodeGen.laneActivePct) &&
              getInt(is, c.episodeGen.pickAttempts) &&
              getInt(is, c.variables.numSyncVars) &&
              getInt(is, c.variables.numNormalVars) &&
              getInt(is, c.variables.addrRangeBytes) &&
              getInt(is, c.variables.lineBytes) &&
              getInt(is, c.variables.varBytes) && getInt(is, c.seed) &&
              getInt(is, c.deadlockThreshold) &&
              getInt(is, c.checkInterval) && getInt(is, c.runLimit);
    if (!ok)
        return false;
    if (version >= 3) {
        std::uint32_t scope_mode = 0;
        if (!getInt(is, scope_mode) || scope_mode >= scopeModeCount ||
            !getInt(is, c.episodeGen.ctaScopePct)) {
            return false;
        }
        c.scopeMode = static_cast<ScopeMode>(scope_mode);
    }
    return true;
}

void
putResult(std::ostream &os, const TesterResult &r)
{
    putU8(os, r.passed ? 1 : 0);
    putU32(os, static_cast<std::uint32_t>(r.failureClass));
    putStr(os, r.report);
    putU64(os, r.ticks);
    putU64(os, r.events);
    putU64(os, r.episodes);
    putU64(os, r.loadsChecked);
    putU64(os, r.storesRetired);
    putU64(os, r.atomicsChecked);
}

bool
getResult(std::istream &is, TesterResult &r)
{
    std::uint8_t passed = 0;
    std::uint32_t cls = 0;
    bool ok = getInt(is, passed) && getInt(is, cls) &&
              getStr(is, r.report) && getInt(is, r.ticks) &&
              getInt(is, r.events) && getInt(is, r.episodes) &&
              getInt(is, r.loadsChecked) && getInt(is, r.storesRetired) &&
              getInt(is, r.atomicsChecked);
    if (!ok || cls >= failureClassCount)
        return false;
    r.passed = passed != 0;
    r.failureClass = static_cast<FailureClass>(cls);
    return true;
}

void
putSchedule(std::ostream &os, const EpisodeSchedule &s,
            std::uint32_t version)
{
    putU64(os, s.episodes.size());
    for (const Episode &e : s.episodes) {
        putU64(os, e.id);
        putU32(os, e.wavefrontId);
        putU32(os, e.syncVar);
        if (version >= 3)
            putU8(os, static_cast<std::uint8_t>(e.scope));
        putU64(os, e.numActions());
        for (std::uint32_t a = 0; a < e.numActions(); ++a) {
            const std::uint32_t lanes = e.laneCount(a);
            putU64(os, lanes);
            for (std::uint32_t lane = 0; lane < lanes; ++lane) {
                putU8(os, e.laneActive(a, lane) ? 1 : 0);
                if (e.laneActive(a, lane)) {
                    putU8(os, e.laneIsStore(a, lane) ? 1 : 0);
                    putU32(os, e.laneVar(a, lane));
                    // Loads serialize a zero store value, exactly as the
                    // old optional<LaneOp> layout did.
                    putU32(os, e.laneValue(a, lane));
                }
            }
        }
    }
}

bool
getSchedule(std::istream &is, EpisodeSchedule &s, std::uint32_t version)
{
    std::uint64_t count;
    if (!getU64(is, count) || count > (1ull << 32))
        return false;
    s.episodes.clear();
    s.episodes.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Episode e;
        std::uint64_t num_actions;
        if (!getInt(is, e.id) || !getInt(is, e.wavefrontId) ||
            !getInt(is, e.syncVar)) {
            return false;
        }
        if (version >= 3) {
            std::uint8_t scope = 0;
            if (!getInt(is, scope) || scope >= scopeCount)
                return false;
            e.scope = static_cast<Scope>(scope);
        }
        if (!getU64(is, num_actions) || num_actions > (1ull << 24))
            return false;
        for (std::uint64_t a = 0; a < num_actions; ++a) {
            std::uint64_t num_lanes;
            if (!getU64(is, num_lanes) || num_lanes > (1ull << 16))
                return false;
            e.addAction(static_cast<std::uint32_t>(num_lanes));
            for (std::uint64_t lane = 0; lane < num_lanes; ++lane) {
                std::uint8_t present;
                if (!getInt(is, present))
                    return false;
                if (present == 0)
                    continue;
                std::uint8_t is_store;
                VarId var;
                std::uint32_t store_value;
                if (!getInt(is, is_store) || !getInt(is, var) ||
                    !getInt(is, store_value)) {
                    return false;
                }
                // Write links are reconstructed by rebuildIndexes below.
                if (is_store != 0) {
                    e.setStore(static_cast<std::uint32_t>(a),
                               static_cast<std::uint32_t>(lane), var,
                               store_value, Episode::kNoWrite);
                } else {
                    e.setLoad(static_cast<std::uint32_t>(a),
                              static_cast<std::uint32_t>(lane), var,
                              Episode::kNoWrite);
                }
            }
        }
        rebuildEpisodeIndexes(e);
        s.episodes.push_back(std::move(e));
    }
    return true;
}

bool
isSyncEvent(TraceEventKind kind)
{
    return kind == TraceEventKind::SyncAcquire ||
           kind == TraceEventKind::SyncRelease;
}

void
putEvents(std::ostream &os, const std::vector<TraceEvent> &events,
          std::uint32_t version)
{
    // Pre-v4 formats have no sync markers; drop them rather than emit
    // kinds an old reader never defined.
    std::uint64_t count = 0;
    for (const TraceEvent &ev : events) {
        if (version >= 4 || !isSyncEvent(ev.kind))
            ++count;
    }
    putU64(os, count);
    for (const TraceEvent &ev : events) {
        if (version < 4 && isSyncEvent(ev.kind))
            continue;
        putU64(os, ev.tick);
        putU64(os, ev.a);
        putU64(os, ev.b);
        putI32(os, ev.src);
        putI32(os, ev.dst);
        putU8(os, static_cast<std::uint8_t>(ev.kind));
        putU8(os, ev.u8);
        putU64(os, ev.u16);
        putU32(os, ev.u32);
    }
}

bool
getEvents(std::istream &is, std::vector<TraceEvent> &events)
{
    std::uint64_t count;
    if (!getU64(is, count) || count > (1ull << 32))
        return false;
    events.clear();
    events.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceEvent ev;
        std::uint8_t kind;
        if (!getInt(is, ev.tick) || !getInt(is, ev.a) ||
            !getInt(is, ev.b) || !getInt(is, ev.src) ||
            !getInt(is, ev.dst) || !getInt(is, kind) ||
            !getInt(is, ev.u8) || !getInt(is, ev.u16) ||
            !getInt(is, ev.u32)) {
            return false;
        }
        if (kind >= traceEventKindCount)
            return false;
        ev.kind = static_cast<TraceEventKind>(kind);
        events.push_back(ev);
    }
    return true;
}

} // namespace

std::uint32_t
traceFormatVersion()
{
    return kVersion;
}

const char *
traceLoadStatusName(TraceLoadStatus status)
{
    switch (status) {
      case TraceLoadStatus::Ok: return "Ok";
      case TraceLoadStatus::Unreadable: return "Unreadable";
      case TraceLoadStatus::BadMagic: return "BadMagic";
      case TraceLoadStatus::FutureVersion: return "FutureVersion";
      case TraceLoadStatus::Corrupt: return "Corrupt";
    }
    return "?";
}

bool
saveTrace(std::ostream &os, const ReproTrace &trace,
          std::uint32_t version)
{
    version = std::min(std::max(version, kMinVersion), kVersion);
    os.write(kMagic, sizeof(kMagic));
    putU32(os, version);
    putStr(os, trace.presetName);
    if (version >= 2)
        putStr(os, trace.guidance);
    putSystemConfig(os, trace.system, version);
    putTesterConfig(os, trace.tester, version);
    putResult(os, trace.result);
    putSchedule(os, trace.schedule, version);
    putEvents(os, trace.events, version);
    return static_cast<bool>(os);
}

bool
saveTrace(std::ostream &os, const ReproTrace &trace)
{
    return saveTrace(os, trace, kVersion);
}

bool
saveTraceFile(const std::string &path, const ReproTrace &trace)
{
    std::ofstream os(path, std::ios::binary);
    return os && saveTrace(os, trace);
}

TraceLoadStatus
loadTraceStatus(std::istream &is, ReproTrace &trace,
                std::uint32_t *found_version)
{
    char magic[8];
    if (!is.read(magic, sizeof(magic)) ||
        !std::equal(std::begin(magic), std::end(magic),
                    std::begin(kMagic))) {
        return TraceLoadStatus::BadMagic;
    }
    std::uint32_t version = 0;
    if (!getInt(is, version))
        return TraceLoadStatus::Corrupt;
    if (found_version != nullptr)
        *found_version = version;
    // A version this build has never heard of is not corruption: the
    // file is (presumably) fine, the reader is just too old. Report it
    // distinctly so tools can say "upgrade" instead of "parse failure".
    if (version > kVersion)
        return TraceLoadStatus::FutureVersion;
    if (version < kMinVersion)
        return TraceLoadStatus::Corrupt;
    trace.guidance.clear();
    bool ok = getStr(is, trace.presetName) &&
              (version < 2 || getStr(is, trace.guidance)) &&
              getSystemConfig(is, trace.system, version) &&
              getTesterConfig(is, trace.tester, version) &&
              getResult(is, trace.result) &&
              getSchedule(is, trace.schedule, version) &&
              getEvents(is, trace.events);
    return ok ? TraceLoadStatus::Ok : TraceLoadStatus::Corrupt;
}

TraceLoadStatus
loadTraceFileStatus(const std::string &path, ReproTrace &trace,
                    std::uint32_t *found_version)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return TraceLoadStatus::Unreadable;
    return loadTraceStatus(is, trace, found_version);
}

bool
loadTrace(std::istream &is, ReproTrace &trace)
{
    return loadTraceStatus(is, trace) == TraceLoadStatus::Ok;
}

bool
loadTraceFile(const std::string &path, ReproTrace &trace)
{
    std::ifstream is(path, std::ios::binary);
    return is && loadTrace(is, trace);
}

} // namespace drf
