#include "trace/shrink.hh"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace drf
{

namespace
{

/**
 * One shrink probe: does @p candidate reproduce the original failure —
 * and only the original failure? See the header's soundness note.
 */
bool
candidateFails(const ReproTrace &trace, const EpisodeSchedule &candidate,
               const ShrinkOptions &opts)
{
    TesterResult r = replayGpuRun(trace, candidate, /*arm_fault=*/true);
    if (r.passed || r.failureClass != trace.result.failureClass)
        return false;
    if (opts.verifyFaultDependence &&
        trace.system.fault != FaultKind::None) {
        TesterResult clean =
            replayGpuRun(trace, candidate, /*arm_fault=*/false);
        if (!clean.passed)
            return false;
    }
    return true;
}

} // namespace

EpisodeSchedule
shrinkRepro(const ReproTrace &trace, const ShrinkOptions &opts,
            ShrinkStats *stats_out)
{
    assert(!trace.result.passed && "shrinking requires a failing trace");

    ShrinkStats stats;
    stats.originalEpisodes = trace.schedule.size();
    auto t0 = std::chrono::steady_clock::now();

    // ddmin over indexes into the original schedule, preserving order.
    std::vector<std::size_t> keep(trace.schedule.size());
    for (std::size_t i = 0; i < keep.size(); ++i)
        keep[i] = i;

    auto probe = [&](const std::vector<std::size_t> &indexes) {
        if (stats.probes >= opts.maxProbes) {
            stats.probeBudgetExhausted = true;
            return false;
        }
        ++stats.probes;
        if (opts.progress)
            opts.progress(stats.probes, keep.size());
        return candidateFails(trace, trace.schedule.subset(indexes),
                              opts);
    };

    std::size_t n = 2;
    while (keep.size() >= 2 && !stats.probeBudgetExhausted) {
        std::size_t chunk = (keep.size() + n - 1) / n;
        bool reduced = false;

        // Try each chunk alone ("reduce to subset").
        for (std::size_t start = 0;
             start < keep.size() && !reduced;
             start += chunk) {
            std::size_t end = std::min(start + chunk, keep.size());
            std::vector<std::size_t> subset(keep.begin() + start,
                                            keep.begin() + end);
            if (subset.size() < keep.size() && probe(subset)) {
                keep = std::move(subset);
                n = 2;
                reduced = true;
                ++stats.improvements;
            }
        }

        // Try each chunk's complement ("reduce to complement").
        for (std::size_t start = 0;
             start < keep.size() && !reduced && n > 2;
             start += chunk) {
            std::size_t end = std::min(start + chunk, keep.size());
            std::vector<std::size_t> complement;
            complement.reserve(keep.size() - (end - start));
            complement.insert(complement.end(), keep.begin(),
                              keep.begin() + start);
            complement.insert(complement.end(), keep.begin() + end,
                              keep.end());
            if (!complement.empty() && complement.size() < keep.size() &&
                probe(complement)) {
                keep = std::move(complement);
                n = std::max<std::size_t>(n - 1, 2);
                reduced = true;
                ++stats.improvements;
            }
        }

        if (!reduced) {
            if (n >= keep.size())
                break; // single-episode granularity reached
            n = std::min(n * 2, keep.size());
        }
    }

    // ddmin's 1-minimality only rules out removing single chunks; a
    // smaller non-contiguous subset (say, just the writer and the
    // reader episode) can survive it. Once the candidate set is small,
    // exhaustively probing all tiny subsets is a handful of cheap
    // replays, so finish with that polish.
    constexpr std::size_t kPolishSetLimit = 12;
    constexpr std::size_t kPolishSizeLimit = 3;
    if (keep.size() > 1 && keep.size() <= kPolishSetLimit &&
        !stats.probeBudgetExhausted) {
        bool polished = false;
        for (std::size_t want = 1;
             want < std::min(keep.size(), kPolishSizeLimit + 1) &&
             !polished;
             ++want) {
            // Iterate subsets of size `want` via a selection mask.
            std::vector<bool> pick(keep.size(), false);
            std::fill(pick.begin(), pick.begin() + want, true);
            do {
                std::vector<std::size_t> subset;
                subset.reserve(want);
                for (std::size_t i = 0; i < keep.size(); ++i) {
                    if (pick[i])
                        subset.push_back(keep[i]);
                }
                if (probe(subset)) {
                    keep = std::move(subset);
                    ++stats.improvements;
                    polished = true;
                    break;
                }
            } while (std::prev_permutation(pick.begin(), pick.end()));
        }
    }

    stats.shrunkEpisodes = keep.size();
    stats.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (stats_out != nullptr)
        *stats_out = stats;
    return trace.schedule.subset(keep);
}

} // namespace drf
