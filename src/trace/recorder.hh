/**
 * @file
 * Low-overhead binary event trace recording.
 *
 * A TraceRecorder collects fixed-size POD records of everything a
 * debugging session needs to reconstruct *what happened* in a run:
 * episode issue/retire from the testers, message send/deliver from the
 * crossbar and its ports, and (event, state) transition activations
 * from all four protocol controllers. Components hold an optional
 * recorder pointer (nullptr = recording off, the common case); a
 * record is one bounds check plus a 40-byte append, so an attached
 * recorder perturbs nothing — the simulation schedule, every checker
 * verdict, and every digest stay bit-identical (pinned by
 * tests/test_trace.cc against the test_msg_goldens.cc constants).
 *
 * This header is deliberately dependency-free (sim/types.hh only) so
 * the memory and protocol layers can record without linking against
 * the higher-level trace library (file I/O, replay, shrinking — see
 * the other files in src/trace/).
 */

#ifndef DRF_TRACE_RECORDER_HH
#define DRF_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace drf
{

/** What one trace record describes. */
enum class TraceEventKind : std::uint8_t
{
    EpisodeIssue,  ///< tester started an episode (a=id, b=syncVar, u32=wf)
    EpisodeRetire, ///< episode release completed   (a=id, b=syncVar, u32=wf)
    MsgSend,       ///< crossbar routed a message   (src/dst, a=addr, b=pktId)
    MsgDeliver,    ///< port delivered a message    (src/dst, a=addr, b=pktId)
    Transition,    ///< controller transition       (src=endpoint, u8=ev, u16=st)

    // DRFTRC01 v4: synchronization completion markers, recorded when an
    // episode's atomic acquire/release response reaches the tester.
    // Together with the per-episode scope they are the input to the
    // offline happens-before reconstruction (src/predict/hb.hh).
    SyncAcquire,   ///< acquire completed (a=id, b=syncVar, src=cu,
                   ///< u8=Scope, u32=wf)
    SyncRelease,   ///< release completed (a=id, b=syncVar, src=cu,
                   ///< u8=Scope, u32=wf)
};

/** Number of TraceEventKind values (for load-time validation). */
constexpr std::uint8_t traceEventKindCount = 7;

/** Printable kind name. */
const char *traceEventKindName(TraceEventKind kind);

/**
 * One fixed-size trace record. The payload fields are overloaded per
 * kind (see TraceEventKind); everything is POD so recording is an
 * append and file I/O is a field-wise copy.
 */
struct TraceEvent
{
    Tick tick = 0;
    std::uint64_t a = 0;    ///< address / episode id
    std::uint64_t b = 0;    ///< packet id / sync var
    std::int32_t src = -1;  ///< source endpoint (or the acting endpoint)
    std::int32_t dst = -1;  ///< destination endpoint (messages only)
    TraceEventKind kind = TraceEventKind::MsgSend;
    std::uint8_t u8 = 0;    ///< MsgType (messages) / event row (transitions)
    std::uint16_t u16 = 0;  ///< state column (transitions)
    std::uint32_t u32 = 0;  ///< wavefront id / requestor
};

/**
 * Append-only buffer of TraceEvents with a hard cap: once @c maxEvents
 * records are held, further records are counted but dropped, so a
 * runaway run cannot exhaust host memory. Single-threaded by design —
 * one recorder belongs to one shard's ApuSystem, exactly like its
 * EventQueue.
 */
class TraceRecorder
{
  public:
    /** Default cap: 4M records = ~160 MB, far beyond any shrink input. */
    static constexpr std::size_t defaultMaxEvents = 4u << 20;

    explicit TraceRecorder(std::size_t max_events = defaultMaxEvents)
        : _maxEvents(max_events)
    {
    }

    /** Append one record (dropped and counted once the cap is hit). */
    void
    record(const TraceEvent &ev)
    {
        if (_events.size() < _maxEvents)
            _events.push_back(ev);
        else
            ++_dropped;
    }

    const std::vector<TraceEvent> &events() const { return _events; }

    /** Records dropped because the cap was reached. */
    std::uint64_t dropped() const { return _dropped; }

    /** Drop all records (the cap is kept). */
    void
    clear()
    {
        _events.clear();
        _dropped = 0;
    }

  private:
    std::size_t _maxEvents;
    std::vector<TraceEvent> _events;
    std::uint64_t _dropped = 0;
};

/**
 * Record one controller (event, state) transition activation; no-op
 * when @p trace is nullptr. Shared by all four protocol controllers.
 */
inline void
recordTransition(TraceRecorder *trace, Tick tick, int endpoint,
                 std::size_t ev, std::size_t st)
{
    if (trace == nullptr)
        return;
    TraceEvent rec;
    rec.tick = tick;
    rec.src = endpoint;
    rec.kind = TraceEventKind::Transition;
    rec.u8 = static_cast<std::uint8_t>(ev);
    rec.u16 = static_cast<std::uint16_t>(st);
    trace->record(rec);
}

} // namespace drf

#endif // DRF_TRACE_RECORDER_HH
