/**
 * @file
 * Delta-debugging minimizer for failing episode schedules.
 *
 * Given a recorded failing run, shrinkRepro searches for a small
 * subsequence of the episode schedule that still reproduces the *same
 * class* of failure (ddmin, Zeller & Hildebrandt). Every candidate
 * subsequence is evaluated by replaying it on a fresh system — cheap,
 * because shrink candidates are far shorter than the original run.
 *
 * Soundness: removing episodes shifts wavefront timing, so a
 * subsequence can overlap episodes that were serialized in the
 * original run and fail with a *genuine* data race rather than the
 * injected/observed bug. A candidate is therefore accepted only if it
 * (a) fails with the original failure class with the recorded fault
 * armed, and (b) — when a fault is armed and verification is on —
 * passes with the fault disarmed, proving the failure is caused by the
 * bug under investigation and not by an artifact of the shrink itself.
 */

#ifndef DRF_TRACE_SHRINK_HH
#define DRF_TRACE_SHRINK_HH

#include <cstdint>
#include <functional>

#include "trace/repro.hh"

namespace drf
{

/** Shrink policy knobs. */
struct ShrinkOptions
{
    /** Hard cap on candidate replays (the dominant cost). */
    std::size_t maxProbes = 2000;

    /**
     * Require candidates to pass with the fault disarmed (ignored when
     * the trace's system has no fault armed).
     */
    bool verifyFaultDependence = true;

    /** Progress callback (probe count, current best size); optional. */
    std::function<void(std::size_t, std::size_t)> progress;
};

/** What the shrink did, for reports and logs. */
struct ShrinkStats
{
    std::size_t originalEpisodes = 0;
    std::size_t shrunkEpisodes = 0;
    std::size_t probes = 0;       ///< replays executed
    std::size_t improvements = 0; ///< accepted (smaller) candidates
    bool probeBudgetExhausted = false;
    double seconds = 0.0;         ///< wall-clock shrink time
};

/**
 * Minimize @p trace's schedule to a near-minimal subsequence that
 * still fails with trace.result.failureClass. Requires a failing
 * trace. Returns the minimized schedule (at worst the original).
 */
EpisodeSchedule shrinkRepro(const ReproTrace &trace,
                            const ShrinkOptions &opts = {},
                            ShrinkStats *stats = nullptr);

} // namespace drf

#endif // DRF_TRACE_SHRINK_HH
