#include "trace/repro.hh"

#include <algorithm>

#include "campaign/campaign_json.hh"
#include "tester/tester_failure.hh"

namespace drf
{

ReproTrace
recordGpuRun(const ApuSystemConfig &sys_cfg,
             const GpuTesterConfig &tester_cfg, const RecordOptions &opts)
{
    ReproTrace trace;
    trace.system = sys_cfg;
    trace.tester = tester_cfg;
    trace.tester.record = nullptr;
    trace.tester.replay = nullptr;

    ApuSystem sys(sys_cfg);
    TraceRecorder events(opts.maxEvents);
    if (opts.captureEvents)
        sys.attachTrace(events);

    GpuTesterConfig run_cfg = trace.tester;
    run_cfg.record = &trace.schedule;
    GpuTester tester(sys, run_cfg);
    trace.result = tester.run();

    if (opts.captureEvents)
        trace.events = events.events();
    return trace;
}

ReproTrace
recordGpuRun(const GpuTestPreset &preset, const RecordOptions &opts)
{
    ReproTrace trace = recordGpuRun(preset.system, preset.tester, opts);
    trace.presetName = preset.name;
    return trace;
}

TesterResult
replayGpuRun(const ReproTrace &trace, const EpisodeSchedule &schedule,
             bool arm_fault, TraceRecorder *events,
             const SchedulePerturbation *perturb)
{
    ApuSystemConfig sys_cfg = trace.system;
    if (!arm_fault)
        sys_cfg.fault = FaultKind::None;

    ApuSystem sys(sys_cfg);
    if (events != nullptr)
        sys.attachTrace(*events);

    GpuTesterConfig run_cfg = trace.tester;
    run_cfg.record = nullptr;
    run_cfg.replay = &schedule;
    if (perturb != nullptr && !perturb->empty())
        run_cfg.perturb = perturb;
    GpuTester tester(sys, run_cfg);
    return tester.run();
}

TesterResult
replayGpuRun(const ReproTrace &trace)
{
    return replayGpuRun(trace, trace.schedule);
}

std::string
reproToJson(const ReproTrace &trace, const EpisodeSchedule &shrunk,
            const TesterResult &result)
{
    JsonWriter w;
    w.beginObject();
    w.key("preset").value(trace.presetName);
    w.key("seed").value(trace.tester.seed);
    w.key("fault").value(faultKindName(trace.system.fault));
    w.key("fault_trigger_pct").value(trace.system.faultTriggerPct);
    w.key("fault_seed").value(trace.system.faultSeed);

    w.key("system").beginObject();
    w.key("protocol").value(protocolKindName(trace.system.l1.protocol));
    w.key("num_cus").value(trace.system.numCus);
    w.key("num_gpu_l2s").value(trace.system.numGpuL2s);
    w.key("num_cpu_caches").value(trace.system.numCpuCaches);
    w.key("line_bytes").value(trace.system.lineBytes);
    w.key("l1_size_bytes").value(trace.system.l1.sizeBytes);
    w.key("l1_assoc").value(trace.system.l1.assoc);
    w.key("l2_size_bytes").value(trace.system.l2.sizeBytes);
    w.key("l2_assoc").value(trace.system.l2.assoc);
    w.endObject();

    w.key("tester").beginObject();
    w.key("scope_mode").value(scopeModeName(trace.tester.scopeMode));
    w.key("wfs_per_cu").value(trace.tester.wfsPerCu);
    w.key("lanes").value(trace.tester.lanes);
    w.key("episodes_per_wf").value(trace.tester.episodesPerWf);
    w.key("actions_per_episode")
        .value(trace.tester.episodeGen.actionsPerEpisode);
    w.key("num_sync_vars").value(trace.tester.variables.numSyncVars);
    w.key("num_normal_vars").value(trace.tester.variables.numNormalVars);
    w.endObject();

    w.key("original").beginObject();
    w.key("episodes").value(std::uint64_t(trace.schedule.size()));
    w.key("failure_class")
        .value(failureClassName(trace.result.failureClass));
    w.key("ticks").value(trace.result.ticks);
    w.endObject();

    w.key("repro").beginObject();
    w.key("episodes").value(std::uint64_t(shrunk.size()));
    w.key("failure_class").value(failureClassName(result.failureClass));
    w.key("ticks").value(result.ticks);
    // The Table V dump: last reader / last writer of the offending
    // variable plus the recent transaction history.
    w.key("report").value(result.report);
    w.endObject();

    w.key("schedule").beginArray();
    for (const Episode &e : shrunk.episodes) {
        w.beginObject();
        w.key("episode_id").value(e.id);
        w.key("wavefront").value(e.wavefrontId);
        w.key("sync_var").value(e.syncVar);
        w.key("scope").value(scopeName(e.scope));
        w.key("actions").value(std::uint64_t(e.numActions()));
        // Sort by VarId so the report's ordering is not an artifact of
        // generation order.
        std::vector<VarId> writes;
        for (const Episode::WriteEntry &entry : e.writes)
            writes.push_back(entry.var);
        std::sort(writes.begin(), writes.end());
        w.key("writes").beginArray();
        for (VarId var : writes) {
            const Episode::WriteInfo &info = *e.findWrite(var);
            w.beginObject();
            w.key("var").value(var);
            w.key("lane").value(info.lane);
            w.key("value").value(info.value);
            w.endObject();
        }
        w.endArray();
        std::vector<VarId> reads(e.reads.begin(), e.reads.end());
        std::sort(reads.begin(), reads.end());
        w.key("reads").beginArray();
        for (VarId var : reads)
            w.value(var);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace drf
