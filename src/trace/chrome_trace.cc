#include "trace/chrome_trace.hh"

#include <string>

#include "campaign/campaign_json.hh"
#include "mem/msg.hh"
#include "mem/scope.hh"
#include "system/apu_system.hh"

namespace drf
{

namespace
{

/** Human name for a crossbar endpoint id (see ApuSystem numbering). */
std::string
endpointName(int endpoint)
{
    if (endpoint < 0)
        return "?";
    if (endpoint < ApuSystem::l2Endpoint(0))
        return "gpu.l1[" + std::to_string(endpoint) + "]";
    if (endpoint < ApuSystem::dirEndpoint) {
        return "gpu.l2[" +
               std::to_string(endpoint - ApuSystem::l2Endpoint(0)) + "]";
    }
    if (endpoint < ApuSystem::cpuEndpoint(0))
        return "dir";
    if (endpoint < ApuSystem::dmaEndpoint) {
        return "cpu[" +
               std::to_string(endpoint - ApuSystem::cpuEndpoint(0)) + "]";
    }
    return "dma";
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    // Process ids group the tracks: 1 = episodes (tid = wavefront),
    // 2 = messages and transitions (tid = endpoint).
    constexpr int kEpisodePid = 1;
    constexpr int kEndpointPid = 2;

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").beginArray();

    auto common = [&](const char *name, const char *phase, Tick tick,
                      int pid, std::uint64_t tid) {
        w.beginObject();
        w.key("name").value(name);
        w.key("ph").value(phase);
        w.key("ts").value(tick);
        w.key("pid").value(pid);
        w.key("tid").value(tid);
    };

    for (const TraceEvent &ev : events) {
        switch (ev.kind) {
          case TraceEventKind::EpisodeIssue:
          case TraceEventKind::EpisodeRetire: {
            bool issue = ev.kind == TraceEventKind::EpisodeIssue;
            std::string name = "episode " + std::to_string(ev.a);
            common(name.c_str(), issue ? "B" : "E", ev.tick, kEpisodePid,
                   ev.u32);
            if (issue) {
                w.key("args").beginObject();
                w.key("sync_var").value(ev.b);
                w.key("cu").value(ev.src);
                w.endObject();
            }
            w.endObject();
            break;
          }
          case TraceEventKind::MsgSend:
          case TraceEventKind::MsgDeliver: {
            bool send = ev.kind == TraceEventKind::MsgSend;
            std::string name =
                std::string(send ? "send " : "recv ") +
                msgTypeName(static_cast<MsgType>(ev.u8));
            common(name.c_str(), "i", ev.tick, kEndpointPid,
                   static_cast<std::uint64_t>(send ? ev.src : ev.dst));
            w.key("s").value("t");
            w.key("args").beginObject();
            w.key("addr").value(ev.a);
            w.key("pkt_id").value(ev.b);
            w.key("from").value(endpointName(ev.src));
            w.key("to").value(endpointName(ev.dst));
            w.endObject();
            w.endObject();
            break;
          }
          case TraceEventKind::SyncAcquire:
          case TraceEventKind::SyncRelease: {
            bool acquire = ev.kind == TraceEventKind::SyncAcquire;
            std::string name = std::string(acquire ? "acquire "
                                                   : "release ") +
                               "episode " + std::to_string(ev.a);
            common(name.c_str(), "i", ev.tick, kEpisodePid, ev.u32);
            w.key("s").value("t");
            w.key("args").beginObject();
            w.key("sync_var").value(ev.b);
            w.key("cu").value(ev.src);
            w.key("scope").value(scopeName(static_cast<Scope>(ev.u8)));
            w.endObject();
            w.endObject();
            break;
          }
          case TraceEventKind::Transition: {
            std::string name = endpointName(ev.src) + " transition";
            common(name.c_str(), "i", ev.tick, kEndpointPid,
                   static_cast<std::uint64_t>(ev.src));
            w.key("s").value("t");
            w.key("args").beginObject();
            w.key("event_row").value(unsigned(ev.u8));
            w.key("state_col").value(unsigned(ev.u16));
            w.endObject();
            w.endObject();
            break;
          }
        }
    }

    // Track names, so viewers label rows usefully.
    common("process_name", "M", 0, kEpisodePid, 0);
    w.key("args").beginObject();
    w.key("name").value("episodes (tid = wavefront)");
    w.endObject();
    w.endObject();
    common("process_name", "M", 0, kEndpointPid, 0);
    w.key("args").beginObject();
    w.key("name").value("endpoints (tid = crossbar endpoint)");
    w.endObject();
    w.endObject();

    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace drf
