/**
 * @file
 * Fleet protocol payloads: the JSON bodies carried by wire.hh frames.
 *
 * The protocol exists to move *descriptions*, not code: a Lease frame
 * carries a ShardLease — (genome, scale, seed, global index) — from
 * which genomeToPreset() reconstructs the exact GpuTestPreset a local
 * campaign would have built, name included. A Result frame carries the
 * journal-format shard record (journal.hh) verbatim, so the
 * coordinator journals the byte-identical line the worker produced and
 * every consumer — journal file, fork pipe, socket — shares one
 * serializer and one parser.
 *
 * Bit-exactness note: the genome's coloc_density is a double that must
 * survive the round trip exactly (it feeds the address-range
 * computation, and a 1-ulp drift would change the simulated system).
 * The shared JsonWriter renders doubles with %.6g for human-facing
 * summaries, so leases serialize density with %.17g — enough digits to
 * round-trip any IEEE double — spliced in as a raw number.
 */

#ifndef DRF_FLEET_PROTOCOL_HH
#define DRF_FLEET_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "campaign/campaign.hh"
#include "guidance/shard_source.hh"

namespace drf::fleet
{

/**
 * Protocol revision; bumped on any frame/payload change.
 * v2: CRC32C frame checksums (wire.hh) and digest-stamped Result
 * payloads. v1 peers fail the frame checksum before they can even
 * introduce themselves; a v2 peer speaking to a newer coordinator is
 * rejected here, at the Hello handshake.
 */
constexpr unsigned kProtocolVersion = 2;

/** Worker introduction (first frame on a new connection). */
struct HelloMsg
{
    unsigned protocolVersion = kProtocolVersion;
    std::string worker; ///< display name, e.g. "host:pid"
    std::uint64_t pid = 0;
    unsigned slots = 1; ///< concurrent shards this worker runs
};

/**
 * Coordinator's reply: the supervision policy every worker must apply
 * so a shard fails (and retries, and times out) identically wherever
 * it runs, plus the flow-control constants.
 */
struct WelcomeMsg
{
    unsigned protocolVersion = kProtocolVersion;
    bool forkIsolation = false;
    double shardTimeoutSeconds = 0.0;
    std::uint64_t shardEventBudget = 0;
    unsigned maxRetries = 2;
    unsigned retryBackoffMs = 10;
    /** Max leases a worker holds (running + queued). */
    unsigned queueDepth = 2;
    /** Worker heartbeat period. */
    unsigned heartbeatMs = 500;
};

/** Periodic worker liveness + progress. */
struct HeartbeatMsg
{
    std::uint64_t inflight = 0;  ///< leases held right now
    std::uint64_t completed = 0; ///< results sent so far
};

std::string serializeHello(const HelloMsg &msg);
bool parseHello(const std::string &payload, HelloMsg &out);

std::string serializeWelcome(const WelcomeMsg &msg);
bool parseWelcome(const std::string &payload, WelcomeMsg &out);

std::string serializeHeartbeat(const HeartbeatMsg &msg);
bool parseHeartbeat(const std::string &payload, HeartbeatMsg &out);

std::string serializeLease(const ShardLease &lease);
bool parseLease(const std::string &payload, ShardLease &out);

/**
 * Reconstruct the runnable shard a lease describes. The returned
 * spec's preset name must equal lease.name — a mismatch means the two
 * ends disagree about genomeToPreset and the worker must refuse the
 * lease rather than run the wrong configuration.
 */
ShardSpec leaseToSpec(const ShardLease &lease);

} // namespace drf::fleet

#endif // DRF_FLEET_PROTOCOL_HH
