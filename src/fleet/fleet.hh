/**
 * @file
 * One-call local fleet: coordinator + N forked worker processes on
 * localhost. The convenience wrapper `tools/fleet run` and the fleet
 * tests build on; multi-host deployments run `tools/fleet coordinator`
 * and `tools/fleet worker` separately instead.
 *
 * Ordering is load-bearing: the coordinator binds its listen socket
 * (learning the ephemeral port) *before* any thread exists, then forks
 * the workers — fork() and threads don't mix — and only then starts
 * the accept/reader machinery inside run().
 */

#ifndef DRF_FLEET_FLEET_HH
#define DRF_FLEET_FLEET_HH

#include "fleet/coordinator.hh"

namespace drf::fleet
{

struct LocalFleetConfig
{
    CoordinatorConfig coordinator;

    /** Worker processes to fork; 0 = degenerate fleet (coordinator
     *  runs every shard itself, in index order — the golden). */
    unsigned workers = 0;

    /** Crash injection: worker 0 SIGKILLs itself instead of sending
     *  its Nth result (see WorkerConfig::dieOnResult); 0 disables. */
    unsigned dieOnResult = 0;

    /**
     * Wire fault rates applied to every forked worker's outbound
     * frames. Each worker gets an independent deterministic fault
     * stream derived from coordinator.chaosSeed and its worker slot
     * (NOT its pid), so a fleet run's fault schedule reproduces.
     */
    chaos::WireRates wireChaos;

    /** Result-corruption injection for worker 0 (see WorkerConfig). */
    unsigned corruptEveryN = 0;
    bool corruptSilently = false;

    /** Reconnect budget for each forked worker; under heavy wire
     *  chaos every corrupted frame costs the worker a session, so
     *  drills raise this well above the WorkerConfig default. */
    unsigned maxReconnects = 5;
};

/**
 * Run one campaign over a localhost fleet. Sets
 * coordinator.expectedWorkers = workers, forks the workers, runs the
 * coordinator to completion, and reaps the children. Returns the
 * coordinator's result; with @p listen_ok (optional) reports whether
 * the socket could be bound (on failure the campaign still completes
 * via the local path).
 */
FleetResult runLocalFleet(ShardSource &source,
                          const LocalFleetConfig &cfg,
                          bool *listen_ok = nullptr);

} // namespace drf::fleet

#endif // DRF_FLEET_FLEET_HH
