#include "fleet/protocol.hh"

#include <cstdio>

#include "campaign/campaign_json.hh"
#include "campaign/json_value.hh"
#include "guidance/genome.hh"
#include "proto/fault.hh"

namespace drf::fleet
{

namespace
{

/** Render a double with enough digits to round-trip exactly. */
std::string
exactDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const JsonValue *
expect(const JsonValue &obj, const char *key, JsonValue::Type type)
{
    const JsonValue *v = obj.find(key);
    if (!v || v->type != type)
        return nullptr;
    return v;
}

} // namespace

std::string
serializeHello(const HelloMsg &msg)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(msg.protocolVersion);
    w.key("worker").value(msg.worker);
    w.key("pid").value(msg.pid);
    w.key("slots").value(msg.slots);
    w.endObject();
    return w.str();
}

bool
parseHello(const std::string &payload, HelloMsg &out)
{
    JsonValue root;
    if (!parseJson(payload, root) ||
        root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *v = expect(root, "v", JsonValue::Type::Number);
    const JsonValue *worker =
        expect(root, "worker", JsonValue::Type::String);
    const JsonValue *pid = expect(root, "pid", JsonValue::Type::Number);
    const JsonValue *slots =
        expect(root, "slots", JsonValue::Type::Number);
    if (!v || !worker || !pid || !slots)
        return false;
    out.protocolVersion = static_cast<unsigned>(v->asU64());
    out.worker = worker->string;
    out.pid = pid->asU64();
    out.slots = static_cast<unsigned>(slots->asU64());
    return true;
}

std::string
serializeWelcome(const WelcomeMsg &msg)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(msg.protocolVersion);
    w.key("fork_isolation").value(msg.forkIsolation);
    w.key("shard_timeout_seconds");
    w.raw(exactDouble(msg.shardTimeoutSeconds));
    w.key("shard_event_budget").value(msg.shardEventBudget);
    w.key("max_retries").value(msg.maxRetries);
    w.key("retry_backoff_ms").value(msg.retryBackoffMs);
    w.key("queue_depth").value(msg.queueDepth);
    w.key("heartbeat_ms").value(msg.heartbeatMs);
    w.endObject();
    return w.str();
}

bool
parseWelcome(const std::string &payload, WelcomeMsg &out)
{
    JsonValue root;
    if (!parseJson(payload, root) ||
        root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *v = expect(root, "v", JsonValue::Type::Number);
    const JsonValue *fork =
        expect(root, "fork_isolation", JsonValue::Type::Bool);
    const JsonValue *timeout =
        expect(root, "shard_timeout_seconds", JsonValue::Type::Number);
    const JsonValue *budget =
        expect(root, "shard_event_budget", JsonValue::Type::Number);
    const JsonValue *retries =
        expect(root, "max_retries", JsonValue::Type::Number);
    const JsonValue *backoff =
        expect(root, "retry_backoff_ms", JsonValue::Type::Number);
    const JsonValue *depth =
        expect(root, "queue_depth", JsonValue::Type::Number);
    const JsonValue *heartbeat =
        expect(root, "heartbeat_ms", JsonValue::Type::Number);
    if (!v || !fork || !timeout || !budget || !retries || !backoff ||
        !depth || !heartbeat)
        return false;
    out.protocolVersion = static_cast<unsigned>(v->asU64());
    out.forkIsolation = fork->boolean;
    out.shardTimeoutSeconds = timeout->asDouble();
    out.shardEventBudget = budget->asU64();
    out.maxRetries = static_cast<unsigned>(retries->asU64());
    out.retryBackoffMs = static_cast<unsigned>(backoff->asU64());
    out.queueDepth = static_cast<unsigned>(depth->asU64());
    out.heartbeatMs = static_cast<unsigned>(heartbeat->asU64());
    return true;
}

std::string
serializeHeartbeat(const HeartbeatMsg &msg)
{
    JsonWriter w;
    w.beginObject();
    w.key("inflight").value(msg.inflight);
    w.key("completed").value(msg.completed);
    w.endObject();
    return w.str();
}

bool
parseHeartbeat(const std::string &payload, HeartbeatMsg &out)
{
    JsonValue root;
    if (!parseJson(payload, root) ||
        root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *inflight =
        expect(root, "inflight", JsonValue::Type::Number);
    const JsonValue *completed =
        expect(root, "completed", JsonValue::Type::Number);
    if (!inflight || !completed)
        return false;
    out.inflight = inflight->asU64();
    out.completed = completed->asU64();
    return true;
}

std::string
serializeLease(const ShardLease &lease)
{
    JsonWriter w;
    w.beginObject();
    w.key("v").value(kProtocolVersion);
    w.key("index").value(static_cast<std::uint64_t>(lease.index));
    w.key("name").value(lease.name);
    w.key("seed").value(lease.seed);

    w.key("genome").beginObject();
    w.key("cache_class")
        .value(cacheSizeClassName(lease.genome.cacheClass));
    w.key("actions_per_episode").value(lease.genome.actionsPerEpisode);
    w.key("episodes_per_wf").value(lease.genome.episodesPerWf);
    w.key("atomic_locs").value(lease.genome.atomicLocs);
    w.key("coloc_density");
    w.raw(exactDouble(lease.genome.colocDensity));
    w.key("num_cus").value(lease.genome.numCus);
    w.key("protocol").value(protocolKindName(lease.genome.protocol));
    w.key("scope_mode").value(scopeModeName(lease.genome.scopeMode));
    w.endObject();

    w.key("scale").beginObject();
    w.key("lanes").value(lease.scale.lanes);
    w.key("wfs_per_cu").value(lease.scale.wfsPerCu);
    w.key("num_normal_vars")
        .value(static_cast<std::uint64_t>(lease.scale.numNormalVars));
    w.key("fault").value(faultKindName(lease.scale.fault));
    w.key("fault_trigger_pct").value(lease.scale.faultTriggerPct);
    w.endObject();

    w.endObject();
    return w.str();
}

bool
parseLease(const std::string &payload, ShardLease &out)
{
    JsonValue root;
    if (!parseJson(payload, root) ||
        root.type != JsonValue::Type::Object)
        return false;
    const JsonValue *index =
        expect(root, "index", JsonValue::Type::Number);
    const JsonValue *name = expect(root, "name", JsonValue::Type::String);
    const JsonValue *seed = expect(root, "seed", JsonValue::Type::Number);
    const JsonValue *genome =
        expect(root, "genome", JsonValue::Type::Object);
    const JsonValue *scale =
        expect(root, "scale", JsonValue::Type::Object);
    if (!index || !name || !seed || !genome || !scale)
        return false;

    const JsonValue *cache_class =
        expect(*genome, "cache_class", JsonValue::Type::String);
    const JsonValue *actions =
        expect(*genome, "actions_per_episode", JsonValue::Type::Number);
    const JsonValue *episodes =
        expect(*genome, "episodes_per_wf", JsonValue::Type::Number);
    const JsonValue *atomic_locs =
        expect(*genome, "atomic_locs", JsonValue::Type::Number);
    const JsonValue *density =
        expect(*genome, "coloc_density", JsonValue::Type::Number);
    const JsonValue *num_cus =
        expect(*genome, "num_cus", JsonValue::Type::Number);
    if (!cache_class || !actions || !episodes || !atomic_locs ||
        !density || !num_cus)
        return false;
    auto parsed_class = parseCacheSizeClass(cache_class->string);
    if (!parsed_class)
        return false;

    const JsonValue *lanes =
        expect(*scale, "lanes", JsonValue::Type::Number);
    const JsonValue *wfs =
        expect(*scale, "wfs_per_cu", JsonValue::Type::Number);
    const JsonValue *vars =
        expect(*scale, "num_normal_vars", JsonValue::Type::Number);
    const JsonValue *fault =
        expect(*scale, "fault", JsonValue::Type::String);
    const JsonValue *trigger =
        expect(*scale, "fault_trigger_pct", JsonValue::Type::Number);
    if (!lanes || !wfs || !vars || !fault || !trigger)
        return false;
    auto parsed_fault = parseFaultKind(fault->string);
    if (!parsed_fault)
        return false;

    ShardLease lease;
    lease.index = static_cast<std::size_t>(index->asU64());
    lease.name = name->string;
    lease.seed = seed->asU64();
    lease.genome.cacheClass = *parsed_class;
    lease.genome.actionsPerEpisode =
        static_cast<unsigned>(actions->asU64());
    lease.genome.episodesPerWf =
        static_cast<unsigned>(episodes->asU64());
    lease.genome.atomicLocs =
        static_cast<unsigned>(atomic_locs->asU64());
    lease.genome.colocDensity = density->asDouble();
    lease.genome.numCus = static_cast<unsigned>(num_cus->asU64());
    // Protocol/scope keys arrived after the first wire revision; absent
    // keys mean the defaults, so old coordinators keep working.
    if (const JsonValue *protocol =
            expect(*genome, "protocol", JsonValue::Type::String)) {
        auto parsed = parseProtocolKind(protocol->string);
        if (!parsed)
            return false;
        lease.genome.protocol = *parsed;
    }
    if (const JsonValue *scope_mode =
            expect(*genome, "scope_mode", JsonValue::Type::String)) {
        auto parsed = parseScopeMode(scope_mode->string);
        if (!parsed)
            return false;
        lease.genome.scopeMode = *parsed;
    }
    lease.scale.lanes = static_cast<unsigned>(lanes->asU64());
    lease.scale.wfsPerCu = static_cast<unsigned>(wfs->asU64());
    lease.scale.numNormalVars =
        static_cast<std::uint32_t>(vars->asU64());
    lease.scale.fault = *parsed_fault;
    lease.scale.faultTriggerPct =
        static_cast<unsigned>(trigger->asU64());
    out = std::move(lease);
    return true;
}

ShardSpec
leaseToSpec(const ShardLease &lease)
{
    GpuTestPreset preset =
        genomeToPreset(lease.genome, lease.scale, lease.seed);
    return gpuShard(preset);
}

} // namespace drf::fleet
