#include "fleet/wire.hh"

#include "campaign/posix_io.hh"
#include "chaos/chaos.hh"

namespace drf::fleet
{

namespace
{

std::uint32_t
frameCrc(MsgType type, const char *payload, std::size_t len)
{
    unsigned char type_byte = static_cast<unsigned char>(type);
    std::uint32_t crc = chaos::crc32c(&type_byte, 1);
    return chaos::crc32c(payload, len, crc);
}

void
putU32le(std::string &out, std::uint32_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t
getU32le(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

} // namespace

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "hello";
      case MsgType::Welcome: return "welcome";
      case MsgType::Lease: return "lease";
      case MsgType::Result: return "result";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::Steal: return "steal";
      case MsgType::Shutdown: return "shutdown";
    }
    return "?";
}

const char *
wireStatusName(WireStatus status)
{
    switch (status) {
      case WireStatus::Ok: return "ok";
      case WireStatus::Eof: return "eof";
      case WireStatus::Oversized: return "oversized";
      case WireStatus::Corrupt: return "corrupt";
    }
    return "?";
}

std::string
encodeFrame(MsgType type, const std::string &payload)
{
    std::string frame;
    frame.reserve(kFrameHeaderSize + payload.size());
    putU32le(frame, static_cast<std::uint32_t>(payload.size()));
    frame.push_back(static_cast<char>(type));
    putU32le(frame, frameCrc(type, payload.data(), payload.size()));
    frame.append(payload);
    return frame;
}

bool
sendRawFrame(int fd, const std::string &frame)
{
    return io::writeAll(fd, frame);
}

bool
sendFrame(int fd, MsgType type, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    // One buffer, one writeAll: frames from concurrent senders must
    // not interleave mid-frame (senders still serialize per-fd).
    return sendRawFrame(fd, encodeFrame(type, payload));
}

WireStatus
recvFrameEx(int fd, Frame &out)
{
    unsigned char head[kFrameHeaderSize];
    if (!io::readExact(fd, head, sizeof(head)))
        return WireStatus::Eof;
    std::uint32_t len = getU32le(head);
    if (len > kMaxFramePayload)
        return WireStatus::Oversized;
    MsgType type = static_cast<MsgType>(head[4]);
    std::uint32_t want_crc = getU32le(head + 5);
    std::string payload(len, '\0');
    if (len != 0 && !io::readExact(fd, payload.data(), len))
        return WireStatus::Eof;
    if (frameCrc(type, payload.data(), payload.size()) != want_crc)
        return WireStatus::Corrupt;
    out.type = type;
    out.payload = std::move(payload);
    return WireStatus::Ok;
}

bool
recvFrame(int fd, Frame &out)
{
    return recvFrameEx(fd, out) == WireStatus::Ok;
}

} // namespace drf::fleet
