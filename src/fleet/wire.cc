#include "fleet/wire.hh"

#include "campaign/posix_io.hh"

namespace drf::fleet
{

const char *
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::Hello: return "hello";
      case MsgType::Welcome: return "welcome";
      case MsgType::Lease: return "lease";
      case MsgType::Result: return "result";
      case MsgType::Heartbeat: return "heartbeat";
      case MsgType::Steal: return "steal";
      case MsgType::Shutdown: return "shutdown";
    }
    return "?";
}

bool
sendFrame(int fd, MsgType type, const std::string &payload)
{
    if (payload.size() > kMaxFramePayload)
        return false;
    // One buffer, one writeAll: frames from concurrent senders must
    // not interleave mid-frame (senders still serialize per-fd).
    std::string frame;
    frame.reserve(5 + payload.size());
    std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    frame.push_back(static_cast<char>(len & 0xff));
    frame.push_back(static_cast<char>((len >> 8) & 0xff));
    frame.push_back(static_cast<char>((len >> 16) & 0xff));
    frame.push_back(static_cast<char>((len >> 24) & 0xff));
    frame.push_back(static_cast<char>(type));
    frame.append(payload);
    return io::writeAll(fd, frame);
}

bool
recvFrame(int fd, Frame &out)
{
    unsigned char head[5];
    if (!io::readExact(fd, head, sizeof(head)))
        return false;
    std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                        (static_cast<std::uint32_t>(head[1]) << 8) |
                        (static_cast<std::uint32_t>(head[2]) << 16) |
                        (static_cast<std::uint32_t>(head[3]) << 24);
    if (len > kMaxFramePayload)
        return false;
    out.type = static_cast<MsgType>(head[4]);
    out.payload.resize(len);
    if (len != 0 && !io::readExact(fd, out.payload.data(), len))
        return false;
    return true;
}

} // namespace drf::fleet
