/**
 * @file
 * Fleet worker: connect, lease, execute, report — in one process.
 *
 * A worker is deliberately thin. All campaign policy lives on the
 * coordinator and arrives in the Welcome frame; the worker's only job
 * is to turn leases into journal-format result lines using the same
 * ShardRunner a local supervised campaign uses, so a shard fails,
 * retries, and times out identically wherever it runs.
 *
 * Protocol from the worker's side:
 *   connect → Hello → Welcome → { Lease* → Result* | Steal |
 *   Heartbeat }* → Shutdown/EOF → exit.
 *
 * The coordinator bounds the worker's queue (queueDepth leases
 * outstanding); the worker additionally sends Steal when idle so
 * stragglers elsewhere get duplicated onto it. A heartbeat thread keeps
 * the connection visibly alive while a long shard runs.
 */

#ifndef DRF_FLEET_WORKER_HH
#define DRF_FLEET_WORKER_HH

#include <string>

namespace drf::fleet
{

struct WorkerConfig
{
    std::string host = "127.0.0.1";
    unsigned short port = 0;

    /** Display name sent in Hello; empty derives "local:<pid>". */
    std::string name;

    /**
     * Fault injection for fleet tests: when N > 0, the worker SIGKILLs
     * itself *instead of sending* its Nth result — it completes N-1
     * shards, computes the Nth, and dies holding that lease (plus
     * anything queued), so the coordinator must re-lease to finish.
     * 0 disables.
     */
    unsigned dieOnResult = 0;
};

/**
 * Run one worker until the coordinator says Shutdown (or the
 * connection drops). Returns a process exit code: 0 on a clean
 * shutdown, nonzero on connect/handshake failure.
 */
int runWorker(const WorkerConfig &cfg);

} // namespace drf::fleet

#endif // DRF_FLEET_WORKER_HH
