/**
 * @file
 * Fleet worker: connect, lease, execute, report — in one process.
 *
 * A worker is deliberately thin. All campaign policy lives on the
 * coordinator and arrives in the Welcome frame; the worker's only job
 * is to turn leases into journal-format result lines using the same
 * ShardRunner a local supervised campaign uses, so a shard fails,
 * retries, and times out identically wherever it runs.
 *
 * Protocol from the worker's side:
 *   connect → Hello → Welcome → { Lease* → Result* | Steal |
 *   Heartbeat }* → Shutdown/EOF → exit.
 *
 * The coordinator bounds the worker's queue (queueDepth leases
 * outstanding); the worker additionally sends Steal when idle so
 * stragglers elsewhere get duplicated onto it. A heartbeat thread keeps
 * the connection visibly alive while a long shard runs.
 *
 * Result integrity: every Result payload is stamped with an FNV-1a64
 * digest of the record line ("%016llx <line>"), computed independently
 * of the frame checksum, so the coordinator can tell "this worker
 * computed something else" (bad RAM, miscompiled binary) apart from
 * "the wire damaged the bytes" (CRC failure). The digest is end-to-end:
 * it is computed before the frame is encoded and checked after it is
 * decoded.
 *
 * Degradation: losing the coordinator mid-campaign is an expected
 * event (chaos drills SIGKILL it on purpose). A worker whose session
 * drops — EOF, send failure, poisoned stream — reconnects with linear
 * backoff up to maxReconnects times and re-handshakes; completed-shard
 * accounting (and the dieOnResult crash countdown) persists across
 * sessions. Only a worker that never managed a single handshake exits
 * with a connect error.
 *
 * Fault injection (chaos drills): wireChaos plans per-frame faults —
 * drop, duplicate, delay, byte flip, truncation — applied to the
 * worker's *outbound* frames only, post-handshake, from a seeded
 * deterministic plan (chaos/wire_chaos.hh). corruptEveryN simulates a
 * worker whose computation is wrong: every Nth-indexed lease has its
 * result line perturbed before sending; with corruptSilently the
 * digest covers the perturbed line (only result-level quorum can catch
 * it), without it the digest covers the true line (the coordinator's
 * digest check catches it).
 */

#ifndef DRF_FLEET_WORKER_HH
#define DRF_FLEET_WORKER_HH

#include <cstdint>
#include <string>

#include "chaos/chaos.hh"

namespace drf::fleet
{

struct WorkerConfig
{
    std::string host = "127.0.0.1";
    unsigned short port = 0;

    /** Display name sent in Hello; empty derives "local:<pid>". */
    std::string name;

    /**
     * Fault injection for fleet tests: when N > 0, the worker SIGKILLs
     * itself *instead of sending* its Nth result — it completes N-1
     * shards, computes the Nth, and dies holding that lease (plus
     * anything queued), so the coordinator must re-lease to finish.
     * 0 disables. Counts across reconnected sessions.
     */
    unsigned dieOnResult = 0;

    /** Outbound wire fault rates; all-zero disables injection. */
    chaos::WireRates wireChaos;
    /** Seed of this worker's fault plan (derive one per worker). */
    std::uint64_t chaosSeed = 0;

    /** Perturb the result of every lease whose index % N == 0;
     *  0 disables. */
    unsigned corruptEveryN = 0;
    /** Stamp the digest over the *perturbed* line, so only quorum
     *  verification (not the digest check) can catch the lie. */
    bool corruptSilently = false;

    /** Reconnect attempts after a lost session before giving up. */
    unsigned maxReconnects = 5;
    /** Backoff before reconnect attempt N is N * this. */
    unsigned reconnectBackoffMs = 100;
};

/**
 * Run one worker until the coordinator says Shutdown (or the
 * connection is lost beyond recovery). Returns a process exit code:
 * 0 on a clean shutdown, 2 on connect/handshake failure, 3 when the
 * reconnect budget is exhausted.
 */
int runWorker(const WorkerConfig &cfg);

} // namespace drf::fleet

#endif // DRF_FLEET_WORKER_HH
