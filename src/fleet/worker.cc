#include "fleet/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_FLEET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRF_FLEET_HAVE_SOCKETS 0
#endif

#include "campaign/journal.hh"
#include "campaign/posix_io.hh"
#include "campaign/supervisor.hh"
#include "chaos/wire_chaos.hh"
#include "fleet/protocol.hh"
#include "fleet/wire.hh"

namespace drf::fleet
{

#if DRF_FLEET_HAVE_SOCKETS

namespace
{

int
connectTo(const std::string &host, unsigned short port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/**
 * Send one frame through the wire-chaos plan (no-op plan when
 * @p wc is null). Caller holds the per-fd send mutex. Returns false
 * when the stream must be considered dead: a real send failure, or an
 * injected truncation (the receiver is now mid-frame and can only
 * resynchronize by reconnecting).
 */
bool
chaosSend(int fd, chaos::WireChaos *wc, MsgType type,
          const std::string &payload)
{
    if (!wc)
        return sendFrame(fd, type, payload);
    std::string frame = encodeFrame(type, payload);
    chaos::FramePlan plan =
        wc->planFrame(frame.size(), kFrameMutableOffset);
    if (plan.drop)
        return true; // discarded in flight; sender can't tell
    if (plan.delayMs > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan.delayMs));
    if (plan.flipOffset >= 0 &&
        static_cast<std::size_t>(plan.flipOffset) < frame.size())
        frame[static_cast<std::size_t>(plan.flipOffset)] ^=
            static_cast<char>(plan.flipMask);
    if (plan.truncateTo < frame.size()) {
        frame.resize(plan.truncateTo);
        sendRawFrame(fd, frame);
        return false; // poisoned the stream mid-frame
    }
    for (unsigned i = 0; i < plan.copies; ++i) {
        if (!sendRawFrame(fd, frame))
            return false;
    }
    return true;
}

/**
 * Simulate a worker that computes the wrong answer: bump the events
 * counter in the serialized record. Any single-character change that
 * keeps the line parseable works — the point is a well-formed record
 * whose *content* diverges from the deterministic truth.
 */
void
perturbLine(std::string &line)
{
    std::size_t pos = line.find("\"events\":");
    if (pos == std::string::npos || pos + 9 >= line.size())
        return;
    char &digit = line[pos + 9];
    if (digit >= '0' && digit <= '8')
        ++digit;
    else if (digit == '9')
        digit = '8';
}

/** Stamp the end-to-end digest prefix onto a result line. */
std::string
stampDigest(const std::string &digest_over, const std::string &line)
{
    char head[20];
    std::snprintf(head, sizeof(head), "%016llx ",
                  static_cast<unsigned long long>(
                      chaos::fnv1a64(digest_over)));
    return head + line;
}

enum class SessionEnd
{
    CleanShutdown, ///< coordinator sent Shutdown: campaign over
    Lost,          ///< EOF / send failure / poisoned stream
    VersionReject, ///< handshake parsed but versions disagree
};

/** One connected session: handshake through Shutdown/loss. */
SessionEnd
runSession(int fd, const WorkerConfig &cfg, chaos::WireChaos *wc,
           std::atomic<std::uint64_t> &completed)
{
    HelloMsg hello;
    hello.worker = cfg.name.empty()
                       ? "local:" + std::to_string(::getpid())
                       : cfg.name;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    Frame welcome_frame;
    WelcomeMsg welcome;
    // The handshake itself is never chaos-wrapped: fault injection
    // models a flaky network *during* a campaign, and a drill that
    // could lose its own enrollment would just measure connect retry.
    if (!sendFrame(fd, MsgType::Hello, serializeHello(hello)) ||
        !recvFrame(fd, welcome_frame) ||
        welcome_frame.type != MsgType::Welcome ||
        !parseWelcome(welcome_frame.payload, welcome))
        return SessionEnd::Lost;
    if (welcome.protocolVersion != kProtocolVersion)
        return SessionEnd::VersionReject;

    SupervisorConfig runner_cfg;
    runner_cfg.forkIsolation = welcome.forkIsolation;
    runner_cfg.shardTimeoutSeconds = welcome.shardTimeoutSeconds;
    runner_cfg.shardEventBudget = welcome.shardEventBudget;
    runner_cfg.maxRetries = welcome.maxRetries;
    runner_cfg.retryBackoffMs = welcome.retryBackoffMs;
    ShardRunner runner(runner_cfg);

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<ShardLease> queue; // depth enforced coordinator-side
    std::atomic<bool> done{false};
    std::atomic<bool> got_shutdown{false};
    std::atomic<std::uint64_t> inflight{0};
    std::mutex send_mutex; // Result and Heartbeat frames interleave

    runner.setStopCheck(
        [&done] { return done.load(std::memory_order_acquire); });

    std::thread reader([&] {
        for (;;) {
            Frame frame;
            if (!recvFrame(fd, frame))
                break;
            if (frame.type == MsgType::Shutdown) {
                got_shutdown.store(true, std::memory_order_release);
                break;
            }
            if (frame.type != MsgType::Lease)
                continue;
            ShardLease lease;
            if (!parseLease(frame.payload, lease)) {
                std::fprintf(stderr,
                              "fleet worker: unparseable lease\n");
                continue; // coordinator's timeout recovers it
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                queue.push_back(std::move(lease));
            }
            cv.notify_all();
        }
        done.store(true, std::memory_order_release);
        cv.notify_all();
    });

    std::thread heartbeat([&] {
        unsigned period = welcome.heartbeatMs == 0
                              ? 500u
                              : welcome.heartbeatMs;
        while (!done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(period));
            if (done.load(std::memory_order_acquire))
                break;
            HeartbeatMsg hb;
            hb.inflight = inflight.load(std::memory_order_relaxed);
            hb.completed = completed.load(std::memory_order_relaxed);
            bool idle;
            {
                std::lock_guard<std::mutex> lock(mutex);
                idle = queue.empty() && hb.inflight == 0;
            }
            std::lock_guard<std::mutex> send_lock(send_mutex);
            if (!chaosSend(fd, wc, MsgType::Heartbeat,
                           serializeHeartbeat(hb)))
                break;
            if (idle)
                chaosSend(fd, wc, MsgType::Steal, "");
        }
    });

    for (;;) {
        ShardLease lease;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] {
                return !queue.empty() ||
                       done.load(std::memory_order_acquire);
            });
            if (queue.empty())
                break; // done and drained
            lease = std::move(queue.front());
            queue.pop_front();
        }
        inflight.fetch_add(1, std::memory_order_relaxed);
        ShardSpec spec = leaseToSpec(lease);
        if (spec.name != lease.name) {
            // The two ends disagree about genomeToPreset; running the
            // wrong configuration would poison the campaign. Drop the
            // lease; the coordinator re-leases it elsewhere.
            std::fprintf(stderr,
                          "fleet worker: lease name mismatch "
                          "('%s' vs '%s'), refusing\n",
                          lease.name.c_str(), spec.name.c_str());
            inflight.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        ShardOutcome out = runner.run(std::move(spec), lease.index);
        std::string line = shardOutcomeToJson(out);
        std::string wire_line = line;
        if (cfg.corruptEveryN != 0 &&
            lease.index % cfg.corruptEveryN == 0)
            perturbLine(wire_line);
        // Loud corruption digests the true line (the mismatch is the
        // detection signal); silent corruption digests the lie and can
        // only be caught by cross-worker quorum.
        const std::string &digest_over =
            cfg.corruptSilently ? wire_line : line;
        std::string payload = stampDigest(digest_over, wire_line);
        std::uint64_t nth =
            completed.load(std::memory_order_relaxed) + 1;
        if (cfg.dieOnResult != 0 && nth >= cfg.dieOnResult) {
            // Crash injection: die holding the result, never send it.
            ::raise(SIGKILL);
        }
        {
            std::lock_guard<std::mutex> send_lock(send_mutex);
            if (!chaosSend(fd, wc, MsgType::Result, payload)) {
                done.store(true, std::memory_order_release);
                cv.notify_all();
                break;
            }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        inflight.fetch_sub(1, std::memory_order_relaxed);
    }

    done.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
    cv.notify_all();
    if (reader.joinable())
        reader.join();
    if (heartbeat.joinable())
        heartbeat.join();
    return got_shutdown.load(std::memory_order_acquire)
               ? SessionEnd::CleanShutdown
               : SessionEnd::Lost;
}

} // namespace

int
runWorker(const WorkerConfig &cfg)
{
    io::ignoreSigpipe();

    std::unique_ptr<chaos::WireChaos> wire_chaos;
    if (cfg.wireChaos.any())
        wire_chaos = std::make_unique<chaos::WireChaos>(cfg.chaosSeed,
                                                        cfg.wireChaos);

    std::atomic<std::uint64_t> completed{0};
    bool ever_connected = false;
    unsigned attempts = 0;
    for (;;) {
        int fd = connectTo(cfg.host, cfg.port);
        if (fd >= 0) {
            SessionEnd end =
                runSession(fd, cfg, wire_chaos.get(), completed);
            ::close(fd);
            if (end == SessionEnd::CleanShutdown)
                return 0;
            if (end == SessionEnd::VersionReject) {
                std::fprintf(stderr,
                              "fleet worker: protocol version "
                              "mismatch, refusing to serve\n");
                return 2;
            }
            ever_connected = true;
        } else if (!ever_connected) {
            std::fprintf(stderr,
                          "fleet worker: cannot connect to %s:%u\n",
                          cfg.host.c_str(), unsigned(cfg.port));
            return 2;
        }
        // Lost session (or lost coordinator): linear-backoff rejoin.
        // The coordinator treats a reconnect as a brand-new worker and
        // re-leases whatever this process was holding.
        ++attempts;
        if (attempts > cfg.maxReconnects) {
            std::fprintf(stderr,
                          "fleet worker: gave up after %u reconnect "
                          "attempts\n",
                          cfg.maxReconnects);
            return 3;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<std::uint64_t>(cfg.reconnectBackoffMs) *
            attempts));
    }
}

#else // !DRF_FLEET_HAVE_SOCKETS

int
runWorker(const WorkerConfig &)
{
    std::fprintf(stderr,
                  "fleet worker: sockets unavailable on this platform\n");
    return 2;
}

#endif

} // namespace drf::fleet
