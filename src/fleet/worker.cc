#include "fleet/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_FLEET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRF_FLEET_HAVE_SOCKETS 0
#endif

#include "campaign/journal.hh"
#include "campaign/posix_io.hh"
#include "campaign/supervisor.hh"
#include "fleet/protocol.hh"
#include "fleet/wire.hh"

namespace drf::fleet
{

#if DRF_FLEET_HAVE_SOCKETS

namespace
{

int
connectTo(const std::string &host, unsigned short port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

int
runWorker(const WorkerConfig &cfg)
{
    io::ignoreSigpipe();

    int fd = connectTo(cfg.host, cfg.port);
    if (fd < 0) {
        std::fprintf(stderr, "fleet worker: cannot connect to %s:%u\n",
                      cfg.host.c_str(), unsigned(cfg.port));
        return 2;
    }

    HelloMsg hello;
    hello.worker = cfg.name.empty()
                       ? "local:" + std::to_string(::getpid())
                       : cfg.name;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    Frame welcome_frame;
    WelcomeMsg welcome;
    if (!sendFrame(fd, MsgType::Hello, serializeHello(hello)) ||
        !recvFrame(fd, welcome_frame) ||
        welcome_frame.type != MsgType::Welcome ||
        !parseWelcome(welcome_frame.payload, welcome) ||
        welcome.protocolVersion != kProtocolVersion) {
        std::fprintf(stderr, "fleet worker: handshake failed\n");
        ::close(fd);
        return 2;
    }

    SupervisorConfig runner_cfg;
    runner_cfg.forkIsolation = welcome.forkIsolation;
    runner_cfg.shardTimeoutSeconds = welcome.shardTimeoutSeconds;
    runner_cfg.shardEventBudget = welcome.shardEventBudget;
    runner_cfg.maxRetries = welcome.maxRetries;
    runner_cfg.retryBackoffMs = welcome.retryBackoffMs;
    ShardRunner runner(runner_cfg);

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<ShardLease> queue; // depth enforced coordinator-side
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> completed{0};
    std::mutex send_mutex; // Result and Heartbeat frames interleave

    runner.setStopCheck(
        [&done] { return done.load(std::memory_order_acquire); });

    std::thread reader([&] {
        for (;;) {
            Frame frame;
            if (!recvFrame(fd, frame))
                break;
            if (frame.type == MsgType::Shutdown)
                break;
            if (frame.type != MsgType::Lease)
                continue;
            ShardLease lease;
            if (!parseLease(frame.payload, lease)) {
                std::fprintf(stderr,
                              "fleet worker: unparseable lease\n");
                continue; // coordinator's timeout recovers it
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                queue.push_back(std::move(lease));
            }
            cv.notify_all();
        }
        done.store(true, std::memory_order_release);
        cv.notify_all();
    });

    std::thread heartbeat([&] {
        unsigned period = welcome.heartbeatMs == 0
                              ? 500u
                              : welcome.heartbeatMs;
        while (!done.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(period));
            if (done.load(std::memory_order_acquire))
                break;
            HeartbeatMsg hb;
            hb.inflight = inflight.load(std::memory_order_relaxed);
            hb.completed = completed.load(std::memory_order_relaxed);
            bool idle;
            {
                std::lock_guard<std::mutex> lock(mutex);
                idle = queue.empty() && hb.inflight == 0;
            }
            std::lock_guard<std::mutex> send_lock(send_mutex);
            if (!sendFrame(fd, MsgType::Heartbeat,
                           serializeHeartbeat(hb)))
                break;
            if (idle)
                sendFrame(fd, MsgType::Steal, "");
        }
    });

    for (;;) {
        ShardLease lease;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] {
                return !queue.empty() ||
                       done.load(std::memory_order_acquire);
            });
            if (queue.empty())
                break; // done and drained
            lease = std::move(queue.front());
            queue.pop_front();
        }
        inflight.fetch_add(1, std::memory_order_relaxed);
        ShardSpec spec = leaseToSpec(lease);
        if (spec.name != lease.name) {
            // The two ends disagree about genomeToPreset; running the
            // wrong configuration would poison the campaign. Drop the
            // lease; the coordinator re-leases it elsewhere.
            std::fprintf(stderr,
                          "fleet worker: lease name mismatch "
                          "('%s' vs '%s'), refusing\n",
                          lease.name.c_str(), spec.name.c_str());
            inflight.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        ShardOutcome out = runner.run(std::move(spec), lease.index);
        std::string line = shardOutcomeToJson(out);
        std::uint64_t nth =
            completed.load(std::memory_order_relaxed) + 1;
        if (cfg.dieOnResult != 0 && nth >= cfg.dieOnResult) {
            // Crash injection: die holding the result, never send it.
            ::raise(SIGKILL);
        }
        {
            std::lock_guard<std::mutex> send_lock(send_mutex);
            if (!sendFrame(fd, MsgType::Result, line)) {
                done.store(true, std::memory_order_release);
                cv.notify_all();
                break;
            }
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        inflight.fetch_sub(1, std::memory_order_relaxed);
    }

    done.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
    cv.notify_all();
    if (reader.joinable())
        reader.join();
    if (heartbeat.joinable())
        heartbeat.join();
    ::close(fd);
    return 0;
}

#else // !DRF_FLEET_HAVE_SOCKETS

int
runWorker(const WorkerConfig &)
{
    std::fprintf(stderr,
                  "fleet worker: sockets unavailable on this platform\n");
    return 2;
}

#endif

} // namespace drf::fleet
