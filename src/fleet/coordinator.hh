/**
 * @file
 * Fleet coordinator: shards one adaptive campaign across worker
 * processes over TCP.
 *
 * The coordinator owns everything that must be centralized for the
 * campaign to stay deterministic — the ShardSource (and so the guided
 * scheduler's bandit state), the global shard index counter, the
 * append-only journal, and the FeedbackLoop — and distributes the one
 * thing that parallelizes perfectly: shard execution, which is a pure
 * function of (genome, scale, seed).
 *
 * Scheduling is batch-synchronous: one source batch is leased out,
 * executed fleet-wide, and fully merged (results drained in global
 * shard-index order) before the source sees any feedback or issues the
 * next batch. Results stream in over sockets in arbitrary order and
 * land in a StreamingShardMerge immediately (incremental merge); the
 * index-ordered drain at the batch barrier is what makes the guided
 * scheduler's decision sequence — and every aggregate — a pure
 * function of the master seed, whatever the worker count, arrival
 * order, steal history, or resume state.
 *
 * Resilience: workers heartbeat; a worker that disconnects, dies, or
 * goes silent past the heartbeat timeout has its outstanding leases
 * returned to the pending queue and re-leased (work stealing's
 * recovery half). An idle worker may request work (Steal frame) and be
 * handed a duplicate of the oldest lease still outstanding elsewhere
 * (the proactive half); the first result for an index wins and
 * duplicates are dropped by the merge. With localFallback the
 * coordinator executes stranded leases itself through the same
 * ShardRunner a worker would use, so a campaign always completes even
 * if every worker dies.
 *
 * expectedWorkers == 0 is the degenerate fleet: no socket is opened
 * and every lease runs locally, in index order, through the identical
 * lease → spec → ShardRunner → journal-line → merge path. That run is
 * the bit-identity golden the distributed tests compare against.
 */

#ifndef DRF_FLEET_COORDINATOR_HH
#define DRF_FLEET_COORDINATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "campaign/supervisor.hh"
#include "chaos/chaos.hh"
#include "guidance/adaptive_campaign.hh"

namespace drf::fleet
{

/** Coordinator policy. */
struct CoordinatorConfig
{
    /** Stop / coverage policy of the adaptive loop. */
    AdaptiveCampaignConfig campaign;

    // Supervision policy applied to every shard attempt, locally and
    // (via the Welcome frame) on every worker.
    bool forkIsolation = false;
    double shardTimeoutSeconds = 0.0;
    std::uint64_t shardEventBudget = 0;
    unsigned maxRetries = 2;
    unsigned retryBackoffMs = 10;

    /** Listen address; 0.0.0.0 admits remote hosts. */
    std::string bindAddress = "127.0.0.1";
    /** Listen port; 0 picks an ephemeral port (see boundPort()). */
    unsigned short port = 0;
    /** Workers to wait for before the first batch; 0 = run locally. */
    unsigned expectedWorkers = 0;
    /** Max seconds to wait for expectedWorkers to connect. */
    double workerWaitSeconds = 30.0;

    /** Re-lease an outstanding lease after this long; 0 disables. */
    double leaseTimeoutSeconds = 0.0;
    /** A Steal request only duplicates leases outstanding at least
     *  this long — younger ones are presumed healthily in progress. */
    double stealMinAgeSeconds = 2.0;
    /** Declare a silent worker dead after this long. */
    double heartbeatTimeoutSeconds = 10.0;
    /** Max leases a worker holds (running + queued). */
    unsigned queueDepth = 2;
    /** Heartbeat period shipped to workers. */
    unsigned heartbeatMs = 500;

    /** Append-only JSONL journal; empty disables checkpointing. */
    std::string journalPath;
    /** Adopt completed shards from journalPath before leasing. */
    bool resume = false;

    /** Execute stranded leases locally if the fleet empties. */
    bool localFallback = true;

    /** Stop after this many batches (testing: interrupted-fleet
     *  resume); 0 = run the source to completion. */
    std::size_t maxRounds = 0;

    /**
     * Result-level integrity quorum: every staged lease whose global
     * index is a multiple of N is also duplicated to a second worker,
     * and the two result lines are byte-compared. A mismatch means a
     * worker computed (or reported) the wrong answer without tripping
     * any transport check — the shard is re-run locally as the
     * authoritative tiebreak and counted as a WorkerDivergence.
     * 0 disables; 1 verifies every shard.
     */
    unsigned verifyQuorum = 0;

    /** Disk fault rates injected under the coordinator's journal
     *  writer; all-zero disables injection. */
    chaos::DiskRates diskChaos;
    /** Master seed for the coordinator's chaos streams. */
    std::uint64_t chaosSeed = 0;
};

/** Everything one fleet campaign produced. */
struct FleetResult
{
    AdaptiveCampaignResult adaptive;
    /** The StreamingShardMerge's view (throughput, triage, unions). */
    CampaignResult campaign;

    unsigned workersSeen = 0;       ///< connections accepted
    std::uint64_t leasesIssued = 0; ///< Lease frames sent
    std::uint64_t releases = 0;     ///< re-leases (death + steal)
    std::uint64_t duplicateResults = 0;
    std::uint64_t localRuns = 0; ///< leases executed by the coordinator
    std::size_t shardsResumed = 0;
    bool halted = false; ///< stopped by maxRounds, source not drained

    // Integrity detections (what the stack *caught* — every injected
    // corruption must land in one of these, never in the aggregates).
    std::uint64_t frameCorruptions = 0; ///< CRC/oversize stream kills
    std::uint64_t digestMismatches = 0; ///< end-to-end digest failed
    std::uint64_t quorumLeases = 0;     ///< verification duplicates sent
    std::uint64_t quorumDivergences = 0; ///< byte-differing result pairs
    std::vector<std::size_t> divergedIndices; ///< shards that diverged
    std::uint64_t resumeCrcSkipped = 0;   ///< damaged journal records
    std::uint64_t resumeParseSkipped = 0; ///< torn journal records

    /** Journal writer health at campaign end (degraded = the campaign
     *  completed but is not resumable past the degradation point). */
    JournalStatus journalStatus;
};

/**
 * Render the fleet's integrity/triage counters as JSON — everything
 * that must NOT feed the deterministic aggregates (detection counts
 * depend on timing and fault schedules; aggregates must not).
 */
std::string fleetTriageJson(const FleetResult &result);

class FleetCoordinator
{
  public:
    FleetCoordinator(ShardSource &source, const CoordinatorConfig &cfg);
    ~FleetCoordinator();

    FleetCoordinator(const FleetCoordinator &) = delete;
    FleetCoordinator &operator=(const FleetCoordinator &) = delete;

    /**
     * Bind + listen (no-op when expectedWorkers == 0). Must be called
     * before run(); returns false on a socket failure. After success
     * boundPort() returns the actual port — bind workers to it.
     */
    bool listen();

    /** Port actually bound (after listen(); 0 in local mode). */
    unsigned short boundPort() const;

    /** Run the campaign to completion or halt. Call once. */
    FleetResult run();

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
};

} // namespace drf::fleet

#endif // DRF_FLEET_COORDINATOR_HH
