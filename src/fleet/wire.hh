/**
 * @file
 * Fleet wire framing: length-prefixed typed frames over a stream fd.
 *
 * One frame = u32 little-endian payload length, u8 message type, then
 * the payload (UTF-8 JSON; Result frames carry a journal-format shard
 * record verbatim). The framing is deliberately dumb: everything
 * interesting lives in the JSON payloads (protocol.hh), and the
 * framing layer only guarantees that a reader sees whole frames or a
 * clean failure — a short read (peer died mid-frame) or an oversized
 * length prefix (garbage or a protocol mismatch) both surface as a
 * recv failure, never as a torn payload.
 *
 * All I/O goes through the shared POSIX helpers (campaign/posix_io.hh)
 * for EINTR retry and full-write semantics; SIGPIPE is expected to be
 * ignored process-wide (io::ignoreSigpipe) so a dead peer surfaces as
 * EPIPE from write(), handled as a send failure.
 */

#ifndef DRF_FLEET_WIRE_HH
#define DRF_FLEET_WIRE_HH

#include <cstdint>
#include <string>

namespace drf::fleet
{

/** Frame types of the coordinator/worker protocol (protocol.hh). */
enum class MsgType : std::uint8_t
{
    Hello = 1,     ///< worker -> coordinator: introduce + capacity
    Welcome = 2,   ///< coordinator -> worker: supervision policy
    Lease = 3,     ///< coordinator -> worker: run this shard
    Result = 4,    ///< worker -> coordinator: journal record of a shard
    Heartbeat = 5, ///< worker -> coordinator: liveness + progress
    Steal = 6,     ///< worker -> coordinator: queue empty, send work
    Shutdown = 7,  ///< coordinator -> worker: campaign over, exit
};

const char *msgTypeName(MsgType type);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Hello;
    std::string payload;
};

/** Reject frames claiming more than this (corrupt length prefix). */
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/** Write one frame; false on any write failure (peer gone, EPIPE). */
bool sendFrame(int fd, MsgType type, const std::string &payload);

/**
 * Read one frame; false on EOF, short read, or an oversized length.
 * Blocks until a full frame arrives.
 */
bool recvFrame(int fd, Frame &out);

} // namespace drf::fleet

#endif // DRF_FLEET_WIRE_HH
