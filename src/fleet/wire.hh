/**
 * @file
 * Fleet wire framing v2: length-prefixed, CRC32C-checksummed typed
 * frames over a stream fd.
 *
 * One frame = u32 little-endian payload length, u8 message type, u32
 * little-endian CRC32C over (type byte ++ payload), then the payload
 * (UTF-8 JSON; Result frames carry a digest-stamped journal-format
 * shard record). The framing is deliberately dumb: everything
 * interesting lives in the JSON payloads (protocol.hh), and the framing
 * layer only guarantees that a reader sees whole, checksum-verified
 * frames or a structured failure:
 *
 *   - Eof: the peer closed (or died) cleanly between frames or mid-read;
 *   - Oversized: the length prefix claims more than kMaxFramePayload —
 *     garbage bytes, a desynced stream, or a protocol mismatch;
 *   - Corrupt: the frame arrived whole but its CRC32C does not match —
 *     a flipped bit on the wire, a torn-and-respliced stream, or a v1
 *     peer (whose 5-byte headers cannot checksum).
 *
 * Corrupt/Oversized mean the stream can no longer be trusted (framing
 * may be desynced); callers must treat the connection as dead — the
 * coordinator marks the worker dead and re-leases its shards, a worker
 * reconnects — rather than attempt to resynchronize. v1 peers are
 * additionally rejected by the versioned Hello handshake (protocol.hh).
 *
 * All I/O goes through the shared POSIX helpers (campaign/posix_io.hh)
 * for EINTR retry and full-write semantics; SIGPIPE is expected to be
 * ignored process-wide (io::ignoreSigpipe) so a dead peer surfaces as
 * EPIPE from write(), handled as a send failure.
 */

#ifndef DRF_FLEET_WIRE_HH
#define DRF_FLEET_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace drf::fleet
{

/** Frame types of the coordinator/worker protocol (protocol.hh). */
enum class MsgType : std::uint8_t
{
    Hello = 1,     ///< worker -> coordinator: introduce + capacity
    Welcome = 2,   ///< coordinator -> worker: supervision policy
    Lease = 3,     ///< coordinator -> worker: run this shard
    Result = 4,    ///< worker -> coordinator: journal record of a shard
    Heartbeat = 5, ///< worker -> coordinator: liveness + progress
    Steal = 6,     ///< worker -> coordinator: queue empty, send work
    Shutdown = 7,  ///< coordinator -> worker: campaign over, exit
};

const char *msgTypeName(MsgType type);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Hello;
    std::string payload;
};

/** How receiving (or decoding) one frame ended. */
enum class WireStatus
{
    Ok,        ///< whole frame, checksum verified
    Eof,       ///< peer gone (EOF / read error / short read)
    Oversized, ///< length prefix beyond kMaxFramePayload
    Corrupt,   ///< CRC32C mismatch: stream poisoned, reconnect
};

const char *wireStatusName(WireStatus status);

/** Reject frames claiming more than this (corrupt length prefix). */
constexpr std::uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/** v2 header: u32 len | u8 type | u32 crc32c(type ++ payload). */
constexpr std::size_t kFrameHeaderSize = 9;

/**
 * First frame byte whose corruption is *detectable* (the type byte).
 * Fault injectors must not touch bytes below this offset: a flipped
 * length prefix desyncs the stream into a stall instead of a checksum
 * failure. Everything from here on — type, CRC field, payload — turns
 * into WireStatus::Corrupt at the receiver.
 */
constexpr std::size_t kFrameMutableOffset = 4;

/** Render one frame (header + payload) ready for the wire. */
std::string encodeFrame(MsgType type, const std::string &payload);

/** Write pre-encoded frame bytes (the fault-injection seam). */
bool sendRawFrame(int fd, const std::string &frame);

/** Encode + write one frame; false on any write failure. */
bool sendFrame(int fd, MsgType type, const std::string &payload);

/**
 * Read one frame and verify its checksum. Blocks until a full frame
 * arrives (or the stream ends / desyncs).
 */
WireStatus recvFrameEx(int fd, Frame &out);

/** recvFrameEx collapsed to a bool (Ok only) for callers that treat
 *  every failure as "peer gone". */
bool recvFrame(int fd, Frame &out);

} // namespace drf::fleet

#endif // DRF_FLEET_WIRE_HH
