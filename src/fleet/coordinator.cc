#include "fleet/coordinator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_FLEET_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define DRF_FLEET_HAVE_SOCKETS 0
#endif

#include "campaign/campaign_json.hh"
#include "campaign/journal.hh"
#include "campaign/merge_stream.hh"
#include "campaign/posix_io.hh"
#include "chaos/chaos.hh"
#include "chaos/disk_chaos.hh"
#include "fleet/protocol.hh"
#include "fleet/wire.hh"

namespace drf::fleet
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Deep-copy an outcome (grids included) for the streaming merge. */
ShardOutcome
cloneOutcome(const ShardOutcome &src)
{
    ShardOutcome out;
    out.name = src.name;
    out.seed = src.seed;
    out.index = src.index;
    out.result = src.result;
    out.attempts = src.attempts;
    if (src.l1)
        out.l1 = std::make_unique<CoverageGrid>(*src.l1);
    if (src.l2)
        out.l2 = std::make_unique<CoverageGrid>(*src.l2);
    if (src.dir)
        out.dir = std::make_unique<CoverageGrid>(*src.dir);
    return out;
}

/**
 * Comparison key for cross-worker result equality: the record with its
 * host-side nondeterminism (wall time, transient-retry count) zeroed.
 * Two honest workers running the same shard produce byte-identical
 * keys even though their verbatim lines differ in host_seconds — only
 * a worker that computed (or reported) a different *outcome* diverges.
 */
std::string
canonicalResultKey(const ShardOutcome &src)
{
    ShardOutcome c = cloneOutcome(src);
    c.attempts = 1;
    c.result.hostSeconds = 0.0;
    return shardOutcomeToJson(c);
}

enum class DigestCheck
{
    Bare, ///< no digest prefix (legacy / local path)
    Ok,   ///< prefix present, matches the line
    Bad,  ///< prefix present, line digests differently
};

/**
 * Split a Result payload into its record line, verifying the end-to-end
 * digest when present ("%016llx <line>"). Bare lines are accepted: the
 * local execution path and pre-digest peers produce them, and the frame
 * CRC already covers transport damage — the digest's job is catching a
 * worker whose *computation* went wrong.
 */
DigestCheck
splitResultPayload(const std::string &payload, std::string &line)
{
    if (payload.size() > 17 && payload[16] == ' ') {
        std::uint64_t want = 0;
        bool hex = true;
        for (int i = 0; i < 16; ++i) {
            char c = payload[static_cast<std::size_t>(i)];
            if (c >= '0' && c <= '9')
                want = (want << 4) | static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                want = (want << 4) |
                       (static_cast<unsigned>(c - 'a') + 10);
            else {
                hex = false;
                break;
            }
        }
        if (hex) {
            line = payload.substr(17);
            return chaos::fnv1a64(line) == want ? DigestCheck::Ok
                                                : DigestCheck::Bad;
        }
    }
    line = payload;
    return DigestCheck::Bare;
}

} // namespace

struct FleetCoordinator::Impl
{
    ShardSource &source;
    const CoordinatorConfig cfg;

    int listenFd = -1;
    unsigned short portBound = 0;
    std::atomic<bool> shutdown{false};
    std::thread acceptThread;

    /** One connected worker process. */
    struct Worker
    {
        int fd = -1;
        std::string name;
        bool alive = false;
        Clock::time_point lastSeen{};
        std::deque<std::size_t> held; ///< lease indices held
        std::uint64_t completed = 0;
        std::thread reader;
    };

    struct OutstandingLease
    {
        ShardLease lease;
        Clock::time_point issuedAt{};
        unsigned holders = 0;
    };

    /** One result that arrived (socket, local run, or journal). */
    struct Arrived
    {
        ShardOutcome out;
        std::string line; ///< verbatim journal record ("" if resumed)
        std::string key; ///< canonicalResultKey ("" if resumed)
        bool resumed = false;
        /** The lease this result answered, kept so a later divergence
         *  can re-run the shard authoritatively. */
        ShardLease lease;
        bool hasLease = false;
    };

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::shared_ptr<Worker>> workers;
    std::deque<ShardLease> pending; ///< unleased, index order
    std::map<std::size_t, OutstandingLease> outstanding;
    std::map<std::size_t, Arrived> batchResults;
    std::set<std::size_t> batchIndices;
    /** Indices caught diverging: socket results are quarantined until
     *  the local authoritative re-run lands. */
    std::set<std::size_t> poisoned;
    /** Indices already duplicated for quorum this batch. */
    std::set<std::size_t> quorumIssued;
    /** One in-flight cross-check: when it was issued and to whom. */
    struct PendingCheck
    {
        Clock::time_point issuedAt;
        const Worker *verifier = nullptr;
    };
    /** Sampled indices whose second answer hasn't arrived: the batch
     *  barrier holds for these (else a lying primary result could
     *  seal the batch before its cross-check lands and the straggler
     *  verdict would be discarded). A check is abandoned when its
     *  verifier dies or a generous deadline passes — never on the
     *  lease timeout, which is transport-scale while the verifier is
     *  legitimately busy draining its own queue first. */
    std::map<std::size_t, PendingCheck> quorumPending;
    /** Diverged leases awaiting their authoritative local re-run. */
    std::deque<ShardLease> repairQueue;
    /** Set at the batch barrier: late arrivals (straggler quorum
     *  duplicates) must not reopen a batch being drained/journaled. */
    bool batchSealed = false;

    std::unique_ptr<StreamingShardMerge> merge;
    std::unique_ptr<ShardRunner> localRunner;

    FleetResult stats;

    Impl(ShardSource &src, const CoordinatorConfig &c)
        : source(src), cfg(c)
    {
        io::ignoreSigpipe();
    }

    SupervisorConfig
    runnerConfig() const
    {
        SupervisorConfig rc;
        rc.forkIsolation = cfg.forkIsolation;
        rc.shardTimeoutSeconds = cfg.shardTimeoutSeconds;
        rc.shardEventBudget = cfg.shardEventBudget;
        rc.maxRetries = cfg.maxRetries;
        rc.retryBackoffMs = cfg.retryBackoffMs;
        return rc;
    }

    // ---- socket plumbing --------------------------------------------

    bool
    bindAndListen()
    {
#if DRF_FLEET_HAVE_SOCKETS
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return false;
        int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(cfg.port);
        if (::inet_pton(AF_INET, cfg.bindAddress.c_str(),
                        &addr.sin_addr) != 1)
            return false;
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd, 16) != 0) {
            ::close(listenFd);
            listenFd = -1;
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            portBound = ntohs(bound.sin_port);
        return true;
#else
        return false;
#endif
    }

    void
    acceptLoop()
    {
#if DRF_FLEET_HAVE_SOCKETS
        while (!shutdown.load(std::memory_order_acquire)) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break; // listen fd shut down
            }
            Frame hello;
            HelloMsg hm;
            if (!recvFrame(fd, hello) ||
                hello.type != MsgType::Hello ||
                !parseHello(hello.payload, hm) ||
                hm.protocolVersion != kProtocolVersion) {
                ::close(fd);
                continue;
            }
            WelcomeMsg wm;
            wm.forkIsolation = cfg.forkIsolation;
            wm.shardTimeoutSeconds = cfg.shardTimeoutSeconds;
            wm.shardEventBudget = cfg.shardEventBudget;
            wm.maxRetries = cfg.maxRetries;
            wm.retryBackoffMs = cfg.retryBackoffMs;
            wm.queueDepth = cfg.queueDepth;
            wm.heartbeatMs = cfg.heartbeatMs;
            if (!sendFrame(fd, MsgType::Welcome,
                           serializeWelcome(wm))) {
                ::close(fd);
                continue;
            }

            auto worker = std::make_shared<Worker>();
            worker->fd = fd;
            worker->name = hm.worker;
            worker->alive = true;
            worker->lastSeen = Clock::now();
            {
                std::lock_guard<std::mutex> lock(mutex);
                workers.push_back(worker);
                ++stats.workersSeen;
                topUpLocked(*worker);
            }
            worker->reader =
                std::thread([this, worker] { readerLoop(worker); });
            cv.notify_all();
        }
#endif
    }

    void
    readerLoop(const std::shared_ptr<Worker> &worker)
    {
        for (;;) {
            Frame frame;
            WireStatus status = recvFrameEx(worker->fd, frame);
            if (status == WireStatus::Eof)
                break;
            if (status != WireStatus::Ok) {
                // Checksum failure or insane length: the byte stream
                // can no longer be framed. Structured recovery, not
                // absorption: count it, kill the connection, and let
                // the dead-worker path re-lease everything this worker
                // held. The worker reconnects as a fresh peer.
                std::lock_guard<std::mutex> lock(mutex);
                ++stats.frameCorruptions;
                markDeadLocked(*worker);
                cv.notify_all();
                break;
            }
            bool poisoned_stream = false;
            {
                std::lock_guard<std::mutex> lock(mutex);
                worker->lastSeen = Clock::now();
                switch (frame.type) {
                  case MsgType::Result: {
                    std::string line;
                    if (splitResultPayload(frame.payload, line) ==
                        DigestCheck::Bad) {
                        // The frame survived the wire intact but the
                        // worker's own digest disagrees with its line:
                        // this peer's output cannot be trusted.
                        ++stats.digestMismatches;
                        markDeadLocked(*worker);
                        poisoned_stream = true;
                        break;
                    }
                    ++worker->completed;
                    handleResultLineLocked(line, *worker);
                    topUpLocked(*worker);
                    break;
                  }
                  case MsgType::Steal:
                    topUpLocked(*worker);
                    stealForLocked(*worker);
                    break;
                  case MsgType::Heartbeat:
                    break; // lastSeen already refreshed
                  default:
                    break; // unknown frames are ignored, not fatal
                }
                cv.notify_all();
            }
            if (poisoned_stream)
                break;
        }
        std::lock_guard<std::mutex> lock(mutex);
        markDeadLocked(*worker);
        cv.notify_all();
    }

    // ---- lease bookkeeping (mutex held) -----------------------------

    void
    sendLeaseLocked(Worker &worker, const ShardLease &lease)
    {
        auto [it, fresh] = outstanding.try_emplace(lease.index);
        if (fresh) {
            it->second.lease = lease;
            it->second.issuedAt = Clock::now();
        }
        ++it->second.holders;
        worker.held.push_back(lease.index);
        ++stats.leasesIssued;
        if (!sendFrame(worker.fd, MsgType::Lease,
                       serializeLease(lease)))
            markDeadLocked(worker);
    }

    /** Fill @p worker's queue from the pending list. */
    void
    topUpLocked(Worker &worker)
    {
        while (worker.alive && !pending.empty() &&
               worker.held.size() < cfg.queueDepth) {
            ShardLease lease = std::move(pending.front());
            pending.pop_front();
            sendLeaseLocked(worker, lease);
        }
    }

    /**
     * Work stealing, proactive half: an idle worker duplicates the
     * oldest lease still outstanding on exactly one other worker. The
     * first result for the index wins; the merge drops the loser.
     */
    void
    stealForLocked(Worker &worker)
    {
        if (!worker.alive || !worker.held.empty() || !pending.empty())
            return;
        Clock::time_point now = Clock::now();
        std::map<std::size_t, OutstandingLease>::iterator oldest =
            outstanding.end();
        for (auto it = outstanding.begin(); it != outstanding.end();
             ++it) {
            if (it->second.holders != 1)
                continue;
            if (batchResults.count(it->first))
                continue;
            double age = std::chrono::duration<double>(
                             now - it->second.issuedAt)
                             .count();
            if (age < cfg.stealMinAgeSeconds)
                continue;
            if (oldest == outstanding.end() ||
                it->second.issuedAt < oldest->second.issuedAt)
                oldest = it;
        }
        if (oldest == outstanding.end())
            return;
        ++stats.releases;
        sendLeaseLocked(worker, oldest->second.lease);
    }

    /**
     * Work stealing, recovery half: a dead worker's outstanding leases
     * go back to the pending queue (front, preserving index order as
     * much as possible) for the next top-up.
     */
    void
    markDeadLocked(Worker &worker)
    {
        if (!worker.alive)
            return;
        worker.alive = false;
#if DRF_FLEET_HAVE_SOCKETS
        ::shutdown(worker.fd, SHUT_RDWR);
#endif
        std::vector<ShardLease> returned;
        for (std::size_t index : worker.held) {
            auto it = outstanding.find(index);
            if (it == outstanding.end() || batchResults.count(index))
                continue;
            if (--it->second.holders == 0) {
                returned.push_back(it->second.lease);
                outstanding.erase(it);
                ++stats.releases;
            }
        }
        worker.held.clear();
        std::sort(returned.begin(), returned.end(),
                  [](const ShardLease &a, const ShardLease &b) {
                      return a.index < b.index;
                  });
        for (auto rit = returned.rbegin(); rit != returned.rend();
             ++rit)
            pending.push_front(std::move(*rit));
    }

    /** Reap workers silent past the heartbeat timeout. */
    void
    reapSilentLocked()
    {
        if (cfg.heartbeatTimeoutSeconds <= 0.0)
            return;
        Clock::time_point now = Clock::now();
        for (auto &worker : workers) {
            if (!worker->alive)
                continue;
            double silent = std::chrono::duration<double>(
                                now - worker->lastSeen)
                                .count();
            if (silent > cfg.heartbeatTimeoutSeconds)
                markDeadLocked(*worker);
        }
    }

    /** Duplicate leases outstanding longer than the lease timeout. */
    void
    releaseOverdueLocked()
    {
        if (cfg.leaseTimeoutSeconds <= 0.0)
            return;
        Clock::time_point now = Clock::now();
        for (auto &[index, ol] : outstanding) {
            if (ol.holders != 1 || batchResults.count(index))
                continue;
            if (secondsSince(ol.issuedAt) < 0 ||
                std::chrono::duration<double>(now - ol.issuedAt)
                        .count() < cfg.leaseTimeoutSeconds)
                continue;
            Worker *target = nullptr;
            for (auto &worker : workers) {
                bool holds_it =
                    std::find(worker->held.begin(),
                              worker->held.end(),
                              index) != worker->held.end();
                if (!worker->alive || holds_it)
                    continue;
                if (!target ||
                    worker->held.size() < target->held.size())
                    target = worker.get();
            }
            if (!target)
                continue;
            ol.issuedAt = now; // restart the clock, avoid a storm
            ++stats.releases;
            sendLeaseLocked(*target, ol.lease);
        }
    }

    void
    topUpAllLocked()
    {
        for (auto &worker : workers) {
            if (worker->alive)
                topUpLocked(*worker);
        }
    }

    /**
     * Opt-in result verification: duplicate every sampled outstanding
     * lease (index % verifyQuorum == 0) onto a second worker so two
     * independent processes answer the same shard. Runs under the same
     * mutex hold as the staging top-up, so a sampled result cannot
     * arrive before its duplicate is issued. Candidates are collected
     * before any lease is sent: sendLeaseLocked can mark a worker dead
     * and mutate `outstanding` mid-iteration.
     */
    void
    enforceQuorumLocked()
    {
        if (cfg.verifyQuorum == 0)
            return;
        std::vector<std::size_t> candidates;
        for (auto &[index, ol] : outstanding) {
            if (index % cfg.verifyQuorum != 0 || ol.holders != 1)
                continue;
            if (batchResults.count(index) || poisoned.count(index) ||
                quorumIssued.count(index))
                continue;
            candidates.push_back(index);
        }
        for (std::size_t index : candidates) {
            auto it = outstanding.find(index);
            if (it == outstanding.end())
                continue;
            Worker *target = nullptr;
            for (auto &worker : workers) {
                bool holds_it =
                    std::find(worker->held.begin(),
                              worker->held.end(),
                              index) != worker->held.end();
                if (!worker->alive || holds_it)
                    continue;
                if (!target ||
                    worker->held.size() < target->held.size())
                    target = worker.get();
            }
            if (!target)
                continue; // single-worker fleet: nothing to compare
            ShardLease lease = it->second.lease;
            quorumIssued.insert(index);
            ++stats.quorumLeases;
            sendLeaseLocked(*target, lease);
            if (target->alive)
                quorumPending[index] =
                    PendingCheck{Clock::now(), target};
        }
    }

    /** Abandon cross-checks that can no longer resolve — the verifier
     *  died, or a deadline sized for whole shard queues (not frames)
     *  passed. Sampling is best-effort under churn, but the barrier
     *  must always become passable. */
    void
    expireQuorumLocked()
    {
        double bound =
            std::max({cfg.heartbeatTimeoutSeconds,
                      2.0 * cfg.leaseTimeoutSeconds, 5.0});
        for (auto it = quorumPending.begin();
             it != quorumPending.end();) {
            bool dead = it->second.verifier &&
                        !it->second.verifier->alive;
            if (dead || secondsSince(it->second.issuedAt) > bound)
                it = quorumPending.erase(it);
            else
                ++it;
        }
    }

    bool
    anyAliveLocked() const
    {
        for (const auto &worker : workers) {
            if (worker->alive)
                return true;
        }
        return false;
    }

    // ---- result intake ----------------------------------------------

    /**
     * The one funnel every executed shard passes through — socket
     * Result frames, coordinator-local runs, and (minus the journal
     * re-append) resume adoption. First result per index wins.
     */
    void
    handleResultLineLocked(const std::string &line, Worker &from)
    {
        ShardOutcome out;
        if (!parseShardOutcome(line, out))
            return; // torn frame; the lease stays re-leasable
        std::size_t index = out.index;

        // Retire the lease wherever it is held (keeping a copy: a
        // later divergence needs it to re-lease or re-run the shard).
        ShardLease lease;
        bool has_lease = false;
        auto it = outstanding.find(index);
        if (it != outstanding.end()) {
            lease = it->second.lease;
            has_lease = true;
            outstanding.erase(it);
            for (auto &worker : workers) {
                auto held = std::find(worker->held.begin(),
                                      worker->held.end(), index);
                if (held != worker->held.end())
                    worker->held.erase(held);
            }
        }
        (void)from;

        if (batchSealed) {
            ++stats.duplicateResults;
            return;
        }

        if (poisoned.count(index)) {
            // Straggler answer for a shard already caught diverging:
            // only the local authoritative re-run may settle it.
            quorumPending.erase(index);
            ++stats.duplicateResults;
            return;
        }

        auto existing = batchResults.find(index);
        if (existing != batchResults.end())
            quorumPending.erase(index); // cross-check resolved
        if (!batchIndices.count(index) ||
            existing != batchResults.end()) {
            if (existing != batchResults.end() &&
                !existing->second.resumed &&
                existing->second.key != canonicalResultKey(out)) {
                // Two workers returned byte-different records for the
                // same deterministic shard: one of them lied without
                // tripping CRC or digest. Neither copy can be trusted
                // — quarantine the index and queue the authoritative
                // local tiebreak (which re-offers into the merge,
                // last-wins, before the batch drains).
                ++stats.quorumDivergences;
                stats.divergedIndices.push_back(index);
                ShardLease repair = existing->second.hasLease
                                        ? existing->second.lease
                                        : lease;
                if (existing->second.hasLease || has_lease) {
                    // Quarantined until the re-run lands; without a
                    // lease to re-run from (shouldn't happen for
                    // leased shards) the first answer has to stand.
                    batchResults.erase(existing);
                    poisoned.insert(index);
                    repairQueue.push_back(std::move(repair));
                }
                return;
            }
            ++stats.duplicateResults;
            return;
        }
        merge->offer(cloneOutcome(out), /*resumed=*/false);
        std::string key = canonicalResultKey(out);
        batchResults.emplace(index,
                             Arrived{std::move(out), line,
                                     std::move(key), false, lease,
                                     has_lease});
    }

    void
    adoptResumedLocked(ShardOutcome &&out)
    {
        std::size_t index = out.index;
        merge->offer(cloneOutcome(out), /*resumed=*/true);
        batchResults.emplace(index, Arrived{std::move(out),
                                            std::string(),
                                            std::string(), true});
        ++stats.shardsResumed;
    }

    bool
    batchCompleteLocked() const
    {
        return batchResults.size() == batchIndices.size() &&
               quorumPending.empty();
    }

    // ---- local execution (coordinator as worker of last resort) -----

    /** Run one shard here, through the same serialize/parse funnel a
     *  socket result takes, so every path yields identical records. */
    void
    runLocally(ShardSpec spec, std::size_t index)
    {
        if (!localRunner)
            localRunner =
                std::make_unique<ShardRunner>(runnerConfig());
        ShardOutcome out = localRunner->run(std::move(spec), index);
        std::string line = shardOutcomeToJson(out);
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.localRuns;
        Worker nobody;
        handleResultLineLocked(line, nobody);
        cv.notify_all();
    }

    /**
     * Settle diverged shards: re-run each quarantined lease here,
     * through the deterministic local ShardRunner, and install that
     * answer as authoritative. The merge still holds the first
     * (untrusted) copy buffered; offering again before drainSorted
     * replaces it (buffered-duplicate-last-wins), so the corrupt
     * result never reaches the aggregates.
     */
    bool
    drainRepairs()
    {
        bool ran = false;
        for (;;) {
            ShardLease lease;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (repairQueue.empty())
                    return ran;
                lease = std::move(repairQueue.front());
                repairQueue.pop_front();
            }
            if (!localRunner)
                localRunner =
                    std::make_unique<ShardRunner>(runnerConfig());
            ShardOutcome out =
                localRunner->run(leaseToSpec(lease), lease.index);
            std::string line = shardOutcomeToJson(out);
            {
                std::lock_guard<std::mutex> lock(mutex);
                ++stats.localRuns;
                std::size_t index = lease.index;
                poisoned.erase(index);
                merge->offer(cloneOutcome(out), /*resumed=*/false);
                std::string key = canonicalResultKey(out);
                batchResults[index] = Arrived{
                    std::move(out), std::move(line), std::move(key),
                    false, lease, true};
                cv.notify_all();
            }
            ran = true;
        }
    }

    /**
     * Pop and execute pending leases while no worker can take them.
     * Returns true if it ran anything.
     */
    bool
    drainPendingLocally()
    {
        bool ran = false;
        for (;;) {
            ShardLease lease;
            {
                std::lock_guard<std::mutex> lock(mutex);
                bool no_fleet = cfg.expectedWorkers == 0 ||
                                (cfg.localFallback &&
                                 !anyAliveLocked());
                if (!no_fleet || pending.empty())
                    return ran;
                lease = std::move(pending.front());
                pending.pop_front();
            }
            runLocally(leaseToSpec(lease), lease.index);
            ran = true;
        }
    }

    // ---- shutdown ---------------------------------------------------

    void
    stopFleet()
    {
        shutdown.store(true, std::memory_order_release);
#if DRF_FLEET_HAVE_SOCKETS
        if (listenFd >= 0)
            ::shutdown(listenFd, SHUT_RDWR);
#endif
        if (acceptThread.joinable())
            acceptThread.join();

        std::vector<std::shared_ptr<Worker>> snapshot;
        {
            std::lock_guard<std::mutex> lock(mutex);
            snapshot = workers;
            for (auto &worker : snapshot) {
                if (worker->alive)
                    sendFrame(worker->fd, MsgType::Shutdown, "");
#if DRF_FLEET_HAVE_SOCKETS
                ::shutdown(worker->fd, SHUT_RD);
#endif
            }
        }
        for (auto &worker : snapshot) {
            if (worker->reader.joinable())
                worker->reader.join();
#if DRF_FLEET_HAVE_SOCKETS
            if (worker->fd >= 0) {
                ::close(worker->fd);
                worker->fd = -1;
            }
#endif
        }
#if DRF_FLEET_HAVE_SOCKETS
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
#endif
    }
};

FleetCoordinator::FleetCoordinator(ShardSource &source,
                                   const CoordinatorConfig &cfg)
    : _impl(std::make_unique<Impl>(source, cfg))
{
}

FleetCoordinator::~FleetCoordinator()
{
    _impl->stopFleet();
}

bool
FleetCoordinator::listen()
{
    if (_impl->cfg.expectedWorkers == 0)
        return true; // degenerate fleet: no socket at all
    return _impl->bindAndListen();
}

unsigned short
FleetCoordinator::boundPort() const
{
    return _impl->portBound;
}

FleetResult
FleetCoordinator::run()
{
    Impl &im = *_impl;
    const CoordinatorConfig &cfg = im.cfg;

    // The merge's campaign policy: stop decisions belong to the
    // adaptive loop, so the merge itself never requests a stop.
    CampaignConfig merge_cfg;
    merge_cfg.jobs = std::max(1u, cfg.expectedWorkers);
    merge_cfg.stopOnFailure = false;
    merge_cfg.stopOnHostFailure = false;
    merge_cfg.coverageTestType = cfg.campaign.coverageTestType;
    im.merge = std::make_unique<StreamingShardMerge>(merge_cfg, 0);
    im.merge->setJobs(std::max(1u, cfg.expectedWorkers));

    // Resume pass: adoptable records, keyed by global shard index.
    // Damaged records (CRC failure, torn tail) are self-healed by
    // skipping: the counters surface how much was lost, the shards
    // simply re-run.
    std::map<std::size_t, ShardOutcome> adoptable;
    if (cfg.resume && !cfg.journalPath.empty()) {
        std::vector<ShardOutcome> records;
        JournalLoadStats load_stats;
        if (loadJournal(cfg.journalPath, records, &load_stats)) {
            im.stats.resumeCrcSkipped = load_stats.crcSkipped;
            im.stats.resumeParseSkipped = load_stats.parseSkipped;
            for (ShardOutcome &rec : records) {
                if (isHostFailureClass(rec.result.failureClass))
                    continue;
                std::size_t index = rec.index;
                adoptable[index] = std::move(rec);
            }
        }
    }

    // Journal writer, optionally with injected disk faults underneath
    // (chaos drills): the writer's own retry/degrade ladder is the
    // code under test, so the faults go below it, not around it.
    CampaignJournal::Policy journal_policy;
    std::unique_ptr<chaos::DiskChaos> disk_chaos;
    if (cfg.diskChaos.any()) {
        disk_chaos = std::make_unique<chaos::DiskChaos>(
            chaos::deriveSeed(cfg.chaosSeed, "disk:journal"),
            cfg.diskChaos);
        chaos::DiskChaos &dc = *disk_chaos;
        journal_policy.writeFault =
            [&dc](std::size_t len) -> JournalWriteFate {
            chaos::DiskWriteFate fate = dc.writeFate(len);
            return JournalWriteFate{fate.allow, fate.err};
        };
        journal_policy.syncFault = [&dc]() { return dc.syncFate(); };
    }
    CampaignJournal journal(cfg.journalPath, journal_policy);
    if (journal.ok()) {
        JsonWriter header;
        header.beginObject();
        header.key("v").value(1);
        header.key("kind").value("header");
        header.key("fleet").value(true);
        header.key("expected_workers").value(cfg.expectedWorkers);
        header.key("resumable")
            .value(static_cast<std::uint64_t>(adoptable.size()));
        header.endObject();
        journal.append(header.str());
    }

    if (cfg.expectedWorkers > 0 && im.listenFd >= 0) {
        im.acceptThread = std::thread([&im] { im.acceptLoop(); });

        // Give the fleet a chance to assemble; localFallback (or late
        // joiners) covers a shortfall.
        Clock::time_point wait_start = Clock::now();
        std::unique_lock<std::mutex> lock(im.mutex);
        im.cv.wait_for(
            lock,
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    std::max(0.0, cfg.workerWaitSeconds))),
            [&] {
                return im.stats.workersSeen >= cfg.expectedWorkers ||
                       secondsSince(wait_start) >=
                           cfg.workerWaitSeconds;
            });
    }

    FeedbackLoop loop(im.source, cfg.campaign);
    Clock::time_point start = Clock::now();
    std::size_t next_index = 0;
    std::size_t rounds = 0;
    bool source_drained = false;

    for (;;) {
        if (cfg.maxRounds != 0 && rounds >= cfg.maxRounds)
            break;
        std::vector<ShardSpec> batch = im.source.nextBatch();
        if (batch.empty()) {
            source_drained = true;
            break;
        }
        loop.beginRound();
        ++rounds;

        // Stage the batch: adopt journaled shards, lease the rest.
        std::vector<std::pair<ShardSpec, std::size_t>> local_only;
        {
            std::lock_guard<std::mutex> lock(im.mutex);
            im.batchResults.clear();
            im.batchIndices.clear();
            im.poisoned.clear();
            im.quorumIssued.clear();
            im.quorumPending.clear();
            im.batchSealed = false;
            for (ShardSpec &spec : batch) {
                std::size_t index = next_index++;
                im.batchIndices.insert(index);

                auto adopt = adoptable.find(index);
                if (adopt != adoptable.end() &&
                    adopt->second.name == spec.name &&
                    adopt->second.seed == spec.seed) {
                    im.adoptResumedLocked(std::move(adopt->second));
                    adoptable.erase(adopt);
                    continue;
                }

                std::optional<ShardLease> lease =
                    im.source.leaseForSeed(spec.seed);
                if (!lease || lease->name != spec.name) {
                    // Not describable on the wire: run it here.
                    local_only.emplace_back(std::move(spec), index);
                    continue;
                }
                lease->index = index;
                im.pending.push_back(std::move(*lease));
            }
            im.topUpAllLocked();
            // Quorum duplicates go out under this same mutex hold, so
            // no sampled result can arrive before its duplicate lease
            // exists (a result beating the duplicate would retire the
            // lease and the comparison would silently never happen).
            im.enforceQuorumLocked();
        }
        for (auto &[spec, index] : local_only)
            im.runLocally(std::move(spec), index);

        // Barrier: every index of this batch must have a result.
        for (;;) {
            im.drainPendingLocally();
            im.drainRepairs();
            std::unique_lock<std::mutex> lock(im.mutex);
            if (im.batchCompleteLocked()) {
                im.batchSealed = true;
                break;
            }
            im.cv.wait_for(lock, std::chrono::milliseconds(100));
            im.reapSilentLocked();
            im.releaseOverdueLocked();
            im.topUpAllLocked();
            im.enforceQuorumLocked();
            im.expireQuorumLocked();
            if (im.batchCompleteLocked()) {
                im.batchSealed = true;
                break;
            }
        }

        // Merge + journal + feedback, strictly in index order.
        double wall = secondsSince(start);
        im.merge->drainSorted(wall);
        {
            std::lock_guard<std::mutex> lock(im.mutex);
            for (std::size_t index : im.batchIndices) {
                const Impl::Arrived &arrived =
                    im.batchResults.at(index);
                if (!arrived.resumed && journal.ok())
                    journal.append(arrived.line);
            }
        }
        journal.flush(/*sync=*/true);
        {
            std::lock_guard<std::mutex> lock(im.mutex);
            for (std::size_t index : im.batchIndices)
                loop.onOutcome(im.batchResults.at(index).out, wall);
        }
        if (loop.stopRequested())
            break;
    }

    im.stats.halted = !source_drained && cfg.maxRounds != 0 &&
                      rounds >= cfg.maxRounds && !loop.stopRequested();
    if (im.stats.halted)
        im.merge->markInterrupted();

    im.stopFleet();
    journal.flush(/*sync=*/true);
    im.stats.journalStatus = journal.status();

    double wall = secondsSince(start);
    unsigned jobs = cfg.expectedWorkers == 0
                        ? 1u
                        : std::max(1u, im.stats.workersSeen);
    FleetResult result = std::move(im.stats);
    result.adaptive = loop.take(wall, jobs);
    result.campaign = im.merge->take(wall);
    return result;
}

std::string
fleetTriageJson(const FleetResult &result)
{
    JsonWriter w;
    w.beginObject();
    w.key("workers_seen").value(result.workersSeen);
    w.key("leases_issued").value(result.leasesIssued);
    w.key("releases").value(result.releases);
    w.key("duplicate_results").value(result.duplicateResults);
    w.key("local_runs").value(result.localRuns);
    w.key("shards_resumed")
        .value(static_cast<std::uint64_t>(result.shardsResumed));
    w.key("halted").value(result.halted);
    w.key("frame_corruptions").value(result.frameCorruptions);
    w.key("digest_mismatches").value(result.digestMismatches);
    w.key("quorum_leases").value(result.quorumLeases);
    w.key("quorum_divergences").value(result.quorumDivergences);
    w.key("divergences").beginArray();
    for (std::size_t index : result.divergedIndices) {
        w.beginObject();
        w.key("index").value(static_cast<std::uint64_t>(index));
        w.key("class").value(
            failureClassName(FailureClass::WorkerDivergence));
        w.endObject();
    }
    w.endArray();
    w.key("resume_crc_skipped").value(result.resumeCrcSkipped);
    w.key("resume_parse_skipped").value(result.resumeParseSkipped);
    w.key("journal").raw(journalStatusJson(result.journalStatus));
    w.endObject();
    return w.str();
}

} // namespace drf::fleet
