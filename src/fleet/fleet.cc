#include "fleet/fleet.hh"

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define DRF_FLEET_CAN_FORK 1
#include <sys/wait.h>
#include <unistd.h>
#else
#define DRF_FLEET_CAN_FORK 0
#endif

#include "fleet/worker.hh"

namespace drf::fleet
{

FleetResult
runLocalFleet(ShardSource &source, const LocalFleetConfig &cfg,
              bool *listen_ok)
{
    CoordinatorConfig coord_cfg = cfg.coordinator;
#if !DRF_FLEET_CAN_FORK
    // No fork(): degrade to the degenerate fleet, which needs neither
    // sockets nor processes and produces the same aggregates.
    coord_cfg.expectedWorkers = 0;
#else
    coord_cfg.expectedWorkers = cfg.workers;
#endif

    FleetCoordinator coordinator(source, coord_cfg);
    bool bound = coordinator.listen();
    if (listen_ok)
        *listen_ok = bound;

#if DRF_FLEET_CAN_FORK
    std::vector<pid_t> children;
    if (bound && coord_cfg.expectedWorkers > 0) {
        unsigned short port = coordinator.boundPort();
        for (unsigned i = 0; i < cfg.workers; ++i) {
            pid_t pid = ::fork();
            if (pid == 0) {
                WorkerConfig wc;
                wc.port = port;
                wc.name = "local:" + std::to_string(::getpid());
                if (i == 0) {
                    wc.dieOnResult = cfg.dieOnResult;
                    wc.corruptEveryN = cfg.corruptEveryN;
                    wc.corruptSilently = cfg.corruptSilently;
                }
                wc.wireChaos = cfg.wireChaos;
                wc.chaosSeed = chaos::deriveSeed(
                    coord_cfg.chaosSeed,
                    "wire:worker-" + std::to_string(i));
                wc.maxReconnects = cfg.maxReconnects;
                ::_exit(runWorker(wc));
            }
            if (pid < 0) {
                std::perror("fleet: fork");
                break;
            }
            children.push_back(pid);
        }
    }
#endif

    FleetResult result = coordinator.run();

#if DRF_FLEET_CAN_FORK
    // The campaign is over and every result is in. A worker whose
    // stream was poisoned mid-campaign may still be walking its
    // reconnect backoff against the now-closed port — don't wait out
    // that loop, end it.
    for (pid_t pid : children)
        (void)::kill(pid, SIGTERM);
    for (pid_t pid : children) {
        int status = 0;
        (void)::waitpid(pid, &status, 0);
    }
#endif
    return result;
}

} // namespace drf::fleet
