#include "chaos/wire_chaos.hh"

namespace drf::chaos {

FramePlan
WireChaos::planFrame(std::size_t frameSize, std::size_t mutableOffset) {
  ++_frames;
  FramePlan plan;
  if (frameSize == 0) return plan;

  if (_rng.chancePct(_rates.dropPct)) {
    plan.drop = true;
    ++_stats.framesDropped;
    return plan;
  }
  if (frameSize > 1 && _rng.chancePct(_rates.truncPct)) {
    plan.truncateTo = 1 + static_cast<std::size_t>(
                              _rng.below(frameSize - 1));
    ++_stats.framesTruncated;
    return plan;
  }
  if (frameSize > mutableOffset && _rng.chancePct(_rates.flipPct)) {
    plan.flipOffset = static_cast<std::ptrdiff_t>(
        mutableOffset + _rng.below(frameSize - mutableOffset));
    plan.flipMask = static_cast<unsigned char>(1u << _rng.below(8));
    ++_stats.framesFlipped;
  }
  if (_rng.chancePct(_rates.dupPct)) {
    plan.copies = 2;
    ++_stats.framesDuplicated;
  }
  if (_rates.delayMaxMs > 0 && _rng.chancePct(_rates.delayPct)) {
    plan.delayMs = 1 + static_cast<int>(_rng.below(
                           static_cast<std::uint64_t>(_rates.delayMaxMs)));
    ++_stats.framesDelayed;
  }
  return plan;
}

}  // namespace drf::chaos
