#pragma once
// Wire fault planner: decides, deterministically per frame, which fault
// (if any) to inject into an outbound frame.  The planner is pure byte
// arithmetic — it never touches sockets or fleet types — so the fleet
// layer can depend on chaos without a dependency cycle: the sender
// encodes a frame, asks for a FramePlan, applies it, and ships the
// result.
//
// Flips are constrained to offsets >= the caller's mutableOffset so the
// length prefix is never corrupted: a flipped length field would desync
// the stream into a silent stall instead of a detectable CRC failure,
// and "detected, never absorbed" is the whole point.

#include <cstddef>
#include <cstdint>

#include "chaos/chaos.hh"

namespace drf::chaos {

/** What to do with one outbound frame. */
struct FramePlan {
  bool drop = false;        // discard without sending (sender reports ok)
  int delayMs = 0;          // sleep before sending
  unsigned copies = 1;      // 2 = duplicate send
  std::ptrdiff_t flipOffset = -1;  // byte to XOR with flipMask; -1 = none
  unsigned char flipMask = 0;
  std::size_t truncateTo = SIZE_MAX;  // < frame size: send prefix, poison
};

class WireChaos {
 public:
  WireChaos(std::uint64_t seed, const WireRates& rates)
      : _rng(seed), _rates(rates) {}

  /**
   * Plan faults for the next outbound frame of @p frameSize bytes.
   * @p mutableOffset is the first byte eligible for a flip (everything
   * before it — the length prefix — must stay intact).  At most one
   * destructive fault (drop / truncate / flip) fires per frame; delay
   * and duplication can ride along.
   */
  FramePlan planFrame(std::size_t frameSize, std::size_t mutableOffset);

  const ChaosStats& stats() const { return _stats; }
  std::uint64_t framesPlanned() const { return _frames; }

 private:
  ChaosRng _rng;
  WireRates _rates;
  ChaosStats _stats;
  std::uint64_t _frames = 0;
};

}  // namespace drf::chaos
