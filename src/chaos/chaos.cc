#include "chaos/chaos.hh"

#include <array>

namespace drf::chaos {

namespace {

std::array<std::uint32_t, 256> makeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32cTable() {
  static const std::array<std::uint32_t, 256> table = makeCrc32cTable();
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto& table = crc32cTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
  return crc32c(data.data(), data.size(), seed);
}

std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t deriveSeed(std::uint64_t master, std::string_view stream) {
  std::uint64_t h = fnv1a64(stream);
  // Mix the master seed in with one splitmix64 round so nearby master
  // seeds do not produce correlated streams.
  std::uint64_t z = master + 0x9E3779B97F4A7C15ull + h;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t ChaosRng::next() {
  std::uint64_t z = (_state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t ChaosRng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  return next() % bound;
}

bool ChaosRng::chancePct(double pct) {
  if (pct <= 0.0) return false;
  if (pct >= 100.0) return true;
  // Per-mille resolution keeps fractional percentages meaningful while
  // staying integer-deterministic across platforms.
  const std::uint64_t permille = static_cast<std::uint64_t>(pct * 10.0);
  return below(1000) < permille;
}

bool profileByName(std::string_view name, ChaosProfile& out) {
  ChaosProfile p;
  p.name = std::string(name);
  if (name == "none") {
    out = p;
    return true;
  }
  if (name == "wire-flip") {
    p.wire.flipPct = 8.0;
    out = p;
    return true;
  }
  if (name == "wire-drop") {
    p.wire.dropPct = 6.0;
    p.wire.dupPct = 4.0;
    out = p;
    return true;
  }
  if (name == "wire-torn") {
    p.wire.truncPct = 3.0;
    out = p;
    return true;
  }
  if (name == "wire-storm") {
    p.wire.dropPct = 4.0;
    p.wire.dupPct = 4.0;
    p.wire.flipPct = 6.0;
    p.wire.truncPct = 2.0;
    p.wire.delayPct = 10.0;
    p.wire.delayMaxMs = 15;
    out = p;
    return true;
  }
  if (name == "disk-torn") {
    p.disk.shortWritePct = 20.0;
    out = p;
    return true;
  }
  if (name == "disk-enospc") {
    p.disk.enospcAfterBytes = 4096;
    out = p;
    return true;
  }
  if (name == "disk-fsync") {
    p.disk.fsyncFailPct = 30.0;
    p.disk.writeFailPct = 5.0;
    out = p;
    return true;
  }
  if (name == "full") {
    p.wire.dropPct = 3.0;
    p.wire.dupPct = 3.0;
    p.wire.flipPct = 5.0;
    p.wire.truncPct = 1.5;
    p.wire.delayPct = 8.0;
    p.wire.delayMaxMs = 10;
    p.disk.shortWritePct = 10.0;
    p.disk.fsyncFailPct = 10.0;
    out = p;
    return true;
  }
  return false;
}

std::vector<std::string> profileNames() {
  return {"none",      "wire-flip",   "wire-drop",  "wire-torn", "wire-storm",
          "disk-torn", "disk-enospc", "disk-fsync", "full"};
}

}  // namespace drf::chaos
