#include "chaos/disk_chaos.hh"

namespace drf::chaos {

DiskWriteFate
DiskChaos::writeFate(std::size_t len) {
  DiskWriteFate fate;
  fate.allow = len;

  if (_rates.enospcAfterBytes >= 0 &&
      _bytesAccepted + static_cast<std::int64_t>(len) >
          _rates.enospcAfterBytes) {
    std::int64_t room = _rates.enospcAfterBytes - _bytesAccepted;
    fate.allow = room > 0 ? static_cast<std::size_t>(room) : 0;
    fate.err = ENOSPC;
    ++_stats.enospcHits;
    _bytesAccepted += static_cast<std::int64_t>(fate.allow);
    return fate;
  }
  if (_rng.chancePct(_rates.writeFailPct)) {
    fate.allow = 0;
    fate.err = EIO;
    ++_stats.writeFailures;
    return fate;
  }
  if (len > 0 && _rng.chancePct(_rates.shortWritePct)) {
    // The device accepts a strict prefix, then errors: the bytes that
    // landed form a torn record the loader must later skip.
    fate.allow = static_cast<std::size_t>(_rng.below(len));
    fate.err = EIO;
    ++_stats.shortWrites;
    _bytesAccepted += static_cast<std::int64_t>(fate.allow);
    return fate;
  }
  _bytesAccepted += static_cast<std::int64_t>(len);
  return fate;
}

int
DiskChaos::syncFate() {
  if (_rng.chancePct(_rates.fsyncFailPct)) {
    ++_stats.fsyncFailures;
    return EIO;
  }
  return 0;
}

}  // namespace drf::chaos
