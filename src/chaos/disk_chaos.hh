#pragma once
// Disk fault planner for the journal writer.  Like WireChaos this is
// pure decision logic: the journal asks what should happen to its next
// write()/fsync() and applies the verdict itself, so the chaos library
// stays free of file descriptors and the journal stays free of chaos
// types (it takes std::function hooks; see CampaignJournal::Policy).

#include <cerrno>
#include <cstddef>
#include <cstdint>

#include "chaos/chaos.hh"

namespace drf::chaos {

/** Verdict for one write() of `len` bytes. */
struct DiskWriteFate {
  std::size_t allow = 0;  // bytes the "device" accepts (prefix)
  int err = 0;            // errno raised after the prefix; 0 = success
};

class DiskChaos {
 public:
  DiskChaos(std::uint64_t seed, const DiskRates& rates)
      : _rng(seed), _rates(rates) {}

  DiskWriteFate writeFate(std::size_t len);
  /** 0 = fsync succeeds, else the errno it fails with. */
  int syncFate();

  const ChaosStats& stats() const { return _stats; }

 private:
  ChaosRng _rng;
  DiskRates _rates;
  ChaosStats _stats;
  std::int64_t _bytesAccepted = 0;
};

}  // namespace drf::chaos
