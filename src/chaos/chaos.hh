#pragma once
// Deterministic fault-injection primitives shared by the wire and disk
// chaos shims.  Everything here is a pure function of (seed, operation
// index): the same profile + seed always yields the identical fault
// sequence, which is what lets chaos drills assert byte-identical
// aggregates against a clean golden run.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace drf::chaos {

// --- hashing -------------------------------------------------------------

// CRC32C (Castagnoli).  Software table implementation; used for the wire
// v2 frame checksum and the journal record checksum.
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);
std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

// FNV-1a 64-bit.  Used for result digests and seed derivation.
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 1469598103934665603ull);

// Derive an independent chaos stream seed from a master seed and a
// stream name ("wire:worker-1", "disk:journal", ...).
std::uint64_t deriveSeed(std::uint64_t master, std::string_view stream);

// --- RNG -----------------------------------------------------------------

// splitmix64: tiny, fast, and stateless enough that a chaos schedule is
// reproducible from (seed, op index) alone.
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : _state(seed) {}

  std::uint64_t next();
  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound);
  // True with probability pct/100 (pct may be fractional via permille).
  bool chancePct(double pct);

 private:
  std::uint64_t _state;
};

// --- fault profiles ------------------------------------------------------

// All rates are percentages in [0, 100].
struct WireRates {
  double dropPct = 0.0;      // outbound frame silently discarded
  double dupPct = 0.0;       // outbound frame sent twice
  double flipPct = 0.0;      // one payload/crc byte flipped
  double truncPct = 0.0;     // frame truncated mid-payload, channel dies
  double delayPct = 0.0;     // outbound frame delayed
  int delayMaxMs = 0;        // max injected delay per delayed frame

  bool any() const {
    return dropPct > 0 || dupPct > 0 || flipPct > 0 || truncPct > 0 ||
           delayPct > 0;
  }
};

struct DiskRates {
  double shortWritePct = 0.0;   // write() consumes only part of the buffer
  double writeFailPct = 0.0;    // write() fails with EIO
  double fsyncFailPct = 0.0;    // fsync() fails with EIO
  std::int64_t enospcAfterBytes = -1;  // ENOSPC once this many bytes land

  bool any() const {
    return shortWritePct > 0 || writeFailPct > 0 || fsyncFailPct > 0 ||
           enospcAfterBytes >= 0;
  }
};

struct ChaosProfile {
  std::string name = "none";
  WireRates wire;
  DiskRates disk;

  bool any() const { return wire.any() || disk.any(); }
};

// Look up a named profile.  Known names: none, wire-flip, wire-drop,
// wire-torn, wire-storm, disk-torn, disk-enospc, disk-fsync, full.
// Returns false (and leaves out untouched) for unknown names.
bool profileByName(std::string_view name, ChaosProfile& out);
std::vector<std::string> profileNames();

// --- stats ---------------------------------------------------------------

// Counters kept by the injection shims (what chaos *did*), as opposed to
// the detection counters kept by the coordinator (what the stack *caught*).
struct ChaosStats {
  std::uint64_t framesDropped = 0;
  std::uint64_t framesDuplicated = 0;
  std::uint64_t framesFlipped = 0;
  std::uint64_t framesTruncated = 0;
  std::uint64_t framesDelayed = 0;
  std::uint64_t shortWrites = 0;
  std::uint64_t writeFailures = 0;
  std::uint64_t fsyncFailures = 0;
  std::uint64_t enospcHits = 0;

  std::uint64_t totalInjected() const {
    return framesDropped + framesDuplicated + framesFlipped +
           framesTruncated + framesDelayed + shortWrites + writeFailures +
           fsyncFailures + enospcHits;
  }
};

}  // namespace drf::chaos
