/**
 * @file
 * Offline happens-before reconstruction over DRFTRC01 traces.
 *
 * One recorded run fixes one interleaving, but its synchronization
 * skeleton constrains *every* legal reordering: per-wavefront program
 * order plus the scope-aware release/acquire visibility edges the
 * protocol actually guarantees. The HbModel rebuilds that skeleton with
 * vector clocks — one component per wavefront (the agent) — processed
 * over the observed order of sync completions (the v4
 * SyncAcquire/SyncRelease markers; older traces fall back to the
 * EpisodeIssue/EpisodeRetire markers, or to schedule order when no
 * event stream was captured).
 *
 * Scope semantics follow the PR 8 implementation (see
 * tester/episode.hh): releases and acquires are fence-like, not
 * per-variable —
 *
 *  - every release makes the CU's completed writes visible to later
 *    acquires *on the same CU* (the shared L1 is the CTA sharing
 *    domain), regardless of scope;
 *  - a GPU-scoped release drains the whole CU — everything completed on
 *    that CU so far, CTA-scoped releases included — to the globally
 *    visible level;
 *  - a GPU-scoped acquire flash-invalidates its L1 and therefore
 *    inherits everything any CU has drained so far;
 *  - a CTA-scoped acquire inherits only its own CU's completed writes:
 *    remote data may be stale in the un-invalidated L1 no matter what
 *    remote CUs have drained.
 *
 * Scope::None (unscoped traces) is modeled as GPU scope, so clean
 * unscoped and scoped-disciplined traces yield a fully ordered set of
 * conflicting accesses — only schedules whose ordering relied on timing
 * luck rather than synchronization produce HB-unordered conflicts
 * (src/predict/predict.hh turns those into PredictedRace findings).
 */

#ifndef DRF_PREDICT_HB_HH
#define DRF_PREDICT_HB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/repro.hh"

namespace drf
{

/** How the observed sync order was obtained. */
enum class HbOrderSource
{
    SyncEvents,     ///< v4 SyncAcquire/SyncRelease markers (exact)
    EpisodeMarkers, ///< EpisodeIssue/EpisodeRetire fallback (exact order,
                    ///< scopes looked up from the schedule)
    ScheduleOrder,  ///< no event stream: generation order approximation
};

const char *hbOrderSourceName(HbOrderSource source);

/** Happens-before model of one recorded trace (see file header). */
class HbModel
{
  public:
    /** Per-episode synchronization observation. */
    struct EpisodeSync
    {
        std::vector<std::uint32_t> acqClock; ///< agent clock at acquire
        std::uint32_t relEpoch = 0; ///< agent's release count at release
        Tick acqTick = 0;           ///< observed acquire completion
        Tick relTick = 0;           ///< observed release completion
        bool observed = false;      ///< both sync ops seen in the stream
    };

    /** Build the model from @p trace (schedule + event stream). */
    static HbModel build(const ReproTrace &trace);

    /** Number of schedule episodes modeled. */
    std::size_t size() const { return _sync.size(); }

    HbOrderSource orderSource() const { return _source; }

    /** Trace events consumed while building (throughput accounting). */
    std::size_t eventsAnalyzed() const { return _eventsAnalyzed; }

    /**
     * True when episode @p a's release happens-before episode @p b's
     * acquire (indices into the trace's schedule), or @p a precedes
     * @p b in the same wavefront's program order.
     */
    bool orderedBefore(std::size_t a, std::size_t b) const;

    /** Conflicting accesses in @p a and @p b are ordered either way. */
    bool
    ordered(std::size_t a, std::size_t b) const
    {
        return orderedBefore(a, b) || orderedBefore(b, a);
    }

    /** Sync observation of schedule episode @p idx. */
    const EpisodeSync &sync(std::size_t idx) const { return _sync[idx]; }

    /** Agent (wavefront id) of schedule episode @p idx. */
    std::uint32_t agentOf(std::size_t idx) const { return _agent[idx]; }

    /** CU of schedule episode @p idx. */
    unsigned cuOf(std::size_t idx) const { return _cu[idx]; }

    /** Position of episode @p idx within its wavefront's program. */
    std::size_t programIndex(std::size_t idx) const { return _pos[idx]; }

    /**
     * Human-readable account of why @p a's release does not reach
     * @p b's acquire — the sync path that failed to order them (scopes,
     * CUs, and whether a GPU-scope drain/invalidate pair existed).
     */
    std::string explainUnordered(std::size_t a, std::size_t b,
                                 const ReproTrace &trace) const;

  private:
    std::vector<EpisodeSync> _sync;      ///< by schedule index
    std::vector<std::uint32_t> _agent;   ///< wavefront per episode
    std::vector<unsigned> _cu;           ///< CU per episode
    std::vector<std::size_t> _pos;       ///< per-wavefront program index
    std::size_t _numAgents = 0;
    std::size_t _eventsAnalyzed = 0;
    HbOrderSource _source = HbOrderSource::ScheduleOrder;
};

} // namespace drf

#endif // DRF_PREDICT_HB_HH
