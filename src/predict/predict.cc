#include "predict/predict.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "campaign/campaign_json.hh"

namespace drf
{

namespace
{

/** All accesses to one variable, in schedule order. */
struct VarAccess
{
    std::size_t idx;  ///< schedule index
    bool isWrite;
};

AccessSite
makeSite(const ReproTrace &trace, const HbModel &model, std::size_t idx,
         VarId var, bool is_write)
{
    const Episode &e = trace.schedule.episodes[idx];
    AccessSite site;
    site.scheduleIndex = idx;
    site.episodeId = e.id;
    site.wavefront = e.wavefrontId;
    site.cu = model.cuOf(idx);
    site.scope = e.scope;
    site.var = var;
    site.isWrite = is_write;
    return site;
}

void
writeSite(JsonWriter &w, const AccessSite &s)
{
    w.beginObject();
    w.key("episode_id").value(s.episodeId);
    w.key("schedule_index").value(std::uint64_t(s.scheduleIndex));
    w.key("wavefront").value(s.wavefront);
    w.key("cu").value(s.cu);
    w.key("scope").value(scopeName(s.scope));
    w.key("var").value(std::uint64_t(s.var));
    w.key("access").value(s.isWrite ? "write" : "read");
    w.endObject();
}

/** Verify one candidate in place; returns replays executed. */
std::size_t
verifyRace(const ReproTrace &trace, PredictedRace &race,
           const PredictOptions &opts)
{
    std::size_t replays = 0;
    const EpisodeSchedule wit = witnessSchedule(trace, race);

    // The pair-prefix may already fail on its own: dropping unrelated
    // episodes changes the timing enough that no perturbation is even
    // needed.
    TraceRecorder rec;
    TesterResult base = replayGpuRun(trace, wit, true, &rec);
    ++replays;
    race.verified = true;
    if (base.failureClass != FailureClass::None) {
        race.confirmed = true;
        race.witnessClass = base.failureClass;
        race.witnessDelay = 0;
        race.witnessReport = base.report;
        return replays;
    }

    // Delay ladder: push the earlier episode's acquire to (and then
    // past) the later episode's acquire, in steps that stride across
    // the later episode's span. All ticks come from the witness
    // replay's own sync markers, so the probes track the subsequence's
    // actual timing, not the full trace's.
    Tick acq1 = 0, acq2 = 0, rel2 = 0;
    for (const TraceEvent &ev : rec.events()) {
        if (ev.kind == TraceEventKind::SyncAcquire) {
            if (ev.a == race.first.episodeId)
                acq1 = ev.tick;
            else if (ev.a == race.second.episodeId)
                acq2 = ev.tick;
        } else if (ev.kind == TraceEventKind::SyncRelease &&
                   ev.a == race.second.episodeId) {
            rel2 = ev.tick;
        }
    }
    const Tick span = rel2 > acq2 ? rel2 - acq2 : 0;
    const Tick quantum =
        std::max<Tick>(1, opts.maxProbes == 0
                              ? span
                              : span / opts.maxProbes);
    const Tick base_delay = acq2 > acq1 ? acq2 - acq1 : 0;

    for (unsigned k = 0; k < opts.maxProbes; ++k) {
        const Tick delay = base_delay + k * quantum;
        if (delay == 0)
            continue;
        SchedulePerturbation perturb;
        perturb.add(race.first.episodeId, delay);
        TesterResult r = replayGpuRun(trace, wit, true, nullptr, &perturb);
        ++replays;
        if (r.failureClass != FailureClass::None) {
            race.confirmed = true;
            race.witnessClass = r.failureClass;
            race.witnessDelay = delay;
            race.witnessReport = r.report;
            return replays;
        }
    }
    return replays;
}

} // namespace

std::size_t
PredictReport::confirmedCount() const
{
    std::size_t n = 0;
    for (const PredictedRace &r : races)
        n += r.confirmed ? 1 : 0;
    return n;
}

std::size_t
PredictReport::demotedCount() const
{
    std::size_t n = 0;
    for (const PredictedRace &r : races)
        n += (r.verified && !r.confirmed) ? 1 : 0;
    return n;
}

EpisodeSchedule
witnessSchedule(const ReproTrace &trace, const PredictedRace &race)
{
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < trace.schedule.size(); ++i) {
        const Episode &e = trace.schedule.episodes[i];
        if (e.wavefrontId == race.first.wavefront &&
            i <= race.first.scheduleIndex) {
            keep.push_back(i);
        } else if (e.wavefrontId == race.second.wavefront &&
                   i <= race.second.scheduleIndex) {
            keep.push_back(i);
        }
    }
    return trace.schedule.subset(keep);
}

PredictReport
predictRaces(const ReproTrace &trace, const PredictOptions &opts)
{
    PredictReport report;
    const HbModel model = HbModel::build(trace);
    report.orderSource = model.orderSource();
    report.eventsAnalyzed = model.eventsAnalyzed();

    // Group accesses by variable, in schedule order.
    std::map<VarId, std::vector<VarAccess>> by_var;
    for (std::size_t i = 0; i < trace.schedule.size(); ++i) {
        const Episode &e = trace.schedule.episodes[i];
        for (const Episode::WriteEntry &w : e.writes)
            by_var[w.var].push_back(VarAccess{i, true});
        for (VarId v : e.reads) {
            // A lane re-reading its own store is one access site, not
            // a conflict with itself.
            if (!e.writesVar(v))
                by_var[v].push_back(VarAccess{i, false});
        }
    }

    // Enumerate conflicting pairs; each episode pair is checked once
    // (on its first conflicting variable in VarId order).
    std::set<std::pair<std::size_t, std::size_t>> seen;
    std::vector<PredictedRace> found;
    for (const auto &[var, accesses] : by_var) {
        for (std::size_t p = 0; p < accesses.size(); ++p) {
            for (std::size_t q = p + 1; q < accesses.size(); ++q) {
                const VarAccess &x = accesses[p];
                const VarAccess &y = accesses[q];
                if (!x.isWrite && !y.isWrite)
                    continue;
                if (model.agentOf(x.idx) == model.agentOf(y.idx))
                    continue;
                auto key = std::minmax(x.idx, y.idx);
                if (!seen.insert({key.first, key.second}).second)
                    continue;
                ++report.pairsChecked;
                if (model.ordered(x.idx, y.idx))
                    continue;
                ++report.candidates;
                // Observed sync order decides which side the witness
                // perturbation delays.
                bool x_first =
                    model.sync(x.idx).acqTick != model.sync(y.idx).acqTick
                        ? model.sync(x.idx).acqTick <
                              model.sync(y.idx).acqTick
                        : x.idx < y.idx;
                const VarAccess &a = x_first ? x : y;
                const VarAccess &b = x_first ? y : x;
                PredictedRace race;
                race.first = makeSite(trace, model, a.idx, var, a.isWrite);
                race.second =
                    makeSite(trace, model, b.idx, var, b.isWrite);
                race.syncPath =
                    model.explainUnordered(a.idx, b.idx, trace);
                found.push_back(std::move(race));
            }
        }
    }

    std::sort(found.begin(), found.end(),
              [](const PredictedRace &l, const PredictedRace &r) {
                  if (l.first.scheduleIndex != r.first.scheduleIndex)
                      return l.first.scheduleIndex < r.first.scheduleIndex;
                  return l.second.scheduleIndex < r.second.scheduleIndex;
              });
    if (found.size() > opts.maxCandidates)
        found.resize(opts.maxCandidates);
    report.races = std::move(found);

    if (opts.verify) {
        for (PredictedRace &race : report.races)
            report.replays += verifyRace(trace, race, opts);
    }
    return report;
}

std::string
predictReportJson(const ReproTrace &trace, const PredictReport &report)
{
    JsonWriter w;
    w.beginObject();
    w.key("preset").value(trace.presetName);
    w.key("seed").value(trace.tester.seed);
    w.key("scope_mode").value(scopeModeName(trace.tester.scopeMode));
    w.key("recorded_failure")
        .value(failureClassName(trace.result.failureClass));
    w.key("order_source").value(hbOrderSourceName(report.orderSource));
    w.key("events_analyzed").value(std::uint64_t(report.eventsAnalyzed));
    w.key("pairs_checked").value(std::uint64_t(report.pairsChecked));
    w.key("candidates").value(std::uint64_t(report.candidates));
    w.key("confirmed").value(std::uint64_t(report.confirmedCount()));
    w.key("demoted").value(std::uint64_t(report.demotedCount()));
    w.key("replays").value(std::uint64_t(report.replays));
    w.key("races").beginArray();
    for (const PredictedRace &r : report.races) {
        w.beginObject();
        w.key("first");
        writeSite(w, r.first);
        w.key("second");
        writeSite(w, r.second);
        w.key("sync_path").value(r.syncPath);
        w.key("verified").value(r.verified);
        w.key("confirmed").value(r.confirmed);
        w.key("witness").beginObject();
        w.key("failure_class").value(failureClassName(r.witnessClass));
        w.key("delay_ticks").value(r.witnessDelay);
        w.key("report").value(r.witnessReport);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace drf
