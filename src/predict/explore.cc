#include "predict/explore.hh"

#include <sstream>
#include <unordered_map>

namespace drf
{

namespace
{

/** Dependent episodes: flipping their order can change the outcome. */
bool
dependent(const Episode &a, const Episode &b)
{
    if (a.syncVar == b.syncVar)
        return true;
    for (const Episode::WriteEntry &w : a.writes) {
        if (b.writesVar(w.var) || b.readsVar(w.var))
            return true;
    }
    for (const Episode::WriteEntry &w : b.writes) {
        if (a.readsVar(w.var))
            return true;
    }
    return false;
}

std::string
describeSite(const AccessSite &s)
{
    std::ostringstream os;
    os << "episode " << s.episodeId << " wf " << s.wavefront << " "
       << (s.isWrite ? "write" : "read") << " var " << s.var;
    return os.str();
}

} // namespace

ExploreSource::ExploreSource(const GpuTestPreset &preset,
                             const ExploreOptions &opts)
    : _preset(preset), _opts(opts)
{
    RecordOptions rec;
    rec.captureEvents = true;
    _base = recordGpuRun(preset, rec);
    if (_opts.runPredict)
        _predict = predictRaces(_base, _opts.predict);
    expandFrontier(_base.events, SchedulePerturbation{});
}

void
ExploreSource::expandFrontier(const std::vector<TraceEvent> &events,
                              const SchedulePerturbation &parent)
{
    // Index the base schedule by episode id (ids survive subsetting and
    // perturbation; the schedule itself never changes).
    std::unordered_map<std::uint64_t, const Episode *> by_id;
    by_id.reserve(_base.schedule.size());
    for (const Episode &e : _base.schedule.episodes)
        by_id.emplace(e.id, &e);

    // Observed acquire order and per-episode sync ticks.
    struct Ticks
    {
        Tick acq = 0;
        Tick rel = 0;
    };
    std::unordered_map<std::uint64_t, Ticks> ticks;
    std::vector<std::uint64_t> acquire_order;
    for (const TraceEvent &ev : events) {
        if (ev.kind == TraceEventKind::SyncAcquire) {
            ticks[ev.a].acq = ev.tick;
            acquire_order.push_back(ev.a);
        } else if (ev.kind == TraceEventKind::SyncRelease) {
            ticks[ev.a].rel = ev.tick;
        }
    }

    std::size_t flips = 0;
    for (std::size_t k = 0;
         k + 1 < acquire_order.size() && flips < _opts.maxFlipsPerTrace;
         ++k) {
        const std::uint64_t id1 = acquire_order[k];
        const std::uint64_t id2 = acquire_order[k + 1];
        auto e1 = by_id.find(id1), e2 = by_id.find(id2);
        if (e1 == by_id.end() || e2 == by_id.end())
            continue;
        if (e1->second->wavefrontId == e2->second->wavefrontId)
            continue;
        if (!dependent(*e1->second, *e2->second))
            continue;
        if (!_sleep.insert({id1, id2}).second)
            continue;

        // Delay the earlier acquire past the later one, landing in the
        // middle of the later episode's span so the flip actually
        // overlaps (not merely reorders) the dependent work.
        const Ticks t1 = ticks[id1], t2 = ticks[id2];
        if (t2.acq <= t1.acq)
            continue;
        const Tick span = t2.rel > t2.acq ? t2.rel - t2.acq : 0;
        const Tick delay = (t2.acq - t1.acq) + span / 2 + 1;

        SchedulePerturbation child = parent;
        child.add(id1, delay);
        _frontier.push_back(std::move(child));
        ++flips;
    }
}

std::vector<ShardSpec>
ExploreSource::nextBatch()
{
    std::vector<ShardSpec> batch;
    while (batch.size() < _opts.batchSize && _issued < _opts.budget &&
           !_frontier.empty()) {
        const std::uint64_t seed = _preset.tester.seed + 1 + _issued;
        auto [it, inserted] = _pending.emplace(
            seed, Pending{std::move(_frontier.front()), {}});
        _frontier.pop_front();
        if (!inserted)
            continue; // seed collision: drop (cannot happen in practice)

        ShardSpec spec;
        spec.name = "explore/" + std::to_string(_issued);
        spec.seed = seed;
        Pending *slot = &it->second;
        spec.run = [this, slot, name = spec.name]() {
            ApuSystem sys(_base.system);
            TraceRecorder rec;
            sys.attachTrace(rec);

            GpuTesterConfig run_cfg = _base.tester;
            run_cfg.record = nullptr;
            run_cfg.replay = &_base.schedule;
            run_cfg.perturb = &slot->perturb;
            GpuTester tester(sys, run_cfg);

            ShardOutcome out;
            out.name = name;
            out.result = tester.run();
            out.l1 =
                std::make_unique<CoverageGrid>(sys.l1CoverageUnion());
            out.l2 =
                std::make_unique<CoverageGrid>(sys.l2CoverageUnion());
            out.dir = std::make_unique<CoverageGrid>(
                sys.directory().coverage());

            std::lock_guard<std::mutex> lock(_mutex);
            slot->events = rec.events();
            return out;
        };
        batch.push_back(std::move(spec));
        ++_issued;
    }
    return batch;
}

void
ExploreSource::report(const ShardOutcome &outcome,
                      const ShardFeedback &feedback)
{
    (void)feedback;
    auto it = _pending.find(outcome.seed);
    if (it == _pending.end())
        return;
    if (!outcome.result.passed)
        ++_failuresByClass[outcome.result.failureClass];
    // Frontier expansion happens here — in the adaptive loop's
    // index-ordered feedback stream — so the exploration order is
    // identical at any worker count.
    expandFrontier(it->second.events, it->second.perturb);
    _pending.erase(it);
}

std::optional<GpuTestPreset>
ExploreSource::presetForSeed(std::uint64_t seed) const
{
    (void)seed;
    return _preset;
}

std::optional<PredictTriage>
ExploreSource::predictTriage() const
{
    PredictTriage triage;
    triage.candidates = _predict.candidates;
    triage.confirmed = _predict.confirmedCount();
    triage.demoted = _predict.demotedCount();
    triage.interleavings = _predict.replays + _issued;
    if (!_predict.races.empty()) {
        triage.firstPair = describeSite(_predict.races.front().first) +
                           " <-> " +
                           describeSite(_predict.races.front().second);
    }
    return triage;
}

} // namespace drf
